#include "apps/cli_common.h"

#include <algorithm>
#include <cstdio>

#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/io/circuit_io.h"
#include "src/transpile/optimizer.h"

namespace qhip::cli {

bool parse_common_args(int argc, char** argv, CommonArgs* out,
                       const ExtraFlagFn& extra) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const NextFn next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "-c") {
      if (!(v = next())) return false;
      out->circuit_file = v;
    } else if (arg == "-b") {
      if (!(v = next())) return false;
      out->backend = v;
    } else if (arg == "-p") {
      if (!(v = next())) return false;
      out->precision = v;
    } else if (arg == "-f") {
      if (!(v = next())) return false;
      out->max_fused = static_cast<unsigned>(parse_uint(v, "-f"));
    } else if (arg == "-w") {
      if (!(v = next())) return false;
      out->window = static_cast<unsigned>(parse_uint(v, "-w"));
    } else if (arg == "-s") {
      if (!(v = next())) return false;
      out->seed = parse_uint(v, "-s");
    } else if (arg == "-m") {
      if (!(v = next())) return false;
      out->samples = parse_uint(v, "-m");
    } else if (arg == "-t") {
      if (!(v = next())) return false;
      out->trace_file = v;
    } else if (arg == "-O") {
      out->optimize = true;
    } else if (arg == "--faults") {
      if (!(v = next())) return false;
      out->fault_spec = v;
    } else if (arg == "--fallback-backend") {
      if (!(v = next())) return false;
      out->fallback_backend = v;
    } else if (extra && extra(arg, next)) {
      // consumed by the app-specific table
    } else {
      return false;
    }
  }
  return true;
}

const char* common_usage() {
  return "[-b cpu|hip|a100|hip:N|dist:N|auto] [-p single|double] [-f <max-fused>]\n"
         "    [-w <window>] [-s <seed>] [-m <samples>] [-t <trace.json>] [-O]\n"
         "    [--faults <spec>] [--fallback-backend <backend>]";
}

Circuit load_circuit(const CommonArgs& a) {
  Circuit circuit = read_circuit_file(a.circuit_file);
  if (a.optimize) {
    const auto r = transpile::optimize(circuit);
    std::printf("optimizer: %s\n", r.stats.summary().c_str());
    circuit = r.circuit;
  }
  check(circuit.num_qubits <= 26,
        "this host build caps circuits at 26 qubits (memory)");
  return circuit;
}

void print_samples(const std::vector<index_t>& samples) {
  if (samples.empty()) return;
  std::printf("samples:");
  for (std::size_t k = 0; k < std::min<std::size_t>(samples.size(), 16); ++k) {
    std::printf(" %llu", static_cast<unsigned long long>(samples[k]));
  }
  if (samples.size() > 16) std::printf(" ... (%zu total)", samples.size());
  std::printf("\n");
}

void print_amplitudes(const std::vector<cplx64>& amps) {
  for (std::size_t i = 0; i < amps.size(); ++i) {
    std::printf("  |%llu> = (% .6f, % .6f)  p=%.6f\n",
                static_cast<unsigned long long>(i), amps[i].real(),
                amps[i].imag(), std::norm(amps[i]));
  }
}

}  // namespace qhip::cli
