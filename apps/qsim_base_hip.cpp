// qsim_base_hip — stand-alone state-vector simulator CLI, mirroring qsim's
// qsim_base_cuda.cu / qsim_base_hip.cpp driver (conversion inventory item 1):
// reads a circuit file in the qsim text format, simulates it on the chosen
// backend, and prints amplitudes / samples / timing.
//
// Usage:
//   qsim_base_hip -c <circuit-file> [-f <max-fused>]
//                 [-b cpu|hip|a100|hip:2|hip:4]
//                 [-p single|double] [-s <seed>] [-m <samples>]
//                 [-t <trace.json>] [-a <amplitudes-to-print>] [-w <window>]
//
//   qsim_base_hip --generate-rqc <rows> <cols> <depth> -o <file> [-s seed]
//
// The 'hip' backend runs the ported qsim GPU kernels on the virtual MI250X
// GCD (wavefront 64); 'a100' runs the same kernels on the virtual A100
// (warp 32); 'cpu' is the multithreaded host backend; 'hip:N' distributes
// the state across N virtual GCDs (the paper's SS7 future work).
#include <cstdio>
#include <cstring>
#include <string>

#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/hipsim/multi_gcd.h"
#include "src/hipsim/simulator_hip.h"
#include "src/io/circuit_io.h"
#include "src/prof/trace.h"
#include "src/rqc/rqc.h"
#include "src/simulator/runner.h"
#include "src/simulator/simulator_cpu.h"
#include "src/transpile/optimizer.h"

namespace {

using namespace qhip;

struct Args {
  std::string circuit_file;
  std::string backend = "hip";
  std::string precision = "single";
  std::string trace_file;
  std::string out_file;
  unsigned max_fused = 2;
  unsigned window = 4;
  std::uint64_t seed = 1;
  std::size_t samples = 0;
  unsigned print_amps = 8;
  bool optimize = false;
  bool generate_rqc = false;
  unsigned rows = 0, cols = 0, depth = 0;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: qsim_base_hip -c <circuit> [-f <max-fused>] [-b cpu|hip|a100]\n"
      "                     [-p single|double] [-s <seed>] [-m <samples>]\n"
      "                     [-t <trace.json>] [-a <amps>] [-w <window>]\n"
      "       qsim_base_hip --generate-rqc <rows> <cols> <depth> -o <file>\n");
  return 1;
}

bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "-c") {
      const char* v = next();
      if (!v) return false;
      a->circuit_file = v;
    } else if (arg == "-f") {
      const char* v = next();
      if (!v) return false;
      a->max_fused = static_cast<unsigned>(parse_uint(v, "-f"));
    } else if (arg == "-w") {
      const char* v = next();
      if (!v) return false;
      a->window = static_cast<unsigned>(parse_uint(v, "-w"));
    } else if (arg == "-b") {
      const char* v = next();
      if (!v) return false;
      a->backend = v;
    } else if (arg == "-p") {
      const char* v = next();
      if (!v) return false;
      a->precision = v;
    } else if (arg == "-s") {
      const char* v = next();
      if (!v) return false;
      a->seed = parse_uint(v, "-s");
    } else if (arg == "-m") {
      const char* v = next();
      if (!v) return false;
      a->samples = parse_uint(v, "-m");
    } else if (arg == "-a") {
      const char* v = next();
      if (!v) return false;
      a->print_amps = static_cast<unsigned>(parse_uint(v, "-a"));
    } else if (arg == "-t") {
      const char* v = next();
      if (!v) return false;
      a->trace_file = v;
    } else if (arg == "-o") {
      const char* v = next();
      if (!v) return false;
      a->out_file = v;
    } else if (arg == "-O") {
      a->optimize = true;
    } else if (arg == "--generate-rqc") {
      a->generate_rqc = true;
      const char *r = next(), *c = next(), *d = next();
      if (!r || !c || !d) return false;
      a->rows = static_cast<unsigned>(parse_uint(r, "rows"));
      a->cols = static_cast<unsigned>(parse_uint(c, "cols"));
      a->depth = static_cast<unsigned>(parse_uint(d, "depth"));
    } else {
      return false;
    }
  }
  return true;
}

template <typename FP, typename Simulator, typename State>
void print_state(const State& host, unsigned count) {
  for (index_t i = 0; i < std::min<index_t>(count, host.size()); ++i) {
    std::printf("  |%llu> = (% .6f, % .6f)  p=%.6f\n",
                static_cast<unsigned long long>(i),
                static_cast<double>(host[i].real()),
                static_cast<double>(host[i].imag()),
                std::norm(cplx64(host[i].real(), host[i].imag())));
  }
}

template <typename FP>
int run_gpu(const Args& a, const Circuit& circuit, Tracer* tracer) {
  vgpu::DeviceProps props =
      a.backend == "a100" ? vgpu::a100() : vgpu::mi250x_gcd();
  vgpu::Device dev(props, tracer);
  std::printf("backend: %s (warp %u)\n", props.name.c_str(), props.warp_size);

  hipsim::SimulatorHIP<FP> sim(dev);
  hipsim::DeviceStateVector<FP> state(dev, circuit.num_qubits);
  sim.state_space().set_zero_state(state);

  Timer timer;
  const FusionResult fused = fuse_circuit(circuit, {a.max_fused, a.window});
  const double fuse_s = timer.seconds();
  sim.run(fused.circuit, state, a.seed);
  dev.synchronize();  // run() enqueues; the timer must cover the real work
  const double total_s = timer.seconds();
  std::printf("fused %zu gates -> %zu (mean width %.2f) in %.3f ms\n",
              fused.stats.input_gates, fused.stats.output_gates,
              fused.stats.mean_width(), fuse_s * 1e3);
  std::printf("simulation: %.3f s (emulated device; not hardware time)\n",
              total_s - fuse_s);

  const StateVector<FP> host = state.to_host();
  print_state<FP, hipsim::SimulatorHIP<FP>>(host, a.print_amps);
  if (a.samples > 0) {
    const auto s = sim.state_space().sample(state, a.samples, a.seed);
    std::printf("samples:");
    for (std::size_t k = 0; k < std::min<std::size_t>(s.size(), 16); ++k) {
      std::printf(" %llu", static_cast<unsigned long long>(s[k]));
    }
    if (s.size() > 16) std::printf(" ... (%zu total)", s.size());
    std::printf("\n");
  }
  return 0;
}

template <typename FP>
int run_multi_gcd(const Args& a, const Circuit& circuit, unsigned gcds,
                  Tracer* tracer) {
  std::printf("backend: %u x MI250X GCD (multi-GCD HIP)\n", gcds);
  hipsim::MultiGcdSimulator<FP> sim(circuit.num_qubits, gcds,
                                    vgpu::mi250x_gcd(), tracer);
  Timer timer;
  const FusionResult fused = fuse_circuit(circuit, {a.max_fused, a.window});
  const double fuse_s = timer.seconds();
  sim.run(fused.circuit, a.seed);
  sim.synchronize();  // run() enqueues; the timer must cover the real work
  const double total_s = timer.seconds();
  std::printf("fused %zu gates -> %zu in %.3f ms; sim %.3f s; "
              "%llu slot swaps, %.2f MiB peer traffic\n",
              fused.stats.input_gates, fused.stats.output_gates, fuse_s * 1e3,
              total_s - fuse_s,
              static_cast<unsigned long long>(sim.stats().slot_swaps),
              static_cast<double>(sim.stats().peer_bytes) / (1 << 20));
  const StateVector<FP> host = sim.to_host();
  print_state<FP, hipsim::MultiGcdSimulator<FP>>(host, a.print_amps);
  if (a.samples > 0) {
    const auto smp = sim.sample(a.samples, a.seed);
    std::printf("samples:");
    for (std::size_t k = 0; k < std::min<std::size_t>(smp.size(), 16); ++k) {
      std::printf(" %llu", static_cast<unsigned long long>(smp[k]));
    }
    std::printf("\n");
  }
  return 0;
}

template <typename FP>
int run_cpu(const Args& a, const Circuit& circuit, Tracer* tracer) {
  std::printf("backend: CPU (%u threads)\n", ThreadPool::shared().num_threads());
  SimulatorCPU<FP> sim(ThreadPool::shared(), tracer);
  StateVector<FP> state(circuit.num_qubits);
  RunOptions opt;
  opt.max_fused_qubits = a.max_fused;
  opt.seed = a.seed;
  opt.num_samples = a.samples;
  const RunResult r = run_circuit(circuit, sim, state, opt);
  std::printf("fused %zu gates -> %zu in %.3f ms; sim %.3f s\n",
              r.fusion.input_gates, r.fusion.output_gates,
              r.fuse_seconds * 1e3, r.sim_seconds);
  print_state<FP, SimulatorCPU<FP>>(state, a.print_amps);
  if (!r.samples.empty()) {
    std::printf("samples:");
    for (std::size_t k = 0; k < std::min<std::size_t>(r.samples.size(), 16); ++k) {
      std::printf(" %llu", static_cast<unsigned long long>(r.samples[k]));
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse_args(argc, argv, &a)) return usage();

  try {
    if (a.generate_rqc) {
      if (a.out_file.empty()) return usage();
      qhip::rqc::RqcOptions opt;
      opt.rows = a.rows;
      opt.cols = a.cols;
      opt.depth = a.depth;
      opt.seed = a.seed;
      const qhip::Circuit c = qhip::rqc::generate_rqc(opt);
      qhip::write_circuit_file(c, a.out_file);
      std::printf("wrote %s: %s\n", a.out_file.c_str(),
                  qhip::rqc::describe(c).c_str());
      return 0;
    }

    if (a.circuit_file.empty()) return usage();
    qhip::Circuit circuit = qhip::read_circuit_file(a.circuit_file);
    if (a.optimize) {
      const auto r = qhip::transpile::optimize(circuit);
      std::printf("optimizer: %s\n", r.stats.summary().c_str());
      circuit = r.circuit;
    }
    std::printf("circuit: %s\n", qhip::rqc::describe(circuit).c_str());
    qhip::check(circuit.num_qubits <= 26,
                "this host build caps circuits at 26 qubits (memory)");

    qhip::Tracer tracer;
    qhip::Tracer* tp = a.trace_file.empty() ? nullptr : &tracer;

    int rc;
    const bool dp = a.precision == "double";
    if (a.backend == "cpu") {
      rc = dp ? run_cpu<double>(a, circuit, tp) : run_cpu<float>(a, circuit, tp);
    } else if (a.backend == "hip" || a.backend == "a100") {
      rc = dp ? run_gpu<double>(a, circuit, tp) : run_gpu<float>(a, circuit, tp);
    } else if (a.backend.rfind("hip:", 0) == 0) {
      const unsigned gcds = static_cast<unsigned>(
          qhip::parse_uint(a.backend.substr(4), "-b hip:N"));
      rc = dp ? run_multi_gcd<double>(a, circuit, gcds, tp)
              : run_multi_gcd<float>(a, circuit, gcds, tp);
    } else {
      return usage();
    }

    if (tp) {
      tracer.write_perfetto_json(a.trace_file);
      std::printf("trace: %zu events -> %s (load in https://ui.perfetto.dev)\n",
                  tracer.size(), a.trace_file.c_str());
    }
    return rc;
  } catch (const qhip::Error& e) {
    std::fprintf(stderr, "qsim_base_hip: %s\n", e.what());
    return 1;
  }
}
