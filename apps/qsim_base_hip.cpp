// qsim_base_hip — stand-alone state-vector simulator CLI, mirroring qsim's
// qsim_base_cuda.cu / qsim_base_hip.cpp driver (conversion inventory item 1):
// reads a circuit file in the qsim text format, simulates it on the chosen
// backend, and prints amplitudes / samples / timing.
//
// Usage:
//   qsim_base_hip -c <circuit-file> [common flags; see apps/cli_common.h]
//                 [-a <amplitudes-to-print>]
//   qsim_base_hip -c <circuit-file> --batch <N> [--no-result-cache] [...]
//   qsim_base_hip --generate-rqc <rows> <cols> <depth> -o <file> [-s seed]
//
// The backend is selected at runtime through create_backend(): 'hip' runs
// the ported qsim GPU kernels on the virtual MI250X GCD (wavefront 64),
// 'a100' on the virtual A100 (warp 32), 'cpu' on the multithreaded host
// backend, and 'hip:N' distributes the state across N virtual GCDs (the
// paper's SS7 future work).
//
// --batch N serves the circuit N times through the SimulationEngine (the
// batched, cache-aware serving layer): fused circuits are cached, state
// buffers pooled, and repeated identical requests answered from the result
// cache. Engine metrics land in the -t trace as "engine/..." counters.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/cli_common.h"
#include "src/base/bits.h"
#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/engine/backend.h"
#include "src/engine/engine.h"
#include "src/io/circuit_io.h"
#include "src/prof/trace.h"
#include "src/rqc/rqc.h"

namespace {

using namespace qhip;

struct Args {
  cli::CommonArgs common;
  std::string out_file;
  unsigned print_amps = 8;
  std::size_t batch = 0;            // 0 = single-shot mode
  bool no_result_cache = false;     // --batch: force every request to run
  std::string prom_file;            // --batch: Prometheus text dump ("-" = stdout)
  bool generate_rqc = false;
  unsigned rows = 0, cols = 0, depth = 0;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: qsim_base_hip -c <circuit> [-a <amps>] %s\n"
      "       qsim_base_hip -c <circuit> --batch <N> [--no-result-cache]\n"
      "                     [--prom <file|->] [...]\n"
      "       qsim_base_hip --generate-rqc <rows> <cols> <depth> -o <file>\n",
      qhip::cli::common_usage());
  return 1;
}

bool parse_args(int argc, char** argv, Args* a) {
  return cli::parse_common_args(
      argc, argv, &a->common,
      [a](const std::string& arg, const cli::NextFn& next) {
        if (arg == "-a") {
          const char* v = next();
          if (!v) return false;
          a->print_amps = static_cast<unsigned>(parse_uint(v, "-a"));
          return true;
        }
        if (arg == "-o") {
          const char* v = next();
          if (!v) return false;
          a->out_file = v;
          return true;
        }
        if (arg == "--batch") {
          const char* v = next();
          if (!v) return false;
          a->batch = parse_uint(v, "--batch");
          return true;
        }
        if (arg == "--no-result-cache") {
          a->no_result_cache = true;
          return true;
        }
        if (arg == "--prom") {
          const char* v = next();
          if (!v) return false;
          a->prom_file = v;
          return true;
        }
        if (arg == "--generate-rqc") {
          a->generate_rqc = true;
          const char *r = next(), *c = next(), *d = next();
          if (!r || !c || !d) return false;
          a->rows = static_cast<unsigned>(parse_uint(r, "rows"));
          a->cols = static_cast<unsigned>(parse_uint(c, "cols"));
          a->depth = static_cast<unsigned>(parse_uint(d, "depth"));
          return true;
        }
        return false;
      });
}

int run_single(const Args& a, const Circuit& circuit, Tracer* tracer) {
  const auto backend = create_backend(a.common.backend, a.common.precision,
                                      tracer, a.common.fault_spec);
  std::printf("backend: %s\n", backend->description().c_str());

  Timer timer;
  const FusionResult fused =
      fuse_circuit(circuit, a.common.fusion);
  const double fuse_s = timer.seconds();

  BackendRunSpec rs;
  rs.seed = a.common.seed;
  rs.num_samples = a.common.samples;
  const index_t limit =
      std::min<index_t>(a.print_amps, pow2(circuit.num_qubits));
  for (index_t i = 0; i < limit; ++i) rs.amplitude_indices.push_back(i);

  const BackendRunOutput out = backend->run(fused.circuit, rs);
  const double total_s = timer.seconds();

  std::printf("fused %zu gates -> %zu (mean width %.2f) in %.3f ms\n",
              fused.stats.input_gates, fused.stats.output_gates,
              fused.stats.mean_width(), fuse_s * 1e3);
  std::printf("simulation: %.3f s (emulated device; not hardware time)\n",
              total_s - fuse_s);
  for (const auto& [name, value] : out.counters) {
    std::printf("  %s = %.0f\n", name.c_str(), value);
  }
  cli::print_amplitudes(out.amplitudes);
  cli::print_samples(out.samples);
  return 0;
}

int run_batch(const Args& a, const Circuit& circuit, Tracer* tracer) {
  engine::EngineOptions opt;
  opt.tracer = tracer;
  if (a.no_result_cache) opt.result_cache_capacity = 0;
  opt.fault_spec = a.common.fault_spec;
  opt.fallback_backend = a.common.fallback_backend;
  engine::SimulationEngine eng(opt);
  std::printf("engine: serving %zu requests on backend %s (%s)%s\n", a.batch,
              a.common.backend.c_str(), a.common.precision.c_str(),
              a.no_result_cache ? " [result cache off]" : "");

  engine::SimRequest req;
  req.circuit = circuit;
  req.backend = a.common.backend;
  req.precision =
      a.common.precision == "double" ? Precision::kDouble : Precision::kSingle;
  req.fusion = a.common.fusion;
  req.seed = a.common.seed;
  req.num_samples = a.common.samples;

  Timer timer;
  std::vector<std::future<engine::SimResult>> futs;
  futs.reserve(a.batch);
  for (std::size_t k = 0; k < a.batch; ++k) futs.push_back(eng.submit(req));

  std::size_t ok = 0;
  std::string first_error;
  engine::SimResult last;
  for (auto& f : futs) {
    engine::SimResult r = f.get();
    if (r.ok) {
      ++ok;
      last = std::move(r);
    } else if (first_error.empty()) {
      first_error = r.error;
    }
  }
  const double wall_s = timer.seconds();

  const engine::EngineMetrics m = eng.metrics();
  std::printf("served %zu/%zu requests in %.3f s (%.1f req/s)\n", ok, a.batch,
              wall_s, wall_s > 0 ? static_cast<double>(ok) / wall_s : 0.0);
  if (!first_error.empty()) {
    std::printf("first rejection: %s\n", first_error.c_str());
  }
  std::printf("engine: fused-cache hit rate %.2f, result-cache hits %llu, "
              "pool hits %llu, %.2f MiB pooled\n",
              m.fused_cache.hit_rate(),
              static_cast<unsigned long long>(m.result_cache_hits),
              static_cast<unsigned long long>(m.pool_hits),
              static_cast<double>(m.bytes_pooled) / (1 << 20));
  std::printf("latency: p50 %.3f ms, p95 %.3f ms, mean %.3f ms\n", m.p50_ms,
              m.p95_ms, m.mean_ms);
  if (m.planner_decisions > 0) {
    std::string chosen;
    for (const auto& [spec, n] : m.planner_chosen) {
      chosen += strfmt("%s%s x%llu", chosen.empty() ? "" : ", ", spec.c_str(),
                       static_cast<unsigned long long>(n));
    }
    std::printf("planner: %llu decisions (%llu calibrated, "
                "%llu observations): %s\n",
                static_cast<unsigned long long>(m.planner_decisions),
                static_cast<unsigned long long>(m.planner_calibrated_decisions),
                static_cast<unsigned long long>(m.planner_observations),
                chosen.c_str());
  }
  if (m.retries + m.fallbacks + m.faults_oom + m.faults_backend +
          m.faults_deadline >
      0) {
    std::printf("recovery: %llu retries, %llu fallbacks; faults: %llu oom, "
                "%llu backend, %llu deadline\n",
                static_cast<unsigned long long>(m.retries),
                static_cast<unsigned long long>(m.fallbacks),
                static_cast<unsigned long long>(m.faults_oom),
                static_cast<unsigned long long>(m.faults_backend),
                static_cast<unsigned long long>(m.faults_deadline));
  }
  if (ok > 0) {
    cli::print_samples(last.samples);
  }
  eng.export_metrics();  // engine/... counters into the trace JSON
  if (!a.prom_file.empty()) {
    const std::string text = m.to_prom_text();
    if (a.prom_file == "-") {
      std::fputs(text.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(a.prom_file.c_str(), "w");
      check(f != nullptr, "cannot open '" + a.prom_file + "' for writing");
      std::fputs(text.c_str(), f);
      std::fclose(f);
      std::printf("prometheus: %zu bytes -> %s\n", text.size(),
                  a.prom_file.c_str());
    }
  }
  return ok == a.batch ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse_args(argc, argv, &a)) return usage();

  try {
    if (a.generate_rqc) {
      if (a.out_file.empty()) return usage();
      qhip::rqc::RqcOptions opt;
      opt.rows = a.rows;
      opt.cols = a.cols;
      opt.depth = a.depth;
      opt.seed = a.common.seed;
      const qhip::Circuit c = qhip::rqc::generate_rqc(opt);
      qhip::write_circuit_file(c, a.out_file);
      std::printf("wrote %s: %s\n", a.out_file.c_str(),
                  qhip::rqc::describe(c).c_str());
      return 0;
    }

    if (a.common.circuit_file.empty()) return usage();
    if (!qhip::is_backend_spec(a.common.backend)) return usage();
    // "auto" is a placement policy, not a device: it only exists behind the
    // engine's planner, so route it through batch mode (DESIGN.md §13).
    if (qhip::BackendSpec::parse(a.common.backend).kind ==
            qhip::BackendSpec::Kind::kAuto &&
        a.batch == 0) {
      std::printf("backend auto: serving through the engine (--batch 1)\n");
      a.batch = 1;
    }
    const qhip::Circuit circuit = qhip::cli::load_circuit(a.common);
    std::printf("circuit: %s\n", qhip::rqc::describe(circuit).c_str());

    qhip::Tracer tracer;
    qhip::Tracer* tp = a.common.trace_file.empty() ? nullptr : &tracer;

    const int rc = a.batch > 0 ? run_batch(a, circuit, tp)
                               : run_single(a, circuit, tp);

    if (tp) {
      tracer.write_perfetto_json(a.common.trace_file);
      std::printf("trace: %zu events -> %s (load in https://ui.perfetto.dev)\n",
                  tracer.size(), a.common.trace_file.c_str());
    }
    return rc;
  } catch (const qhip::Error& e) {
    std::fprintf(stderr, "qsim_base_hip: %s\n", e.what());
    return 1;
  }
}
