// qhip_serve: network serving front-end for the simulation engine.
//
// Listens on TCP, speaks the newline-delimited JSON wire protocol of
// docs/SERVING.md (all three request kinds: circuit, expectation,
// trajectory), and serves every request through one SimulationEngine —
// result cache, coalescing, retry/fallback ladders and "auto" placement
// included. "GET /metrics" on the same port answers a Prometheus text
// scrape; "GET /debug/requests" and "GET /debug/snapshot" expose the
// always-on flight recorder (docs/OBSERVABILITY.md).
//
// SLO watchdog: repeatable --slo rules ("any:p99_ms=50", see
// src/engine/watchdog.h for the grammar) arm rolling-window latency and
// error-rate tracking; a breach writes a Perfetto snapshot of the last
// requests into --snapshot-dir.
//
// SIGTERM/SIGINT drain gracefully: stop accepting, fail queued requests
// with structured errors, finish in-flight work, flush every response,
// exit 0. The serve smoke job in CI soaks this path with a mid-soak kill.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

#include "src/engine/engine.h"
#include "src/engine/watchdog.h"
#include "src/prof/trace.h"
#include "src/serve/server.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: qhip_serve [-p <port>] [-H <host>] [-w <workers>] "
      "[--max-qubits <n>] [--max-inflight <n>] [--read-timeout <s>] "
      "[--fallback <spec>] [--trace <file>] [--flightrec <n>] "
      "[--snapshot-dir <dir>] [--slo <rule>]... [--slo-epoch <s>] "
      "[--slo-window <n>] [--slo-interval <s>]\n"
      "  -p 0 (default) binds an ephemeral port; the bound port is printed\n"
      "  as \"PORT <n>\" on stdout so scripts can scrape it.\n"
      "  --slo rules look like \"any:p99_ms=50\" or "
      "\"circuit:error_rate=0.05,min_requests=64\".\n");
  return 1;
}

// Self-pipe: the handler only writes one byte; all shutdown work happens on
// the main thread, where it is safe to take locks and join threads.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char b = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &b, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qhip;

  serve::ServerOptions sopt;
  engine::EngineOptions eopt;
  eopt.num_workers = 4;
  std::string trace_file;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "qhip_serve: %s needs a value\n", a.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (a == "-p") sopt.port = static_cast<unsigned short>(std::atoi(next()));
    else if (a == "-H") sopt.host = next();
    else if (a == "-w") eopt.num_workers = static_cast<unsigned>(std::atoi(next()));
    else if (a == "--max-qubits") eopt.max_qubits = static_cast<unsigned>(std::atoi(next()));
    else if (a == "--max-inflight") sopt.max_inflight_per_conn = static_cast<std::size_t>(std::atol(next()));
    else if (a == "--read-timeout") sopt.read_timeout_seconds = std::atof(next());
    else if (a == "--fallback") eopt.fallback_backend = next();
    else if (a == "--trace") trace_file = next();
    else if (a == "--flightrec") eopt.flight_recorder_capacity = static_cast<std::size_t>(std::atol(next()));
    else if (a == "--snapshot-dir") eopt.snapshot_dir = next();
    else if (a == "--slo") {
      try {
        eopt.watchdog.rules.push_back(engine::parse_slo_rule(next()));
      } catch (const Error& e) {
        std::fprintf(stderr, "qhip_serve: %s\n", e.what());
        return 1;
      }
    }
    else if (a == "--slo-epoch") eopt.watchdog.epoch_seconds = std::atof(next());
    else if (a == "--slo-window") eopt.watchdog.window_epochs = static_cast<std::size_t>(std::atol(next()));
    else if (a == "--slo-interval") eopt.watchdog.min_trigger_interval_seconds = std::atof(next());
    else return usage();
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("qhip_serve: pipe");
    return 1;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  Tracer tracer;
  if (!trace_file.empty()) {
    eopt.tracer = &tracer;
  }

  try {
    engine::SimulationEngine engine(eopt);
    // The serve span records through the engine's trace sink — the flight
    // recorder's capture seam when enabled — so it lands in post-hoc
    // snapshots even without --trace.
    sopt.tracer = engine.trace_sink();
    serve::Server server(engine, sopt);
    std::printf("PORT %u\n", static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    std::fprintf(stderr, "qhip_serve: listening on %s:%u (%u workers)\n",
                 sopt.host.c_str(), static_cast<unsigned>(server.port()),
                 engine.options().num_workers);
    if (!eopt.watchdog.rules.empty()) {
      std::fprintf(stderr,
                   "qhip_serve: slo watchdog armed (%zu rule(s), "
                   "snapshot dir '%s')\n",
                   eopt.watchdog.rules.size(), eopt.snapshot_dir.c_str());
    }

    // Park until a signal arrives, then drain.
    char b;
    while (::read(g_signal_pipe[0], &b, 1) < 0 && errno == EINTR) {
    }
    std::fprintf(stderr, "qhip_serve: draining...\n");
    server.shutdown();

    const auto st = server.stats();
    const auto m = engine.metrics();
    std::fprintf(stderr,
                 "qhip_serve: drained. connections=%llu requests=%llu "
                 "responses=%llu shed=%llu malformed=%llu engine_completed=%llu "
                 "engine_rejected=%llu slo_breaches=%llu snapshots=%llu\n",
                 static_cast<unsigned long long>(st.connections),
                 static_cast<unsigned long long>(st.requests),
                 static_cast<unsigned long long>(st.responses),
                 static_cast<unsigned long long>(st.shed),
                 static_cast<unsigned long long>(st.malformed),
                 static_cast<unsigned long long>(m.completed),
                 static_cast<unsigned long long>(m.rejected),
                 static_cast<unsigned long long>(m.slo_breaches),
                 static_cast<unsigned long long>(m.snapshots_written));
    if (m.snapshots_written > 0) {
      std::fprintf(stderr, "qhip_serve: last snapshot: %s\n",
                   m.last_snapshot_path.c_str());
    }
    if (!trace_file.empty()) {
      engine.export_metrics();
      tracer.write_perfetto_json(trace_file);
      std::fprintf(stderr, "qhip_serve: trace written to %s\n", trace_file.c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "qhip_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
