// Shared command-line layer for the qsim_*_hip drivers.
//
// Every driver used to carry its own copy of the argv loop, with the same
// flags drifting apart (-t meant a trace file in one binary and a trajectory
// count in another). This header is the single flag table they all share:
//
//   -c <circuit>          circuit file (qsim text format)
//   -b <backend>          cpu | hip | a100 | hip:N | dist:N | auto
//                         (default hip; auto = engine cost-model placement)
//   -p single|double      precision                       (default single)
//   -f <max-fused>        fusion limit                    (default 2)
//   -w <window>           fusion temporal window          (default 4)
//   -s <seed>             measurement/sampling seed       (default 1)
//   -m <samples>          final-state samples to draw     (default 0)
//   -t <trace.json>       write a Perfetto trace
//   -O                    run the transpile optimizer first
//   --faults <spec>       vgpu fault-injection plan (QHIP_FAULT_SPEC grammar)
//   --fallback-backend <b>  degrade to backend b when the primary keeps
//                           failing (batch mode)
//
// App-specific flags plug in through the `extra` hook so each driver only
// states what is unique to it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/core/circuit.h"
#include "src/fusion/fuser.h"

namespace qhip::cli {

struct CommonArgs {
  std::string circuit_file;
  std::string backend = "hip";
  std::string precision = "single";
  std::string trace_file;
  // -f / -w land here — the same FusionOptions SimRequest and RunOptions
  // carry, so the flag table and the request structs cannot drift.
  FusionOptions fusion;
  std::uint64_t seed = 1;
  std::size_t samples = 0;
  bool optimize = false;
  // Fault-injection plan installed into every virtual-GPU backend the driver
  // creates (see src/vgpu/fault.h for the grammar); empty = no faults.
  std::string fault_spec;
  // Backend to degrade onto when the primary keeps failing (engine/batch
  // mode only); empty = fail the request instead.
  std::string fallback_backend;

  // Deprecated aliases of fusion.* (DESIGN.md §13 migration note); they are
  // references into `fusion`, hence the hand-written copy operations.
  unsigned& max_fused = fusion.max_fused_qubits;
  unsigned& window = fusion.window_moments;

  CommonArgs() = default;
  CommonArgs(const CommonArgs& o)
      : circuit_file(o.circuit_file), backend(o.backend),
        precision(o.precision), trace_file(o.trace_file), fusion(o.fusion),
        seed(o.seed), samples(o.samples), optimize(o.optimize),
        fault_spec(o.fault_spec), fallback_backend(o.fallback_backend) {}
  CommonArgs& operator=(const CommonArgs& o) {
    circuit_file = o.circuit_file;
    backend = o.backend;
    precision = o.precision;
    trace_file = o.trace_file;
    fusion = o.fusion;
    seed = o.seed;
    samples = o.samples;
    optimize = o.optimize;
    fault_spec = o.fault_spec;
    fallback_backend = o.fallback_backend;
    return *this;
  }
};

// Pulls the next argv token for a flag value; nullptr when argv is exhausted.
using NextFn = std::function<const char*()>;

// App-specific flag hook. Return true if `arg` was consumed (values pulled
// via `next`; throw qhip::Error via parse_uint/parse_double on bad values),
// false to reject the flag and fail the parse.
using ExtraFlagFn =
    std::function<bool(const std::string& arg, const NextFn& next)>;

// Parses the shared flag table above, handing unknown flags to `extra`.
// Defaults may be pre-seeded by the caller in *out before the call. Returns
// false on malformed input (unknown flag or missing value) — callers print
// their usage line and exit.
bool parse_common_args(int argc, char** argv, CommonArgs* out,
                       const ExtraFlagFn& extra = {});

// The usage text for the shared flags, for embedding in per-app usage lines.
const char* common_usage();

// Loads -c, applies -O when asked (printing the optimizer summary), and
// enforces the 26-qubit host cap shared by all drivers.
Circuit load_circuit(const CommonArgs& a);

// "samples: s0 s1 ... (N total)" capped at 16 printed values.
void print_samples(const std::vector<index_t>& samples);

// "  |i> = (re, im)  p=..." for the first `count` amplitudes.
void print_amplitudes(const std::vector<cplx64>& amps);

}  // namespace qhip::cli
