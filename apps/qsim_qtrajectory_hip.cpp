// qsim_qtrajectory_hip — mirrors qsim's qsim_qtrajectory_cuda driver:
// quantum-trajectory simulation of a noisy circuit, reporting the averaged
// output distribution (top outcomes) and the mean fidelity against the
// ideal state.
//
// Usage:
//   qsim_qtrajectory_hip -c <circuit> -n <channel> -r <rate>
//                        [-j <trajectories>] [-s <seed>] [-k <top-k>]
//
// Channels: depolarizing | bitflip | phaseflip | ampdamp | phasedamp.
//
// Note: trajectories moved from -t to -j when the drivers adopted the shared
// flag table (apps/cli_common.h), where -t uniformly means a trace file.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/cli_common.h"
#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/io/circuit_io.h"
#include "src/noise/trajectory.h"
#include "src/simulator/simulator_cpu.h"

namespace {

using namespace qhip;

int usage() {
  std::fprintf(
      stderr,
      "usage: qsim_qtrajectory_hip -c <circuit> -n depolarizing|bitflip|"
      "phaseflip|ampdamp|phasedamp -r <rate> [-j <trajectories>] [-s <seed>] "
      "[-k <top-k>]\n");
  return 1;
}

noise::KrausChannel make_channel(const std::string& name, double rate) {
  if (name == "depolarizing") return noise::depolarizing(rate);
  if (name == "bitflip") return noise::bit_flip(rate);
  if (name == "phaseflip") return noise::phase_flip(rate);
  if (name == "ampdamp") return noise::amplitude_damping(rate);
  if (name == "phasedamp") return noise::phase_damping(rate);
  throw Error("unknown channel '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  cli::CommonArgs a;
  std::string channel_name = "depolarizing";
  double rate = 0.01;
  unsigned trajectories = 100, top_k = 8;
  const bool parsed = cli::parse_common_args(
      argc, argv, &a, [&](const std::string& arg, const cli::NextFn& next) {
        if (arg == "-n") {
          const char* v = next();
          if (!v) return false;
          channel_name = v;
          return true;
        }
        if (arg == "-r") {
          const char* v = next();
          if (!v) return false;
          rate = parse_double(v, "-r");
          return true;
        }
        if (arg == "-j") {
          const char* v = next();
          if (!v) return false;
          trajectories = static_cast<unsigned>(parse_uint(v, "-j"));
          return true;
        }
        if (arg == "-k") {
          const char* v = next();
          if (!v) return false;
          top_k = static_cast<unsigned>(parse_uint(v, "-k"));
          return true;
        }
        return false;
      });
  if (!parsed || a.circuit_file.empty()) return usage();

  try {
    const Circuit circuit = read_circuit_file(a.circuit_file);
    check(circuit.num_qubits <= 20,
          "qtrajectory driver caps circuits at 20 qubits");
    check(circuit.num_measurements() == 0,
          "strip measurement gates for trajectory averaging");
    const noise::NoiseModel model{make_channel(channel_name, rate)};
    std::printf("circuit: %u qubits, %zu gates; channel %s, %u trajectories\n",
                circuit.num_qubits, circuit.size(),
                model.channel.name.c_str(), trajectories);

    // Ideal state for fidelity.
    SimulatorCPU<double> sim;
    StateVector<double> ideal(circuit.num_qubits);
    sim.run(circuit, ideal);

    double fid_sum = 0;
    std::vector<double> dist(ideal.size(), 0.0);
    for (unsigned t = 0; t < trajectories; ++t) {
      const StateVector<double> traj =
          noise::run_trajectory<double>(circuit, model, a.seed, t);
      fid_sum += std::norm(statespace::inner_product(ideal, traj));
      for (index_t i = 0; i < traj.size(); ++i) dist[i] += std::norm(traj[i]);
    }
    for (auto& v : dist) v /= trajectories;

    std::printf("mean fidelity |<ideal|traj>|^2 = %.5f\n",
                fid_sum / trajectories);
    std::vector<std::pair<double, index_t>> top;
    for (index_t i = 0; i < dist.size(); ++i) top.push_back({dist[i], i});
    std::partial_sort(top.begin(),
                      top.begin() + std::min<std::size_t>(top_k, top.size()),
                      top.end(), std::greater<>());
    std::printf("top noisy outcomes:\n");
    for (unsigned k = 0; k < top_k && k < top.size(); ++k) {
      std::printf("  |%llu>  p=%.6f\n",
                  static_cast<unsigned long long>(top[k].second), top[k].first);
    }
    return 0;
  } catch (const qhip::Error& e) {
    std::fprintf(stderr, "qsim_qtrajectory_hip: %s\n", e.what());
    return 1;
  }
}
