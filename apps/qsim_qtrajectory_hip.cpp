// qsim_qtrajectory_hip — mirrors qsim's qsim_qtrajectory_cuda driver:
// quantum-trajectory simulation of a noisy circuit, served through the
// SimulationEngine as a trajectory-kind request (DESIGN.md §14). The engine
// fans the batch out across its workers, so -j 1000 at --workers 8 runs
// eight trajectories at a time while producing exactly the distribution the
// serial reference loop would.
//
// Usage:
//   qsim_qtrajectory_hip -c <circuit> -n <channel> -r <rate>
//                        [-j <trajectories>] [-s <seed>] [-k <top-k>]
//                        [-b cpu|auto] [-o "<pauli>"]... [--tolerance <t>]
//                        [--workers <n>] [--prom <file|->]
//
// Channels: depolarizing | bitflip | phaseflip | ampdamp | phasedamp.
//
// With one or more -o observables the driver reports the trajectory-averaged
// expectation (mean +- stderr over trajectories) of their sum instead of the
// output distribution; --tolerance stops the batch early once the standard
// error falls under the bound.
//
// Note: trajectories moved from -t to -j when the drivers adopted the shared
// flag table (apps/cli_common.h), where -t uniformly means a trace file.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/cli_common.h"
#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/engine/engine.h"
#include "src/io/circuit_io.h"
#include "src/noise/trajectory.h"
#include "src/obs/observable.h"

namespace {

using namespace qhip;

int usage() {
  std::fprintf(
      stderr,
      "usage: qsim_qtrajectory_hip -c <circuit> -n depolarizing|bitflip|"
      "phaseflip|ampdamp|phasedamp -r <rate> [-j <trajectories>] [-s <seed>] "
      "[-k <top-k>] [-b cpu|auto] [-o \"<pauli>\"]... [--tolerance <t>] "
      "[--workers <n>] [--prom <file|->]\n");
  return 1;
}

noise::KrausChannel make_channel(const std::string& name, double rate) {
  if (name == "depolarizing") return noise::depolarizing(rate);
  if (name == "bitflip") return noise::bit_flip(rate);
  if (name == "phaseflip") return noise::phase_flip(rate);
  if (name == "ampdamp") return noise::amplitude_damping(rate);
  if (name == "phasedamp") return noise::phase_damping(rate);
  throw Error("unknown channel '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  cli::CommonArgs a;
  // Trajectories stream Kraus selections over a host state: cpu is the only
  // noise-capable backend today, and double keeps the averaged distribution
  // comparable with the reference loop.
  a.backend = "cpu";
  a.precision = "double";
  std::string channel_name = "depolarizing";
  std::vector<std::string> observables;
  std::string prom_file;
  double rate = 0.01, tolerance = 0;
  unsigned trajectories = 100, top_k = 8, workers = 4;
  const bool parsed = cli::parse_common_args(
      argc, argv, &a, [&](const std::string& arg, const cli::NextFn& next) {
        if (arg == "-n") {
          const char* v = next();
          if (!v) return false;
          channel_name = v;
          return true;
        }
        if (arg == "-r") {
          const char* v = next();
          if (!v) return false;
          rate = parse_double(v, "-r");
          return true;
        }
        if (arg == "-j") {
          const char* v = next();
          if (!v) return false;
          trajectories = static_cast<unsigned>(parse_uint(v, "-j"));
          return true;
        }
        if (arg == "-k") {
          const char* v = next();
          if (!v) return false;
          top_k = static_cast<unsigned>(parse_uint(v, "-k"));
          return true;
        }
        if (arg == "-o") {
          const char* v = next();
          if (!v) return false;
          observables.push_back(v);
          return true;
        }
        if (arg == "--tolerance") {
          const char* v = next();
          if (!v) return false;
          tolerance = parse_double(v, "--tolerance");
          return true;
        }
        if (arg == "--workers") {
          const char* v = next();
          if (!v) return false;
          workers = static_cast<unsigned>(parse_uint(v, "--workers"));
          return true;
        }
        if (arg == "--prom") {
          const char* v = next();
          if (!v) return false;
          prom_file = v;
          return true;
        }
        return false;
      });
  if (!parsed || a.circuit_file.empty()) return usage();

  try {
    const Circuit circuit = read_circuit_file(a.circuit_file);
    check(circuit.num_qubits <= 20,
          "qtrajectory driver caps circuits at 20 qubits");
    check(circuit.num_measurements() == 0,
          "strip measurement gates for trajectory averaging");

    Tracer tracer;
    Tracer* tp = a.trace_file.empty() ? nullptr : &tracer;

    engine::EngineOptions opt;
    opt.num_workers = std::max(1u, workers);
    opt.tracer = tp;
    // "auto" must pick a noise-capable candidate; keep cpu on the list.
    opt.planner_candidates = {"cpu", "hip", "a100"};
    engine::SimulationEngine eng(opt);

    engine::SimRequest req;
    req.kind = engine::RequestKind::kTrajectory;
    req.circuit = circuit;
    req.backend = a.backend;
    req.precision =
        a.precision == "double" ? Precision::kDouble : Precision::kSingle;
    req.seed = a.seed;
    req.noise = noise::NoiseModel{make_channel(channel_name, rate)};
    req.num_trajectories = trajectories;
    req.trajectory_tolerance = tolerance;
    for (const std::string& text : observables) {
      req.observable.strings.push_back(obs::parse_pauli_string(text));
    }

    std::printf(
        "circuit: %u qubits, %zu gates; channel %s, %u trajectories; "
        "engine backend %s, %u workers\n",
        circuit.num_qubits, circuit.size(), req.noise.channel.name.c_str(),
        trajectories, a.backend.c_str(), opt.num_workers);

    const engine::SimResult res = eng.run(std::move(req));
    check(res.ok, "engine rejected the trajectory batch: " + res.error);

    std::printf("served on %s: %zu trajectories in %.3f s\n",
                res.backend_used.c_str(), res.trajectories_run,
                res.total_seconds);
    if (!observables.empty()) {
      std::printf("<O> = %.6f +- %.6f (%zu trajectories)\n",
                  res.expectation.real(), res.expectation_stderr,
                  res.trajectories_run);
    } else {
      std::vector<std::pair<double, index_t>> top;
      for (index_t i = 0; i < static_cast<index_t>(res.distribution.size());
           ++i) {
        top.push_back({res.distribution[i], i});
      }
      std::partial_sort(top.begin(),
                        top.begin() + std::min<std::size_t>(top_k, top.size()),
                        top.end(), std::greater<>());
      std::printf("top noisy outcomes:\n");
      for (unsigned k = 0; k < top_k && k < top.size(); ++k) {
        std::printf("  |%llu>  p=%.6f\n",
                    static_cast<unsigned long long>(top[k].second),
                    top[k].first);
      }
    }

    eng.export_metrics();  // engine/... counters into the trace JSON
    if (tp) {
      tracer.write_perfetto_json(a.trace_file);
      std::printf("trace: %zu events -> %s (load in https://ui.perfetto.dev)\n",
                  tracer.size(), a.trace_file.c_str());
    }
    if (!prom_file.empty()) {
      const std::string text = eng.metrics().to_prom_text();
      if (prom_file == "-") {
        std::fputs(text.c_str(), stdout);
      } else {
        std::FILE* f = std::fopen(prom_file.c_str(), "w");
        check(f != nullptr, "cannot open '" + prom_file + "' for writing");
        std::fputs(text.c_str(), f);
        std::fclose(f);
        std::printf("prometheus: %zu bytes -> %s\n", text.size(),
                    prom_file.c_str());
      }
    }
    return 0;
  } catch (const qhip::Error& e) {
    std::fprintf(stderr, "qsim_qtrajectory_hip: %s\n", e.what());
    return 1;
  }
}
