// qsim_amplitudes_hip — mirrors qsim's qsim_amplitudes driver: simulates a
// circuit and prints the amplitudes of specific bitstrings (the primitive
// behind RQC cross-entropy verification, where only the sampled bitstrings'
// ideal amplitudes are needed).
//
// Usage:
//   qsim_amplitudes_hip -c <circuit> -i <bitstrings-file> [-f <max-fused>]
//                       [-b cpu|hip|a100] [-p single|double]
//
// The bitstrings file holds one bitstring per line, most significant qubit
// first (ket notation: the leftmost character is qubit n-1). '#' comments
// and blank lines are ignored. Output: one line per bitstring with its
// complex amplitude and probability.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/hipsim/simulator_hip.h"
#include "src/io/circuit_io.h"
#include "src/simulator/runner.h"
#include "src/simulator/simulator_cpu.h"

namespace {

using namespace qhip;

int usage() {
  std::fprintf(stderr,
               "usage: qsim_amplitudes_hip -c <circuit> -i <bitstrings> "
               "[-f <max-fused>] [-b cpu|hip|a100] [-p single|double]\n");
  return 1;
}

std::vector<index_t> read_bitstrings(const std::string& path, unsigned n) {
  std::ifstream f(path);
  check(f.good(), "cannot open bitstrings file '" + path + "'");
  std::vector<index_t> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    const std::string_view body = trim(line);
    if (body.empty() || body[0] == '#') continue;
    const std::string ctx = path + ":" + std::to_string(lineno);
    check(body.size() == n,
          ctx + strfmt(": expected %u bits, got %zu", n, body.size()));
    index_t v = 0;
    for (char c : body) {
      check(c == '0' || c == '1', ctx + ": bitstrings must be 0/1");
      v = (v << 1) | static_cast<index_t>(c - '0');
    }
    out.push_back(v);
  }
  check(!out.empty(), path + ": no bitstrings");
  return out;
}

std::string to_bits(index_t v, unsigned n) {
  std::string s(n, '0');
  for (unsigned i = 0; i < n; ++i) {
    if (v & (index_t{1} << (n - 1 - i))) s[i] = '1';
  }
  return s;
}

template <typename FP>
int run(const std::string& backend, const Circuit& circuit,
        const std::vector<index_t>& bits, unsigned max_fused) {
  const unsigned n = circuit.num_qubits;
  std::vector<cplx<FP>> amps;
  if (backend == "cpu") {
    StateVector<FP> host(n);
    SimulatorCPU<FP> sim;
    RunOptions opt;
    opt.max_fused_qubits = max_fused;
    run_circuit(circuit, sim, host, opt);
    for (index_t v : bits) amps.push_back(host[v]);
  } else {
    vgpu::Device dev(backend == "a100" ? vgpu::a100() : vgpu::mi250x_gcd());
    hipsim::SimulatorHIP<FP> sim(dev);
    hipsim::DeviceStateVector<FP> ds(dev, n);
    sim.state_space().set_zero_state(ds);
    sim.run(fuse_circuit(circuit, {max_fused}).circuit, ds);
    // Device-side gather: only the requested amplitudes leave the device.
    amps = sim.state_space().get_amplitudes(ds, bits);
  }
  for (std::size_t k = 0; k < bits.size(); ++k) {
    const cplx64 a(amps[k].real(), amps[k].imag());
    std::printf("%s  % .8e % .8e  p=%.8e\n", to_bits(bits[k], n).c_str(),
                a.real(), a.imag(), std::norm(a));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string circuit_file, bits_file, backend = "hip", precision = "single";
  unsigned max_fused = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return ++i < argc ? argv[i] : nullptr; };
    if (arg == "-c") {
      const char* v = next();
      if (!v) return usage();
      circuit_file = v;
    } else if (arg == "-i") {
      const char* v = next();
      if (!v) return usage();
      bits_file = v;
    } else if (arg == "-f") {
      const char* v = next();
      if (!v) return usage();
      max_fused = static_cast<unsigned>(qhip::parse_uint(v, "-f"));
    } else if (arg == "-b") {
      const char* v = next();
      if (!v) return usage();
      backend = v;
    } else if (arg == "-p") {
      const char* v = next();
      if (!v) return usage();
      precision = v;
    } else {
      return usage();
    }
  }
  if (circuit_file.empty() || bits_file.empty()) return usage();
  if (backend != "cpu" && backend != "hip" && backend != "a100") return usage();

  try {
    const qhip::Circuit circuit = qhip::read_circuit_file(circuit_file);
    qhip::check(circuit.num_qubits <= 26,
                "this host build caps circuits at 26 qubits (memory)");
    const auto bits = read_bitstrings(bits_file, circuit.num_qubits);
    return precision == "double"
               ? run<double>(backend, circuit, bits, max_fused)
               : run<float>(backend, circuit, bits, max_fused);
  } catch (const qhip::Error& e) {
    std::fprintf(stderr, "qsim_amplitudes_hip: %s\n", e.what());
    return 1;
  }
}
