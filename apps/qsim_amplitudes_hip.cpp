// qsim_amplitudes_hip — mirrors qsim's qsim_amplitudes driver: simulates a
// circuit and prints the amplitudes of specific bitstrings (the primitive
// behind RQC cross-entropy verification, where only the sampled bitstrings'
// ideal amplitudes are needed).
//
// Usage:
//   qsim_amplitudes_hip -c <circuit> -i <bitstrings-file>
//                       [common flags; see apps/cli_common.h]
//
// The bitstrings file holds one bitstring per line, most significant qubit
// first (ket notation: the leftmost character is qubit n-1). '#' comments
// and blank lines are ignored. Output: one line per bitstring with its
// complex amplitude and probability.
//
// Runs on any runtime backend, including hip:N; the GPU paths gather only
// the requested amplitudes off the device.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apps/cli_common.h"
#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/engine/backend.h"
#include "src/io/circuit_io.h"

namespace {

using namespace qhip;

int usage() {
  std::fprintf(stderr,
               "usage: qsim_amplitudes_hip -c <circuit> -i <bitstrings> %s\n",
               cli::common_usage());
  return 1;
}

std::vector<index_t> read_bitstrings(const std::string& path, unsigned n) {
  std::ifstream f(path);
  check(f.good(), "cannot open bitstrings file '" + path + "'");
  std::vector<index_t> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    const std::string_view body = trim(line);
    if (body.empty() || body[0] == '#') continue;
    const std::string ctx = path + ":" + std::to_string(lineno);
    check(body.size() == n,
          ctx + strfmt(": expected %u bits, got %zu", n, body.size()));
    index_t v = 0;
    for (char c : body) {
      check(c == '0' || c == '1', ctx + ": bitstrings must be 0/1");
      v = (v << 1) | static_cast<index_t>(c - '0');
    }
    out.push_back(v);
  }
  check(!out.empty(), path + ": no bitstrings");
  return out;
}

std::string to_bits(index_t v, unsigned n) {
  std::string s(n, '0');
  for (unsigned i = 0; i < n; ++i) {
    if (v & (index_t{1} << (n - 1 - i))) s[i] = '1';
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  cli::CommonArgs a;
  a.fusion.max_fused_qubits = 4;  // this driver's historical default
  std::string bits_file;
  const bool parsed = cli::parse_common_args(
      argc, argv, &a, [&](const std::string& arg, const cli::NextFn& next) {
        if (arg == "-i") {
          const char* v = next();
          if (!v) return false;
          bits_file = v;
          return true;
        }
        return false;
      });
  if (!parsed || a.circuit_file.empty() || bits_file.empty()) return usage();
  if (!is_backend_spec(a.backend)) return usage();

  try {
    const Circuit circuit = cli::load_circuit(a);
    const unsigned n = circuit.num_qubits;
    const auto bits = read_bitstrings(bits_file, n);

    const auto backend =
        create_backend(a.backend, a.precision, nullptr, a.fault_spec);
    BackendRunSpec rs;
    rs.seed = a.seed;
    rs.amplitude_indices = bits;
    const BackendRunOutput out =
        backend->run(fuse_circuit(circuit, a.fusion).circuit, rs);

    for (std::size_t k = 0; k < bits.size(); ++k) {
      const cplx64 amp = out.amplitudes[k];
      std::printf("%s  % .8e % .8e  p=%.8e\n", to_bits(bits[k], n).c_str(),
                  amp.real(), amp.imag(), std::norm(amp));
    }
    return 0;
  } catch (const qhip::Error& e) {
    std::fprintf(stderr, "qsim_amplitudes_hip: %s\n", e.what());
    return 1;
  }
}
