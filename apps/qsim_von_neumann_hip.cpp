// qsim_von_neumann_hip — mirrors qsim's qsim_von_neumann driver: simulates
// a circuit and reports the von Neumann entanglement entropy of a chosen
// subsystem of the final state (plus purity and the reduced spectrum).
//
// Usage:
//   qsim_von_neumann_hip -c <circuit> -q <q0,q1,...> [-f <max-fused>]
//                        [-b cpu|hip|a100] [-p single|double]
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/hipsim/simulator_hip.h"
#include "src/io/circuit_io.h"
#include "src/simulator/runner.h"
#include "src/simulator/simulator_cpu.h"
#include "src/statespace/density.h"

namespace {

using namespace qhip;

int usage() {
  std::fprintf(stderr,
               "usage: qsim_von_neumann_hip -c <circuit> -q <q0,q1,...> "
               "[-f <max-fused>] [-b cpu|hip|a100] [-p single|double]\n");
  return 1;
}

template <typename FP>
int run(const std::string& backend, const Circuit& circuit,
        const std::vector<qubit_t>& subsystem, unsigned max_fused) {
  StateVector<FP> host(circuit.num_qubits);
  if (backend == "cpu") {
    SimulatorCPU<FP> sim;
    RunOptions opt;
    opt.max_fused_qubits = max_fused;
    run_circuit(circuit, sim, host, opt);
  } else {
    vgpu::Device dev(backend == "a100" ? vgpu::a100() : vgpu::mi250x_gcd());
    hipsim::SimulatorHIP<FP> sim(dev);
    hipsim::DeviceStateVector<FP> ds(dev, circuit.num_qubits);
    sim.state_space().set_zero_state(ds);
    sim.run(fuse_circuit(circuit, {max_fused}).circuit, ds);
    ds.download(host);
  }

  const CMatrix rho = statespace::reduced_density_matrix(host, subsystem);
  const auto eig = hermitian_eigenvalues(rho);
  std::printf("subsystem:");
  for (qubit_t q : subsystem) std::printf(" %u", q);
  std::printf(" (%zu qubits)\n", subsystem.size());
  std::printf("reduced spectrum:");
  for (double p : eig) std::printf(" %.6f", p);
  std::printf("\n");
  std::printf("purity tr(rho^2)          = %.6f\n", statespace::purity(rho));
  std::printf("von Neumann entropy       = %.6f nats = %.6f bits\n",
              statespace::von_neumann_entropy(rho),
              statespace::von_neumann_entropy(rho, /*base2=*/true));
  std::printf("max possible for the cut  = %.6f bits\n",
              static_cast<double>(subsystem.size()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string circuit_file, backend = "cpu", precision = "single", qubits_arg;
  unsigned max_fused = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return ++i < argc ? argv[i] : nullptr; };
    if (arg == "-c") {
      const char* v = next();
      if (!v) return usage();
      circuit_file = v;
    } else if (arg == "-q") {
      const char* v = next();
      if (!v) return usage();
      qubits_arg = v;
    } else if (arg == "-f") {
      const char* v = next();
      if (!v) return usage();
      max_fused = static_cast<unsigned>(qhip::parse_uint(v, "-f"));
    } else if (arg == "-b") {
      const char* v = next();
      if (!v) return usage();
      backend = v;
    } else if (arg == "-p") {
      const char* v = next();
      if (!v) return usage();
      precision = v;
    } else {
      return usage();
    }
  }
  if (circuit_file.empty() || qubits_arg.empty()) return usage();

  try {
    const qhip::Circuit circuit = qhip::read_circuit_file(circuit_file);
    qhip::check(circuit.num_qubits <= 26,
                "this host build caps circuits at 26 qubits (memory)");
    std::vector<qhip::qubit_t> subsystem;
    for (const auto& tok : qhip::split(qubits_arg, ",")) {
      subsystem.push_back(
          static_cast<qhip::qubit_t>(qhip::parse_uint(tok, "-q")));
    }
    return precision == "double"
               ? run<double>(backend, circuit, subsystem, max_fused)
               : run<float>(backend, circuit, subsystem, max_fused);
  } catch (const qhip::Error& e) {
    std::fprintf(stderr, "qsim_von_neumann_hip: %s\n", e.what());
    return 1;
  }
}
