// qsim_von_neumann_hip — mirrors qsim's qsim_von_neumann driver: simulates
// a circuit and reports the von Neumann entanglement entropy of a chosen
// subsystem of the final state (plus purity and the reduced spectrum).
//
// Usage:
//   qsim_von_neumann_hip -c <circuit> -q <q0,q1,...>
//                        [common flags; see apps/cli_common.h]
#include <cstdio>
#include <string>
#include <vector>

#include "apps/cli_common.h"
#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/engine/backend.h"
#include "src/io/circuit_io.h"
#include "src/statespace/density.h"

namespace {

using namespace qhip;

int usage() {
  std::fprintf(stderr,
               "usage: qsim_von_neumann_hip -c <circuit> -q <q0,q1,...> %s\n",
               cli::common_usage());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  cli::CommonArgs a;
  a.backend = "cpu";  // this driver's historical default
  a.fusion.max_fused_qubits = 4;
  std::string qubits_arg;
  const bool parsed = cli::parse_common_args(
      argc, argv, &a, [&](const std::string& arg, const cli::NextFn& next) {
        if (arg == "-q") {
          const char* v = next();
          if (!v) return false;
          qubits_arg = v;
          return true;
        }
        return false;
      });
  if (!parsed || a.circuit_file.empty() || qubits_arg.empty()) return usage();
  if (!is_backend_spec(a.backend)) return usage();

  try {
    const Circuit circuit = cli::load_circuit(a);
    std::vector<qubit_t> subsystem;
    for (const auto& tok : split(qubits_arg, ",")) {
      subsystem.push_back(static_cast<qubit_t>(parse_uint(tok, "-q")));
    }

    const auto backend =
        create_backend(a.backend, a.precision, nullptr, a.fault_spec);
    BackendRunSpec rs;
    rs.seed = a.seed;
    rs.want_state = true;
    const BackendRunOutput out =
        backend->run(fuse_circuit(circuit, a.fusion).circuit, rs);

    // The density-matrix reduction runs in double regardless of the
    // simulation precision.
    StateVector<double> host(circuit.num_qubits);
    for (index_t i = 0; i < host.size(); ++i) {
      host[i] = out.state[static_cast<std::size_t>(i)];
    }

    const CMatrix rho = statespace::reduced_density_matrix(host, subsystem);
    const auto eig = hermitian_eigenvalues(rho);
    std::printf("subsystem:");
    for (qubit_t q : subsystem) std::printf(" %u", q);
    std::printf(" (%zu qubits)\n", subsystem.size());
    std::printf("reduced spectrum:");
    for (double p : eig) std::printf(" %.6f", p);
    std::printf("\n");
    std::printf("purity tr(rho^2)          = %.6f\n", statespace::purity(rho));
    std::printf("von Neumann entropy       = %.6f nats = %.6f bits\n",
                statespace::von_neumann_entropy(rho),
                statespace::von_neumann_entropy(rho, /*base2=*/true));
    std::printf("max possible for the cut  = %.6f bits\n",
                static_cast<double>(subsystem.size()));
    return 0;
  } catch (const qhip::Error& e) {
    std::fprintf(stderr, "qsim_von_neumann_hip: %s\n", e.what());
    return 1;
  }
}
