// Figure 7 — execution time of the qsim state-vector simulator on the AMD
// Trento CPU and the AMD MI250X GPU (HIP backend), varying the maximum
// number of fused gates.
//
// Reproduced series: seconds per backend for max_fused = 2..6, plus the
// CPU/GPU speed-up (paper: "seven to nine times faster", optimum at four
// fused gates for both).
#include "bench/figures_common.h"

using namespace qhip;
using namespace qhip::bench;
using perfmodel::Backend;

int main() {
  print_header("Figure 7: CPU (Trento) vs GPU (MI250X, HIP), 30-qubit RQC",
               "GPU 7-9x faster than CPU; 4 fused gates optimal for both");
  const Sweep s = build_sweep();

  std::printf("%-10s %14s %14s %10s %12s\n", "max_fused", "CPU [s]",
              "HIP GPU [s]", "speedup", "fused gates");
  std::vector<std::string> csv;
  double best_cpu = 1e30, best_hip = 1e30;
  unsigned best_cpu_f = 0, best_hip_f = 0;
  double max_speedup = 0, min_speedup = 1e30;
  for (unsigned f = kFusedMin; f <= kFusedMax; ++f) {
    const double tc = model_time(s, Backend::kCpuTrento, f);
    const double th = model_time(s, Backend::kHipMi250x, f);
    std::printf("%-10u %14.3f %14.3f %9.2fx %12zu\n", f, tc, th, tc / th,
                s.stats.at(f).num_gates);
    csv.push_back(std::to_string(f) + "," + std::to_string(tc) + "," +
                  std::to_string(th));
    if (tc < best_cpu) { best_cpu = tc; best_cpu_f = f; }
    if (th < best_hip) { best_hip = th; best_hip_f = f; }
    max_speedup = std::max(max_speedup, tc / th);
    min_speedup = std::min(min_speedup, tc / th);
  }
  std::printf("(run-to-run sigma: 0%% by construction -- the model is "
              "deterministic; the paper reports < 1%% on hardware)\n\n");

  write_csv("fig7.csv", "max_fused,cpu_seconds,hip_seconds", csv);

  std::printf("reproduction checks:\n");
  bool ok = true;
  ok &= check(best_cpu_f == 4, "CPU optimum at max_fused = 4");
  ok &= check(best_hip_f == 4, "GPU optimum at max_fused = 4");
  ok &= check(max_speedup >= 8.0 && max_speedup <= 9.5,
              "peak GPU speedup in the 'up to nine times' band");
  ok &= check(min_speedup >= 5.8, "GPU consistently >~ 6-7x faster");
  return ok ? 0 : 1;
}
