// Microbenchmarks (real wall-clock on this host): gate application on the
// CPU backend — per-width cost of the blocked apply-gate kernel, the
// low-vs-high qubit effect, and single vs double precision. These are the
// host-side analogues of the paper's per-kernel GPU measurements and the
// numbers that ground the CPU device model's width-dependence.
#include <benchmark/benchmark.h>

#include "src/base/rng.h"
#include "src/fusion/fuser.h"
#include "src/rqc/rqc.h"
#include "src/core/gates.h"
#include "src/simulator/apply.h"
#include "src/simulator/simulator_cpu.h"

namespace {

using namespace qhip;

// A random q-qubit fused-style gate on the given targets.
template <typename FP>
Gate wide_gate(const std::vector<qubit_t>& targets, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Circuit c;
  c.num_qubits = static_cast<unsigned>(targets.size());
  for (unsigned t = 0; t < 4; ++t) {
    for (unsigned q = 0; q < c.num_qubits; ++q) {
      c.gates.push_back(gates::rxy(t, q, rng.uniform() * 6, rng.uniform() * 3));
    }
  }
  Gate g;
  g.name = "fused";
  g.qubits = targets;
  g.matrix = circuit_unitary(c);
  return g;
}

template <typename FP>
void BM_ApplyGateWidth(benchmark::State& state) {
  const unsigned n = 18;
  const unsigned q = static_cast<unsigned>(state.range(0));
  std::vector<qubit_t> targets;
  for (unsigned j = 0; j < q; ++j) targets.push_back(5 + j);  // high qubits
  const Gate g = wide_gate<FP>(targets, 1);

  ThreadPool pool(1);
  StateVector<FP> s(n);
  s.set_uniform_state();
  for (auto _ : state) {
    apply_gate_inplace(g, s, pool);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.size()) * 2 *
                          sizeof(cplx<FP>));
  state.counters["amps"] = static_cast<double>(s.size());
}

BENCHMARK_TEMPLATE(BM_ApplyGateWidth, float)->DenseRange(1, 6)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_ApplyGateWidth, double)->DenseRange(1, 6)->Unit(benchmark::kMillisecond);

// Low vs high target qubit: the strided-gather penalty that motivates the
// GPU backend's H/L kernel split.
template <typename FP>
void BM_ApplyGateTargetQubit(benchmark::State& state) {
  const unsigned n = 18;
  const qubit_t target = static_cast<qubit_t>(state.range(0));
  const Gate g = wide_gate<FP>({target}, 2);
  ThreadPool pool(1);
  StateVector<FP> s(n);
  s.set_uniform_state();
  for (auto _ : state) {
    apply_gate_inplace(g, s, pool);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.size()) * 2 *
                          sizeof(cplx<FP>));
}

BENCHMARK_TEMPLATE(BM_ApplyGateTargetQubit, float)
    ->Arg(0)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(17)
    ->Unit(benchmark::kMillisecond);

// End-to-end: fused RQC on the CPU backend at a host-friendly size, the
// real-machine analogue of Figure 7's CPU curve.
void BM_RqcCpuFusedSweep(benchmark::State& state) {
  const unsigned f = static_cast<unsigned>(state.range(0));
  rqc::RqcOptions opt;
  opt.rows = 4;
  opt.cols = 4;
  opt.depth = 14;
  const Circuit fused = fuse_circuit(rqc::generate_rqc(opt), {f}).circuit;
  SimulatorCPU<float> sim;
  for (auto _ : state) {
    StateVector<float> s(16);
    sim.run(fused, s);
    benchmark::DoNotOptimize(s.data());
  }
  state.counters["fused_gates"] = static_cast<double>(fused.size());
}

BENCHMARK(BM_RqcCpuFusedSweep)->DenseRange(1, 6)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
