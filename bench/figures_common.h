// Shared helpers for the figure-reproduction benches.
//
// Every bench regenerates one table or figure of the paper: it builds the
// paper's exact workload (30-qubit RQC), transpiles it at each fusion
// setting, derives the exact per-kernel work statistics, and evaluates the
// calibrated device models (see DESIGN.md §2 for why model-driven times
// stand in for the unavailable MI250X/A100/Trento hardware). The printed
// series are the ones the paper plots; each bench also prints the paper's
// claimed ratios next to the reproduced ones.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>
#include <map>

#include "src/base/timer.h"
#include "src/fusion/fuser.h"
#include "src/perfmodel/model.h"
#include "src/rqc/rqc.h"

namespace qhip::bench {

inline constexpr unsigned kFusedMin = 2;
inline constexpr unsigned kFusedMax = 6;
inline constexpr int kRepeats = 5;  // the paper averages five runs

struct Sweep {
  Circuit circuit;  // the 30-qubit RQC
  // max_fused -> (workload stats, mean fusion transpile seconds, stddev).
  std::map<unsigned, perfmodel::WorkloadStats> stats;
  std::map<unsigned, double> fuse_mean_s;
  std::map<unsigned, double> fuse_std_s;
};

// Generates the paper's benchmark circuit and fuses it at every setting,
// timing the (real) transpile kRepeats times.
inline Sweep build_sweep() {
  Sweep s;
  s.circuit = rqc::circuit_q30();
  for (unsigned f = kFusedMin; f <= kFusedMax; ++f) {
    double sum = 0, sum2 = 0;
    FusionResult last;
    for (int r = 0; r < kRepeats; ++r) {
      Timer t;
      last = fuse_circuit(s.circuit, {f});
      const double sec = t.seconds();
      sum += sec;
      sum2 += sec * sec;
    }
    const double mean = sum / kRepeats;
    s.fuse_mean_s[f] = mean;
    s.fuse_std_s[f] = std::sqrt(std::max(0.0, sum2 / kRepeats - mean * mean));
    s.stats[f] = perfmodel::WorkloadStats::from_circuit(last.circuit);
  }
  return s;
}

inline double model_time(const Sweep& s, perfmodel::Backend b, unsigned f,
                         Precision p = Precision::kSingle) {
  return perfmodel::predict_seconds(s.stats.at(f), b, p);
}

inline void print_header(const char* figure, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper claim: %s\n", claim);
  std::printf("workload: 30-qubit RQC (5x6 grid, 14 cycles), single precision"
              " unless stated;\nmodel-predicted times on the paper's hardware"
              " (exact workload, calibrated roofline)\n");
  std::printf("==============================================================\n");
}

inline bool check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "OK" : "MISS", what);
  return ok;
}

// Writes a simple CSV (header + rows) next to the binary so the figures
// can be re-plotted; prints the path.
inline void write_csv(const char* path, const std::string& header,
                      const std::vector<std::string>& rows) {
  std::ofstream f(path);
  if (!f.good()) {
    std::printf("(could not write %s)\n", path);
    return;
  }
  f << header << "\n";
  for (const auto& r : rows) f << r << "\n";
  std::printf("series written to %s\n", path);
}

}  // namespace qhip::bench
