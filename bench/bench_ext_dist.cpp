// Extension — message-passing distribution (src/dist), the MPI-style
// scaling path the paper's introduction places qsim among (Intel-QS,
// QuEST, Qiskit). Three real SPMD studies on this host:
//
//   1. scaling: communication volume and swap counts of a fused RQC
//      across 2/4/8 ranks, and the fusion knob's second job as a
//      *communication* optimizer — wider fused gates touch distributed
//      qubits less often per unit of work;
//   2. swap protocol: per-swap wall time of the chunked double-buffered
//      pipelined exchange vs the blocking whole-halve baseline, with the
//      pack / exchange / unpack phase breakdown;
//   3. serving: the same distribution running as a first-class engine
//      backend (dist:N) with Born-rule sampling and transfer counters.
#include <chrono>
#include <cstdio>

#include "src/core/gates.h"
#include "src/dist/simulator_dist.h"
#include "src/engine/engine.h"
#include "src/fusion/fuser.h"
#include "src/rqc/rqc.h"

using namespace qhip;

namespace {

// Applies `swaps` H gates alternating between the two highest logical
// qubits; with default layout both live in global slots, so every gate
// costs exactly one slot swap. Returns wall seconds for the whole run.
double time_swaps(int ranks, unsigned n, int swaps, bool pipelined,
                  dist::DistStats* stats) {
  dist::DistOptions dopt;
  dopt.pipelined = pipelined;
  double seconds = 0;
  dist::run_spmd(ranks, [&](dist::Comm& comm) {
    ThreadPool pool(1);
    dist::SimulatorDist<float> sim(comm, n, pool, dopt);
    comm.barrier();
    const auto t0 = std::chrono::steady_clock::now();
    for (int k = 0; k < swaps; ++k) {
      sim.apply_gate(gates::h(0, n - 1 - static_cast<unsigned>(k & 1)));
    }
    comm.barrier();
    const auto t1 = std::chrono::steady_clock::now();
    if (comm.rank() == 0) {
      seconds = std::chrono::duration<double>(t1 - t0).count();
      *stats = sim.stats();
    }
  });
  return seconds;
}

}  // namespace

int main() {
  std::printf("Extension: MPI-style distributed state vector (real SPMD runs)\n\n");
  rqc::RqcOptions opt;
  opt.rows = 3;
  opt.cols = 4;  // 12 qubits
  opt.depth = 10;
  const Circuit circuit = rqc::generate_rqc(opt);
  std::printf("workload: %s\n\n", rqc::describe(circuit).c_str());

  std::printf("%-8s %-10s %12s %16s %18s %14s\n", "ranks", "max_fused",
              "swaps", "sent/rank [MiB]", "amps/rank", "norm check");
  for (int ranks : {2, 4, 8}) {
    for (unsigned f : {2u, 4u}) {
      const Circuit fused = fuse_circuit(circuit, {f}).circuit;
      dist::run_spmd(ranks, [&](dist::Comm& comm) {
        ThreadPool pool(1);
        dist::SimulatorDist<float> sim(comm, circuit.num_qubits, pool);
        sim.run(fused);
        const double n2 = sim.norm2();
        if (comm.rank() == 0) {
          std::printf("%-8d %-10u %12llu %16.3f %18llu %14.6f\n", ranks, f,
                      static_cast<unsigned long long>(sim.stats().slot_swaps),
                      static_cast<double>(sim.stats().bytes_sent) / (1 << 20),
                      static_cast<unsigned long long>(sim.local_slice().size()),
                      n2);
        }
      });
    }
  }

  std::printf("\nEach swap ships half of every rank's slice once in each\n"
              "direction; doubling the rank count halves the slice but adds\n"
              "a distributed qubit, so volume per rank shrinks while swap\n"
              "count grows — the classic distributed state-vector trade.\n");

  // --- swap protocol: pipelined chunked exchange vs blocking baseline ----
  const unsigned n = 22;
  const int ranks = 4;
  const int swaps = 32;
  std::printf("\nSwap protocol (n=%u, ranks=%d, %d swaps, 1 gate per swap):\n\n",
              n, ranks, swaps);
  std::printf("%-12s %12s %12s %12s %12s %12s\n", "protocol", "ms/swap",
              "chunks", "pack ms", "exchange ms", "unpack ms");
  double per_swap[2] = {0, 0};
  for (const bool pipelined : {false, true}) {
    dist::DistStats s{};
    // Warm-up run populates the page cache / staging buffers, second run
    // is the measured one.
    time_swaps(ranks, n, swaps, pipelined, &s);
    const double sec = time_swaps(ranks, n, swaps, pipelined, &s);
    per_swap[pipelined] = sec * 1e3 / swaps;
    std::printf("%-12s %12.3f %12llu %12.2f %12.2f %12.2f\n",
                pipelined ? "pipelined" : "blocking", per_swap[pipelined],
                static_cast<unsigned long long>(s.swap_chunks),
                s.pack_ns / 1e6, s.exchange_ns / 1e6, s.unpack_ns / 1e6);
  }
  std::printf("\npipelined/blocking per-swap time: %.2fx\n",
              per_swap[1] / per_swap[0]);
  std::printf("The blocking path packs the whole outgoing halve, exchanges\n"
              "it, then unpacks; the pipelined path overlaps the three\n"
              "phases chunk by chunk with double-buffered staging.\n");

  // --- serving: dist:N as an engine backend ------------------------------
  std::printf("\nServing path (SimulationEngine, backend=dist:4):\n\n");
  engine::SimulationEngine eng;
  engine::SimRequest req;
  req.circuit = circuit;
  req.backend = "dist:4";
  req.fusion.max_fused_qubits = 4;
  req.seed = 11;
  req.num_samples = 64;
  const engine::SimResult r = eng.run(req);
  if (!r.ok) {
    std::printf("engine run FAILED: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("ok: %zu samples, backend=%s\n", r.samples.size(),
              r.backend_used.c_str());
  for (const char* key : {"slot_swaps", "swap_rounds", "swap_chunks",
                          "peer_bytes", "pack_ns", "exchange_ns", "unpack_ns"}) {
    if (r.counters.count(key)) {
      std::printf("  %-12s %14.0f\n", key, r.counters.at(key));
    }
  }
  return 0;
}
