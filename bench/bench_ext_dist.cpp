// Extension — message-passing distribution (src/dist), the MPI-style
// scaling path the paper's introduction places qsim among (Intel-QS,
// QuEST, Qiskit). Real SPMD runs on this host: communication volume and
// swap counts of a fused RQC across 2/4/8 ranks, and the fusion knob's
// second job as a *communication* optimizer — wider fused gates touch
// distributed qubits less often per unit of work.
#include <cstdio>

#include "src/dist/simulator_dist.h"
#include "src/fusion/fuser.h"
#include "src/rqc/rqc.h"

using namespace qhip;

int main() {
  std::printf("Extension: MPI-style distributed state vector (real SPMD runs)\n\n");
  rqc::RqcOptions opt;
  opt.rows = 3;
  opt.cols = 4;  // 12 qubits
  opt.depth = 10;
  const Circuit circuit = rqc::generate_rqc(opt);
  std::printf("workload: %s\n\n", rqc::describe(circuit).c_str());

  std::printf("%-8s %-10s %12s %16s %18s %14s\n", "ranks", "max_fused",
              "swaps", "sent/rank [MiB]", "amps/rank", "norm check");
  for (int ranks : {2, 4, 8}) {
    for (unsigned f : {2u, 4u}) {
      const Circuit fused = fuse_circuit(circuit, {f}).circuit;
      dist::run_spmd(ranks, [&](dist::Comm& comm) {
        ThreadPool pool(1);
        dist::SimulatorDist<float> sim(comm, circuit.num_qubits, pool);
        sim.run(fused);
        const double n2 = sim.norm2();
        if (comm.rank() == 0) {
          std::printf("%-8d %-10u %12llu %16.3f %18llu %14.6f\n", ranks, f,
                      static_cast<unsigned long long>(sim.stats().slot_swaps),
                      static_cast<double>(sim.stats().bytes_sent) / (1 << 20),
                      static_cast<unsigned long long>(sim.local_slice().size()),
                      n2);
        }
      });
    }
  }

  std::printf("\nEach swap ships half of every rank's slice once in each\n"
              "direction; doubling the rank count halves the slice but adds\n"
              "a distributed qubit, so volume per rank shrinks while swap\n"
              "count grows — the classic distributed state-vector trade.\n");
  return 0;
}
