// Figure 8 — single vs double precision with the qsim HIP backend on the
// AMD MI250X GPU, varying the maximum number of fused gates.
//
// Paper: "calculations performed in double-precision exhibit an approximate
// slowdown of 1.8 to 2 times compared to those in single-precision", with
// no accuracy benefit for the RQC workload. The accuracy side is verified
// here for real: the same 16-qubit RQC is simulated in both precisions on
// the virtual GPU and the states compared.
#include "bench/figures_common.h"
#include "src/hipsim/simulator_hip.h"

using namespace qhip;
using namespace qhip::bench;
using perfmodel::Backend;

int main() {
  print_header(
      "Figure 8: single vs double precision, HIP backend on MI250X",
      "double precision 1.8-2x slower; no accuracy benefit for RQC");
  const Sweep s = build_sweep();

  std::printf("%-10s %16s %16s %10s\n", "max_fused", "single [s]",
              "double [s]", "ratio");
  std::vector<std::string> csv;
  bool ratio_ok = true;
  for (unsigned f = kFusedMin; f <= kFusedMax; ++f) {
    const double sp = model_time(s, Backend::kHipMi250x, f, Precision::kSingle);
    const double dp = model_time(s, Backend::kHipMi250x, f, Precision::kDouble);
    std::printf("%-10u %16.3f %16.3f %9.2fx\n", f, sp, dp, dp / sp);
    csv.push_back(std::to_string(f) + "," + std::to_string(sp) + "," +
                  std::to_string(dp));
    ratio_ok &= dp / sp >= 1.75 && dp / sp <= 2.05;
  }

  write_csv("fig8.csv", "max_fused,single_seconds,double_seconds", csv);

  // Accuracy comparison on a real (emulated-GPU) run at 16 qubits.
  std::printf("\naccuracy check (real run, 16-qubit RQC on virtual MI250X):\n");
  rqc::RqcOptions opt;
  opt.rows = 4;
  opt.cols = 4;
  opt.depth = 14;
  const Circuit c16 = rqc::generate_rqc(opt);
  const Circuit fused = fuse_circuit(c16, {4}).circuit;

  vgpu::Device dev{vgpu::mi250x_gcd()};
  hipsim::SimulatorHIP<float> sim_sp(dev);
  hipsim::DeviceStateVector<float> st_sp(dev, 16);
  sim_sp.state_space().set_zero_state(st_sp);
  sim_sp.run(fused, st_sp);

  hipsim::SimulatorHIP<double> sim_dp(dev);
  hipsim::DeviceStateVector<double> st_dp(dev, 16);
  sim_dp.state_space().set_zero_state(st_dp);
  sim_dp.run(fused, st_dp);

  const StateVector<float> h_sp = st_sp.to_host();
  const StateVector<double> h_dp = st_dp.to_host();
  double worst = 0;
  for (index_t i = 0; i < h_sp.size(); ++i) {
    worst = std::max(worst, std::abs(cplx64(h_sp[i].real(), h_sp[i].imag()) -
                                     h_dp[i]));
  }
  std::printf("  max |psi_sp - psi_dp| = %.2e over %llu amplitudes\n", worst,
              static_cast<unsigned long long>(h_sp.size()));

  std::printf("\nreproduction checks:\n");
  bool ok = true;
  ok &= check(ratio_ok, "DP/SP ratio within 1.8-2x at every fusion setting");
  ok &= check(worst < 1e-4,
              "single precision reproduces the double-precision state "
              "(no substantive disparity, as the paper observed)");
  return ok ? 0 : 1;
}
