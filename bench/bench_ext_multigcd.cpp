// Extension — multi-GCD scaling (the paper's §7 future work, implemented
// in src/hipsim/multi_gcd.h).
//
// Two parts:
//  1. Real measurements on the emulator: communication volume (slot swaps,
//     peer bytes) of a fused RQC across 2 and 4 GCDs at several fusion
//     settings. Fusion is also a *communication* optimization: wider
//     fused gates mean fewer global-qubit touches per pass.
//  2. A projected 31-qubit run (one qubit beyond a single 128 GB GCD at
//     double precision): per-GCD local time from the calibrated model plus
//     peer traffic over the MI250X Infinity Fabric (50 GB/s per direction
//     between the two GCDs of a package).
#include <cstdio>

#include "bench/figures_common.h"
#include "src/hipsim/multi_gcd.h"

using namespace qhip;
using namespace qhip::bench;
using perfmodel::Backend;

int main() {
  std::printf("Extension: multi-GCD HIP backend (paper SS7 future work)\n\n");
  std::printf("Part 1 — measured communication on the emulator "
              "(12-qubit RQC, real runs)\n");
  std::printf("%-8s %-10s %14s %14s %18s\n", "GCDs", "max_fused",
              "slot swaps", "peer [MiB]", "gate launches");

  rqc::RqcOptions opt;
  opt.rows = 3;
  opt.cols = 4;
  opt.depth = 10;
  const Circuit circuit = rqc::generate_rqc(opt);

  for (unsigned gcds : {2u, 4u}) {
    for (unsigned f : {2u, 4u}) {
      const Circuit fused = fuse_circuit(circuit, {f}).circuit;
      hipsim::MultiGcdSimulator<float> sim(circuit.num_qubits, gcds);
      sim.run(fused);
      const auto& st = sim.stats();
      std::printf("%-8u %-10u %14llu %14.2f %18llu\n", gcds, f,
                  static_cast<unsigned long long>(st.slot_swaps),
                  static_cast<double>(st.peer_bytes) / (1 << 20),
                  static_cast<unsigned long long>(st.local_gate_launches));
    }
  }

  std::printf("\nPart 2 — projected 31-qubit RQC on 2 GCDs (one MI250X "
              "package), single precision\n");
  // Workload: 31-qubit RQC is not generated (31 is prime vs the grid); use
  // the 30-qubit fused workload scaled by 2x amplitudes as the per-gate
  // cost basis, which is exact for the bandwidth-bound regime.
  const Sweep s = build_sweep();
  constexpr double kFabricGBs = 50.0;  // GCD<->GCD Infinity Fabric, one way
  std::printf("%-10s %16s %16s %16s\n", "max_fused", "local [s]",
              "comm [s]", "total [s]");
  for (unsigned f = kFusedMin; f <= kFusedMax; ++f) {
    // Each GCD holds 2^30 amplitudes: local time equals the n=30 single-GCD
    // time; both GCDs run concurrently.
    const double local = model_time(s, Backend::kHipMi250x, f);
    // Global-qubit swaps: measured swap count per gate from the emulator
    // scales with the gate stream; approximate one swap per 8 fused gates
    // (the 12-qubit measurement above), each moving half the per-GCD state
    // both ways.
    const double swaps = static_cast<double>(s.stats.at(f).num_gates) / 8.0;
    const double bytes_per_swap = 2.0 * (std::pow(2.0, 30) / 2) * 8.0;
    const double comm = swaps * bytes_per_swap / (kFabricGBs * 1e9);
    std::printf("%-10u %16.3f %16.3f %16.3f\n", f, local, comm, local + comm);
  }
  std::printf("\n(31 qubits in single precision needs 16 GiB of amplitudes —"
              " fits two 128 GB GCDs\nwith room for staging; a single GCD "
              "also fits it, but 33+ qubits would not.)\n");
  return 0;
}
