// Microbenchmarks (real wall-clock on this host): state-space operations —
// norms, inner products, Born sampling and measurement — on the host
// backend and on the virtual GPU (reduction kernels with wavefront
// collectives).
#include <benchmark/benchmark.h>

#include "src/hipsim/state_space_hip.h"
#include "src/statespace/statevector.h"

namespace {

using namespace qhip;

void BM_HostNorm2(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  StateVector<float> s(n);
  s.set_uniform_state();
  ThreadPool pool(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(statespace::norm2(s, pool));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.size()) * sizeof(cplx32));
}
BENCHMARK(BM_HostNorm2)->Arg(16)->Arg(18)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_HostInnerProduct(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  StateVector<float> a(n), b(n);
  a.set_uniform_state();
  b.set_uniform_state();
  ThreadPool pool(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(statespace::inner_product(a, b, pool));
  }
}
BENCHMARK(BM_HostInnerProduct)->Arg(16)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_HostSample(benchmark::State& state) {
  const unsigned n = 18;
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  StateVector<float> s(n);
  s.set_uniform_state();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(statespace::sample(s, m, ++seed));
  }
  state.counters["samples"] = static_cast<double>(m);
}
BENCHMARK(BM_HostSample)->Arg(100)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_HostMeasure(benchmark::State& state) {
  const unsigned n = 16;
  ThreadPool pool(1);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    StateVector<float> s(n);
    s.set_uniform_state();
    benchmark::DoNotOptimize(statespace::measure(s, {0, 5, 9}, ++seed, pool));
  }
}
BENCHMARK(BM_HostMeasure)->Unit(benchmark::kMillisecond);

void BM_VgpuNorm2(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  vgpu::Device dev{vgpu::mi250x_gcd()};
  hipsim::StateSpaceHIP<float> space(dev);
  hipsim::DeviceStateVector<float> s(dev, n);
  space.set_uniform_state(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.norm2(s));
  }
  state.SetLabel("Norm2_Kernel (wavefront reduction)");
}
BENCHMARK(BM_VgpuNorm2)->Arg(12)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_VgpuSample(benchmark::State& state) {
  vgpu::Device dev{vgpu::mi250x_gcd()};
  hipsim::StateSpaceHIP<float> space(dev);
  hipsim::DeviceStateVector<float> s(dev, 14);
  space.set_uniform_state(s);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.sample(s, 1000, ++seed));
  }
}
BENCHMARK(BM_VgpuSample)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
