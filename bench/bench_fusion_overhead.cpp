// §4 claim — "gate fusion only took a small fraction of the total execution
// time (< 2%)".
//
// The fusion transpile runs for real on this host (it is pure small-matrix
// host work, identical to what the authors ran); the simulation time it is
// compared against is the model-predicted HIP-backend time for the same
// fused circuit on the MI250X.
#include "bench/figures_common.h"

using namespace qhip;
using namespace qhip::bench;
using perfmodel::Backend;

int main() {
  print_header("SS4: gate-fusion transpile overhead vs simulation time",
               "fusion takes < 2% of total execution time");
  const Sweep s = build_sweep();

  std::printf("%-10s %16s %18s %12s\n", "max_fused", "fusion [ms]",
              "simulation [s]", "share");
  bool ok = true;
  for (unsigned f = kFusedMin; f <= kFusedMax; ++f) {
    const double fuse_s = s.fuse_mean_s.at(f);
    const double sim_s = model_time(s, Backend::kHipMi250x, f);
    const double share = fuse_s / (fuse_s + sim_s);
    std::printf("%-10u %13.2f+-%.2f %18.3f %11.2f%%\n", f, fuse_s * 1e3,
                s.fuse_std_s.at(f) * 1e3, sim_s, share * 100);
    ok &= share < 0.02;
  }
  std::printf("\nreproduction checks:\n");
  check(ok, "fusion < 2% of total at every setting");
  return ok ? 0 : 1;
}
