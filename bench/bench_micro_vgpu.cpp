// Microbenchmarks (real wall-clock on this host): the virtual-GPU runtime
// itself — launch overhead in direct vs fiber mode, wavefront-collective
// cost at widths 32 and 64, and the ApplyGateH vs ApplyGateL kernel cost
// (the emulator-level ground truth behind the Figure 6 observation that
// the L kernel is the expensive one).
#include <benchmark/benchmark.h>

#include "src/core/gates.h"
#include "src/hipsim/simulator_hip.h"

namespace {

using namespace qhip;

void BM_LaunchDirectMode(benchmark::State& state) {
  vgpu::Device dev{vgpu::mi250x_gcd()};
  const unsigned grid = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    dev.launch("noop", {grid, 64, 0, false, {}}, [](vgpu::KernelCtx&) {});
  }
  state.counters["blocks"] = grid;
}
BENCHMARK(BM_LaunchDirectMode)->Arg(1)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_LaunchFiberMode(benchmark::State& state) {
  vgpu::Device dev{vgpu::mi250x_gcd()};
  const unsigned grid = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    dev.launch("noop_sync", {grid, 64, 0, true, {}},
               [](vgpu::KernelCtx& ctx) { ctx.syncthreads(); });
  }
  state.counters["blocks"] = grid;
}
BENCHMARK(BM_LaunchFiberMode)->Arg(1)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_WarpReduce(benchmark::State& state) {
  const unsigned warp = static_cast<unsigned>(state.range(0));
  vgpu::Device dev{vgpu::test_device(warp)};
  std::vector<double> out(1);
  for (auto _ : state) {
    dev.launch("reduce", {8, warp, 0, true, {}}, [&](vgpu::KernelCtx& ctx) {
      const double r = hipsim::warp_reduce_sum(ctx, 1.0);
      if (ctx.lane() == 0) out[0] = r;
    });
    benchmark::DoNotOptimize(out[0]);
  }
}
BENCHMARK(BM_WarpReduce)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

// The H/L kernel cost split on the emulator: one single-qubit gate applied
// to a high (>= 5) or low (< 5) qubit of a 14-qubit device state.
void BM_ApplyGateHL(benchmark::State& state) {
  const qubit_t target = static_cast<qubit_t>(state.range(0));
  vgpu::Device dev{vgpu::mi250x_gcd()};
  hipsim::SimulatorHIP<float> sim(dev);
  hipsim::DeviceStateVector<float> s(dev, 14);
  sim.state_space().set_zero_state(s);
  const Gate g = gates::h(0, target);
  for (auto _ : state) {
    sim.apply_gate(g, s);
  }
  state.SetLabel(target < hipsim::kLowBits ? "ApplyGateL_Kernel"
                                           : "ApplyGateH_Kernel");
}
BENCHMARK(BM_ApplyGateHL)->Arg(0)->Arg(3)->Arg(7)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_DeviceMemcpyH2D(benchmark::State& state) {
  vgpu::Device dev{vgpu::mi250x_gcd()};
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> host(bytes);
  void* d = dev.malloc(bytes);
  for (auto _ : state) {
    dev.memcpy_h2d(d, host.data(), bytes);
  }
  dev.free(d);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_DeviceMemcpyH2D)->Arg(4096)->Arg(1 << 20)->Arg(16 << 20)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
