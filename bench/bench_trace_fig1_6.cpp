// Figures 1 and 6 — rocprof/Perfetto trace of the HIP backend running the
// RQC sampling benchmark.
//
// The paper's trace shows (a) the two main kernels, ApplyGateH_Kernel and
// ApplyGateL_Kernel, dominating execution, (b) hipMemcpyAsync staging the
// gate matrices, and (c) ApplyGateL_Kernel taking more time per call than
// the simpler ApplyGateH_Kernel. This bench runs a reduced RQC (16 qubits,
// the emulated device runs in real time on the host) with the tracer on,
// writes a Perfetto-loadable JSON, and verifies those three observations.
#include <cstdio>

#include "src/fusion/fuser.h"
#include "src/hipsim/simulator_hip.h"
#include "src/prof/trace.h"
#include "src/rqc/rqc.h"

using namespace qhip;

namespace {

bool check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "OK" : "MISS", what);
  return ok;
}

}  // namespace

int main() {
  std::printf("Figures 1 & 6: kernel trace of the HIP backend (RQC sampling)\n");
  rqc::RqcOptions opt;
  opt.rows = 4;
  opt.cols = 4;
  opt.depth = 14;
  const Circuit circuit = rqc::generate_rqc(opt);
  const Circuit fused = fuse_circuit(circuit, {4}).circuit;
  std::printf("workload: %s, fused to %zu gates\n",
              rqc::describe(circuit).c_str(), fused.size());

  Tracer tracer;
  vgpu::Device dev(vgpu::mi250x_gcd(), &tracer);
  hipsim::SimulatorHIP<float> sim(dev);
  hipsim::DeviceStateVector<float> state(dev, circuit.num_qubits);
  sim.state_space().set_zero_state(state);
  sim.run(fused, state);
  sim.state_space().sample(state, 1000, 3);
  dev.synchronize();  // spans are recorded when the streams execute the ops

  const auto rows = tracer.summary();
  std::printf("\n%-28s %8s %12s %14s\n", "event", "count", "total [ms]",
              "mean [us/call]");
  double h_mean = 0, l_mean = 0;
  std::uint64_t h_count = 0, l_count = 0, memcpy_count = 0;
  for (const auto& r : rows) {
    std::printf("%-28s %8llu %12.2f %14.1f\n", r.name.c_str(),
                static_cast<unsigned long long>(r.count),
                static_cast<double>(r.total_us) / 1e3,
                static_cast<double>(r.total_us) / static_cast<double>(r.count));
    if (r.name == "ApplyGateH_Kernel") {
      h_mean = static_cast<double>(r.total_us) / static_cast<double>(r.count);
      h_count = r.count;
    }
    if (r.name == "ApplyGateL_Kernel") {
      l_mean = static_cast<double>(r.total_us) / static_cast<double>(r.count);
      l_count = r.count;
    }
    if (r.name.find("hipMemcpyAsync") != std::string::npos) {
      memcpy_count += r.count;
    }
  }

  // Copy/compute overlap: count async copies whose span intersects a kernel
  // span on a different stream lane — the overlapping rows in the paper's
  // rocprof timeline.
  const auto evs = tracer.events();
  std::uint64_t overlapping_copies = 0;
  for (const auto& m : evs) {
    if (m.kind != TraceKind::kMemcpy ||
        m.name.find("hipMemcpyAsync") == std::string::npos) {
      continue;
    }
    for (const auto& k : evs) {
      if (k.kind != TraceKind::kKernel || k.lane == m.lane) continue;
      if (m.ts_us < k.ts_us + k.dur_us && k.ts_us < m.ts_us + m.dur_us) {
        ++overlapping_copies;
        break;
      }
    }
  }
  std::printf("\n%llu of %llu async copies overlap a kernel on another "
              "stream\n",
              static_cast<unsigned long long>(overlapping_copies),
              static_cast<unsigned long long>(memcpy_count));

  tracer.write_perfetto_json("trace_fig1_6.json");
  std::printf("\ntrace with %zu events written to trace_fig1_6.json "
              "(open in https://ui.perfetto.dev)\n\n", tracer.size());

  std::printf("reproduction checks:\n");
  bool ok = true;
  ok &= check(h_count > 0 && l_count > 0,
              "both ApplyGateH_Kernel and ApplyGateL_Kernel appear (Fig. 1)");
  ok &= check(memcpy_count >= h_count + l_count,
              "hipMemcpyAsync precedes every kernel launch (matrix staging)");
  ok &= check(l_mean > h_mean,
              "ApplyGateL_Kernel takes more time per call than "
              "ApplyGateH_Kernel (Fig. 6)");
  ok &= check(overlapping_copies >= 1,
              "at least one hipMemcpyAsync overlaps a kernel on a different "
              "stream (copy/compute overlap, Fig. 1)");
  return ok ? 0 : 1;
}
