// Microbenchmarks (real wall-clock on this host): the gate-fusion
// transpiler on the paper's 30-qubit RQC — the cost the paper bounds at
// < 2% of total execution time — plus hipify translation throughput.
#include <benchmark/benchmark.h>

#include <sstream>

#include "src/core/circuit.h"
#include "src/fusion/fuser.h"
#include "src/hipify/hipify.h"
#include "src/rqc/rqc.h"
#include "src/transpile/optimizer.h"

namespace {

using namespace qhip;

void BM_FuseRqc30(benchmark::State& state) {
  const unsigned f = static_cast<unsigned>(state.range(0));
  const Circuit c = rqc::circuit_q30();
  std::size_t out_gates = 0;
  for (auto _ : state) {
    const FusionResult r = fuse_circuit(c, {f});
    out_gates = r.stats.output_gates;
    benchmark::DoNotOptimize(r.circuit.gates.data());
  }
  state.counters["fused_gates"] = static_cast<double>(out_gates);
}
BENCHMARK(BM_FuseRqc30)->DenseRange(1, 6)->Unit(benchmark::kMillisecond);

void BM_OptimizeEchoCircuit(benchmark::State& state) {
  // Optimizer throughput on the worst case it excels at: a Loschmidt echo
  // (forward + inverse RQC), which collapses toward the identity.
  rqc::RqcOptions opt;
  opt.rows = 3;
  opt.cols = 4;
  opt.depth = static_cast<unsigned>(state.range(0));
  const Circuit fwd = rqc::generate_rqc(opt);
  const Circuit echo = concatenate(fwd, inverse_circuit(fwd));
  std::size_t out_gates = 0;
  for (auto _ : state) {
    const auto r = transpile::optimize(echo);
    out_gates = r.stats.output_gates;
    benchmark::DoNotOptimize(out_gates);
  }
  state.counters["in_gates"] = static_cast<double>(echo.size());
  state.counters["out_gates"] = static_cast<double>(out_gates);
}
BENCHMARK(BM_OptimizeEchoCircuit)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_RqcGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(rqc::circuit_q30().gates.data());
  }
}
BENCHMARK(BM_RqcGeneration)->Unit(benchmark::kMillisecond);

void BM_HipifyKernels(benchmark::State& state) {
  // Translate a synthetic CUDA file of the given size (repeated kernel
  // blocks), measuring translator throughput.
  const int blocks = static_cast<int>(state.range(0));
  std::ostringstream src;
  src << "#include <cuda_runtime.h>\n";
  for (int i = 0; i < blocks; ++i) {
    src << "__global__ void k" << i << "(float* p) {\n"
        << "  double v = p[threadIdx.x];\n"
        << "  for (int o = 16; o > 0; o >>= 1) v += __shfl_down_sync(0xffffffff, v, o);\n"
        << "  p[0] = v;\n}\n"
        << "void h" << i << "(float* d, float* h, cudaStream_t s) {\n"
        << "  cudaMemcpyAsync(d, h, 64, cudaMemcpyHostToDevice, s);\n"
        << "  k" << i << "<<<128, 64, 0, s>>>(d);\n}\n";
  }
  const std::string text = src.str();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hipify::hipify_source(text).output.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_HipifyKernels)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
