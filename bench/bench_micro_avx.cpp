// Microbenchmark (real wall-clock on this host): scalar vs AVX2 gate
// kernels — the CPU-side ancestor of the GPU port (paper §2.3 traces the
// CUDA backend to qsim's AVX implementation). Reports achieved bytes/s for
// both paths across gate widths.
#include <benchmark/benchmark.h>

#include "src/base/rng.h"
#include "src/core/gates.h"
#include "src/simulator/simulator_avx.h"
#include "src/simulator/simulator_cpu.h"

namespace {

using namespace qhip;

Gate wide_gate(unsigned q, qubit_t start, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Circuit c;
  c.num_qubits = q;
  for (unsigned t = 0; t < 4; ++t) {
    for (unsigned j = 0; j < q; ++j) {
      c.gates.push_back(gates::rxy(t, j, rng.uniform() * 6, rng.uniform() * 3));
    }
  }
  Gate g;
  g.name = "fused";
  for (unsigned j = 0; j < q; ++j) g.qubits.push_back(start + j);
  g.matrix = circuit_unitary(c);
  return g;
}

void BM_ScalarApply(benchmark::State& state) {
  const unsigned q = static_cast<unsigned>(state.range(0));
  const Gate g = wide_gate(q, 4, 1);
  ThreadPool pool(1);
  StateVector<float> s(18);
  s.set_uniform_state();
  for (auto _ : state) {
    apply_gate_inplace(g, s, pool);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.size()) * 2 * sizeof(cplx32));
}
BENCHMARK(BM_ScalarApply)->DenseRange(1, 6)->Unit(benchmark::kMillisecond);

#if defined(__AVX2__) && defined(__FMA__)
void BM_AvxApply(benchmark::State& state) {
  const unsigned q = static_cast<unsigned>(state.range(0));
  const Gate g = wide_gate(q, 4, 1);
  ThreadPool pool(1);
  StateVector<float> s(18);
  s.set_uniform_state();
  for (auto _ : state) {
    apply_gate_avx(g, s, pool);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.size()) * 2 * sizeof(cplx32));
}
BENCHMARK(BM_AvxApply)->DenseRange(1, 6)->Unit(benchmark::kMillisecond);

void BM_AvxApplyDouble(benchmark::State& state) {
  const unsigned q = static_cast<unsigned>(state.range(0));
  const Gate g = wide_gate(q, 4, 1);
  ThreadPool pool(1);
  StateVector<double> s(18);
  s.set_uniform_state();
  for (auto _ : state) {
    apply_gate_avx(g, s, pool);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.size()) * 2 * sizeof(cplx64));
}
BENCHMARK(BM_AvxApplyDouble)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);
#endif

}  // namespace

BENCHMARK_MAIN();
