// Figure 9 — execution time of the qsim CUDA, cuQuantum and HIP backends on
// the Nvidia A100 and AMD MI250X, varying the maximum number of fused
// gates.
//
// Paper claims reproduced here:
//  * A100 consistently beats the MI250X GCD;
//  * the gap is ~5% at two fused gates and widens to ~44% at four;
//  * the HIP backend deteriorates at larger fusion numbers, the Nvidia
//    backends do not;
//  * cuQuantum (cuStateVec) is < 10% ahead of the CUDA backend.
#include "bench/figures_common.h"

using namespace qhip;
using namespace qhip::bench;
using perfmodel::Backend;

int main() {
  print_header("Figure 9: CUDA (A100) vs cuQuantum (A100) vs HIP (MI250X)",
               "5% gap at fusion 2, 44% at fusion 4; HIP degrades at high "
               "fusion; cuQuantum < 10% ahead of CUDA");
  const Sweep s = build_sweep();

  std::printf("%-10s %13s %13s %13s %12s %12s\n", "max_fused", "CUDA [s]",
              "cuQuantum [s]", "HIP [s]", "HIP/CUDA", "CUDA/cuQ");
  std::map<unsigned, double> hip, cuda;
  std::vector<std::string> csv;
  for (unsigned f = kFusedMin; f <= kFusedMax; ++f) {
    const double tc = model_time(s, Backend::kCudaA100, f);
    const double tq = model_time(s, Backend::kCuQuantumA100, f);
    const double th = model_time(s, Backend::kHipMi250x, f);
    cuda[f] = tc;
    hip[f] = th;
    std::printf("%-10u %13.3f %13.3f %13.3f %11.1f%% %11.1f%%\n", f, tc, tq, th,
                (th / tc - 1) * 100, (tc / tq - 1) * 100);
    csv.push_back(std::to_string(f) + "," + std::to_string(tc) + "," +
                  std::to_string(tq) + "," + std::to_string(th));
  }

  write_csv("fig9.csv", "max_fused,cuda_seconds,cuquantum_seconds,hip_seconds",
            csv);

  std::printf("\nreproduction checks:\n");
  bool ok = true;
  const double gap2 = hip[2] / cuda[2] - 1, gap4 = hip[4] / cuda[4] - 1;
  ok &= check(std::abs(gap2 - 0.05) < 0.03,
              "two-gate fusion gap ~ 5% (paper: 5%)");
  ok &= check(std::abs(gap4 - 0.44) < 0.05,
              "four-gate fusion gap ~ 44% (paper: 44%)");
  bool widens = true;
  double prev = 0;
  for (unsigned f = kFusedMin; f <= kFusedMax; ++f) {
    widens &= hip[f] / cuda[f] > prev;
    prev = hip[f] / cuda[f];
  }
  ok &= check(widens, "gap widens monotonically with fusion");
  ok &= check(hip[6] > 1.15 * hip[4],
              "HIP deteriorates beyond its optimum (paper SS5)");
  ok &= check(cuda[6] < 1.10 * cuda[4],
              "CUDA stays flat at high fusion (no deterioration)");
  bool cuq_ok = true;
  for (unsigned f = kFusedMin; f <= kFusedMax; ++f) {
    const double r = cuda[f] / model_time(s, Backend::kCuQuantumA100, f);
    cuq_ok &= r > 1.0 && r < 1.10;
  }
  ok &= check(cuq_ok, "cuQuantum ahead of CUDA by < 10% at every setting");
  return ok ? 0 : 1;
}
