// Ablation — fusion design choices called out in DESIGN.md.
//
// Two knobs are swept on the paper's 30-qubit RQC workload:
//
//  1. The fusion *window* (moments a block may stay open). qsim-style
//     frontier fusion corresponds to a small window; an unbounded greedy
//     clusterer (window 0) collapses the circuit into a handful of
//     maximal-width gates — this sweep shows why the bounded window is
//     the realistic choice (with window 0 there is no fusion optimum and
//     Figure 7/9's U-shape cannot exist).
//
//  2. The H/L kernel split threshold. The paper fixes it at log2(32) = 5
//     (the shared-memory tile). Sweeping the hypothetical threshold shows
//     how many gate launches would take the expensive L path per setting,
//     using the real fused RQC gate stream.
#include <cstdio>

#include "bench/figures_common.h"

using namespace qhip;
using namespace qhip::bench;
using perfmodel::Backend;

int main() {
  std::printf("Ablation 1: fusion window vs fused workload (max_fused = 4)\n");
  std::printf("%-10s %12s %12s %16s %16s\n", "window", "gates",
              "mean width", "HIP model [s]", "fuse time [ms]");
  const Circuit c = rqc::circuit_q30();
  for (unsigned w : {0u, 1u, 2u, 3u, 4u, 6u, 8u, 12u}) {
    Timer t;
    const FusionResult r = fuse_circuit(c, {4, w});
    const double fuse_ms = t.seconds() * 1e3;
    const auto stats = perfmodel::WorkloadStats::from_circuit(r.circuit);
    std::printf("%-10s %12zu %12.2f %16.3f %16.2f\n",
                w == 0 ? "unbounded" : std::to_string(w).c_str(),
                stats.num_gates, r.stats.mean_width(),
                perfmodel::predict_seconds(stats, Backend::kHipMi250x,
                                           Precision::kSingle),
                fuse_ms);
  }

  std::printf("\nAblation 2: hypothetical H/L split threshold "
              "(paper: 5 = log2 of the 32-amplitude tile)\n");
  std::printf("%-12s %16s %16s\n", "threshold", "L-kernel gates",
              "H-kernel gates");
  const Circuit fused = fuse_circuit(c, {4}).circuit;
  for (unsigned thr : {1u, 3u, 5u, 7u, 9u}) {
    std::size_t low = 0, high = 0;
    for (const auto& g : fused.gates) {
      qubit_t lowest = g.qubits[0];
      for (qubit_t t : g.qubits) lowest = std::min(lowest, t);
      (lowest < thr ? low : high) += 1;
    }
    std::printf("%-12u %16zu %16zu%s\n", thr, low, high,
                thr == 5 ? "   <- paper's split" : "");
  }

  std::printf("\nAblation 3: fusion window at every max_fused "
              "(does the f=4 optimum survive?)\n");
  std::printf("%-10s", "window");
  for (unsigned f = 2; f <= 6; ++f) std::printf("      f=%u", f);
  std::printf("   optimum\n");
  for (unsigned w : {0u, 2u, 4u, 8u}) {
    std::printf("%-10s", w == 0 ? "unbounded" : std::to_string(w).c_str());
    unsigned best_f = 0;
    double best_t = 1e30;
    for (unsigned f = 2; f <= 6; ++f) {
      const auto stats = perfmodel::WorkloadStats::from_circuit(
          fuse_circuit(c, {f, w}).circuit);
      const double t = perfmodel::predict_seconds(stats, Backend::kHipMi250x,
                                                  Precision::kSingle);
      std::printf("  %7.3f", t);
      if (t < best_t) {
        best_t = t;
        best_f = f;
      }
    }
    std::printf("   f=%u%s\n", best_f,
                w == 4 ? "  <- default (matches the paper)" : "");
  }
  return 0;
}
