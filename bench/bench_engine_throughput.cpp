// SimulationEngine serving throughput vs per-request cold runs.
//
// The serving scenario from the engine design: the same 20-qubit RQC is
// requested repeatedly (RQC amplitude/sampling services replay identical
// circuits with fixed seeds, so simulation is a pure function of the
// request). Three configurations over the virtual MI250X GCD:
//
//   cold        a fresh backend per request: device construction, state
//               allocation, and transpile paid every time (the legacy
//               run_circuit pattern every driver used)
//   engine-sim  SimulationEngine with the result cache bypassed: fused
//               circuits cached, state buffers pooled, every request still
//               simulated
//   engine      SimulationEngine serving config: identical requests beyond
//               the first are answered from the result cache
//
// Acceptance: engine serves N requests >= 1.3x faster than the cold
// per-request path, with bit-identical samples for the fixed seed. The cold
// and engine-sim legs are measured over a smaller sample (their per-request
// cost is flat) and reported as per-request means; the comparison uses
// those means scaled to N — printed transparently below.
//
// A second mode compares the planner against static placement:
//
//   bench_engine_throughput auto [K]
//
// serves a mixed-size workload (a small RQC where launch overhead dominates
// and a larger one where bandwidth does) three ways: pinned to each planner
// candidate backend, and with backend = "auto" after an explicit-run
// calibration phase. Acceptance: per workload class, auto reaches >= 0.95x
// the best static backend's throughput AND >= 2x the worst static choice,
// with samples bit-identical to the chosen backend requested explicitly.
//
// A third mode measures trajectory-batch fan-out (DESIGN.md §14):
//
//   bench_engine_throughput trajectory [N] [workers]
//
// runs N noisy trajectories of a 12-qubit RQC twice — the serial
// trajectory_distribution reference loop on one thread, and as a single
// engine trajectory-kind request fanned across `workers` workers — and
// checks the averaged distributions are bit-identical. Acceptance: >= 4x
// speedup at 8 workers, scaled down when the host has fewer cores than
// workers (the fan-out cannot beat the physical parallelism available).
//
// A fourth mode prices the always-on flight recorder (docs/OBSERVABILITY.md):
//
//   bench_engine_throughput flightrec [N]
//
// serves N cache-bypassed requests of a serving-size RQC (the same 12-qubit
// shape the trajectory mode uses) through two engines with tracing off:
// flight recorder disabled (capacity 0) and enabled at the default capacity.
// Batches
// alternate between the legs and each leg reports its best batch, so clock
// drift hits both sides equally. Acceptance: recorder overhead <= 2%.
//
// Usage: bench_engine_throughput [N] [cold-sample] [qubits-rows cols depth]
//        bench_engine_throughput auto [K]
//        bench_engine_throughput trajectory [N] [workers]
//        bench_engine_throughput flightrec [N]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/base/threadpool.h"
#include "src/base/timer.h"
#include "src/engine/backend.h"
#include "src/engine/engine.h"
#include "src/noise/trajectory.h"
#include "src/rqc/rqc.h"

using namespace qhip;

namespace {

struct WorkClass {
  const char* name;
  Circuit circuit;
};

// Best-observed seconds per request over `k` sequential bypass-cache runs of
// `cls` pinned to `backend` ("auto" included), distinct seeds so nothing
// coalesces. Minimum, not mean: the small class finishes in ~0.2 ms, where
// scheduler interference in either leg would otherwise dominate the
// auto-vs-static ratio; the fastest run is the interference-free cost.
double measure(engine::SimulationEngine& eng, const WorkClass& cls,
               const std::string& backend, std::size_t k,
               std::uint64_t seed_base) {
  engine::SimRequest req;
  req.circuit = cls.circuit;
  req.backend = backend;
  req.num_samples = 64;
  req.bypass_result_cache = true;
  std::vector<double> per_req;
  per_req.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    req.seed = seed_base + i;
    Timer t;
    const engine::SimResult r = eng.run(req);
    per_req.push_back(t.seconds());
    check(r.ok, std::string(cls.name) + " on " + backend + ": " + r.error);
  }
  return *std::min_element(per_req.begin(), per_req.end());
}

int run_auto_mode(std::size_t k) {
  const std::vector<std::string> candidates = {"cpu", "hip", "hip:2"};

  rqc::RqcOptions small_opt;  // 2x3 grid = 6 qubits: launch-overhead bound
  small_opt.rows = 2;
  small_opt.cols = 3;
  small_opt.depth = 16;
  small_opt.seed = 7;
  rqc::RqcOptions large_opt;  // 4x4 grid = 16 qubits: bandwidth bound
  large_opt.rows = 4;
  large_opt.cols = 4;
  large_opt.depth = 8;
  large_opt.seed = 7;
  WorkClass classes[] = {{"small-6q", rqc::generate_rqc(small_opt)},
                         {"large-16q", rqc::generate_rqc(large_opt)}};

  engine::EngineOptions opt;
  opt.num_workers = 1;  // sequential runs: per-request timing stays honest
  opt.planner_candidates = candidates;
  engine::SimulationEngine eng(opt);

  std::printf("auto vs static placement: %zu requests per (class, backend), "
              "candidates cpu|hip|hip:2\n\n", k);

  // Calibration phase: explicit runs on every candidate feed the planner's
  // EWMA table, so its roofline (the paper's hardware) is corrected to this
  // host before any auto decision is scored.
  for (const WorkClass& cls : classes) {
    for (const std::string& b : candidates) measure(eng, cls, b, 2, 1000);
  }

  bool all_ok = true;
  for (const WorkClass& cls : classes) {
    // The small class runs in ~0.2 ms, so its min-of-k needs more samples to
    // shake off scheduler jitter; they cost nothing next to one large run.
    const std::size_t runs = cls.circuit.num_qubits <= 8 ? k * 4 : k;
    double best = 0, worst = 0;
    std::string best_b, worst_b;
    for (const std::string& b : candidates) {
      const double s = measure(eng, cls, b, runs, 2000);
      std::printf("  %-10s %-6s %10.3f ms / request\n", cls.name, b.c_str(),
                  s * 1e3);
      if (best_b.empty() || s < best) { best = s; best_b = b; }
      if (worst_b.empty() || s > worst) { worst = s; worst_b = b; }
    }
    // Unmeasured auto warmup: the planner explores fusion settings it has
    // no per-f calibration for yet (each costs at most one mispredicted
    // run before its observed time corrects the finest table level), so
    // the measured legs see the converged steady state.
    measure(eng, cls, "auto", 8, 3000);
    const double auto_s = measure(eng, cls, "auto", runs, 2000);
    std::printf("  %-10s %-6s %10.3f ms / request\n", cls.name, "auto",
                auto_s * 1e3);

    // Bit-identity: re-run one auto request, read the placement from its
    // planner counters, and replay it explicitly — identical samples.
    engine::SimRequest probe;
    probe.circuit = cls.circuit;
    probe.backend = "auto";
    probe.num_samples = 64;
    probe.seed = 4242;
    probe.bypass_result_cache = true;
    const engine::SimResult ar = eng.run(probe);
    check(ar.ok, "auto probe failed: " + ar.error);
    engine::SimRequest replay = probe;
    replay.backend = ar.backend_used;
    replay.fusion.max_fused_qubits =
        static_cast<unsigned>(ar.counters.at("planner/max_fused"));
    replay.fusion.window_moments =
        static_cast<unsigned>(ar.counters.at("planner/window"));
    const engine::SimResult er = eng.run(replay);
    check(er.ok, "explicit replay failed: " + er.error);
    check(ar.samples == er.samples && ar.measurements == er.measurements,
          "auto result must be bit-identical to its chosen backend");

    const double vs_best = best / auto_s;   // >= 0.95 wanted
    const double vs_worst = worst / auto_s; // >= 2 wanted
    std::printf("  %-10s auto = %.2fx best static (%s), %.2fx worst (%s), "
                "placed on %s f=%u w=%u%s\n\n",
                cls.name, vs_best, best_b.c_str(), vs_worst, worst_b.c_str(),
                ar.backend_used.c_str(),
                static_cast<unsigned>(ar.counters.at("planner/max_fused")),
                static_cast<unsigned>(ar.counters.at("planner/window")),
                ar.samples == er.samples ? ", bit-identical" : "");
    if (vs_best < 0.95) {
      std::printf("  [FAIL] %s: auto below 0.95x the best static backend\n",
                  cls.name);
      all_ok = false;
    }
    if (vs_worst < 2.0) {
      std::printf("  [FAIL] %s: auto below 2x the worst static backend\n",
                  cls.name);
      all_ok = false;
    }
  }

  const engine::EngineMetrics m = eng.metrics();
  std::printf("planner: %llu decisions, %llu calibrated, %llu observations\n",
              static_cast<unsigned long long>(m.planner_decisions),
              static_cast<unsigned long long>(m.planner_calibrated_decisions),
              static_cast<unsigned long long>(m.planner_observations));
  check(all_ok, "auto placement acceptance thresholds");
  std::printf("  [ok] auto >= 0.95x best static and >= 2x worst static per "
              "class, bit-identical results\n");
  return 0;
}

int run_trajectory_mode(std::size_t n_traj, unsigned workers) {
  rqc::RqcOptions ropt;  // 3x4 grid = 12 qubits: big enough that a
  ropt.rows = 3;         // trajectory costs real work, small enough that the
  ropt.cols = 4;         // serial leg finishes in seconds
  ropt.depth = 8;
  ropt.seed = 7;
  const Circuit circuit = rqc::generate_rqc(ropt);
  const noise::NoiseModel model{noise::depolarizing(0.01)};
  const std::uint64_t seed = 42;

  std::printf("circuit: %s; depolarizing 0.01, %zu trajectories\n",
              rqc::describe(circuit).c_str(), n_traj);

  // --- serial reference: one trajectory at a time, one thread -------------
  ThreadPool serial_pool(1);
  Timer t_serial;
  const std::vector<double> ref = noise::trajectory_distribution<double>(
      circuit, model, n_traj, seed, serial_pool);
  const double serial_s = t_serial.seconds();
  std::printf("serial      %8.3f s (%.3f ms / trajectory)\n", serial_s,
              serial_s / n_traj * 1e3);

  // --- engine: one trajectory-kind request fanned across workers ----------
  engine::EngineOptions opt;
  opt.num_workers = workers;
  engine::SimulationEngine eng(opt);
  engine::SimRequest req;
  req.kind = engine::RequestKind::kTrajectory;
  req.circuit = circuit;
  req.backend = "cpu";
  req.precision = Precision::kDouble;
  req.seed = seed;
  req.noise = model;
  req.num_trajectories = n_traj;
  Timer t_eng;
  const engine::SimResult r = eng.run(std::move(req));
  const double engine_s = t_eng.seconds();
  check(r.ok, "engine trajectory batch failed: " + r.error);
  std::printf("engine      %8.3f s (%.3f ms / trajectory, %u workers)\n",
              engine_s, engine_s / n_traj * 1e3, workers);

  check(r.distribution.size() == ref.size(),
        "distribution size mismatch vs serial reference");
  for (std::size_t i = 0; i < ref.size(); ++i) {
    check(r.distribution[i] == ref[i],
          strfmt("distribution[%zu] diverged from the serial reference "
                 "(%.17g vs %.17g)", i, r.distribution[i], ref[i]));
  }
  std::printf("distribution: bit-identical to the serial reference loop\n\n");

  // The fan-out cannot exceed the physical parallelism of this host: scale
  // the acceptance threshold to min(workers, hardware threads).
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned par = std::min(workers, hw);
  const double required =
      par >= 8 ? 4.0 : (par > 1 ? 0.45 * par : 0.85);
  const double speedup = serial_s / engine_s;
  std::printf("throughput: engine %.2fx vs serial (need >= %.2fx at "
              "parallelism %u = min(%u workers, %u hw threads))\n",
              speedup, required, par, workers, hw);
  check(speedup >= required,
        strfmt("trajectory batch speedup %.2fx below the %.2fx floor",
               speedup, required));
  std::printf("  [ok] trajectory batch meets the hardware-scaled speedup "
              "floor\n");
  return 0;
}

int run_flightrec_mode(std::size_t n_requests) {
  rqc::RqcOptions ropt;  // 3x4 grid = 12 qubits: the serving-size circuit the
  ropt.rows = 3;         // trajectory mode also uses, so the recorder's
  ropt.cols = 4;         // per-event constant is priced against a realistic
  ropt.depth = 8;        // per-request simulation cost
  ropt.seed = 7;
  const Circuit circuit = rqc::generate_rqc(ropt);
  std::printf("circuit: %s; %zu cache-bypassed requests per batch, "
              "tracing off\n", rqc::describe(circuit).c_str(), n_requests);

  auto make_engine = [&](std::size_t capacity) {
    engine::EngineOptions opt;
    opt.num_workers = 1;  // sequential: batch time is pure per-request cost
    opt.flight_recorder_capacity = capacity;
    return std::make_unique<engine::SimulationEngine>(opt);
  };
  auto batch_seconds = [&](engine::SimulationEngine& eng,
                           std::uint64_t seed_base) {
    engine::SimRequest req;
    req.circuit = circuit;
    req.backend = "cpu";
    req.num_samples = 16;
    req.bypass_result_cache = true;
    Timer t;
    for (std::size_t i = 0; i < n_requests; ++i) {
      req.seed = seed_base + i;  // distinct seeds: no memoization
      const engine::SimResult r = eng.run(req);
      check(r.ok, "flightrec bench request failed: " + r.error);
    }
    return t.seconds();
  };

  auto base = make_engine(0);
  auto rec = make_engine(engine::EngineOptions{}.flight_recorder_capacity);

  // Warmup both legs (fused-circuit cache, buffer pool, allocator), then
  // alternate measured batches; min-of-k per leg drops scheduler noise.
  batch_seconds(*base, 1);
  batch_seconds(*rec, 1);
  constexpr std::size_t kBatches = 5;
  double base_best = 0, rec_best = 0;
  for (std::size_t b = 0; b < kBatches; ++b) {
    const double bs = batch_seconds(*base, 1000 + b * n_requests);
    const double rs = batch_seconds(*rec, 1000 + b * n_requests);
    std::printf("  batch %zu: recorder-off %.3f s, recorder-on %.3f s\n",
                b + 1, bs, rs);
    if (b == 0 || bs < base_best) base_best = bs;
    if (b == 0 || rs < rec_best) rec_best = rs;
  }

  const engine::EngineMetrics m = rec->metrics();
  const auto* fr = rec->flight_recorder();
  check(fr != nullptr, "flight recorder must be on in the recorder leg");
  std::printf("recorder leg: %llu requests recorded, ring size %zu, "
              "%llu events dropped\n",
              static_cast<unsigned long long>(fr->total_recorded()),
              fr->size(),
              static_cast<unsigned long long>(fr->dropped_events()));
  check(m.completed >= (kBatches + 1) * n_requests,
        "recorder leg completed-request count");

  const double overhead =
      base_best > 0 ? (rec_best - base_best) / base_best : 0;
  std::printf("\nflight recorder overhead: %.2f%% (best batch %.3f s off vs "
              "%.3f s on; %.1f us / request)\n",
              overhead * 100.0, base_best, rec_best,
              (rec_best - base_best) / static_cast<double>(n_requests) * 1e6);
  check(overhead <= 0.02,
        strfmt("flight recorder overhead %.2f%% exceeds the 2%% budget",
               overhead * 100.0));
  std::printf("  [ok] always-on flight recorder costs <= 2%% with tracing "
              "off\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IOLBF, 0);  // progress lines even when piped
  if (argc > 1 && std::string(argv[1]) == "auto") {
    const std::size_t k = argc > 2 ? parse_uint(argv[2], "K") : 6;
    return run_auto_mode(std::max<std::size_t>(k, 1));
  }
  if (argc > 1 && std::string(argv[1]) == "flightrec") {
    const std::size_t n = argc > 2 ? parse_uint(argv[2], "N") : 150;
    return run_flightrec_mode(std::max<std::size_t>(n, 1));
  }
  if (argc > 1 && std::string(argv[1]) == "trajectory") {
    const std::size_t n = argc > 2 ? parse_uint(argv[2], "N") : 64;
    const unsigned w =
        argc > 3 ? static_cast<unsigned>(parse_uint(argv[3], "workers")) : 8;
    return run_trajectory_mode(std::max<std::size_t>(n, 1), std::max(w, 1u));
  }
  std::size_t n_requests = 100;
  std::size_t cold_sample = 3;  // a cold 20-qubit run is ~1 min on this host
  unsigned rows = 4, cols = 5, depth = 8;  // 4x5 grid = 20 qubits
  if (argc > 1) n_requests = parse_uint(argv[1], "N");
  if (argc > 2) cold_sample = parse_uint(argv[2], "cold-sample");
  if (argc > 5) {
    rows = static_cast<unsigned>(parse_uint(argv[3], "rows"));
    cols = static_cast<unsigned>(parse_uint(argv[4], "cols"));
    depth = static_cast<unsigned>(parse_uint(argv[5], "depth"));
  }
  cold_sample = std::min(cold_sample, n_requests);

  rqc::RqcOptions ropt;
  ropt.rows = rows;
  ropt.cols = cols;
  ropt.depth = depth;
  ropt.seed = 7;
  const Circuit circuit = rqc::generate_rqc(ropt);
  std::printf("circuit: %s\n", rqc::describe(circuit).c_str());
  std::printf("workload: %zu identical requests (seed fixed), backend hip, "
              "f=3, 64 samples each\n\n", n_requests);

  RunOptions ropts;
  ropts.max_fused_qubits = 3;
  ropts.seed = 42;
  ropts.num_samples = 64;

  // --- cold: fresh backend per request ------------------------------------
  std::vector<index_t> cold_samples;
  Timer t_cold;
  for (std::size_t k = 0; k < cold_sample; ++k) {
    const auto backend = create_backend("hip", Precision::kSingle);
    const RunResult r = run_circuit(*backend, circuit, ropts);
    if (k == 0) cold_samples = r.samples;
  }
  const double cold_per_req = t_cold.seconds() / cold_sample;
  std::printf("cold        %8.3f s / request (measured over %zu)\n",
              cold_per_req, cold_sample);

  engine::SimRequest req;
  req.circuit = circuit;
  req.backend = "hip";
  req.fusion.max_fused_qubits = ropts.max_fused_qubits;
  req.seed = ropts.seed;
  req.num_samples = ropts.num_samples;

  // --- engine-sim: caches on, result cache bypassed -----------------------
  double sim_per_req = 0;
  {
    engine::SimulationEngine eng;
    engine::SimRequest r = req;
    r.bypass_result_cache = true;
    Timer t;
    for (std::size_t k = 0; k < cold_sample; ++k) {
      const engine::SimResult s = eng.run(r);
      check(s.ok, "engine-sim request failed: " + s.error);
      check(s.samples == cold_samples, "engine-sim samples diverged");
    }
    sim_per_req = t.seconds() / cold_sample;
    const engine::EngineMetrics m = eng.metrics();
    std::printf("engine-sim  %8.3f s / request (measured over %zu; "
                "fused-cache hit rate %.2f, pool hits %llu)\n",
                sim_per_req, cold_sample, m.fused_cache.hit_rate(),
                static_cast<unsigned long long>(m.pool_hits));
  }

  // --- engine: full serving config ----------------------------------------
  double engine_total = 0;
  {
    engine::SimulationEngine eng;
    std::vector<std::future<engine::SimResult>> futs;
    futs.reserve(n_requests);
    Timer t;
    for (std::size_t k = 0; k < n_requests; ++k) futs.push_back(eng.submit(req));
    for (auto& f : futs) {
      const engine::SimResult s = f.get();
      check(s.ok, "engine request failed: " + s.error);
      check(s.samples == cold_samples,
            "engine samples diverged from the cold run");
    }
    engine_total = t.seconds();
    const engine::EngineMetrics m = eng.metrics();
    std::printf("engine      %8.3f s / request (%zu requests in %.3f s; "
                "%llu result-cache hits, p50 %.2f ms)\n\n",
                engine_total / n_requests, n_requests, engine_total,
                static_cast<unsigned long long>(m.result_cache_hits), m.p50_ms);
  }

  const double cold_total_est = cold_per_req * n_requests;
  const double speedup = cold_total_est / engine_total;
  const double sim_speedup = cold_per_req / sim_per_req;
  std::printf("throughput: engine %.1fx vs cold (%.3f s est. cold total / "
              "%.3f s engine)\n", speedup, cold_total_est, engine_total);
  std::printf("            engine-sim %.2fx vs cold with the result cache "
              "bypassed\n", sim_speedup);
  std::printf("samples: bit-identical across cold, engine-sim, and engine "
              "(seed %llu)\n\n",
              static_cast<unsigned long long>(ropts.seed));

  std::printf("reproduction checks:\n");
  check(speedup >= 1.3, "engine serves repeated requests >= 1.3x faster");
  std::printf("  [ok] engine serves repeated requests >= 1.3x faster\n");
  return 0;
}
