// SimulationEngine serving throughput vs per-request cold runs.
//
// The serving scenario from the engine design: the same 20-qubit RQC is
// requested repeatedly (RQC amplitude/sampling services replay identical
// circuits with fixed seeds, so simulation is a pure function of the
// request). Three configurations over the virtual MI250X GCD:
//
//   cold        a fresh backend per request: device construction, state
//               allocation, and transpile paid every time (the legacy
//               run_circuit pattern every driver used)
//   engine-sim  SimulationEngine with the result cache bypassed: fused
//               circuits cached, state buffers pooled, every request still
//               simulated
//   engine      SimulationEngine serving config: identical requests beyond
//               the first are answered from the result cache
//
// Acceptance: engine serves N requests >= 1.3x faster than the cold
// per-request path, with bit-identical samples for the fixed seed. The cold
// and engine-sim legs are measured over a smaller sample (their per-request
// cost is flat) and reported as per-request means; the comparison uses
// those means scaled to N — printed transparently below.
//
// Usage: bench_engine_throughput [N] [cold-sample] [qubits-rows cols depth]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/base/timer.h"
#include "src/engine/backend.h"
#include "src/engine/engine.h"
#include "src/rqc/rqc.h"

using namespace qhip;

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IOLBF, 0);  // progress lines even when piped
  std::size_t n_requests = 100;
  std::size_t cold_sample = 3;  // a cold 20-qubit run is ~1 min on this host
  unsigned rows = 4, cols = 5, depth = 8;  // 4x5 grid = 20 qubits
  if (argc > 1) n_requests = parse_uint(argv[1], "N");
  if (argc > 2) cold_sample = parse_uint(argv[2], "cold-sample");
  if (argc > 5) {
    rows = static_cast<unsigned>(parse_uint(argv[3], "rows"));
    cols = static_cast<unsigned>(parse_uint(argv[4], "cols"));
    depth = static_cast<unsigned>(parse_uint(argv[5], "depth"));
  }
  cold_sample = std::min(cold_sample, n_requests);

  rqc::RqcOptions ropt;
  ropt.rows = rows;
  ropt.cols = cols;
  ropt.depth = depth;
  ropt.seed = 7;
  const Circuit circuit = rqc::generate_rqc(ropt);
  std::printf("circuit: %s\n", rqc::describe(circuit).c_str());
  std::printf("workload: %zu identical requests (seed fixed), backend hip, "
              "f=3, 64 samples each\n\n", n_requests);

  RunOptions ropts;
  ropts.max_fused_qubits = 3;
  ropts.seed = 42;
  ropts.num_samples = 64;

  // --- cold: fresh backend per request ------------------------------------
  std::vector<index_t> cold_samples;
  Timer t_cold;
  for (std::size_t k = 0; k < cold_sample; ++k) {
    const auto backend = create_backend("hip", Precision::kSingle);
    const RunResult r = run_circuit(*backend, circuit, ropts);
    if (k == 0) cold_samples = r.samples;
  }
  const double cold_per_req = t_cold.seconds() / cold_sample;
  std::printf("cold        %8.3f s / request (measured over %zu)\n",
              cold_per_req, cold_sample);

  engine::SimRequest req;
  req.circuit = circuit;
  req.backend = "hip";
  req.max_fused = ropts.max_fused_qubits;
  req.seed = ropts.seed;
  req.num_samples = ropts.num_samples;

  // --- engine-sim: caches on, result cache bypassed -----------------------
  double sim_per_req = 0;
  {
    engine::SimulationEngine eng;
    engine::SimRequest r = req;
    r.bypass_result_cache = true;
    Timer t;
    for (std::size_t k = 0; k < cold_sample; ++k) {
      const engine::SimResult s = eng.run(r);
      check(s.ok, "engine-sim request failed: " + s.error);
      check(s.samples == cold_samples, "engine-sim samples diverged");
    }
    sim_per_req = t.seconds() / cold_sample;
    const engine::EngineMetrics m = eng.metrics();
    std::printf("engine-sim  %8.3f s / request (measured over %zu; "
                "fused-cache hit rate %.2f, pool hits %llu)\n",
                sim_per_req, cold_sample, m.fused_cache.hit_rate(),
                static_cast<unsigned long long>(m.pool_hits));
  }

  // --- engine: full serving config ----------------------------------------
  double engine_total = 0;
  {
    engine::SimulationEngine eng;
    std::vector<std::future<engine::SimResult>> futs;
    futs.reserve(n_requests);
    Timer t;
    for (std::size_t k = 0; k < n_requests; ++k) futs.push_back(eng.submit(req));
    for (auto& f : futs) {
      const engine::SimResult s = f.get();
      check(s.ok, "engine request failed: " + s.error);
      check(s.samples == cold_samples,
            "engine samples diverged from the cold run");
    }
    engine_total = t.seconds();
    const engine::EngineMetrics m = eng.metrics();
    std::printf("engine      %8.3f s / request (%zu requests in %.3f s; "
                "%llu result-cache hits, p50 %.2f ms)\n\n",
                engine_total / n_requests, n_requests, engine_total,
                static_cast<unsigned long long>(m.result_cache_hits), m.p50_ms);
  }

  const double cold_total_est = cold_per_req * n_requests;
  const double speedup = cold_total_est / engine_total;
  const double sim_speedup = cold_per_req / sim_per_req;
  std::printf("throughput: engine %.1fx vs cold (%.3f s est. cold total / "
              "%.3f s engine)\n", speedup, cold_total_est, engine_total);
  std::printf("            engine-sim %.2fx vs cold with the result cache "
              "bypassed\n", sim_speedup);
  std::printf("samples: bit-identical across cold, engine-sim, and engine "
              "(seed %llu)\n\n",
              static_cast<unsigned long long>(ropts.seed));

  std::printf("reproduction checks:\n");
  check(speedup >= 1.3, "engine serves repeated requests >= 1.3x faster");
  std::printf("  [ok] engine serves repeated requests >= 1.3x faster\n");
  return 0;
}
