// Wire overhead of the qhip_serve front-end (docs/SERVING.md).
//
// Serves the same small-circuit workload two ways and reports per-request
// latency and throughput:
//
//   direct   SimulationEngine::run() in-process (no socket, no JSON)
//   socket   an in-process serve::Server + C client connections speaking
//            the newline-delimited JSON wire protocol over loopback TCP
//
// The interesting number is the per-request overhead (socket - direct):
// JSON encode/decode + loopback round trip. For serving-size circuits the
// simulation dominates and the wire adds single-digit percent; the bench
// prints the ratio so regressions in the codec or the connection loops are
// visible. Also verifies socket results are bit-identical to direct ones
// for the fixed seed (the wire's %.17g round trip).
//
// Usage: bench_serve [N-requests] [connections] [qubits] [depth]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/base/timer.h"
#include "src/core/gates.h"
#include "src/engine/engine.h"
#include "src/serve/client.h"
#include "src/serve/server.h"

using namespace qhip;

namespace {

Circuit make_circuit(unsigned qubits, unsigned depth) {
  Circuit c;
  c.num_qubits = qubits;
  unsigned t = 0;
  for (qubit_t q = 0; q < qubits; ++q) c.gates.push_back(gates::h(t, q));
  for (unsigned d = 0; d < depth; ++d) {
    ++t;
    for (qubit_t q = 0; q < qubits; ++q) {
      c.gates.push_back(gates::rz(t, q, 0.05 * static_cast<double>(d + 1)));
    }
    ++t;
    for (qubit_t q = 0; q + 1 < qubits; q += 2) {
      c.gates.push_back(gates::cnot(t, q, q + 1));
    }
  }
  return c;
}

engine::SimRequest make_request(const Circuit& c, std::uint64_t seed) {
  engine::SimRequest req;
  req.circuit = c;
  req.backend = "cpu";
  req.seed = seed;
  req.num_samples = 32;
  req.bypass_result_cache = true;  // measure simulation + wire, not the LRU
  return req;
}

double pct(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto ix = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[ix];
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t total = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 200;
  const unsigned conns = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;
  const unsigned qubits = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 12;
  const unsigned depth = argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : 4;
  if (total == 0) total = 1;

  const Circuit circuit = make_circuit(qubits, depth);

  engine::EngineOptions eopt;
  eopt.num_workers = 4;
  engine::SimulationEngine eng(eopt);

  // Direct leg.
  std::vector<double> direct_ms;
  direct_ms.reserve(total);
  Timer direct_timer;
  for (std::size_t i = 0; i < total; ++i) {
    Timer t;
    const auto res = eng.run(make_request(circuit, 1 + i));
    direct_ms.push_back(t.seconds() * 1e3);
    if (!res.ok) {
      std::fprintf(stderr, "bench_serve: direct request failed: %s\n",
                   res.error.c_str());
      return 1;
    }
  }
  const double direct_s = direct_timer.seconds();

  // Socket leg, same engine (warm caches for both legs alike).
  serve::Server server(eng, {});
  const auto reference = eng.run(make_request(circuit, 1));
  std::vector<double> socket_ms(total);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::atomic<bool> mismatch{false};
  Timer socket_timer;
  std::vector<std::thread> threads;
  for (unsigned cix = 0; cix < conns; ++cix) {
    threads.emplace_back([&] {
      serve::Client cl("127.0.0.1", server.port());
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= total) break;
        Timer t;
        const auto res = cl.call(make_request(circuit, 1 + i));
        socket_ms[i] = t.seconds() * 1e3;
        if (!res.ok) failed.store(true);
        if (i == 0 && res.samples != reference.samples) mismatch.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  const double socket_s = socket_timer.seconds();
  server.shutdown();

  if (failed.load()) {
    std::fprintf(stderr, "bench_serve: a socket request failed\n");
    return 1;
  }
  if (mismatch.load()) {
    std::fprintf(stderr,
                 "bench_serve: FAIL socket samples differ from direct run\n");
    return 1;
  }

  const double dmean = direct_s * 1e3 / static_cast<double>(total);
  const double smean = socket_s * 1e3 / static_cast<double>(total);
  std::printf("bench_serve: %zu requests, %u qubits depth %u, %u connections\n",
              total, qubits, depth, conns);
  std::printf("  direct: %8.3f ms/req  p50 %8.3f  p95 %8.3f  (%.1f req/s)\n",
              dmean, pct(direct_ms, 0.50), pct(direct_ms, 0.95),
              static_cast<double>(total) / direct_s);
  std::printf("  socket: %8.3f ms/req  p50 %8.3f  p95 %8.3f  (%.1f req/s)\n",
              smean, pct(socket_ms, 0.50), pct(socket_ms, 0.95),
              static_cast<double>(total) / socket_s);
  std::printf("  wire overhead: %.3f ms/req (%.1f%%), samples bit-identical\n",
              smean - dmean, dmean > 0 ? 100.0 * (smean - dmean) / dmean : 0.0);
  return 0;
}
