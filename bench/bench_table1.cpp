// Table 1 — hardware and software setup. Prints the device parameters the
// performance models are built from (the paper's Table 1) plus the derived
// model quantities (per-width achieved bandwidth) for transparency.
#include <cstdio>

#include "src/perfmodel/model.h"

using namespace qhip;
using namespace qhip::perfmodel;

int main() {
  std::printf("%s\n", format_table1().c_str());

  std::printf("Calibrated model parameters (achieved fraction of peak "
              "bandwidth per fused gate width):\n");
  std::printf("%-42s", "backend");
  for (unsigned q = 1; q <= 6; ++q) std::printf("   q=%u", q);
  std::printf("   launch\n");
  for (Backend b : kAllBackends) {
    const BackendModel& m = backend_model(b);
    std::printf("%-42s", backend_name(b));
    for (unsigned q = 1; q <= 6; ++q) std::printf("  %.3f", m.eff_bw[q]);
    std::printf("  %.1f us\n", m.launch_us);
  }
  return 0;
}
