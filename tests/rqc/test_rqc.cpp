#include "src/rqc/rqc.h"

#include <gtest/gtest.h>

#include <set>

#include "src/base/error.h"
#include "src/io/circuit_io.h"

namespace qhip::rqc {
namespace {

TEST(Rqc, CircuitQ30Shape) {
  const Circuit c = circuit_q30();
  EXPECT_EQ(c.num_qubits, 30u);
  EXPECT_NO_THROW(c.validate());
  // 15 single-qubit layers x 30 qubits + two-qubit layers.
  const auto h = c.histogram();
  const std::size_t oneq = h.at("x_1_2") + h.at("y_1_2") + h.at("hz_1_2");
  EXPECT_EQ(oneq, 30u * 15u);
  EXPECT_GT(h.at("fs"), 100u);
  EXPECT_EQ(c.num_measurements(), 0u);
}

TEST(Rqc, DeterministicInSeed) {
  const Circuit a = circuit_q30(7), b = circuit_q30(7), c = circuit_q30(8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.gates[i].name, b.gates[i].name) << i;
    EXPECT_EQ(a.gates[i].qubits, b.gates[i].qubits) << i;
  }
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.gates[i].name != c.gates[i].name;
  }
  EXPECT_TRUE(differs);
}

TEST(Rqc, NoRepeatedSingleQubitGateOnSameQubit) {
  RqcOptions opt;
  opt.rows = 3;
  opt.cols = 3;
  opt.depth = 12;
  const Circuit c = generate_rqc(opt);
  // Track per-qubit sequence of 1q gate names; consecutive must differ.
  std::vector<std::string> last(9);
  for (const auto& g : c.gates) {
    if (g.num_targets() != 1) continue;
    EXPECT_NE(g.name, last[g.qubits[0]]) << "qubit " << g.qubits[0];
    last[g.qubits[0]] = g.name;
  }
}

TEST(Rqc, TwoQubitLayersFollowPatterns) {
  RqcOptions opt;
  opt.rows = 4;
  opt.cols = 4;
  opt.depth = 8;
  opt.seed = 3;
  const Circuit c = generate_rqc(opt);
  // Every fs gate connects grid neighbours.
  for (const auto& g : c.gates) {
    if (g.num_targets() != 2) continue;
    const unsigned a = g.qubits[0], b = g.qubits[1];
    const unsigned ra = a / 4, ca = a % 4, rb = b / 4, cb = b % 4;
    const unsigned dr = ra > rb ? ra - rb : rb - ra;
    const unsigned dc = ca > cb ? ca - cb : cb - ca;
    EXPECT_TRUE((dr == 1 && dc == 0) || (dr == 0 && dc == 1))
        << a << "-" << b;
  }
}

TEST(Rqc, AllFourPatternsAppear) {
  RqcOptions opt;
  opt.rows = 4;
  opt.cols = 4;
  opt.depth = 8;
  const Circuit c = generate_rqc(opt);
  // Across a full ABCDCDAB cycle both orientations and parities occur:
  // collect the distinct edge sets per two-qubit moment.
  std::set<std::pair<qubit_t, qubit_t>> edges;
  for (const auto& g : c.gates) {
    if (g.num_targets() == 2) edges.insert({g.qubits[0], g.qubits[1]});
  }
  // A 4x4 grid has 24 edges; ABCD covers all of them.
  EXPECT_EQ(edges.size(), 24u);
}

TEST(Rqc, EntanglerSelection) {
  RqcOptions opt;
  opt.rows = 2;
  opt.cols = 2;
  opt.depth = 4;
  opt.entangler = Entangler::kCz;
  EXPECT_GT(generate_rqc(opt).histogram().at("cz"), 0u);
  opt.entangler = Entangler::kIswap;
  EXPECT_GT(generate_rqc(opt).histogram().at("is"), 0u);
}

TEST(Rqc, FinalMeasurementOption) {
  RqcOptions opt;
  opt.rows = 2;
  opt.cols = 3;
  opt.depth = 2;
  opt.final_measurement = true;
  const Circuit c = generate_rqc(opt);
  EXPECT_EQ(c.num_measurements(), 1u);
  EXPECT_EQ(c.gates.back().qubits.size(), 6u);
}

TEST(Rqc, RoundTripsThroughCircuitFormat) {
  RqcOptions opt;
  opt.rows = 3;
  opt.cols = 3;
  opt.depth = 6;
  const Circuit c = generate_rqc(opt);
  const Circuit c2 = read_circuit_string(write_circuit_string(c));
  ASSERT_EQ(c.size(), c2.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.gates[i].name, c2.gates[i].name);
    EXPECT_EQ(c.gates[i].qubits, c2.gates[i].qubits);
  }
}

TEST(Rqc, RejectsBadOptions) {
  RqcOptions opt;
  opt.rows = 1;
  opt.cols = 1;
  EXPECT_THROW(generate_rqc(opt), Error);
  opt.rows = 7;
  opt.cols = 7;  // 49 > 40
  EXPECT_THROW(generate_rqc(opt), Error);
  opt.rows = 2;
  opt.cols = 2;
  opt.depth = 0;
  EXPECT_THROW(generate_rqc(opt), Error);
}

TEST(Rqc, DescribeMentionsKeyFacts) {
  const std::string d = describe(circuit_q30());
  EXPECT_NE(d.find("30 qubits"), std::string::npos);
  EXPECT_NE(d.find("fs="), std::string::npos);
}

}  // namespace
}  // namespace qhip::rqc
