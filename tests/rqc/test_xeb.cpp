// End-to-end XEB fidelity checks: the full pipeline (RQC generation ->
// fusion -> simulation -> Born sampling) must produce samples whose linear
// cross-entropy fidelity against the exact distribution is ~1; broken
// kernels or a broken sampler push it toward 0.
#include "src/rqc/xeb.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/fusion/fuser.h"
#include "src/hipsim/simulator_hip.h"
#include "src/rqc/rqc.h"
#include "src/simulator/simulator_cpu.h"

namespace qhip::rqc {
namespace {

TEST(Xeb, ExactSamplingScoresNearOne) {
  RqcOptions opt;
  opt.rows = 4;
  opt.cols = 4;  // 16 qubits
  opt.depth = 10;
  const Circuit c = generate_rqc(opt);
  SimulatorCPU<float> sim;
  StateVector<float> s(16);
  sim.run(fuse_circuit(c, {4}).circuit, s);

  const auto samples = statespace::sample(s, 20000, 5);
  const double f = linear_xeb(s, samples);
  // Porter-Thomas: estimator std ~ 1/sqrt(m); generous band.
  EXPECT_NEAR(f, 1.0, 0.12);
}

TEST(Xeb, UniformSamplesScoreNearZero) {
  RqcOptions opt;
  opt.rows = 4;
  opt.cols = 4;
  opt.depth = 10;
  const Circuit c = generate_rqc(opt);
  SimulatorCPU<float> sim;
  StateVector<float> s(16);
  sim.run(fuse_circuit(c, {4}).circuit, s);

  Xoshiro256 rng(9);
  std::vector<index_t> uniform(20000);
  for (auto& v : uniform) v = static_cast<index_t>(rng.uniform() * s.size());
  EXPECT_NEAR(linear_xeb(s, uniform), 0.0, 0.12);
}

TEST(Xeb, HipBackendPipelineScoresNearOne) {
  RqcOptions opt;
  opt.rows = 3;
  opt.cols = 4;  // 12 qubits
  opt.depth = 10;
  const Circuit c = generate_rqc(opt);

  vgpu::Device dev{vgpu::mi250x_gcd()};
  hipsim::SimulatorHIP<float> sim(dev);
  hipsim::DeviceStateVector<float> ds(dev, 12);
  sim.state_space().set_zero_state(ds);
  sim.run(fuse_circuit(c, {4}).circuit, ds);
  const auto samples = sim.state_space().sample(ds, 10000, 31);

  const StateVector<float> host = ds.to_host();
  EXPECT_NEAR(linear_xeb(host, samples), 1.0, 0.15);
}

TEST(Xeb, FromProbsAgreesWithFromState) {
  StateVector<double> s(4);
  s.set_uniform_state();
  const std::vector<index_t> samples = {0, 3, 7, 15};
  std::vector<double> probs;
  for (index_t i : samples) probs.push_back(std::norm(s[i]));
  EXPECT_NEAR(linear_xeb(s, samples), linear_xeb_from_probs(probs, 4), 1e-12);
  // Uniform state: every probability is 2^-n, F = 0 exactly.
  EXPECT_NEAR(linear_xeb(s, samples), 0.0, 1e-9);
}

TEST(Xeb, Validation) {
  StateVector<double> s(3);
  EXPECT_THROW(linear_xeb(s, {}), Error);
  EXPECT_THROW(linear_xeb(s, {200}), Error);
  EXPECT_THROW(linear_xeb_from_probs({}, 3), Error);
}

}  // namespace
}  // namespace qhip::rqc
