#include "src/obs/observable.h"

#include <gtest/gtest.h>

#include "src/base/error.h"
#include "src/base/rng.h"
#include "src/core/gates.h"
#include "src/simulator/simulator_cpu.h"

namespace qhip::obs {
namespace {

TEST(PauliString, Masks) {
  PauliString p{1.0, {{0, Pauli::kX}, {2, Pauli::kY}, {5, Pauli::kZ}}};
  EXPECT_EQ(p.flip_mask(), 0b000101u);   // X and Y qubits
  EXPECT_EQ(p.phase_mask(), 0b100100u);  // Z and Y qubits
  EXPECT_EQ(p.num_y(), 1u);
}

TEST(PauliString, Validation) {
  PauliString dup{1.0, {{1, Pauli::kX}, {1, Pauli::kZ}}};
  EXPECT_THROW(dup.validate(4), Error);
  PauliString oob{1.0, {{9, Pauli::kX}}};
  EXPECT_THROW(oob.validate(4), Error);
}

TEST(Expectation, ZOnBasisStates) {
  StateVector<double> s(3);
  s.set_basis_state(0b000);
  EXPECT_NEAR(expectation(pauli_z(0), s).real(), 1.0, 1e-14);
  s.set_basis_state(0b001);
  EXPECT_NEAR(expectation(pauli_z(0), s).real(), -1.0, 1e-14);
  EXPECT_NEAR(expectation(pauli_z(1), s).real(), 1.0, 1e-14);
}

TEST(Expectation, XOnPlusMinus) {
  SimulatorCPU<double> sim;
  StateVector<double> s(2);
  sim.apply_gate(gates::h(0, 0), s);  // |+> on qubit 0
  EXPECT_NEAR(expectation(pauli_x(0), s).real(), 1.0, 1e-13);
  EXPECT_NEAR(expectation(pauli_z(0), s).real(), 0.0, 1e-13);
  sim.apply_gate(gates::z(1, 0), s);  // |->
  EXPECT_NEAR(expectation(pauli_x(0), s).real(), -1.0, 1e-13);
}

TEST(Expectation, YEigenstate) {
  // S H |0> = (|0> + i|1>)/sqrt(2), the +1 eigenstate of Y.
  SimulatorCPU<double> sim;
  StateVector<double> s(1);
  sim.apply_gate(gates::h(0, 0), s);
  sim.apply_gate(gates::s(1, 0), s);
  PauliString y{1.0, {{0, Pauli::kY}}};
  EXPECT_NEAR(expectation(y, s).real(), 1.0, 1e-13);
  EXPECT_NEAR(expectation(y, s).imag(), 0.0, 1e-13);
}

TEST(Expectation, ZZCorrelationsOnBell) {
  SimulatorCPU<double> sim;
  StateVector<double> s(2);
  sim.apply_gate(gates::h(0, 0), s);
  sim.apply_gate(gates::cnot(1, 0, 1), s);
  EXPECT_NEAR(expectation(pauli_zz(0, 1), s).real(), 1.0, 1e-13);
  EXPECT_NEAR(expectation(pauli_z(0), s).real(), 0.0, 1e-13);
  // XX also +1 for the Bell state.
  PauliString xx{1.0, {{0, Pauli::kX}, {1, Pauli::kX}}};
  EXPECT_NEAR(expectation(xx, s).real(), 1.0, 1e-13);
}

TEST(Expectation, MatchesDenseOracleOnRandomStates) {
  const unsigned n = 6;
  Xoshiro256 rng(3);
  SimulatorCPU<double> sim;
  StateVector<double> s(n);
  for (unsigned t = 0; t < 6; ++t) {
    for (unsigned q = 0; q < n; ++q) {
      sim.apply_gate(gates::rxy(t, q, rng.uniform() * 6, rng.uniform() * 3), s);
    }
    sim.apply_gate(gates::cz(t, 0, 3), s);
  }

  Observable o;
  o.strings.push_back(PauliString{0.7, {{0, Pauli::kX}, {3, Pauli::kY}}});
  o.strings.push_back(PauliString{-1.2, {{1, Pauli::kZ}, {2, Pauli::kZ}, {5, Pauli::kX}}});
  o.strings.push_back(PauliString{0.35, {{4, Pauli::kY}}});

  // Dense oracle: <psi| M |psi>.
  const CMatrix m = to_dense(o, n);
  cplx64 want{};
  for (index_t r = 0; r < s.size(); ++r) {
    cplx64 mv{};
    for (index_t c = 0; c < s.size(); ++c) mv += m.at(r, c) * s[c];
    want += std::conj(s[r]) * mv;
  }
  const cplx64 got = expectation(o, s);
  EXPECT_NEAR(got.real(), want.real(), 1e-10);
  EXPECT_NEAR(got.imag(), want.imag(), 1e-10);
}

TEST(Expectation, HermitianGivesRealValue) {
  SimulatorCPU<double> sim;
  StateVector<double> s(4);
  Xoshiro256 rng(8);
  for (unsigned q = 0; q < 4; ++q) {
    sim.apply_gate(gates::rxy(0, q, rng.uniform() * 6, rng.uniform() * 3), s);
  }
  const Observable h = transverse_field_ising(4, 1.0, 0.7);
  EXPECT_TRUE(h.is_hermitian());
  EXPECT_NEAR(expectation(h, s).imag(), 0.0, 1e-12);
}

TEST(Ising, GroundStateEnergyAtZeroField) {
  // h = 0: ground state is ferromagnetic |00..0>, E = -J (n-1).
  const unsigned n = 5;
  const Observable h = transverse_field_ising(n, 2.0, 0.0);
  StateVector<double> s(n);
  EXPECT_NEAR(expectation(h, s).real(), -2.0 * (n - 1), 1e-12);
}

TEST(Parse, BasicForms) {
  const PauliString a = parse_pauli_string("1.5 * Z0 Z1");
  EXPECT_NEAR(a.coefficient.real(), 1.5, 1e-15);
  ASSERT_EQ(a.terms.size(), 2u);
  EXPECT_EQ(a.terms[0].op, Pauli::kZ);
  EXPECT_EQ(a.terms[1].qubit, 1u);

  const PauliString b = parse_pauli_string("-0.7*X3");
  EXPECT_NEAR(b.coefficient.real(), -0.7, 1e-15);
  EXPECT_EQ(b.terms[0].op, Pauli::kX);
  EXPECT_EQ(b.terms[0].qubit, 3u);

  const PauliString c = parse_pauli_string("Y12");
  EXPECT_NEAR(c.coefficient.real(), 1.0, 1e-15);
  EXPECT_EQ(c.terms[0].qubit, 12u);

  EXPECT_THROW(parse_pauli_string(""), Error);
  EXPECT_THROW(parse_pauli_string("1.5"), Error);
  EXPECT_THROW(parse_pauli_string("Q3"), Error);
}

TEST(Parse, RoundTripThroughExpectation) {
  SimulatorCPU<double> sim;
  StateVector<double> s(3);
  sim.apply_gate(gates::h(0, 0), s);
  const PauliString p = parse_pauli_string("2.0 * X0");
  EXPECT_NEAR(expectation(p, s).real(), 2.0, 1e-13);
}

TEST(ToDense, SinglePaulis) {
  Observable ox;
  ox.strings.push_back(pauli_x(0));
  const CMatrix mx = to_dense(ox, 1);
  EXPECT_EQ(mx.at(0, 1), cplx64{1});
  EXPECT_EQ(mx.at(1, 0), cplx64{1});

  Observable oy;
  oy.strings.push_back(PauliString{1.0, {{0, Pauli::kY}}});
  const CMatrix my = to_dense(oy, 1);
  EXPECT_EQ(my.at(0, 1), cplx64(0, -1));
  EXPECT_EQ(my.at(1, 0), cplx64(0, 1));
}

}  // namespace
}  // namespace qhip::obs
