#include "src/transpile/optimizer.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/core/gates.h"
#include "src/rqc/rqc.h"

namespace qhip::transpile {
namespace {

// Unitary distance up to global phase (merging introduces phases).
double phase_free_distance(const CMatrix& a, const CMatrix& b) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < a.data().size(); ++i) {
    if (std::abs(a.data()[i]) > std::abs(a.data()[best])) best = i;
  }
  if (std::abs(a.data()[best]) < 1e-12) return a.distance(b);
  const cplx64 pa = a.data()[best] / std::abs(a.data()[best]);
  const cplx64 pb = b.data()[best] / std::abs(b.data()[best]);
  CMatrix an = a, bn = b;
  for (auto& v : an.data()) v /= pa;
  for (auto& v : bn.data()) v /= pb;
  return an.distance(bn);
}

TEST(Optimizer, CancelsAdjacentInversePairs) {
  Circuit c;
  c.num_qubits = 2;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::h(1, 0));   // H H = I
  c.gates.push_back(gates::cz(2, 0, 1));
  c.gates.push_back(gates::cz(3, 0, 1));  // CZ CZ = I
  c.gates.push_back(gates::s(4, 1));
  c.gates.push_back(gates::sdg(5, 1));    // S Sdg = I
  OptimizeStats st;
  const Circuit out = cancel_adjacent_inverses(c, &st);
  EXPECT_EQ(out.size(), 0u);
  EXPECT_EQ(st.cancelled_pairs, 3u);
}

TEST(Optimizer, InterveningGateBlocksCancellation) {
  Circuit c;
  c.num_qubits = 2;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::cz(1, 0, 1));  // touches qubit 0 between the Hs
  c.gates.push_back(gates::h(2, 0));
  const Circuit out = cancel_adjacent_inverses(c);
  EXPECT_EQ(out.size(), 3u);
}

TEST(Optimizer, DisjointGateDoesNotBlock) {
  Circuit c;
  c.num_qubits = 2;
  c.gates.push_back(gates::x(0, 0));
  c.gates.push_back(gates::h(1, 1));  // disjoint qubit
  c.gates.push_back(gates::x(2, 0));
  const Circuit out = cancel_adjacent_inverses(c);
  EXPECT_EQ(out.size(), 1u);  // only the lone H survives
  EXPECT_EQ(out.gates[0].qubits[0], 1u);
}

TEST(Optimizer, MergesSingleQubitRuns) {
  Circuit c;
  c.num_qubits = 1;
  for (unsigned t = 0; t < 5; ++t) c.gates.push_back(gates::t(t, 0));
  OptimizeStats st;
  const Circuit out = merge_single_qubit_runs(c, &st);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(st.merged_runs, 1u);
  // T^5 = Z T (phases 5*pi/4 on |1>).
  const CMatrix want = gates::z(0, 0).matrix * gates::t(0, 0).matrix;
  EXPECT_LT(phase_free_distance(out.gates[0].matrix, want), 1e-12);
}

TEST(Optimizer, MergedIdentityRunVanishes) {
  Circuit c;
  c.num_qubits = 1;
  for (unsigned t = 0; t < 8; ++t) c.gates.push_back(gates::t(t, 0));  // T^8 = I
  const Circuit out = merge_single_qubit_runs(c);
  EXPECT_EQ(out.size(), 0u);
}

TEST(Optimizer, DropsIdentities) {
  Circuit c;
  c.num_qubits = 2;
  c.gates.push_back(gates::id1(0, 0));
  c.gates.push_back(gates::id2(0, 1, 0));
  c.gates.push_back(gates::rz(1, 0, 0.0));
  c.gates.push_back(gates::h(2, 1));
  OptimizeStats st;
  const Circuit out = drop_identities(c, &st);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(st.dropped_identities, 3u);
}

TEST(Optimizer, MeasurementIsABarrier) {
  Circuit c;
  c.num_qubits = 1;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::measure(1, {0}));
  c.gates.push_back(gates::h(2, 0));
  const OptimizeResult r = optimize(c);
  EXPECT_EQ(r.circuit.size(), 3u);  // nothing crosses the measurement
  EXPECT_TRUE(r.circuit.gates[1].is_measurement());
}

TEST(Optimizer, PreservesUnitaryOnRandomCircuits) {
  Xoshiro256 rng(12);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Circuit c;
    c.num_qubits = 4;
    Xoshiro256 g(seed);
    for (unsigned t = 0; t < 14; ++t) {
      const qubit_t q = static_cast<qubit_t>(g.uniform() * 4);
      const double r = g.uniform();
      if (r < 0.3) {
        c.gates.push_back(gates::h(t, q));
      } else if (r < 0.5) {
        c.gates.push_back(gates::cz(t, q, (q + 1) % 4));
      } else if (r < 0.7) {
        c.gates.push_back(gates::t(t, q));
      } else {
        c.gates.push_back(gates::rz(t, q, g.uniform() < 0.3 ? 0.0 : 1.1));
      }
    }
    const CMatrix want = circuit_unitary(c);
    const OptimizeResult r = optimize(c);
    EXPECT_LT(phase_free_distance(circuit_unitary(r.circuit), want), 1e-9)
        << seed;
    EXPECT_LE(r.circuit.size(), c.size());
    EXPECT_NO_THROW(r.circuit.validate());
  }
}

TEST(Optimizer, EchoCircuitCollapsesSubstantially) {
  // forward + inverse: the optimizer should eat a large fraction through
  // cancellation at the seam and merging.
  rqc::RqcOptions opt;
  opt.rows = 2;
  opt.cols = 3;
  opt.depth = 4;
  const Circuit fwd = rqc::generate_rqc(opt);
  const Circuit echo = concatenate(fwd, inverse_circuit(fwd));
  const OptimizeResult r = optimize(echo);
  EXPECT_LT(r.circuit.size(), echo.size() / 2);
  const CMatrix u = circuit_unitary(r.circuit);
  EXPECT_LT(phase_free_distance(u, CMatrix::identity(u.dim())), 1e-9);
}

TEST(Optimizer, StatsSummaryReadable) {
  Circuit c;
  c.num_qubits = 1;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::h(1, 0));
  const OptimizeResult r = optimize(c);
  const std::string s = r.stats.summary();
  EXPECT_NE(s.find("2 -> 0 gates"), std::string::npos) << s;
}

TEST(Optimizer, RqcReductionIsModest) {
  // Random circuits have little to cancel: the optimizer must not distort
  // them (sanity against over-aggressive passes).
  const Circuit c = rqc::circuit_q30();
  const OptimizeResult r = optimize(c);
  EXPECT_GT(r.circuit.size(), c.size() / 2);
  EXPECT_LE(r.circuit.size(), c.size());
}

}  // namespace
}  // namespace qhip::transpile
