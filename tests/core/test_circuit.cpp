#include "src/core/circuit.h"

#include <gtest/gtest.h>

#include <numbers>

#include "src/base/error.h"
#include "src/core/gates.h"

namespace qhip {
namespace {

Circuit bell() {
  Circuit c;
  c.num_qubits = 2;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::cnot(1, 0, 1));
  return c;
}

TEST(Circuit, DepthAndHistogram) {
  const Circuit c = bell();
  EXPECT_EQ(c.depth(), 2u);
  EXPECT_EQ(c.size(), 2u);
  const auto h = c.histogram();
  EXPECT_EQ(h.at("h"), 1u);
  EXPECT_EQ(h.at("cnot"), 1u);
  EXPECT_EQ(c.num_measurements(), 0u);
}

TEST(Circuit, ValidateAcceptsGood) {
  EXPECT_NO_THROW(bell().validate());
}

TEST(Circuit, ValidateRejectsQubitOutOfRange) {
  Circuit c = bell();
  c.num_qubits = 1;
  EXPECT_THROW(c.validate(), Error);
}

TEST(Circuit, ValidateRejectsTimeBackwards) {
  Circuit c;
  c.num_qubits = 2;
  c.gates.push_back(gates::h(1, 0));
  c.gates.push_back(gates::h(0, 1));
  EXPECT_THROW(c.validate(), Error);
}

TEST(Circuit, ValidateRejectsMomentOverlap) {
  Circuit c;
  c.num_qubits = 2;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::x(0, 0));  // same moment, same qubit
  EXPECT_THROW(c.validate(), Error);
}

TEST(Circuit, ValidateAcceptsSameQubitDifferentMoments) {
  Circuit c;
  c.num_qubits = 1;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::x(1, 0));
  EXPECT_NO_THROW(c.validate());
}

TEST(Circuit, ValidateCountsControlsForOverlap) {
  Circuit c;
  c.num_qubits = 3;
  c.gates.push_back(gates::controlled(gates::x(0, 1), {0}));
  c.gates.push_back(gates::h(0, 0));  // control qubit 0 already busy at t=0
  EXPECT_THROW(c.validate(), Error);
}

TEST(Circuit, ValidateRejectsZeroQubits) {
  Circuit c;
  c.num_qubits = 0;
  EXPECT_THROW(c.validate(), Error);
}

TEST(Circuit, MeasurementCounted) {
  Circuit c = bell();
  c.gates.push_back(gates::measure(2, {0, 1}));
  EXPECT_EQ(c.num_measurements(), 1u);
  EXPECT_NO_THROW(c.validate());
}

TEST(CircuitUnitary, BellUnitary) {
  const CMatrix u = circuit_unitary(bell());
  EXPECT_TRUE(u.is_unitary(1e-12));
  // (H on qubit 0 then CNOT(0->1)) |00> = (|00> + |11>)/sqrt(2):
  // column 0 has 1/sqrt2 at rows 0 and 3.
  EXPECT_NEAR(u.at(0, 0).real(), 1 / std::numbers::sqrt2, 1e-12);
  EXPECT_NEAR(u.at(3, 0).real(), 1 / std::numbers::sqrt2, 1e-12);
  EXPECT_NEAR(std::abs(u.at(1, 0)), 0, 1e-12);
  EXPECT_NEAR(std::abs(u.at(2, 0)), 0, 1e-12);
}

TEST(CircuitUnitary, InverseCircuitGivesIdentity) {
  Circuit c;
  c.num_qubits = 3;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::t(1, 1));
  c.gates.push_back(gates::cz(2, 0, 2));
  c.gates.push_back(gates::cz(3, 0, 2));   // cz^2 = I
  c.gates.push_back(gates::tdg(4, 1));
  c.gates.push_back(gates::h(5, 0));
  const CMatrix u = circuit_unitary(c);
  EXPECT_LT(u.distance(CMatrix::identity(8)), 1e-12);
}

TEST(CircuitUnitary, RejectsMeasurement) {
  Circuit c = bell();
  c.gates.push_back(gates::measure(2, {0}));
  EXPECT_THROW(circuit_unitary(c), Error);
}

TEST(InverseCircuit, ComposesToIdentity) {
  Circuit c;
  c.num_qubits = 3;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::fs(1, 0, 1, 0.7, 0.3));
  c.gates.push_back(gates::controlled(gates::ry(2, 2, 0.9), {0}));
  const Circuit echo = concatenate(c, inverse_circuit(c));
  EXPECT_LT(circuit_unitary(echo).distance(CMatrix::identity(8)), 1e-12);
}

TEST(InverseCircuit, RejectsMeasurement) {
  Circuit c = bell();
  c.gates.push_back(gates::measure(2, {0}));
  EXPECT_THROW(inverse_circuit(c), Error);
}

TEST(Concatenate, TimesStayMonotone) {
  const Circuit c = concatenate(bell(), bell());
  EXPECT_EQ(c.size(), 4u);
  EXPECT_NO_THROW(c.validate());
  EXPECT_EQ(c.depth(), 4u);
}

TEST(Concatenate, RejectsMismatchedWidths) {
  Circuit small;
  small.num_qubits = 1;
  small.gates.push_back(gates::h(0, 0));
  EXPECT_THROW(concatenate(bell(), small), Error);
}

TEST(CircuitUnitary, HandlesControlledGates) {
  Circuit a;
  a.num_qubits = 2;
  a.gates.push_back(gates::controlled(gates::z(0, 1), {0}));
  Circuit b;
  b.num_qubits = 2;
  b.gates.push_back(gates::cz(0, 0, 1));
  EXPECT_LT(circuit_unitary(a).distance(circuit_unitary(b)), 1e-13);
}

}  // namespace
}  // namespace qhip
