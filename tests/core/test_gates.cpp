#include "src/core/gates.h"

#include <gtest/gtest.h>

#include <numbers>

#include "src/base/error.h"

namespace qhip {
namespace {

using std::numbers::pi;

TEST(Gates, AllFixedGatesAreUnitary) {
  const std::vector<Gate> gs = {
      gates::id1(0, 0), gates::h(0, 0),      gates::x(0, 0),
      gates::y(0, 0),   gates::z(0, 0),      gates::s(0, 0),
      gates::sdg(0, 0), gates::t(0, 0),      gates::tdg(0, 0),
      gates::x_1_2(0, 0), gates::y_1_2(0, 0), gates::hz_1_2(0, 0),
      gates::id2(0, 0, 1), gates::cz(0, 0, 1), gates::cnot(0, 0, 1),
      gates::sw(0, 0, 1), gates::is(0, 0, 1),
      gates::ccz(0, 0, 1, 2), gates::ccx(0, 0, 1, 2)};
  for (const auto& g : gs) {
    EXPECT_TRUE(g.matrix.is_unitary(1e-12)) << g.name;
  }
}

TEST(Gates, ParameterizedGatesAreUnitary) {
  for (double a : {0.0, 0.3, 1.7, pi, 5.9}) {
    EXPECT_TRUE(gates::rx(0, 0, a).matrix.is_unitary(1e-12));
    EXPECT_TRUE(gates::ry(0, 0, a).matrix.is_unitary(1e-12));
    EXPECT_TRUE(gates::rz(0, 0, a).matrix.is_unitary(1e-12));
    EXPECT_TRUE(gates::p(0, 0, a).matrix.is_unitary(1e-12));
    EXPECT_TRUE(gates::rxy(0, 0, a, a * 0.7).matrix.is_unitary(1e-12));
    EXPECT_TRUE(gates::fs(0, 0, 1, a, a * 0.5).matrix.is_unitary(1e-12));
    EXPECT_TRUE(gates::cp(0, 0, 1, a).matrix.is_unitary(1e-12));
  }
}

TEST(Gates, SquareRootGatesSquareCorrectly) {
  const CMatrix sx = gates::x_1_2(0, 0).matrix;
  EXPECT_LT((sx * sx).distance(gates::x(0, 0).matrix), 1e-13);

  const CMatrix sy = gates::y_1_2(0, 0).matrix;
  EXPECT_LT((sy * sy).distance(gates::y(0, 0).matrix), 1e-13);

  // hz_1_2 squares to W = (X + Y)/sqrt(2).
  const CMatrix sw_ = gates::hz_1_2(0, 0).matrix;
  CMatrix w(2);
  const CMatrix xm = gates::x(0, 0).matrix, ym = gates::y(0, 0).matrix;
  for (std::size_t i = 0; i < 4; ++i) {
    w.data()[i] = (xm.data()[i] + ym.data()[i]) / std::numbers::sqrt2;
  }
  EXPECT_LT((sw_ * sw_).distance(w), 1e-13);
}

TEST(Gates, SAndTRelations) {
  const CMatrix s = gates::s(0, 0).matrix;
  const CMatrix t = gates::t(0, 0).matrix;
  EXPECT_LT((t * t).distance(s), 1e-13);
  EXPECT_LT((s * s).distance(gates::z(0, 0).matrix), 1e-13);
  EXPECT_LT((s * gates::sdg(0, 0).matrix).distance(CMatrix::identity(2)), 1e-13);
  EXPECT_LT((t * gates::tdg(0, 0).matrix).distance(CMatrix::identity(2)), 1e-13);
}

TEST(Gates, HadamardProperties) {
  const CMatrix h = gates::h(0, 0).matrix;
  EXPECT_LT((h * h).distance(CMatrix::identity(2)), 1e-13);
  // HXH = Z.
  EXPECT_LT((h * gates::x(0, 0).matrix * h).distance(gates::z(0, 0).matrix), 1e-13);
}

TEST(Gates, RotationComposition) {
  EXPECT_LT((gates::rz(0, 0, 0.3).matrix * gates::rz(0, 0, 0.5).matrix)
                .distance(gates::rz(0, 0, 0.8).matrix),
            1e-13);
  // rx(pi) = -iX.
  CMatrix want = gates::x(0, 0).matrix;
  for (auto& v : want.data()) v *= cplx64(0, -1);
  EXPECT_LT(gates::rx(0, 0, pi).matrix.distance(want), 1e-13);
}

TEST(Gates, RxyGeneralizesRxRy) {
  EXPECT_LT(gates::rxy(0, 0, 0.0, 0.7).matrix.distance(gates::rx(0, 0, 0.7).matrix),
            1e-13);
  EXPECT_LT(
      gates::rxy(0, 0, pi / 2, 0.7).matrix.distance(gates::ry(0, 0, 0.7).matrix),
      1e-13);
}

TEST(Gates, CnotActsOnBasis) {
  // qubits = {control, target}: index bit 0 = control, bit 1 = target.
  const CMatrix m = gates::cnot(0, 0, 1).matrix;
  // |c=1,t=0> (index 1) -> |c=1,t=1> (index 3).
  EXPECT_EQ(m.at(3, 1), cplx64{1});
  EXPECT_EQ(m.at(1, 3), cplx64{1});
  EXPECT_EQ(m.at(0, 0), cplx64{1});
  EXPECT_EQ(m.at(2, 2), cplx64{1});
  EXPECT_EQ(m.at(1, 1), cplx64{});
}

TEST(Gates, IswapActsOnBasis) {
  const CMatrix m = gates::is(0, 0, 1).matrix;
  EXPECT_EQ(m.at(2, 1), cplx64(0, 1));
  EXPECT_EQ(m.at(1, 2), cplx64(0, 1));
  EXPECT_EQ(m.at(0, 0), cplx64{1});
  EXPECT_EQ(m.at(3, 3), cplx64{1});
}

TEST(Gates, FsimSpecialCases) {
  // fs(0, 0) = identity.
  EXPECT_LT(gates::fs(0, 0, 1, 0, 0).matrix.distance(CMatrix::identity(4)), 1e-13);
  // fs(pi/2, 0) = -i iSWAP on the middle block.
  const CMatrix m = gates::fs(0, 0, 1, pi / 2, 0).matrix;
  EXPECT_LT(std::abs(m.at(1, 2) - cplx64(0, -1)), 1e-13);
  EXPECT_LT(std::abs(m.at(2, 1) - cplx64(0, -1)), 1e-13);
  EXPECT_LT(std::abs(m.at(1, 1)), 1e-13);
  // fs(0, phi): diag(1,1,1,e^{-i phi}).
  const CMatrix d = gates::fs(0, 0, 1, 0, 0.7).matrix;
  EXPECT_LT(std::abs(d.at(3, 3) - std::polar(1.0, -0.7)), 1e-13);
}

TEST(Gates, CzSymmetric) {
  EXPECT_LT(gates::cz(0, 0, 1).matrix.distance(gates::cz(0, 1, 0).matrix), 1e-15);
}

TEST(Gates, CpReducesToCz) {
  EXPECT_LT(gates::cp(0, 0, 1, pi).matrix.distance(gates::cz(0, 0, 1).matrix), 1e-13);
}

TEST(Gates, ToffoliFlipsOnlyWhenBothControlsSet) {
  const CMatrix m = gates::ccx(0, 0, 1, 2).matrix;
  // index = c0 + 2 c1 + 4 t. c0=c1=1, t=0 (3) <-> t=1 (7).
  EXPECT_EQ(m.at(7, 3), cplx64{1});
  EXPECT_EQ(m.at(3, 7), cplx64{1});
  for (std::size_t i : {0u, 1u, 2u, 4u, 5u, 6u}) {
    EXPECT_EQ(m.at(i, i), cplx64{1});
  }
}

TEST(Gates, DistinctQubitsEnforced) {
  EXPECT_THROW(gates::cz(0, 3, 3), Error);
  EXPECT_THROW(gates::ccx(0, 1, 1, 2), Error);
}

TEST(Gates, MeasurementGate) {
  const Gate m = gates::measure(4, {2, 0, 5});
  EXPECT_TRUE(m.is_measurement());
  EXPECT_EQ(m.time, 4u);
  EXPECT_EQ(m.qubits.size(), 3u);
  EXPECT_EQ(m.matrix.dim(), 0u);
  EXPECT_THROW(gates::measure(0, {}), Error);
}

TEST(Gates, NormalizedSortsQubitsAndPermutesMatrix) {
  // cnot(2, 1): qubits {2,1} unsorted. Normalized must act identically.
  const Gate g = gates::cnot(0, 2, 1);
  const Gate n = normalized(g);
  ASSERT_EQ(n.qubits.size(), 2u);
  EXPECT_EQ(n.qubits[0], 1u);
  EXPECT_EQ(n.qubits[1], 2u);
  // After sorting, bit 0 = qubit 1 (target), bit 1 = qubit 2 (control).
  // |control=1, target=0> is index 2 -> flips to index 3.
  EXPECT_EQ(n.matrix.at(3, 2), cplx64{1});
  EXPECT_EQ(n.matrix.at(2, 3), cplx64{1});
  EXPECT_TRUE(n.matrix.is_unitary(1e-12));
}

TEST(Gates, NormalizedIdempotentOnSorted) {
  const Gate g = gates::fs(3, 1, 4, 0.2, 0.4);
  const Gate n = normalized(g);
  EXPECT_EQ(n.qubits, g.qubits);
  EXPECT_LT(n.matrix.distance(g.matrix), 1e-15);
}

TEST(Gates, ControlledWrapsGate) {
  Gate g = gates::controlled(gates::x(0, 2), {0, 1});
  EXPECT_EQ(g.controls.size(), 2u);
  EXPECT_THROW(gates::controlled(gates::x(0, 2), {2}), Error);
  EXPECT_THROW(gates::controlled(gates::measure(0, {1}), {0}), Error);
}

TEST(Gates, ExpandControlsMatchesToffoli) {
  // controlled-controlled-X via expand_controls == ccx.
  const Gate cx = gates::controlled(gates::x(0, 2), {0, 1});
  const Gate e = expand_controls(cx);
  EXPECT_TRUE(e.controls.empty());
  ASSERT_EQ(e.qubits.size(), 3u);
  EXPECT_LT(e.matrix.distance(gates::ccx(0, 0, 1, 2).matrix), 1e-13);
}

TEST(Gates, ExpandControlsSingleControlZ) {
  const Gate g = gates::controlled(gates::z(0, 1), {0});
  const Gate e = expand_controls(g);
  EXPECT_LT(e.matrix.distance(gates::cz(0, 0, 1).matrix), 1e-13);
}

TEST(Gates, KnownNamesNonEmpty) {
  EXPECT_GT(gates::known_names().size(), 20u);
}

}  // namespace
}  // namespace qhip
