#include "src/core/matrix.h"

#include <gtest/gtest.h>

#include <numbers>

#include "src/base/error.h"
#include "src/base/rng.h"

namespace qhip {
namespace {

CMatrix random_unitary2(Xoshiro256& rng) {
  // Random SU(2) from three angles.
  const double a = rng.uniform() * 2 * std::numbers::pi;
  const double b = rng.uniform() * 2 * std::numbers::pi;
  const double t = rng.uniform() * std::numbers::pi;
  const cplx64 e1 = std::polar(1.0, a), e2 = std::polar(1.0, b);
  return CMatrix(2, {e1 * std::cos(t), e2 * std::sin(t),
                     -std::conj(e2) * std::sin(t), std::conj(e1) * std::cos(t)});
}

TEST(CMatrix, IdentityAndDim) {
  const CMatrix i4 = CMatrix::identity(4);
  EXPECT_EQ(i4.dim(), 4u);
  EXPECT_EQ(i4.num_qubits(), 2u);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(i4.at(r, c), (r == c ? cplx64{1} : cplx64{}));
    }
  }
}

TEST(CMatrix, RejectsNonPow2) {
  EXPECT_THROW(CMatrix(3), Error);
  EXPECT_THROW(CMatrix(4, std::vector<cplx64>(3)), Error);
}

TEST(CMatrix, MultiplyIdentity) {
  Xoshiro256 rng(1);
  const CMatrix u = random_unitary2(rng);
  EXPECT_LT((u * CMatrix::identity(2)).distance(u), 1e-14);
  EXPECT_LT((CMatrix::identity(2) * u).distance(u), 1e-14);
}

TEST(CMatrix, MultiplyKnown) {
  const CMatrix x(2, {0, 1, 1, 0});
  const CMatrix z(2, {1, 0, 0, -1});
  const CMatrix xz = x * z;  // X*Z = [[0,-1],[1,0]]
  EXPECT_EQ(xz.at(0, 0), cplx64{});
  EXPECT_EQ(xz.at(0, 1), cplx64{-1});
  EXPECT_EQ(xz.at(1, 0), cplx64{1});
  EXPECT_EQ(xz.at(1, 1), cplx64{});
}

TEST(CMatrix, MultiplyNotCommutative) {
  const CMatrix x(2, {0, 1, 1, 0});
  const CMatrix z(2, {1, 0, 0, -1});
  EXPECT_GT((x * z).distance(z * x), 1.0);
}

TEST(CMatrix, AdjointOfUnitaryIsInverse) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 20; ++i) {
    const CMatrix u = random_unitary2(rng);
    EXPECT_LT((u * u.adjoint()).distance(CMatrix::identity(2)), 1e-12);
  }
}

TEST(CMatrix, UnitarityCheck) {
  Xoshiro256 rng(3);
  const CMatrix u = random_unitary2(rng);
  EXPECT_TRUE(u.is_unitary());
  CMatrix bad = u;
  bad.at(0, 0) += 0.01;
  EXPECT_FALSE(bad.is_unitary(1e-6));
}

TEST(CMatrix, KronDims) {
  Xoshiro256 rng(4);
  const CMatrix a = random_unitary2(rng), b = random_unitary2(rng);
  const CMatrix k = a.kron(b);
  EXPECT_EQ(k.dim(), 4u);
  EXPECT_TRUE(k.is_unitary());
}

TEST(CMatrix, KronEntries) {
  const CMatrix a(2, {1, 2, 3, 4});
  const CMatrix b(2, {0, 5, 6, 7});
  const CMatrix k = a.kron(b);
  // k[(r1 r2),(c1 c2)] = a[r1,c1] * b[r2,c2]
  EXPECT_EQ(k.at(0, 1), cplx64{5});   // a[0,0] * b[0,1]
  EXPECT_EQ(k.at(1, 0), cplx64{6});   // a[0,0] * b[1,0]
  EXPECT_EQ(k.at(2, 2), cplx64{0});   // a[1,1] * b[0,0]
}

TEST(CMatrix, KronAgainstManual) {
  const CMatrix a(2, {1, 2, 3, 4});
  const CMatrix b(2, {5, 6, 7, 8});
  const CMatrix k = a.kron(b);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      const std::size_t r1 = r >> 1, r2 = r & 1, c1 = c >> 1, c2 = c & 1;
      EXPECT_EQ(k.at(r, c), a.at(r1, c1) * b.at(r2, c2)) << r << "," << c;
    }
  }
}

TEST(CMatrix, PermuteBitsSwap) {
  // Swapping the two index bits of a 2-qubit matrix = conjugation by SWAP.
  Xoshiro256 rng(5);
  const CMatrix a = random_unitary2(rng), b = random_unitary2(rng);
  const CMatrix ab = a.kron(b);   // a on high bit, b on low bit
  const CMatrix ba = b.kron(a);
  EXPECT_LT(ab.permute_bits({1, 0}).distance(ba), 1e-13);
}

TEST(CMatrix, PermuteIdentityPermutation) {
  Xoshiro256 rng(6);
  const CMatrix m = random_unitary2(rng).kron(random_unitary2(rng));
  EXPECT_LT(m.permute_bits({0, 1}).distance(m), 1e-15);
}

TEST(CMatrix, ComposeOnQubitsFullSpan) {
  // Composing over the full qubit range equals plain matrix product.
  Xoshiro256 rng(7);
  const CMatrix m0 = random_unitary2(rng).kron(random_unitary2(rng));
  const CMatrix g = random_unitary2(rng).kron(random_unitary2(rng));
  CMatrix acc = m0;
  acc.compose_on_qubits(g, {0, 1});
  EXPECT_LT(acc.distance(g * m0), 1e-12);
}

TEST(CMatrix, ComposeOnSubsetMatchesKron) {
  // Applying g on bit 0 of a 2-qubit identity equals I (x) g.
  Xoshiro256 rng(8);
  const CMatrix g = random_unitary2(rng);
  CMatrix acc = CMatrix::identity(4);
  acc.compose_on_qubits(g, {0});
  EXPECT_LT(acc.distance(CMatrix::identity(2).kron(g)), 1e-13);

  // On bit 1: g (x) I.
  CMatrix acc2 = CMatrix::identity(4);
  acc2.compose_on_qubits(g, {1});
  EXPECT_LT(acc2.distance(g.kron(CMatrix::identity(2))), 1e-13);
}

TEST(CMatrix, ComposeAccumulatesInOrder) {
  Xoshiro256 rng(9);
  const CMatrix g1 = random_unitary2(rng), g2 = random_unitary2(rng);
  CMatrix acc = CMatrix::identity(2);
  acc.compose_on_qubits(g1, {0});
  acc.compose_on_qubits(g2, {0});
  EXPECT_LT(acc.distance(g2 * g1), 1e-12);
}

TEST(CMatrix, ComposePreservesUnitarity) {
  Xoshiro256 rng(10);
  CMatrix acc = CMatrix::identity(8);
  for (int i = 0; i < 10; ++i) {
    const CMatrix g = random_unitary2(rng);
    acc.compose_on_qubits(g, {static_cast<unsigned>(i % 3)});
  }
  EXPECT_TRUE(acc.is_unitary(1e-10));
}

TEST(CMatrix, DistanceZeroForEqual) {
  const CMatrix a(2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(a.distance(a), 0.0);
}

}  // namespace
}  // namespace qhip
