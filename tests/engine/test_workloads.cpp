// Engine workload kinds beyond plain circuits (DESIGN.md §14): trajectory
// batches fanned across workers must be bit-identical to the serial
// reference loop, expectation requests must match the host observable path,
// early stopping must be deterministic, and "auto" must place noisy
// workloads onto a noise-capable backend.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/threadpool.h"
#include "src/core/gates.h"
#include "src/engine/engine.h"
#include "src/noise/trajectory.h"
#include "src/obs/observable.h"
#include "src/rqc/rqc.h"
#include "src/simulator/simulator_cpu.h"

namespace qhip::engine {
namespace {

using obs::Observable;
using obs::Pauli;
using obs::PauliString;

Circuit make_rqc(unsigned rows, unsigned cols, unsigned depth,
                 std::uint64_t seed) {
  rqc::RqcOptions opt;
  opt.rows = rows;
  opt.cols = cols;
  opt.depth = depth;
  opt.seed = seed;
  return rqc::generate_rqc(opt);
}

Observable test_observable() {
  Observable o;
  o.strings.push_back(PauliString{1.0, {{0, Pauli::kZ}}});
  o.strings.push_back(PauliString{0.5, {{1, Pauli::kX}, {2, Pauli::kY}}});
  return o;
}

SimRequest trajectory_request(const Circuit& c, std::size_t n,
                              const char* backend = "cpu") {
  SimRequest req;
  req.kind = RequestKind::kTrajectory;
  req.circuit = c;
  req.backend = backend;
  req.precision = Precision::kDouble;
  req.seed = 42;
  req.noise = noise::NoiseModel{noise::depolarizing(0.1)};
  req.num_trajectories = n;
  return req;
}

TEST(EngineWorkloads, TrajectoryBatchBitIdenticalToSerialReference) {
  const Circuit c = make_rqc(2, 2, 6, 9);
  const std::size_t n_traj = 12;

  // Serial reference: one trajectory at a time on a single thread — the
  // same pool width the engine's sub-runs use (trajectory_threads = 1), so
  // the fp reduction order inside apply_channel matches exactly.
  ThreadPool pool1(1);
  const std::vector<double> ref = noise::trajectory_distribution<double>(
      c, noise::NoiseModel{noise::depolarizing(0.1)}, n_traj, 42, pool1);

  EngineOptions opt;
  opt.num_workers = 4;
  SimulationEngine eng(opt);
  const SimResult res = eng.run(trajectory_request(c, n_traj));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.backend_used, "cpu");
  EXPECT_EQ(res.trajectories_run, n_traj);
  ASSERT_EQ(res.distribution.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(res.distribution[i], ref[i]) << i;  // bit-identical
  }

  const EngineMetrics m = eng.metrics();
  EXPECT_EQ(m.trajectory_batches, 1u);
  EXPECT_GE(m.trajectories_run, n_traj);
  EXPECT_EQ(m.trajectories_per_batch.count(), 1u);
}

TEST(EngineWorkloads, ExpectationMatchesHostReferenceOnCpuAndHip) {
  const Circuit c = make_rqc(2, 3, 8, 5);
  const Observable o = test_observable();

  // Host reference: unfused straight simulation + the sparse host path.
  SimulatorCPU<double> sim;
  StateVector<double> state(c.num_qubits);
  sim.run(c, state);
  const cplx64 want = obs::expectation(o, state);

  SimulationEngine eng;
  SimRequest req;
  req.kind = RequestKind::kExpectation;
  req.circuit = c;
  req.backend = "cpu";
  req.precision = Precision::kDouble;
  req.observable = o;
  const SimResult cpu = eng.run(req);
  ASSERT_TRUE(cpu.ok) << cpu.error;
  // The engine fuses before running, so agreement is to fp error, not bits.
  EXPECT_NEAR(cpu.expectation.real(), want.real(), 1e-10);
  EXPECT_NEAR(cpu.expectation.imag(), want.imag(), 1e-10);

  req.backend = "hip";  // device kernel path (hipsim::expectation)
  const SimResult hip = eng.run(req);
  ASSERT_TRUE(hip.ok) << hip.error;
  EXPECT_NEAR(hip.expectation.real(), want.real(), 1e-10);
  EXPECT_NEAR(hip.expectation.imag(), want.imag(), 1e-10);
}

TEST(EngineWorkloads, ExpectationServedFromResultCache) {
  const Circuit c = make_rqc(2, 2, 6, 3);
  SimulationEngine eng;
  SimRequest req;
  req.kind = RequestKind::kExpectation;
  req.circuit = c;
  req.backend = "cpu";
  req.observable = test_observable();
  const SimResult a = eng.run(req);
  const SimResult b = eng.run(req);
  ASSERT_TRUE(a.ok && b.ok) << a.error << b.error;
  EXPECT_FALSE(a.result_cache_hit);
  EXPECT_TRUE(b.result_cache_hit);
  EXPECT_EQ(a.expectation, b.expectation);

  const EngineMetrics m = eng.metrics();
  EXPECT_EQ(m.expectation_requests, 2u);
}

TEST(EngineWorkloads, TrajectoryEarlyStopIsDeterministic) {
  const Circuit c = make_rqc(2, 2, 6, 7);
  const Observable o = test_observable();
  const noise::NoiseModel m{noise::depolarizing(0.1)};

  EngineOptions opt;
  opt.num_workers = 4;
  SimulationEngine eng(opt);
  SimRequest req = trajectory_request(c, 64);
  req.observable = o;
  req.trajectory_tolerance = 10.0;  // absurdly loose: stops at the floor
  const SimResult res = eng.run(req);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.trajectories_run, 8u);  // kMinTrajectoriesForStop

  // The early-stopped mean is over exactly trajectories 0..7, accumulated
  // in index order — reproducible bit for bit from the public pieces.
  ThreadPool pool1(1);
  const Circuit prepared = normalize_circuit(c);
  StateVector<double> s(c.num_qubits);
  cplx64 sum = 0;
  for (std::uint64_t t = 0; t < 8; ++t) {
    noise::run_trajectory_prepared<double>(prepared, m, 42, t, s, pool1);
    sum += obs::expectation(o, s, pool1);
  }
  const cplx64 mean = sum / 8.0;
  EXPECT_EQ(res.expectation.real(), mean.real());
  EXPECT_EQ(res.expectation.imag(), mean.imag());
  EXPECT_GE(res.expectation_stderr, 0.0);

  const EngineMetrics em = eng.metrics();
  EXPECT_EQ(em.trajectory_early_stops, 1u);
  // Workers past the stop index may have executed discarded trajectories,
  // so the executed counter is a lower-bounded, not exact, quantity.
  EXPECT_GE(em.trajectories_run, 8u);
}

TEST(EngineWorkloads, AutoPlacesTrajectoriesOnNoiseCapableBackend) {
  const Circuit c = make_rqc(2, 2, 6, 2);
  SimulationEngine eng;
  const SimResult res = eng.run(trajectory_request(c, 4, "auto"));
  ASSERT_TRUE(res.ok) << res.error;
  // cpu is the only noise-capable candidate today.
  EXPECT_EQ(res.backend_used, "cpu");

  double total = 0;
  for (double v : res.distribution) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(EngineWorkloads, RejectsMalformedWorkloads) {
  const Circuit c = make_rqc(2, 2, 6, 4);
  SimulationEngine eng;

  SimRequest empty_obs;
  empty_obs.kind = RequestKind::kExpectation;
  empty_obs.circuit = c;
  empty_obs.backend = "cpu";
  EXPECT_FALSE(eng.run(empty_obs).ok);

  EXPECT_FALSE(eng.run(trajectory_request(c, 0)).ok);

  SimRequest with_samples = trajectory_request(c, 4);
  with_samples.num_samples = 8;
  EXPECT_FALSE(eng.run(with_samples).ok);

  SimRequest with_state = trajectory_request(c, 4);
  with_state.want_state = true;
  EXPECT_FALSE(eng.run(with_state).ok);

  Circuit measured = c;
  measured.gates.push_back(gates::measure(99, {0}));
  EXPECT_FALSE(eng.run(trajectory_request(measured, 4)).ok);

  // hip cannot stream Kraus selections: explicit routing there is rejected
  // up front rather than failed mid-run.
  const SimResult on_hip = eng.run(trajectory_request(c, 4, "hip"));
  EXPECT_FALSE(on_hip.ok);
}

TEST(EngineWorkloads, PrometheusExportsTrajectoryFamilies) {
  const Circuit c = make_rqc(2, 2, 6, 8);
  SimulationEngine eng;
  ASSERT_TRUE(eng.run(trajectory_request(c, 4)).ok);
  const std::string text = eng.metrics().to_prom_text();
  EXPECT_NE(text.find("qhip_engine_trajectory_batches 1"), std::string::npos);
  EXPECT_NE(text.find("qhip_engine_trajectories_run"), std::string::npos);
  EXPECT_NE(text.find("qhip_engine_trajectory_early_stops"),
            std::string::npos);
  EXPECT_NE(text.find("qhip_engine_expectation_requests"), std::string::npos);
  EXPECT_NE(text.find("qhip_engine_trajectories_per_batch_bucket"),
            std::string::npos);
}

}  // namespace
}  // namespace qhip::engine
