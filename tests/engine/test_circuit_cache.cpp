// FusedCircuitCache: structural hashing, LRU eviction, and hit accounting.
#include <gtest/gtest.h>

#include "src/core/gates.h"
#include "src/engine/circuit_cache.h"
#include "src/rqc/rqc.h"

namespace qhip::engine {
namespace {

Circuit make_rqc(unsigned rows, unsigned cols, unsigned depth, std::uint64_t seed) {
  rqc::RqcOptions opt;
  opt.rows = rows;
  opt.cols = cols;
  opt.depth = depth;
  opt.seed = seed;
  return rqc::generate_rqc(opt);
}

TEST(HashCircuit, StableAndStructural) {
  const Circuit a = make_rqc(2, 3, 8, 7);
  const Circuit b = make_rqc(2, 3, 8, 7);   // same construction -> same hash
  const Circuit c = make_rqc(2, 3, 8, 8);   // different seed -> different gates
  EXPECT_EQ(hash_circuit(a), hash_circuit(b));
  EXPECT_NE(hash_circuit(a), hash_circuit(c));
}

TEST(HashCircuit, SensitiveToParams) {
  Circuit a;
  a.num_qubits = 2;
  a.gates.push_back(gates::rx(0, 0, 0.5));
  Circuit b;
  b.num_qubits = 2;
  b.gates.push_back(gates::rx(0, 0, 0.5000001));
  EXPECT_NE(hash_circuit(a), hash_circuit(b));
}

TEST(FusedCircuitCache, HitReturnsSameFusion) {
  FusedCircuitCache cache(8);
  const Circuit c = make_rqc(2, 3, 8, 1);
  bool hit = true;
  const auto first = cache.get_or_fuse(c, {3, 4}, &hit);
  EXPECT_FALSE(hit);
  const auto second = cache.get_or_fuse(c, {3, 4}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // literally the same object
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(FusedCircuitCache, KeyIncludesFusionParams) {
  FusedCircuitCache cache(8);
  const Circuit c = make_rqc(2, 3, 8, 1);
  bool hit = true;
  cache.get_or_fuse(c, {2, 4}, &hit);
  EXPECT_FALSE(hit);
  cache.get_or_fuse(c, {3, 4}, &hit);  // different max_fused -> miss
  EXPECT_FALSE(hit);
  cache.get_or_fuse(c, {2, 8}, &hit);  // different window -> miss
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(FusedCircuitCache, LruEviction) {
  FusedCircuitCache cache(2);
  const Circuit a = make_rqc(2, 2, 6, 1);
  const Circuit b = make_rqc(2, 2, 6, 2);
  const Circuit c = make_rqc(2, 2, 6, 3);
  bool hit = false;
  cache.get_or_fuse(a, {2, 4}, &hit);
  cache.get_or_fuse(b, {2, 4}, &hit);
  cache.get_or_fuse(a, {2, 4}, &hit);  // refresh a; b is now LRU
  EXPECT_TRUE(hit);
  cache.get_or_fuse(c, {2, 4}, &hit);  // evicts b
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.get_or_fuse(a, {2, 4}, &hit);
  EXPECT_TRUE(hit);
  cache.get_or_fuse(b, {2, 4}, &hit);  // b was evicted
  EXPECT_FALSE(hit);
}

TEST(FusedCircuitCache, ZeroCapacityDisables) {
  FusedCircuitCache cache(0);
  const Circuit c = make_rqc(2, 2, 6, 1);
  bool hit = true;
  cache.get_or_fuse(c, {2, 4}, &hit);
  cache.get_or_fuse(c, {2, 4}, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().entries, 0u);
}

}  // namespace
}  // namespace qhip::engine
