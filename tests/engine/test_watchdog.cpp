// SloWatchdog: rule parsing, windowed p99/error-rate evaluation over the
// per-epoch histogram ring, idle-gap aging, kind scoping, and the snapshot
// rate limiter. Time is injected through observe(now_us), so every test is
// deterministic.
#include "src/engine/watchdog.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/base/error.h"

namespace qhip::engine {
namespace {

constexpr std::uint64_t kSec = 1000000;  // us

WatchdogOptions base_options() {
  WatchdogOptions opt;
  opt.epoch_seconds = 1.0;
  opt.window_epochs = 4;
  opt.min_trigger_interval_seconds = 30;
  return opt;
}

TEST(ParseSloRule, AcceptsTheDocumentedGrammar) {
  const SloRule any = parse_slo_rule("any:p99_ms=50");
  EXPECT_EQ(any.kind, 0);
  EXPECT_DOUBLE_EQ(any.p99_ms, 50.0);
  EXPECT_DOUBLE_EQ(any.max_error_rate, 0.0);
  EXPECT_EQ(any.min_requests, 32u);  // default

  const SloRule circ = parse_slo_rule("circuit:error_rate=0.05,min_requests=64");
  EXPECT_EQ(circ.kind, slo_kind_index("circuit"));
  EXPECT_DOUBLE_EQ(circ.max_error_rate, 0.05);
  EXPECT_EQ(circ.min_requests, 64u);

  const SloRule both =
      parse_slo_rule("trajectory:p99_ms=10,error_rate=0.5,min_requests=8");
  EXPECT_EQ(both.kind, slo_kind_index("trajectory"));
  EXPECT_DOUBLE_EQ(both.p99_ms, 10.0);
  EXPECT_DOUBLE_EQ(both.max_error_rate, 0.5);
  EXPECT_EQ(both.min_requests, 8u);
}

TEST(ParseSloRule, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_slo_rule(""), Error);
  EXPECT_THROW(parse_slo_rule("any"), Error);                // no fields
  EXPECT_THROW(parse_slo_rule("any:"), Error);
  EXPECT_THROW(parse_slo_rule("bogus:p99_ms=5"), Error);     // unknown kind
  EXPECT_THROW(parse_slo_rule("any:p99=5"), Error);          // unknown field
  EXPECT_THROW(parse_slo_rule("any:p99_ms=abc"), Error);     // bad number
  EXPECT_THROW(parse_slo_rule("any:p99_ms=5junk"), Error);   // trailing garbage
  EXPECT_THROW(parse_slo_rule("any:error_rate=1.5"), Error); // rate > 1
  EXPECT_THROW(parse_slo_rule("any:min_requests=8"), Error); // no threshold
}

TEST(SloKindIndex, MapsNamesAndRejectsUnknown) {
  EXPECT_EQ(slo_kind_index("any"), 0);
  EXPECT_EQ(slo_kind_index("circuit"), 1);
  EXPECT_EQ(slo_kind_index("expectation"), 2);
  EXPECT_EQ(slo_kind_index("trajectory"), 3);
  EXPECT_THROW(slo_kind_index("nope"), Error);
}

TEST(SloWatchdog, P99BreachFiresOncePopulationReached) {
  WatchdogOptions opt = base_options();
  opt.rules.push_back(parse_slo_rule("any:p99_ms=5,min_requests=8"));
  SloWatchdog wd(opt);

  std::uint64_t now = kSec;
  // Seven slow requests: below min_requests, the rule stays quiet.
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(wd.observe(1, 50.0, true, now).has_value()) << i;
  }
  // The eighth crosses the population floor and p99 >> 5 ms: breach.
  const auto breach = wd.observe(1, 50.0, true, now);
  ASSERT_TRUE(breach.has_value());
  EXPECT_EQ(breach->reason, "p99-any");
  EXPECT_FALSE(breach->detail.empty());
  EXPECT_EQ(wd.breaches(), 1u);

  const SloWindow w = wd.window(0);
  EXPECT_EQ(w.total, 8u);
  EXPECT_EQ(w.errors, 0u);
  EXPECT_GT(w.p99_ms, 5.0);
}

TEST(SloWatchdog, RateLimiterSuppressesRepeatsUntilIntervalPasses) {
  WatchdogOptions opt = base_options();
  opt.min_trigger_interval_seconds = 10;
  opt.rules.push_back(parse_slo_rule("any:p99_ms=1,min_requests=4"));
  SloWatchdog wd(opt);

  std::uint64_t now = kSec;
  for (int i = 0; i < 3; ++i) wd.observe(1, 20.0, true, now);
  ASSERT_TRUE(wd.observe(1, 20.0, true, now).has_value());
  EXPECT_EQ(wd.breaches(), 1u);

  // Still breaching every half second, but inside the 10 s interval:
  // suppressed, not counted.
  while (now + kSec / 2 < 11 * kSec) {
    now += kSec / 2;
    EXPECT_FALSE(wd.observe(1, 20.0, true, now).has_value()) << now;
  }
  EXPECT_EQ(wd.breaches(), 1u);

  // Past the interval the next breach fires again.
  now += kSec / 2;  // t = 11 s = first trigger + the 10 s interval
  ASSERT_TRUE(wd.observe(1, 20.0, true, now).has_value());
  EXPECT_EQ(wd.breaches(), 2u);
}

TEST(SloWatchdog, ErrorRateRuleCountsFailuresOverWindow) {
  WatchdogOptions opt = base_options();
  opt.rules.push_back(parse_slo_rule("any:error_rate=0.25,min_requests=8"));
  SloWatchdog wd(opt);

  std::uint64_t now = kSec;
  // 6 ok + 2 errors = 25% exactly: not *exceeding* the threshold.
  for (int i = 0; i < 6; ++i) EXPECT_FALSE(wd.observe(1, 1.0, true, now));
  for (int i = 0; i < 2; ++i) EXPECT_FALSE(wd.observe(1, 1.0, false, now));
  // One more error pushes 3/9 > 0.25: breach.
  const auto breach = wd.observe(1, 1.0, false, now);
  ASSERT_TRUE(breach.has_value());
  EXPECT_EQ(breach->reason, "errors-any");

  const SloWindow w = wd.window(0);
  EXPECT_EQ(w.total, 9u);
  EXPECT_EQ(w.errors, 3u);
}

TEST(SloWatchdog, KindScopedRuleIgnoresOtherKinds) {
  WatchdogOptions opt = base_options();
  opt.rules.push_back(parse_slo_rule("circuit:p99_ms=5,min_requests=4"));
  SloWatchdog wd(opt);

  std::uint64_t now = kSec;
  // Slow trajectory traffic (kind 3) never trips a circuit-scoped rule,
  // no matter the population.
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(wd.observe(3, 100.0, true, now).has_value()) << i;
  }
  // Slow circuit traffic (kind 1) does.
  for (int i = 0; i < 3; ++i) wd.observe(1, 100.0, true, now);
  const auto breach = wd.observe(1, 100.0, true, now);
  ASSERT_TRUE(breach.has_value());
  EXPECT_EQ(breach->reason, "p99-circuit");

  // The per-kind windows kept the populations apart.
  EXPECT_EQ(wd.window(1).total, 4u);
  EXPECT_EQ(wd.window(3).total, 32u);
  EXPECT_EQ(wd.window(0).total, 36u);
}

TEST(SloWatchdog, OldEpochsAgeOutOfTheWindow) {
  WatchdogOptions opt = base_options();  // 4 epochs of 1 s
  opt.rules.push_back(parse_slo_rule("any:p99_ms=5,min_requests=4"));
  opt.min_trigger_interval_seconds = 0.0;
  SloWatchdog wd(opt);

  // Slow burst in the first epoch.
  std::uint64_t now = kSec;
  for (int i = 0; i < 4; ++i) wd.observe(1, 50.0, true, now);
  EXPECT_EQ(wd.window(0).total, 4u);
  EXPECT_GT(wd.window(0).p99_ms, 5.0);

  // 10 s later (beyond the 4 s window, an idle gap included) only the new
  // fast traffic is visible: no breach, p99 small, old totals gone.
  now += 10 * kSec;
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(wd.observe(1, 1.0, true, now).has_value()) << i;
  }
  const SloWindow w = wd.window(0);
  EXPECT_EQ(w.total, 8u);
  EXPECT_LT(w.p99_ms, 5.0);
}

TEST(SloWatchdog, WindowSlidesEpochByEpoch) {
  WatchdogOptions opt = base_options();  // 4 epochs of 1 s
  SloWatchdog wd(opt);

  // One request per second for 8 s: the window must never hold more than
  // window_epochs seconds' worth.
  std::uint64_t now = kSec;
  for (int i = 0; i < 8; ++i) {
    wd.observe(1, 1.0, true, now);
    now += kSec;
  }
  const SloWindow w = wd.window(0);
  EXPECT_LE(w.total, opt.window_epochs);
  EXPECT_GE(w.total, opt.window_epochs - 1);  // boundary epoch may have aged
}

TEST(SloWatchdog, StatusTextMentionsRulesAndWindows) {
  WatchdogOptions opt = base_options();
  opt.rules.push_back(parse_slo_rule("any:p99_ms=50"));
  opt.rules.push_back(parse_slo_rule("circuit:error_rate=0.05"));
  SloWatchdog wd(opt);
  wd.observe(1, 2.0, true, kSec);

  const std::string s = wd.status_text();
  EXPECT_NE(s.find("p99_ms"), std::string::npos);
  EXPECT_NE(s.find("error_rate"), std::string::npos);
  EXPECT_NE(s.find("any"), std::string::npos);
  EXPECT_NE(s.find("circuit"), std::string::npos);
}

}  // namespace
}  // namespace qhip::engine
