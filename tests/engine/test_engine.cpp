// SimulationEngine: result-cache bit-identity, buffer-pool reuse across
// requests, concurrent==serial on two backends, graceful rejection
// (engine cap, device memory, deadlines, queue bound), and metrics export.
#include <gtest/gtest.h>

#include <future>
#include <set>
#include <string>
#include <vector>

#include "src/engine/backend.h"
#include "src/engine/engine.h"
#include "src/prof/trace.h"
#include "src/prof/trace_reader.h"
#include "src/rqc/rqc.h"

namespace qhip::engine {
namespace {

Circuit make_rqc(unsigned rows, unsigned cols, unsigned depth,
                 std::uint64_t seed) {
  rqc::RqcOptions opt;
  opt.rows = rows;
  opt.cols = cols;
  opt.depth = depth;
  opt.seed = seed;
  return rqc::generate_rqc(opt);
}

SimRequest request(const Circuit& c, const char* backend,
                   std::uint64_t seed = 42) {
  SimRequest req;
  req.circuit = c;
  req.backend = backend;
  req.max_fused = 3;
  req.seed = seed;
  req.num_samples = 32;
  return req;
}

TEST(SimulationEngine, CacheHitIsBitIdenticalWithColdRun) {
  const Circuit c = make_rqc(2, 3, 10, 9);

  // Cold reference: a fresh backend with no engine in the loop.
  const auto cold_backend = create_backend("hip", Precision::kSingle);
  RunOptions opt;
  opt.max_fused_qubits = 3;
  opt.seed = 42;
  opt.num_samples = 32;
  const RunResult cold = run_circuit(*cold_backend, c, opt);

  SimulationEngine eng;
  const SimResult first = eng.run(request(c, "hip"));
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.result_cache_hit);

  const SimResult second = eng.run(request(c, "hip"));
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.result_cache_hit);

  EXPECT_EQ(cold.samples, first.samples);
  EXPECT_EQ(first.samples, second.samples);
  EXPECT_EQ(first.measurements, second.measurements);

  const EngineMetrics m = eng.metrics();
  EXPECT_EQ(m.completed, 2u);
  EXPECT_EQ(m.result_cache_hits, 1u);
}

TEST(SimulationEngine, FusedCacheHitsWhenResultCacheBypassed) {
  const Circuit c = make_rqc(2, 3, 8, 3);
  SimulationEngine eng;
  SimRequest req = request(c, "cpu");
  req.bypass_result_cache = true;
  const SimResult a = eng.run(req);
  const SimResult b = eng.run(req);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_FALSE(a.fused_cache_hit);
  EXPECT_TRUE(b.fused_cache_hit);     // transpiled once, reused
  EXPECT_FALSE(b.result_cache_hit);   // but simulated both times
  EXPECT_EQ(a.samples, b.samples);    // deterministic seed -> same samples
  EXPECT_GT(b.run_seconds, 0.0);
  const EngineMetrics m = eng.metrics();
  EXPECT_EQ(m.fused_cache.hits, 1u);
  EXPECT_EQ(m.fused_cache.misses, 1u);
}

TEST(SimulationEngine, PoolReusesBuffersAcrossQubitCounts) {
  SimulationEngine eng;
  const Circuit six = make_rqc(2, 3, 6, 1);
  const Circuit eight = make_rqc(2, 4, 6, 1);
  for (const Circuit* c : {&six, &eight, &six, &eight}) {
    SimRequest req = request(*c, "hip");
    req.bypass_result_cache = true;  // force real runs so buffers cycle
    ASSERT_TRUE(eng.run(req).ok);
  }
  const EngineMetrics m = eng.metrics();
  EXPECT_EQ(m.pool_misses, 2u);  // one allocation per qubit count
  EXPECT_EQ(m.pool_hits, 2u);    // the repeats reuse parked buffers
  EXPECT_GT(m.bytes_pooled, 0u);
}

TEST(SimulationEngine, ConcurrentEqualsSerialOnTwoBackends) {
  const Circuit c1 = make_rqc(2, 3, 10, 21);
  const Circuit c2 = make_rqc(2, 3, 10, 22);

  // Serial reference, each on a dedicated engine.
  std::vector<SimResult> serial;
  for (int k = 0; k < 4; ++k) {
    SimulationEngine eng;
    SimRequest req = request(k % 2 == 0 ? c1 : c2, k < 2 ? "cpu" : "hip",
                             100 + static_cast<std::uint64_t>(k));
    serial.push_back(eng.run(std::move(req)));
    ASSERT_TRUE(serial.back().ok) << serial.back().error;
  }

  // The same four requests in flight together on one engine: two workers,
  // interleaving cpu and hip backends.
  EngineOptions opt;
  opt.num_workers = 2;
  SimulationEngine eng(opt);
  std::vector<std::future<SimResult>> futs;
  for (int k = 0; k < 4; ++k) {
    futs.push_back(eng.submit(request(k % 2 == 0 ? c1 : c2,
                                      k < 2 ? "cpu" : "hip",
                                      100 + static_cast<std::uint64_t>(k))));
  }
  for (int k = 0; k < 4; ++k) {
    const SimResult concurrent = futs[static_cast<std::size_t>(k)].get();
    ASSERT_TRUE(concurrent.ok) << concurrent.error;
    EXPECT_EQ(concurrent.samples, serial[static_cast<std::size_t>(k)].samples)
        << "request " << k;
  }
  EXPECT_EQ(eng.metrics().backends_created, 2u);
}

// Identical requests in flight at once must not each pay a simulation: the
// first becomes the owner, the rest wait and serve from the result cache.
TEST(SimulationEngine, ConcurrentIdenticalRequestsCoalesce) {
  const Circuit c = make_rqc(2, 3, 10, 33);
  EngineOptions opt;
  opt.num_workers = 2;
  SimulationEngine eng(opt);
  std::vector<std::future<SimResult>> futs;
  for (int k = 0; k < 4; ++k) futs.push_back(eng.submit(request(c, "cpu")));
  std::vector<SimResult> results;
  for (auto& f : futs) results.push_back(f.get());
  for (const SimResult& r : results) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.samples, results.front().samples);
  }
  const EngineMetrics m = eng.metrics();
  EXPECT_EQ(m.completed, 4u);
  EXPECT_EQ(m.result_cache_hits, 3u);  // exactly one simulation happened
}

TEST(SimulationEngine, RejectsOversizedRequests) {
  Circuit big;
  big.num_qubits = 30;  // never allocated: rejected before any buffer exists
  SimulationEngine eng;
  const SimResult r = eng.run(request(big, "hip"));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("engine cap"), std::string::npos) << r.error;
  EXPECT_EQ(eng.metrics().rejected, 1u);
}

TEST(SimulationEngine, RejectsBeyondDeviceMemory) {
  Circuit big;
  big.num_qubits = 32;  // a100/double fits 31 qubits in 40 GiB
  EngineOptions opt;
  opt.max_qubits = 34;  // lift the engine cap so the device limit decides
  SimulationEngine eng(opt);
  SimRequest req = request(big, "a100");
  req.precision = Precision::kDouble;
  const SimResult r = eng.run(std::move(req));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("device memory"), std::string::npos) << r.error;
}

TEST(SimulationEngine, RejectsUnknownBackend) {
  const Circuit c = make_rqc(2, 2, 4, 1);
  SimulationEngine eng;
  const SimResult r = eng.run(request(c, "cuda"));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown backend"), std::string::npos) << r.error;
}

TEST(SimulationEngine, EnforcesAdmissionDeadline) {
  EngineOptions opt;
  opt.num_workers = 1;  // one lane, so the blocker delays the hurried request
  SimulationEngine eng(opt);
  const Circuit blocker = make_rqc(3, 4, 12, 5);
  const Circuit quick = make_rqc(2, 2, 4, 6);

  SimRequest hurried = request(quick, "cpu");
  hurried.timeout_seconds = 1e-9;  // lapses while the blocker runs

  auto f1 = eng.submit(request(blocker, "cpu"));
  auto f2 = eng.submit(std::move(hurried));
  ASSERT_TRUE(f1.get().ok);
  const SimResult r = f2.get();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("deadline exceeded"), std::string::npos) << r.error;
}

TEST(SimulationEngine, RejectsWhenQueueFull) {
  EngineOptions opt;
  opt.num_workers = 1;
  opt.max_pending = 1;
  SimulationEngine eng(opt);
  const Circuit c = make_rqc(3, 4, 10, 7);  // slow enough to back up the queue
  std::vector<std::future<SimResult>> futs;
  for (int k = 0; k < 6; ++k) {
    futs.push_back(eng.submit(request(c, "cpu", static_cast<std::uint64_t>(k))));
  }
  std::size_t rejected = 0;
  for (auto& f : futs) {
    const SimResult r = f.get();
    if (!r.ok) {
      ++rejected;
      EXPECT_NE(r.error.find("queue full"), std::string::npos) << r.error;
    }
  }
  EXPECT_GE(rejected, 1u);
  EXPECT_EQ(eng.metrics().rejected, rejected);
}

TEST(SimulationEngine, ExportsMetricsIntoTrace) {
  Tracer tracer;
  EngineOptions opt;
  opt.tracer = &tracer;
  SimulationEngine eng(opt);
  const Circuit c = make_rqc(2, 3, 8, 2);
  ASSERT_TRUE(eng.run(request(c, "hip")).ok);
  ASSERT_TRUE(eng.run(request(c, "hip")).ok);  // result-cache hit
  eng.export_metrics();

  const auto counters = tracer.counters();
  ASSERT_FALSE(counters.empty());
  EXPECT_EQ(counters.at("engine/requests_completed"), 2.0);
  EXPECT_EQ(counters.at("engine/result_cache_hits"), 1.0);
  EXPECT_GT(counters.at("engine/latency_p50_ms"), 0.0);
  EXPECT_GT(counters.at("engine/pool_misses"), 0.0);

  const std::string json = tracer.to_perfetto_json();
  EXPECT_NE(json.find("engine/requests_completed"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);

  const EngineMetrics m = eng.metrics();
  EXPECT_EQ(m.submitted, 2u);
  EXPECT_GE(m.p95_ms, m.p50_ms);
}

TEST(SimulationEngine, EmitsFlowLinkedRequestSpans) {
  Tracer tracer;
  EngineOptions opt;
  opt.tracer = &tracer;
  SimulationEngine eng(opt);
  const Circuit c = make_rqc(2, 3, 8, 4);
  std::vector<std::uint64_t> ids;
  for (std::uint64_t s = 0; s < 3; ++s) {
    // Distinct seeds dodge the result cache so every request executes.
    const SimResult r = eng.run(request(c, "hip", 100 + s));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_NE(r.request_id, 0u);
    ids.push_back(r.request_id);
  }

  const prof::ParsedTrace pt =
      prof::parse_trace_json(tracer.to_perfetto_json());
  std::set<std::uint64_t> flow_ids;
  for (const auto& f : pt.flows) flow_ids.insert(f.corr);

  // Every completed request has its full span tree, at least one kernel
  // carrying its correlation id, and an s/t/f flow chain binding the two.
  for (const std::uint64_t id : ids) {
    std::set<std::string> spans;
    std::size_t kernels = 0;
    for (const auto& e : pt.events) {
      if (e.corr != id) continue;
      if (e.cat == "request") spans.insert(e.name);
      if (e.cat == "kernel") ++kernels;
    }
    for (const char* name :
         {"request", "admit", "queue", "fuse", "execute", "sample"}) {
      EXPECT_EQ(spans.count(name), 1u) << "request " << id << ": " << name;
    }
    EXPECT_GE(kernels, 1u) << "request " << id << " has no tagged kernels";
    EXPECT_TRUE(flow_ids.count(id)) << "request " << id << " not flow-linked";
  }

  // Histograms follow the completed requests.
  const EngineMetrics m = eng.metrics();
  EXPECT_EQ(m.total_ms.count(), ids.size());
  EXPECT_EQ(m.execute_ms.count(), ids.size());
  EXPECT_EQ(m.sample_ms.count(), ids.size());
  EXPECT_GT(m.fused_gates.sum(), 0.0);
  const std::string prom = m.to_prom_text();
  EXPECT_NE(prom.find("qhip_engine_stage_latency_ms_bucket"),
            std::string::npos);
  EXPECT_NE(prom.find("stage=\"execute\""), std::string::npos);
  EXPECT_NE(prom.find("qhip_engine_fused_gates_count 3"), std::string::npos);
}

}  // namespace
}  // namespace qhip::engine
