// Placement planner: golden decisions from the raw rooflines, online
// calibration (backend-level and fusion-level reordering), load-aware
// rescoring, option validation, and the engine's "auto" path — bit-identity
// with the explicitly-routed equivalent, planner counters, and the
// num_workers=0 clamp.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/error.h"
#include "src/engine/engine.h"
#include "src/engine/planner.h"
#include "src/fusion/fuser.h"
#include "src/perfmodel/workload.h"
#include "src/rqc/rqc.h"

namespace qhip::engine {
namespace {

Circuit make_rqc(unsigned rows, unsigned cols, unsigned depth,
                 std::uint64_t seed) {
  rqc::RqcOptions opt;
  opt.rows = rows;
  opt.cols = cols;
  opt.depth = depth;
  opt.seed = seed;
  return rqc::generate_rqc(opt);
}

PlannerOptions default_options() {
  PlannerOptions opt;
  opt.candidates = {BackendSpec::parse("cpu"), BackendSpec::parse("hip"),
                    BackendSpec::parse("a100")};
  return opt;
}

// stats_for hook: fuse on demand, exactly what the engine wires in.
std::function<perfmodel::WorkloadStats(const FusionOptions&)> stats_for(
    const Circuit& c) {
  return [&c](const FusionOptions& fo) {
    return perfmodel::WorkloadStats::from_circuit(fuse_circuit(c, fo).circuit);
  };
}

TEST(Planner, SmallCircuitGoesToCpuOnRawRoofline) {
  // 4 qubits, shallow: per-launch overhead dominates, and the rooflines put
  // a CPU dispatch (~1.5us) well under a GPU kernel launch (~7us).
  const Circuit c = make_rqc(2, 2, 4, 1);
  Planner p(default_options());
  const PlanChoice choice =
      p.plan(c.num_qubits, Precision::kSingle, {4}, stats_for(c));
  EXPECT_EQ(choice.backend.kind, BackendSpec::Kind::kCpu);
  EXPECT_GT(choice.candidates_scored, 0u);
  EXPECT_EQ(choice.calibration, 1.0);  // nothing observed yet
  EXPECT_EQ(choice.considered.size(), choice.candidates_scored);
}

TEST(Planner, DeepWideCircuitGoesToGpuOnRawRoofline) {
  // 26 qubits, deep: a 1 GiB state swept once per fused gate. Bandwidth
  // dominates and the paper's GPUs are ~7-9x the CPU roofline.
  const Circuit c = make_rqc(2, 13, 16, 3);
  ASSERT_EQ(c.num_qubits, 26u);
  Planner p(default_options());
  const PlanChoice choice =
      p.plan(c.num_qubits, Precision::kSingle, {4}, stats_for(c));
  EXPECT_NE(choice.backend.kind, BackendSpec::Kind::kCpu)
      << "placed on " << choice.backend.to_string();
}

TEST(Planner, CalibrationFlipsABackendAfterSlowObservations) {
  const Circuit c = make_rqc(2, 2, 4, 1);
  Planner p(default_options());
  const PlanChoice before =
      p.plan(c.num_qubits, Precision::kSingle, {4}, stats_for(c));
  ASSERT_EQ(before.backend.kind, BackendSpec::Kind::kCpu);

  // The chosen backend turns out to run 10^5x slower than its roofline on
  // this host; one honest observation must be enough to reorder.
  p.observe(before.backend, c.num_qubits, before.fusion.max_fused_qubits,
            before.raw_seconds, before.raw_seconds * 1e5);
  const PlanChoice after =
      p.plan(c.num_qubits, Precision::kSingle, {4}, stats_for(c));
  EXPECT_NE(after.backend.kind, BackendSpec::Kind::kCpu)
      << "still placed on " << after.backend.to_string();
  EXPECT_GT(p.calibration(before.backend, c.num_qubits,
                          before.fusion.max_fused_qubits),
            1.0);

  const PlannerStats s = p.stats();
  EXPECT_EQ(s.decisions, 2u);
  EXPECT_EQ(s.calibrated_decisions, 0u);  // the winner was never calibrated
  EXPECT_EQ(s.observations, 1u);
  EXPECT_FALSE(s.calibration.empty());
}

TEST(Planner, FusionLevelCalibrationReordersFusionChoices) {
  // A single-candidate planner: only the fusion setting can change. A shared
  // per-backend factor scales every candidate equally, so this reordering is
  // possible only because calibration is keyed per max_fused.
  const Circuit c = make_rqc(2, 3, 8, 2);
  PlannerOptions opt;
  opt.candidates = {BackendSpec::parse("cpu")};
  Planner p(opt);
  const PlanChoice before =
      p.plan(c.num_qubits, Precision::kSingle, {4}, stats_for(c));
  const unsigned f_star = before.fusion.max_fused_qubits;

  // Report every fusion setting at its predicted time, except the winner,
  // which turns out 1000x slower than predicted on this host.
  for (const PlanCandidate& pc : before.considered) {
    const double observed = pc.fusion.max_fused_qubits == f_star
                                ? pc.raw_seconds * 1000.0
                                : pc.raw_seconds;
    p.observe(pc.backend, c.num_qubits, pc.fusion.max_fused_qubits,
              pc.raw_seconds, observed);
  }

  const PlanChoice after = p.rescore(before, c.num_qubits);
  EXPECT_NE(after.fusion.max_fused_qubits, f_star);
  EXPECT_TRUE(after.considered.empty());  // rescore returns the summary only
  EXPECT_EQ(after.candidates_scored, before.candidates_scored);
}

TEST(Planner, RescoreIsLoadAware) {
  const Circuit c = make_rqc(2, 2, 4, 1);
  Planner p(default_options());
  const PlanChoice plan =
      p.plan(c.num_qubits, Precision::kSingle, {4}, stats_for(c));
  ASSERT_EQ(plan.backend.kind, BackendSpec::Kind::kCpu);

  // An hour of work queued on the cpu makes any idle backend the better bet.
  const auto loaded = [&](const BackendSpec& s) {
    return s.kind == BackendSpec::Kind::kCpu ? 3600.0 : 0.0;
  };
  const PlanChoice rerouted = p.rescore(plan, c.num_qubits, loaded);
  EXPECT_NE(rerouted.backend.kind, BackendSpec::Kind::kCpu);
  EXPECT_EQ(rerouted.wait_seconds, 0.0);
}

TEST(Planner, OptionValidation) {
  EXPECT_THROW(Planner(PlannerOptions{}), Error);  // no candidates

  PlannerOptions with_auto = default_options();
  with_auto.candidates.push_back(BackendSpec::parse("auto"));
  EXPECT_THROW(Planner(std::move(with_auto)), Error);  // policy, not a device

  PlannerOptions bad_sweep = default_options();
  bad_sweep.min_fused = 5;
  bad_sweep.max_fused = 3;
  EXPECT_THROW(Planner(std::move(bad_sweep)), Error);

  PlannerOptions bad_alpha = default_options();
  bad_alpha.alpha = 0.0;
  EXPECT_THROW(Planner(std::move(bad_alpha)), Error);
}

TEST(Planner, ObserveIgnoresDegenerateSamples) {
  Planner p(default_options());
  const BackendSpec cpu = BackendSpec::parse("cpu");
  p.observe(cpu, 4, 2, 0.0, 1.0);   // no prediction
  p.observe(cpu, 4, 2, 1.0, 0.0);   // zero-length timer read
  p.observe(cpu, 4, 2, -1.0, 1.0);  // nonsense
  EXPECT_EQ(p.stats().observations, 0u);
  EXPECT_EQ(p.calibration(cpu, 4, 2), 1.0);
}

// --- the engine's "auto" path ----------------------------------------------

SimRequest auto_request(const Circuit& c, std::uint64_t seed = 42) {
  SimRequest req;
  req.circuit = c;
  req.backend = "auto";
  req.seed = seed;
  req.num_samples = 32;
  return req;
}

TEST(SimulationEngine, AutoIsBitIdenticalToItsChosenBackend) {
  const Circuit c = make_rqc(2, 3, 8, 5);
  EngineOptions opt;
  opt.planner_candidates = {"cpu", "hip"};
  SimulationEngine eng(opt);

  SimRequest req = auto_request(c);
  req.bypass_result_cache = true;
  const SimResult ar = eng.run(req);
  ASSERT_TRUE(ar.ok) << ar.error;
  ASSERT_NE(ar.counters.count("planner/max_fused"), 0u);

  // Replay the planner's decision explicitly: same backend, same fusion.
  SimRequest replay = req;
  replay.backend = ar.backend_used;
  replay.fusion.max_fused_qubits =
      static_cast<unsigned>(ar.counters.at("planner/max_fused"));
  replay.fusion.window_moments =
      static_cast<unsigned>(ar.counters.at("planner/window"));
  const SimResult er = eng.run(replay);
  ASSERT_TRUE(er.ok) << er.error;
  EXPECT_EQ(ar.samples, er.samples);
  EXPECT_EQ(ar.measurements, er.measurements);
  EXPECT_GT(ar.counters.at("planner/candidates_scored"), 0.0);
}

TEST(SimulationEngine, AutoDecisionsCountedInMetricsAndProm) {
  const Circuit c = make_rqc(2, 2, 6, 11);
  EngineOptions opt;
  opt.planner_candidates = {"cpu", "hip"};
  SimulationEngine eng(opt);
  SimRequest req = auto_request(c);
  req.bypass_result_cache = true;
  ASSERT_TRUE(eng.run(req).ok);
  req.seed = 43;
  ASSERT_TRUE(eng.run(req).ok);  // second request re-scores the cached plan

  const EngineMetrics m = eng.metrics();
  EXPECT_EQ(m.planner_decisions, 2u);
  EXPECT_EQ(m.planner_observations, 2u);
  EXPECT_FALSE(m.planner_chosen.empty());
  EXPECT_FALSE(m.planner_calibration.empty());
  EXPECT_GT(m.planner_predicted_seconds, 0.0);
  EXPECT_GT(m.planner_observed_seconds, 0.0);

  const std::string prom = m.to_prom_text();
  EXPECT_NE(prom.find("qhip_engine_planner_decisions 2"), std::string::npos);
  EXPECT_NE(prom.find("qhip_engine_planner_chosen{backend="),
            std::string::npos);
  EXPECT_NE(prom.find("qhip_engine_planner_calibration{backend="),
            std::string::npos);
}

TEST(SimulationEngine, AutoRequiresThePlanner) {
  const Circuit c = make_rqc(2, 2, 4, 1);
  EngineOptions opt;
  opt.enable_planner = false;
  SimulationEngine eng(opt);
  const SimResult res = eng.run(auto_request(c));
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("requires the placement planner"),
            std::string::npos)
      << res.error;
}

TEST(SimulationEngine, BadPlannerCandidateListThrows) {
  EngineOptions opt;
  opt.planner_candidates = {"cpu", "bogus"};
  EXPECT_THROW(SimulationEngine{opt}, Error);
}

TEST(SimulationEngine, ZeroWorkersClampsToOne) {
  EngineOptions opt;
  opt.num_workers = 0;  // misconfiguration must not deadlock every submit
  SimulationEngine eng(opt);
  EXPECT_EQ(eng.options().num_workers, 1u);

  const Circuit c = make_rqc(2, 2, 4, 1);
  SimRequest req;
  req.circuit = c;
  req.backend = "cpu";
  req.seed = 42;
  req.num_samples = 16;
  const SimResult res = eng.run(req);
  EXPECT_TRUE(res.ok) << res.error;
}

}  // namespace
}  // namespace qhip::engine
