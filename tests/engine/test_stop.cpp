// Engine drain correctness: stop() must complete every outstanding future
// and callback exactly once — in-flight work finishes, queued work fails
// with a structured kRejected — even when waiters are coalesced onto a
// shared flight. The coalesced-trajectory case is a regression test: stop()
// used to join workers while a coalesced waiter still parked on the results
// condition variable, deadlocking both the waiter and the destructor.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "src/core/gates.h"
#include "src/engine/engine.h"
#include "src/noise/channels.h"

namespace qhip::engine {
namespace {

using namespace std::chrono_literals;

Circuit work_circuit(unsigned qubits, unsigned depth) {
  Circuit c;
  c.num_qubits = qubits;
  unsigned t = 0;
  for (qubit_t q = 0; q < qubits; ++q) c.gates.push_back(gates::h(t, q));
  for (unsigned d = 0; d < depth; ++d) {
    ++t;
    for (qubit_t q = 0; q < qubits; ++q) {
      c.gates.push_back(gates::rz(t, q, 0.2 * static_cast<double>(d + 1)));
    }
  }
  return c;
}

SimRequest trajectory_request(const Circuit& c) {
  SimRequest req;
  req.circuit = c;
  req.kind = RequestKind::kTrajectory;
  req.backend = "cpu";
  req.precision = Precision::kDouble;
  req.noise = noise::NoiseModel{noise::depolarizing(0.02)};
  req.num_trajectories = 16;
  req.seed = 5;  // identical requests: the second submit coalesces
  return req;
}

// The regression: a trajectory batch in flight, a second identical request
// coalesced onto it, then stop() racing both. Both futures must resolve
// (hang before the fix).
TEST(EngineStop, CompletesCoalescedTrajectoryWaitersAcrossStop) {
  EngineOptions opt;
  opt.num_workers = 2;
  SimulationEngine eng(opt);

  const Circuit c = work_circuit(12, 6);
  std::future<SimResult> first = eng.submit(trajectory_request(c));
  std::future<SimResult> second = eng.submit(trajectory_request(c));

  // Let the batch actually start fanning out before draining.
  std::this_thread::sleep_for(10ms);
  eng.stop();

  ASSERT_EQ(first.wait_for(30s), std::future_status::ready)
      << "stop() left the primary trajectory future hanging";
  ASSERT_EQ(second.wait_for(30s), std::future_status::ready)
      << "stop() left the coalesced waiter hanging";
  // Outcomes may legitimately differ — the duplicate can still be queued
  // (drained to kRejected) while the in-flight batch finishes ok. What must
  // hold is that BOTH resolve, each with ok or a structured rejection.
  for (const SimResult res : {first.get(), second.get()}) {
    if (!res.ok) {
      EXPECT_EQ(res.code, SimErrorCode::kRejected) << res.error;
      EXPECT_FALSE(res.error.empty());
    }
  }
}

TEST(EngineStop, QueuedRequestsFailStructuredInFlightFinishes) {
  EngineOptions opt;
  opt.num_workers = 1;
  SimulationEngine eng(opt);

  const Circuit c = work_circuit(14, 8);
  std::vector<std::future<SimResult>> futures;
  for (int i = 0; i < 6; ++i) {
    SimRequest req;
    req.circuit = c;
    req.backend = "cpu";
    req.num_samples = 8;
    req.seed = 100 + static_cast<std::uint64_t>(i);  // distinct: no coalescing
    req.bypass_result_cache = true;
    futures.push_back(eng.submit(std::move(req)));
  }
  std::this_thread::sleep_for(5ms);  // let the single worker dequeue one
  eng.stop();

  std::size_t ok = 0, rejected = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(30s), std::future_status::ready);
    const SimResult res = f.get();
    if (res.ok) {
      ++ok;
    } else {
      EXPECT_EQ(res.code, SimErrorCode::kRejected);
      EXPECT_NE(res.error.find("drained"), std::string::npos) << res.error;
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, 6u);
  EXPECT_GE(rejected, 1u);  // 1 worker, 6 requests: the drain catches some
}

TEST(EngineStop, SubmitAfterStopRejectsImmediately) {
  SimulationEngine eng;
  eng.stop();

  SimRequest req;
  req.circuit = work_circuit(4, 1);
  req.backend = "cpu";
  req.num_samples = 4;

  std::future<SimResult> f = eng.submit(req);
  ASSERT_EQ(f.wait_for(5s), std::future_status::ready);
  const SimResult res = f.get();
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.code, SimErrorCode::kRejected);

  // Callback-style submit must fire inline on the submitting thread.
  std::atomic<bool> fired{false};
  eng.submit(req, [&](SimResult r) {
    EXPECT_FALSE(r.ok);
    fired.store(true);
  });
  EXPECT_TRUE(fired.load());
}

// The serving front-end's drain invariant: stop() returns only after every
// completion callback has fired, so a server that enqueues responses from
// callbacks can flush everything it will ever owe after stop() returns.
TEST(EngineStop, EveryCallbackFiresBeforeStopReturns) {
  EngineOptions opt;
  opt.num_workers = 2;
  SimulationEngine eng(opt);

  const Circuit c = work_circuit(12, 6);
  constexpr int kRequests = 12;
  std::atomic<int> completions{0};
  for (int i = 0; i < kRequests; ++i) {
    SimRequest req;
    req.circuit = c;
    req.backend = "cpu";
    req.num_samples = 8;
    req.seed = 200 + static_cast<std::uint64_t>(i);
    req.bypass_result_cache = true;
    eng.submit(std::move(req), [&](SimResult) { ++completions; });
  }
  eng.stop();
  EXPECT_EQ(completions.load(), kRequests);

  eng.stop();  // idempotent
  EXPECT_EQ(completions.load(), kRequests);
}

}  // namespace
}  // namespace qhip::engine
