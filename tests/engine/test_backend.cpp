// Runtime Backend API: factory specs, legacy-shim parity, buffer pooling,
// amplitude gathering, and device-memory capacity arithmetic.
#include <gtest/gtest.h>

#include "src/base/error.h"
#include "src/engine/backend.h"
#include "src/hipsim/simulator_hip.h"
#include "src/rqc/rqc.h"
#include "src/simulator/simulator_cpu.h"
#include "src/vgpu/device_props.h"

namespace qhip {
namespace {

Circuit make_rqc(unsigned rows, unsigned cols, unsigned depth,
                 std::uint64_t seed) {
  rqc::RqcOptions opt;
  opt.rows = rows;
  opt.cols = cols;
  opt.depth = depth;
  opt.seed = seed;
  return rqc::generate_rqc(opt);
}

TEST(BackendFactory, CreatesEverySpec) {
  for (const char* spec : {"cpu", "hip", "a100", "hip:2", "hip:4"}) {
    const auto b = create_backend(spec, Precision::kSingle);
    EXPECT_EQ(b->spec(), spec);
    EXPECT_EQ(b->precision(), Precision::kSingle);
    EXPECT_FALSE(b->description().empty());
    EXPECT_GT(b->max_qubits(), 20u) << spec;
  }
  EXPECT_EQ(create_backend("cpu", Precision::kDouble)->precision(),
            Precision::kDouble);
  EXPECT_EQ(create_backend("hip", "double")->precision(), Precision::kDouble);
}

TEST(BackendFactory, RejectsUnknownSpecs) {
  EXPECT_THROW(create_backend("cuda", Precision::kSingle), Error);
  EXPECT_THROW(create_backend("hip:3", Precision::kSingle), Error);  // not 2^k
  EXPECT_THROW(create_backend("hip:", Precision::kSingle), Error);
  EXPECT_THROW(create_backend("cpu", "half"), Error);
}

TEST(BackendFactory, IsBackendSpec) {
  EXPECT_TRUE(is_backend_spec("cpu"));
  EXPECT_TRUE(is_backend_spec("hip"));
  EXPECT_TRUE(is_backend_spec("a100"));
  EXPECT_TRUE(is_backend_spec("hip:2"));
  EXPECT_TRUE(is_backend_spec("hip:64"));
  EXPECT_FALSE(is_backend_spec("hip:1"));
  EXPECT_FALSE(is_backend_spec("hip:3"));
  EXPECT_FALSE(is_backend_spec("hip:128"));
  EXPECT_FALSE(is_backend_spec("gpu"));
  EXPECT_FALSE(is_backend_spec(""));
}

// The polymorphic path must be bit-identical with the legacy template
// run_circuit for the same backend kind, fusion setting, and seed.
TEST(Backend, CpuMatchesLegacyShimBitExact) {
  const Circuit c = make_rqc(2, 3, 10, 11);
  RunOptions opt;
  opt.max_fused_qubits = 3;
  opt.seed = 42;
  opt.num_samples = 64;

  SimulatorCPU<float> sim;
  StateVector<float> state(c.num_qubits);
  const RunResult legacy = run_circuit(c, sim, state, opt);

  const auto backend = create_backend("cpu", Precision::kSingle);
  const RunResult poly = run_circuit(*backend, c, opt);

  ASSERT_EQ(legacy.samples.size(), poly.samples.size());
  EXPECT_EQ(legacy.samples, poly.samples);
  EXPECT_EQ(legacy.measurements, poly.measurements);
  EXPECT_EQ(legacy.fusion.output_gates, poly.fusion.output_gates);
}

TEST(Backend, HipMatchesLegacyShimBitExact) {
  const Circuit c = make_rqc(2, 3, 10, 11);
  RunOptions opt;
  opt.max_fused_qubits = 3;
  opt.seed = 42;
  opt.num_samples = 64;

  vgpu::Device dev(vgpu::mi250x_gcd());
  hipsim::SimulatorHIP<float> sim(dev);
  hipsim::DeviceStateVector<float> ds(dev, c.num_qubits);
  sim.state_space().set_zero_state(ds);
  const Circuit fused = fuse_circuit(c, {opt.max_fused_qubits}).circuit;
  std::vector<index_t> legacy_meas;
  sim.run(fused, ds, opt.seed, &legacy_meas);
  dev.synchronize();
  const auto legacy_samples =
      sim.state_space().sample(ds, opt.num_samples, opt.seed);

  const auto backend = create_backend("hip", Precision::kSingle);
  const RunResult poly = run_circuit(*backend, c, opt);

  EXPECT_EQ(legacy_samples, poly.samples);
  EXPECT_EQ(legacy_meas, poly.measurements);
}

TEST(Backend, PoolReusesBuffersAcrossQubitCounts) {
  const auto backend = create_backend("hip", Precision::kSingle);
  const Circuit small = make_rqc(2, 3, 6, 1);   // 6 qubits
  const Circuit large = make_rqc(2, 4, 6, 1);   // 8 qubits
  BackendRunSpec rs;

  backend->run(small, rs);  // miss: allocates the 6-qubit buffer
  backend->run(large, rs);  // miss: allocates the 8-qubit buffer
  backend->run(small, rs);  // hit: reuses the parked 6-qubit buffer
  backend->run(large, rs);  // hit: reuses the parked 8-qubit buffer

  const engine::PoolStats s = backend->pool_stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.buffers_pooled, 2u);
  EXPECT_EQ(s.bytes_pooled,
            (pow2(6) + pow2(8)) * sizeof(cplx<float>));

  backend->trim_pool();
  EXPECT_EQ(backend->pool_stats().bytes_pooled, 0u);
}

TEST(Backend, AmplitudeGatherMatchesFullState) {
  const Circuit c = make_rqc(2, 3, 8, 5);
  const Circuit fused = fuse_circuit(c, {3}).circuit;
  for (const char* spec : {"cpu", "hip", "hip:2"}) {
    const auto backend = create_backend(spec, Precision::kSingle);
    BackendRunSpec rs;
    rs.want_state = true;
    rs.amplitude_indices = {0, 1, 7, 63};
    const BackendRunOutput out = backend->run(fused, rs);
    ASSERT_EQ(out.state.size(), pow2(c.num_qubits)) << spec;
    ASSERT_EQ(out.amplitudes.size(), 4u) << spec;
    for (std::size_t k = 0; k < rs.amplitude_indices.size(); ++k) {
      EXPECT_EQ(out.amplitudes[k],
                out.state[static_cast<std::size_t>(rs.amplitude_indices[k])])
          << spec;
    }
  }
}

TEST(Backend, MultiGcdReportsTransferCounters) {
  const auto backend = create_backend("hip:2", Precision::kSingle);
  const Circuit c = make_rqc(2, 4, 8, 3);
  BackendRunSpec rs;
  const BackendRunOutput out = backend->run(fuse_circuit(c, {2}).circuit, rs);
  ASSERT_TRUE(out.counters.count("slot_swaps"));
  ASSERT_TRUE(out.counters.count("peer_bytes"));
  EXPECT_GT(out.counters.at("local_gate_launches"), 0.0);
}

// Device-memory capacity arithmetic: a virtual A100 holds 40 GiB, so at
// double precision (16-byte amplitudes) it fits 2^31 amplitudes and no more.
TEST(Backend, MaxQubitsTracksDeviceMemory) {
  const auto a100d = create_backend("a100", Precision::kDouble);
  EXPECT_EQ(a100d->max_qubits(), 31u);
  const auto a100s = create_backend("a100", Precision::kSingle);
  EXPECT_EQ(a100s->max_qubits(), 32u);
  // The MI250X GCD is modelled with 128 GiB, capped by the emulator's 34.
  const auto hips = create_backend("hip", Precision::kSingle);
  EXPECT_EQ(hips->max_qubits(), 33u);
}

}  // namespace
}  // namespace qhip
