// dist:N as a first-class serving backend: factory specs, bit-identity with
// the cpu backend through the SimulationEngine (state, samples, amplitudes
// for a fixed seed), transfer counters, deadline propagation, slice pooling,
// and hip -> dist graceful degradation.
#include <gtest/gtest.h>

#include "src/base/error.h"
#include "src/engine/backend.h"
#include "src/engine/engine.h"
#include "src/fusion/fuser.h"
#include "src/rqc/rqc.h"

namespace qhip {
namespace {

using engine::EngineOptions;
using engine::SimRequest;
using engine::SimResult;
using engine::SimulationEngine;

Circuit make_rqc(unsigned rows, unsigned cols, unsigned depth,
                 std::uint64_t seed) {
  rqc::RqcOptions opt;
  opt.rows = rows;
  opt.cols = cols;
  opt.depth = depth;
  opt.seed = seed;
  return rqc::generate_rqc(opt);
}

TEST(DistBackendFactory, CreatesEveryRankCount) {
  for (const char* spec : {"dist:2", "dist:4", "dist:8"}) {
    const auto b = create_backend(spec, Precision::kSingle);
    EXPECT_EQ(b->spec(), spec);
    EXPECT_EQ(b->precision(), Precision::kSingle);
    EXPECT_FALSE(b->description().empty());
    EXPECT_EQ(b->max_qubits(), 30u);
  }
  EXPECT_EQ(create_backend("dist:2", Precision::kDouble)->precision(),
            Precision::kDouble);
}

TEST(DistBackendFactory, RejectsBadRankCounts) {
  EXPECT_THROW(create_backend("dist:1", Precision::kSingle), Error);
  EXPECT_THROW(create_backend("dist:3", Precision::kSingle), Error);
  EXPECT_THROW(create_backend("dist:128", Precision::kSingle), Error);
  EXPECT_THROW(create_backend("dist:", Precision::kSingle), Error);
  EXPECT_TRUE(is_backend_spec("dist:2"));
  EXPECT_TRUE(is_backend_spec("dist:64"));
  EXPECT_FALSE(is_backend_spec("dist:1"));
  EXPECT_FALSE(is_backend_spec("dist:3"));
  EXPECT_FALSE(is_backend_spec("dist:128"));
  EXPECT_FALSE(is_backend_spec("dist"));
}

// The core serving guarantee: a 16-qubit RQC served through the engine on
// dist:N returns bit-identical state, samples, and amplitudes to the cpu
// backend for the same seed (gate arithmetic is elementwise-identical
// regardless of distribution, and sampling runs on the gathered state with
// the same Philox streams).
TEST(DistBackend, BitIdenticalWithCpuThroughEngine) {
  const Circuit c = make_rqc(4, 4, 8, 17);
  ASSERT_EQ(c.num_qubits, 16u);

  SimRequest base;
  base.circuit = c;
  base.max_fused = 3;
  base.seed = 5;
  base.num_samples = 128;
  base.amplitude_indices = {0, 1, 255, 65535};
  base.want_state = true;

  SimulationEngine eng;
  SimRequest cpu_req = base;
  cpu_req.backend = "cpu";
  const SimResult cpu = eng.run(cpu_req);
  ASSERT_TRUE(cpu.ok) << cpu.error;
  ASSERT_EQ(cpu.state.size(), pow2(16));

  for (const char* spec : {"dist:2", "dist:4", "dist:8"}) {
    SimRequest req = base;
    req.backend = spec;
    const SimResult r = eng.run(req);
    ASSERT_TRUE(r.ok) << spec << ": " << r.error;
    EXPECT_EQ(r.backend_used, spec);
    EXPECT_EQ(r.state, cpu.state) << spec;
    EXPECT_EQ(r.samples, cpu.samples) << spec;
    EXPECT_EQ(r.amplitudes, cpu.amplitudes) << spec;
    EXPECT_EQ(r.measurements, cpu.measurements) << spec;
    // The distributed run reports its communication profile.
    ASSERT_TRUE(r.counters.count("slot_swaps")) << spec;
    ASSERT_TRUE(r.counters.count("swap_rounds")) << spec;
    ASSERT_TRUE(r.counters.count("peer_bytes")) << spec;
    ASSERT_TRUE(r.counters.count("exchange_ns")) << spec;
    EXPECT_GT(r.counters.at("slot_swaps"), 0.0) << spec;
    EXPECT_GT(r.counters.at("peer_bytes"), 0.0) << spec;
  }

  // Identical dist requests are served from the result cache.
  SimRequest again = base;
  again.backend = "dist:2";
  const SimResult hit = eng.run(again);
  ASSERT_TRUE(hit.ok);
  EXPECT_TRUE(hit.result_cache_hit);
  EXPECT_EQ(hit.samples, cpu.samples);
}

// In-circuit measurement gates through the serving path: outcomes agree
// with cpu exactly (same seed formula and Philox stream; the outcome draw
// is replicated on every rank from allreduced probabilities).
TEST(DistBackend, MeasurementOutcomesMatchCpu) {
  rqc::RqcOptions opt;
  opt.rows = 3;
  opt.cols = 3;
  opt.depth = 6;
  opt.seed = 4;
  opt.final_measurement = true;
  const Circuit c = rqc::generate_rqc(opt);

  SimRequest base;
  base.circuit = c;
  base.seed = 23;
  SimulationEngine eng;
  SimRequest cpu_req = base;
  cpu_req.backend = "cpu";
  const SimResult cpu = eng.run(cpu_req);
  ASSERT_TRUE(cpu.ok) << cpu.error;
  ASSERT_EQ(cpu.measurements.size(), 1u);

  SimRequest dist_req = base;
  dist_req.backend = "dist:4";
  const SimResult dist = eng.run(dist_req);
  ASSERT_TRUE(dist.ok) << dist.error;
  EXPECT_EQ(dist.measurements, cpu.measurements);
}

TEST(DistBackend, DeadlinePropagatesAsCodedError) {
  const auto backend = create_backend("dist:2", Precision::kSingle);
  const Circuit fused = fuse_circuit(make_rqc(3, 3, 8, 2), {3}).circuit;
  BackendRunSpec rs;
  rs.deadline = Deadline::after(0);
  try {
    backend->run(fused, rs);
    FAIL() << "expired deadline did not abort the run";
  } catch (const CodedError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
  }
  // The backend stays serviceable after the abort.
  const BackendRunOutput out = backend->run(fused, BackendRunSpec{});
  EXPECT_GT(out.counters.at("slot_swaps"), 0.0);
}

TEST(DistBackend, PoolReusesSlicesAcrossRequests) {
  const auto backend = create_backend("dist:4", Precision::kSingle);
  const Circuit fused = fuse_circuit(make_rqc(2, 4, 6, 1), {2}).circuit;
  BackendRunSpec rs;
  backend->run(fused, rs);  // 4 misses: each rank allocates its slice
  backend->run(fused, rs);  // 4 hits: each rank adopts a parked slice
  const engine::PoolStats s = backend->pool_stats();
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.hits, 4u);
  EXPECT_EQ(s.buffers_pooled, 4u);
  EXPECT_EQ(s.bytes_pooled, pow2(fused.num_qubits) * sizeof(cplx<float>));
  backend->trim_pool();
  EXPECT_EQ(backend->pool_stats().bytes_pooled, 0u);
}

// dist ranks are host threads — there is no virtual device to install a
// fault plan on, so (like cpu) a fault spec is accepted and ignored.
TEST(DistBackend, FaultSpecIgnored) {
  const auto backend =
      create_backend("dist:2", Precision::kSingle, nullptr, "memcpy:every=1");
  const Circuit fused = fuse_circuit(make_rqc(2, 3, 6, 9), {2}).circuit;
  BackendRunSpec rs;
  rs.num_samples = 8;
  const BackendRunOutput out = backend->run(fused, rs);
  EXPECT_EQ(out.samples.size(), 8u);
}

// Graceful degradation: a persistently faulting hip backend falls back to
// dist:N and the request still completes there.
TEST(DistBackend, EngineFallsBackFromHipToDist) {
  EngineOptions opt;
  opt.fault_spec = "memcpy:every=1";  // every hip stream copy fails, forever
  opt.max_attempts = 2;
  opt.retry_backoff_seconds = 0.0005;
  opt.fallback_backend = "dist:2";  // no virtual device -> immune
  SimulationEngine eng(opt);

  SimRequest req;
  req.circuit = make_rqc(3, 3, 6, 7);
  req.backend = "hip";
  req.num_samples = 16;
  const SimResult r = eng.run(req);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.fallback_used);
  EXPECT_EQ(r.backend_used, "dist:2");
  EXPECT_EQ(r.samples.size(), 16u);
}

// Too few qubits to split over the rank count is a clean engine failure,
// not a hang or a crash.
TEST(DistBackend, TooFewQubitsRejected) {
  Circuit tiny;
  tiny.num_qubits = 2;
  SimRequest req;
  req.circuit = tiny;
  req.backend = "dist:8";
  SimulationEngine eng;
  const SimResult r = eng.run(req);
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace qhip
