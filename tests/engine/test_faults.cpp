// SimulationEngine error recovery under vgpu fault injection: structured
// error codes, retry-with-backoff, fallback backends, deadline cancellation
// mid-run, failure propagation to coalesced waiters, the bounded latency
// reservoir, and a 500-request soak with ~10% injected faults that must
// resolve every request to success (bit-identical with a fault-free run) or
// a structured error — no crashes, no hangs.
#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "src/engine/backend.h"
#include "src/engine/engine.h"
#include "src/prof/trace.h"
#include "src/rqc/rqc.h"

#if defined(__SANITIZE_THREAD__)
#define QHIP_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define QHIP_TSAN_BUILD 1
#endif
#endif
#ifndef QHIP_TSAN_BUILD
#define QHIP_TSAN_BUILD 0
#endif

namespace qhip::engine {
namespace {

Circuit make_rqc(unsigned rows, unsigned cols, unsigned depth,
                 std::uint64_t seed) {
  rqc::RqcOptions opt;
  opt.rows = rows;
  opt.cols = cols;
  opt.depth = depth;
  opt.seed = seed;
  return rqc::generate_rqc(opt);
}

SimRequest request(const Circuit& c, const char* backend,
                   std::uint64_t seed = 42) {
  SimRequest req;
  req.circuit = c;
  req.backend = backend;
  req.max_fused = 3;
  req.seed = seed;
  req.num_samples = 16;
  return req;
}

TEST(EngineFaults, ErrorCodeNames) {
  EXPECT_STREQ(to_string(SimErrorCode::kOk), "ok");
  EXPECT_STREQ(to_string(SimErrorCode::kRejected), "rejected");
  EXPECT_STREQ(to_string(SimErrorCode::kOutOfMemory), "out-of-memory");
  EXPECT_STREQ(to_string(SimErrorCode::kBackendFault), "backend-fault");
  EXPECT_STREQ(to_string(SimErrorCode::kDeadlineExceeded), "deadline-exceeded");
  EXPECT_STREQ(to_string(SimErrorCode::kInternal), "internal");
}

TEST(EngineFaults, RetryRecoversFromOomAtFirstAllocation) {
  const Circuit c = make_rqc(2, 3, 8, 5);

  // Reference: same request on a fault-free engine.
  SimulationEngine clean;
  const SimResult want = clean.run(request(c, "hip"));
  ASSERT_TRUE(want.ok) << want.error;

  EngineOptions opt;
  opt.fault_spec = "malloc:nth=1";  // first device allocation fails once
  SimulationEngine eng(opt);
  const SimResult r = eng.run(request(c, "hip"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.code, SimErrorCode::kOk);
  EXPECT_EQ(r.attempts, 2u);  // fault, then clean retry
  EXPECT_FALSE(r.fallback_used);
  EXPECT_EQ(r.backend_used, "hip");
  EXPECT_EQ(r.samples, want.samples);  // recovery is bit-identical

  const EngineMetrics m = eng.metrics();
  EXPECT_EQ(m.retries, 1u);
  EXPECT_EQ(m.faults_oom, 1u);
  EXPECT_EQ(m.fallbacks, 0u);
  EXPECT_EQ(m.completed, 1u);
}

TEST(EngineFaults, PersistentFaultExhaustsRetriesWithStructuredCode) {
  EngineOptions opt;
  opt.fault_spec = "memcpy:every=1";  // every stream copy fails, forever
  opt.max_attempts = 3;
  opt.retry_backoff_seconds = 0.0005;
  SimulationEngine eng(opt);
  const SimResult r = eng.run(request(make_rqc(2, 3, 6, 7), "hip"));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, SimErrorCode::kBackendFault);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_NE(r.error.find("injected memcpy fault"), std::string::npos) << r.error;

  const EngineMetrics m = eng.metrics();
  EXPECT_EQ(m.retries, 2u);
  EXPECT_EQ(m.faults_backend, 3u);
  EXPECT_EQ(m.rejected, 1u);
}

TEST(EngineFaults, FallbackBackendServesWhenPrimaryKeepsFailing) {
  const Circuit c = make_rqc(2, 3, 8, 9);

  SimulationEngine clean;
  const SimResult want = clean.run(request(c, "cpu"));
  ASSERT_TRUE(want.ok) << want.error;

  EngineOptions opt;
  opt.fault_spec = "memcpy:every=1";
  opt.max_attempts = 2;
  opt.retry_backoff_seconds = 0.0005;
  opt.fallback_backend = "cpu";  // no virtual device -> immune to the plan
  SimulationEngine eng(opt);
  const SimResult r = eng.run(request(c, "hip"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.fallback_used);
  EXPECT_EQ(r.backend_used, "cpu");
  EXPECT_EQ(r.attempts, 3u);  // 2 on hip + 1 on cpu
  EXPECT_EQ(r.samples, want.samples);  // degraded but bit-identical

  const EngineMetrics m = eng.metrics();
  EXPECT_EQ(m.fallbacks, 1u);
  EXPECT_EQ(m.retries, 1u);
  EXPECT_GE(m.faults_backend, 2u);
  EXPECT_EQ(m.completed, 1u);
}

TEST(EngineFaults, DeadlineCancelsMidRunViaLatencyInjection) {
  EngineOptions opt;
  // Every stream op carries 5 ms of injected latency: the circuit below
  // cannot finish inside the budget, so the cooperative checkpoint in
  // SimulatorHIP::run must fire.
  opt.fault_spec = "latency:ms=5,every=1";
  SimulationEngine eng(opt);
  SimRequest req = request(make_rqc(3, 3, 16, 3), "hip");
  req.timeout_seconds = 0.05;
  const SimResult r = eng.run(req);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, SimErrorCode::kDeadlineExceeded);
  EXPECT_NE(r.error.find("deadline exceeded"), std::string::npos) << r.error;
  EXPECT_EQ(r.attempts, 1u);  // deadline expiry is never retried

  const EngineMetrics m = eng.metrics();
  EXPECT_EQ(m.faults_deadline, 1u);
  EXPECT_EQ(m.retries, 0u);
  EXPECT_EQ(m.fallbacks, 0u);
}

TEST(EngineFaults, OwnerFailurePropagatesToCoalescedWaiters) {
  EngineOptions opt;
  opt.num_workers = 4;
  // Slow, persistently failing primary: the owner's retry ladder holds the
  // flight open long enough for the other three identical requests to
  // coalesce onto it.
  opt.fault_spec = "memcpy:every=1;latency:ms=2,every=1";
  opt.max_attempts = 3;
  opt.retry_backoff_seconds = 0.002;
  SimulationEngine eng(opt);

  const Circuit c = make_rqc(2, 3, 6, 11);
  std::vector<std::future<SimResult>> futs;
  for (int k = 0; k < 4; ++k) futs.push_back(eng.submit(request(c, "hip")));
  for (auto& f : futs) {
    const SimResult r = f.get();
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.code, SimErrorCode::kBackendFault);
  }

  const EngineMetrics m = eng.metrics();
  EXPECT_EQ(m.coalesced_failures, 3u);  // one owner ladder, three waiters
  EXPECT_EQ(m.retries, 2u);             // only the owner retried
  EXPECT_EQ(m.rejected, 4u);
}

TEST(EngineFaults, BadFaultSpecRejectsGracefully) {
  EngineOptions opt;
  opt.fault_spec = "frobnicate:nth=1";
  SimulationEngine eng(opt);
  // cpu ignores the plan entirely; hip must fail to build its device plan.
  const SimResult cpu = eng.run(request(make_rqc(2, 2, 4, 1), "cpu"));
  EXPECT_TRUE(cpu.ok) << cpu.error;
  const SimResult hip = eng.run(request(make_rqc(2, 2, 4, 1), "hip"));
  EXPECT_FALSE(hip.ok);
  EXPECT_NE(hip.error.find("fault spec"), std::string::npos) << hip.error;
}

TEST(EngineFaults, CanonicalSummaryDistinguishesRequests) {
  const Circuit c = make_rqc(2, 2, 6, 13);
  const SimRequest base = request(c, "hip");
  const std::string s0 = canonical_request_summary(base);
  EXPECT_EQ(canonical_request_summary(base), s0);  // deterministic

  SimRequest other = base;
  other.seed += 1;
  EXPECT_NE(canonical_request_summary(other), s0);
  other = base;
  other.backend = "cpu";
  EXPECT_NE(canonical_request_summary(other), s0);
  other = base;
  other.num_samples += 1;
  EXPECT_NE(canonical_request_summary(other), s0);
  other = base;
  other.want_state = true;
  EXPECT_NE(canonical_request_summary(other), s0);
  // A one-ulp nudge in one matrix entry must change the identity — this is
  // exactly the payload an FNV collision could otherwise smuggle through.
  other = base;
  cplx64& entry = other.circuit.gates[0].matrix.data()[0];
  entry = cplx64(std::nextafter(entry.real(),
                                std::numeric_limits<double>::infinity()),
                 entry.imag());
  EXPECT_NE(canonical_request_summary(other), s0);
}

TEST(EngineFaults, LatencyReservoirStaysBounded) {
  EngineOptions opt;
  opt.latency_window = 4;  // tiny window: exercises ring wraparound
  opt.result_cache_capacity = 0;
  SimulationEngine eng(opt);
  const Circuit c = make_rqc(2, 2, 4, 17);
  for (std::uint64_t k = 0; k < 20; ++k) {
    const SimResult r = eng.run(request(c, "cpu", /*seed=*/100 + k));
    ASSERT_TRUE(r.ok) << r.error;
  }
  const EngineMetrics m = eng.metrics();
  EXPECT_EQ(m.completed, 20u);
  EXPECT_GT(m.p50_ms, 0.0);  // percentiles still flow from the window
  EXPECT_GE(m.p95_ms, m.p50_ms);
}

TEST(EngineFaults, SoakMixedFaultsResolveEveryRequest) {
  // Fault-free references for every (circuit, seed) pair used below.
  const Circuit circuits[] = {
      make_rqc(2, 3, 8, 21),  // 6 qubits
      make_rqc(2, 4, 8, 22),  // 8 qubits
      make_rqc(3, 3, 6, 23),  // 9 qubits
  };
  // ThreadSanitizer slows the hip stream path ~50x; a shorter soak keeps the
  // tsan presets usable while still driving every recovery path.
  constexpr std::size_t kRequests = QHIP_TSAN_BUILD ? 100 : 500;
  constexpr std::uint64_t kSeeds = 25;

  SimulationEngine clean;
  std::map<std::pair<std::size_t, std::uint64_t>, std::vector<index_t>> want;
  for (std::size_t ci = 0; ci < 3; ++ci) {
    for (std::uint64_t s = 0; s < kSeeds; ++s) {
      const SimResult r = clean.run(request(circuits[ci], "cpu", 1000 + s));
      ASSERT_TRUE(r.ok) << r.error;
      want[{ci, s}] = r.samples;
    }
  }

  Tracer tracer;
  EngineOptions opt;
  opt.num_workers = 4;
  opt.tracer = &tracer;
  // ~10% of stream/allocation activity misbehaves: periodic allocation OOMs,
  // periodic copy faults, latency jitter. Primes keep the three schedules
  // from aligning.
  opt.fault_spec = "malloc:every=29;memcpy:every=23;latency:ms=1,every=11";
  opt.max_attempts = 3;
  opt.retry_backoff_seconds = 0.0002;
  opt.fallback_backend = "cpu";
  SimulationEngine eng(opt);

  std::vector<std::future<SimResult>> futs;
  std::vector<std::pair<std::size_t, std::uint64_t>> keys;
  futs.reserve(kRequests);
  for (std::size_t k = 0; k < kRequests; ++k) {
    const std::size_t ci = k % 3;
    const std::uint64_t seed = k % kSeeds;
    SimRequest req = request(circuits[ci], "hip", 1000 + seed);
    if (k % 37 == 0) req.timeout_seconds = 0.001;  // a few doomed deadlines
    keys.emplace_back(ci, seed);
    futs.push_back(eng.submit(req));
  }

  std::size_t ok = 0, failed = 0;
  for (std::size_t k = 0; k < kRequests; ++k) {
    const SimResult r = futs[k].get();  // every request must resolve
    if (r.ok) {
      ++ok;
      EXPECT_EQ(r.code, SimErrorCode::kOk);
      // Success means bit-identity with the fault-free reference, whether it
      // came fresh, from a retry, the cache, or the cpu fallback.
      EXPECT_EQ(r.samples, want[keys[k]]) << "request " << k;
    } else {
      ++failed;
      EXPECT_NE(r.code, SimErrorCode::kOk);
      EXPECT_FALSE(r.error.empty());
    }
  }
  EXPECT_EQ(ok + failed, kRequests);
  EXPECT_GT(ok, kRequests / 2);  // recovery must actually recover

  // The recovery machinery must have been exercised and be visible in the
  // metrics and in the exported trace counters.
  const EngineMetrics m = eng.metrics();
  EXPECT_EQ(m.submitted, kRequests);
  EXPECT_EQ(m.completed + m.rejected, kRequests);
  EXPECT_GT(m.retries + m.fallbacks, 0u);
  EXPECT_GT(m.faults_oom + m.faults_backend + m.faults_deadline, 0u);

  eng.export_metrics();
  const auto counters = tracer.counters();
  for (const char* key :
       {"engine/retries", "engine/fallbacks", "engine/coalesced_failures",
        "engine/faults_oom", "engine/faults_backend",
        "engine/faults_deadline"}) {
    EXPECT_TRUE(counters.count(key)) << key;
  }
  const std::string json = tracer.to_perfetto_json();
  EXPECT_NE(json.find("engine/faults_backend"), std::string::npos);
}

}  // namespace
}  // namespace qhip::engine
