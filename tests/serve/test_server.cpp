// End-to-end tests for the qhip_serve TCP front-end (docs/SERVING.md):
// socket results must be EXPECT_EQ-identical to direct engine results for
// all three request kinds, a drain must answer every admitted request
// exactly once across >= 32 connections, admission must shed (never buffer
// unboundedly), and a malformed line must get a structured error without
// killing the connection.
#include "src/serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/core/gates.h"
#include "src/engine/engine.h"
#include "src/noise/channels.h"
#include "src/obs/observable.h"
#include "src/prof/trace.h"
#include "src/serve/client.h"
#include "src/serve/wire.h"

namespace qhip::serve {
namespace {

using engine::RequestKind;
using engine::SimRequest;
using engine::SimResult;

Circuit layered_circuit(unsigned qubits, unsigned depth) {
  Circuit c;
  c.num_qubits = qubits;
  unsigned t = 0;
  for (qubit_t q = 0; q < qubits; ++q) c.gates.push_back(gates::h(t, q));
  for (unsigned d = 0; d < depth; ++d) {
    ++t;
    for (qubit_t q = 0; q < qubits; ++q) {
      c.gates.push_back(gates::rz(t, q, 0.1 * static_cast<double>(d + 1)));
    }
    ++t;
    for (qubit_t q = 0; q + 1 < qubits; q += 2) {
      c.gates.push_back(gates::cnot(t, q, q + 1));
    }
  }
  return c;
}

SimRequest base_request(const Circuit& c, std::uint64_t seed) {
  SimRequest req;
  req.circuit = c;
  req.backend = "cpu";
  req.seed = seed;
  req.bypass_result_cache = true;  // force both legs through real simulation
  return req;
}

// --- bit identity: socket == direct for every request kind ------------------

TEST(ServeServer, CircuitResultsBitIdenticalToDirect) {
  engine::EngineOptions eopt;
  eopt.num_workers = 2;
  engine::SimulationEngine eng(eopt);
  Server server(eng);
  Client cl("127.0.0.1", server.port());

  SimRequest req = base_request(layered_circuit(8, 3), 42);
  req.kind = RequestKind::kCircuit;
  req.num_samples = 64;
  req.amplitude_indices = {0, 1, 255};
  req.want_state = true;

  const SimResult direct = eng.run(req);
  ASSERT_TRUE(direct.ok) << direct.error;
  const SimResult socket = cl.call(req, "c1");
  ASSERT_TRUE(socket.ok) << socket.error;

  EXPECT_EQ(socket.samples, direct.samples);
  EXPECT_EQ(socket.measurements, direct.measurements);
  EXPECT_EQ(socket.amplitudes, direct.amplitudes);
  EXPECT_EQ(socket.state, direct.state);
  EXPECT_EQ(socket.backend_used, direct.backend_used);
  server.shutdown();
}

TEST(ServeServer, ExpectationResultsBitIdenticalToDirect) {
  engine::SimulationEngine eng;
  Server server(eng);
  Client cl("127.0.0.1", server.port());

  SimRequest req = base_request(layered_circuit(6, 2), 7);
  req.kind = RequestKind::kExpectation;
  req.observable.strings.push_back(obs::parse_pauli_string("1.5 * Z0 Z1"));
  req.observable.strings.push_back(obs::parse_pauli_string("0.5 * X2"));

  const SimResult direct = eng.run(req);
  ASSERT_TRUE(direct.ok) << direct.error;
  const SimResult socket = cl.call(req);
  ASSERT_TRUE(socket.ok) << socket.error;
  EXPECT_EQ(socket.expectation, direct.expectation);
  server.shutdown();
}

TEST(ServeServer, TrajectoryResultsBitIdenticalToDirect) {
  engine::SimulationEngine eng;
  Server server(eng);
  Client cl("127.0.0.1", server.port());

  SimRequest req = base_request(layered_circuit(5, 2), 11);
  req.kind = RequestKind::kTrajectory;
  req.precision = Precision::kDouble;
  req.noise = noise::NoiseModel{noise::depolarizing(0.02)};
  req.num_trajectories = 6;

  const SimResult direct = eng.run(req);
  ASSERT_TRUE(direct.ok) << direct.error;
  const SimResult socket = cl.call(req);
  ASSERT_TRUE(socket.ok) << socket.error;
  EXPECT_EQ(socket.distribution, direct.distribution);
  EXPECT_EQ(socket.trajectories_run, direct.trajectories_run);
  server.shutdown();
}

// --- graceful drain across >= 32 connections --------------------------------

// Every request fully sent before shutdown() must be answered exactly once:
// in-flight work finishes ok, queued work fails with a structured error,
// nothing is dropped. This is the CI soak's invariant in miniature.
TEST(ServeServer, DrainAnswersEveryRequestAcross32Connections) {
  constexpr unsigned kConns = 32;
  constexpr unsigned kPerConn = 3;

  engine::EngineOptions eopt;
  eopt.num_workers = 2;  // keep a deep queue so the drain catches it
  engine::SimulationEngine eng(eopt);
  Server server(eng);

  const Circuit circuit = layered_circuit(12, 4);
  std::vector<Client> clients;
  clients.reserve(kConns);
  for (unsigned i = 0; i < kConns; ++i) {
    clients.emplace_back("127.0.0.1", server.port());
  }
  for (unsigned i = 0; i < kConns; ++i) {
    std::string burst;
    for (unsigned j = 0; j < kPerConn; ++j) {
      SimRequest req = base_request(circuit, 1000 + i * kPerConn + j);
      req.num_samples = 16;
      if (!burst.empty()) burst.push_back('\n');
      burst += encode_request(req, "c" + std::to_string(i) + "-" + std::to_string(j));
    }
    clients[i].send_line(burst);  // all kPerConn requests in one segment
  }

  // Wait until every connection is accepted and every request admitted —
  // under sanitizers the accept loop can lag the bursts, and a connection
  // still in the listen backlog when the listener closes is reset, which is
  // outside the drain contract (it covers accepted connections).
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const Server::Stats st = server.stats();
    if (st.connections == kConns && st.requests == kConns * kPerConn) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  server.shutdown();  // returns only after every response is flushed

  std::atomic<std::size_t> answered{0}, ok{0}, rejected{0}, bad{0};
  std::vector<std::thread> readers;
  for (unsigned i = 0; i < kConns; ++i) {
    readers.emplace_back([&, i] {
      std::string line;
      std::size_t got = 0;
      try {
        while (clients[i].recv_line(&line)) {
          ++got;
          try {
            const SimResult res = decode_result(line);
            if (res.ok) {
              ++ok;
            } else if (!res.error.empty()) {
              ++rejected;  // structured: code + message, not a dropped byte
            } else {
              ++bad;
            }
          } catch (const Error&) {
            ++bad;
          }
        }
      } catch (const Error& e) {
        // A reset instead of a clean FIN would lose responses; count what
        // arrived and let the totals assert below.
        ADD_FAILURE() << "connection " << i << " torn: " << e.what();
      }
      answered += got;
      EXPECT_EQ(got, kPerConn) << "connection " << i << " lost responses";
    });
  }
  for (auto& th : readers) th.join();

  EXPECT_EQ(answered.load(), kConns * kPerConn);
  EXPECT_EQ(ok.load() + rejected.load(), kConns * kPerConn);
  EXPECT_EQ(bad.load(), 0u);

  const Server::Stats st = server.stats();
  EXPECT_EQ(st.connections, kConns);
  EXPECT_EQ(st.requests, kConns * kPerConn);
  EXPECT_EQ(st.responses, kConns * kPerConn);
}

// --- admission control ------------------------------------------------------

TEST(ServeServer, ShedsPipelinedRequestsBeyondInflightCap) {
  engine::EngineOptions eopt;
  eopt.num_workers = 1;  // serialize so the cap is actually hit
  engine::SimulationEngine eng(eopt);
  ServerOptions sopt;
  sopt.max_inflight_per_conn = 2;
  Server server(eng, sopt);
  Client cl("127.0.0.1", server.port());

  const Circuit circuit = layered_circuit(16, 4);  // ms-scale per request
  constexpr unsigned kBurst = 8;
  std::string burst;
  for (unsigned i = 0; i < kBurst; ++i) {
    SimRequest req = base_request(circuit, 100 + i);
    req.num_samples = 8;
    if (!burst.empty()) burst.push_back('\n');
    burst += encode_request(req, "b" + std::to_string(i));
  }
  cl.send_line(burst);

  std::size_t shed = 0, answered = 0;
  std::string line;
  for (unsigned i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(cl.recv_line(&line)) << "response " << i << " missing";
    ++answered;
    const SimResult res = decode_result(line);
    if (!res.ok && line.find("\"code\":\"overloaded\"") != std::string::npos) {
      ++shed;
    }
  }
  EXPECT_EQ(answered, kBurst);             // shed requests are answered too
  EXPECT_GE(shed, kBurst - sopt.max_inflight_per_conn - 1);
  EXPECT_GE(server.stats().shed, shed);
  server.shutdown();
}

// --- malformed lines --------------------------------------------------------

TEST(ServeServer, MalformedLineGetsStructuredErrorAndConnectionSurvives) {
  engine::SimulationEngine eng;
  Server server(eng);
  Client cl("127.0.0.1", server.port());

  cl.send_line("this is not json");
  std::string line;
  ASSERT_TRUE(cl.recv_line(&line));
  const SimResult err = decode_result(line);
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(line.find("malformed-input") != std::string::npos, true) << line;

  // Same connection keeps serving.
  EXPECT_TRUE(cl.ping());
  SimRequest req = base_request(layered_circuit(4, 1), 3);
  req.num_samples = 4;
  EXPECT_TRUE(cl.call(req).ok);
  EXPECT_EQ(server.stats().malformed, 1u);
  server.shutdown();
}

// --- metrics ----------------------------------------------------------------

TEST(ServeServer, MetricsOverJsonAndRawHttp) {
  engine::SimulationEngine eng;
  Server server(eng);

  Client cl("127.0.0.1", server.port());
  SimRequest req = base_request(layered_circuit(4, 1), 5);
  req.num_samples = 4;
  ASSERT_TRUE(cl.call(req).ok);

  const std::string prom = cl.metrics();
  EXPECT_NE(prom.find("qhip_engine_requests_completed"), std::string::npos);

  // One-shot plaintext scrape on a fresh connection.
  Client scraper("127.0.0.1", server.port());
  scraper.send_line("GET /metrics HTTP/1.0\r");
  std::string line, body;
  ASSERT_TRUE(scraper.recv_line(&line));
  EXPECT_NE(line.find("200"), std::string::npos) << line;
  while (scraper.recv_line(&line)) body += line + "\n";
  EXPECT_NE(body.find("qhip_engine_requests_completed"), std::string::npos);
  server.shutdown();
}

// --- tracing ----------------------------------------------------------------

TEST(ServeServer, ServerSpansJoinRequestTrace) {
  Tracer tracer;
  engine::EngineOptions eopt;
  eopt.tracer = &tracer;
  engine::SimulationEngine eng(eopt);
  ServerOptions sopt;
  sopt.tracer = &tracer;
  Server server(eng, sopt);
  Client cl("127.0.0.1", server.port());

  SimRequest req = base_request(layered_circuit(4, 1), 9);
  req.num_samples = 4;
  ASSERT_TRUE(cl.call(req).ok);
  server.shutdown();

  bool serve_span = false;
  for (const auto& ev : tracer.events()) {
    if (ev.name == "serve" && ev.kind == TraceKind::kSpan && ev.corr != 0) {
      serve_span = true;
    }
  }
  EXPECT_TRUE(serve_span);
}

// --- shutdown ---------------------------------------------------------------

TEST(ServeServer, ShutdownIsIdempotentAndRefusesNewConnections) {
  engine::SimulationEngine eng;
  Server server(eng);
  const unsigned short port = server.port();
  server.shutdown();
  server.shutdown();  // second call is a no-op

  // The listener is gone: a new connection attempt must fail.
  EXPECT_THROW(Client("127.0.0.1", port), Error);
}

}  // namespace
}  // namespace qhip::serve
