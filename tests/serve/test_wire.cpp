// Wire protocol round trips (docs/SERVING.md): the serve tests' bit-identity
// guarantee starts here — every double survives as "%.17g", every uint64 as
// its exact token, every hostile string through the JSON escapes. Malformed
// lines must throw CodedError(kMalformedInput), never mis-parse.
#include "src/serve/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/base/error.h"
#include "src/core/gates.h"
#include "src/io/circuit_io.h"
#include "src/noise/channels.h"
#include "src/obs/observable.h"
#include "src/serve/json.h"

namespace qhip::serve {
namespace {

using engine::RequestKind;
using engine::SimErrorCode;
using engine::SimRequest;
using engine::SimResult;

Circuit small_circuit() {
  Circuit c;
  c.num_qubits = 3;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::cnot(1, 0, 1));
  c.gates.push_back(gates::rz(2, 2, 0.12345678901234567));
  return c;
}

// --- JSON layer -------------------------------------------------------------

TEST(ServeJson, ParsesAndDumpsBasics) {
  const JsonPtr v = json_parse(
      R"({"a":1,"b":-2.5,"c":"x","d":[true,false,null],"e":{"k":"v"}})");
  ASSERT_EQ(v->type, JsonType::kObject);
  EXPECT_EQ(v->find("a")->as_uint("a"), 1u);
  EXPECT_EQ(v->find("b")->as_double("b"), -2.5);
  EXPECT_EQ(v->find("c")->as_string("c"), "x");
  EXPECT_EQ(v->find("d")->as_array("d").size(), 3u);
  EXPECT_EQ(v->find("e")->find("k")->as_string("k"), "v");
  EXPECT_EQ(v->find("missing"), nullptr);
  // The dump re-parses to the same structure and never contains the wire's
  // message delimiter.
  const std::string dumped = v->dump();
  EXPECT_EQ(dumped.find('\n'), std::string::npos);
  EXPECT_EQ(json_parse(dumped)->dump(), dumped);
}

TEST(ServeJson, HostileStringsRoundTrip) {
  const std::string hostile[] = {
      "quote \" backslash \\ slash /",
      "newline \n tab \t cr \r",
      std::string("nul \0 byte", 10),
      "unicode \xE2\x9C\x93 check",
      "controls \x01\x1f",
  };
  for (const std::string& s : hostile) {
    JsonPtr o = JsonValue::make_object();
    o->set("s", JsonValue::make_string(s));
    const std::string line = o->dump();
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;
    EXPECT_EQ(json_parse(line)->find("s")->as_string("s"), s);
  }
}

TEST(ServeJson, Uint64TokensAreExact) {
  // 2^53 + 1 is not representable as a double; the raw token must carry it.
  const std::uint64_t big = 9007199254740993ull;
  JsonPtr o = JsonValue::make_object();
  o->set("seed", JsonValue::make_uint(big));
  o->set("max", JsonValue::make_uint(std::numeric_limits<std::uint64_t>::max()));
  const JsonPtr back = json_parse(o->dump());
  EXPECT_EQ(back->find("seed")->as_uint("seed"), big);
  EXPECT_EQ(back->find("max")->as_uint("max"),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ServeJson, DoublesAreBitExact) {
  const double values[] = {0.1,
                           1.0 / 3.0,
                           -1e-308,
                           1.7976931348623157e308,
                           0.12345678901234567,
                           -0.0};
  for (double d : values) {
    const JsonPtr v = json_parse(json_double(d));
    EXPECT_EQ(v->as_double("d"), d) << json_double(d);
  }
}

TEST(ServeJson, MalformedInputThrowsCoded) {
  const char* bad[] = {
      "",             // empty
      "{",            // truncated object
      "[1,2",         // truncated array
      "{\"a\":}",     // missing value
      "{\"a\":1,}",   // trailing comma
      "{'a':1}",      // wrong quotes
      "{\"a\":1} x",  // trailing garbage
      "\"\\q\"",      // unknown escape
      "01",           // leading zero
      "nul",          // truncated keyword
      "\"unterminated",
  };
  for (const char* s : bad) {
    try {
      json_parse(s);
      FAIL() << "expected throw for: " << s;
    } catch (const CodedError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kMalformedInput) << s;
    }
  }
}

TEST(ServeJson, TypeMismatchThrowsCoded) {
  const JsonPtr v = json_parse(R"({"s":"x","n":1})");
  EXPECT_THROW(v->find("s")->as_double("s"), CodedError);
  EXPECT_THROW(v->find("s")->as_uint("s"), CodedError);
  EXPECT_THROW(v->find("n")->as_string("n"), CodedError);
  EXPECT_THROW(v->find("n")->as_array("n"), CodedError);
  EXPECT_THROW(v->find("n")->as_bool("n"), CodedError);
  // Negative and fractional numbers are not uints.
  EXPECT_THROW(json_parse("-1")->as_uint("v"), CodedError);
  EXPECT_THROW(json_parse("1.5")->as_uint("v"), CodedError);
}

// --- request round trips ----------------------------------------------------

void expect_same_circuit(const Circuit& a, const Circuit& b) {
  // The qhip text format is the canonical wire form; equality of the
  // serialization is equality of every gate, matrix included.
  EXPECT_EQ(write_circuit_string(a), write_circuit_string(b));
}

TEST(ServeWire, CircuitRequestRoundTrip) {
  SimRequest req;
  req.circuit = small_circuit();
  req.kind = RequestKind::kCircuit;
  req.backend = "hip:2";
  req.precision = Precision::kSingle;
  req.fusion.max_fused_qubits = 4;
  req.fusion.window_moments = 7;
  req.seed = 9007199254740993ull;  // > 2^53: must survive exactly
  req.num_samples = 128;
  req.amplitude_indices = {0, 5, 7};
  req.want_state = true;
  req.timeout_seconds = 1.5;
  req.bypass_result_cache = true;

  const WireRequest back = decode_request(encode_request(req, "tag-1"));
  EXPECT_EQ(back.op, "simulate");
  EXPECT_EQ(back.id, "tag-1");
  const SimRequest& q = back.sim;
  expect_same_circuit(q.circuit, req.circuit);
  EXPECT_EQ(q.kind, RequestKind::kCircuit);
  EXPECT_EQ(q.backend, "hip:2");
  EXPECT_EQ(q.precision, Precision::kSingle);
  EXPECT_EQ(q.fusion.max_fused_qubits, 4u);
  EXPECT_EQ(q.fusion.window_moments, 7u);
  EXPECT_EQ(q.seed, 9007199254740993ull);
  EXPECT_EQ(q.num_samples, 128u);
  EXPECT_EQ(q.amplitude_indices, req.amplitude_indices);
  EXPECT_TRUE(q.want_state);
  EXPECT_EQ(q.timeout_seconds, 1.5);
  EXPECT_TRUE(q.bypass_result_cache);
}

TEST(ServeWire, ExpectationRequestRoundTrip) {
  SimRequest req;
  req.circuit = small_circuit();
  req.kind = RequestKind::kExpectation;
  req.observable.strings.push_back(obs::parse_pauli_string("1.5 * Z0 Z1"));
  req.observable.strings.push_back(obs::parse_pauli_string("-0.25 * X2"));
  req.observable.strings.push_back(obs::parse_pauli_string("Y0"));

  const SimRequest q = decode_request(encode_request(req)).sim;
  EXPECT_EQ(q.kind, RequestKind::kExpectation);
  ASSERT_EQ(q.observable.strings.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& a = req.observable.strings[i];
    const auto& b = q.observable.strings[i];
    EXPECT_EQ(a.coefficient, b.coefficient) << i;
    ASSERT_EQ(a.terms.size(), b.terms.size()) << i;
    for (std::size_t t = 0; t < a.terms.size(); ++t) {
      EXPECT_EQ(a.terms[t].op, b.terms[t].op);
      EXPECT_EQ(a.terms[t].qubit, b.terms[t].qubit);
    }
  }
}

TEST(ServeWire, TrajectoryRequestRoundTripBitExactKraus) {
  SimRequest req;
  req.circuit = small_circuit();
  req.kind = RequestKind::kTrajectory;
  req.precision = Precision::kDouble;
  req.noise = noise::NoiseModel{noise::amplitude_damping(0.037)};
  req.num_trajectories = 25;
  req.trajectory_tolerance = 0.01;

  const SimRequest q = decode_request(encode_request(req)).sim;
  EXPECT_EQ(q.kind, RequestKind::kTrajectory);
  EXPECT_EQ(q.num_trajectories, 25u);
  EXPECT_EQ(q.trajectory_tolerance, 0.01);
  EXPECT_EQ(q.noise.channel.name, req.noise.channel.name);
  ASSERT_EQ(q.noise.channel.ops.size(), req.noise.channel.ops.size());
  for (std::size_t i = 0; i < q.noise.channel.ops.size(); ++i) {
    // Bit-exact: the Kraus operators cross the wire as %.17g doubles.
    EXPECT_EQ(q.noise.channel.ops[i].data(), req.noise.channel.ops[i].data());
  }
}

TEST(ServeWire, NamedChannelSugarDecodes) {
  const std::string line =
      R"({"op":"simulate","kind":"trajectory","circuit":"2\n0 h 0\n",)"
      R"("noise":{"channel":"depolarizing","rate":0.01},"num_trajectories":4})";
  const SimRequest q = decode_request(line).sim;
  const noise::KrausChannel ref = noise::depolarizing(0.01);
  EXPECT_EQ(q.noise.channel.name, ref.name);
  ASSERT_EQ(q.noise.channel.ops.size(), ref.ops.size());
  for (std::size_t i = 0; i < ref.ops.size(); ++i) {
    EXPECT_EQ(q.noise.channel.ops[i].data(), ref.ops[i].data());
  }
}

TEST(ServeWire, QasmFormatDecodes) {
  const std::string line =
      R"({"op":"simulate","format":"qasm","circuit":)"
      R"("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n"})";
  const SimRequest q = decode_request(line).sim;
  EXPECT_EQ(q.circuit.num_qubits, 2u);
  ASSERT_EQ(q.circuit.size(), 2u);
  EXPECT_EQ(q.circuit.gates[0].name, "h");
  EXPECT_EQ(q.circuit.gates[1].name, "cnot");
}

TEST(ServeWire, PingAndMetricsOpsDecode) {
  EXPECT_EQ(decode_request(R"({"op":"ping"})").op, "ping");
  EXPECT_EQ(decode_request(R"({"op":"metrics","id":"m1"})").id, "m1");
}

TEST(ServeWire, MalformedRequestsThrowCoded) {
  const char* bad[] = {
      "not json at all",
      "[1,2,3]",                                     // not an object
      R"({"op":"teleport"})",                        // unknown op
      R"({"op":"simulate"})",                        // missing circuit
      R"({"op":"simulate","circuit":"x\n"})",        // bad circuit header
      R"({"op":"simulate","circuit":"1\n","kind":"weird"})",
      R"({"op":"simulate","circuit":"1\n","format":"qasm3"})",
      R"({"op":"simulate","circuit":"1\n","precision":"half"})",
      R"({"op":"simulate","circuit":"1\n","seed":"one"})",
      R"({"op":"simulate","circuit":"1\n","observable":["Q0"]})",
      R"({"op":"simulate","circuit":"1\n","noise":{"channel":"cosmic","rate":1}})",
      R"({"op":"simulate","circuit":"1\n","noise":{"channel":"bitflip"}})",
      R"({"op":"simulate","circuit":"1\n","noise":{}})",
  };
  for (const char* s : bad) {
    try {
      decode_request(s);
      FAIL() << "expected throw for: " << s;
    } catch (const CodedError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kMalformedInput) << s;
    } catch (const Error&) {
      // Circuit/observable parse errors surface as plain qhip::Error from
      // the loaders only if unwrapped; the wire must wrap them. Fail loud.
      FAIL() << "expected CodedError(kMalformedInput) for: " << s;
    }
  }
}

// --- result round trips -----------------------------------------------------

TEST(ServeWire, ResultRoundTripIsExact) {
  SimResult res;
  res.ok = true;
  res.code = SimErrorCode::kOk;
  res.request_id = 77;
  res.measurements = {1, 0, 3};
  res.samples = {5, 2, 9007199254740993ull};
  res.amplitudes = {{0.1, -0.2}, {1.0 / 3.0, 0.0}};
  res.state = {{0.7071067811865476, 0}, {0, -0.7071067811865476}};
  res.counters["trajectories"] = 12;
  res.expectation = {0.25, -0.125};
  res.expectation_stderr = 0.001953125;
  res.trajectories_run = 12;
  res.distribution = {0.5, 0.25, 0.125, 0.125};
  res.fused_cache_hit = true;
  res.result_cache_hit = false;
  res.backend_used = "hip:2";
  res.attempts = 2;
  res.fallback_used = true;
  res.fuse_seconds = 0.0001220703125;
  res.queue_seconds = 0.5;
  res.run_seconds = 1.0 / 3.0;
  res.sample_seconds = 1e-7;
  res.total_seconds = 0.8334334333333333;

  std::string id;
  const SimResult back = decode_result(encode_result(res, "req-9"), &id);
  EXPECT_EQ(id, "req-9");
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.code, SimErrorCode::kOk);
  EXPECT_EQ(back.request_id, 77u);
  EXPECT_EQ(back.measurements, res.measurements);
  EXPECT_EQ(back.samples, res.samples);
  EXPECT_EQ(back.amplitudes, res.amplitudes);
  EXPECT_EQ(back.state, res.state);
  EXPECT_EQ(back.counters, res.counters);
  EXPECT_EQ(back.expectation, res.expectation);
  EXPECT_EQ(back.expectation_stderr, res.expectation_stderr);
  EXPECT_EQ(back.trajectories_run, res.trajectories_run);
  EXPECT_EQ(back.distribution, res.distribution);
  EXPECT_TRUE(back.fused_cache_hit);
  EXPECT_FALSE(back.result_cache_hit);
  EXPECT_EQ(back.backend_used, "hip:2");
  EXPECT_EQ(back.attempts, 2u);
  EXPECT_TRUE(back.fallback_used);
  EXPECT_EQ(back.fuse_seconds, res.fuse_seconds);
  EXPECT_EQ(back.queue_seconds, res.queue_seconds);
  EXPECT_EQ(back.run_seconds, res.run_seconds);
  EXPECT_EQ(back.sample_seconds, res.sample_seconds);
  EXPECT_EQ(back.total_seconds, res.total_seconds);
}

TEST(ServeWire, ErrorAndPongAndMetricsDecode) {
  std::string id;
  const SimResult err =
      decode_result(encode_error("overloaded", "too many in flight", "x"), &id);
  EXPECT_EQ(id, "x");
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.code, SimErrorCode::kRejected);  // wire shed code maps down
  EXPECT_EQ(err.error, "too many in flight");

  const SimResult pong = decode_result(encode_pong());
  EXPECT_TRUE(pong.ok);

  std::string text;
  const SimResult met = decode_result(
      encode_metrics("qhip_engine_requests_completed 4\n"), nullptr, &text);
  EXPECT_TRUE(met.ok);
  EXPECT_EQ(text, "qhip_engine_requests_completed 4\n");
}

TEST(ServeWire, HostileIdRoundTrips) {
  const std::string hostile = "id \"quotes\" \\slashes\\ and\nnewline";
  std::string id;
  decode_result(encode_error("rejected", "e", hostile), &id);
  EXPECT_EQ(id, hostile);
}

}  // namespace
}  // namespace qhip::serve
