// Multi-GCD backend correctness: the distributed simulator must agree with
// the single-device reference for any circuit, including gates on global
// (distributed) qubits, across 2 and 4 GCDs and both precisions.
#include "src/hipsim/multi_gcd.h"

#include <gtest/gtest.h>

#include <numbers>
#include <set>

#include "src/base/rng.h"
#include "src/core/gates.h"
#include "src/fusion/fuser.h"
#include "src/rqc/rqc.h"
#include "src/simulator/reference.h"

namespace qhip::hipsim {
namespace {

Circuit random_circuit(unsigned n, unsigned depth, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Circuit c;
  c.num_qubits = n;
  for (unsigned t = 0; t < depth; ++t) {
    std::vector<bool> used(n, false);
    for (unsigned q = 0; q < n; ++q) {
      if (used[q]) continue;
      const double r = rng.uniform();
      if (r < 0.35 && q + 1 < n && !used[q + 1]) {
        c.gates.push_back(gates::fs(t, q, q + 1, rng.uniform() * 2, rng.uniform()));
        used[q] = used[q + 1] = true;
      } else if (r < 0.7) {
        c.gates.push_back(gates::rxy(t, q, rng.uniform() * 6, rng.uniform() * 3));
        used[q] = true;
      }
    }
  }
  return c;
}

template <typename T>
class MultiGcdTyped : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(MultiGcdTyped, Precisions);

TYPED_TEST(MultiGcdTyped, ZeroStateAndNorm) {
  MultiGcdSimulator<TypeParam> sim(8, 2);
  EXPECT_NEAR(sim.norm2(), 1.0, 1e-6);
  const StateVector<TypeParam> h = sim.to_host();
  EXPECT_EQ(h[0], (cplx<TypeParam>{1}));
  for (index_t i = 1; i < h.size(); ++i) EXPECT_EQ(h[i], (cplx<TypeParam>{}));
}

TYPED_TEST(MultiGcdTyped, LocalGateMatchesReference) {
  MultiGcdSimulator<TypeParam> sim(8, 2);
  StateVector<TypeParam> ref(8);
  const Gate g = gates::h(0, 3);  // local on every GCD
  sim.apply_gate(g);
  reference_apply_gate(g, ref);
  EXPECT_LT(statespace::max_abs_diff(sim.to_host(), ref), state_tol<TypeParam>());
  EXPECT_EQ(sim.stats().slot_swaps, 0u);
}

TYPED_TEST(MultiGcdTyped, GlobalGateTriggersSwapAndMatches) {
  const unsigned n = 8;
  MultiGcdSimulator<TypeParam> sim(n, 2);
  StateVector<TypeParam> ref(n);
  // Qubit 7 is the global (distributed) qubit with 2 GCDs.
  const Gate h7 = gates::h(0, n - 1);
  sim.apply_gate(h7);
  reference_apply_gate(h7, ref);
  EXPECT_LT(statespace::max_abs_diff(sim.to_host(), ref), state_tol<TypeParam>());
  EXPECT_GE(sim.stats().slot_swaps, 1u);
  EXPECT_GT(sim.stats().peer_bytes, 0u);
}

TYPED_TEST(MultiGcdTyped, GhzAcrossTheSplit) {
  const unsigned n = 9;
  MultiGcdSimulator<TypeParam> sim(n, 4);  // 2 global qubits
  sim.apply_gate(gates::h(0, 0));
  for (unsigned q = 1; q < n; ++q) sim.apply_gate(gates::cnot(q, q - 1, q));
  const StateVector<TypeParam> h = sim.to_host();
  const double r = 1 / std::numbers::sqrt2;
  EXPECT_NEAR(h[0].real(), r, 1e-5);
  EXPECT_NEAR(h[h.size() - 1].real(), r, 1e-5);
  EXPECT_NEAR(statespace::norm2(h), 1.0, 1e-5);
}

TYPED_TEST(MultiGcdTyped, RandomCircuitsMatchReference) {
  for (unsigned gcds : {2u, 4u}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const unsigned n = 8;
      const Circuit c = random_circuit(n, 8, seed);
      MultiGcdSimulator<TypeParam> sim(n, gcds);
      sim.run(c);
      StateVector<TypeParam> ref(n);
      reference_run(c, ref);
      EXPECT_LT(statespace::max_abs_diff(sim.to_host(), ref),
                4 * state_tol<TypeParam>())
          << gcds << " gcds, seed " << seed;
    }
  }
}

TYPED_TEST(MultiGcdTyped, FusedRqcMatchesSingleDevice) {
  const unsigned n = 10;
  rqc::RqcOptions opt;
  opt.rows = 2;
  opt.cols = 5;
  opt.depth = 8;
  const Circuit fused = fuse_circuit(rqc::generate_rqc(opt), {4}).circuit;

  MultiGcdSimulator<TypeParam> multi(n, 2);
  multi.run(fused);

  vgpu::Device dev{vgpu::mi250x_gcd()};
  SimulatorHIP<TypeParam> single(dev);
  DeviceStateVector<TypeParam> ds(dev, n);
  single.state_space().set_zero_state(ds);
  single.run(fused, ds);

  EXPECT_LT(statespace::max_abs_diff(multi.to_host(), ds.to_host()),
            4 * state_tol<TypeParam>());
}

TYPED_TEST(MultiGcdTyped, SamplingMatchesDistribution) {
  // Bell pair across the GCD boundary: samples only 0...0 and 1...1.
  const unsigned n = 7;
  MultiGcdSimulator<TypeParam> sim(n, 2);
  sim.apply_gate(gates::h(0, 0));
  sim.apply_gate(gates::cnot(1, 0, n - 1));
  const auto samples = sim.sample(400, 9);
  ASSERT_EQ(samples.size(), 400u);
  const index_t both = 1 | (index_t{1} << (n - 1));
  std::size_t ones = 0;
  for (index_t s : samples) {
    EXPECT_TRUE(s == 0 || s == both) << s;
    ones += s == both ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(ones) / 400.0, 0.5, 0.15);
}

TYPED_TEST(MultiGcdTyped, MeasureCollapsesGlobalQubit) {
  const unsigned n = 7;
  MultiGcdSimulator<TypeParam> sim(n, 2);
  sim.apply_gate(gates::h(0, 0));
  sim.apply_gate(gates::cnot(1, 0, n - 1));  // entangle across the split
  const index_t outcome = sim.measure({n - 1}, 5);
  ASSERT_LE(outcome, 1u);
  const StateVector<TypeParam> h = sim.to_host();
  EXPECT_NEAR(statespace::norm2(h), 1.0, 1e-5);
  // Qubit 0 must have collapsed to the same value.
  EXPECT_NEAR(statespace::probability(h, {0, n - 1},
                                      outcome | (outcome << 1)),
              1.0, 1e-5);
}

TYPED_TEST(MultiGcdTyped, LayoutRestoredSemanticsToHost) {
  // After many swaps, to_host() must still give logical ordering: apply X
  // to each qubit in turn and verify the basis index.
  const unsigned n = 7;
  MultiGcdSimulator<TypeParam> sim(n, 2);
  for (qubit_t q = 0; q < n; ++q) {
    sim.apply_gate(gates::x(q, q));
    const StateVector<TypeParam> h = sim.to_host();
    const index_t want = low_mask(q + 1);
    EXPECT_NEAR(std::abs(h[want]), 1.0, 1e-5) << q;
  }
}

TYPED_TEST(MultiGcdTyped, SampleAfterCollapseStaysConsistent) {
  // Regression: measure() collapses the state, leaving the unchosen GCD
  // with zero mass. sample()'s rounding tail used to draw from the *last*
  // GCD unconditionally, so post-collapse samples could report outcomes
  // with zero probability.
  const unsigned n = 7;
  MultiGcdSimulator<TypeParam> sim(n, 2);
  sim.apply_gate(gates::h(0, 0));
  sim.apply_gate(gates::cnot(1, 0, n - 1));
  const index_t outcome = sim.measure({n - 1}, 5);
  const index_t want = outcome | (outcome << (n - 1));
  const auto samples = sim.sample(64, 11);
  ASSERT_EQ(samples.size(), 64u);
  for (const index_t s : samples) EXPECT_EQ(s, want);
}

TYPED_TEST(MultiGcdTyped, SampleTailAvoidsZeroMassGcdAndAdvancesSeed) {
  // Drive the rounding tail directly through resolve_sorted_positions:
  // positions >= 1.0 fall past every cumulative boundary. With qubit n-1
  // left in |0>, GCD 1 holds zero mass, so tail draws must come from GCD 0
  // — and must not all be copies of one draw (the old code reused a frozen
  // seed ^ 0x777 for every tail sample).
  const unsigned n = 7;
  MultiGcdSimulator<TypeParam> sim(n, 2);
  for (qubit_t q = 0; q + 1 < n; ++q) sim.apply_gate(gates::h(q, q));
  std::vector<double> rs = {0.25, 0.5};
  for (int i = 0; i < 16; ++i) rs.push_back(1.0 + i);
  const auto samples = sim.resolve_sorted_positions(rs, 13);
  ASSERT_EQ(samples.size(), rs.size());
  std::set<index_t> tail;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i] >> (n - 1), 0u) << "sample " << i << " in empty GCD";
    if (i >= 2) tail.insert(samples[i]);
  }
  // 16 draws from a uniform 64-state distribution: a frozen seed yields one
  // repeated value; distinct seeds collide all 16 ways with p ~ 1e-28.
  EXPECT_GT(tail.size(), 4u);
}

TEST(MultiGcd, Validation) {
  EXPECT_THROW(MultiGcdSimulator<float>(8, 3), Error);   // not a power of two
  EXPECT_THROW(MultiGcdSimulator<float>(2, 2), Error);   // too few qubits
  MultiGcdSimulator<float> sim(8, 2);
  Gate wide;
  wide.name = "fused";
  for (qubit_t q = 0; q < 8; ++q) wide.qubits.push_back(q);
  wide.matrix = CMatrix::identity(256);
  EXPECT_THROW(sim.apply_gate(wide), Error);  // wider than local count
}

TEST(MultiGcd, StatsAccumulate) {
  MultiGcdSimulator<float> sim(8, 2);
  sim.apply_gate(gates::h(0, 7));
  sim.apply_gate(gates::h(1, 7));
  const auto& st = sim.stats();
  // Second gate on qubit 7 needs no new swap (still local after the first).
  EXPECT_EQ(st.slot_swaps, 1u);
  EXPECT_GT(st.local_gate_launches, 0u);
}

}  // namespace
}  // namespace qhip::hipsim
