#include "src/hipsim/state_space_hip.h"

#include <gtest/gtest.h>

#include <map>

#include "src/core/gates.h"
#include "src/hipsim/simulator_hip.h"
#include "src/statespace/statevector.h"

namespace qhip::hipsim {
namespace {

using vgpu::Device;

template <typename T>
class StateSpaceHIPTyped : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(StateSpaceHIPTyped, Precisions);

TYPED_TEST(StateSpaceHIPTyped, ZeroState) {
  for (unsigned warp : {32u, 64u}) {
    Device dev{vgpu::test_device(warp)};
    StateSpaceHIP<TypeParam> space(dev);
    DeviceStateVector<TypeParam> s(dev, 7);
    space.set_zero_state(s);
    const StateVector<TypeParam> h = s.to_host();
    EXPECT_EQ(h[0], (cplx<TypeParam>{1}));
    for (index_t i = 1; i < h.size(); ++i) EXPECT_EQ(h[i], (cplx<TypeParam>{}));
  }
}

TYPED_TEST(StateSpaceHIPTyped, UniformState) {
  Device dev{vgpu::test_device(64)};
  StateSpaceHIP<TypeParam> space(dev);
  DeviceStateVector<TypeParam> s(dev, 8);
  space.set_uniform_state(s);
  EXPECT_NEAR(space.norm2(s), 1.0, 1e-5);
}

TYPED_TEST(StateSpaceHIPTyped, BasisState) {
  Device dev{vgpu::test_device(64)};
  StateSpaceHIP<TypeParam> space(dev);
  DeviceStateVector<TypeParam> s(dev, 6);
  space.set_basis_state(s, 37);
  const StateVector<TypeParam> h = s.to_host();
  EXPECT_EQ(h[37], (cplx<TypeParam>{1}));
  EXPECT_NEAR(space.norm2(s), 1.0, 1e-7);
}

TYPED_TEST(StateSpaceHIPTyped, Norm2MatchesHost) {
  Device dev{vgpu::test_device(64)};
  StateSpaceHIP<TypeParam> space(dev);
  const unsigned n = 10;
  StateVector<TypeParam> host(n);
  Xoshiro256 rng(5);
  for (index_t i = 0; i < host.size(); ++i) {
    host[i] = cplx<TypeParam>(static_cast<TypeParam>(rng.uniform() - 0.5),
                              static_cast<TypeParam>(rng.uniform() - 0.5));
  }
  DeviceStateVector<TypeParam> s(dev, n);
  s.upload(host);
  const double norm_tol = std::is_same_v<TypeParam, float> ? 1e-4 : 1e-10;
  EXPECT_NEAR(space.norm2(s), statespace::norm2(host), norm_tol);
}

TYPED_TEST(StateSpaceHIPTyped, InnerProductMatchesHost) {
  Device dev{vgpu::test_device(32)};
  StateSpaceHIP<TypeParam> space(dev);
  const unsigned n = 9;
  StateVector<TypeParam> ha(n), hb(n);
  Xoshiro256 rng(6);
  for (index_t i = 0; i < ha.size(); ++i) {
    ha[i] = cplx<TypeParam>(static_cast<TypeParam>(rng.uniform() - 0.5),
                            static_cast<TypeParam>(rng.uniform() - 0.5));
    hb[i] = cplx<TypeParam>(static_cast<TypeParam>(rng.uniform() - 0.5),
                            static_cast<TypeParam>(rng.uniform() - 0.5));
  }
  DeviceStateVector<TypeParam> a(dev, n), b(dev, n);
  a.upload(ha);
  b.upload(hb);
  const cplx64 dev_ip = space.inner_product(a, b);
  const cplx64 host_ip = statespace::inner_product(ha, hb);
  const double tol = std::is_same_v<TypeParam, float> ? 1e-4 : 1e-10;
  EXPECT_NEAR(dev_ip.real(), host_ip.real(), tol);
  EXPECT_NEAR(dev_ip.imag(), host_ip.imag(), tol);
}

TYPED_TEST(StateSpaceHIPTyped, NormalizeScalesToUnit) {
  Device dev{vgpu::test_device(64)};
  StateSpaceHIP<TypeParam> space(dev);
  DeviceStateVector<TypeParam> s(dev, 8);
  space.fill(s, cplx<TypeParam>{1});
  const double pre = space.normalize(s);
  EXPECT_NEAR(pre, 16.0, 1e-4);  // sqrt(256)
  EXPECT_NEAR(space.norm2(s), 1.0, 1e-5);
}

TYPED_TEST(StateSpaceHIPTyped, SampleFromBasisState) {
  Device dev{vgpu::test_device(64)};
  StateSpaceHIP<TypeParam> space(dev);
  DeviceStateVector<TypeParam> s(dev, 12);
  space.set_basis_state(s, 1234);
  const auto out = space.sample(s, 32, 9);
  ASSERT_EQ(out.size(), 32u);
  for (index_t v : out) EXPECT_EQ(v, 1234u);
}

TYPED_TEST(StateSpaceHIPTyped, SampleMatchesHostSamplerStatistically) {
  Device dev{vgpu::test_device(64)};
  StateSpaceHIP<TypeParam> space(dev);
  const unsigned n = 6;
  // A skewed state: amplitude on |5> dominates.
  StateVector<TypeParam> host(n);
  host[0] = 0;  // constructor puts the unit amplitude here
  host[5] = static_cast<TypeParam>(std::sqrt(0.9));
  host[40] = static_cast<TypeParam>(std::sqrt(0.1));
  DeviceStateVector<TypeParam> s(dev, n);
  s.upload(host);
  const std::size_t m = 5000;
  const auto out = space.sample(s, m, 77);
  std::map<index_t, std::size_t> h;
  for (index_t v : out) ++h[v];
  EXPECT_EQ(h.size(), 2u);
  EXPECT_NEAR(static_cast<double>(h[5]) / m, 0.9, 0.03);
  EXPECT_NEAR(static_cast<double>(h[40]) / m, 0.1, 0.03);
}

TYPED_TEST(StateSpaceHIPTyped, SampleDeterministicInSeed) {
  Device dev{vgpu::test_device(64)};
  StateSpaceHIP<TypeParam> space(dev);
  DeviceStateVector<TypeParam> s(dev, 8);
  space.set_uniform_state(s);
  EXPECT_EQ(space.sample(s, 100, 3), space.sample(s, 100, 3));
  EXPECT_NE(space.sample(s, 100, 3), space.sample(s, 100, 4));
}

TYPED_TEST(StateSpaceHIPTyped, GetAmplitudesGathersOnDevice) {
  Device dev{vgpu::test_device(64)};
  StateSpaceHIP<TypeParam> space(dev);
  const unsigned n = 8;
  StateVector<TypeParam> host(n);
  Xoshiro256 rng(21);
  for (index_t i = 0; i < host.size(); ++i) {
    host[i] = cplx<TypeParam>(static_cast<TypeParam>(rng.uniform()),
                              static_cast<TypeParam>(rng.uniform()));
  }
  DeviceStateVector<TypeParam> s(dev, n);
  s.upload(host);
  const std::vector<index_t> want = {0, 255, 17, 128, 17};
  const auto got = space.get_amplitudes(s, want);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t k = 0; k < want.size(); ++k) {
    EXPECT_EQ(got[k], host[want[k]]) << k;
  }
  EXPECT_TRUE(space.get_amplitudes(s, {}).empty());
  EXPECT_THROW(space.get_amplitudes(s, {1u << n}), Error);
}

TYPED_TEST(StateSpaceHIPTyped, MeasureCollapsesAndNormalizes) {
  Device dev{vgpu::test_device(64)};
  StateSpaceHIP<TypeParam> space(dev);
  DeviceStateVector<TypeParam> s(dev, 6);
  space.set_uniform_state(s);
  const index_t outcome = space.measure(s, {2}, 21);
  ASSERT_LE(outcome, 1u);
  const StateVector<TypeParam> h = s.to_host();
  EXPECT_NEAR(statespace::norm2(h), 1.0, 1e-5);
  EXPECT_NEAR(statespace::probability(h, {2}, outcome), 1.0, 1e-5);
}

TYPED_TEST(StateSpaceHIPTyped, DeviceAllocationsBalanced) {
  Device dev{vgpu::test_device(64)};
  {
    StateSpaceHIP<TypeParam> space(dev);
    DeviceStateVector<TypeParam> s(dev, 8);
    space.set_uniform_state(s);
    space.norm2(s);
    space.sample(s, 16, 1);
    space.measure(s, {0, 3}, 2);
  }
  // Everything transient must have been freed; only nothing remains.
  EXPECT_EQ(dev.live_allocations(), 0u);
}

}  // namespace
}  // namespace qhip::hipsim
