// Tests for the wavefront reductions — including a regression test that
// reproduces the warp-size porting bug the paper fixes in §3: CUDA-style
// collectives hardcoded to width 32 silently drop half of each 64-wide AMD
// wavefront.
#include "src/hipsim/hip_util.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/vgpu/device.h"

namespace qhip::hipsim {
namespace {

using vgpu::Device;
using vgpu::KernelCtx;
using vgpu::test_device;

double run_warp_reduce(unsigned warp_size, bool fixed32) {
  Device dev{test_device(warp_size)};
  std::vector<double> out(1, -1);
  dev.launch("reduce", {1, warp_size, 0, true, {}}, [&](KernelCtx& ctx) {
    const double v = 1.0;  // sum over the wavefront should be warp_size
    const double r = fixed32 ? warp_reduce_sum_fixed32(ctx, v)
                             : warp_reduce_sum(ctx, v);
    if (ctx.lane() == 0) out[0] = r;
  });
  return out[0];
}

TEST(WarpReduce, CorrectOnWarp32) {
  EXPECT_DOUBLE_EQ(run_warp_reduce(32, false), 32.0);
}

TEST(WarpReduce, CorrectOnWarp64) {
  EXPECT_DOUBLE_EQ(run_warp_reduce(64, false), 64.0);
}

TEST(WarpReduce, Fixed32MatchesOnNvidiaWidth) {
  // The pre-port CUDA code is correct where it was written: warp 32.
  EXPECT_DOUBLE_EQ(run_warp_reduce(32, true), 32.0);
}

TEST(WarpReduce, Fixed32RegressionDropsHalfTheWavefrontOnAmd) {
  // The paper's porting bug: on a 64-wide wavefront the fixed-32 loop only
  // accumulates lanes 0..31 into lane 0 — half the data is lost.
  EXPECT_DOUBLE_EQ(run_warp_reduce(64, true), 32.0);
}

TEST(WarpReduce, NonUniformValues) {
  for (unsigned warp : {32u, 64u}) {
    Device dev{test_device(warp)};
    std::vector<long> out(1, -1);
    dev.launch("reduce", {1, warp, 0, true, {}}, [&](KernelCtx& ctx) {
      const long r = warp_reduce_sum(ctx, static_cast<long>(ctx.lane()));
      if (ctx.lane() == 0) out[0] = r;
    });
    EXPECT_EQ(out[0], static_cast<long>(warp) * (warp - 1) / 2) << warp;
  }
}

TEST(WarpReduce, RaggedFinalWarp) {
  // block_dim = warp_size + 3: the final warp has 3 live lanes. The
  // reduction must sum exactly the live lanes of each warp — dead lanes
  // contribute nothing and the collective must not hang on them.
  for (unsigned warp : {32u, 64u}) {
    Device dev{test_device(warp)};
    const unsigned block = warp + 3;
    std::vector<long> out(2, -1);
    dev.launch("ragged", {1, block, 0, true, {}}, [&](KernelCtx& ctx) {
      const long v = static_cast<long>(ctx.thread_idx()) + 1;  // 1..block
      const long r = warp_reduce_sum(ctx, v);
      if (ctx.lane() == 0) out[ctx.warp_id()] = r;
    });
    EXPECT_EQ(out[0], static_cast<long>(warp) * (warp + 1) / 2) << warp;
    // The ragged warp holds warp+1, warp+2, warp+3.
    EXPECT_EQ(out[1], 3L * warp + 6) << warp;
  }
}

TEST(BlockReduce, RaggedBlock) {
  for (unsigned warp : {32u, 64u}) {
    Device dev{test_device(warp)};
    const unsigned block = warp + 7;
    std::vector<double> out(1, -1);
    dev.launch("br", {1, block, 2 * sizeof(double), true, {}},
               [&](KernelCtx& ctx) {
                 double* scratch = ctx.shared_as<double>();
                 const double r = block_reduce_sum(ctx, 1.0, scratch);
                 if (ctx.thread_idx() == 0) out[0] = r;
               });
    EXPECT_DOUBLE_EQ(out[0], static_cast<double>(block)) << warp;
  }
}

TEST(BlockReduce, SingleWarpBlock) {
  Device dev{test_device(64)};
  std::vector<double> out(1, -1);
  dev.launch("br", {1, 64, sizeof(double), true, {}}, [&](KernelCtx& ctx) {
    double* scratch = ctx.shared_as<double>();
    const double r = block_reduce_sum(ctx, 2.0, scratch);
    if (ctx.thread_idx() == 0) out[0] = r;
  });
  EXPECT_DOUBLE_EQ(out[0], 128.0);
}

TEST(BlockReduce, MultiWarpBlock) {
  for (unsigned warp : {32u, 64u}) {
    Device dev{test_device(warp)};
    const unsigned block = 256;
    std::vector<double> out(1, -1);
    dev.launch("br", {1, block, (block / 32) * sizeof(double), true, {}},
               [&](KernelCtx& ctx) {
                 double* scratch = ctx.shared_as<double>();
                 const double r = block_reduce_sum(
                     ctx, static_cast<double>(ctx.thread_idx()), scratch);
                 if (ctx.thread_idx() == 0) out[0] = r;
               });
    EXPECT_DOUBLE_EQ(out[0], 255.0 * 256 / 2) << warp;
  }
}

TEST(BlockReduce, ManyBlocks) {
  Device dev{test_device(64)};
  const unsigned grid = 17, block = 128;
  std::vector<double> partial(grid, -1);
  dev.launch("br", {grid, block, (block / 32) * sizeof(double), true, {}},
             [&](KernelCtx& ctx) {
               double* scratch = ctx.shared_as<double>();
               const double r = block_reduce_sum(ctx, 1.0, scratch);
               if (ctx.thread_idx() == 0) partial[ctx.block_idx()] = r;
             });
  for (unsigned b = 0; b < grid; ++b) EXPECT_DOUBLE_EQ(partial[b], 128.0);
}

}  // namespace
}  // namespace qhip::hipsim
