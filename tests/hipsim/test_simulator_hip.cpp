// HIP-backend correctness: the ported GPU kernels must agree with the
// reference simulator on both virtual devices (MI250X wavefront 64 and
// A100 warp 32), for both precisions, across the H/L kernel split.
#include "src/hipsim/simulator_hip.h"

#include <gtest/gtest.h>

#include <numbers>

#include "src/base/rng.h"
#include "src/core/gates.h"
#include "src/fusion/fuser.h"
#include "src/simulator/reference.h"
#include "src/simulator/simulator_cpu.h"

namespace qhip::hipsim {
namespace {

using vgpu::Device;

Circuit random_circuit(unsigned n, unsigned depth, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Circuit c;
  c.num_qubits = n;
  for (unsigned t = 0; t < depth; ++t) {
    std::vector<bool> used(n, false);
    for (unsigned q = 0; q < n; ++q) {
      if (used[q]) continue;
      const double r = rng.uniform();
      if (r < 0.35 && q + 1 < n && !used[q + 1]) {
        c.gates.push_back(gates::fs(t, q, q + 1, rng.uniform() * 2, rng.uniform()));
        used[q] = used[q + 1] = true;
      } else if (r < 0.7) {
        c.gates.push_back(gates::rxy(t, q, rng.uniform() * 6, rng.uniform() * 3));
        used[q] = true;
      }
    }
  }
  return c;
}

template <typename T>
class SimulatorHIPTyped : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(SimulatorHIPTyped, Precisions);

TYPED_TEST(SimulatorHIPTyped, BellStateOnMI250X) {
  Device dev{vgpu::mi250x_gcd()};
  SimulatorHIP<TypeParam> sim(dev);
  DeviceStateVector<TypeParam> s(dev, 6);
  sim.state_space().set_zero_state(s);
  sim.apply_gate(gates::h(0, 0), s);
  sim.apply_gate(gates::cnot(1, 0, 1), s);
  const StateVector<TypeParam> h = s.to_host();
  const double r = 1 / std::numbers::sqrt2;
  EXPECT_NEAR(h[0].real(), r, 1e-6);
  EXPECT_NEAR(h[3].real(), r, 1e-6);
  EXPECT_NEAR(std::abs(h[1]), 0, 1e-6);
}

// The low/high kernel split: single-qubit gates on every qubit position of
// an 8-qubit state hit ApplyGateL (q < 5) and ApplyGateH (q >= 5).
TYPED_TEST(SimulatorHIPTyped, SingleQubitGateEveryPosition) {
  for (unsigned warp : {32u, 64u}) {
    vgpu::DeviceProps props = warp == 32 ? vgpu::a100() : vgpu::mi250x_gcd();
    Device dev{props};
    SimulatorHIP<TypeParam> sim(dev);
    const unsigned n = 8;
    for (qubit_t q = 0; q < n; ++q) {
      DeviceStateVector<TypeParam> ds(dev, n);
      sim.state_space().set_zero_state(ds);
      StateVector<TypeParam> ref(n);

      // Prepare superposition then hit qubit q.
      sim.apply_gate(gates::h(0, 0), ds);
      sim.apply_gate(gates::h(0, n - 1), ds);
      sim.apply_gate(gates::rxy(1, q, 0.3, 1.1), ds);
      reference_apply_gate(gates::h(0, 0), ref);
      reference_apply_gate(gates::h(0, n - 1), ref);
      reference_apply_gate(gates::rxy(1, q, 0.3, 1.1), ref);

      EXPECT_LT(statespace::max_abs_diff(ds.to_host(), ref), state_tol<TypeParam>())
          << "qubit " << q << " warp " << warp;
    }
  }
}

TYPED_TEST(SimulatorHIPTyped, TwoQubitGatesAcrossTheSplit) {
  Device dev{vgpu::mi250x_gcd()};
  SimulatorHIP<TypeParam> sim(dev);
  const unsigned n = 8;
  // Pairs covering low-low, low-high, high-high.
  const std::vector<std::pair<qubit_t, qubit_t>> pairs = {
      {0, 1}, {2, 4}, {1, 6}, {4, 7}, {5, 6}, {0, 7}};
  for (const auto& [a, b] : pairs) {
    DeviceStateVector<TypeParam> ds(dev, n);
    sim.state_space().set_zero_state(ds);
    StateVector<TypeParam> ref(n);
    for (qubit_t q = 0; q < n; ++q) {
      sim.apply_gate(gates::h(0, q), ds);
      reference_apply_gate(gates::h(0, q), ref);
    }
    const Gate g = gates::fs(1, a, b, 0.7, 0.4);
    sim.apply_gate(g, ds);
    reference_apply_gate(g, ref);
    EXPECT_LT(statespace::max_abs_diff(ds.to_host(), ref), state_tol<TypeParam>())
        << a << "," << b;
  }
}

TYPED_TEST(SimulatorHIPTyped, RandomCircuitsMatchReferenceBothDevices) {
  for (unsigned warp : {32u, 64u}) {
    Device dev{vgpu::test_device(warp)};
    SimulatorHIP<TypeParam> sim(dev);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const unsigned n = 7;
      const Circuit c = random_circuit(n, 8, seed);
      DeviceStateVector<TypeParam> ds(dev, n);
      sim.state_space().set_zero_state(ds);
      sim.run(c, ds);
      StateVector<TypeParam> ref(n);
      reference_run(c, ref);
      EXPECT_LT(statespace::max_abs_diff(ds.to_host(), ref),
                2 * state_tol<TypeParam>())
          << "warp " << warp << " seed " << seed;
    }
  }
}

TYPED_TEST(SimulatorHIPTyped, FusedCircuitsMatchCPU) {
  Device dev{vgpu::mi250x_gcd()};
  SimulatorHIP<TypeParam> gpu(dev);
  SimulatorCPU<TypeParam> cpu;
  const unsigned n = 9;
  const Circuit c = random_circuit(n, 10, 33);
  for (unsigned f : {2u, 3u, 4u, 5u, 6u}) {
    const FusionResult fused = fuse_circuit(c, {f});
    DeviceStateVector<TypeParam> ds(dev, n);
    gpu.state_space().set_zero_state(ds);
    gpu.run(fused.circuit, ds);
    StateVector<TypeParam> hs(n);
    cpu.run(fused.circuit, hs);
    EXPECT_LT(statespace::max_abs_diff(ds.to_host(), hs),
              4 * state_tol<TypeParam>())
        << "max_fused " << f;
  }
}

TYPED_TEST(SimulatorHIPTyped, WideFusedGateLowAndHighMix) {
  // 6-qubit fused gates mixing low and high targets stress ApplyGateL's
  // shared-memory staging (2^5 high combos x 32-amplitude tiles).
  Device dev{vgpu::mi250x_gcd()};
  SimulatorHIP<TypeParam> sim(dev);
  const unsigned n = 11;
  const Circuit c = random_circuit(n, 16, 55);
  const FusionResult fused = fuse_circuit(c, {6});
  bool saw_wide_low = false;
  for (const auto& g : fused.circuit.gates) {
    if (g.num_targets() >= 5 && g.qubits.front() < 5) saw_wide_low = true;
  }
  EXPECT_TRUE(saw_wide_low) << "test circuit should produce wide low gates";

  DeviceStateVector<TypeParam> ds(dev, n);
  sim.state_space().set_zero_state(ds);
  sim.run(fused.circuit, ds);
  StateVector<TypeParam> ref(n);
  reference_run(fused.circuit, ref);
  EXPECT_LT(statespace::max_abs_diff(ds.to_host(), ref), 4 * state_tol<TypeParam>());
}

TYPED_TEST(SimulatorHIPTyped, ControlledGateHighTargets) {
  // Controls + high targets exercise the native control-mask path.
  Device dev{vgpu::mi250x_gcd()};
  SimulatorHIP<TypeParam> sim(dev);
  const unsigned n = 8;
  DeviceStateVector<TypeParam> ds(dev, n);
  sim.state_space().set_zero_state(ds);
  StateVector<TypeParam> ref(n);
  for (qubit_t q = 0; q < n; ++q) {
    sim.apply_gate(gates::h(0, q), ds);
    reference_apply_gate(gates::h(0, q), ref);
  }
  const Gate cg = gates::controlled(gates::ry(1, 6, 0.8), {1, 3});
  sim.apply_gate(cg, ds);
  reference_apply_gate(cg, ref);
  EXPECT_LT(statespace::max_abs_diff(ds.to_host(), ref), state_tol<TypeParam>());
}

TYPED_TEST(SimulatorHIPTyped, ControlledGateLowTargetsFoldsControls) {
  Device dev{vgpu::mi250x_gcd()};
  SimulatorHIP<TypeParam> sim(dev);
  const unsigned n = 8;
  DeviceStateVector<TypeParam> ds(dev, n);
  sim.state_space().set_zero_state(ds);
  StateVector<TypeParam> ref(n);
  for (qubit_t q = 0; q < n; ++q) {
    sim.apply_gate(gates::h(0, q), ds);
    reference_apply_gate(gates::h(0, q), ref);
  }
  const Gate cg = gates::controlled(gates::rx(1, 2, 1.3), {5});
  sim.apply_gate(cg, ds);
  reference_apply_gate(cg, ref);
  EXPECT_LT(statespace::max_abs_diff(ds.to_host(), ref), state_tol<TypeParam>());
}

TYPED_TEST(SimulatorHIPTyped, MeasurementCollapsesOnDevice) {
  Device dev{vgpu::mi250x_gcd()};
  SimulatorHIP<TypeParam> sim(dev);
  Circuit c;
  c.num_qubits = 6;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::cnot(1, 0, 1));
  c.gates.push_back(gates::measure(2, {0, 1}));
  DeviceStateVector<TypeParam> ds(dev, 6);
  sim.state_space().set_zero_state(ds);
  std::vector<index_t> meas;
  sim.run(c, ds, 123, &meas);
  ASSERT_EQ(meas.size(), 1u);
  EXPECT_TRUE(meas[0] == 0b00 || meas[0] == 0b11);
  const StateVector<TypeParam> h = ds.to_host();
  EXPECT_NEAR(statespace::norm2(h), 1.0, 1e-5);
}

TYPED_TEST(SimulatorHIPTyped, RejectsTooWideGate) {
  Device dev{vgpu::mi250x_gcd()};
  SimulatorHIP<TypeParam> sim(dev);
  DeviceStateVector<TypeParam> ds(dev, 9);
  Gate g;
  g.name = "fused";
  for (qubit_t q = 0; q < 7; ++q) g.qubits.push_back(q);
  g.matrix = CMatrix::identity(128);
  EXPECT_THROW(sim.apply_gate(g, ds), Error);
}

TEST(SimulatorHIP, GateMatrixUploadsAreTraced) {
  Tracer tracer;
  Device dev{vgpu::mi250x_gcd(), &tracer};
  SimulatorHIP<float> sim(dev);
  DeviceStateVector<float> ds(dev, 6);
  sim.state_space().set_zero_state(ds);
  sim.apply_gate(gates::h(0, 5), ds);  // high qubit -> ApplyGateH
  sim.apply_gate(gates::h(0, 0), ds);  // low qubit  -> ApplyGateL
  dev.synchronize();  // spans are recorded when the streams execute the ops

  bool saw_h = false, saw_l = false, saw_copy = false;
  for (const auto& row : tracer.summary()) {
    if (row.name == "ApplyGateH_Kernel") saw_h = true;
    if (row.name == "ApplyGateL_Kernel") saw_l = true;
    if (row.name == "hipMemcpyAsync(HtoD)") saw_copy = true;
  }
  EXPECT_TRUE(saw_h);
  EXPECT_TRUE(saw_l);
  EXPECT_TRUE(saw_copy);
}

}  // namespace
}  // namespace qhip::hipsim
