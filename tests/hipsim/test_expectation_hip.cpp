// Device-side expectation values must agree with the host path on both
// virtual devices and both precisions.
#include "src/hipsim/expectation_hip.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/core/gates.h"
#include "src/hipsim/simulator_hip.h"
#include "src/simulator/simulator_cpu.h"

namespace qhip::hipsim {
namespace {

using obs::Observable;
using obs::Pauli;
using obs::PauliString;

template <typename T>
class ExpectationHIPTyped : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(ExpectationHIPTyped, Precisions);

template <typename FP>
void prepare(unsigned n, std::uint64_t seed, SimulatorCPU<FP>& cpu,
             StateVector<FP>& host, SimulatorHIP<FP>& gpu,
             DeviceStateVector<FP>& dev_state) {
  Xoshiro256 rng(seed);
  gpu.state_space().set_zero_state(dev_state);
  for (unsigned t = 0; t < 5; ++t) {
    for (unsigned q = 0; q < n; ++q) {
      const Gate g = gates::rxy(t, q, rng.uniform() * 6, rng.uniform() * 3);
      cpu.apply_gate(g, host);
      gpu.apply_gate(g, dev_state);
    }
  }
}

TYPED_TEST(ExpectationHIPTyped, MatchesHostOnBothDevices) {
  for (unsigned warp : {32u, 64u}) {
    vgpu::Device dev{vgpu::test_device(warp)};
    const unsigned n = 9;
    SimulatorCPU<TypeParam> cpu;
    StateVector<TypeParam> host(n);
    SimulatorHIP<TypeParam> gpu(dev);
    DeviceStateVector<TypeParam> ds(dev, n);
    prepare(n, 4, cpu, host, gpu, ds);

    Observable o;
    o.strings.push_back(PauliString{0.8, {{0, Pauli::kX}, {6, Pauli::kY}}});
    o.strings.push_back(PauliString{-0.5, {{2, Pauli::kZ}, {3, Pauli::kZ}}});
    o.strings.push_back(PauliString{1.1, {{8, Pauli::kY}, {1, Pauli::kZ}}});

    const cplx64 want = obs::expectation(o, host);
    const cplx64 got = expectation(o, ds, dev);
    const double tol = std::is_same_v<TypeParam, float> ? 1e-4 : 1e-10;
    EXPECT_NEAR(got.real(), want.real(), tol) << "warp " << warp;
    EXPECT_NEAR(got.imag(), want.imag(), tol) << "warp " << warp;
  }
}

TYPED_TEST(ExpectationHIPTyped, IsingEnergyOnDevice) {
  vgpu::Device dev{vgpu::mi250x_gcd()};
  const unsigned n = 8;
  SimulatorCPU<TypeParam> cpu;
  StateVector<TypeParam> host(n);
  SimulatorHIP<TypeParam> gpu(dev);
  DeviceStateVector<TypeParam> ds(dev, n);
  prepare(n, 9, cpu, host, gpu, ds);

  const Observable h = obs::transverse_field_ising(n, 1.0, 1.1);
  const cplx64 want = obs::expectation(h, host);
  const cplx64 got = expectation(h, ds, dev);
  const double tol = std::is_same_v<TypeParam, float> ? 2e-4 : 1e-10;
  EXPECT_NEAR(got.real(), want.real(), tol);
  EXPECT_NEAR(got.imag(), 0.0, tol);
}

TYPED_TEST(ExpectationHIPTyped, DeviceAllocationsBalanced) {
  vgpu::Device dev{vgpu::test_device(64)};
  {
    SimulatorHIP<TypeParam> gpu(dev);
    DeviceStateVector<TypeParam> ds(dev, 7);
    gpu.state_space().set_uniform_state(ds);
    expectation(obs::pauli_x(3), ds, dev);
    expectation(obs::transverse_field_ising(7, 1, 1), ds, dev);
  }
  EXPECT_EQ(dev.live_allocations(), 0u);
}

TYPED_TEST(ExpectationHIPTyped, RandomStatesMatchDenseOracle) {
  // Three-way parity on random states: the device kernel and the host
  // sparse path must both agree with <psi| M |psi> computed from the dense
  // matrix of the observable — including Y-heavy strings, whose factors of
  // +-i are where a sign slip in either fast path would show.
  for (unsigned warp : {32u, 64u}) {
    vgpu::Device dev{vgpu::test_device(warp)};
    const unsigned n = 6;
    SimulatorCPU<TypeParam> cpu;
    StateVector<TypeParam> host(n);
    SimulatorHIP<TypeParam> gpu(dev);
    DeviceStateVector<TypeParam> ds(dev, n);
    prepare(n, 11 + warp, cpu, host, gpu, ds);

    Observable o;
    o.strings.push_back(PauliString{
        0.7, {{0, Pauli::kY}, {1, Pauli::kY}, {2, Pauli::kY}}});
    o.strings.push_back(PauliString{cplx64(0.0, 0.4),
                                    {{3, Pauli::kY}, {5, Pauli::kY}}});
    o.strings.push_back(PauliString{-1.3, {{4, Pauli::kY}, {0, Pauli::kX}}});
    o.strings.push_back(PauliString{0.9, {{2, Pauli::kZ}, {3, Pauli::kY}}});

    const CMatrix m = obs::to_dense(o, n);
    cplx64 oracle = 0;
    for (index_t i = 0; i < host.size(); ++i) {
      cplx64 row = 0;
      for (index_t j = 0; j < host.size(); ++j) {
        row += m.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) *
               cplx64(host[j].real(), host[j].imag());
      }
      oracle += std::conj(cplx64(host[i].real(), host[i].imag())) * row;
    }

    const cplx64 host_fast = obs::expectation(o, host);
    const cplx64 device = expectation(o, ds, dev);
    const double tol = std::is_same_v<TypeParam, float> ? 2e-4 : 1e-10;
    EXPECT_NEAR(host_fast.real(), oracle.real(), tol) << "warp " << warp;
    EXPECT_NEAR(host_fast.imag(), oracle.imag(), tol) << "warp " << warp;
    EXPECT_NEAR(device.real(), oracle.real(), tol) << "warp " << warp;
    EXPECT_NEAR(device.imag(), oracle.imag(), tol) << "warp " << warp;
  }
}

TEST(ExpectationHIP, ValidatesQubitRange) {
  vgpu::Device dev{vgpu::test_device(64)};
  SimulatorHIP<float> gpu(dev);
  DeviceStateVector<float> ds(dev, 5);
  gpu.state_space().set_zero_state(ds);
  EXPECT_THROW(expectation(obs::pauli_x(7), ds, dev), Error);
}

}  // namespace
}  // namespace qhip::hipsim
