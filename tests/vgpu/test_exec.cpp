// Tests for the SIMT executor: thread indexing, shared memory, barriers,
// wavefront collectives at widths 32 and 64, and misuse diagnostics.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "src/base/error.h"
#include "src/vgpu/device.h"

namespace qhip::vgpu {
namespace {

Device make_device(unsigned warp) {
  DeviceProps p = test_device(warp);
  return Device(p);
}

TEST(Exec, GlobalIndexingCoversGrid) {
  Device dev = make_device(64);
  const unsigned grid = 7, block = 33;
  std::vector<std::atomic<int>> hits(grid * block);
  dev.launch("idx", {grid, block, 0, false, {}}, [&](KernelCtx& ctx) {
    hits[ctx.global_idx()].fetch_add(1);
    EXPECT_EQ(ctx.block_dim(), block);
    EXPECT_EQ(ctx.grid_dim(), grid);
    EXPECT_LT(ctx.thread_idx(), block);
    EXPECT_LT(ctx.block_idx(), grid);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Exec, LaneAndWarpId) {
  for (unsigned warp : {32u, 64u}) {
    Device dev = make_device(warp);
    dev.launch("lanes", {1, 128, 0, false, {}}, [&](KernelCtx& ctx) {
      EXPECT_EQ(ctx.lane(), ctx.thread_idx() % warp);
      EXPECT_EQ(ctx.warp_id(), ctx.thread_idx() / warp);
      EXPECT_EQ(ctx.warp_size(), warp);
    });
  }
}

TEST(Exec, SyncthreadsOrdersSharedWrites) {
  Device dev = make_device(64);
  const unsigned block = 64;
  std::vector<int> out(block, -1);
  // Classic reversal: each thread writes shared[tid], syncs, reads the
  // mirror slot. Without a working barrier this reads stale data.
  dev.launch("rev", {1, block, block * sizeof(int), true, {}},
             [&](KernelCtx& ctx) {
               int* sh = ctx.shared_as<int>();
               sh[ctx.thread_idx()] = static_cast<int>(ctx.thread_idx()) * 10;
               ctx.syncthreads();
               out[ctx.thread_idx()] = sh[block - 1 - ctx.thread_idx()];
             });
  for (unsigned t = 0; t < block; ++t) {
    EXPECT_EQ(out[t], static_cast<int>(block - 1 - t) * 10);
  }
}

TEST(Exec, MultipleBarriersInLoop) {
  Device dev = make_device(32);
  const unsigned block = 32;
  std::vector<int> result(block);
  // Parallel prefix-doubling sum in shared memory: needs a barrier per step.
  dev.launch("scan", {1, block, 2 * block * sizeof(int), true, {}},
             [&](KernelCtx& ctx) {
               int* a = ctx.shared_as<int>();
               int* b = a + block;
               const unsigned t = ctx.thread_idx();
               a[t] = 1;
               ctx.syncthreads();
               for (unsigned step = 1; step < block; step <<= 1) {
                 b[t] = a[t] + (t >= step ? a[t - step] : 0);
                 ctx.syncthreads();
                 a[t] = b[t];
                 ctx.syncthreads();
               }
               result[t] = a[t];
             });
  for (unsigned t = 0; t < block; ++t) {
    EXPECT_EQ(result[t], static_cast<int>(t + 1));
  }
}

TEST(Exec, SyncthreadsInDirectModeThrows) {
  Device dev = make_device(64);
  EXPECT_THROW(
      dev.launch("bad", {1, 2, 0, false, {}},
                 [](KernelCtx& ctx) { ctx.syncthreads(); }),
      Error);
}

TEST(Exec, ExitedThreadsCountAsArrivedAtBarrier) {
  // PTX bar.sync semantics (and this executor): threads that already exited
  // are treated as having arrived, so early-exit + barrier completes.
  Device dev = make_device(64);
  std::vector<int> out(4, 0);
  EXPECT_NO_THROW(dev.launch("early", {1, 4, 0, true, {}},
                             [&](KernelCtx& ctx) {
                               if (ctx.thread_idx() == 0) return;
                               ctx.syncthreads();
                               out[ctx.thread_idx()] = 1;
                             }));
  EXPECT_EQ(out[0], 0);
  for (unsigned t = 1; t < 4; ++t) EXPECT_EQ(out[t], 1);
}

TEST(Exec, MixedBarrierKindsDeadlockDetected) {
  // Half the warp waits at a block barrier, the other half at a wavefront
  // collective: neither rendezvous can ever complete.
  Device dev = make_device(64);
  EXPECT_THROW(dev.launch("dead", {1, 64, 0, true, {}},
                          [](KernelCtx& ctx) {
                            if (ctx.lane() < 32) {
                              ctx.syncthreads();
                            } else {
                              ctx.shfl_down(1, 1);
                            }
                          }),
               Error);
}

TEST(Exec, ShflDownBasic) {
  for (unsigned warp : {32u, 64u}) {
    Device dev = make_device(warp);
    std::vector<int> out(warp);
    dev.launch("shfl", {1, warp, 0, true, {}}, [&](KernelCtx& ctx) {
      const int v = static_cast<int>(ctx.lane());
      out[ctx.lane()] = ctx.shfl_down(v, 1);
    });
    for (unsigned l = 0; l + 1 < warp; ++l) {
      EXPECT_EQ(out[l], static_cast<int>(l + 1));
    }
    // Last lane keeps its own value (out-of-segment source).
    EXPECT_EQ(out[warp - 1], static_cast<int>(warp - 1));
  }
}

TEST(Exec, ShflDownDoubleValues) {
  Device dev = make_device(64);
  std::vector<double> out(64);
  dev.launch("shfld", {1, 64, 0, true, {}}, [&](KernelCtx& ctx) {
    const double v = 0.5 * ctx.lane();
    out[ctx.lane()] = ctx.shfl_down(v, 8);
  });
  for (unsigned l = 0; l < 56; ++l) EXPECT_DOUBLE_EQ(out[l], 0.5 * (l + 8));
}

TEST(Exec, ShflDownWidthSegments) {
  // width=16 partitions the warp into segments; values never cross them.
  Device dev = make_device(64);
  std::vector<int> out(64);
  dev.launch("shflw", {1, 64, 0, true, {}}, [&](KernelCtx& ctx) {
    out[ctx.lane()] = ctx.shfl_down(static_cast<int>(ctx.lane()), 8, 16);
  });
  for (unsigned l = 0; l < 64; ++l) {
    const unsigned seg_end = (l / 16 + 1) * 16;
    const int want = l + 8 < seg_end ? static_cast<int>(l + 8)
                                     : static_cast<int>(l);
    EXPECT_EQ(out[l], want) << l;
  }
}

TEST(Exec, ShflBroadcast) {
  Device dev = make_device(64);
  std::vector<int> out(64);
  dev.launch("bc", {1, 64, 0, true, {}}, [&](KernelCtx& ctx) {
    const int v = static_cast<int>(ctx.lane()) * 3;
    out[ctx.lane()] = ctx.shfl(v, 5);
  });
  for (unsigned l = 0; l < 64; ++l) EXPECT_EQ(out[l], 15);
}

TEST(Exec, WarpSumViaShflDownWidth64) {
  Device dev = make_device(64);
  std::vector<long> out(1, -1);
  dev.launch("wsum", {1, 64, 0, true, {}}, [&](KernelCtx& ctx) {
    long v = static_cast<long>(ctx.lane()) + 1;  // 1..64
    for (unsigned off = ctx.warp_size() / 2; off > 0; off >>= 1) {
      v += ctx.shfl_down(v, off);
    }
    if (ctx.lane() == 0) out[0] = v;
  });
  EXPECT_EQ(out[0], 64L * 65 / 2);
}

TEST(Exec, RaggedWarpShflDownClampsToLiveLanes) {
  // block_dim = warp_size + 5: the second warp has only 5 live lanes. A
  // shuffle whose source lane does not exist must return the caller's own
  // value, not rendezvous with a dead lane.
  for (unsigned warp : {32u, 64u}) {
    Device dev = make_device(warp);
    const unsigned block = warp + 5;
    std::vector<int> out(block, -1);
    dev.launch("ragged", {1, block, 0, true, {}}, [&](KernelCtx& ctx) {
      const int v = static_cast<int>(ctx.thread_idx());
      out[ctx.thread_idx()] = ctx.shfl_down(v, 2);
    });
    for (unsigned t = 0; t < warp; ++t) {
      const int want = t + 2 < warp ? static_cast<int>(t + 2)
                                    : static_cast<int>(t);
      EXPECT_EQ(out[t], want) << "warp " << warp << " thread " << t;
    }
    for (unsigned t = warp; t < block; ++t) {
      const unsigned lane = t - warp;
      const int want = lane + 2 < 5 ? static_cast<int>(t + 2)
                                    : static_cast<int>(t);
      EXPECT_EQ(out[t], want) << "warp " << warp << " thread " << t;
    }
  }
}

TEST(Exec, RaggedWarpReductionSumsLiveLanes) {
  // Tree reduction over a ragged final warp: dead-lane reads are defined
  // (own value) so the collective completes, and guarding the accumulation
  // with live_lanes() yields exactly the sum of the live lanes.
  for (unsigned warp : {32u, 64u}) {
    Device dev = make_device(warp);
    const unsigned block = warp + 3;
    std::vector<long> out(2, -1);
    dev.launch("rsum", {1, block, 0, true, {}}, [&](KernelCtx& ctx) {
      long v = static_cast<long>(ctx.thread_idx()) + 1;  // 1..block
      for (unsigned off = ctx.warp_size() / 2; off > 0; off >>= 1) {
        const long other = ctx.shfl_down(v, off);
        if (ctx.lane() + off < ctx.live_lanes()) v += other;
      }
      if (ctx.lane() == 0) out[ctx.warp_id()] = v;
    });
    EXPECT_EQ(out[0], static_cast<long>(warp) * (warp + 1) / 2);
    // Partial warp holds warp+1, warp+2, warp+3.
    EXPECT_EQ(out[1], 3L * warp + 6);
  }
}

TEST(Exec, Ballot) {
  for (unsigned warp : {32u, 64u}) {
    Device dev = make_device(warp);
    std::vector<std::uint64_t> out(warp);
    dev.launch("ballot", {1, warp, 0, true, {}}, [&](KernelCtx& ctx) {
      out[ctx.lane()] = ctx.ballot(ctx.lane() % 3 == 0);
    });
    std::uint64_t want = 0;
    for (unsigned l = 0; l < warp; ++l) {
      if (l % 3 == 0) want |= std::uint64_t{1} << l;
    }
    for (unsigned l = 0; l < warp; ++l) EXPECT_EQ(out[l], want);
  }
}

TEST(Exec, CollectiveInDirectModeThrows) {
  Device dev = make_device(64);
  EXPECT_THROW(dev.launch("bad", {1, 64, 0, false, {}},
                          [](KernelCtx& ctx) { ctx.shfl_down(1, 1); }),
               Error);
}

TEST(Exec, MultiWarpBlockCollectivesStayInWarp) {
  // 2 warps of 32: shuffles must not leak across the warp boundary.
  Device dev = make_device(32);
  std::vector<int> out(64);
  dev.launch("2warp", {1, 64, 0, true, {}}, [&](KernelCtx& ctx) {
    const int v = static_cast<int>(ctx.thread_idx());
    out[ctx.thread_idx()] = ctx.shfl(v, 0);  // broadcast lane 0 of own warp
  });
  for (unsigned t = 0; t < 32; ++t) EXPECT_EQ(out[t], 0);
  for (unsigned t = 32; t < 64; ++t) EXPECT_EQ(out[t], 32);
}

TEST(Exec, ManyBlocksWithBarriers) {
  Device dev = make_device(64);
  const unsigned grid = 50, block = 64;
  std::vector<int> out(grid, 0);
  dev.launch("many", {grid, block, block * sizeof(int), true, {}},
             [&](KernelCtx& ctx) {
               int* sh = ctx.shared_as<int>();
               sh[ctx.thread_idx()] = 1;
               ctx.syncthreads();
               if (ctx.thread_idx() == 0) {
                 int s = 0;
                 for (unsigned t = 0; t < block; ++t) s += sh[t];
                 out[ctx.block_idx()] = s;
               }
             });
  for (unsigned b = 0; b < grid; ++b) EXPECT_EQ(out[b], static_cast<int>(block));
}

TEST(Exec, BlocksDistributeAcrossHostWorkers) {
  // A device backed by a multi-worker pool must produce identical results:
  // every block lands exactly once regardless of the host-thread split.
  ThreadPool pool(3);
  DeviceProps props = test_device(64);
  Device dev(props, nullptr, &pool);
  const unsigned grid = 37, block = 64;
  std::vector<std::atomic<int>> hits(grid);
  dev.launch("mt", {grid, block, block * sizeof(int), true, {}},
             [&](KernelCtx& ctx) {
               int* sh = ctx.shared_as<int>();
               sh[ctx.thread_idx()] = 1;
               ctx.syncthreads();
               if (ctx.thread_idx() == 0) {
                 int s = 0;
                 for (unsigned t = 0; t < block; ++t) s += sh[t];
                 if (s == static_cast<int>(block)) hits[ctx.block_idx()].fetch_add(1);
               }
             });
  for (unsigned b = 0; b < grid; ++b) EXPECT_EQ(hits[b].load(), 1) << b;
}

TEST(Exec, KernelExceptionPropagates) {
  Device dev = make_device(64);
  EXPECT_THROW(dev.launch("throws", {1, 8, 0, true, {}},
                          [](KernelCtx& ctx) {
                            ctx.syncthreads();
                            if (ctx.thread_idx() == 3) throw Error("kernel bug");
                            ctx.syncthreads();
                          }),
               Error);
  // Device still usable.
  EXPECT_NO_THROW(dev.launch("ok", {1, 8, 0, true, {}},
                             [](KernelCtx& ctx) { ctx.syncthreads(); }));
}

}  // namespace
}  // namespace qhip::vgpu
