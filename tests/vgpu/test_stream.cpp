// Tests for the asynchronous stream engine: FIFO order within a stream,
// blocking joins, event completion semantics, cross-stream independence and
// ordering via stream_wait_event, plus the eager fallback mode.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/base/error.h"
#include "src/vgpu/device.h"

namespace qhip::vgpu {
namespace {

// Host-side spin used inside gate kernels. Bails out after a minute so a
// broken engine fails the test instead of hanging the suite.
void spin_until(const std::atomic<bool>& flag) {
  const auto t0 = std::chrono::steady_clock::now();
  while (!flag.load()) {
    std::this_thread::yield();
    if (std::chrono::steady_clock::now() - t0 > std::chrono::seconds(60)) {
      return;
    }
  }
}

TEST(Stream, LaunchReturnsBeforeKernelRuns) {
  Device dev(test_device());
  ASSERT_EQ(dev.stream_mode(), StreamMode::kAsync);
  const Stream s = dev.create_stream();
  std::atomic<bool> gate{false};
  std::atomic<bool> done{false};
  dev.launch("gate", {1, 1, 0, false, s}, [&](KernelCtx&) {
    spin_until(gate);
    done = true;
  });
  // The launch is asynchronous: the kernel cannot have finished, because it
  // is still blocked on the gate we hold.
  EXPECT_FALSE(done.load());
  gate = true;
  dev.stream_synchronize(s);
  EXPECT_TRUE(done.load());
}

TEST(Stream, FifoOrderWithinStream) {
  Device dev(test_device());
  const Stream s = dev.create_stream();
  std::atomic<bool> gate{false};
  std::atomic<int> count{0};
  int order[3] = {-1, -1, -1};
  dev.launch("gate", {1, 1, 0, false, s},
             [&](KernelCtx&) { spin_until(gate); });
  for (int k = 0; k < 3; ++k) {
    dev.launch("step", {1, 1, 0, false, s},
               [&, k](KernelCtx&) { order[count.fetch_add(1)] = k; });
  }
  // All three are queued behind the gate: none may have run yet.
  EXPECT_EQ(count.load(), 0);
  gate = true;
  dev.stream_synchronize(s);
  ASSERT_EQ(count.load(), 3);
  for (int k = 0; k < 3; ++k) EXPECT_EQ(order[k], k);
}

TEST(Stream, SynchronizeJoinsAllStreams) {
  Device dev(test_device());
  const Stream s1 = dev.create_stream();
  const Stream s2 = dev.create_stream();
  std::atomic<bool> gate{false};
  std::atomic<bool> done1{false}, done2{false};
  dev.launch("work1", {1, 1, 0, false, s1}, [&](KernelCtx&) {
    spin_until(gate);
    done1 = true;
  });
  dev.launch("work2", {1, 1, 0, false, s2}, [&](KernelCtx&) {
    spin_until(gate);
    done2 = true;
  });
  // Both kernels are gated: their side effects must not be visible yet.
  EXPECT_FALSE(done1.load());
  EXPECT_FALSE(done2.load());
  gate = true;
  dev.synchronize();
  // hipDeviceSynchronize joins every stream: both effects are now visible.
  EXPECT_TRUE(done1.load());
  EXPECT_TRUE(done2.load());
}

TEST(Stream, RecordThenElapsedBeforeSyncThrows) {
  Device dev(test_device());
  const Stream s = dev.create_stream();
  std::atomic<bool> gate{false};
  dev.launch("gate", {1, 1, 0, false, s},
             [&](KernelCtx&) { spin_until(gate); });
  Event ev = dev.create_event();
  dev.record_event(ev, s);
  // The record is queued behind the gated kernel: the event is issued but
  // not complete, so reading the timestamp must be diagnosed.
  EXPECT_FALSE(dev.event_query(ev));
  EXPECT_THROW(dev.elapsed_ms(ev, ev), Error);
  gate = true;
  dev.stream_synchronize(s);
  EXPECT_TRUE(dev.event_query(ev));
  EXPECT_DOUBLE_EQ(dev.elapsed_ms(ev, ev), 0.0);
}

TEST(Stream, CrossStreamIndependence) {
  Device dev(test_device());
  const Stream s1 = dev.create_stream();
  const Stream s2 = dev.create_stream();
  std::atomic<bool> gate{false};
  std::atomic<bool> done1{false};
  dev.launch("blocked", {1, 1, 0, false, s1}, [&](KernelCtx&) {
    spin_until(gate);
    done1 = true;
  });
  // s2 makes progress while s1 is stuck: its copy completes and its event
  // fires without any device-wide join.
  int* d = dev.malloc_n<int>(4);
  const int vals[4] = {7, 8, 9, 10};
  dev.memcpy_h2d_async(d, vals, sizeof(vals), s2);
  Event ev2 = dev.create_event();
  dev.record_event(ev2, s2);
  const auto t0 = std::chrono::steady_clock::now();
  while (!dev.event_query(ev2) &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(60)) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(dev.event_query(ev2));
  EXPECT_FALSE(done1.load());
  gate = true;
  dev.synchronize();
  EXPECT_TRUE(done1.load());
  dev.free(d);
}

TEST(Stream, StreamWaitEventOrdering) {
  Device dev(test_device());
  const Stream s1 = dev.create_stream();
  const Stream s2 = dev.create_stream();
  int* d = dev.malloc_n<int>(4);
  const int vals[4] = {1, 2, 3, 4};
  dev.memcpy_h2d(d, vals, sizeof(vals));

  std::atomic<bool> gate{false};
  dev.launch("gate", {1, 1, 0, false, s1},
             [&](KernelCtx&) { spin_until(gate); });
  Event ev1 = dev.create_event();
  dev.record_event(ev1, s1);

  // s2 must not start its copy until s1 reaches ev1 (which is stuck behind
  // the gated kernel).
  dev.stream_wait_event(s2, ev1);
  int back[4] = {};
  dev.memcpy_d2h_async(back, d, sizeof(back), s2);
  Event ev2 = dev.create_event();
  dev.record_event(ev2, s2);
  EXPECT_FALSE(dev.event_query(ev2));

  gate = true;
  dev.synchronize();
  EXPECT_TRUE(dev.event_query(ev1));
  EXPECT_TRUE(dev.event_query(ev2));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(back[i], vals[i]);
  dev.free(d);
}

TEST(Stream, WaitOnUnrecordedEventIsNoOp) {
  Device dev(test_device());
  const Stream s = dev.create_stream();
  Event never = dev.create_event();
  EXPECT_NO_THROW(dev.stream_wait_event(s, never));
  EXPECT_NO_THROW(dev.synchronize());
}

TEST(Stream, AsyncH2DSnapshotsPageableSource) {
  Device dev(test_device());
  const Stream s = dev.create_stream();
  int* d = dev.malloc_n<int>(1);
  std::atomic<bool> gate{false};
  dev.launch("gate", {1, 1, 0, false, s},
             [&](KernelCtx&) { spin_until(gate); });
  int host = 42;
  dev.memcpy_h2d_async(d, &host, sizeof(int), s);
  // hipMemcpyAsync from pageable memory captures the source at call time:
  // overwriting it before the copy actually runs must not change the result.
  host = -1;
  gate = true;
  dev.stream_synchronize(s);
  int back = 0;
  dev.memcpy_d2h(&back, d, sizeof(int));
  EXPECT_EQ(back, 42);
  dev.free(d);
}

TEST(Stream, DeferredKernelErrorSurfacesAtSynchronize) {
  Device dev(test_device());
  const Stream s = dev.create_stream();
  dev.launch("boom", {1, 1, 0, false, s},
             [](KernelCtx&) { throw Error("deferred kernel bug"); });
  EXPECT_THROW(dev.stream_synchronize(s), Error);
  // The error was consumed; the stream remains usable.
  std::atomic<bool> ran{false};
  dev.launch("ok", {1, 1, 0, false, s}, [&](KernelCtx&) { ran = true; });
  EXPECT_NO_THROW(dev.stream_synchronize(s));
  EXPECT_TRUE(ran.load());
}

TEST(Stream, DefaultStreamSynchronizesWithAsyncStreams) {
  // HIP null-stream semantics: an op on stream 0 joins pending work first.
  Device dev(test_device());
  const Stream s = dev.create_stream();
  std::atomic<int> last{0};
  dev.launch("async", {1, 1, 0, false, s}, [&](KernelCtx&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    last = 1;
  });
  dev.launch("legacy", {1, 1, 0, false, {}}, [&](KernelCtx&) { last = 2; });
  // The legacy-stream kernel ran after the async one completed.
  EXPECT_EQ(last.load(), 2);
}

TEST(Stream, EagerModeRunsInline) {
  Device dev(test_device(), nullptr, &ThreadPool::shared(), StreamMode::kEager);
  ASSERT_EQ(dev.stream_mode(), StreamMode::kEager);
  const Stream s = dev.create_stream();
  std::atomic<bool> done{false};
  dev.launch("k", {1, 1, 0, false, s}, [&](KernelCtx&) { done = true; });
  // Eager fallback: the launch itself ran the kernel.
  EXPECT_TRUE(done.load());
  Event a = dev.create_event();
  Event b = dev.create_event();
  dev.record_event(a, s);
  dev.record_event(b, s);
  // Events complete at record time; no synchronize needed.
  EXPECT_GE(dev.elapsed_ms(a, b), 0.0);
}

TEST(Stream, EagerAndAsyncProduceIdenticalResults) {
  // The same launch/copy sequence, both modes: bit-identical output.
  auto run = [](StreamMode mode) {
    Device dev(test_device(), nullptr, &ThreadPool::shared(), mode);
    const Stream s = dev.create_stream();
    std::vector<float> host(256);
    for (int i = 0; i < 256; ++i) host[i] = 0.5f * i;
    float* d = dev.malloc_n<float>(256);
    dev.memcpy_h2d_async(d, host.data(), host.size() * sizeof(float), s);
    dev.launch("scale", {2, 128, 0, false, s}, [&](KernelCtx& ctx) {
      d[ctx.global_idx()] *= 3.0f;
    });
    std::vector<float> out(256);
    dev.memcpy_d2h_async(out.data(), d, out.size() * sizeof(float), s);
    dev.stream_synchronize(s);
    dev.free(d);
    return out;
  };
  EXPECT_EQ(run(StreamMode::kAsync), run(StreamMode::kEager));
}

}  // namespace
}  // namespace qhip::vgpu
