#include "src/vgpu/device.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "src/base/error.h"

namespace qhip::vgpu {
namespace {

TEST(DeviceProps, Presets) {
  const DeviceProps mi = mi250x_gcd();
  EXPECT_EQ(mi.warp_size, 64u);
  EXPECT_EQ(mi.global_mem_bytes, 128ull << 30);
  EXPECT_NEAR(mi.mem_bw_gibps, 1638.4, 1e-9);

  const DeviceProps a = a100();
  EXPECT_EQ(a.warp_size, 32u);
  EXPECT_EQ(a.global_mem_bytes, 40ull << 30);
  EXPECT_NEAR(a.mem_bw_gibps, 1448.0, 1e-9);
}

TEST(Device, MallocFreeAndStats) {
  Device dev(test_device());
  void* p = dev.malloc(1024);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(dev.stats().bytes_in_use, 1024u);
  EXPECT_EQ(dev.live_allocations(), 1u);
  dev.free(p);
  EXPECT_EQ(dev.stats().bytes_in_use, 0u);
  EXPECT_EQ(dev.live_allocations(), 0u);
  EXPECT_EQ(dev.stats().allocs, 1u);
  EXPECT_EQ(dev.stats().frees, 1u);
  EXPECT_EQ(dev.stats().peak_bytes, 1024u);
}

TEST(Device, OutOfMemory) {
  Device dev(test_device());  // 1 GiB
  void* p = dev.malloc(900ull << 20);
  EXPECT_THROW(dev.malloc(200ull << 20), Error);
  dev.free(p);
  EXPECT_NO_THROW(dev.free(dev.malloc(200ull << 20)));
}

TEST(Device, MallocChargesAllocationGranularity) {
  Device dev(test_device());
  void* p = dev.malloc(100);
  // Capacity accounting uses the 256-byte allocation granule, not the
  // requested size.
  EXPECT_EQ(dev.stats().bytes_in_use, 256u);
  EXPECT_EQ(dev.stats().peak_bytes, 256u);
  dev.free(p);
  EXPECT_EQ(dev.stats().bytes_in_use, 0u);
}

TEST(Device, OutOfMemoryAtRoundedBoundary) {
  Device dev(test_device());  // 1 GiB, a multiple of the 256 B granule
  const std::size_t cap = dev.props().global_mem_bytes;
  // 100 B short of capacity by request, but the rounded charge fills the
  // device exactly — the next byte must not fit. (Regression: requested-size
  // accounting left phantom headroom here.)
  void* p = dev.malloc(cap - 100);
  EXPECT_EQ(dev.stats().bytes_in_use, cap);
  EXPECT_THROW(dev.malloc(1), Error);
  dev.free(p);
  EXPECT_NO_THROW(dev.free(dev.malloc(1)));
}

TEST(Device, FreeForeignPointerThrows) {
  Device dev(test_device());
  int x;
  EXPECT_THROW(dev.free(&x), Error);
  EXPECT_NO_THROW(dev.free(nullptr));
}

TEST(Device, ZeroByteMallocThrows) {
  Device dev(test_device());
  EXPECT_THROW(dev.malloc(0), Error);
}

TEST(Device, MemcpyRoundTrip) {
  Device dev(test_device());
  std::vector<int> host(256);
  std::iota(host.begin(), host.end(), 0);
  int* d = dev.malloc_n<int>(256);
  dev.memcpy_h2d(d, host.data(), 256 * sizeof(int));
  std::vector<int> back(256, -1);
  dev.memcpy_d2h(back.data(), d, 256 * sizeof(int));
  EXPECT_EQ(host, back);
  EXPECT_EQ(dev.stats().h2d_bytes, 1024u);
  EXPECT_EQ(dev.stats().d2h_bytes, 1024u);
  dev.free(d);
}

TEST(Device, MemcpyBoundsChecked) {
  Device dev(test_device());
  std::vector<int> host(16);
  int* d = dev.malloc_n<int>(8);
  EXPECT_THROW(dev.memcpy_h2d(d, host.data(), 16 * sizeof(int)), Error);
  EXPECT_THROW(dev.memcpy_d2h(host.data(), d + 4, 8 * sizeof(int)), Error);
  EXPECT_THROW(dev.memcpy_h2d(host.data(), host.data(), 4), Error);  // dst not device
  dev.free(d);
}

TEST(Device, MemcpyInteriorRangeAllowed) {
  Device dev(test_device());
  int* d = dev.malloc_n<int>(8);
  int v = 42;
  EXPECT_NO_THROW(dev.memcpy_h2d(d + 4, &v, sizeof(int)));
  int back = 0;
  EXPECT_NO_THROW(dev.memcpy_d2h(&back, d + 4, sizeof(int)));
  EXPECT_EQ(back, 42);
  dev.free(d);
}

TEST(Device, MemcpyD2D) {
  Device dev(test_device());
  int* a = dev.malloc_n<int>(4);
  int* b = dev.malloc_n<int>(4);
  const int vals[4] = {1, 2, 3, 4};
  dev.memcpy_h2d(a, vals, sizeof(vals));
  dev.memcpy_d2d(b, a, sizeof(vals));
  int back[4] = {};
  dev.memcpy_d2h(back, b, sizeof(vals));
  EXPECT_EQ(back[3], 4);
  EXPECT_EQ(dev.stats().d2d_copies, 1u);
  EXPECT_EQ(dev.stats().d2d_bytes, sizeof(vals));
  dev.free(a);
  dev.free(b);
}

TEST(Device, StreamsHaveUniqueIds) {
  Device dev(test_device());
  const Stream s1 = dev.create_stream();
  const Stream s2 = dev.create_stream();
  EXPECT_NE(s1.id, s2.id);
  EXPECT_NE(s1.id, 0);  // 0 is the default stream
  dev.synchronize();
  dev.stream_synchronize(s1);
}

TEST(Device, LaunchValidatesConfig) {
  Device dev(test_device());
  const auto noop = [](KernelCtx&) {};
  EXPECT_THROW(dev.launch("k", {0, 1, 0, false, {}}, noop), Error);
  EXPECT_THROW(dev.launch("k", {1, 100000, 0, false, {}}, noop), Error);
  EXPECT_THROW(dev.launch("k", {1, 1, 1u << 30, false, {}}, noop), Error);
  EXPECT_NO_THROW(dev.launch("k", {1, 1, 0, false, {}}, noop));
  EXPECT_EQ(dev.stats().kernel_launches, 1u);
}

TEST(Device, TracerRecordsKernelAndMemcpy) {
  Tracer tracer;
  Device dev(test_device(), &tracer);
  int* d = dev.malloc_n<int>(4);
  const int v[4] = {};
  dev.memcpy_h2d_async(d, v, sizeof(v), dev.create_stream());
  dev.launch("MyKernel", {2, 4, 0, false, {}}, [](KernelCtx&) {});
  dev.free(d);

  const auto sum = tracer.summary();
  bool saw_kernel = false, saw_memcpy = false;
  for (const auto& row : sum) {
    if (row.name == "MyKernel") saw_kernel = true;
    if (row.name == "hipMemcpyAsync(HtoD)") saw_memcpy = true;
  }
  EXPECT_TRUE(saw_kernel);
  EXPECT_TRUE(saw_memcpy);
}

TEST(Device, EventsMeasureElapsedTime) {
  Device dev(test_device());
  Event start = dev.create_event();
  Event stop = dev.create_event();
  dev.record_event(start);
  // A kernel long enough to register on the microsecond clock.
  dev.launch("spin", {64, 64, 0, false, {}}, [](KernelCtx& ctx) {
    volatile int x = 0;
    for (int i = 0; i < 100; ++i) x = x + i;
    (void)ctx;
  });
  dev.record_event(stop);
  const double ms = dev.elapsed_ms(start, stop);
  EXPECT_GE(ms, 0.0);
  EXPECT_LT(ms, 10000.0);
}

TEST(Device, EventDoubleRecordLastWins) {
  Device dev(test_device());
  Event a = dev.create_event();
  Event b = dev.create_event();
  dev.record_event(a);
  dev.record_event(b);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // Re-recording an event is well-defined: the LAST record supplies the
  // timestamp, so `a` now sits after `b` and the interval is negative.
  dev.record_event(a);
  EXPECT_LT(dev.elapsed_ms(a, b), 0.0);
  EXPECT_GT(dev.elapsed_ms(b, a), 0.0);
}

TEST(Device, EventMisuseDiagnosed) {
  Device dev(test_device());
  Event never = dev.create_event();
  Event recorded = dev.create_event();
  dev.record_event(recorded);
  EXPECT_THROW(dev.elapsed_ms(never, recorded), Error);
  Event bogus;  // never created
  EXPECT_THROW(dev.record_event(bogus), Error);
  EXPECT_THROW(dev.elapsed_ms(bogus, recorded), Error);
}

TEST(Device, LeakedAllocationsFreedOnDestruction) {
  // Must not crash or leak host memory (checked by ASAN-style runs; here we
  // just exercise the path).
  Device dev(test_device());
  dev.malloc(4096);
  EXPECT_EQ(dev.live_allocations(), 1u);
}

}  // namespace
}  // namespace qhip::vgpu
