// FaultPlan: spec grammar round-trips and parse errors, injected malloc OOM
// (Nth occurrence and byte threshold), deferred stream faults on async
// streams, kernel faults, latency jitter, and the trace/stats bookkeeping
// every injection must leave behind.
#include "src/vgpu/fault.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/base/error.h"
#include "src/base/timer.h"
#include "src/prof/trace.h"
#include "src/vgpu/device.h"

namespace qhip::vgpu {
namespace {

std::size_t count_events(const Tracer& t, const std::string& name) {
  std::size_t n = 0;
  for (const TraceEvent& e : t.events()) {
    if (e.name == name) ++n;
  }
  return n;
}

TEST(FaultPlan, SpecRoundTrips) {
  const char* specs[] = {
      "malloc:nth=3",
      "malloc:over=1024",
      "malloc:every=2,count=5",
      "memcpy:every=10",
      "kernel:nth=1",
      "latency:ms=2.5",
      "latency:every=4,ms=2",
      "malloc:nth=3;memcpy:every=10;latency:every=4,ms=2",
  };
  for (const char* spec : specs) {
    const FaultPlan plan = FaultPlan::parse(spec);
    // Canonical form re-parses to itself (fixed key order, %g for ms).
    const std::string canon = plan.to_spec();
    EXPECT_EQ(FaultPlan::parse(canon).to_spec(), canon) << spec;
  }
  // Canonical key order is nth,every,over,count,ms regardless of input order.
  EXPECT_EQ(FaultPlan::parse("latency:ms=2,every=4").to_spec(),
            "latency:every=4,ms=2");
  EXPECT_EQ(FaultPlan::parse("malloc:count=5,every=2").to_spec(),
            "malloc:every=2,count=5");
}

TEST(FaultPlan, EmptySpec) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_EQ(FaultPlan::parse("").to_spec(), "");
  FaultPlan none;
  EXPECT_FALSE(none.should_fail_malloc(1 << 20));
  EXPECT_FALSE(none.should_fail_memcpy());
  EXPECT_FALSE(none.should_fail_kernel());
  EXPECT_EQ(none.latency_ms(), 0.0);
}

TEST(FaultPlan, ParseErrors) {
  EXPECT_THROW(FaultPlan::parse("frobnicate:nth=1"), Error);  // unknown op
  EXPECT_THROW(FaultPlan::parse("malloc:bogus=1"), Error);    // unknown param
  EXPECT_THROW(FaultPlan::parse("malloc:nth"), Error);        // not key=value
  EXPECT_THROW(FaultPlan::parse("malloc"), Error);            // no trigger
  EXPECT_THROW(FaultPlan::parse("malloc:nth=0"), Error);
  EXPECT_THROW(FaultPlan::parse("malloc:nth=2,every=3"), Error);  // exclusive
  EXPECT_THROW(FaultPlan::parse("memcpy:over=100"), Error);  // malloc-only
  EXPECT_THROW(FaultPlan::parse("latency:every=2"), Error);  // needs ms
  EXPECT_THROW(FaultPlan::parse("malloc:nth=1,ms=2"), Error);  // latency-only
}

TEST(FaultPlan, FromEnvReadsQhipFaultSpec) {
  ::setenv("QHIP_FAULT_SPEC", "malloc:nth=2;latency:ms=1,every=3", 1);
  const auto plan = FaultPlan::from_env();
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->to_spec(), "malloc:nth=2;latency:every=3,ms=1");
  ::unsetenv("QHIP_FAULT_SPEC");
  EXPECT_EQ(FaultPlan::from_env(), nullptr);
}

TEST(FaultPlan, NthFiresOnceEveryFiresRepeatedly) {
  FaultPlan plan = FaultPlan::parse("malloc:nth=2;memcpy:every=3");
  EXPECT_FALSE(plan.should_fail_malloc(1));
  EXPECT_TRUE(plan.should_fail_malloc(1));   // 2nd occurrence
  EXPECT_FALSE(plan.should_fail_malloc(1));  // nth fires exactly once
  for (int round = 0; round < 3; ++round) {
    EXPECT_FALSE(plan.should_fail_memcpy());
    EXPECT_FALSE(plan.should_fail_memcpy());
    EXPECT_TRUE(plan.should_fail_memcpy());  // occurrences 3, 6, 9
  }
  EXPECT_EQ(plan.stats().malloc_oom, 1u);
  EXPECT_EQ(plan.stats().memcpy_faults, 3u);
  EXPECT_EQ(plan.stats().total(), 4u);
}

TEST(FaultPlan, CountCapsInjections) {
  FaultPlan plan = FaultPlan::parse("kernel:every=1,count=2");
  EXPECT_TRUE(plan.should_fail_kernel());
  EXPECT_TRUE(plan.should_fail_kernel());
  EXPECT_FALSE(plan.should_fail_kernel());  // cap reached
  EXPECT_EQ(plan.stats().kernel_faults, 2u);
}

TEST(DeviceFaults, MallocFailsOnNthAllocationWithOomCode) {
  Tracer tracer;
  Device dev(test_device(), &tracer);
  dev.set_fault_plan(
      std::make_shared<FaultPlan>(FaultPlan::parse("malloc:nth=2").rules()));
  void* a = dev.malloc(1024);
  try {
    dev.malloc(1024);
    FAIL() << "expected injected OOM";
  } catch (const CodedError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOutOfMemory);
  }
  // The device stays usable, and the injection is visible in stats + trace.
  void* b = dev.malloc(1024);
  EXPECT_EQ(dev.stats().faults_injected, 1u);
  EXPECT_EQ(count_events(tracer, "fault/malloc_oom"), 1u);
  dev.free(a);
  dev.free(b);
}

TEST(DeviceFaults, MallocFailsAboveByteThreshold) {
  Device dev(test_device());
  dev.set_fault_plan(
      std::make_shared<FaultPlan>(FaultPlan::parse("malloc:over=4096").rules()));
  void* small = dev.malloc(4096);  // not over the threshold
  EXPECT_THROW(dev.malloc(4097), CodedError);
  EXPECT_THROW(dev.malloc(1 << 20), CodedError);
  dev.free(small);
  EXPECT_EQ(dev.live_allocations(), 0u);
}

TEST(DeviceFaults, AsyncMemcpyFaultIsDeferredToSynchronize) {
  Tracer tracer;
  Device dev(test_device(), &tracer);
  dev.set_fault_plan(
      std::make_shared<FaultPlan>(FaultPlan::parse("memcpy:nth=1").rules()));
  void* d = dev.malloc(64);
  const Stream s = dev.create_stream();
  char host[64] = {};
  // Enqueue returns immediately; the injected error surfaces at the join,
  // exactly like a real deferred HIP error.
  dev.memcpy_h2d_async(d, host, sizeof(host), s);
  try {
    dev.stream_synchronize(s);
    FAIL() << "expected deferred memcpy fault";
  } catch (const CodedError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBackendFault);
  }
  // Error consumed: the stream is clean again and later ops succeed.
  dev.memcpy_h2d_async(d, host, sizeof(host), s);
  EXPECT_NO_THROW(dev.stream_synchronize(s));
  EXPECT_EQ(count_events(tracer, "fault/memcpy"), 1u);
  dev.free(d);
}

TEST(DeviceFaults, KernelFaultOnAsyncStream) {
  Tracer tracer;
  Device dev(test_device(), &tracer);
  dev.set_fault_plan(
      std::make_shared<FaultPlan>(FaultPlan::parse("kernel:nth=2").rules()));
  const Stream s = dev.create_stream();
  dev.launch("ok_kernel", {1, 1, 0, false, s}, [](KernelCtx&) {});
  EXPECT_NO_THROW(dev.stream_synchronize(s));
  dev.launch("doomed_kernel", {1, 1, 0, false, s}, [](KernelCtx&) {});
  EXPECT_THROW(dev.stream_synchronize(s), CodedError);
  EXPECT_EQ(count_events(tracer, "fault/kernel"), 1u);
  EXPECT_EQ(dev.stats().kernel_launches, 2u);
}

TEST(DeviceFaults, LatencyInjectionStretchesOpsAndIsTraced) {
  Tracer tracer;
  Device dev(test_device(), &tracer);
  dev.set_fault_plan(std::make_shared<FaultPlan>(
      FaultPlan::parse("latency:ms=5,every=1").rules()));
  void* d = dev.malloc(64);
  char host[64] = {};
  Timer t;
  dev.memcpy_h2d(d, host, sizeof(host));  // sync: delay lands inline
  EXPECT_GE(t.seconds(), 0.004);
  EXPECT_GE(count_events(tracer, "fault/latency"), 1u);
  EXPECT_GE(dev.stats().faults_injected, 1u);
  const auto plan = dev.fault_plan();
  EXPECT_GE(plan->stats().latency_injections, 1u);
  dev.free(d);
}

TEST(DeviceFaults, ConstructorInstallsEnvPlan) {
  ::setenv("QHIP_FAULT_SPEC", "malloc:nth=1", 1);
  Device dev(test_device());
  ::unsetenv("QHIP_FAULT_SPEC");
  ASSERT_NE(dev.fault_plan(), nullptr);
  EXPECT_THROW(dev.malloc(64), CodedError);
  // Removing the plan restores normal behaviour.
  dev.set_fault_plan(nullptr);
  EXPECT_NO_THROW(dev.free(dev.malloc(64)));
}

}  // namespace
}  // namespace qhip::vgpu
