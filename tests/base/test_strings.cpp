#include "src/base/strings.h"

#include <gtest/gtest.h>

#include "src/base/error.h"

namespace qhip {
namespace {

TEST(Strings, SplitBasic) {
  const auto t = split("a bb  ccc");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "bb");
  EXPECT_EQ(t[2], "ccc");
}

TEST(Strings, SplitTabsAndEdges) {
  const auto t = split("\t x\t\ty  ");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], "x");
  EXPECT_EQ(t[1], "y");
}

TEST(Strings, SplitEmpty) {
  EXPECT_TRUE(split("").empty());
  EXPECT_TRUE(split("   \t ").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("\t\n hi \r"), "hi");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("hipify", "hip"));
  EXPECT_FALSE(starts_with("hi", "hip"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("CNot"), "cnot");
  EXPECT_EQ(to_lower("X_1_2"), "x_1_2");
}

TEST(Strings, ParseUint) {
  EXPECT_EQ(parse_uint("30", "t"), 30ull);
  EXPECT_EQ(parse_uint("0", "t"), 0ull);
  EXPECT_THROW(parse_uint("-3", "t"), Error);
  EXPECT_THROW(parse_uint("3x", "t"), Error);
  EXPECT_THROW(parse_uint("", "t"), Error);
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("0.25", "t"), 0.25);
  EXPECT_DOUBLE_EQ(parse_double("-1e-3", "t"), -1e-3);
  EXPECT_THROW(parse_double("abc", "t"), Error);
  EXPECT_THROW(parse_double("1.5z", "t"), Error);
}

TEST(Strings, ParseErrorsCarryContext) {
  try {
    parse_uint("zz", "file.txt:7");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("file.txt:7"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("zz"), std::string::npos);
  }
}

TEST(Strings, Strfmt) {
  EXPECT_EQ(strfmt("q=%u f=%0.2f", 30u, 1.5), "q=30 f=1.50");
  EXPECT_EQ(strfmt("%s", ""), "");
}

}  // namespace
}  // namespace qhip
