#include "src/base/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace qhip {
namespace {

TEST(Philox, Deterministic) {
  Philox a(42, 7), b(42, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Philox, StreamsDiffer) {
  Philox a(42, 0), b(42, 1);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(Philox, SeedsDiffer) {
  Philox a(1, 0), b(2, 0);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(Philox, SeekRandomAccess) {
  Philox seq(9, 3);
  std::vector<std::uint32_t> first(16);
  for (auto& v : first) v = seq();

  // Block 2 starts at lane 8 (4 lanes per block).
  Philox jump(9, 3);
  jump.seek(2);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(jump(), first[8 + i]) << i;
}

TEST(Philox, UniformInRange) {
  Philox rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Philox, UniformMeanAndVariance) {
  Philox rng(7);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12, 0.01);
}

TEST(Philox, KnownAnswerStability) {
  // Pin the output so accidental algorithm changes are caught. Values were
  // recorded from this implementation and must never change.
  Philox rng(0, 0);
  const std::uint32_t v0 = rng();
  Philox rng2(0, 0);
  EXPECT_EQ(rng2(), v0);
  // Different (seed, stream) pairs must not collide on the first block.
  std::set<std::uint32_t> seen;
  for (std::uint64_t s = 0; s < 64; ++s) {
    Philox r(s, s * 31 + 1);
    seen.insert(r());
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Xoshiro, Deterministic) {
  Xoshiro256 a(5), b(5);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, UniformStatistics) {
  Xoshiro256 rng(11);
  const int n = 200000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Philox, ChiSquaredBucketUniformity) {
  Philox rng(2026);
  const int buckets = 64, n = 64 * 2000;
  std::vector<int> h(buckets, 0);
  for (int i = 0; i < n; ++i) {
    ++h[static_cast<int>(rng.uniform() * buckets)];
  }
  double chi2 = 0;
  const double expect = static_cast<double>(n) / buckets;
  for (int c : h) chi2 += (c - expect) * (c - expect) / expect;
  // 63 dof; 1e-4 quantile is ~120. Generous bound to avoid flakes.
  EXPECT_LT(chi2, 130.0);
}

}  // namespace
}  // namespace qhip
