// Coverage for the small base utilities: Timer, aligned allocation.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/base/aligned.h"
#include "src/base/timer.h"
#include "src/base/types.h"

namespace qhip {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.seconds(), 0.008);
  EXPECT_LT(t.seconds(), 5.0);
  EXPECT_GE(t.micros(), 8000u);
}

TEST(Timer, ResetRestarts) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.reset();
  EXPECT_LT(t.seconds(), 0.004);
}

TEST(Timer, NowMicrosMonotone) {
  const auto a = Timer::now_micros();
  const auto b = Timer::now_micros();
  EXPECT_LE(a, b);
}

TEST(Aligned, VectorsAreCacheLineAligned) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    std::vector<cplx32, AlignedAllocator<cplx32>> v(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kAlign, 0u) << n;
  }
}

TEST(Aligned, AllocatorEquality) {
  AlignedAllocator<float> a;
  AlignedAllocator<double> b;
  EXPECT_TRUE(a == b);  // stateless: all instances interchangeable
}

TEST(Types, PrecisionHelpers) {
  EXPECT_EQ(precision_of<float>(), Precision::kSingle);
  EXPECT_EQ(precision_of<double>(), Precision::kDouble);
  EXPECT_EQ(amp_bytes(Precision::kSingle), 8u);
  EXPECT_EQ(amp_bytes(Precision::kDouble), 16u);
  EXPECT_STREQ(to_string(Precision::kSingle), "single");
  EXPECT_STREQ(to_string(Precision::kDouble), "double");
}

}  // namespace
}  // namespace qhip
