#include "src/base/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "src/base/error.h"

namespace qhip {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> v(100, 0);
  pool.parallel_for(100, [&](index_t i) { v[i] = static_cast<int>(i); });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(ThreadPool, CoversAllIndicesOnce) {
  for (unsigned nt : {1u, 2u, 3u, 4u, 7u}) {
    ThreadPool pool(nt);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(1000, [&](index_t i) { hits[i].fetch_add(1); });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, RangesArePartition) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<index_t, index_t>> ranges;
  pool.parallel_ranges(103, [&](unsigned, index_t b, index_t e) {
    std::lock_guard lk(mu);
    ranges.emplace_back(b, e);
  });
  std::sort(ranges.begin(), ranges.end());
  index_t expect_begin = 0;
  for (auto [b, e] : ranges) {
    EXPECT_EQ(b, expect_begin);
    EXPECT_LE(b, e);
    expect_begin = e;
  }
  EXPECT_EQ(expect_begin, 103u);
}

TEST(ThreadPool, EmptyTotalIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_ranges(0, [&](unsigned, index_t, index_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SmallTotalFewerThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](index_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](index_t i) {
                          if (i == 57) throw Error("boom");
                        }),
      Error);
  // Pool must still be usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(100, [&](index_t i) { sum.fetch_add(static_cast<long>(i)); });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, SharedPoolExists) {
  auto& p = ThreadPool::shared();
  EXPECT_GE(p.num_threads(), 1u);
  std::atomic<int> c{0};
  p.parallel_for(17, [&](index_t) { c.fetch_add(1); });
  EXPECT_EQ(c.load(), 17);
}

}  // namespace
}  // namespace qhip
