#include "src/base/bits.h"

#include <gtest/gtest.h>

namespace qhip {
namespace {

TEST(Bits, Pow2AndMask) {
  EXPECT_EQ(pow2(0), 1u);
  EXPECT_EQ(pow2(5), 32u);
  EXPECT_EQ(pow2(63), index_t{1} << 63);
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(3), 0b111u);
  EXPECT_EQ(low_mask(64), ~index_t{0});
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(Bits, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(32), 5u);
  EXPECT_EQ(log2_exact(index_t{1} << 40), 40u);
}

TEST(Bits, ExpandBitsSingle) {
  // Insert a zero at position 1: b2 b1 b0 -> b2 b1 0 b0.
  const std::vector<qubit_t> pos = {1};
  EXPECT_EQ(expand_bits(0b000, pos), 0b0000u);
  EXPECT_EQ(expand_bits(0b001, pos), 0b0001u);
  EXPECT_EQ(expand_bits(0b010, pos), 0b0100u);
  EXPECT_EQ(expand_bits(0b011, pos), 0b0101u);
  EXPECT_EQ(expand_bits(0b111, pos), 0b1101u);
}

TEST(Bits, ExpandBitsMultiple) {
  // Insert zeros at positions 1 and 3 (ascending).
  const std::vector<qubit_t> pos = {1, 3};
  EXPECT_EQ(expand_bits(0b00, pos), 0b00000u);
  EXPECT_EQ(expand_bits(0b01, pos), 0b00001u);
  EXPECT_EQ(expand_bits(0b10, pos), 0b00100u);
  EXPECT_EQ(expand_bits(0b11, pos), 0b00101u);
  EXPECT_EQ(expand_bits(0b100, pos), 0b10000u);
}

TEST(Bits, ExpandBitsArrayMatchesVector) {
  const std::array<qubit_t, 3> a = {0, 2, 5};
  const std::vector<qubit_t> v = {0, 2, 5};
  for (index_t o = 0; o < 64; ++o) {
    EXPECT_EQ(expand_bits(o, a), expand_bits(o, v)) << o;
  }
}

TEST(Bits, ExpandCoversAllNonTargetIndices) {
  // expand_bits over all outer values enumerates exactly the indices with
  // zero bits at the target positions.
  const std::vector<qubit_t> targets = {0, 3};
  index_t mask = 0;
  for (qubit_t t : targets) mask |= pow2(t);
  std::vector<index_t> seen;
  for (index_t o = 0; o < 8; ++o) {  // 5-bit space minus 2 targets
    const index_t e = expand_bits(o, targets);
    EXPECT_EQ(e & mask, 0u);
    seen.push_back(e);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(Bits, ScatterMasks) {
  const auto masks = scatter_masks({1, 4});
  ASSERT_EQ(masks.size(), 4u);
  EXPECT_EQ(masks[0], 0u);
  EXPECT_EQ(masks[1], 0b00010u);
  EXPECT_EQ(masks[2], 0b10000u);
  EXPECT_EQ(masks[3], 0b10010u);
}

TEST(Bits, ScatterGatherRoundTrip) {
  const std::vector<qubit_t> pos = {2, 5, 7};
  for (index_t v = 0; v < 8; ++v) {
    EXPECT_EQ(gather_bits(scatter_bits(v, pos), pos), v);
  }
}

TEST(Bits, GatherIgnoresOtherBits) {
  const std::vector<qubit_t> pos = {1, 3};
  EXPECT_EQ(gather_bits(0b11111, pos), 0b11u);
  EXPECT_EQ(gather_bits(0b10101, pos), 0b00u);
  EXPECT_EQ(gather_bits(0b01010, pos), 0b11u);
}

TEST(Bits, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b001, 3), 0b100u);
  EXPECT_EQ(reverse_bits(0b110, 3), 0b011u);
  EXPECT_EQ(reverse_bits(0b1, 1), 0b1u);
  for (index_t v = 0; v < 256; ++v) {
    EXPECT_EQ(reverse_bits(reverse_bits(v, 8), 8), v);
  }
}

}  // namespace
}  // namespace qhip
