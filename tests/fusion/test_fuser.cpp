#include "src/fusion/fuser.h"

#include <gtest/gtest.h>

#include "src/base/error.h"
#include "src/base/rng.h"
#include "src/core/gates.h"

namespace qhip {
namespace {

// Random circuit over n qubits with both 1- and 2-qubit gates.
Circuit random_circuit(unsigned n, unsigned depth, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Circuit c;
  c.num_qubits = n;
  for (unsigned t = 0; t < depth; ++t) {
    std::vector<bool> used(n, false);
    for (unsigned q = 0; q < n; ++q) {
      if (used[q]) continue;
      const double r = rng.uniform();
      if (r < 0.3 && q + 1 < n && !used[q + 1]) {
        c.gates.push_back(gates::fs(t, q, q + 1, rng.uniform(), rng.uniform()));
        used[q] = used[q + 1] = true;
      } else if (r < 0.6) {
        c.gates.push_back(gates::rxy(t, q, rng.uniform() * 6, rng.uniform() * 3));
        used[q] = true;
      } else if (r < 0.8) {
        c.gates.push_back(gates::hz_1_2(t, q));
        used[q] = true;
      }
    }
  }
  c.validate();
  return c;
}

TEST(Fuser, PreservesUnitaryForAllLimits) {
  const Circuit c = random_circuit(5, 8, 42);
  const CMatrix want = circuit_unitary(c);
  for (unsigned f = 1; f <= 6; ++f) {
    const FusionResult r = fuse_circuit(c, {f});
    EXPECT_LT(circuit_unitary(r.circuit).distance(want), 1e-10)
        << "max_fused=" << f;
  }
}

TEST(Fuser, PreservesUnitaryManySeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Circuit c = random_circuit(4, 6, seed);
    const CMatrix want = circuit_unitary(c);
    const FusionResult r = fuse_circuit(c, {3});
    EXPECT_LT(circuit_unitary(r.circuit).distance(want), 1e-10) << seed;
  }
}

TEST(Fuser, RespectsWidthLimit) {
  const Circuit c = random_circuit(6, 12, 7);
  for (unsigned f = 2; f <= 4; ++f) {
    const FusionResult r = fuse_circuit(c, {f});
    for (const auto& g : r.circuit.gates) {
      EXPECT_LE(g.num_targets(), f);
    }
    for (const auto& [w, n] : r.stats.width_histogram) {
      EXPECT_LE(w, f);
      EXPECT_GT(n, 0u);
    }
  }
}

TEST(Fuser, ReducesGateCount) {
  const Circuit c = random_circuit(6, 12, 8);
  const FusionResult r2 = fuse_circuit(c, {2});
  const FusionResult r4 = fuse_circuit(c, {4});
  EXPECT_LT(r2.circuit.size(), c.size());
  // Larger limits fuse at least as aggressively.
  EXPECT_LE(r4.circuit.size(), r2.circuit.size());
  EXPECT_EQ(r4.stats.input_gates, c.size());
  EXPECT_EQ(r4.stats.output_gates, r4.circuit.size());
}

TEST(Fuser, FusedMatricesAreUnitary) {
  const Circuit c = random_circuit(6, 10, 9);
  const FusionResult r = fuse_circuit(c, {4});
  for (const auto& g : r.circuit.gates) {
    EXPECT_TRUE(g.matrix.is_unitary(1e-9)) << g.name;
  }
}

TEST(Fuser, SingleQubitChainFusesToOneGate) {
  Circuit c;
  c.num_qubits = 1;
  for (unsigned t = 0; t < 10; ++t) c.gates.push_back(gates::t(t, 0));
  // Unlimited window: the whole chain collapses into a single gate.
  const FusionResult r = fuse_circuit(c, {2, /*window_moments=*/0});
  EXPECT_EQ(r.circuit.size(), 1u);
  // t^8 = identity; t^10 = s.
  EXPECT_LT(r.circuit.gates[0].matrix.distance(gates::s(0, 0).matrix), 1e-12);
}

TEST(Fuser, WindowBoundsTemporalSpan) {
  Circuit c;
  c.num_qubits = 1;
  for (unsigned t = 0; t < 12; ++t) c.gates.push_back(gates::t(t, 0));
  // Window of 4 moments: 12 T gates emit as ceil(12/4) = 3 fused gates,
  // and the product is still correct (t^12 = z * s = t^4... checked via
  // unitary equivalence).
  const FusionResult r = fuse_circuit(c, {2, /*window_moments=*/4});
  EXPECT_EQ(r.circuit.size(), 3u);
  const CMatrix want = circuit_unitary(c);
  EXPECT_LT(circuit_unitary(r.circuit).distance(want), 1e-12);
}

TEST(Fuser, WindowedFusionPreservesUnitary) {
  const Circuit c = random_circuit(5, 12, 99);
  const CMatrix want = circuit_unitary(c);
  for (unsigned w : {1u, 2u, 3u, 8u}) {
    const FusionResult r = fuse_circuit(c, {4, w});
    EXPECT_LT(circuit_unitary(r.circuit).distance(want), 1e-9) << "window " << w;
  }
}

TEST(Fuser, ParallelSingleQubitGatesFuseViaTensor) {
  // h(q0) and h(q1) with a cz: all fit in one 2-qubit fused gate.
  Circuit c;
  c.num_qubits = 2;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::h(0, 1));
  c.gates.push_back(gates::cz(1, 0, 1));
  const FusionResult r = fuse_circuit(c, {2});
  EXPECT_EQ(r.circuit.size(), 1u);
  EXPECT_LT(circuit_unitary(r.circuit).distance(circuit_unitary(c)), 1e-12);
}

TEST(Fuser, MeasurementActsAsBarrier) {
  Circuit c;
  c.num_qubits = 2;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::measure(1, {0}));
  c.gates.push_back(gates::x(2, 0));
  const FusionResult r = fuse_circuit(c, {2});
  // h | m | x cannot fuse across the measurement.
  ASSERT_EQ(r.circuit.size(), 3u);
  EXPECT_EQ(r.circuit.gates[1].name, "m");
  EXPECT_EQ(r.circuit.gates[0].name, "fused");
  EXPECT_EQ(r.circuit.gates[2].name, "fused");
}

TEST(Fuser, EmissionOrderRespectsPerQubitProgramOrder) {
  // Force a block close and reopen on the same qubit; unitary check over a
  // deeper circuit is the strongest order test.
  const Circuit c = random_circuit(6, 20, 11);
  const CMatrix want = circuit_unitary(c);
  const FusionResult r = fuse_circuit(c, {2});
  EXPECT_LT(circuit_unitary(r.circuit).distance(want), 1e-9);
}

TEST(Fuser, ControlledGatesAreFolded) {
  Circuit c;
  c.num_qubits = 3;
  c.gates.push_back(gates::controlled(gates::x(0, 2), {0}));
  c.gates.push_back(gates::h(1, 1));
  const CMatrix want = circuit_unitary(c);
  const FusionResult r = fuse_circuit(c, {3});
  for (const auto& g : r.circuit.gates) EXPECT_TRUE(g.controls.empty());
  EXPECT_LT(circuit_unitary(r.circuit).distance(want), 1e-12);
}

TEST(Fuser, WideGatePassesThrough) {
  // A 3-qubit gate with max_fused = 2 must pass through unfused.
  Circuit c;
  c.num_qubits = 3;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::ccz(1, 0, 1, 2));
  c.gates.push_back(gates::h(2, 0));
  const CMatrix want = circuit_unitary(c);
  const FusionResult r = fuse_circuit(c, {2});
  EXPECT_LT(circuit_unitary(r.circuit).distance(want), 1e-12);
  bool has_wide = false;
  for (const auto& g : r.circuit.gates) has_wide |= g.num_targets() == 3;
  EXPECT_TRUE(has_wide);
}

TEST(Fuser, TimesRenumberedMonotonically) {
  const Circuit c = random_circuit(5, 10, 12);
  const FusionResult r = fuse_circuit(c, {4});
  for (std::size_t i = 1; i < r.circuit.gates.size(); ++i) {
    EXPECT_LT(r.circuit.gates[i - 1].time, r.circuit.gates[i].time);
  }
}

TEST(Fuser, StatsHistogramConsistent) {
  const Circuit c = random_circuit(6, 10, 13);
  const FusionResult r = fuse_circuit(c, {3});
  std::size_t hist_total = 0;
  for (const auto& [w, n] : r.stats.width_histogram) hist_total += n;
  EXPECT_EQ(hist_total + /*measurements*/ 0, r.circuit.size());
  EXPECT_GT(r.stats.mean_width(), 0.9);
  EXPECT_LE(r.stats.mean_width(), 3.0);
  EXPECT_GE(r.stats.seconds, 0.0);
}

TEST(Fuser, RejectsBadLimit) {
  const Circuit c = random_circuit(3, 2, 1);
  EXPECT_THROW(fuse_circuit(c, {0}), Error);
  EXPECT_THROW(fuse_circuit(c, {7}), Error);
}

TEST(Fuser, EmptyCircuit) {
  Circuit c;
  c.num_qubits = 3;
  const FusionResult r = fuse_circuit(c, {4});
  EXPECT_EQ(r.circuit.size(), 0u);
  EXPECT_EQ(r.stats.input_gates, 0u);
}

}  // namespace
}  // namespace qhip
