// The paper-shape assertions: the calibrated device models driven by the
// exact fused-RQC30 workload must reproduce every quantitative claim of the
// paper's evaluation section (within tolerance). These are the invariants
// the figure benches print.
#include "src/perfmodel/model.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/base/bits.h"
#include "src/base/error.h"
#include "src/fusion/fuser.h"
#include "src/rqc/rqc.h"

namespace qhip::perfmodel {
namespace {

class PaperShape : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Circuit c = rqc::circuit_q30();
    for (unsigned f = 2; f <= 6; ++f) {
      const auto fused = fuse_circuit(c, {f});
      stats_[f] = WorkloadStats::from_circuit(fused.circuit);
    }
  }

  static double t(Backend b, unsigned f, Precision p = Precision::kSingle) {
    return predict_seconds(stats_.at(f), b, p);
  }

  static std::map<unsigned, WorkloadStats> stats_;
};

std::map<unsigned, WorkloadStats> PaperShape::stats_;

TEST_F(PaperShape, Fig7_GpuBeatsCpuSevenToNineTimes) {
  // Paper §5: "the AMD MI250X GPU consistently outperformed the AMD EPYC
  // Trento CPU ... achieving speeds up to seven to nine times faster."
  for (unsigned f = 2; f <= 6; ++f) {
    const double ratio = t(Backend::kCpuTrento, f) / t(Backend::kHipMi250x, f);
    EXPECT_GT(ratio, 5.8) << "f=" << f;
    EXPECT_LT(ratio, 9.5) << "f=" << f;
  }
  const double best =
      t(Backend::kCpuTrento, 2) / t(Backend::kHipMi250x, 2);
  EXPECT_GT(best, 8.0);  // "up to ... nine times"
}

TEST_F(PaperShape, Fig7_FourFusedGatesOptimalOnCpuAndHip) {
  for (Backend b : {Backend::kCpuTrento, Backend::kHipMi250x}) {
    const double t4 = t(b, 4);
    for (unsigned f : {2u, 3u, 5u, 6u}) {
      EXPECT_LT(t4, t(b, f)) << backend_name(b) << " f=" << f;
    }
  }
}

TEST_F(PaperShape, Fig8_DoublePrecisionAbout2xSlower) {
  // Paper §5: "double-precision exhibit an approximate slowdown of 1.8 to 2
  // times compared to single-precision."
  for (unsigned f = 2; f <= 6; ++f) {
    const double ratio = t(Backend::kHipMi250x, f, Precision::kDouble) /
                         t(Backend::kHipMi250x, f, Precision::kSingle);
    EXPECT_GT(ratio, 1.75) << "f=" << f;
    EXPECT_LE(ratio, 2.05) << "f=" << f;
  }
}

TEST_F(PaperShape, Fig9_GapFivePercentAtFusionTwo) {
  const double gap = t(Backend::kHipMi250x, 2) / t(Backend::kCudaA100, 2);
  EXPECT_NEAR(gap, 1.05, 0.03);
}

TEST_F(PaperShape, Fig9_GapFortyFourPercentAtFusionFour) {
  const double gap = t(Backend::kHipMi250x, 4) / t(Backend::kCudaA100, 4);
  EXPECT_NEAR(gap, 1.44, 0.05);
}

TEST_F(PaperShape, Fig9_GapWidensWithFusion) {
  double prev = 0;
  for (unsigned f = 2; f <= 6; ++f) {
    const double gap = t(Backend::kHipMi250x, f) / t(Backend::kCudaA100, f);
    EXPECT_GT(gap, prev) << "f=" << f;
    prev = gap;
  }
}

TEST_F(PaperShape, Fig9_HipDeterioratesBeyondFourButCudaDoesNot) {
  // HIP: clear degradation 4 -> 6.
  EXPECT_GT(t(Backend::kHipMi250x, 6), 1.15 * t(Backend::kHipMi250x, 4));
  // CUDA: stays within ~10% of its optimum.
  EXPECT_LT(t(Backend::kCudaA100, 6), 1.10 * t(Backend::kCudaA100, 4));
}

TEST_F(PaperShape, Fig9_CuQuantumWithinTenPercentOfCuda) {
  for (unsigned f = 2; f <= 6; ++f) {
    const double r = t(Backend::kCudaA100, f) / t(Backend::kCuQuantumA100, f);
    EXPECT_GT(r, 1.0) << "f=" << f;   // cuQuantum slightly ahead
    EXPECT_LT(r, 1.10) << "f=" << f;  // by less than 10%
  }
}

TEST_F(PaperShape, AllBackendsBandwidthBoundAtModerateFusion) {
  // Sanity: at f <= 4 every backend's per-gate time is bandwidth-limited,
  // the premise of the paper's §2.2 arithmetic-intensity discussion.
  for (Backend b : kAllBackends) {
    const BackendModel& m = backend_model(b);
    for (unsigned q = 1; q <= 4; ++q) {
      const double t_bw = 1.0 / (m.bw_gibps * m.eff_bw[q]);
      const double flops_per_byte = static_cast<double>(pow2(q)) / 2.0;
      const double t_fl =
          flops_per_byte / (m.sp_tflops * 1e3 * m.eff_fl[q]);  // per GiB
      EXPECT_GT(t_bw, t_fl) << backend_name(b) << " q=" << q;
    }
  }
}

TEST(Model, GateSecondsScalesWithQubits) {
  const double t20 = gate_seconds(Backend::kHipMi250x, 20, 2, Precision::kSingle);
  const double t21 = gate_seconds(Backend::kHipMi250x, 21, 2, Precision::kSingle);
  // One more qubit doubles the state: time (minus launch) doubles.
  const double l = backend_model(Backend::kHipMi250x).launch_us * 1e-6;
  EXPECT_NEAR((t21 - l) / (t20 - l), 2.0, 1e-9);
}

TEST(Model, LaunchOverheadDominatesTinyStates) {
  const double t4 = gate_seconds(Backend::kHipMi250x, 4, 1, Precision::kSingle);
  EXPECT_LT(t4, 10e-6);
  EXPECT_GE(t4, 7e-6);
}

TEST(Model, RejectsBadWidth) {
  EXPECT_THROW(gate_seconds(Backend::kHipMi250x, 10, 0, Precision::kSingle), qhip::Error);
  EXPECT_THROW(gate_seconds(Backend::kHipMi250x, 10, 7, Precision::kSingle), qhip::Error);
}

TEST(Model, Table1ContainsPaperNumbers) {
  const std::string t1 = format_table1();
  EXPECT_NE(t1.find("1638.4 GiB/s"), std::string::npos);
  EXPECT_NE(t1.find("23.95 TFLOP/s"), std::string::npos);
  EXPECT_NE(t1.find("1448 GiB/s"), std::string::npos);
  EXPECT_NE(t1.find("MI250X"), std::string::npos);
  EXPECT_NE(t1.find("A100"), std::string::npos);
  EXPECT_NE(t1.find("Trento"), std::string::npos);
}

TEST(Capacity, MatchesPaperLimits) {
  // Paper SS1: "limiting in practice to 35-36 qubits ... on Terabyte-size
  // memory systems" — 1 TB at single precision:
  EXPECT_EQ(capacity::max_qubits(1ull << 40, Precision::kSingle, 0.0), 37u);
  EXPECT_EQ(capacity::max_qubits(1ull << 40, Precision::kSingle), 36u);
  EXPECT_EQ(capacity::max_qubits(1ull << 40, Precision::kDouble), 35u);
  // The paper's devices:
  EXPECT_EQ(capacity::max_qubits(Backend::kHipMi250x, Precision::kSingle), 33u);
  EXPECT_EQ(capacity::max_qubits(Backend::kHipMi250x, Precision::kDouble), 32u);
  EXPECT_EQ(capacity::max_qubits(Backend::kCudaA100, Precision::kSingle), 32u);
  EXPECT_EQ(capacity::max_qubits(Backend::kCpuTrento, Precision::kSingle), 35u);
  // The benchmark's 30 qubits fits everywhere — as the paper requires.
  for (Backend b : kAllBackends) {
    EXPECT_GE(capacity::max_qubits(b, Precision::kSingle), 30u) << backend_name(b);
  }
}

TEST(Capacity, Validation) {
  EXPECT_THROW(capacity::max_qubits(0, Precision::kSingle), qhip::Error);
  EXPECT_THROW(capacity::max_qubits(1024, Precision::kSingle, 1.5), qhip::Error);
}

TEST(Model, BackendNamesDistinct) {
  std::set<std::string> names;
  for (Backend b : kAllBackends) names.insert(backend_name(b));
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace qhip::perfmodel
