#include "src/perfmodel/workload.h"

#include <gtest/gtest.h>

#include "src/base/error.h"
#include "src/core/gates.h"
#include "src/fusion/fuser.h"
#include "src/rqc/rqc.h"

namespace qhip::perfmodel {
namespace {

TEST(Workload, CountsByWidthAndKernelClass) {
  Circuit c;
  c.num_qubits = 8;
  c.gates.push_back(gates::h(0, 0));        // q=1, low
  c.gates.push_back(gates::h(0, 6));        // q=1, high
  c.gates.push_back(gates::cz(1, 5, 7));    // q=2, high
  c.gates.push_back(gates::cz(1, 2, 6));    // q=2, low (lowest target < 5)
  c.gates.push_back(gates::measure(2, {0}));
  const WorkloadStats w = WorkloadStats::from_circuit(c);
  EXPECT_EQ(w.num_qubits, 8u);
  EXPECT_EQ(w.num_gates, 4u);
  EXPECT_EQ(w.num_measurements, 1u);
  EXPECT_EQ(w.counts[1][1], 1u);  // low q1
  EXPECT_EQ(w.counts[1][0], 1u);  // high q1
  EXPECT_EQ(w.counts[2][0], 1u);
  EXPECT_EQ(w.counts[2][1], 1u);
  EXPECT_EQ(w.low_gates(), 2u);
  EXPECT_EQ(w.high_gates(), 2u);
}

TEST(Workload, FlopAndByteFormulas) {
  WorkloadStats w;
  w.num_qubits = 10;  // 1024 amplitudes
  // One width-2 gate: flops = 8 * 2^10 * 4; bytes = 2 * 2^10 * amp_bytes.
  EXPECT_DOUBLE_EQ(w.flops(2), 8.0 * 1024 * 4);
  EXPECT_DOUBLE_EQ(w.bytes(2, 8), 2.0 * 1024 * 8);
  EXPECT_DOUBLE_EQ(w.bytes(2, 16), 2.0 * 1024 * 16);
}

TEST(Workload, TotalsSumOverGates) {
  WorkloadStats w;
  w.num_qubits = 4;
  w.counts[1][0] = 2;
  w.counts[3][1] = 1;
  EXPECT_DOUBLE_EQ(w.total_flops(), 2 * w.flops(1) + w.flops(3));
  EXPECT_DOUBLE_EQ(w.total_bytes(8), 3 * 2.0 * 16 * 8);
}

TEST(Workload, FusedRqc30CountsAreStable) {
  // Pin the fused workload of the paper's benchmark so model predictions
  // (and EXPERIMENTS.md) stay reproducible.
  const Circuit c = rqc::circuit_q30();
  const auto fused = fuse_circuit(c, {4});
  const WorkloadStats w = WorkloadStats::from_circuit(fused.circuit);
  EXPECT_EQ(w.num_qubits, 30u);
  EXPECT_EQ(w.num_gates, 115u);
  EXPECT_GT(w.counts[4][0] + w.counts[4][1], 20u);
}

TEST(Workload, WidthOutOfRangeRejected) {
  Circuit c;
  c.num_qubits = 8;
  Gate g;
  g.name = "fused";
  for (qubit_t q = 0; q < 7; ++q) g.qubits.push_back(q);
  g.matrix = CMatrix::identity(128);
  c.gates.push_back(std::move(g));
  EXPECT_THROW(WorkloadStats::from_circuit(c), qhip::Error);
}

}  // namespace
}  // namespace qhip::perfmodel
