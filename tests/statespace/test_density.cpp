#include "src/statespace/density.h"

#include <gtest/gtest.h>

#include <numbers>

#include "src/base/error.h"
#include "src/base/rng.h"
#include "src/core/gates.h"
#include "src/rqc/rqc.h"
#include "src/simulator/simulator_cpu.h"

namespace qhip::statespace {
namespace {

TEST(Eigensolver, DiagonalMatrix) {
  const CMatrix m(4, {cplx64{3}, 0, 0, 0, 0, cplx64{1}, 0, 0, 0, 0, cplx64{4},
                      0, 0, 0, 0, cplx64{2}});
  const auto eig = hermitian_eigenvalues(m);
  ASSERT_EQ(eig.size(), 4u);
  EXPECT_NEAR(eig[0], 1, 1e-12);
  EXPECT_NEAR(eig[1], 2, 1e-12);
  EXPECT_NEAR(eig[2], 3, 1e-12);
  EXPECT_NEAR(eig[3], 4, 1e-12);
}

TEST(Eigensolver, PauliMatrices) {
  for (const CMatrix& p : {gates::x(0, 0).matrix, gates::y(0, 0).matrix,
                           gates::z(0, 0).matrix}) {
    const auto eig = hermitian_eigenvalues(p);
    EXPECT_NEAR(eig[0], -1, 1e-12);
    EXPECT_NEAR(eig[1], 1, 1e-12);
  }
}

TEST(Eigensolver, RandomHermitianTraceAndNormPreserved) {
  Xoshiro256 rng(4);
  const std::size_t dim = 8;
  CMatrix h(dim);
  for (std::size_t r = 0; r < dim; ++r) {
    h.at(r, r) = rng.uniform();
    for (std::size_t c = r + 1; c < dim; ++c) {
      const cplx64 v(rng.uniform() - 0.5, rng.uniform() - 0.5);
      h.at(r, c) = v;
      h.at(c, r) = std::conj(v);
    }
  }
  const auto eig = hermitian_eigenvalues(h);
  double trace = 0, frob2 = 0, eig_sum = 0, eig2_sum = 0;
  for (std::size_t r = 0; r < dim; ++r) trace += h.at(r, r).real();
  for (const auto& v : h.data()) frob2 += std::norm(v);
  for (double e : eig) {
    eig_sum += e;
    eig2_sum += e * e;
  }
  EXPECT_NEAR(eig_sum, trace, 1e-9);    // tr H = sum eig
  EXPECT_NEAR(eig2_sum, frob2, 1e-9);   // tr H^2 = sum eig^2
}

TEST(Eigensolver, RejectsNonHermitian) {
  CMatrix m(2, {0, 1, 0, 0});
  EXPECT_THROW(hermitian_eigenvalues(m), Error);
}

TEST(Density, ProductStateIsPure) {
  SimulatorCPU<double> sim;
  StateVector<double> s(4);
  for (unsigned q = 0; q < 4; ++q) sim.apply_gate(gates::rxy(0, q, 0.3, 0.9), s);
  const CMatrix rho = reduced_density_matrix(s, {1, 2});
  EXPECT_NEAR(purity(rho), 1.0, 1e-10);
  EXPECT_NEAR(von_neumann_entropy(rho), 0.0, 1e-7);
}

TEST(Density, BellPairSubsystemIsMaximallyMixed) {
  SimulatorCPU<double> sim;
  StateVector<double> s(2);
  sim.apply_gate(gates::h(0, 0), s);
  sim.apply_gate(gates::cnot(1, 0, 1), s);
  const CMatrix rho = reduced_density_matrix(s, {0});
  EXPECT_NEAR(rho.at(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.at(1, 1).real(), 0.5, 1e-12);
  EXPECT_NEAR(std::abs(rho.at(0, 1)), 0.0, 1e-12);
  EXPECT_NEAR(purity(rho), 0.5, 1e-12);
  EXPECT_NEAR(von_neumann_entropy(rho, /*base2=*/true), 1.0, 1e-9);
}

TEST(Density, GhzAnyCutGivesOneBit) {
  const unsigned n = 6;
  SimulatorCPU<double> sim;
  StateVector<double> s(n);
  sim.apply_gate(gates::h(0, 0), s);
  for (unsigned q = 1; q < n; ++q) sim.apply_gate(gates::cnot(q, q - 1, q), s);
  for (const std::vector<qubit_t>& cut :
       {std::vector<qubit_t>{0}, {0, 1}, {2, 3, 4}}) {
    EXPECT_NEAR(entanglement_entropy(s, cut, /*base2=*/true), 1.0, 1e-8)
        << cut.size();
  }
}

TEST(Density, TraceIsOne) {
  SimulatorCPU<double> sim;
  StateVector<double> s(5);
  sim.apply_gate(gates::h(0, 0), s);
  sim.apply_gate(gates::fs(1, 0, 3, 0.7, 0.2), s);
  const CMatrix rho = reduced_density_matrix(s, {0, 3});
  double tr = 0;
  for (std::size_t i = 0; i < rho.dim(); ++i) tr += rho.at(i, i).real();
  EXPECT_NEAR(tr, 1.0, 1e-12);
}

TEST(Density, InvariantUnderLocalUnitariesOutsideSubsystem) {
  SimulatorCPU<double> sim;
  StateVector<double> s(4);
  sim.apply_gate(gates::h(0, 0), s);
  sim.apply_gate(gates::cnot(1, 0, 2), s);
  const double before = entanglement_entropy(s, {0});
  // Unitaries on the environment (qubits 1, 2, 3) cannot change S({0}).
  sim.apply_gate(gates::rxy(2, 1, 0.4, 1.0), s);
  sim.apply_gate(gates::fs(3, 2, 3, 0.9, 0.5), s);
  EXPECT_NEAR(entanglement_entropy(s, {0}), before, 1e-9);
}

TEST(Density, RqcVolumeLawGrowth) {
  // Deep RQC states approach maximal (Page) entanglement: for a 3-qubit
  // subsystem of a 12-qubit random state, S ~ 3 ln 2 - O(1).
  rqc::RqcOptions opt;
  opt.rows = 3;
  opt.cols = 4;
  opt.depth = 12;
  SimulatorCPU<double> sim;
  StateVector<double> s(12);
  sim.run(rqc::generate_rqc(opt), s);
  const double bits = entanglement_entropy(s, {0, 1, 2}, /*base2=*/true);
  EXPECT_GT(bits, 2.5);
  EXPECT_LE(bits, 3.0 + 1e-9);
}

TEST(Density, Validation) {
  StateVector<double> s(4);
  EXPECT_THROW(reduced_density_matrix(s, {}), Error);
  EXPECT_THROW(reduced_density_matrix(s, {0, 0}), Error);
  EXPECT_THROW(reduced_density_matrix(s, {9}), Error);
}

}  // namespace
}  // namespace qhip::statespace
