#include "src/statespace/checkpoint.h"

#include <gtest/gtest.h>

#include <fstream>

#include "src/base/error.h"
#include "src/base/rng.h"
#include "src/core/gates.h"
#include "src/simulator/simulator_cpu.h"

namespace qhip::statespace {
namespace {

template <typename T>
class CheckpointTyped : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(CheckpointTyped, Precisions);

TYPED_TEST(CheckpointTyped, RoundTripExact) {
  const unsigned n = 9;
  StateVector<TypeParam> s(n);
  SimulatorCPU<TypeParam> sim;
  Xoshiro256 rng(4);
  for (unsigned q = 0; q < n; ++q) {
    sim.apply_gate(gates::rxy(0, q, rng.uniform() * 6, rng.uniform() * 3), s);
  }
  const std::string path = testing::TempDir() + "/qhip_ckpt_rt.bin";
  save_state(s, path);
  const StateVector<TypeParam> back = load_state<TypeParam>(path);
  ASSERT_EQ(back.num_qubits(), n);
  EXPECT_EQ(statespace::max_abs_diff(s, back), 0.0);  // bit-exact
}

TYPED_TEST(CheckpointTyped, ResumeMidCircuitMatchesStraightRun) {
  // Run half the circuit, checkpoint, reload, run the rest: identical to
  // the uninterrupted run.
  const unsigned n = 8;
  SimulatorCPU<TypeParam> sim;
  Circuit first, second;
  first.num_qubits = second.num_qubits = n;
  Xoshiro256 rng(6);
  for (unsigned q = 0; q < n; ++q) {
    first.gates.push_back(gates::rxy(0, q, rng.uniform() * 6, rng.uniform()));
    second.gates.push_back(gates::fs(0, q, (q + 1) % n, 0.1 * q, 0.2));
    second.gates.back().time = q;  // keep moments disjoint
  }

  StateVector<TypeParam> straight(n);
  sim.run(first, straight);
  const std::string path = testing::TempDir() + "/qhip_ckpt_mid.bin";
  save_state(straight, path);
  sim.run(second, straight);

  StateVector<TypeParam> resumed = load_state<TypeParam>(path);
  sim.run(second, resumed);
  EXPECT_EQ(statespace::max_abs_diff(straight, resumed), 0.0);
}

TEST(Checkpoint, PrecisionMismatchRejected) {
  StateVector<float> s(4);
  const std::string path = testing::TempDir() + "/qhip_ckpt_prec.bin";
  save_state(s, path);
  EXPECT_THROW(load_state<double>(path), Error);
  EXPECT_NO_THROW(load_state<float>(path));
}

TEST(Checkpoint, CorruptFilesDiagnosed) {
  const std::string path = testing::TempDir() + "/qhip_ckpt_bad.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOTQHIP0 garbage";
  }
  EXPECT_THROW(load_state<float>(path), Error);
  {
    // Valid magic, truncated payload.
    StateVector<float> s(6);
    save_state(s, path);
    std::ofstream f(path, std::ios::binary | std::ios::in);
    f.seekp(0, std::ios::end);
  }
  // Truncate: rewrite with half the bytes.
  {
    std::ifstream in(path, std::ios::binary);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(all.data(), static_cast<std::streamsize>(all.size() / 2));
  }
  EXPECT_THROW(load_state<float>(path), Error);
  EXPECT_THROW(load_state<float>("/nonexistent/ckpt.bin"), Error);
}

TEST(Checkpoint, RejectsTrailingBytes) {
  // Regression: a checkpoint with extra bytes after the payload used to load
  // silently — a truncated header count or a concatenated pair of files
  // would read as the first state and hide the corruption.
  const std::string path = testing::TempDir() + "/qhip_ckpt_trail.bin";
  StateVector<float> s(5);
  save_state(s, path);
  EXPECT_NO_THROW(load_state<float>(path));
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f << "leftover";
  }
  EXPECT_THROW(load_state<float>(path), Error);
}

}  // namespace
}  // namespace qhip::statespace
