#include "src/statespace/statevector.h"

#include <gtest/gtest.h>

#include <map>

#include "src/base/error.h"

namespace qhip {
namespace {

template <typename T>
class StateVectorTyped : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(StateVectorTyped, Precisions);

TYPED_TEST(StateVectorTyped, ZeroStateInitialization) {
  StateVector<TypeParam> s(4);
  EXPECT_EQ(s.size(), 16u);
  EXPECT_EQ(s[0], (cplx<TypeParam>{1}));
  for (index_t i = 1; i < s.size(); ++i) EXPECT_EQ(s[i], (cplx<TypeParam>{}));
  EXPECT_NEAR(statespace::norm2(s), 1.0, 1e-12);
}

TYPED_TEST(StateVectorTyped, UniformState) {
  StateVector<TypeParam> s(6);
  s.set_uniform_state();
  EXPECT_NEAR(statespace::norm2(s), 1.0, 1e-5);
  EXPECT_NEAR(s[17].real(), 1.0 / 8.0, 1e-6);
}

TYPED_TEST(StateVectorTyped, BasisState) {
  StateVector<TypeParam> s(3);
  s.set_basis_state(5);
  EXPECT_EQ(s[5], (cplx<TypeParam>{1}));
  EXPECT_EQ(s[0], (cplx<TypeParam>{}));
  EXPECT_THROW(s.set_basis_state(8), Error);
}

TYPED_TEST(StateVectorTyped, InnerProductOrthogonalBasis) {
  StateVector<TypeParam> a(3), b(3);
  a.set_basis_state(1);
  b.set_basis_state(2);
  EXPECT_NEAR(std::abs(statespace::inner_product(a, b)), 0.0, 1e-12);
  EXPECT_NEAR(statespace::inner_product(a, a).real(), 1.0, 1e-12);
}

TYPED_TEST(StateVectorTyped, InnerProductConjugateLinearity) {
  StateVector<TypeParam> a(2), b(2);
  a.set_basis_state(1);
  b.set_basis_state(1);
  b[1] = cplx<TypeParam>(0, 1);  // i|1>
  const cplx64 ip = statespace::inner_product(a, b);
  EXPECT_NEAR(ip.real(), 0.0, 1e-12);
  EXPECT_NEAR(ip.imag(), 1.0, 1e-12);
}

TYPED_TEST(StateVectorTyped, Normalize) {
  StateVector<TypeParam> s(4);
  for (index_t i = 0; i < s.size(); ++i) s[i] = cplx<TypeParam>(2, 0);
  const double pre = statespace::normalize(s);
  EXPECT_NEAR(pre, 8.0, 1e-5);  // sqrt(16 * 4)
  EXPECT_NEAR(statespace::norm2(s), 1.0, 1e-6);
}

TYPED_TEST(StateVectorTyped, ProbabilitySubset) {
  StateVector<TypeParam> s(2);
  // (|00> + |01> + |10> + |11>)/2; P(q0 = 1) = 0.5.
  s.set_uniform_state();
  EXPECT_NEAR(statespace::probability(s, {0}, 1), 0.5, 1e-6);
  EXPECT_NEAR(statespace::probability(s, {0, 1}, 0b11), 0.25, 1e-6);
}

TYPED_TEST(StateVectorTyped, SampleFromBasisState) {
  StateVector<TypeParam> s(5);
  s.set_basis_state(19);
  const auto out = statespace::sample(s, 64, 7);
  ASSERT_EQ(out.size(), 64u);
  for (index_t v : out) EXPECT_EQ(v, 19u);
}

TYPED_TEST(StateVectorTyped, SampleDistribution) {
  // |psi> = sqrt(0.25)|0> + sqrt(0.75)|3> over 2 qubits.
  StateVector<TypeParam> s(2);
  s[0] = cplx<TypeParam>(static_cast<TypeParam>(0.5), 0);
  s[3] = cplx<TypeParam>(static_cast<TypeParam>(std::sqrt(0.75)), 0);
  const std::size_t n = 20000;
  const auto out = statespace::sample(s, n, 99);
  std::map<index_t, std::size_t> hist;
  for (index_t v : out) ++hist[v];
  EXPECT_EQ(hist.count(1), 0u);
  EXPECT_EQ(hist.count(2), 0u);
  EXPECT_NEAR(static_cast<double>(hist[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(hist[3]) / n, 0.75, 0.02);
}

TYPED_TEST(StateVectorTyped, SampleDeterministicInSeed) {
  StateVector<TypeParam> s(4);
  s.set_uniform_state();
  const auto a = statespace::sample(s, 100, 5);
  const auto b = statespace::sample(s, 100, 5);
  const auto c = statespace::sample(s, 100, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TYPED_TEST(StateVectorTyped, MeasureCollapses) {
  StateVector<TypeParam> s(2);
  s.set_uniform_state();
  const index_t outcome = statespace::measure(s, {0}, 3);
  ASSERT_LE(outcome, 1u);
  EXPECT_NEAR(statespace::norm2(s), 1.0, 1e-6);
  // All remaining amplitude must sit on states with q0 == outcome.
  EXPECT_NEAR(statespace::probability(s, {0}, outcome), 1.0, 1e-6);
}

TYPED_TEST(StateVectorTyped, MeasureDeterministicOutcome) {
  StateVector<TypeParam> s(3);
  s.set_basis_state(0b101);
  EXPECT_EQ(statespace::measure(s, {0}, 11), 1u);
  EXPECT_EQ(statespace::measure(s, {1}, 12), 0u);
  EXPECT_EQ(statespace::measure(s, {2}, 13), 1u);
  EXPECT_EQ(statespace::measure(s, {0, 1, 2}, 14), 0b101u);
}

TYPED_TEST(StateVectorTyped, MeasureStatistics) {
  // P(q0 = 0) = P(q0 = 1) = 0.5; over many seeds the split is ~even.
  int ones = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    StateVector<TypeParam> s(2);
    s.set_uniform_state();
    ones += static_cast<int>(statespace::measure(s, {0}, 1000 + t));
  }
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.5, 0.08);
}

TYPED_TEST(StateVectorTyped, MaxAbsDiff) {
  StateVector<TypeParam> a(2), b(2);
  b[2] = cplx<TypeParam>(0, static_cast<TypeParam>(0.5));
  EXPECT_NEAR(statespace::max_abs_diff(a, b), 0.5, 1e-6);
  EXPECT_NEAR(statespace::max_abs_diff(a, a), 0.0, 1e-12);
}

TEST(StateVector, RejectsBadQubitCounts) {
  EXPECT_THROW(StateVector<float>(0), Error);
  EXPECT_THROW(StateVector<float>(35), Error);
}

}  // namespace
}  // namespace qhip
