#include "src/hipify/hipify.h"

#include <gtest/gtest.h>

#include <fstream>

#include "src/base/error.h"

namespace qhip::hipify {
namespace {

TEST(Hipify, BasicApiMapping) {
  const auto r = hipify_source(
      "cudaMalloc(&p, n);\ncudaMemcpy(d, s, n, cudaMemcpyHostToDevice);\n"
      "cudaFree(p);\ncudaDeviceSynchronize();\n");
  EXPECT_NE(r.output.find("hipMalloc(&p, n);"), std::string::npos);
  EXPECT_NE(r.output.find("hipMemcpy(d, s, n, hipMemcpyHostToDevice);"),
            std::string::npos);
  EXPECT_NE(r.output.find("hipFree(p);"), std::string::npos);
  EXPECT_NE(r.output.find("hipDeviceSynchronize();"), std::string::npos);
  EXPECT_EQ(r.output.find("cuda"), std::string::npos);
  EXPECT_EQ(r.replacements, 5u);
}

TEST(Hipify, TypesAndStreams) {
  const auto r = hipify_source(
      "cudaStream_t s;\ncudaStreamCreate(&s);\n"
      "cudaError_t e = cudaGetLastError();\n"
      "if (e != cudaSuccess) puts(cudaGetErrorString(e));\n"
      "cudaMemcpyAsync(d, h, n, cudaMemcpyHostToDevice, s);\n");
  EXPECT_NE(r.output.find("hipStream_t s;"), std::string::npos);
  EXPECT_NE(r.output.find("hipError_t e = hipGetLastError();"), std::string::npos);
  EXPECT_NE(r.output.find("hipMemcpyAsync(d, h, n, hipMemcpyHostToDevice, s);"),
            std::string::npos);
}

TEST(Hipify, DevicePropSpecialCase) {
  // cudaDeviceProp maps to hipDeviceProp_t (name changes shape).
  const auto r = hipify_source("cudaDeviceProp prop;\n"
                               "cudaGetDeviceProperties(&prop, 0);\n");
  EXPECT_NE(r.output.find("hipDeviceProp_t prop;"), std::string::npos);
  EXPECT_NE(r.output.find("hipGetDeviceProperties(&prop, 0);"), std::string::npos);
}

TEST(Hipify, IncludeRewrites) {
  const auto r = hipify_source(
      "#include <cuda_runtime.h>\n#include <cuComplex.h>\n#include <vector>\n");
  EXPECT_NE(r.output.find("#include <hip/hip_runtime.h>"), std::string::npos);
  EXPECT_NE(r.output.find("#include <hip/hip_complex.h>"), std::string::npos);
  EXPECT_NE(r.output.find("#include <vector>"), std::string::npos);
}

TEST(Hipify, TokenBoundariesRespected) {
  // Identifiers merely containing 'cudaMalloc' must not be rewritten.
  const auto r = hipify_source("int my_cudaMalloc_count; mycudaMalloc();\n");
  EXPECT_NE(r.output.find("my_cudaMalloc_count"), std::string::npos);
  EXPECT_NE(r.output.find("mycudaMalloc()"), std::string::npos);
  EXPECT_EQ(r.replacements, 0u);
}

TEST(Hipify, CommentsAndStringsUntouched) {
  const auto r = hipify_source(
      "// cudaMalloc in a comment\n"
      "/* cudaFree(block) */\n"
      "const char* s = \"cudaMemcpy\";\n"
      "cudaMalloc(&p, 1);\n");
  EXPECT_NE(r.output.find("// cudaMalloc in a comment"), std::string::npos);
  EXPECT_NE(r.output.find("/* cudaFree(block) */"), std::string::npos);
  EXPECT_NE(r.output.find("\"cudaMemcpy\""), std::string::npos);
  EXPECT_NE(r.output.find("hipMalloc(&p, 1);"), std::string::npos);
  EXPECT_EQ(r.replacements, 1u);
}

TEST(Hipify, KernelLaunchRewrite) {
  const auto r = hipify_source("MyKernel<<<blocks, threads>>>(a, b, n);\n");
  EXPECT_NE(r.output.find(
                "hipLaunchKernelGGL(MyKernel, dim3(blocks), dim3(threads), 0, "
                "0, a, b, n)"),
            std::string::npos);
  EXPECT_EQ(r.output.find("<<<"), std::string::npos);
}

TEST(Hipify, KernelLaunchWithSharedAndStream) {
  const auto r = hipify_source("k<<<g, b, shm, st>>>(x);\n");
  EXPECT_NE(
      r.output.find("hipLaunchKernelGGL(k, dim3(g), dim3(b), shm, st, x)"),
      std::string::npos);
}

TEST(Hipify, TemplatedKernelLaunchUsesHipKernelName) {
  const auto r =
      hipify_source("ApplyGateH_Kernel<float><<<grid, 64>>>(args, amps);\n");
  EXPECT_NE(r.output.find("hipLaunchKernelGGL(HIP_KERNEL_NAME("
                          "ApplyGateH_Kernel<float>), dim3(grid), dim3(64), "
                          "0, 0, args, amps)"),
            std::string::npos);
}

TEST(Hipify, LaunchWithNestedCommasInConfig) {
  const auto r = hipify_source("k<<<dim3(gx, gy), max(a, b)>>>(f(x, y));\n");
  EXPECT_NE(r.output.find("hipLaunchKernelGGL(k, dim3(dim3(gx, gy)), "
                          "dim3(max(a, b)), 0, 0, f(x, y))"),
            std::string::npos);
}

TEST(Hipify, ShflSyncDropsMask) {
  const auto r = hipify_source(
      "v += __shfl_down_sync(0xffffffff, v, offset);\n"
      "w = __shfl_sync(mask, w, 0);\n"
      "unsigned b = __ballot_sync(0xffffffff, pred);\n");
  EXPECT_NE(r.output.find("__shfl_down(v, offset)"), std::string::npos);
  EXPECT_NE(r.output.find("__shfl(w, 0)"), std::string::npos);
  EXPECT_NE(r.output.find("__ballot(pred)"), std::string::npos);
  EXPECT_EQ(r.output.find("_sync"), std::string::npos);
}

TEST(Hipify, WarpSizeAuditFlagsHardcodedWidths) {
  const auto r = hipify_source(
      "for (int o = 16; o > 0; o >>= 1) v += __shfl_down_sync(m, v, o);\n");
  bool flagged = false;
  for (const auto& w : r.warnings) {
    flagged |= w.message.find("warp-size audit") != std::string::npos;
  }
  EXPECT_TRUE(flagged);
}

TEST(Hipify, WarpSizeAuditSilentOnDerivedWidths) {
  const auto r = hipify_source(
      "for (int o = warpSize / 2; o > 0; o >>= 1) v += __shfl_down(v, o);\n");
  for (const auto& w : r.warnings) {
    EXPECT_EQ(w.message.find("warp-size audit"), std::string::npos) << w.message;
  }
}

TEST(Hipify, UnknownCudaIdentifierWarns) {
  const auto r = hipify_source("cudaFrobnicate(x);\n");
  ASSERT_FALSE(r.warnings.empty());
  EXPECT_NE(r.warnings[0].message.find("cudaFrobnicate"), std::string::npos);
  EXPECT_NE(r.output.find("cudaFrobnicate(x);"), std::string::npos);
}

TEST(Hipify, WarningsCarryLineNumbers) {
  const auto r = hipify_source("int a;\nint b;\ncudaFrobnicate();\n");
  ASSERT_FALSE(r.warnings.empty());
  EXPECT_EQ(r.warnings[0].line, 3u);
}

TEST(Hipify, RuleHitsAccounting) {
  const auto r = hipify_source("cudaMalloc(&a, 1); cudaMalloc(&b, 2);\n");
  EXPECT_EQ(r.rule_hits.at("cudaMalloc"), 2u);
  EXPECT_EQ(r.replacements, 2u);
}

TEST(Hipify, ReportFormat) {
  const auto r = hipify_source("cudaMalloc(&a, 1);\ncudaFrobnicate();\n");
  const std::string rep = r.format_report("simulator_cuda.h");
  EXPECT_NE(rep.find("simulator_cuda.h"), std::string::npos);
  EXPECT_NE(rep.find("cudaMalloc"), std::string::npos);
  EXPECT_NE(rep.find("warnings"), std::string::npos);
}

TEST(Hipify, FileRoundTrip) {
  const std::string in = testing::TempDir() + "/qhip_hipify_in.cu";
  const std::string out = testing::TempDir() + "/qhip_hipify_out.cpp";
  {
    std::ofstream f(in);
    f << "#include <cuda_runtime.h>\ncudaMalloc(&p, 8);\n";
  }
  const auto r = hipify_file(in, out);
  EXPECT_EQ(r.replacements, 2u);
  std::ifstream f(out);
  std::string all((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(all, r.output);
  EXPECT_THROW(hipify_file("/nonexistent.cu", out), Error);
}

TEST(Hipify, IdempotentOnHipSource) {
  const std::string hip =
      "#include <hip/hip_runtime.h>\nhipMalloc(&p, 8);\n"
      "hipLaunchKernelGGL(k, dim3(1), dim3(1), 0, 0, x);\n";
  const auto r = hipify_source(hip);
  EXPECT_EQ(r.output, hip);
  EXPECT_EQ(r.replacements, 0u);
}

TEST(Hipify, LegacyAndLibraryRules) {
  const auto r = hipify_source(
      "cudaMemcpyToSymbol(sym, h, n);\ncudaThreadSynchronize();\n"
      "cudaEventCreateWithFlags(&e, cudaEventDisableTiming);\n"
      "cufftHandle plan;\ncufftPlan1d(&plan, n, CUFFT_FORWARD, 1);\n");
  EXPECT_NE(r.output.find("hipMemcpyToSymbol(sym, h, n);"), std::string::npos);
  EXPECT_NE(r.output.find("hipDeviceSynchronize();"), std::string::npos);
  EXPECT_NE(r.output.find("hipEventCreateWithFlags(&e, hipEventDisableTiming);"),
            std::string::npos);
  EXPECT_NE(r.output.find("hipfftPlan1d(&plan, n, HIPFFT_FORWARD, 1);"),
            std::string::npos);
  EXPECT_EQ(r.output.find("cuda"), std::string::npos);
}

TEST(Hipify, ApiMapNonTrivial) {
  EXPECT_GT(api_map().size(), 60u);
  EXPECT_EQ(api_map().at("cudaMalloc"), "hipMalloc");
}

}  // namespace
}  // namespace qhip::hipify
