// Golden test reproducing the paper's §3 porting workflow: translate the
// bundled CUDA-dialect miniatures of qsim's seven backend files and compare
// byte-for-byte against the checked-in HIP outputs. Also verifies the two
// qualitative findings of the port:
//  * the conversion is fully automatic (no unconverted cuda* identifiers),
//  * the warp-size audit flags the hardcoded 32-lane reduction loops that
//    the paper had to fix by hand for the 64-lane AMD wavefront.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "src/hipify/hipify.h"

namespace qhip::hipify {
namespace {

struct FilePair {
  const char* cuda;
  const char* hip;
};

// The paper's seven-file conversion inventory (§3, items 1-7).
const std::vector<FilePair>& inventory() {
  static const std::vector<FilePair> v = {
      {"qsim_base_cuda.cu", "qsim_base_hip.cpp"},
      {"simulator_cuda.h", "simulator_hip.h"},
      {"simulator_cuda_kernels.h", "simulator_hip_kernels.h"},
      {"state_space_cuda.h", "state_space_hip.h"},
      {"state_space_cuda_kernels.h", "state_space_hip_kernels.h"},
      {"cuda_util.h", "hip_util.h"},
      {"vectorspace_cuda.h", "vectorspace_hip.h"},
  };
  return v;
}

std::string testdata_dir() {
  return std::string(QHIP_TESTDATA_DIR);
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(HipifyGolden, SevenFileInventoryMatchesPaper) {
  EXPECT_EQ(inventory().size(), 7u);
}

TEST(HipifyGolden, TranslationsMatchGoldenOutputs) {
  for (const auto& [cu, hip] : inventory()) {
    const std::string src = slurp(testdata_dir() + "/cuda/" + cu);
    const std::string want = slurp(testdata_dir() + "/hip_golden/" + hip);
    const HipifyResult r = hipify_source(src);
    EXPECT_EQ(r.output, want) << cu;
  }
}

TEST(HipifyGolden, NoCudaIdentifiersSurvive) {
  for (const auto& [cu, hip] : inventory()) {
    const std::string src = slurp(testdata_dir() + "/cuda/" + cu);
    const HipifyResult r = hipify_source(src);
    // Scan translated identifiers: nothing starting with 'cuda' outside
    // comments should remain (file-name references in comments are fine).
    std::istringstream is(r.output);
    std::string ln;
    while (std::getline(is, ln)) {
      const auto comment = ln.find("//");
      const std::string code = ln.substr(0, comment);
      EXPECT_EQ(code.find("cudaM"), std::string::npos) << cu << ": " << ln;
      EXPECT_EQ(code.find("cudaS"), std::string::npos) << cu << ": " << ln;
      EXPECT_EQ(code.find("cudaError"), std::string::npos) << cu << ": " << ln;
      EXPECT_EQ(code.find("__shfl_down_sync"), std::string::npos)
          << cu << ": " << ln;
    }
    // And the tool itself reported no unconverted-identifier warnings.
    for (const auto& w : r.warnings) {
      EXPECT_EQ(w.message.find("unrecognized CUDA identifier"),
                std::string::npos)
          << cu << ": " << w.message;
    }
  }
}

TEST(HipifyGolden, WarpSizeBugFlaggedInUtilAndKernels) {
  // The files with 32-lane reduction loops must trip the audit — this is
  // the "minor issue related to warp-level collective functions" of §3.
  for (const char* f : {"cuda_util.h", "simulator_cuda_kernels.h"}) {
    const HipifyResult r = hipify_source(slurp(testdata_dir() + "/cuda/" + f));
    bool flagged = false;
    for (const auto& w : r.warnings) {
      flagged |= w.message.find("warp-size audit") != std::string::npos;
    }
    EXPECT_TRUE(flagged) << f;
  }
}

TEST(HipifyGolden, LaunchSitesAllRewritten) {
  for (const auto& [cu, hip] : inventory()) {
    const HipifyResult r = hipify_source(slurp(testdata_dir() + "/cuda/" + cu));
    EXPECT_EQ(r.output.find("<<<"), std::string::npos) << cu;
  }
}

}  // namespace
}  // namespace qhip::hipify
