// FlightRecorder: bounded capture of per-request trace events, ring
// eviction, two-phase (pending -> ring, late appends) retention, snapshot
// serialization read back through trace_reader, and the end-to-end engine
// path — a forced SLO breach writes a snapshot whose span tree for the
// offending request is EXPECT_EQ-consistent with the live-traced run.
#include "src/prof/flight_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "src/base/error.h"
#include "src/engine/engine.h"
#include "src/engine/watchdog.h"
#include "src/prof/trace.h"
#include "src/prof/trace_reader.h"
#include "src/rqc/rqc.h"

namespace qhip::prof {
namespace {

RequestRecord make_record(std::uint64_t corr, double total_ms = 5.0) {
  RequestRecord r;
  r.corr = corr;
  r.kind = "circuit";
  r.backend = "hip";
  r.outcome = "ok";
  r.ok = true;
  r.attempts = 1;
  r.total_ms = total_ms;
  return r;
}

TEST(FlightRecorder, PendingEventsMoveIntoTheRecordOnCompletion) {
  FlightRecorder rec({4, 16});
  rec.sink().record("execute", TraceKind::kSpan, 100, 50, 0, 0, 7);
  rec.sink().record("ApplyGateH_Kernel", TraceKind::kKernel, 110, 20, 1, 0, 7);
  rec.sink().record("untagged", TraceKind::kHost, 0, 1, 0, 0, 0);  // corr 0

  rec.record_request(make_record(7));
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.total_recorded(), 1u);

  const std::vector<TraceEvent> evs = rec.events();
  ASSERT_EQ(evs.size(), 2u);  // the untagged event is not retained
  EXPECT_EQ(evs[0].name, "execute");
  EXPECT_EQ(evs[1].name, "ApplyGateH_Kernel");
  EXPECT_EQ(evs[1].corr, 7u);
}

TEST(FlightRecorder, LateEventsAppendToACompletedRecord) {
  FlightRecorder rec({4, 16});
  rec.record_request(make_record(3));
  // The serving layer records its "serve" span after the engine publishes
  // the result; the recorder must attach it to the already-completed entry.
  rec.sink().record("serve", TraceKind::kSpan, 200, 80, 0, 0, 3);

  const std::vector<TraceEvent> evs = rec.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].name, "serve");
  EXPECT_EQ(rec.dropped_events(), 0u);
}

TEST(FlightRecorder, RingEvictsOldestAndRecentIsNewestFirst) {
  FlightRecorder rec({4, 16});
  for (std::uint64_t corr = 1; corr <= 10; ++corr) {
    rec.sink().record("execute", TraceKind::kSpan, corr * 100, 10, 0, 0, corr);
    rec.record_request(make_record(corr, static_cast<double>(corr)));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_recorded(), 10u);

  const std::vector<RequestRecord> recent = rec.recent();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent[0].corr, 10u);
  EXPECT_EQ(recent[3].corr, 7u);
  // recent(n) truncates to the newest n.
  const std::vector<RequestRecord> two = rec.recent(2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].corr, 10u);
  EXPECT_EQ(two[1].corr, 9u);

  // Events of evicted requests are gone; retained ones are oldest-first.
  const std::vector<TraceEvent> evs = rec.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs.front().corr, 7u);
  EXPECT_EQ(evs.back().corr, 10u);

  // A late event for an evicted corr cannot resurrect it.
  rec.sink().record("late", TraceKind::kSpan, 1, 1, 0, 0, 2);
  EXPECT_EQ(rec.events().size(), 4u);
}

TEST(FlightRecorder, PerRequestEventCapCountsDrops) {
  FlightRecorder rec({2, 4});
  for (int i = 0; i < 10; ++i) {
    rec.sink().record("k", TraceKind::kKernel, i, 1, 0, 0, 5);
  }
  rec.record_request(make_record(5));
  EXPECT_EQ(rec.events().size(), 4u);
  EXPECT_EQ(rec.dropped_events(), 6u);

  // Late appends respect the same cap.
  for (int i = 0; i < 3; ++i) {
    rec.sink().record("late", TraceKind::kSpan, i, 1, 0, 0, 5);
  }
  EXPECT_EQ(rec.events().size(), 4u);
  EXPECT_EQ(rec.dropped_events(), 9u);
}

TEST(FlightRecorder, CapacityZeroDisablesCaptureButForwards) {
  Tracer downstream;
  FlightRecorder rec({0, 16});
  rec.set_downstream(&downstream);
  rec.sink().record("execute", TraceKind::kSpan, 1, 1, 0, 0, 9);
  rec.record_request(make_record(9));
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.events().size(), 0u);
  // ...but the downstream Tracer saw the event unchanged.
  ASSERT_EQ(downstream.size(), 1u);
  EXPECT_EQ(downstream.events()[0].name, "execute");
}

TEST(FlightRecorder, ForwardsEverythingDownstream) {
  Tracer downstream;
  FlightRecorder rec({4, 16});
  rec.set_downstream(&downstream);
  rec.sink().record("tagged", TraceKind::kSpan, 1, 1, 0, 0, 2);
  rec.sink().record("untagged", TraceKind::kHost, 2, 1);
  rec.sink().set_counter("engine/x", 3.0);
  EXPECT_EQ(downstream.size(), 2u);
  EXPECT_DOUBLE_EQ(downstream.counters().at("engine/x"), 3.0);
}

TEST(FlightRecorder, SnapshotJsonRoundTripsThroughTraceReader) {
  FlightRecorder rec({4, 16});
  rec.sink().record("execute", TraceKind::kSpan, 100, 40, 0, 0, 11);
  RequestRecord r = make_record(11, 12.5);
  r.planner = "predicted=0.003s calibration=1.1";
  r.cache_hit = false;
  r.attempts = 2;
  r.bytes = 4096;
  r.queue_ms = 0.5;
  r.fuse_ms = 1.25;
  r.execute_ms = 9.75;
  r.sample_ms = 1.0;
  rec.record_request(r);
  rec.record_request(make_record(12, 1.0));

  const ParsedTrace t = parse_trace_json(rec.snapshot_json("unit-test"));
  EXPECT_EQ(t.snapshot_reason, "unit-test");
  ASSERT_EQ(t.flight_records.size(), 2u);
  // Newest first, like recent().
  EXPECT_EQ(t.flight_records[0].corr, 12u);
  const FlightRecord& fr = t.flight_records[1];
  EXPECT_EQ(fr.corr, 11u);
  EXPECT_EQ(fr.kind, "circuit");
  EXPECT_EQ(fr.backend, "hip");
  EXPECT_EQ(fr.planner, "predicted=0.003s calibration=1.1");
  EXPECT_EQ(fr.outcome, "ok");
  EXPECT_TRUE(fr.ok);
  EXPECT_FALSE(fr.cache_hit);
  EXPECT_EQ(fr.attempts, 2u);
  EXPECT_EQ(fr.bytes, 4096u);
  EXPECT_DOUBLE_EQ(fr.queue_ms, 0.5);
  EXPECT_DOUBLE_EQ(fr.fuse_ms, 1.25);
  EXPECT_DOUBLE_EQ(fr.execute_ms, 9.75);
  EXPECT_DOUBLE_EQ(fr.sample_ms, 1.0);
  EXPECT_DOUBLE_EQ(fr.total_ms, 12.5);

  // The trace half is real trace-event JSON: the retained span is there.
  ASSERT_EQ(t.events.size(), 1u);
  EXPECT_EQ(t.events[0].name, "execute");
  EXPECT_EQ(t.events[0].corr, 11u);
  EXPECT_EQ(t.events[0].ts_us, 100u);
  EXPECT_EQ(t.events[0].dur_us, 40u);
}

TEST(FlightRecorder, TextDumpListsRecordsNewestFirst) {
  FlightRecorder rec({4, 16});
  rec.record_request(make_record(21, 1.0));
  RequestRecord bad = make_record(22, 2.0);
  bad.ok = false;
  bad.outcome = "backend-fault";
  rec.record_request(bad);

  const std::string dump = rec.text_dump();
  const std::size_t at22 = dump.find("22");
  const std::size_t at21 = dump.find("21");
  ASSERT_NE(at22, std::string::npos);
  ASSERT_NE(at21, std::string::npos);
  EXPECT_LT(at22, at21);
  EXPECT_NE(dump.find("backend-fault"), std::string::npos);
}

// --- engine integration ------------------------------------------------------

Circuit make_rqc() {
  rqc::RqcOptions opt;
  opt.rows = 2;
  opt.cols = 3;
  opt.depth = 8;
  opt.seed = 7;
  return rqc::generate_rqc(opt);
}

engine::SimRequest make_request(const Circuit& c, std::uint64_t seed) {
  engine::SimRequest req;
  req.circuit = c;
  req.backend = "hip";
  req.seed = seed;
  req.num_samples = 16;
  req.bypass_result_cache = true;
  return req;
}

TEST(FlightRecorderEngine, RecordsCompletedRequestsWithStages) {
  engine::EngineOptions opt;
  opt.num_workers = 1;
  engine::SimulationEngine eng(opt);  // recorder on by default
  const Circuit c = make_rqc();
  const engine::SimResult r = eng.run(make_request(c, 1));
  ASSERT_TRUE(r.ok) << r.error;

  const FlightRecorder* rec = eng.flight_recorder();
  ASSERT_NE(rec, nullptr);
  const std::vector<RequestRecord> recent = rec->recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].corr, r.request_id);
  EXPECT_EQ(recent[0].kind, "circuit");
  EXPECT_EQ(recent[0].backend, r.backend_used);
  EXPECT_EQ(recent[0].outcome, "ok");
  EXPECT_TRUE(recent[0].ok);
  EXPECT_GT(recent[0].total_ms, 0.0);
  EXPECT_GE(recent[0].total_ms,
            recent[0].execute_ms);  // stages nest inside the total

  // The retained events include the request span tree and device events.
  std::vector<std::string> names;
  for (const TraceEvent& e : rec->events()) names.push_back(e.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "request"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "execute"), names.end());
}

TEST(FlightRecorderEngine, CacheHitOutcomeIsMarked) {
  engine::EngineOptions opt;
  opt.num_workers = 1;
  engine::SimulationEngine eng(opt);
  const Circuit c = make_rqc();
  engine::SimRequest req = make_request(c, 2);
  req.bypass_result_cache = false;
  ASSERT_TRUE(eng.run(req).ok);
  const engine::SimResult hit = eng.run(req);
  ASSERT_TRUE(hit.ok);
  ASSERT_TRUE(hit.result_cache_hit);

  const std::vector<RequestRecord> recent = eng.flight_recorder()->recent(1);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_TRUE(recent[0].cache_hit);
  EXPECT_NE(recent[0].outcome.find("cache-hit"), std::string::npos);
}

// The acceptance contract of the snapshot path: a forced SLO breach writes
// a snapshot whose span tree for the offending request is EXPECT_EQ-equal
// to what a live Tracer captured for the same run.
TEST(FlightRecorderEngine, BreachSnapshotMatchesLiveTraceSpanTree) {
  // trigger_snapshot mkdirs the target, so a fresh subdirectory is fine.
  const std::string dir = ::testing::TempDir() + "qhip_flightrec";

  Tracer live;
  engine::EngineOptions opt;
  opt.num_workers = 1;
  opt.tracer = &live;
  opt.snapshot_dir = dir;
  opt.watchdog.epoch_seconds = 60;  // everything lands in one epoch
  opt.watchdog.window_epochs = 4;
  opt.watchdog.rules.push_back(
      engine::parse_slo_rule("any:p99_ms=0.000001,min_requests=2"));
  engine::SimulationEngine eng(opt);

  const Circuit c = make_rqc();
  std::uint64_t breach_corr = 0;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    const engine::SimResult r = eng.run(make_request(c, s));
    ASSERT_TRUE(r.ok) << r.error;
    if (s == 2) breach_corr = r.request_id;  // min_requests=2: this one trips
  }

  const engine::EngineMetrics m = eng.metrics();
  ASSERT_GE(m.slo_breaches, 1u);
  ASSERT_GE(m.snapshots_written, 1u);
  ASSERT_FALSE(m.last_snapshot_path.empty());

  // Snapshots land in the configured directory and parse as a snapshot.
  EXPECT_EQ(m.last_snapshot_path.rfind(dir + "/snapshot-", 0), 0u)
      << m.last_snapshot_path;
  const ParsedTrace snap = read_trace_file(m.last_snapshot_path);
  EXPECT_EQ(snap.snapshot_reason, "p99-any");
  ASSERT_FALSE(snap.flight_records.empty());

  // The offending request's span tree, live vs snapshot. The snapshot was
  // written synchronously inside the breaching request's completion, so
  // every span the live Tracer holds for that corr is in it too.
  using SpanKey = std::tuple<std::string, std::uint64_t, std::uint64_t,
                             std::string>;
  auto span_tree = [&](const std::vector<ParsedEvent>& evs) {
    std::vector<SpanKey> keys;
    for (const ParsedEvent& e : evs) {
      if (e.cat == "request" && e.corr == breach_corr) {
        keys.emplace_back(e.name, e.ts_us, e.dur_us, e.detail);
      }
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  const ParsedTrace live_parsed = parse_trace_json(live.to_perfetto_json());
  const std::vector<SpanKey> live_tree = span_tree(live_parsed.events);
  const std::vector<SpanKey> snap_tree = span_tree(snap.events);
  ASSERT_FALSE(live_tree.empty());
  EXPECT_EQ(snap_tree, live_tree);

  // The offending request is in the snapshot's record ring too.
  bool found = false;
  for (const FlightRecord& fr : snap.flight_records) {
    found = found || fr.corr == breach_corr;
  }
  EXPECT_TRUE(found);

  // The companion text dump rode along.
  std::string txt_path = m.last_snapshot_path;
  const std::string suffix = ".trace.json";
  ASSERT_EQ(txt_path.size() - txt_path.rfind(suffix), suffix.size());
  txt_path.replace(txt_path.rfind(suffix), suffix.size(), ".flightrec.txt");
  std::FILE* f = std::fopen(txt_path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << txt_path;
  std::fclose(f);
}

TEST(FlightRecorderEngine, DebugTextAndTriggerSnapshotOnDemand) {
  engine::EngineOptions opt;
  opt.num_workers = 1;
  engine::SimulationEngine eng(opt);
  ASSERT_TRUE(eng.run(make_request(make_rqc(), 5)).ok);

  const std::string dbg = eng.debug_text();
  EXPECT_NE(dbg.find("corr"), std::string::npos);
  EXPECT_NE(dbg.find("circuit"), std::string::npos);

  // No snapshot_dir configured and none passed: nothing to write.
  EXPECT_EQ(eng.trigger_snapshot("manual"), "");

  const std::string dir = ::testing::TempDir() + "qhip_flightrec_manual";
  const std::string path = eng.trigger_snapshot("manual test!", dir);
  ASSERT_FALSE(path.empty());
  // The reason is sanitized into the filename.
  EXPECT_EQ(path.find('!'), std::string::npos);
  const ParsedTrace snap = read_trace_file(path);
  EXPECT_EQ(snap.snapshot_reason, "manual test!");
  EXPECT_EQ(snap.flight_records.size(), 1u);
  EXPECT_EQ(eng.metrics().snapshots_written, 1u);
}

}  // namespace
}  // namespace qhip::prof
