// Prometheus label-value escaping: a hostile backend spec or calibration key
// must not splice samples into the scrape. The round trip through
// prom_escape_label / prom_unescape_label is lossless, and
// EngineMetrics::to_prom_text escapes every interpolated label value.
//
// The second half audits the whole scrape against text-format 0.0.4: every
// family announced by # HELP/# TYPE exactly once, every sample belonging to
// an announced family, and histogram _bucket/_sum/_count internally
// consistent (cumulative buckets, +Inf == _count).
#include "src/prof/prom.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/rqc/rqc.h"

namespace qhip::prof {
namespace {

TEST(PromEscape, RoundTripsHostileStrings) {
  const std::string hostile[] = {
      "plain",
      "quote\"inside",
      "back\\slash",
      "new\nline",
      "hip\"} 1\nevil_metric 42",           // the classic injection
      "\\n literal backslash-n",
      "trailing backslash \\",
      std::string("\n\n\"\"\\\\"),
  };
  for (const std::string& s : hostile) {
    const std::string esc = prom_escape_label(s);
    // The escaped form is safe to interpolate: no raw quote, no raw newline.
    EXPECT_EQ(esc.find('\n'), std::string::npos) << s;
    for (std::size_t i = 0; i < esc.size(); ++i) {
      if (esc[i] == '"') {
        ASSERT_GT(i, 0u);
        EXPECT_EQ(esc[i - 1], '\\') << s;
      }
    }
    EXPECT_EQ(prom_unescape_label(esc), s);
  }
}

TEST(PromEscape, EngineMetricsEscapeHostileSpecs) {
  const std::string hostile = "hip\"} 1\nevil_metric 42";
  engine::EngineMetrics m;
  m.planner_decisions = 1;
  m.planner_chosen[hostile] = 3;
  m.planner_calibration[hostile + "/q20"] = 1.25;

  const std::string text = m.to_prom_text();
  // The escaped form appears...
  EXPECT_NE(text.find(prom_escape_label(hostile)), std::string::npos);
  // ...and the injection does not: no line starts with the smuggled metric,
  // and every line is either a comment or a qhip_engine_* sample.
  EXPECT_EQ(text.find("\nevil_metric"), std::string::npos);
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(line.rfind("#", 0) == 0 || line.rfind("qhip_engine_", 0) == 0)
        << "spliced line: " << line;
  }
}

TEST(PromEscape, EscapedLabelValueRecoversOriginal) {
  // A scraper that unescapes the label value must read back the exact spec.
  const std::string hostile = "spec with \"quotes\", \\ and \nnewline";
  engine::EngineMetrics m;
  m.planner_chosen[hostile] = 1;
  const std::string text = m.to_prom_text();

  const std::string needle = "qhip_engine_planner_chosen{backend=\"";
  const std::size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  const std::size_t start = at + needle.size();
  const std::size_t end = text.find("\"}", start);
  ASSERT_NE(end, std::string::npos);
  EXPECT_EQ(prom_unescape_label(text.substr(start, end - start)), hostile);
}

// --- text-format 0.0.4 validator ---------------------------------------------

struct PromFamily {
  int help_lines = 0;
  int type_lines = 0;
  std::string type;
};

struct HistSeries {  // one label set of one histogram family
  std::vector<std::uint64_t> bucket_cum;  // in exposition order, +Inf last
  bool saw_inf = false;
  bool saw_sum = false;
  std::uint64_t count = 0;
  bool saw_count = false;
};

// Base metric name of a sample line: everything before '{' or ' '.
std::string sample_name(const std::string& line) {
  const std::size_t cut = line.find_first_of("{ ");
  return line.substr(0, cut);
}

// Maps a sample name to its announced family: histogram samples use the
// _bucket/_sum/_count suffixes of their family name.
std::string family_of(const std::string& name,
                      const std::map<std::string, PromFamily>& families) {
  if (families.count(name) != 0) return name;
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s = suffix;
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      const std::string base = name.substr(0, name.size() - s.size());
      if (families.count(base) != 0) return base;
    }
  }
  return "";
}

// Validates `text` as Prometheus text-format 0.0.4 and cross-checks every
// histogram series. Uses EXPECT so one run reports every violation.
void validate_prom_text(const std::string& text) {
  std::map<std::string, PromFamily> families;
  std::vector<std::pair<std::string, std::string>> samples;  // name, line

  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      families[rest.substr(0, sp)].help_lines++;
      EXPECT_GT(rest.size(), sp + 1) << "empty HELP text: " << line;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      PromFamily& f = families[rest.substr(0, sp)];
      f.type_lines++;
      f.type = rest.substr(sp + 1);
      EXPECT_TRUE(f.type == "counter" || f.type == "gauge" ||
                  f.type == "histogram")
          << line;
      continue;
    }
    if (line[0] == '#') continue;  // other comments (# EXEMPLAR) are ignored
    samples.emplace_back(sample_name(line), line);
  }

  ASSERT_FALSE(families.empty());
  for (const auto& [name, f] : families) {
    EXPECT_EQ(f.help_lines, 1) << "# HELP lines for " << name;
    EXPECT_EQ(f.type_lines, 1) << "# TYPE lines for " << name;
  }

  std::map<std::string, HistSeries> hists;  // key: sample name + labels
  for (const auto& [name, full] : samples) {
    const std::string fam = family_of(name, families);
    ASSERT_FALSE(fam.empty()) << "sample without # HELP/# TYPE: " << full;
    // The value token is everything after the last space.
    const std::size_t sp = full.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << full;
    const std::string value_tok = full.substr(sp + 1);
    char* end = nullptr;
    const double value = std::strtod(value_tok.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparseable value in: " << full;

    if (families[fam].type != "histogram") {
      EXPECT_EQ(name, fam) << "suffixed sample of non-histogram: " << full;
      continue;
    }
    // Histogram sample: bucket into its series by labels minus `le`.
    const std::string suffix = name.substr(fam.size());
    std::string labels;
    if (const std::size_t brace = full.find('{');
        brace != std::string::npos && brace < sp) {
      labels = full.substr(brace, full.find('}', brace) + 1 - brace);
    }
    if (suffix == "_bucket") {
      const std::size_t le = labels.find("le=\"");
      ASSERT_NE(le, std::string::npos) << "_bucket without le: " << full;
      const std::size_t le_end = labels.find('"', le + 4);
      const std::string le_val = labels.substr(le + 4, le_end - le - 4);
      // Series key: labels with the le pair removed (it is the last label).
      std::string key = fam + labels.substr(0, le);
      HistSeries& h = hists[key];
      EXPECT_FALSE(h.saw_inf) << "bucket after +Inf: " << full;
      h.bucket_cum.push_back(static_cast<std::uint64_t>(value));
      if (le_val == "+Inf") h.saw_inf = true;
    } else if (suffix == "_sum") {
      hists[fam + labels].saw_sum = true;
    } else if (suffix == "_count") {
      HistSeries& h = hists[fam + labels];
      h.saw_count = true;
      h.count = static_cast<std::uint64_t>(value);
    } else {
      ADD_FAILURE() << "unsuffixed histogram sample: " << full;
    }
  }

  // _bucket keys carry a trailing '{...' prefix fragment while _sum/_count
  // carry the full label set; reconcile by matching prefixes.
  for (auto& [key, h] : hists) {
    if (h.bucket_cum.empty()) continue;  // the _sum/_count half of a series
    EXPECT_TRUE(h.saw_inf) << key << ": histogram without an +Inf bucket";
    for (std::size_t i = 1; i < h.bucket_cum.size(); ++i) {
      EXPECT_GE(h.bucket_cum[i], h.bucket_cum[i - 1])
          << key << ": cumulative bucket counts decreased at " << i;
    }
    // Find the matching _sum/_count series (same family+labels, with the
    // le pair stripped the bucket key ends just before "le=").
    std::string want = key;
    if (!want.empty() && (want.back() == ',' || want.back() == '{')) {
      want.pop_back();
      if (!want.empty() && want.back() == '{') want.pop_back();
      if (want.find('{') != std::string::npos) want += '}';
    }
    const auto it = hists.find(want);
    ASSERT_NE(it, hists.end()) << key << ": no _sum/_count series (" << want
                               << ")";
    EXPECT_TRUE(it->second.saw_sum) << want << ": missing _sum";
    EXPECT_TRUE(it->second.saw_count) << want << ": missing _count";
    EXPECT_EQ(h.bucket_cum.back(), it->second.count)
        << want << ": +Inf bucket != _count";
  }
}

TEST(PromFormat, SyntheticMetricsPassTheValidator) {
  engine::EngineMetrics m;
  m.submitted = 10;
  m.completed = 8;
  m.rejected = 2;
  m.planner_decisions = 3;
  m.planner_chosen["hip"] = 2;
  m.planner_chosen["cpu"] = 1;
  m.planner_calibration["hip/q20"] = 1.25;
  m.slo_breaches = 1;
  m.snapshots_written = 1;
  for (double v : {0.5, 1.5, 40.0}) {
    m.queue_ms.record(v);
    m.fuse_ms.record(v);
    m.execute_ms.record(v);
    m.sample_ms.record(v);
    m.total_ms.record(v * 4);
  }
  m.fused_gates.record(12);
  m.result_bytes.record(4096);
  m.trajectories_per_batch.record(16);
  m.exemplars["total"] = {42, 160.0};
  m.exemplars["execute"] = {42, 40.0};

  const std::string text = m.to_prom_text();
  validate_prom_text(text);

  // The exemplar annotations are comment lines carrying the slowest corr.
  EXPECT_NE(
      text.find("# EXEMPLAR qhip_engine_stage_latency_ms{stage=\"total\"} "
                "corr=42"),
      std::string::npos);
}

TEST(PromFormat, LiveEngineScrapePassesTheValidator) {
  rqc::RqcOptions ropt;
  ropt.rows = 2;
  ropt.cols = 3;
  ropt.depth = 8;
  ropt.seed = 7;
  engine::EngineOptions opt;
  opt.num_workers = 1;
  opt.planner_candidates = {"cpu", "hip"};
  engine::SimulationEngine eng(opt);
  engine::SimRequest req;
  req.circuit = rqc::generate_rqc(ropt);
  req.backend = "auto";
  req.num_samples = 16;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    req.seed = s;
    const engine::SimResult r = eng.run(req);
    ASSERT_TRUE(r.ok) << r.error;
  }
  validate_prom_text(eng.metrics().to_prom_text());
}

}  // namespace
}  // namespace qhip::prof
