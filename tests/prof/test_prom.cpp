// Prometheus label-value escaping: a hostile backend spec or calibration key
// must not splice samples into the scrape. The round trip through
// prom_escape_label / prom_unescape_label is lossless, and
// EngineMetrics::to_prom_text escapes every interpolated label value.
#include "src/prof/prom.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/engine/engine.h"

namespace qhip::prof {
namespace {

TEST(PromEscape, RoundTripsHostileStrings) {
  const std::string hostile[] = {
      "plain",
      "quote\"inside",
      "back\\slash",
      "new\nline",
      "hip\"} 1\nevil_metric 42",           // the classic injection
      "\\n literal backslash-n",
      "trailing backslash \\",
      std::string("\n\n\"\"\\\\"),
  };
  for (const std::string& s : hostile) {
    const std::string esc = prom_escape_label(s);
    // The escaped form is safe to interpolate: no raw quote, no raw newline.
    EXPECT_EQ(esc.find('\n'), std::string::npos) << s;
    for (std::size_t i = 0; i < esc.size(); ++i) {
      if (esc[i] == '"') {
        ASSERT_GT(i, 0u);
        EXPECT_EQ(esc[i - 1], '\\') << s;
      }
    }
    EXPECT_EQ(prom_unescape_label(esc), s);
  }
}

TEST(PromEscape, EngineMetricsEscapeHostileSpecs) {
  const std::string hostile = "hip\"} 1\nevil_metric 42";
  engine::EngineMetrics m;
  m.planner_decisions = 1;
  m.planner_chosen[hostile] = 3;
  m.planner_calibration[hostile + "/q20"] = 1.25;

  const std::string text = m.to_prom_text();
  // The escaped form appears...
  EXPECT_NE(text.find(prom_escape_label(hostile)), std::string::npos);
  // ...and the injection does not: no line starts with the smuggled metric,
  // and every line is either a comment or a qhip_engine_* sample.
  EXPECT_EQ(text.find("\nevil_metric"), std::string::npos);
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(line.rfind("#", 0) == 0 || line.rfind("qhip_engine_", 0) == 0)
        << "spliced line: " << line;
  }
}

TEST(PromEscape, EscapedLabelValueRecoversOriginal) {
  // A scraper that unescapes the label value must read back the exact spec.
  const std::string hostile = "spec with \"quotes\", \\ and \nnewline";
  engine::EngineMetrics m;
  m.planner_chosen[hostile] = 1;
  const std::string text = m.to_prom_text();

  const std::string needle = "qhip_engine_planner_chosen{backend=\"";
  const std::size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  const std::size_t start = at + needle.size();
  const std::size_t end = text.find("\"}", start);
  ASSERT_NE(end, std::string::npos);
  EXPECT_EQ(prom_unescape_label(text.substr(start, end - start)), hostile);
}

}  // namespace
}  // namespace qhip::prof
