// Edge cases of the fixed-bucket log-scale histogram: empty quantiles,
// boundary values (upper bounds are inclusive), non-positive observations,
// and the overflow bucket's saturation semantics.
#include "src/prof/histogram.h"

#include <gtest/gtest.h>

#include "src/base/error.h"

namespace qhip::prof {
namespace {

TEST(Histogram, EmptyReportsZeros) {
  const Histogram h(1.0, 2.0, 4);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
  for (std::size_t i = 0; i <= h.num_buckets(); ++i) {
    EXPECT_EQ(h.bucket_count(i), 0u) << i;
  }
}

TEST(Histogram, BoundsAreGeometric) {
  const Histogram h(1.0, 2.0, 4);
  ASSERT_EQ(h.num_buckets(), 4u);
  EXPECT_EQ(h.upper_bound(0), 1.0);
  EXPECT_EQ(h.upper_bound(1), 2.0);
  EXPECT_EQ(h.upper_bound(2), 4.0);
  EXPECT_EQ(h.upper_bound(3), 8.0);
}

TEST(Histogram, UpperBoundsAreInclusive) {
  // Bucket i covers (bound(i-1), bound(i)]: a value exactly on a bound must
  // land in that bucket, not the next one (Prometheus "le" semantics).
  Histogram h(1.0, 2.0, 4);
  h.record(1.0);
  h.record(2.0);
  h.record(2.0000000001);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 0u);
}

TEST(Histogram, NonPositiveValuesLandInFirstBucket) {
  Histogram h(1.0, 2.0, 4);
  h.record(0.0);
  h.record(-3.5);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), -3.5);  // the sum still sees the raw values
}

TEST(Histogram, OverflowBucketSaturatesQuantiles) {
  Histogram h(1.0, 2.0, 4);  // last finite bound: 8.0
  h.record(1e9);
  h.record(1e12);
  EXPECT_EQ(h.bucket_count(h.num_buckets()), 2u);
  // The histogram cannot see beyond its last finite bound; quantiles clamp
  // there instead of inventing a value.
  EXPECT_EQ(h.quantile(0.5), 8.0);
  EXPECT_EQ(h.quantile(1.0), 8.0);
  // But the sum/mean are exact.
  EXPECT_EQ(h.sum(), 1e9 + 1e12);
}

TEST(Histogram, QuantileInterpolatesInsideBucket) {
  Histogram h(1.0, 2.0, 4);
  for (int i = 0; i < 100; ++i) h.record(1.5);  // all in bucket (1, 2]
  const double q50 = h.quantile(0.5);
  EXPECT_GT(q50, 1.0);
  EXPECT_LE(q50, 2.0);
  EXPECT_EQ(h.quantile(1.0), 2.0);  // p=1 reaches the bucket's upper bound
  EXPECT_NEAR(h.mean(), 1.5, 1e-12);
}

TEST(Histogram, ClearResetsEverything) {
  Histogram h(1.0, 2.0, 4);
  h.record(3.0);
  h.record(100.0);
  ASSERT_EQ(h.count(), 2u);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
  for (std::size_t i = 0; i <= h.num_buckets(); ++i) {
    EXPECT_EQ(h.bucket_count(i), 0u) << i;
  }
}

TEST(Histogram, RejectsDegenerateShapes) {
  EXPECT_THROW(Histogram(0.0, 2.0, 4), Error);   // first bound must be > 0
  EXPECT_THROW(Histogram(-1.0, 2.0, 4), Error);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);   // growth must be > 1
  EXPECT_THROW(Histogram(1.0, 2.0, 0), Error);   // need at least one bucket
}

}  // namespace
}  // namespace qhip::prof
