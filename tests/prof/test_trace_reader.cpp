// trace_reader hostile-input hardening: truncated JSON, events missing
// "ts"/"ph", duplicate correlation ids, NaN/negative/huge numeric fields,
// and mistyped flightRecorder members must be rejected with qhip::Error or
// skipped cleanly — never crash, never invoke UB double->int casts.
#include "src/prof/trace_reader.h"

#include <gtest/gtest.h>

#include <climits>
#include <cstdint>
#include <string>

#include "src/base/error.h"

namespace qhip::prof {
namespace {

TEST(TraceReaderHostile, TruncatedJsonThrows) {
  const char* truncated[] = {
      "",
      "{",
      "{\"traceEvents\":[",
      "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"k\"",
      "{\"traceEvents\":[{\"ph\":\"X\"},",
      "{\"traceEvents\":[{}]",
      "[{\"ph\":\"X\"}",
      "{\"traceEvents\":[\"unterminated string]}",
  };
  for (const char* t : truncated) {
    EXPECT_THROW(parse_trace_json(t), Error) << "input: " << t;
  }
}

TEST(TraceReaderHostile, GarbageDocumentsThrow) {
  EXPECT_THROW(parse_trace_json("null"), Error);
  EXPECT_THROW(parse_trace_json("42"), Error);
  EXPECT_THROW(parse_trace_json("\"a string\""), Error);
  EXPECT_THROW(parse_trace_json("{\"notTraceEvents\":[]}"), Error);
  EXPECT_THROW(parse_trace_json("{\"traceEvents\":{}}"), Error);
  EXPECT_THROW(parse_trace_json("{\"traceEvents\":[]} trailing"), Error);
  EXPECT_THROW(parse_trace_json("{\"traceEvents\":[truw]}"), Error);
}

TEST(TraceReaderHostile, EventsMissingPhOrTsAreSkippedOrDefaulted) {
  // No "ph": not an X/flow/counter event -> skipped. No "ts": defaults to 0.
  const ParsedTrace t = parse_trace_json(
      "{\"traceEvents\":["
      "{\"name\":\"no-ph\"},"
      "{\"ph\":\"X\",\"name\":\"no-ts\",\"dur\":5},"
      "{\"ph\":\"M\",\"name\":\"metadata\"},"
      "17,\"stray string\",null,"
      "{\"ph\":\"X\",\"name\":\"ok\",\"ts\":10,\"dur\":2}"
      "]}");
  ASSERT_EQ(t.events.size(), 2u);
  EXPECT_EQ(t.events[0].name, "no-ts");
  EXPECT_EQ(t.events[0].ts_us, 0u);
  EXPECT_EQ(t.events[0].dur_us, 5u);
  EXPECT_EQ(t.events[1].name, "ok");
  EXPECT_TRUE(t.flows.empty());
}

TEST(TraceReaderHostile, MistypedFieldsFallBackToDefaults) {
  const ParsedTrace t = parse_trace_json(
      "{\"traceEvents\":["
      "{\"ph\":\"X\",\"name\":7,\"ts\":\"yesterday\",\"dur\":true,"
      "\"tid\":[1],\"args\":{\"corr\":\"abc\",\"bytes\":null,\"detail\":3}}"
      "]}");
  ASSERT_EQ(t.events.size(), 1u);
  EXPECT_EQ(t.events[0].name, "");
  EXPECT_EQ(t.events[0].ts_us, 0u);
  EXPECT_EQ(t.events[0].dur_us, 0u);
  EXPECT_EQ(t.events[0].tid, 0);
  EXPECT_EQ(t.events[0].corr, 0u);
  EXPECT_EQ(t.events[0].bytes, 0u);
  EXPECT_EQ(t.events[0].detail, "");
}

TEST(TraceReaderHostile, OutOfRangeNumbersClampInsteadOfUB) {
  const ParsedTrace t = parse_trace_json(
      "{\"traceEvents\":["
      "{\"ph\":\"X\",\"name\":\"neg\",\"ts\":-5,\"dur\":-1e9,\"tid\":-1e300,"
      "\"args\":{\"corr\":-3,\"bytes\":-7}},"
      "{\"ph\":\"X\",\"name\":\"huge\",\"ts\":1e300,\"dur\":1e300,"
      "\"tid\":1e300,\"args\":{\"corr\":1e300,\"bytes\":1e300}},"
      "{\"ph\":\"s\",\"name\":\"flow\",\"ts\":2,\"id\":-9}"
      "]}");
  ASSERT_EQ(t.events.size(), 2u);
  EXPECT_EQ(t.events[0].ts_us, 0u);
  EXPECT_EQ(t.events[0].dur_us, 0u);
  EXPECT_EQ(t.events[0].tid, INT_MIN);
  EXPECT_EQ(t.events[0].corr, 0u);
  EXPECT_EQ(t.events[0].bytes, 0u);
  EXPECT_EQ(t.events[1].ts_us, UINT64_MAX);
  EXPECT_EQ(t.events[1].dur_us, UINT64_MAX);
  EXPECT_EQ(t.events[1].tid, INT_MAX);
  EXPECT_EQ(t.events[1].corr, UINT64_MAX);
  EXPECT_EQ(t.events[1].bytes, UINT64_MAX);
  ASSERT_EQ(t.flows.size(), 1u);
  EXPECT_EQ(t.flows[0].corr, 0u);
}

TEST(TraceReaderHostile, DuplicateCorrIdsAggregateWithoutConfusion) {
  // Two requests sharing a corr id (a buggy or adversarial producer): the
  // reader keeps every event; nothing is dropped, merged, or crashed on.
  const ParsedTrace t = parse_trace_json(
      "{\"traceEvents\":["
      "{\"ph\":\"X\",\"name\":\"request\",\"cat\":\"request\",\"ts\":0,"
      "\"dur\":10,\"args\":{\"corr\":5}},"
      "{\"ph\":\"X\",\"name\":\"request\",\"cat\":\"request\",\"ts\":100,"
      "\"dur\":20,\"args\":{\"corr\":5}},"
      "{\"ph\":\"X\",\"name\":\"k\",\"cat\":\"kernel\",\"ts\":1,\"dur\":1,"
      "\"args\":{\"corr\":5}},"
      "{\"ph\":\"s\",\"name\":\"f\",\"ts\":0,\"id\":5},"
      "{\"ph\":\"s\",\"name\":\"f\",\"ts\":100,\"id\":5}"
      "]}");
  EXPECT_EQ(t.events.size(), 3u);
  EXPECT_EQ(t.flows.size(), 2u);
  for (const ParsedEvent& e : t.events) EXPECT_EQ(e.corr, 5u);
}

TEST(TraceReaderHostile, BareArrayAndCountersStillParse) {
  const ParsedTrace t = parse_trace_json(
      "[{\"ph\":\"X\",\"name\":\"k\",\"ts\":1,\"dur\":2},"
      "{\"ph\":\"C\",\"name\":\"c\",\"args\":{\"value\":2.5}},"
      "{\"ph\":\"C\",\"name\":\"c\",\"args\":{\"value\":3.5}},"
      "{\"ph\":\"C\",\"name\":\"no-args\"}]");
  EXPECT_EQ(t.events.size(), 1u);
  EXPECT_DOUBLE_EQ(t.counters.at("c"), 3.5);  // last write wins
  EXPECT_TRUE(t.snapshot_reason.empty());     // not a snapshot
  EXPECT_TRUE(t.flight_records.empty());
}

TEST(TraceReaderHostile, MistypedFlightRecorderDegradesGracefully) {
  // "flightRecorder" present but hostile: wrong types everywhere. The parse
  // must survive with defaulted fields, keeping the valid record.
  const ParsedTrace t = parse_trace_json(
      "{\"traceEvents\":[],\"flightRecorder\":{"
      "\"reason\":42,\"dropped_events\":\"many\","
      "\"records\":[17,{\"corr\":\"x\",\"kind\":3,\"ok\":\"yes\","
      "\"attempts\":-2,\"total_ms\":\"slow\"},"
      "{\"corr\":9,\"kind\":\"circuit\",\"ok\":true,\"total_ms\":1.5}]}}");
  EXPECT_EQ(t.snapshot_reason, "unknown");  // mistyped reason -> placeholder
  EXPECT_EQ(t.snapshot_dropped_events, 0u);
  ASSERT_EQ(t.flight_records.size(), 2u);
  EXPECT_EQ(t.flight_records[0].corr, 0u);
  EXPECT_EQ(t.flight_records[0].kind, "");
  EXPECT_FALSE(t.flight_records[0].ok);
  EXPECT_EQ(t.flight_records[0].attempts, 0u);
  EXPECT_DOUBLE_EQ(t.flight_records[0].total_ms, 0.0);
  EXPECT_EQ(t.flight_records[1].corr, 9u);
  EXPECT_EQ(t.flight_records[1].kind, "circuit");
  EXPECT_TRUE(t.flight_records[1].ok);
  EXPECT_DOUBLE_EQ(t.flight_records[1].total_ms, 1.5);

  // records not an array / flightRecorder not an object: ignored.
  const ParsedTrace a = parse_trace_json(
      "{\"traceEvents\":[],\"flightRecorder\":{\"reason\":\"r\","
      "\"records\":7}}");
  EXPECT_EQ(a.snapshot_reason, "r");
  EXPECT_TRUE(a.flight_records.empty());
  const ParsedTrace b =
      parse_trace_json("{\"traceEvents\":[],\"flightRecorder\":[1,2]}");
  EXPECT_TRUE(b.snapshot_reason.empty());
}

TEST(TraceReaderHostile, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/definitely/missing.json"), Error);
}

}  // namespace
}  // namespace qhip::prof
