#include "src/prof/trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <thread>

#include "src/base/error.h"
#include "src/base/timer.h"
#include "src/prof/histogram.h"
#include "src/prof/trace_reader.h"

namespace qhip {
namespace {

TEST(Tracer, RecordAndSummary) {
  Tracer t;
  t.record("ApplyGateH_Kernel", TraceKind::kKernel, 100, 10, 0, 4096);
  t.record("ApplyGateL_Kernel", TraceKind::kKernel, 110, 30, 0, 4096);
  t.record("ApplyGateH_Kernel", TraceKind::kKernel, 150, 12, 0, 4096);
  t.record("hipMemcpyAsync", TraceKind::kMemcpy, 95, 5, 1, 512);
  EXPECT_EQ(t.size(), 4u);

  const auto sum = t.summary();
  ASSERT_EQ(sum.size(), 3u);
  // Sorted by descending total time: L (30) first, then H (22), then memcpy.
  EXPECT_EQ(sum[0].name, "ApplyGateL_Kernel");
  EXPECT_EQ(sum[1].name, "ApplyGateH_Kernel");
  EXPECT_EQ(sum[1].count, 2u);
  EXPECT_EQ(sum[1].total_us, 22u);
  EXPECT_EQ(sum[2].total_bytes, 512u);
}

TEST(Tracer, PerfettoJsonShape) {
  Tracer t;
  t.record("K\"quoted\"", TraceKind::kKernel, 1, 2, 3, 4);
  const std::string j = t.to_perfetto_json();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"cat\":\"kernel\""), std::string::npos);
  EXPECT_NE(j.find("K\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(j.find("\"ts\":1"), std::string::npos);
  EXPECT_NE(j.find("\"dur\":2"), std::string::npos);
  EXPECT_NE(j.find("\"tid\":3"), std::string::npos);
}

TEST(Tracer, WriteFile) {
  Tracer t;
  t.record("k", TraceKind::kKernel, 0, 1);
  const std::string path = testing::TempDir() + "/qhip_trace_test.json";
  t.write_perfetto_json(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string all((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(all, t.to_perfetto_json());
  EXPECT_THROW(t.write_perfetto_json("/nonexistent-dir/x.json"), Error);
}

TEST(Tracer, ScopedTraceRecordsDuration) {
  Tracer t;
  {
    ScopedTrace span(&t, "work", TraceKind::kHost, 2, 99);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].name, "work");
  EXPECT_GE(evs[0].dur_us, 3000u);
  EXPECT_EQ(evs[0].lane, 2);
  EXPECT_EQ(evs[0].bytes, 99u);
}

TEST(Tracer, NullTracerIsNoop) {
  // Disabled tracing must be safe and free.
  ScopedTrace span(nullptr, "ignored");
}

TEST(Tracer, ThreadSafety) {
  Tracer t;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&t, i] {
      for (int j = 0; j < 250; ++j) {
        t.record("evt" + std::to_string(i), TraceKind::kHost, j, 1, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.size(), 1000u);
}

TEST(Tracer, Clear) {
  Tracer t;
  t.record("k", TraceKind::kKernel, 0, 1);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.summary().empty());
}

// --- spans, flow events, and the round-trip through the trace reader --------

TEST(Tracer, SpanFlowRoundTrip) {
  Tracer t;
  const std::uint64_t corr = 7;
  // Request 7: enclosing span + two stages + two device events. A second
  // request (8) has a span but no device events -> no flow chain.
  t.record("request", TraceKind::kSpan, 100, 900, span_lane(corr), 0, corr,
           "ok on hip");
  t.record("queue", TraceKind::kSpan, 100, 50, span_lane(corr), 0, corr);
  t.record("execute", TraceKind::kSpan, 150, 800, span_lane(corr), 0, corr,
           "attempt 1 on hip: ok");
  t.record("ApplyGateH_Kernel", TraceKind::kKernel, 200, 300, 1, 0, corr);
  t.record("hipMemcpyAsync(DtoH)", TraceKind::kMemcpy, 520, 40, 2, 512, corr);
  t.record("request", TraceKind::kSpan, 100, 10, span_lane(8), 0, 8);
  t.record("untagged", TraceKind::kKernel, 0, 5, 1);

  const prof::ParsedTrace pt = prof::parse_trace_json(t.to_perfetto_json());
  ASSERT_EQ(pt.events.size(), 7u);

  // Spans parse back with category "request", corr, and detail intact.
  int spans = 0;
  for (const auto& e : pt.events) {
    if (e.cat != "request") continue;
    ++spans;
    EXPECT_NE(e.corr, 0u);
    if (e.name == "execute") EXPECT_EQ(e.detail, "attempt 1 on hip: ok");
  }
  EXPECT_EQ(spans, 4);

  // Exactly one flow chain (request 7): s anchored on the enclosing span's
  // row, then a t step, then f with the enclosing binding.
  ASSERT_EQ(pt.flows.size(), 3u);
  EXPECT_EQ(pt.flows[0].ph, "s");
  EXPECT_EQ(pt.flows[0].corr, corr);
  EXPECT_EQ(pt.flows[0].tid, span_lane(corr));
  EXPECT_EQ(pt.flows[0].ts_us, 100u);
  EXPECT_EQ(pt.flows[1].ph, "t");
  EXPECT_EQ(pt.flows[1].tid, 1);  // first device event's lane, by ts
  EXPECT_EQ(pt.flows[2].ph, "f");
  EXPECT_EQ(pt.flows[2].tid, 2);
  EXPECT_EQ(pt.flows[2].ts_us, 520u);

  // Flow vertices resolve to actual device events of the same request.
  for (const auto& f : pt.flows) {
    if (f.ph == "s") continue;
    bool found = false;
    for (const auto& e : pt.events) {
      found |= e.corr == f.corr && e.tid == f.tid && e.ts_us == f.ts_us &&
               (e.cat == "kernel" || e.cat == "memcpy");
    }
    EXPECT_TRUE(found) << f.ph << " vertex has no matching device event";
  }
}

TEST(Tracer, CountersRoundTrip) {
  Tracer t;
  t.record("k", TraceKind::kKernel, 0, 1);
  t.set_counter("engine/requests_completed", 42);
  t.set_counter("engine/latency_p50_ms", 1.5);
  const prof::ParsedTrace pt = prof::parse_trace_json(t.to_perfetto_json());
  EXPECT_EQ(pt.counters.at("engine/requests_completed"), 42.0);
  EXPECT_EQ(pt.counters.at("engine/latency_p50_ms"), 1.5);
}

TEST(TraceReader, AcceptsBareArrayAndIgnoresUnknownPhases) {
  const std::string json = R"([
    {"name":"k","cat":"kernel","ph":"X","pid":1,"tid":0,"ts":5,"dur":2,
     "args":{"bytes":16,"corr":3,"detail":"d \"q\""}},
    {"name":"meta","ph":"M","args":{}},
    {"name":"c","ph":"C","args":{"value":2.5}}
  ])";
  const prof::ParsedTrace pt = prof::parse_trace_json(json);
  ASSERT_EQ(pt.events.size(), 1u);
  EXPECT_EQ(pt.events[0].bytes, 16u);
  EXPECT_EQ(pt.events[0].corr, 3u);
  EXPECT_EQ(pt.events[0].detail, "d \"q\"");
  EXPECT_EQ(pt.counters.at("c"), 2.5);
  EXPECT_THROW(prof::parse_trace_json("{\"nope\":[]}"), Error);
  EXPECT_THROW(prof::parse_trace_json("[{\"a\":}]"), Error);
}

// --- histograms --------------------------------------------------------------

TEST(Histogram, BucketBoundsAndCounts) {
  prof::Histogram h(1.0, 2.0, 4);  // bounds 1, 2, 4, 8 + overflow
  ASSERT_EQ(h.num_buckets(), 4u);
  EXPECT_DOUBLE_EQ(h.upper_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(h.upper_bound(3), 8.0);

  h.record(0.5);   // bucket 0
  h.record(1.0);   // bucket 0 (le bound is inclusive)
  h.record(1.5);   // bucket 1
  h.record(8.0);   // bucket 3
  h.record(100.0); // overflow
  h.record(-3.0);  // negative clamps into bucket 0
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bucket_count(0), 3u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.bucket_count(4), 1u);  // overflow
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 8.0 + 100.0 - 3.0);

  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(0), 0u);
}

TEST(Histogram, QuantileInterpolatesAndOverflowSaturates) {
  prof::Histogram h(1.0, 2.0, 4);
  for (int i = 0; i < 100; ++i) h.record(1.5);  // all in bucket 1 (1, 2]
  const double q = h.quantile(0.5);
  EXPECT_GE(q, 1.0);
  EXPECT_LE(q, 2.0);
  prof::Histogram o(1.0, 2.0, 2);
  o.record(1000);
  EXPECT_DOUBLE_EQ(o.quantile(0.99), o.upper_bound(1));
  EXPECT_DOUBLE_EQ(prof::Histogram(1, 2, 2).quantile(0.5), 0.0);  // empty
}

TEST(Histogram, StandardShapes) {
  // The engine's standard shapes stay within sane dynamic ranges.
  prof::Histogram lat = prof::latency_ms_histogram();
  EXPECT_DOUBLE_EQ(lat.upper_bound(0), 0.01);
  EXPECT_GT(lat.upper_bound(lat.num_buckets() - 1), 8e4);  // > 80 s
  prof::Histogram cnt = prof::count_histogram();
  EXPECT_DOUBLE_EQ(cnt.upper_bound(0), 1.0);
  prof::Histogram byt = prof::bytes_histogram();
  EXPECT_DOUBLE_EQ(byt.upper_bound(0), 64.0);
}

}  // namespace
}  // namespace qhip
