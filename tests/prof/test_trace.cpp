#include "src/prof/trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <thread>

#include "src/base/error.h"
#include "src/base/timer.h"

namespace qhip {
namespace {

TEST(Tracer, RecordAndSummary) {
  Tracer t;
  t.record("ApplyGateH_Kernel", TraceKind::kKernel, 100, 10, 0, 4096);
  t.record("ApplyGateL_Kernel", TraceKind::kKernel, 110, 30, 0, 4096);
  t.record("ApplyGateH_Kernel", TraceKind::kKernel, 150, 12, 0, 4096);
  t.record("hipMemcpyAsync", TraceKind::kMemcpy, 95, 5, 1, 512);
  EXPECT_EQ(t.size(), 4u);

  const auto sum = t.summary();
  ASSERT_EQ(sum.size(), 3u);
  // Sorted by descending total time: L (30) first, then H (22), then memcpy.
  EXPECT_EQ(sum[0].name, "ApplyGateL_Kernel");
  EXPECT_EQ(sum[1].name, "ApplyGateH_Kernel");
  EXPECT_EQ(sum[1].count, 2u);
  EXPECT_EQ(sum[1].total_us, 22u);
  EXPECT_EQ(sum[2].total_bytes, 512u);
}

TEST(Tracer, PerfettoJsonShape) {
  Tracer t;
  t.record("K\"quoted\"", TraceKind::kKernel, 1, 2, 3, 4);
  const std::string j = t.to_perfetto_json();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"cat\":\"kernel\""), std::string::npos);
  EXPECT_NE(j.find("K\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(j.find("\"ts\":1"), std::string::npos);
  EXPECT_NE(j.find("\"dur\":2"), std::string::npos);
  EXPECT_NE(j.find("\"tid\":3"), std::string::npos);
}

TEST(Tracer, WriteFile) {
  Tracer t;
  t.record("k", TraceKind::kKernel, 0, 1);
  const std::string path = testing::TempDir() + "/qhip_trace_test.json";
  t.write_perfetto_json(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string all((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(all, t.to_perfetto_json());
  EXPECT_THROW(t.write_perfetto_json("/nonexistent-dir/x.json"), Error);
}

TEST(Tracer, ScopedTraceRecordsDuration) {
  Tracer t;
  {
    ScopedTrace span(&t, "work", TraceKind::kHost, 2, 99);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].name, "work");
  EXPECT_GE(evs[0].dur_us, 3000u);
  EXPECT_EQ(evs[0].lane, 2);
  EXPECT_EQ(evs[0].bytes, 99u);
}

TEST(Tracer, NullTracerIsNoop) {
  // Disabled tracing must be safe and free.
  ScopedTrace span(nullptr, "ignored");
}

TEST(Tracer, ThreadSafety) {
  Tracer t;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&t, i] {
      for (int j = 0; j < 250; ++j) {
        t.record("evt" + std::to_string(i), TraceKind::kHost, j, 1, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.size(), 1000u);
}

TEST(Tracer, Clear) {
  Tracer t;
  t.record("k", TraceKind::kKernel, 0, 1);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.summary().empty());
}

}  // namespace
}  // namespace qhip
