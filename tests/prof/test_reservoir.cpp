// LatencyReservoir: the engine's bounded point-percentile window (PR 3
// inlined it; src/prof/reservoir.h extracted it). The regression that
// matters is wrap-around: once total_recorded() exceeds capacity the ring
// must answer percentiles over exactly the last `capacity` samples — an
// off-by-one in the overwrite cursor silently skews every p50/p95 the
// engine reports. Each test checks against a dense oracle that keeps all
// samples and slices the tail.
#include "src/prof/reservoir.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

namespace qhip::prof {
namespace {

// Deterministic, non-monotonic sample stream: xorshift keeps values spread
// over [0, 100) with no pattern the ring could accidentally align with.
double sample_at(std::uint64_t i) {
  std::uint64_t x = i + 0x9E3779B97F4A7C15ull;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  return static_cast<double>(x % 100000) / 1000.0;
}

std::vector<double> tail_sorted(const std::deque<double>& all,
                                std::size_t capacity) {
  const std::size_t n = std::min(all.size(), capacity);
  std::vector<double> tail(all.end() - static_cast<std::ptrdiff_t>(n),
                           all.end());
  std::sort(tail.begin(), tail.end());
  return tail;
}

TEST(LatencyReservoir, PercentileMatchesDenseOracleAfterWrap) {
  constexpr std::size_t kCapacity = 128;
  constexpr std::size_t kSamples = 1000;  // ~7.8 laps around the ring
  LatencyReservoir res(kCapacity);
  std::deque<double> all;

  const double ps[] = {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0};
  for (std::size_t i = 0; i < kSamples; ++i) {
    const double v = sample_at(i);
    res.record(v);
    all.push_back(v);

    // Check continuously, not just at the end: the first wrap (i ==
    // kCapacity) and every lap boundary are where a cursor bug shows.
    if (i < 2 * kCapacity || i % 97 == 0) {
      const std::vector<double> oracle = tail_sorted(all, kCapacity);
      ASSERT_EQ(res.sorted(), oracle) << "window diverged at sample " << i;
      for (const double p : ps) {
        ASSERT_DOUBLE_EQ(res.percentile(p), percentile_sorted(oracle, p))
            << "p=" << p << " at sample " << i;
      }
    }
  }
  EXPECT_EQ(res.size(), kCapacity);
  EXPECT_EQ(res.total_recorded(), kSamples);
}

TEST(LatencyReservoir, ExactWindowContentAfterManyLaps) {
  constexpr std::size_t kCapacity = 16;
  LatencyReservoir res(kCapacity);
  for (std::size_t i = 0; i < 1000; ++i) {
    res.record(static_cast<double>(i));
  }
  // The window must be exactly the last 16 values 984..999.
  std::vector<double> expect;
  for (std::size_t i = 984; i < 1000; ++i) {
    expect.push_back(static_cast<double>(i));
  }
  EXPECT_EQ(res.sorted(), expect);
  EXPECT_DOUBLE_EQ(res.percentile(0.0), 984.0);
  EXPECT_DOUBLE_EQ(res.percentile(1.0), 999.0);
  EXPECT_DOUBLE_EQ(res.percentile(0.5), (991.0 + 992.0) / 2.0);
  EXPECT_DOUBLE_EQ(res.mean(), (984.0 + 999.0) / 2.0);
}

TEST(LatencyReservoir, PartialFillUsesAllSamples) {
  LatencyReservoir res(64);
  res.record(3.0);
  res.record(1.0);
  res.record(2.0);
  EXPECT_EQ(res.size(), 3u);
  EXPECT_EQ(res.total_recorded(), 3u);
  const std::vector<double> want = {1.0, 2.0, 3.0};
  EXPECT_EQ(res.sorted(), want);
  EXPECT_DOUBLE_EQ(res.percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(res.mean(), 2.0);
}

TEST(LatencyReservoir, CapacityZeroIsDisabled) {
  LatencyReservoir res(0);
  res.record(1.0);
  res.record(2.0);
  EXPECT_EQ(res.size(), 0u);
  EXPECT_EQ(res.total_recorded(), 0u);
  EXPECT_DOUBLE_EQ(res.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(res.mean(), 0.0);
}

TEST(PercentileSorted, InterpolatesAndClamps) {
  const std::vector<double> s = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(s, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(s, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(s, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(s, 1.0 / 3.0), 20.0);
  // Out-of-range p clamps instead of indexing out of bounds.
  EXPECT_DOUBLE_EQ(percentile_sorted(s, -1.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(s, 2.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 0.5), 0.0);
}

}  // namespace
}  // namespace qhip::prof
