// AVX2 backend parity: the vectorized kernels must agree with the scalar
// reference on every gate width and target position, both precisions.
#include "src/simulator/simulator_avx.h"

#include <gtest/gtest.h>

#if defined(__AVX2__) && defined(__FMA__)

#include "src/base/rng.h"
#include "src/core/gates.h"
#include "src/fusion/fuser.h"
#include "src/rqc/rqc.h"
#include "src/simulator/reference.h"
#include "src/simulator/simulator_cpu.h"

namespace qhip {
namespace {

Circuit random_circuit(unsigned n, unsigned depth, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Circuit c;
  c.num_qubits = n;
  for (unsigned t = 0; t < depth; ++t) {
    std::vector<bool> used(n, false);
    for (unsigned q = 0; q < n; ++q) {
      if (used[q]) continue;
      const double r = rng.uniform();
      if (r < 0.35 && q + 1 < n && !used[q + 1]) {
        c.gates.push_back(gates::fs(t, q, q + 1, rng.uniform() * 2, rng.uniform()));
        used[q] = used[q + 1] = true;
      } else if (r < 0.7) {
        c.gates.push_back(gates::rxy(t, q, rng.uniform() * 6, rng.uniform() * 3));
        used[q] = true;
      }
    }
  }
  return c;
}

template <typename T>
class SimulatorAVXTyped : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(SimulatorAVXTyped, Precisions);

TYPED_TEST(SimulatorAVXTyped, SingleQubitGateEveryTarget) {
  const unsigned n = 10;
  ThreadPool pool(1);
  SimulatorAVX<TypeParam> avx(pool);
  for (qubit_t t = 0; t < n; ++t) {
    StateVector<TypeParam> a(n), b(n);
    a.set_uniform_state();
    b.set_uniform_state();
    const Gate g = gates::rxy(0, t, 0.4, 1.3);
    avx.apply_gate(g, a);
    reference_apply_gate(g, b);
    EXPECT_LT(statespace::max_abs_diff(a, b), state_tol<TypeParam>()) << t;
  }
}

TYPED_TEST(SimulatorAVXTyped, WideGatesEveryWidth) {
  Xoshiro256 rng(5);
  ThreadPool pool(2);
  SimulatorAVX<TypeParam> avx(pool);
  for (unsigned q = 2; q <= 6; ++q) {
    const unsigned n = q + 4;
    // Random unitary over qubits starting at slot 3 (vector path) and at
    // slot 0 (scalar fallback).
    for (qubit_t start : {qubit_t{3}, qubit_t{0}}) {
      if (start + q > n) continue;
      Circuit small = random_circuit(q, 6, 40 + q);
      Gate g;
      g.name = "fused";
      for (unsigned j = 0; j < q; ++j) g.qubits.push_back(start + j);
      g.matrix = circuit_unitary(small);

      StateVector<TypeParam> a(n), b(n);
      a.set_uniform_state();
      b.set_uniform_state();
      avx.apply_gate(g, a);
      reference_apply_gate(g, b);
      EXPECT_LT(statespace::max_abs_diff(a, b), 2 * state_tol<TypeParam>())
          << "q=" << q << " start=" << start;
    }
  }
}

TYPED_TEST(SimulatorAVXTyped, FusedRandomCircuits) {
  ThreadPool pool(2);
  SimulatorAVX<TypeParam> avx(pool);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const unsigned n = 10;
    const Circuit fused =
        fuse_circuit(random_circuit(n, 10, seed), {4}).circuit;
    StateVector<TypeParam> a(n), b(n);
    avx.run(fused, a);
    reference_run(fused, b);
    EXPECT_LT(statespace::max_abs_diff(a, b), 4 * state_tol<TypeParam>()) << seed;
  }
}

TYPED_TEST(SimulatorAVXTyped, TinyStatesFallBack) {
  // States too small for a full register chunk must still be exact.
  ThreadPool pool(1);
  SimulatorAVX<TypeParam> avx(pool);
  for (unsigned n = 1; n <= 4; ++n) {
    StateVector<TypeParam> a(n), b(n);
    const Gate g = gates::h(0, n - 1);
    avx.apply_gate(g, a);
    reference_apply_gate(g, b);
    EXPECT_LT(statespace::max_abs_diff(a, b), state_tol<TypeParam>()) << n;
  }
}

TYPED_TEST(SimulatorAVXTyped, RqcEndToEndMatchesScalarBackend) {
  rqc::RqcOptions opt;
  opt.rows = 3;
  opt.cols = 4;
  opt.depth = 10;
  const Circuit fused = fuse_circuit(rqc::generate_rqc(opt), {4}).circuit;
  ThreadPool pool(2);
  SimulatorAVX<TypeParam> avx(pool);
  SimulatorCPU<TypeParam> scalar(pool);
  StateVector<TypeParam> a(12), b(12);
  avx.run(fused, a);
  scalar.run(fused, b);
  EXPECT_LT(statespace::max_abs_diff(a, b), 4 * state_tol<TypeParam>());
}

}  // namespace
}  // namespace qhip

#else
TEST(SimulatorAVX, SkippedWithoutAvx2) { GTEST_SKIP() << "no AVX2/FMA"; }
#endif
