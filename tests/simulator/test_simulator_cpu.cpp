#include "src/simulator/simulator_cpu.h"

#include <gtest/gtest.h>

#include <numbers>

#include "src/base/rng.h"
#include "src/core/gates.h"
#include "src/simulator/reference.h"
#include "src/simulator/runner.h"

namespace qhip {
namespace {

Circuit random_circuit(unsigned n, unsigned depth, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Circuit c;
  c.num_qubits = n;
  for (unsigned t = 0; t < depth; ++t) {
    std::vector<bool> used(n, false);
    for (unsigned q = 0; q < n; ++q) {
      if (used[q]) continue;
      const double r = rng.uniform();
      if (r < 0.35 && q + 1 < n && !used[q + 1]) {
        c.gates.push_back(gates::fs(t, q, q + 1, rng.uniform() * 2, rng.uniform()));
        used[q] = used[q + 1] = true;
      } else if (r < 0.7) {
        c.gates.push_back(gates::rxy(t, q, rng.uniform() * 6, rng.uniform() * 3));
        used[q] = true;
      }
    }
  }
  return c;
}

template <typename T>
class SimulatorCPUTyped : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(SimulatorCPUTyped, Precisions);

TYPED_TEST(SimulatorCPUTyped, BellState) {
  SimulatorCPU<TypeParam> sim;
  StateVector<TypeParam> s(2);
  sim.apply_gate(gates::h(0, 0), s);
  sim.apply_gate(gates::cnot(1, 0, 1), s);
  const double r = 1 / std::numbers::sqrt2;
  EXPECT_NEAR(s[0].real(), r, 1e-6);
  EXPECT_NEAR(s[3].real(), r, 1e-6);
  EXPECT_NEAR(std::abs(s[1]), 0, 1e-6);
  EXPECT_NEAR(std::abs(s[2]), 0, 1e-6);
}

TYPED_TEST(SimulatorCPUTyped, GhzState) {
  const unsigned n = 8;
  SimulatorCPU<TypeParam> sim;
  StateVector<TypeParam> s(n);
  sim.apply_gate(gates::h(0, 0), s);
  for (unsigned q = 1; q < n; ++q) {
    sim.apply_gate(gates::cnot(q, q - 1, q), s);
  }
  const double r = 1 / std::numbers::sqrt2;
  EXPECT_NEAR(s[0].real(), r, 1e-5);
  EXPECT_NEAR(s[s.size() - 1].real(), r, 1e-5);
  EXPECT_NEAR(statespace::norm2(s), 1.0, 1e-5);
}

TYPED_TEST(SimulatorCPUTyped, MatchesReferenceOnRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Circuit c = random_circuit(7, 8, seed);
    SimulatorCPU<TypeParam> sim;
    StateVector<TypeParam> fast(7), slow(7);
    for (const auto& g : c.gates) sim.apply_gate(g, fast);
    reference_run(c, slow);
    EXPECT_LT(statespace::max_abs_diff(fast, slow), state_tol<TypeParam>()) << seed;
  }
}

TYPED_TEST(SimulatorCPUTyped, WideFusedGatesMatchReference) {
  // Exercise the q = 3..6 dispatch paths with random unitaries built by
  // fusing random product circuits.
  Xoshiro256 rng(77);
  for (unsigned q = 3; q <= 6; ++q) {
    Circuit small = random_circuit(q, 6, 100 + q);
    const CMatrix u = circuit_unitary(small);
    Gate g;
    g.name = "fused";
    g.time = 0;
    for (unsigned j = 0; j < q; ++j) g.qubits.push_back(j + 1);  // offset 1
    g.matrix = u;

    StateVector<TypeParam> fast(q + 2), slow(q + 2);
    // Seed a non-trivial input state.
    SimulatorCPU<TypeParam> sim;
    sim.apply_gate(gates::h(0, 0), fast);
    sim.apply_gate(gates::h(0, q + 1), fast);
    reference_apply_gate(gates::h(0, 0), slow);
    reference_apply_gate(gates::h(0, q + 1), slow);

    sim.apply_gate(g, fast);
    reference_apply_gate(g, slow);
    EXPECT_LT(statespace::max_abs_diff(fast, slow), state_tol<TypeParam>()) << q;
  }
}

TYPED_TEST(SimulatorCPUTyped, ThreadCountInvariance) {
  const Circuit c = random_circuit(9, 10, 3);
  StateVector<TypeParam> s1(9), s4(9);
  ThreadPool p1(1), p4(4);
  SimulatorCPU<TypeParam> sim1(p1), sim4(p4);
  for (const auto& g : c.gates) sim1.apply_gate(g, s1);
  for (const auto& g : c.gates) sim4.apply_gate(g, s4);
  EXPECT_LT(statespace::max_abs_diff(s1, s4), 1e-7);
}

TYPED_TEST(SimulatorCPUTyped, ControlledGateMatchesExpanded) {
  StateVector<TypeParam> a(4), b(4);
  SimulatorCPU<TypeParam> sim;
  for (unsigned q = 0; q < 4; ++q) sim.apply_gate(gates::h(0, q), a);
  for (unsigned q = 0; q < 4; ++q) sim.apply_gate(gates::h(0, q), b);
  const Gate cg = gates::controlled(gates::ry(1, 3, 0.9), {0, 2});
  sim.apply_gate(cg, a);
  sim.apply_gate(expand_controls(cg), b);
  EXPECT_LT(statespace::max_abs_diff(a, b), state_tol<TypeParam>());
}

TYPED_TEST(SimulatorCPUTyped, RunWithMeasurement) {
  Circuit c;
  c.num_qubits = 2;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::cnot(1, 0, 1));
  c.gates.push_back(gates::measure(2, {0, 1}));
  SimulatorCPU<TypeParam> sim;
  StateVector<TypeParam> s(2);
  std::vector<index_t> meas;
  sim.run(c, s, 17, &meas);
  ASSERT_EQ(meas.size(), 1u);
  // Bell state measures 00 or 11.
  EXPECT_TRUE(meas[0] == 0b00 || meas[0] == 0b11) << meas[0];
  EXPECT_NEAR(statespace::norm2(s), 1.0, 1e-5);
}

TYPED_TEST(SimulatorCPUTyped, NormPreservedOverDeepCircuit) {
  const Circuit c = random_circuit(10, 20, 5);
  SimulatorCPU<TypeParam> sim;
  StateVector<TypeParam> s(10);
  for (const auto& g : c.gates) sim.apply_gate(g, s);
  const double norm_tol = std::is_same_v<TypeParam, float> ? 1e-4 : 1e-11;
  EXPECT_NEAR(statespace::norm2(s), 1.0, norm_tol);
}

TYPED_TEST(SimulatorCPUTyped, RunnerFusedMatchesUnfused) {
  const Circuit c = random_circuit(8, 10, 21);
  StateVector<TypeParam> unfused(8);
  SimulatorCPU<TypeParam> sim;
  for (const auto& g : c.gates) sim.apply_gate(g, unfused);

  for (unsigned f : {2u, 3u, 4u, 5u}) {
    StateVector<TypeParam> fused(8);
    RunOptions opt;
    opt.max_fused_qubits = f;
    const RunResult r = run_circuit(c, sim, fused, opt);
    EXPECT_LT(statespace::max_abs_diff(unfused, fused),
              10 * state_tol<TypeParam>())
        << f;
    EXPECT_GT(r.sim_seconds, 0.0);
    EXPECT_LE(r.fusion.output_gates, c.size());
  }
}

TYPED_TEST(SimulatorCPUTyped, RunnerSamples) {
  Circuit c;
  c.num_qubits = 3;
  c.gates.push_back(gates::x(0, 0));
  c.gates.push_back(gates::x(1, 2));
  SimulatorCPU<TypeParam> sim;
  StateVector<TypeParam> s(3);
  RunOptions opt;
  opt.num_samples = 50;
  const RunResult r = run_circuit(c, sim, s, opt);
  ASSERT_EQ(r.samples.size(), 50u);
  for (index_t v : r.samples) EXPECT_EQ(v, 0b101u);
}

TEST(SimulatorCPU, ApplyRejectsUnsortedDirectCall) {
  // apply_gate_inplace requires normalized gates; SimulatorCPU::apply_gate
  // normalizes internally, so this checks the low-level contract.
  StateVector<float> s(3);
  Gate g = gates::cnot(0, 2, 0);  // unsorted qubits {2, 0}
  EXPECT_THROW(apply_gate_inplace(g, s, ThreadPool::shared()), Error);
}

}  // namespace
}  // namespace qhip
