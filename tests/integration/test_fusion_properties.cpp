// Parameterized fusion-invariant property suite: for any (max_fused,
// window, seed) the fused circuit preserves the input unitary, respects
// the width limit, emits only unitary matrices, and never reorders gates
// on a qubit line.
#include <gtest/gtest.h>

#include <tuple>

#include "src/base/rng.h"
#include "src/core/gates.h"
#include "src/fusion/fuser.h"

namespace qhip {
namespace {

Circuit mixed_circuit(unsigned n, unsigned depth, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Circuit c;
  c.num_qubits = n;
  for (unsigned t = 0; t < depth; ++t) {
    std::vector<bool> used(n, false);
    for (unsigned q = 0; q < n; ++q) {
      if (used[q]) continue;
      const double r = rng.uniform();
      if (r < 0.2 && q + 2 < n && !used[q + 1] && !used[q + 2]) {
        c.gates.push_back(gates::ccz(t, q, q + 1, q + 2));
        used[q] = used[q + 1] = used[q + 2] = true;
      } else if (r < 0.5 && q + 1 < n && !used[q + 1]) {
        c.gates.push_back(gates::is(t, q, q + 1));
        used[q] = used[q + 1] = true;
      } else if (r < 0.6) {
        c.gates.push_back(gates::controlled(
            gates::ry(t, q, rng.uniform() * 3), {(q + 1) % n}));
        used[q] = used[(q + 1) % n] = true;
      } else if (r < 0.9) {
        c.gates.push_back(gates::rz(t, q, rng.uniform() * 6));
        used[q] = true;
      }
    }
  }
  return c;
}

// (max_fused, window, seed)
using FuseParam = std::tuple<unsigned, unsigned, std::uint64_t>;

class FusionProperties : public ::testing::TestWithParam<FuseParam> {};

TEST_P(FusionProperties, PreservesUnitary) {
  const auto [f, w, seed] = GetParam();
  const Circuit c = mixed_circuit(5, 10, seed);
  const CMatrix want = circuit_unitary(c);
  const FusionResult r = fuse_circuit(c, {f, w});
  EXPECT_LT(circuit_unitary(r.circuit).distance(want), 1e-9);
}

TEST_P(FusionProperties, RespectsWidthAndUnitarity) {
  const auto [f, w, seed] = GetParam();
  const Circuit c = mixed_circuit(6, 10, seed);
  const FusionResult r = fuse_circuit(c, {f, w});
  for (const auto& g : r.circuit.gates) {
    if (g.is_measurement()) continue;
    EXPECT_LE(g.num_targets(), std::max(f, 3u));  // ccz passes through at f<3
    EXPECT_TRUE(g.matrix.is_unitary(1e-8)) << g.name;
    EXPECT_TRUE(std::is_sorted(g.qubits.begin(), g.qubits.end()));
    EXPECT_TRUE(g.controls.empty());
  }
}

TEST_P(FusionProperties, GateCountNeverIncreases) {
  const auto [f, w, seed] = GetParam();
  const Circuit c = mixed_circuit(6, 10, seed);
  const FusionResult r = fuse_circuit(c, {f, w});
  EXPECT_LE(r.circuit.size(), c.size());
  EXPECT_EQ(r.stats.input_gates, c.size());
}

TEST_P(FusionProperties, IdempotentUnderRefusion) {
  // Fusing an already-fused circuit at the same limit must not change the
  // total unitary (and cannot widen gates).
  const auto [f, w, seed] = GetParam();
  const Circuit c = mixed_circuit(5, 8, seed);
  const Circuit once = fuse_circuit(c, {f, w}).circuit;
  const Circuit twice = fuse_circuit(once, {f, w}).circuit;
  EXPECT_LT(circuit_unitary(twice).distance(circuit_unitary(c)), 1e-9);
  for (const auto& g : twice.gates) {
    EXPECT_LE(g.num_targets(), std::max(f, 3u));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FusionProperties,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 6u),   // max_fused
                       ::testing::Values(0u, 2u, 4u),       // window
                       ::testing::Values(11ull, 12ull, 13ull)),
    [](const ::testing::TestParamInfo<FuseParam>& info) {
      return "f" + std::to_string(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace qhip
