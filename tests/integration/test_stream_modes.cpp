// Stream-mode equivalence: the asynchronous stream engine must be a pure
// scheduling change. For the paper's RQC workload the final statevector has
// to be bit-identical between eager (inline) and async execution, on the
// single-device backend and across the multi-GCD exchange path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/fusion/fuser.h"
#include "src/hipsim/multi_gcd.h"
#include "src/hipsim/simulator_hip.h"
#include "src/rqc/rqc.h"

namespace qhip {
namespace {

Circuit rqc_20q() {
  rqc::RqcOptions opt;
  opt.rows = 4;
  opt.cols = 5;  // 20 qubits
  opt.depth = 6;
  opt.seed = 3;
  return rqc::generate_rqc(opt);
}

template <typename FP>
StateVector<FP> run_single(const Circuit& c, vgpu::StreamMode mode) {
  vgpu::Device dev(vgpu::test_device(64), nullptr, &ThreadPool::shared(), mode);
  hipsim::SimulatorHIP<FP> sim(dev);
  hipsim::DeviceStateVector<FP> ds(dev, c.num_qubits);
  sim.state_space().set_zero_state(ds);
  sim.run(c, ds);
  return ds.to_host();
}

template <typename FP>
bool bit_identical(const StateVector<FP>& a, const StateVector<FP>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx<FP>)) == 0;
}

TEST(StreamModes, Rqc20qEagerAsyncBitIdentical) {
  const Circuit fused = fuse_circuit(rqc_20q(), {4}).circuit;
  const auto async = run_single<float>(fused, vgpu::StreamMode::kAsync);
  const auto eager = run_single<float>(fused, vgpu::StreamMode::kEager);
  EXPECT_TRUE(bit_identical(async, eager));
}

TEST(StreamModes, Rqc20qEagerAsyncBitIdenticalDouble) {
  const Circuit fused = fuse_circuit(rqc_20q(), {4}).circuit;
  const auto async = run_single<double>(fused, vgpu::StreamMode::kAsync);
  const auto eager = run_single<double>(fused, vgpu::StreamMode::kEager);
  EXPECT_TRUE(bit_identical(async, eager));
}

// The multi-GCD simulator constructs its own devices, so the mode is driven
// through the QHIP_STREAM_MODE environment override here.
template <typename FP>
StateVector<FP> run_multi_gcd(const Circuit& c, const char* mode) {
  ::setenv("QHIP_STREAM_MODE", mode, 1);
  hipsim::MultiGcdSimulator<FP> sim(c.num_qubits, 2);
  for (const auto& g : c.gates) sim.apply_gate(g);
  ::unsetenv("QHIP_STREAM_MODE");
  return sim.to_host();
}

TEST(StreamModes, MultiGcdEagerAsyncBitIdentical) {
  rqc::RqcOptions opt;
  opt.rows = 3;
  opt.cols = 4;  // 12 qubits, global qubit exercised across 2 GCDs
  opt.depth = 8;
  opt.seed = 5;
  const Circuit c = rqc::generate_rqc(opt);
  const auto async = run_multi_gcd<float>(c, "async");
  const auto eager = run_multi_gcd<float>(c, "eager");
  EXPECT_TRUE(bit_identical(async, eager));
}

}  // namespace
}  // namespace qhip
