// Parameterized gate-identity property suite: algebraic identities that
// must hold for every gate and every backend-visible form — inverse
// composition, commutation of disjoint gates, and basis-independence of
// the normalized form.
#include <gtest/gtest.h>

#include "src/core/gates.h"
#include "src/simulator/reference.h"
#include "src/simulator/simulator_cpu.h"

namespace qhip {
namespace {

struct NamedGate {
  const char* label;
  Gate gate;
};

std::vector<NamedGate> parameterized_gates() {
  return {
      {"h", gates::h(0, 1)},
      {"x", gates::x(0, 1)},
      {"y", gates::y(0, 1)},
      {"z", gates::z(0, 1)},
      {"s", gates::s(0, 1)},
      {"t", gates::t(0, 1)},
      {"x_1_2", gates::x_1_2(0, 1)},
      {"y_1_2", gates::y_1_2(0, 1)},
      {"hz_1_2", gates::hz_1_2(0, 1)},
      {"rx", gates::rx(0, 1, 0.71)},
      {"ry", gates::ry(0, 1, 1.21)},
      {"rz", gates::rz(0, 1, 2.1)},
      {"rxy", gates::rxy(0, 1, 0.5, 1.9)},
      {"p", gates::p(0, 1, 0.9)},
      {"cz", gates::cz(0, 1, 3)},
      {"cnot", gates::cnot(0, 1, 3)},
      {"sw", gates::sw(0, 1, 3)},
      {"is", gates::is(0, 1, 3)},
      {"fs", gates::fs(0, 1, 3, 0.8, 0.4)},
      {"cp", gates::cp(0, 1, 3, 1.3)},
      {"ccz", gates::ccz(0, 1, 3, 4)},
      {"ccx", gates::ccx(0, 1, 3, 4)},
  };
}

class GateIdentity : public ::testing::TestWithParam<std::size_t> {
 protected:
  const NamedGate& g() const {
    static const std::vector<NamedGate> all = parameterized_gates();
    return all[GetParam()];
  }
};

TEST_P(GateIdentity, InverseRestoresAnyState) {
  // Apply G then G^dagger to a non-trivial state: must be the identity.
  const unsigned n = 6;
  SimulatorCPU<double> sim;
  StateVector<double> s(n), orig(n);
  for (unsigned q = 0; q < n; ++q) {
    sim.apply_gate(gates::rxy(0, q, 0.3 * q, 0.7 + q), s);
    sim.apply_gate(gates::rxy(0, q, 0.3 * q, 0.7 + q), orig);
  }
  Gate inverse = g().gate;
  inverse.matrix = inverse.matrix.adjoint();

  sim.apply_gate(g().gate, s);
  sim.apply_gate(inverse, s);
  EXPECT_LT(statespace::max_abs_diff(s, orig), 1e-12) << g().label;
}

TEST_P(GateIdentity, CommutesWithDisjointGate) {
  // G (on qubits <= 4) and an rxy on qubit 5 act on disjoint qubits:
  // order must not matter.
  const unsigned n = 6;
  const Gate other = gates::rxy(0, 5, 1.0, 0.8);
  SimulatorCPU<double> sim;
  StateVector<double> ab(n), ba(n);
  ab.set_uniform_state();
  ba.set_uniform_state();
  sim.apply_gate(g().gate, ab);
  sim.apply_gate(other, ab);
  sim.apply_gate(other, ba);
  sim.apply_gate(g().gate, ba);
  EXPECT_LT(statespace::max_abs_diff(ab, ba), 1e-12) << g().label;
}

TEST_P(GateIdentity, NormalizedFormActsIdentically) {
  const unsigned n = 6;
  SimulatorCPU<double> sim;
  StateVector<double> a(n), b(n);
  a.set_uniform_state();
  b.set_uniform_state();
  sim.apply_gate(g().gate, a);
  reference_apply_gate(g().gate, b);  // reference normalizes internally
  EXPECT_LT(statespace::max_abs_diff(a, b), 1e-12) << g().label;
}

TEST_P(GateIdentity, UnitaryToMachinePrecision) {
  EXPECT_LT(g().gate.matrix.unitarity_error(), 1e-13) << g().label;
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, GateIdentity,
    ::testing::Range<std::size_t>(0, parameterized_gates().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return parameterized_gates()[info.param].label;
    });

}  // namespace
}  // namespace qhip
