// Parameterized backend-parity property suite.
//
// The central correctness property of the whole system: for any circuit,
// every backend — multithreaded CPU, virtual-GPU HIP on a 64-lane MI250X,
// virtual-GPU "CUDA" on a 32-lane A100 — must produce the same state as
// the independent reference oracle, for both precisions and any fusion
// setting. Parameterized over (warp width, qubit count, circuit seed,
// fusion limit).
#include <gtest/gtest.h>

#include <tuple>

#include "src/base/rng.h"
#include "src/core/gates.h"
#include "src/fusion/fuser.h"
#include "src/hipsim/simulator_hip.h"
#include "src/rqc/rqc.h"
#include "src/simulator/reference.h"
#include "src/simulator/simulator_cpu.h"

namespace qhip {
namespace {

Circuit dense_random_circuit(unsigned n, unsigned depth, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Circuit c;
  c.num_qubits = n;
  for (unsigned t = 0; t < depth; ++t) {
    std::vector<bool> used(n, false);
    for (unsigned q = 0; q < n; ++q) {
      if (used[q]) continue;
      const double r = rng.uniform();
      if (r < 0.3 && q + 1 < n && !used[q + 1]) {
        c.gates.push_back(gates::fs(t, q, q + 1, rng.uniform() * 2, rng.uniform()));
        used[q] = used[q + 1] = true;
      } else if (r < 0.5 && n >= 3) {
        const qubit_t other = (q + 1 + static_cast<qubit_t>(rng.uniform() * (n - 1))) % n;
        if (other != q && !used[other]) {
          c.gates.push_back(gates::cp(t, q, other, rng.uniform() * 3));
          used[q] = used[other] = true;
        }
      } else if (r < 0.8) {
        c.gates.push_back(gates::rxy(t, q, rng.uniform() * 6, rng.uniform() * 3));
        used[q] = true;
      }
    }
  }
  return c;
}

// (warp_size, num_qubits, seed, max_fused)
using ParityParam = std::tuple<unsigned, unsigned, std::uint64_t, unsigned>;

class BackendParity : public ::testing::TestWithParam<ParityParam> {};

TEST_P(BackendParity, GpuMatchesReferenceSingle) {
  const auto [warp, n, seed, f] = GetParam();
  const Circuit c = dense_random_circuit(n, 8, seed);
  const Circuit fused = fuse_circuit(c, {f}).circuit;

  StateVector<float> ref(n);
  reference_run(fused, ref);

  vgpu::DeviceProps props = warp == 32 ? vgpu::a100() : vgpu::mi250x_gcd();
  vgpu::Device dev{props};
  hipsim::SimulatorHIP<float> sim(dev);
  hipsim::DeviceStateVector<float> ds(dev, n);
  sim.state_space().set_zero_state(ds);
  sim.run(fused, ds);

  EXPECT_LT(statespace::max_abs_diff(ds.to_host(), ref), 4 * state_tol<float>());
}

TEST_P(BackendParity, CpuMatchesReferenceDouble) {
  const auto [warp, n, seed, f] = GetParam();
  (void)warp;
  const Circuit c = dense_random_circuit(n, 8, seed);
  const Circuit fused = fuse_circuit(c, {f}).circuit;

  StateVector<double> ref(n);
  reference_run(fused, ref);

  ThreadPool pool(3);
  SimulatorCPU<double> sim(pool);
  StateVector<double> s(n);
  sim.run(fused, s);
  EXPECT_LT(statespace::max_abs_diff(s, ref), 4 * state_tol<double>());
}

TEST_P(BackendParity, NormPreserved) {
  const auto [warp, n, seed, f] = GetParam();
  const Circuit fused =
      fuse_circuit(dense_random_circuit(n, 8, seed), {f}).circuit;
  vgpu::Device dev{vgpu::test_device(warp)};
  hipsim::SimulatorHIP<float> sim(dev);
  hipsim::DeviceStateVector<float> ds(dev, n);
  sim.state_space().set_zero_state(ds);
  sim.run(fused, ds);
  EXPECT_NEAR(sim.state_space().norm2(ds), 1.0, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BackendParity,
    ::testing::Combine(::testing::Values(32u, 64u),        // wavefront width
                       ::testing::Values(6u, 8u, 10u),     // qubits
                       ::testing::Values(1ull, 2ull, 3ull),  // circuit seed
                       ::testing::Values(2u, 4u, 6u)),     // max fused
    [](const ::testing::TestParamInfo<ParityParam>& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param)) + "_f" +
             std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace qhip
