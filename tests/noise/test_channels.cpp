#include "src/noise/channels.h"

#include <gtest/gtest.h>

#include "src/base/error.h"

namespace qhip::noise {
namespace {

TEST(Channels, AllStandardChannelsAreComplete) {
  for (double p : {0.0, 0.1, 0.5, 1.0}) {
    EXPECT_TRUE(depolarizing(p).is_complete()) << p;
    EXPECT_TRUE(bit_flip(p).is_complete()) << p;
    EXPECT_TRUE(phase_flip(p).is_complete()) << p;
    EXPECT_TRUE(amplitude_damping(p).is_complete()) << p;
    EXPECT_TRUE(phase_damping(p).is_complete()) << p;
  }
}

TEST(Channels, ValidateAcceptsStandardChannels) {
  EXPECT_NO_THROW(depolarizing(0.2).validate());
  EXPECT_NO_THROW(amplitude_damping(0.3).validate());
}

TEST(Channels, ValidateRejectsNonTracePreserving) {
  KrausChannel bad;
  bad.name = "bad";
  bad.ops.push_back(CMatrix(2, {0.5, 0, 0, 0.5}));
  EXPECT_FALSE(bad.is_complete());
  EXPECT_THROW(bad.validate(), Error);
  KrausChannel empty;
  EXPECT_THROW(empty.validate(), Error);
}

TEST(Channels, MixedUnitaryClassification) {
  // Pauli channels are mixed-unitary; damping channels are not.
  EXPECT_TRUE(depolarizing(0.3).is_mixed_unitary());
  EXPECT_TRUE(bit_flip(0.3).is_mixed_unitary());
  EXPECT_TRUE(phase_flip(0.3).is_mixed_unitary());
  EXPECT_FALSE(amplitude_damping(0.3).is_mixed_unitary());
  EXPECT_FALSE(phase_damping(0.3).is_mixed_unitary());
}

TEST(Channels, DepolarizingOperatorWeights) {
  const KrausChannel c = depolarizing(0.3);
  ASSERT_EQ(c.ops.size(), 4u);
  // Identity branch weight 1-p; each Pauli branch p/3.
  EXPECT_NEAR(std::norm(c.ops[0].at(0, 0)), 0.7, 1e-12);
  EXPECT_NEAR(std::norm(c.ops[1].at(0, 1)), 0.1, 1e-12);
}

TEST(Channels, AmplitudeDampingStructure) {
  const KrausChannel c = amplitude_damping(0.25);
  ASSERT_EQ(c.ops.size(), 2u);
  // K1 maps |1> -> sqrt(gamma) |0>.
  EXPECT_NEAR(c.ops[1].at(0, 1).real(), 0.5, 1e-12);
  EXPECT_NEAR(std::abs(c.ops[1].at(1, 1)), 0.0, 1e-12);
}

TEST(Channels, ParameterValidation) {
  EXPECT_THROW(depolarizing(-0.1), Error);
  EXPECT_THROW(depolarizing(1.1), Error);
  EXPECT_THROW(amplitude_damping(2.0), Error);
}

TEST(Channels, ZeroNoiseIsIdentityOnly) {
  const KrausChannel c = bit_flip(0.0);
  EXPECT_NEAR(std::abs(c.ops[0].at(0, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(c.ops[1].at(0, 1)), 0.0, 1e-12);
}

}  // namespace
}  // namespace qhip::noise
