#include "src/noise/trajectory.h"

#include <gtest/gtest.h>

#include "src/core/gates.h"
#include "src/simulator/simulator_cpu.h"

namespace qhip::noise {
namespace {

TEST(ApplyChannel, ZeroNoiseLeavesStateUntouched) {
  StateVector<double> s(3);
  SimulatorCPU<double> sim;
  sim.apply_gate(gates::h(0, 0), s);
  StateVector<double> before = s;
  apply_channel(depolarizing(0.0), 0, s, 0.5);
  EXPECT_LT(statespace::max_abs_diff(s, before), 1e-14);
}

TEST(ApplyChannel, FullBitFlipFlipsDeterministically) {
  StateVector<double> s(2);  // |00>
  const std::size_t pick = apply_channel(bit_flip(1.0), 0, s, 0.3);
  EXPECT_EQ(pick, 1u);  // the X branch
  EXPECT_NEAR(std::abs(s[1]), 1.0, 1e-14);  // now |01> (qubit 0 flipped)
}

TEST(ApplyChannel, StateStaysNormalized) {
  StateVector<double> s(4);
  SimulatorCPU<double> sim;
  for (unsigned q = 0; q < 4; ++q) sim.apply_gate(gates::h(0, q), s);
  Philox rng(3);
  for (int i = 0; i < 20; ++i) {
    apply_channel(amplitude_damping(0.3), i % 4, s, rng.uniform());
    EXPECT_NEAR(statespace::norm2(s), 1.0, 1e-10) << i;
  }
}

TEST(ApplyChannel, BranchProbabilitiesAreBorn) {
  // |+> under full-strength phase flip: branches equally likely? No —
  // phase_flip(p) on |+>: identity branch prob (1-p), Z branch p, both
  // state-independent (mixed unitary). Check selection follows u.
  StateVector<double> plus(1);
  SimulatorCPU<double> sim;
  sim.apply_gate(gates::h(0, 0), plus);
  StateVector<double> s = plus;
  EXPECT_EQ(apply_channel(phase_flip(0.25), 0, s, 0.5), 0u);   // u<0.75 -> I
  s = plus;
  EXPECT_EQ(apply_channel(phase_flip(0.25), 0, s, 0.8), 1u);   // u>0.75 -> Z
}

TEST(ApplyChannel, AmplitudeDampingBornSelection) {
  // |1>: damping branch probability is gamma exactly.
  StateVector<double> one(1);
  one.set_basis_state(1);
  StateVector<double> s = one;
  EXPECT_EQ(apply_channel(amplitude_damping(0.4), 0, s, 0.59), 0u);
  s = one;
  EXPECT_EQ(apply_channel(amplitude_damping(0.4), 0, s, 0.61), 1u);
  // After the damping branch the state is exactly |0>.
  EXPECT_NEAR(std::abs(s[0]), 1.0, 1e-14);
}

TEST(Trajectory, NoNoiseMatchesIdealSimulation) {
  Circuit c;
  c.num_qubits = 3;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::cnot(1, 0, 1));
  c.gates.push_back(gates::fs(2, 1, 2, 0.4, 0.2));

  SimulatorCPU<double> sim;
  StateVector<double> ideal(3);
  sim.run(c, ideal);

  const NoiseModel none{depolarizing(0.0)};
  const StateVector<double> traj = run_trajectory<double>(c, none, 7, 0);
  EXPECT_LT(statespace::max_abs_diff(ideal, traj), 1e-13);
}

TEST(Trajectory, ReproducibleInSeedAndTrajectory) {
  Circuit c;
  c.num_qubits = 2;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::cnot(1, 0, 1));
  const NoiseModel m{depolarizing(0.3)};
  const auto a = run_trajectory<double>(c, m, 5, 3);
  const auto b = run_trajectory<double>(c, m, 5, 3);
  EXPECT_LT(statespace::max_abs_diff(a, b), 0.0 + 1e-15);
  // Different trajectory index explores a different branch eventually.
  bool differs = false;
  for (std::uint64_t t = 0; t < 8 && !differs; ++t) {
    differs = statespace::max_abs_diff(a, run_trajectory<double>(c, m, 5, 1 + t)) > 1e-6;
  }
  EXPECT_TRUE(differs);
}

TEST(Trajectory, AmplitudeDampingDrivesTowardGround) {
  // Repeated strong damping on |1>: the averaged population of |1| decays.
  Circuit c;
  c.num_qubits = 1;
  for (unsigned t = 0; t < 6; ++t) c.gates.push_back(gates::id1(t, 0));
  Circuit prep = c;
  prep.gates.insert(prep.gates.begin(), gates::x(0, 0));
  for (auto& g : prep.gates) g.time = 0;  // times unused by the runner
  const NoiseModel m{amplitude_damping(0.5)};
  const auto dist = trajectory_distribution<double>(prep, m, 200, 11);
  // Seven damping applications at gamma=0.5: P(1) ~ 0.5^7 << 1.
  EXPECT_LT(dist[1], 0.05);
  EXPECT_NEAR(dist[0] + dist[1], 1.0, 1e-9);
}

TEST(Trajectory, DepolarizingConvergesToUniformDiagonal) {
  // Strong depolarizing after every gate drives the averaged distribution
  // toward uniform.
  Circuit c;
  c.num_qubits = 2;
  for (unsigned t = 0; t < 4; ++t) {
    c.gates.push_back(gates::h(t, 0));
    c.gates.push_back(gates::h(t, 1));
  }
  const NoiseModel m{depolarizing(0.75)};
  const auto dist = trajectory_distribution<double>(c, m, 400, 3);
  for (index_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(dist[i], 0.25, 0.08) << i;
  }
}

TEST(Trajectory, DistributionIsNormalized) {
  Circuit c;
  c.num_qubits = 3;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::cnot(1, 0, 2));
  const NoiseModel m{phase_damping(0.2)};
  const auto dist = trajectory_distribution<double>(c, m, 50, 2);
  double total = 0;
  for (double v : dist) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ApplyChannel, SelectsOnNormalizedCumulative) {
  // Regression: selection used to compare u in [0,1) against the raw
  // cumulative Born weights. With Kraus weights summing to 0.5 (fp drift
  // exaggerated), probs on |0> are {0.25, 0.25}: u = 0.4 must land in the
  // first half of the (normalized) mass and pick op 0; the unnormalized
  // comparison saw 0.4 > 0.25 and mis-picked op 1.
  KrausChannel half;
  half.name = "half_mass";
  half.ops.push_back(CMatrix(2, {0.5, 0.0, 0.0, 0.5}));        // 0.5 * I
  half.ops.push_back(CMatrix(2, {0.0, 0.5, 0.5, 0.0}));        // 0.5 * X
  StateVector<double> s(1);  // |0>
  EXPECT_EQ(apply_channel(half, 0, s, 0.4), 0u);
  EXPECT_NEAR(std::abs(s[0]), 1.0, 1e-14);  // renormalized identity branch
}

TEST(ApplyChannel, DriftDoesNotThrowOnValidStates) {
  // Regression: with total Born mass slightly under 1 (here 0.999 on |0>,
  // since the damping operator annihilates |0>), u above the total used to
  // fall through to the last operator — whose probability is exactly zero —
  // and the vanishing-branch check threw on a perfectly valid state.
  const double a = std::sqrt(0.999), g = std::sqrt(0.001);
  KrausChannel damp;
  damp.name = "lossy_damp";
  damp.ops.push_back(CMatrix(2, {a, 0.0, 0.0, a}));            // sqrt(.999) I
  damp.ops.push_back(CMatrix(2, {0.0, g, 0.0, 0.0}));          // |0><1| decay
  StateVector<double> s(1);  // |0>: probs {0.999, 0}
  std::size_t pick = 999;
  EXPECT_NO_THROW(pick = apply_channel(damp, 0, s, 0.9995));
  EXPECT_EQ(pick, 0u);
  EXPECT_NEAR(statespace::norm2(s), 1.0, 1e-12);
}

TEST(Trajectory, StreamKeyAvoidsMaskCollision) {
  // Regression: the Philox stream key was 0xffff0000 | trajectory, so
  // trajectory 65536 (bit 16 set) OR-ed into the same stream as trajectory
  // 0. The additive key keeps every index distinct...
  EXPECT_NE(trajectory_stream_key(65536), trajectory_stream_key(0));
  EXPECT_NE(trajectory_stream_key(65537), trajectory_stream_key(1));
  // ...while agreeing with the old masked form below 65536, so existing
  // seeds reproduce their recorded trajectories.
  for (std::uint64_t t : {0ull, 1ull, 7ull, 65535ull}) {
    EXPECT_EQ(trajectory_stream_key(t), 0xffff0000ull | t) << t;
  }
  // Behavioral form of the same bug: the two colliding indices produced
  // bit-identical states.
  Circuit c;
  c.num_qubits = 2;
  for (unsigned t = 0; t < 4; ++t) {
    c.gates.push_back(gates::h(t, 0));
    c.gates.push_back(gates::cnot(t, 0, 1));
  }
  const NoiseModel m{depolarizing(0.5)};
  const auto t0 = run_trajectory<double>(c, m, 5, 0);
  const auto t65536 = run_trajectory<double>(c, m, 5, 65536);
  EXPECT_GT(statespace::max_abs_diff(t0, t65536), 1e-9);
}

TEST(Trajectory, PreparedRunMatchesReference) {
  // The engine's batch path normalizes once and reuses a state buffer; both
  // must be bit-identical to the convenience wrapper.
  Circuit c;
  c.num_qubits = 3;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::cnot(1, 0, 1));
  c.gates.push_back(gates::fs(2, 1, 2, 0.4, 0.2));
  const NoiseModel m{depolarizing(0.3)};
  const Circuit prepared = normalize_circuit(c);
  StateVector<double> s(3);
  for (std::uint64_t t = 0; t < 6; ++t) {
    run_trajectory_prepared<double>(prepared, m, 9, t, s);
    const auto ref = run_trajectory<double>(c, m, 9, t);
    EXPECT_EQ(statespace::max_abs_diff(s, ref), 0.0) << t;
  }
}

TEST(Trajectory, RejectsMeasurement) {
  Circuit c;
  c.num_qubits = 1;
  c.gates.push_back(gates::measure(0, {0}));
  const NoiseModel m{depolarizing(0.1)};
  EXPECT_THROW(run_trajectory<double>(c, m, 1, 0), Error);
}

}  // namespace
}  // namespace qhip::noise
