#include "src/io/qasm.h"

#include <gtest/gtest.h>

#include <numbers>

#include "src/base/error.h"
#include "src/base/rng.h"
#include "src/core/gates.h"
#include "src/rqc/rqc.h"

namespace qhip {
namespace {

// Unitary distance up to global phase: normalize both by the phase of the
// largest-magnitude entry of `a`.
double phase_free_distance(const CMatrix& a, const CMatrix& b) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < a.data().size(); ++i) {
    if (std::abs(a.data()[i]) > std::abs(a.data()[best])) best = i;
  }
  if (std::abs(a.data()[best]) < 1e-12 || std::abs(b.data()[best]) < 1e-12) {
    return a.distance(b);
  }
  const cplx64 pa = a.data()[best] / std::abs(a.data()[best]);
  const cplx64 pb = b.data()[best] / std::abs(b.data()[best]);
  CMatrix an = a, bn = b;
  for (auto& v : an.data()) v /= pa;
  for (auto& v : bn.data()) v /= pb;
  return an.distance(bn);
}

void expect_roundtrip(const Circuit& c, double tol = 1e-10) {
  const std::string qasm = write_qasm_string(c);
  const Circuit back = read_qasm(qasm);
  ASSERT_EQ(back.num_qubits, c.num_qubits);
  EXPECT_LT(phase_free_distance(circuit_unitary(back), circuit_unitary(c)), tol)
      << qasm;
}

TEST(Qasm, HeaderAndRegisters) {
  Circuit c;
  c.num_qubits = 3;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::measure(1, {0, 2}));
  const std::string s = write_qasm_string(c);
  EXPECT_NE(s.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(s.find("include \"qelib1.inc\";"), std::string::npos);
  EXPECT_NE(s.find("qreg q[3];"), std::string::npos);
  EXPECT_NE(s.find("creg c[3];"), std::string::npos);
  EXPECT_NE(s.find("measure q[0] -> c[0];"), std::string::npos);
  EXPECT_NE(s.find("measure q[2] -> c[2];"), std::string::npos);
}

TEST(Qasm, DirectGatesRoundTrip) {
  Circuit c;
  c.num_qubits = 3;
  unsigned t = 0;
  c.gates.push_back(gates::h(t++, 0));
  c.gates.push_back(gates::x(t++, 1));
  c.gates.push_back(gates::y(t++, 2));
  c.gates.push_back(gates::z(t++, 0));
  c.gates.push_back(gates::s(t++, 1));
  c.gates.push_back(gates::sdg(t++, 2));
  c.gates.push_back(gates::t(t++, 0));
  c.gates.push_back(gates::tdg(t++, 1));
  c.gates.push_back(gates::rx(t++, 2, 0.3));
  c.gates.push_back(gates::ry(t++, 0, 1.1));
  c.gates.push_back(gates::rz(t++, 1, 2.2));
  c.gates.push_back(gates::p(t++, 2, 0.7));
  c.gates.push_back(gates::cz(t++, 0, 1));
  c.gates.push_back(gates::cnot(t++, 1, 2));
  c.gates.push_back(gates::sw(t++, 0, 2));
  c.gates.push_back(gates::cp(t++, 0, 1, 1.3));
  expect_roundtrip(c);
}

TEST(Qasm, SqrtGatesExportAsU3) {
  Circuit c;
  c.num_qubits = 2;
  c.gates.push_back(gates::x_1_2(0, 0));
  c.gates.push_back(gates::y_1_2(0, 1));
  c.gates.push_back(gates::hz_1_2(1, 0));
  c.gates.push_back(gates::rxy(1, 1, 0.4, 1.7));
  const std::string s = write_qasm_string(c);
  EXPECT_NE(s.find("u3("), std::string::npos);
  expect_roundtrip(c);
}

TEST(Qasm, IswapDecomposition) {
  Circuit c;
  c.num_qubits = 2;
  c.gates.push_back(gates::is(0, 0, 1));
  expect_roundtrip(c);
}

TEST(Qasm, FsimDecomposition) {
  for (const auto& [theta, phi] :
       std::vector<std::pair<double, double>>{{0.3, 0.0},
                                              {std::numbers::pi / 2,
                                               std::numbers::pi / 6},
                                              {1.1, -0.8}}) {
    Circuit c;
    c.num_qubits = 2;
    c.gates.push_back(gates::fs(0, 0, 1, theta, phi));
    expect_roundtrip(c);
  }
}

TEST(Qasm, ControlledGatesViaCu3) {
  Circuit c;
  c.num_qubits = 3;
  c.gates.push_back(gates::controlled(gates::ry(0, 2, 0.9), {0}));
  c.gates.push_back(gates::controlled(gates::t(1, 1), {2}));
  expect_roundtrip(c);
}

TEST(Qasm, ToffoliAndCcz) {
  Circuit c;
  c.num_qubits = 3;
  c.gates.push_back(gates::ccx(0, 0, 1, 2));
  c.gates.push_back(gates::ccz(1, 0, 1, 2));
  expect_roundtrip(c);
}

TEST(Qasm, RqcRoundTrip) {
  rqc::RqcOptions opt;
  opt.rows = 2;
  opt.cols = 3;
  opt.depth = 4;
  const Circuit c = rqc::generate_rqc(opt);
  expect_roundtrip(c, 1e-9);
}

TEST(Qasm, RejectsWideFusedGates) {
  Circuit c;
  c.num_qubits = 3;
  Gate g;
  g.name = "fused";
  g.qubits = {0, 1, 2};
  g.matrix = CMatrix::identity(8);
  c.gates.push_back(std::move(g));
  EXPECT_THROW(write_qasm_string(c), Error);
}

TEST(Qasm, ImportParsesPiExpressions) {
  const Circuit c = read_qasm(
      "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\n"
      "rz(pi/2) q[0];\nrx(-pi/4) q[0];\nry(2*pi) q[0];\nu1(pi) q[0];\n");
  ASSERT_EQ(c.size(), 4u);
  EXPECT_NEAR(c.gates[0].params[0], std::numbers::pi / 2, 1e-15);
  EXPECT_NEAR(c.gates[1].params[0], -std::numbers::pi / 4, 1e-15);
  EXPECT_NEAR(c.gates[2].params[0], 2 * std::numbers::pi, 1e-15);
}

TEST(Qasm, ImportHandlesCommentsAndBarriers) {
  const Circuit c = read_qasm(
      "// header comment\nOPENQASM 2.0;\ninclude \"qelib1.inc\";\n"
      "qreg q[2];\ncreg c[2];\nh q[0]; // superpose\nbarrier q;\n"
      "cx q[0],q[1];\nmeasure q[0] -> c[0];\n");
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(c.gates.back().is_measurement());
}

TEST(Qasm, ImportRejectsMalformed) {
  EXPECT_THROW(read_qasm("qreg q[2];\nh q[0];\n"), Error);  // no header
  EXPECT_THROW(read_qasm("OPENQASM 2.0;\nh q[0];\n"), Error);  // no qreg
  EXPECT_THROW(read_qasm("OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n"),
               Error);
  EXPECT_THROW(read_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[5];\n"), Error);
  EXPECT_THROW(read_qasm("OPENQASM 2.0;\nqreg q[2];\nrx() q[0];\n"), Error);
  EXPECT_THROW(read_qasm("OPENQASM 3.0;\nqreg q[1];\n"), Error);
}

// --- truncated / trailing-garbage input is a structured rejection ------------
// Same contract as the qhip loader: anything that looks like a torn-off or
// tampered payload throws CodedError(kMalformedInput), which the serving
// layer turns into a structured kRejected instead of a retry.

void expect_coded_malformed(const std::string& qasm, const char* fragment) {
  try {
    read_qasm(qasm);
    FAIL() << "expected throw for: " << qasm;
  } catch (const CodedError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kMalformedInput) << qasm;
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << e.what();
  }
}

TEST(Qasm, UnterminatedFinalStatementIsCodedTruncation) {
  // The file ends mid-statement — a classic truncated upload.
  expect_coded_malformed(
      "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0]",
      "unterminated");
  expect_coded_malformed("OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1]",
                         "unterminated");
}

TEST(Qasm, WrongVersionHeaderIsCodedMalformed) {
  expect_coded_malformed("OPENQASM 2.1;\nqreg q[1];\n", "2.0");
  expect_coded_malformed("OPENQASM;\nqreg q[1];\n", "2.0");
}

TEST(Qasm, TrailingGarbageAfterQregIsCodedMalformed) {
  expect_coded_malformed("OPENQASM 2.0;\nqreg q[2] zzz;\nh q[0];\n",
                         "trailing garbage");
}

TEST(Qasm, TrailingGarbageAfterOperandIsCodedMalformed) {
  expect_coded_malformed("OPENQASM 2.0;\nqreg q[2];\nh q[0]junk;\n",
                         "trailing garbage");
}

TEST(Qasm, U2AndU3Import) {
  const Circuit c = read_qasm(
      "OPENQASM 2.0;\nqreg q[1];\n"
      "u3(1.0,0.5,0.25) q[0];\nu2(0.5,0.25) q[0];\n");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_TRUE(c.gates[0].matrix.is_unitary(1e-12));
  EXPECT_TRUE(c.gates[1].matrix.is_unitary(1e-12));
}

}  // namespace
}  // namespace qhip
