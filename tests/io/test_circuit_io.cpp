#include "src/io/circuit_io.h"

#include <gtest/gtest.h>

#include <istream>
#include <stdexcept>
#include <string>

#include "src/base/error.h"
#include "src/core/gates.h"

namespace qhip {
namespace {

TEST(CircuitIO, ParsesMinimal) {
  const Circuit c = read_circuit_string("2\n0 h 0\n1 cz 0 1\n");
  EXPECT_EQ(c.num_qubits, 2u);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.gates[0].name, "h");
  EXPECT_EQ(c.gates[1].name, "cz");
  EXPECT_EQ(c.gates[1].qubits, (std::vector<qubit_t>{0, 1}));
}

TEST(CircuitIO, SkipsCommentsAndBlanks) {
  const Circuit c = read_circuit_string(
      "# RQC test\n\n3\n# layer 0\n0 h 0\n0 h 1\n\n0 h 2\n");
  EXPECT_EQ(c.num_qubits, 3u);
  EXPECT_EQ(c.size(), 3u);
}

TEST(CircuitIO, ParsesParameterizedGates) {
  const Circuit c = read_circuit_string(
      "4\n0 rx 0 0.25\n0 fs 1 2 0.5 0.75\n1 cp 0 3 1.5\n1 rxy 1 0.1 0.2\n");
  EXPECT_EQ(c.gates[0].params, (std::vector<double>{0.25}));
  EXPECT_EQ(c.gates[1].params, (std::vector<double>{0.5, 0.75}));
  EXPECT_EQ(c.gates[2].params, (std::vector<double>{1.5}));
  EXPECT_EQ(c.gates[3].params, (std::vector<double>{0.1, 0.2}));
}

TEST(CircuitIO, ParsesSqrtGates) {
  const Circuit c =
      read_circuit_string("3\n0 x_1_2 0\n0 y_1_2 1\n0 hz_1_2 2\n");
  EXPECT_EQ(c.gates[0].name, "x_1_2");
  EXPECT_EQ(c.gates[1].name, "y_1_2");
  EXPECT_EQ(c.gates[2].name, "hz_1_2");
}

TEST(CircuitIO, CxAliasForCnot) {
  const Circuit c = read_circuit_string("2\n0 cx 0 1\n");
  EXPECT_EQ(c.gates[0].name, "cnot");
}

TEST(CircuitIO, ParsesMeasurement) {
  const Circuit c = read_circuit_string("3\n0 h 0\n1 m 0 1 2\n");
  EXPECT_TRUE(c.gates[1].is_measurement());
  EXPECT_EQ(c.gates[1].qubits, (std::vector<qubit_t>{0, 1, 2}));
}

TEST(CircuitIO, ParsesControlledGates) {
  const Circuit c = read_circuit_string("3\n0 c 0 1 x 2\n");
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.gates[0].controls, (std::vector<qubit_t>{0, 1}));
  EXPECT_EQ(c.gates[0].qubits, (std::vector<qubit_t>{2}));
}

TEST(CircuitIO, ErrorsCarryLineNumbers) {
  try {
    read_circuit_string("2\n0 h 0\n1 zz 1\n");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(":3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("zz"), std::string::npos) << msg;
  }
}

TEST(CircuitIO, RejectsMalformed) {
  EXPECT_THROW(read_circuit_string(""), Error);               // empty
  EXPECT_THROW(read_circuit_string("2\n0 h\n"), Error);       // missing qubit
  EXPECT_THROW(read_circuit_string("2\n0 rx 0\n"), Error);    // missing param
  EXPECT_THROW(read_circuit_string("2\n0 h 5\n"), Error);     // out of range
  EXPECT_THROW(read_circuit_string("2\n0 h 0 7\n"), Error);   // trailing token
  EXPECT_THROW(read_circuit_string("2\n0 cz 1 1\n"), Error);  // repeated qubit
  EXPECT_THROW(read_circuit_string("x\n"), Error);            // bad header
  EXPECT_THROW(read_circuit_string("2\n1 h 0\n0 h 1\n"), Error);  // time order
  EXPECT_THROW(read_circuit_string("2\n0 c x 1\n"), Error);   // c without ctrl
}

TEST(CircuitIO, RoundTripPreservesStructure) {
  const std::string text =
      "4\n"
      "0 h 0\n0 x_1_2 1\n0 hz_1_2 2\n0 t 3\n"
      "1 fs 0 1 0.25 0.5\n1 is 2 3\n"
      "2 rz 0 1.5707963267948966\n"
      "3 c 0 z 1\n"
      "4 m 0 1\n";
  const Circuit c1 = read_circuit_string(text);
  const Circuit c2 = read_circuit_string(write_circuit_string(c1));
  ASSERT_EQ(c1.size(), c2.size());
  EXPECT_EQ(c1.num_qubits, c2.num_qubits);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1.gates[i].name, c2.gates[i].name) << i;
    EXPECT_EQ(c1.gates[i].time, c2.gates[i].time) << i;
    EXPECT_EQ(c1.gates[i].qubits, c2.gates[i].qubits) << i;
    EXPECT_EQ(c1.gates[i].controls, c2.gates[i].controls) << i;
    EXPECT_EQ(c1.gates[i].params, c2.gates[i].params) << i;
    if (!c1.gates[i].is_measurement()) {
      EXPECT_LT(c1.gates[i].matrix.distance(c2.gates[i].matrix), 1e-15) << i;
    }
  }
}

TEST(CircuitIO, RoundTripMatrixGates) {
  Circuit c;
  c.num_qubits = 2;
  c.gates.push_back(gates::mg1(0, 0, {cplx64(0, 1), 0, 0, cplx64(0, -1)}));
  const Circuit c2 = read_circuit_string(write_circuit_string(c));
  EXPECT_LT(c.gates[0].matrix.distance(c2.gates[0].matrix), 1e-15);
}

TEST(CircuitIO, FileRoundTrip) {
  Circuit c;
  c.num_qubits = 3;
  c.gates.push_back(gates::h(0, 0));
  c.gates.push_back(gates::fs(1, 0, 2, 0.1, 0.2));
  const std::string path = testing::TempDir() + "/qhip_io_test_circuit.txt";
  write_circuit_file(c, path);
  const Circuit c2 = read_circuit_file(path);
  EXPECT_EQ(c2.size(), 2u);
  EXPECT_EQ(c2.gates[1].params, (std::vector<double>{0.1, 0.2}));
}

TEST(CircuitIO, MissingFileThrows) {
  EXPECT_THROW(read_circuit_file("/nonexistent/q30"), Error);
}

// --- malformed / truncated input is a structured rejection -------------------
// The serving layer maps CodedError(kMalformedInput) to a structured
// kRejected result instead of a retry ladder, so the loaders must use it for
// anything that smells like a truncated or garbage payload.

TEST(CircuitIO, EmptyInputIsCodedMalformed) {
  for (const char* s : {"", "\n\n", "# only a comment\n"}) {
    try {
      read_circuit_string(s);
      FAIL() << "expected throw for: '" << s << "'";
    } catch (const CodedError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kMalformedInput) << s;
      EXPECT_NE(std::string(e.what()).find("empty"), std::string::npos);
    }
  }
}

// A streambuf that serves a prefix, then fails hard — what a torn-off NFS
// read or a closed pipe looks like mid-parse. The loader must surface a
// coded truncation error, not silently return the prefix as a circuit.
class TruncatingBuf : public std::streambuf {
 public:
  explicit TruncatingBuf(std::string prefix) : prefix_(std::move(prefix)) {
    setg(prefix_.data(), prefix_.data(), prefix_.data() + prefix_.size());
  }

 protected:
  int_type underflow() override { throw std::runtime_error("I/O torn"); }

 private:
  std::string prefix_;
};

TEST(CircuitIO, MidReadFailureIsCodedTruncation) {
  TruncatingBuf buf("3\n0 h 0\n0 h 1\n");
  std::istream in(&buf);  // exceptions disabled: failure surfaces as badbit
  try {
    read_circuit(in, "torn.txt");
    FAIL() << "expected throw";
  } catch (const CodedError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kMalformedInput);
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("torn.txt"), std::string::npos);
  }
}

}  // namespace
}  // namespace qhip
