// Distributed simulator parity: SPMD slices must reproduce the
// single-process reference for any circuit, across 2/4/8 ranks, including
// gates on distributed qubits, norms and distributed expectation values.
#include "src/dist/simulator_dist.h"

#include <gtest/gtest.h>

#include <numbers>

#include "src/base/rng.h"
#include "src/core/gates.h"
#include "src/fusion/fuser.h"
#include "src/rqc/rqc.h"
#include "src/simulator/reference.h"
#include "src/simulator/simulator_cpu.h"

namespace qhip::dist {
namespace {

Circuit random_circuit(unsigned n, unsigned depth, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Circuit c;
  c.num_qubits = n;
  for (unsigned t = 0; t < depth; ++t) {
    std::vector<bool> used(n, false);
    for (unsigned q = 0; q < n; ++q) {
      if (used[q]) continue;
      const double r = rng.uniform();
      if (r < 0.35 && q + 1 < n && !used[q + 1]) {
        c.gates.push_back(gates::fs(t, q, q + 1, rng.uniform() * 2, rng.uniform()));
        used[q] = used[q + 1] = true;
      } else if (r < 0.7) {
        c.gates.push_back(gates::rxy(t, q, rng.uniform() * 6, rng.uniform() * 3));
        used[q] = true;
      }
    }
  }
  return c;
}

template <typename FP>
void expect_parity(const Circuit& c, int ranks, double tol) {
  StateVector<FP> ref(c.num_qubits);
  reference_run(c, ref);
  run_spmd(ranks, [&](Comm& comm) {
    ThreadPool pool(1);
    SimulatorDist<FP> sim(comm, c.num_qubits, pool);
    sim.run(c);
    const StateVector<FP> got = sim.gather();
    if (comm.rank() == 0) {
      EXPECT_LT(statespace::max_abs_diff(got, ref), tol) << ranks << " ranks";
    }
  });
}

TEST(SimulatorDist, GhzAcrossRanks) {
  const unsigned n = 8;
  run_spmd(4, [&](Comm& comm) {
    ThreadPool pool(1);
    SimulatorDist<float> sim(comm, n, pool);
    sim.apply_gate(gates::h(0, 0));
    for (unsigned q = 1; q < n; ++q) sim.apply_gate(gates::cnot(q, q - 1, q));
    EXPECT_NEAR(sim.norm2(), 1.0, 1e-5);
    const StateVector<float> s = sim.gather();
    if (comm.rank() == 0) {
      const double r = 1 / std::numbers::sqrt2;
      EXPECT_NEAR(s[0].real(), r, 1e-5);
      EXPECT_NEAR(s[s.size() - 1].real(), r, 1e-5);
    }
  });
}

TEST(SimulatorDist, RandomCircuitsMatchReference) {
  for (int ranks : {2, 4}) {
    for (std::uint64_t seed : {1ull, 2ull}) {
      expect_parity<float>(random_circuit(8, 8, seed), ranks,
                           4 * state_tol<float>());
    }
  }
  expect_parity<double>(random_circuit(9, 8, 3), 8, 4 * state_tol<double>());
}

TEST(SimulatorDist, FusedRqcMatchesReference) {
  rqc::RqcOptions opt;
  opt.rows = 2;
  opt.cols = 5;
  opt.depth = 8;
  const Circuit fused = fuse_circuit(rqc::generate_rqc(opt), {4}).circuit;
  expect_parity<float>(fused, 4, 4 * state_tol<float>());
}

TEST(SimulatorDist, GlobalGateCausesCommunication) {
  const unsigned n = 8;
  run_spmd(2, [&](Comm& comm) {
    ThreadPool pool(1);
    SimulatorDist<float> sim(comm, n, pool);
    sim.apply_gate(gates::h(0, 2));  // local: no traffic
    EXPECT_EQ(sim.stats().slot_swaps, 0u);
    sim.apply_gate(gates::h(1, n - 1));  // global slot: one swap
    EXPECT_EQ(sim.stats().slot_swaps, 1u);
    EXPECT_GT(sim.stats().bytes_sent, 0u);
    sim.apply_gate(gates::h(2, n - 1));  // now local: no new swap
    EXPECT_EQ(sim.stats().slot_swaps, 1u);
  });
}

TEST(SimulatorDist, DistributedExpectationMatchesHost) {
  const unsigned n = 8;
  const Circuit c = random_circuit(n, 6, 9);
  StateVector<double> ref(n);
  reference_run(c, ref);
  const obs::Observable h = obs::transverse_field_ising(n, 1.0, 0.8);
  const cplx64 want = obs::expectation(h, ref);

  run_spmd(4, [&](Comm& comm) {
    ThreadPool pool(1);
    SimulatorDist<double> sim(comm, n, pool);
    sim.run(c);
    const cplx64 got = sim.expectation(h);
    EXPECT_NEAR(got.real(), want.real(), 1e-9);
    EXPECT_NEAR(got.imag(), want.imag(), 1e-9);
  });
}

TEST(SimulatorDist, ExpectationOnGlobalQubits) {
  // A Pauli string touching the top (distributed) qubit forces swaps inside
  // expectation() and must still match.
  const unsigned n = 7;
  const Circuit c = random_circuit(n, 5, 4);
  StateVector<double> ref(n);
  reference_run(c, ref);
  obs::PauliString p{0.9, {{n - 1, obs::Pauli::kY}, {0, obs::Pauli::kZ}}};
  const cplx64 want = obs::expectation(p, ref);
  run_spmd(2, [&](Comm& comm) {
    ThreadPool pool(1);
    SimulatorDist<double> sim(comm, n, pool);
    sim.run(c);
    const cplx64 got = sim.expectation(p);
    EXPECT_NEAR(got.real(), want.real(), 1e-9);
    EXPECT_NEAR(got.imag(), want.imag(), 1e-9);
  });
}

TEST(SimulatorDist, NormPreservedThroughManySwaps) {
  const unsigned n = 8;
  run_spmd(4, [&](Comm& comm) {
    ThreadPool pool(1);
    SimulatorDist<float> sim(comm, n, pool);
    Xoshiro256 rng(5);
    for (int i = 0; i < 20; ++i) {
      const qubit_t q = static_cast<qubit_t>(rng.uniform() * n);
      sim.apply_gate(gates::rxy(static_cast<unsigned>(i), q,
                                rng.uniform() * 6, rng.uniform() * 3));
    }
    EXPECT_NEAR(sim.norm2(), 1.0, 1e-4);
    EXPECT_GT(sim.stats().slot_swaps, 0u);
  });
}

// Regression for the swap-tag wraparound: the old per-swap incrementing tag
// (kSwapTagBase + slot_swaps) collided with the gather tag after 8001 swaps
// and, far enough out, overflowed the 20-bit mailbox tag field. Swaps now
// use one fixed tag, so thousands of swaps before a gather must stay
// correct. apply_gate (no lookahead) ping-pongs q2/q1 through the single
// free slot, costing one swap per gate.
TEST(SimulatorDist, ManySwapsBeforeGatherStaysCorrect) {
  const unsigned n = 3;
  constexpr unsigned kGates = 8002;
  Circuit c;
  c.num_qubits = n;
  for (unsigned i = 0; i < kGates; ++i) {
    c.gates.push_back(gates::h(i, (i % 2) ? 1 : 2));
  }
  StateVector<float> ref(n);
  reference_run(c, ref);
  run_spmd(2, [&](Comm& comm) {
    ThreadPool pool(1);
    SimulatorDist<float> sim(comm, n, pool);
    for (const auto& g : c.gates) sim.apply_gate(g);
    EXPECT_GT(sim.stats().slot_swaps, 8001u);
    const StateVector<float> got = sim.gather();
    if (comm.rank() == 0) {
      EXPECT_LT(statespace::max_abs_diff(got, ref), 1e-4);
    }
  });
}

// run() schedules evictions by farthest next use (Belady): localizing q3
// must evict a never-again-used qubit rather than q2, which the very next
// gate needs — one swap instead of two.
TEST(SimulatorDist, LookaheadPicksFarthestNextUseEviction) {
  const unsigned n = 4;
  Circuit c;
  c.num_qubits = n;
  c.gates.push_back(gates::h(0, 3));
  c.gates.push_back(gates::h(1, 2));
  StateVector<float> ref(n);
  reference_run(c, ref);
  run_spmd(2, [&](Comm& comm) {
    ThreadPool pool(1);
    SimulatorDist<float> greedy(comm, n, pool);
    for (const auto& g : c.gates) greedy.apply_gate(g);  // no lookahead
    EXPECT_EQ(greedy.stats().slot_swaps, 2u);

    SimulatorDist<float> planned(comm, n, pool);
    planned.run(c);
    EXPECT_EQ(planned.stats().slot_swaps, 1u);
    const StateVector<float> got = planned.gather();
    if (comm.rank() == 0) {
      EXPECT_LT(statespace::max_abs_diff(got, ref), 1e-5);
    }
  });
}

// The chunked double-buffered swap must be bit-identical with the blocking
// baseline, chunk boundaries included (tiny chunks force many per swap).
TEST(SimulatorDist, PipelinedSwapMatchesBlockingBitExact) {
  const unsigned n = 10;
  const Circuit c = random_circuit(n, 8, 21);
  run_spmd(4, [&](Comm& comm) {
    ThreadPool pool(1);
    DistOptions pipelined;
    pipelined.pipelined = true;
    pipelined.chunk_amps = 8;
    DistOptions blocking;
    blocking.pipelined = false;
    SimulatorDist<float> a(comm, n, pool, pipelined);
    SimulatorDist<float> b(comm, n, pool, blocking);
    a.run(c);
    b.run(c);
    EXPECT_GT(a.stats().slot_swaps, 0u);
    EXPECT_EQ(a.stats().slot_swaps, b.stats().slot_swaps);
    EXPECT_EQ(a.stats().bytes_sent, b.stats().bytes_sent);
    // Each pipelined swap ships ceil(half / chunk) chunks; blocking is 1.
    EXPECT_GT(a.stats().swap_chunks, a.stats().slot_swaps);
    EXPECT_EQ(b.stats().swap_chunks, b.stats().slot_swaps);
    const StateVector<float> sa = a.gather();
    const StateVector<float> sb = b.gather();
    if (comm.rank() == 0) {
      EXPECT_EQ(statespace::max_abs_diff(sa, sb), 0.0);
    }
  });
}

// In-circuit measurements: same Philox streams and seed formula as
// SimulatorCPU, so outcomes agree exactly; the collapsed state matches to
// float tolerance.
TEST(SimulatorDist, MeasurementsMatchCpuSimulator) {
  const unsigned n = 8;
  Circuit c = random_circuit(n, 5, 13);
  c.gates.push_back(gates::measure(5, {0, n - 1}));
  Circuit tail = random_circuit(n, 3, 14);
  for (auto& g : tail.gates) c.gates.push_back(g);
  c.gates.push_back(gates::measure(9, {2, 3}));

  for (const std::uint64_t seed : {1ull, 7ull, 99ull}) {
    ThreadPool ref_pool(1);
    SimulatorCPU<float> cpu(ref_pool);
    StateVector<float> ref(n);
    std::vector<index_t> ref_meas;
    cpu.run(c, ref, seed, &ref_meas);

    run_spmd(4, [&](Comm& comm) {
      ThreadPool pool(1);
      SimulatorDist<float> sim(comm, n, pool);
      std::vector<index_t> meas;
      sim.run(c, seed, &meas);
      EXPECT_EQ(meas, ref_meas) << "seed " << seed;
      const StateVector<float> got = sim.gather();
      if (comm.rank() == 0) {
        EXPECT_LT(statespace::max_abs_diff(got, ref), 1e-4) << "seed " << seed;
      }
    });
  }
}

// Measuring qubits living in global (rank-index) slots: the outcome bits
// are fixed by the rank id and collapse may zero whole slices.
TEST(SimulatorDist, MeasureGlobalQubit) {
  const unsigned n = 6;
  run_spmd(4, [&](Comm& comm) {
    ThreadPool pool(1);
    SimulatorDist<double> sim(comm, n, pool);
    // Localizing q5 evicts a local holder into global slot 5; measuring the
    // evicted qubit exercises the fixed-bit path (it is |0>, so the outcome
    // is deterministic and no slice survives on half the ranks... except
    // all amplitude lives in the q=0 half here).
    sim.apply_gate(gates::h(0, n - 1));
    const index_t out_evicted = sim.measure({3}, 3);
    EXPECT_EQ(out_evicted, 0u);
    EXPECT_NEAR(sim.norm2(), 1.0, 1e-12);
    // Measure the superposed qubit too (local slot, random outcome): every
    // rank must draw the same result.
    const index_t outcome = sim.measure({n - 1}, 3);
    EXPECT_NEAR(sim.norm2(), 1.0, 1e-12);
    const auto all = comm.allgather(static_cast<double>(outcome));
    for (double o : all) EXPECT_EQ(o, static_cast<double>(outcome));
  });
}

TEST(SimulatorDist, AmplitudesMatchGatheredState) {
  const unsigned n = 9;
  const Circuit c = random_circuit(n, 7, 31);
  run_spmd(8, [&](Comm& comm) {
    ThreadPool pool(1);
    SimulatorDist<float> sim(comm, n, pool);
    sim.run(c);
    const std::vector<index_t> idx{0, 1, 5, 100, pow2(n) - 1};
    const std::vector<cplx64> amps = sim.amplitudes(idx);  // collective
    const StateVector<float> full = sim.gather();
    if (comm.rank() == 0) {
      ASSERT_EQ(amps.size(), idx.size());
      for (std::size_t k = 0; k < idx.size(); ++k) {
        EXPECT_EQ(amps[k].real(), static_cast<double>(full[idx[k]].real()));
        EXPECT_EQ(amps[k].imag(), static_cast<double>(full[idx[k]].imag()));
      }
    }
    EXPECT_THROW(sim.amplitudes({pow2(n)}), Error);
  });
}

// An expired deadline must abort every rank at the same collective
// checkpoint — a lone local throw would leave partners blocked in recv.
TEST(SimulatorDist, DeadlineAbortsAllRanksTogether) {
  const unsigned n = 8;
  const Circuit c = random_circuit(n, 6, 2);
  run_spmd(4, [&](Comm& comm) {
    ThreadPool pool(1);
    SimulatorDist<float> sim(comm, n, pool);
    try {
      sim.run(c, 1, nullptr, Deadline::after(0));
      ADD_FAILURE() << "rank " << comm.rank() << ": deadline did not fire";
    } catch (const CodedError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
    }
  });
}

TEST(SimulatorDist, Validation) {
  run_spmd(2, [](Comm& comm) {
    ThreadPool pool(1);
    EXPECT_THROW(SimulatorDist<float>(comm, 1, pool), Error);
    SimulatorDist<float> sim(comm, 6, pool);
    Gate wide;
    wide.name = "fused";
    for (qubit_t q = 0; q < 6; ++q) wide.qubits.push_back(q);
    wide.matrix = CMatrix::identity(64);
    EXPECT_THROW(sim.apply_gate(wide), Error);
  });
}

}  // namespace
}  // namespace qhip::dist
