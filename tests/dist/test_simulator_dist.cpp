// Distributed simulator parity: SPMD slices must reproduce the
// single-process reference for any circuit, across 2/4/8 ranks, including
// gates on distributed qubits, norms and distributed expectation values.
#include "src/dist/simulator_dist.h"

#include <gtest/gtest.h>

#include <numbers>

#include "src/base/rng.h"
#include "src/core/gates.h"
#include "src/fusion/fuser.h"
#include "src/rqc/rqc.h"
#include "src/simulator/reference.h"
#include "src/simulator/simulator_cpu.h"

namespace qhip::dist {
namespace {

Circuit random_circuit(unsigned n, unsigned depth, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Circuit c;
  c.num_qubits = n;
  for (unsigned t = 0; t < depth; ++t) {
    std::vector<bool> used(n, false);
    for (unsigned q = 0; q < n; ++q) {
      if (used[q]) continue;
      const double r = rng.uniform();
      if (r < 0.35 && q + 1 < n && !used[q + 1]) {
        c.gates.push_back(gates::fs(t, q, q + 1, rng.uniform() * 2, rng.uniform()));
        used[q] = used[q + 1] = true;
      } else if (r < 0.7) {
        c.gates.push_back(gates::rxy(t, q, rng.uniform() * 6, rng.uniform() * 3));
        used[q] = true;
      }
    }
  }
  return c;
}

template <typename FP>
void expect_parity(const Circuit& c, int ranks, double tol) {
  StateVector<FP> ref(c.num_qubits);
  reference_run(c, ref);
  run_spmd(ranks, [&](Comm& comm) {
    ThreadPool pool(1);
    SimulatorDist<FP> sim(comm, c.num_qubits, pool);
    sim.run(c);
    const StateVector<FP> got = sim.gather();
    if (comm.rank() == 0) {
      EXPECT_LT(statespace::max_abs_diff(got, ref), tol) << ranks << " ranks";
    }
  });
}

TEST(SimulatorDist, GhzAcrossRanks) {
  const unsigned n = 8;
  run_spmd(4, [&](Comm& comm) {
    ThreadPool pool(1);
    SimulatorDist<float> sim(comm, n, pool);
    sim.apply_gate(gates::h(0, 0));
    for (unsigned q = 1; q < n; ++q) sim.apply_gate(gates::cnot(q, q - 1, q));
    EXPECT_NEAR(sim.norm2(), 1.0, 1e-5);
    const StateVector<float> s = sim.gather();
    if (comm.rank() == 0) {
      const double r = 1 / std::numbers::sqrt2;
      EXPECT_NEAR(s[0].real(), r, 1e-5);
      EXPECT_NEAR(s[s.size() - 1].real(), r, 1e-5);
    }
  });
}

TEST(SimulatorDist, RandomCircuitsMatchReference) {
  for (int ranks : {2, 4}) {
    for (std::uint64_t seed : {1ull, 2ull}) {
      expect_parity<float>(random_circuit(8, 8, seed), ranks,
                           4 * state_tol<float>());
    }
  }
  expect_parity<double>(random_circuit(9, 8, 3), 8, 4 * state_tol<double>());
}

TEST(SimulatorDist, FusedRqcMatchesReference) {
  rqc::RqcOptions opt;
  opt.rows = 2;
  opt.cols = 5;
  opt.depth = 8;
  const Circuit fused = fuse_circuit(rqc::generate_rqc(opt), {4}).circuit;
  expect_parity<float>(fused, 4, 4 * state_tol<float>());
}

TEST(SimulatorDist, GlobalGateCausesCommunication) {
  const unsigned n = 8;
  run_spmd(2, [&](Comm& comm) {
    ThreadPool pool(1);
    SimulatorDist<float> sim(comm, n, pool);
    sim.apply_gate(gates::h(0, 2));  // local: no traffic
    EXPECT_EQ(sim.stats().slot_swaps, 0u);
    sim.apply_gate(gates::h(1, n - 1));  // global slot: one swap
    EXPECT_EQ(sim.stats().slot_swaps, 1u);
    EXPECT_GT(sim.stats().bytes_sent, 0u);
    sim.apply_gate(gates::h(2, n - 1));  // now local: no new swap
    EXPECT_EQ(sim.stats().slot_swaps, 1u);
  });
}

TEST(SimulatorDist, DistributedExpectationMatchesHost) {
  const unsigned n = 8;
  const Circuit c = random_circuit(n, 6, 9);
  StateVector<double> ref(n);
  reference_run(c, ref);
  const obs::Observable h = obs::transverse_field_ising(n, 1.0, 0.8);
  const cplx64 want = obs::expectation(h, ref);

  run_spmd(4, [&](Comm& comm) {
    ThreadPool pool(1);
    SimulatorDist<double> sim(comm, n, pool);
    sim.run(c);
    const cplx64 got = sim.expectation(h);
    EXPECT_NEAR(got.real(), want.real(), 1e-9);
    EXPECT_NEAR(got.imag(), want.imag(), 1e-9);
  });
}

TEST(SimulatorDist, ExpectationOnGlobalQubits) {
  // A Pauli string touching the top (distributed) qubit forces swaps inside
  // expectation() and must still match.
  const unsigned n = 7;
  const Circuit c = random_circuit(n, 5, 4);
  StateVector<double> ref(n);
  reference_run(c, ref);
  obs::PauliString p{0.9, {{n - 1, obs::Pauli::kY}, {0, obs::Pauli::kZ}}};
  const cplx64 want = obs::expectation(p, ref);
  run_spmd(2, [&](Comm& comm) {
    ThreadPool pool(1);
    SimulatorDist<double> sim(comm, n, pool);
    sim.run(c);
    const cplx64 got = sim.expectation(p);
    EXPECT_NEAR(got.real(), want.real(), 1e-9);
    EXPECT_NEAR(got.imag(), want.imag(), 1e-9);
  });
}

TEST(SimulatorDist, NormPreservedThroughManySwaps) {
  const unsigned n = 8;
  run_spmd(4, [&](Comm& comm) {
    ThreadPool pool(1);
    SimulatorDist<float> sim(comm, n, pool);
    Xoshiro256 rng(5);
    for (int i = 0; i < 20; ++i) {
      const qubit_t q = static_cast<qubit_t>(rng.uniform() * n);
      sim.apply_gate(gates::rxy(static_cast<unsigned>(i), q,
                                rng.uniform() * 6, rng.uniform() * 3));
    }
    EXPECT_NEAR(sim.norm2(), 1.0, 1e-4);
    EXPECT_GT(sim.stats().slot_swaps, 0u);
  });
}

TEST(SimulatorDist, Validation) {
  run_spmd(2, [](Comm& comm) {
    ThreadPool pool(1);
    EXPECT_THROW(SimulatorDist<float>(comm, 1, pool), Error);
    SimulatorDist<float> sim(comm, 6, pool);
    Gate wide;
    wide.name = "fused";
    for (qubit_t q = 0; q < 6; ++q) wide.qubits.push_back(q);
    wide.matrix = CMatrix::identity(64);
    EXPECT_THROW(sim.apply_gate(wide), Error);
  });
}

}  // namespace
}  // namespace qhip::dist
