#include "src/dist/comm.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "src/base/error.h"

namespace qhip::dist {
namespace {

TEST(Comm, RankAndSize) {
  std::atomic<int> seen{0};
  run_spmd(4, [&](Comm& c) {
    EXPECT_EQ(c.size(), 4);
    EXPECT_GE(c.rank(), 0);
    EXPECT_LT(c.rank(), 4);
    seen.fetch_add(1 << c.rank());
  });
  EXPECT_EQ(seen.load(), 0b1111);
}

TEST(Comm, PointToPointOrdered) {
  run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) c.send(1, 7, &i, sizeof(i));
    } else {
      for (int i = 0; i < 10; ++i) {
        int v = -1;
        c.recv(0, 7, &v, sizeof(v));
        EXPECT_EQ(v, i);  // FIFO per (src, tag)
      }
    }
  });
}

TEST(Comm, TagsAreIndependentChannels) {
  run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      const int a = 1, b = 2;
      c.send(1, 100, &a, sizeof(a));
      c.send(1, 200, &b, sizeof(b));
    } else {
      int vb = 0, va = 0;
      c.recv(0, 200, &vb, sizeof(vb));  // out of send order, by tag
      c.recv(0, 100, &va, sizeof(va));
      EXPECT_EQ(va, 1);
      EXPECT_EQ(vb, 2);
    }
  });
}

TEST(Comm, SizeMismatchDiagnosed) {
  EXPECT_THROW(run_spmd(2,
                        [](Comm& c) {
                          if (c.rank() == 0) {
                            const double v = 1.0;
                            c.send(1, 1, &v, sizeof(v));
                          } else {
                            float w;
                            c.recv(0, 1, &w, sizeof(w));  // wrong size
                          }
                        }),
               Error);
}

TEST(Comm, SendrecvBidirectional) {
  run_spmd(4, [](Comm& c) {
    const int partner = c.rank() ^ 1;
    const int mine = c.rank() * 10;
    int theirs = -1;
    c.sendrecv(partner, 3, &mine, &theirs, sizeof(int));
    EXPECT_EQ(theirs, partner * 10);
  });
}

TEST(Comm, AllreduceSum) {
  run_spmd(8, [](Comm& c) {
    const double total = c.allreduce_sum(static_cast<double>(c.rank() + 1));
    EXPECT_DOUBLE_EQ(total, 36.0);  // 1+..+8
    const cplx64 ct = c.allreduce_sum(cplx64(1.0, static_cast<double>(c.rank())));
    EXPECT_DOUBLE_EQ(ct.real(), 8.0);
    EXPECT_DOUBLE_EQ(ct.imag(), 28.0);
  });
}

TEST(Comm, BackToBackReductionsDoNotRace) {
  run_spmd(4, [](Comm& c) {
    for (int round = 0; round < 50; ++round) {
      const double total =
          c.allreduce_sum(static_cast<double>(c.rank() + round));
      EXPECT_DOUBLE_EQ(total, 6.0 + 4.0 * round) << round;
    }
  });
}

TEST(Comm, AllgatherOrderedByRank) {
  run_spmd(4, [](Comm& c) {
    const auto all = c.allgather(static_cast<double>(c.rank() * c.rank()));
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(all[r], r * r);
  });
}

TEST(Comm, BarrierSynchronizes) {
  std::atomic<int> phase{0};
  run_spmd(4, [&](Comm& c) {
    phase.fetch_add(1);
    c.barrier();
    // After the barrier every rank's increment is visible.
    EXPECT_EQ(phase.load(), 4);
  });
}

TEST(Comm, ExceptionPropagates) {
  EXPECT_THROW(run_spmd(2,
                        [](Comm& c) {
                          if (c.rank() == 1) throw Error("rank 1 failed");
                        }),
               Error);
}

// Regression: the mailbox key gives tags 20 bits, and an unmasked tag used
// to bleed into the dst field, silently cross-wiring (src, dst, tag) with
// (src, dst + 1, tag - 2^20). Out-of-range tags must be rejected loudly,
// and the largest in-range tag must still be a working channel.
TEST(Comm, TagRangeEnforced) {
  run_spmd(2, [](Comm& c) {
    const int v = c.rank();
    EXPECT_THROW(c.send(c.rank() ^ 1, kMaxTag + 1, &v, sizeof(v)), Error);
    int w = -1;
    EXPECT_THROW(c.recv(c.rank() ^ 1, 1 << 20, &w, sizeof(w)), Error);
    EXPECT_THROW(c.send(c.rank() ^ 1, -1, &v, sizeof(v)), Error);
    // kMaxTag itself is valid end to end.
    c.sendrecv(c.rank() ^ 1, kMaxTag, &v, &w, sizeof(int));
    EXPECT_EQ(w, c.rank() ^ 1);
  });
}

// Regression: recv_vec used to write through v->data() without resizing, so
// receiving into an unsized vector failed. It now probes and resizes to the
// incoming message.
TEST(Comm, RecvVecResizesToMessage) {
  run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<double> payload{1.5, 2.5, 3.5, 4.5, 5.5};
      c.send_vec(1, 4, payload);
    } else {
      std::vector<double> got;  // empty: pre-fix this was a size mismatch
      c.recv_vec(0, 4, &got);
      ASSERT_EQ(got.size(), 5u);
      EXPECT_DOUBLE_EQ(got[0], 1.5);
      EXPECT_DOUBLE_EQ(got[4], 5.5);
    }
  });
}

TEST(Comm, RecvVecRejectsPartialElements) {
  run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<float> payload{1.f, 2.f, 3.f};  // 12 bytes
      c.send_vec(1, 4, payload);
      c.barrier();
    } else {
      std::vector<double> got;  // 12 % sizeof(double) != 0
      EXPECT_THROW(c.recv_vec(0, 4, &got), Error);
      c.barrier();
    }
  });
}

TEST(Comm, ProbeReportsSizeWithoutConsuming) {
  run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<int> payload{7, 8, 9};
      c.send_vec(1, 6, payload);
    } else {
      EXPECT_EQ(c.probe(0, 6), 3 * sizeof(int));
      EXPECT_EQ(c.probe(0, 6), 3 * sizeof(int));  // still queued
      std::vector<int> got(3);
      c.recv(0, 6, got.data(), 3 * sizeof(int));
      EXPECT_EQ(got[2], 9);
    }
  });
}

TEST(Comm, IrecvCompletesViaWait) {
  run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.barrier();  // rank 1 posts its irecv before the message exists
      const int v = 42;
      c.isend(1, 5, &v, sizeof(v));
    } else {
      int w = 0;
      Comm::Request r = c.irecv(0, 5, &w, sizeof(w));
      EXPECT_TRUE(r.pending());  // nothing sent yet
      c.barrier();
      c.wait(r);
      EXPECT_FALSE(r.pending());
      EXPECT_EQ(w, 42);
      c.wait(r);  // completed requests wait as no-ops
    }
  });
}

TEST(Comm, IrecvMatchesImmediatelyWhenQueued) {
  run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      const int v = 7;
      c.isend(1, 5, &v, sizeof(v));
      c.barrier();
    } else {
      c.barrier();  // message guaranteed queued
      int w = 0;
      Comm::Request r = c.irecv(0, 5, &w, sizeof(w));
      EXPECT_FALSE(r.pending());
      EXPECT_EQ(w, 7);
      c.wait(r);
    }
  });
}

// The pipelined-swap usage pattern: both sides stream chunks through two
// in-flight requests, waiting in post order.
TEST(Comm, DoubleBufferedExchange) {
  constexpr int kChunks = 8;
  run_spmd(2, [](Comm& c) {
    const int partner = c.rank() ^ 1;
    int rbuf[2] = {0, 0};
    Comm::Request rreq[2];
    for (int k = 0; k < kChunks; ++k) {
      rreq[k & 1] = c.irecv(partner, 9, &rbuf[k & 1], sizeof(int));
      const int v = c.rank() * 100 + k;
      c.isend(partner, 9, &v, sizeof(v));
      if (k > 0) {
        c.wait(rreq[(k - 1) & 1]);
        EXPECT_EQ(rbuf[(k - 1) & 1], partner * 100 + (k - 1));
      }
    }
    c.wait(rreq[(kChunks - 1) & 1]);
    EXPECT_EQ(rbuf[(kChunks - 1) & 1], partner * 100 + (kChunks - 1));
  });
}

TEST(Comm, AllreduceVectorElementwiseAndDeterministic) {
  run_spmd(4, [](Comm& c) {
    const double r = static_cast<double>(c.rank());
    const std::vector<double> v{r, 2 * r, 1.0};
    const auto sum = c.allreduce_sum(v);
    ASSERT_EQ(sum.size(), 3u);
    EXPECT_DOUBLE_EQ(sum[0], 6.0);   // 0+1+2+3
    EXPECT_DOUBLE_EQ(sum[1], 12.0);
    EXPECT_DOUBLE_EQ(sum[2], 4.0);
    // Interleaved scalar and vector reductions use independent slots.
    for (int round = 0; round < 20; ++round) {
      const auto s = c.allreduce_sum(std::vector<double>{r + round});
      EXPECT_DOUBLE_EQ(s[0], 6.0 + 4.0 * round) << round;
      EXPECT_DOUBLE_EQ(c.allreduce_sum(r), 6.0);
    }
  });
}

TEST(Comm, SingleRankWorld) {
  run_spmd(1, [](Comm& c) {
    EXPECT_EQ(c.size(), 1);
    EXPECT_DOUBLE_EQ(c.allreduce_sum(5.0), 5.0);
    c.barrier();
  });
}

}  // namespace
}  // namespace qhip::dist
