#include "src/dist/comm.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "src/base/error.h"

namespace qhip::dist {
namespace {

TEST(Comm, RankAndSize) {
  std::atomic<int> seen{0};
  run_spmd(4, [&](Comm& c) {
    EXPECT_EQ(c.size(), 4);
    EXPECT_GE(c.rank(), 0);
    EXPECT_LT(c.rank(), 4);
    seen.fetch_add(1 << c.rank());
  });
  EXPECT_EQ(seen.load(), 0b1111);
}

TEST(Comm, PointToPointOrdered) {
  run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) c.send(1, 7, &i, sizeof(i));
    } else {
      for (int i = 0; i < 10; ++i) {
        int v = -1;
        c.recv(0, 7, &v, sizeof(v));
        EXPECT_EQ(v, i);  // FIFO per (src, tag)
      }
    }
  });
}

TEST(Comm, TagsAreIndependentChannels) {
  run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      const int a = 1, b = 2;
      c.send(1, 100, &a, sizeof(a));
      c.send(1, 200, &b, sizeof(b));
    } else {
      int vb = 0, va = 0;
      c.recv(0, 200, &vb, sizeof(vb));  // out of send order, by tag
      c.recv(0, 100, &va, sizeof(va));
      EXPECT_EQ(va, 1);
      EXPECT_EQ(vb, 2);
    }
  });
}

TEST(Comm, SizeMismatchDiagnosed) {
  EXPECT_THROW(run_spmd(2,
                        [](Comm& c) {
                          if (c.rank() == 0) {
                            const double v = 1.0;
                            c.send(1, 1, &v, sizeof(v));
                          } else {
                            float w;
                            c.recv(0, 1, &w, sizeof(w));  // wrong size
                          }
                        }),
               Error);
}

TEST(Comm, SendrecvBidirectional) {
  run_spmd(4, [](Comm& c) {
    const int partner = c.rank() ^ 1;
    const int mine = c.rank() * 10;
    int theirs = -1;
    c.sendrecv(partner, 3, &mine, &theirs, sizeof(int));
    EXPECT_EQ(theirs, partner * 10);
  });
}

TEST(Comm, AllreduceSum) {
  run_spmd(8, [](Comm& c) {
    const double total = c.allreduce_sum(static_cast<double>(c.rank() + 1));
    EXPECT_DOUBLE_EQ(total, 36.0);  // 1+..+8
    const cplx64 ct = c.allreduce_sum(cplx64(1.0, static_cast<double>(c.rank())));
    EXPECT_DOUBLE_EQ(ct.real(), 8.0);
    EXPECT_DOUBLE_EQ(ct.imag(), 28.0);
  });
}

TEST(Comm, BackToBackReductionsDoNotRace) {
  run_spmd(4, [](Comm& c) {
    for (int round = 0; round < 50; ++round) {
      const double total =
          c.allreduce_sum(static_cast<double>(c.rank() + round));
      EXPECT_DOUBLE_EQ(total, 6.0 + 4.0 * round) << round;
    }
  });
}

TEST(Comm, AllgatherOrderedByRank) {
  run_spmd(4, [](Comm& c) {
    const auto all = c.allgather(static_cast<double>(c.rank() * c.rank()));
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(all[r], r * r);
  });
}

TEST(Comm, BarrierSynchronizes) {
  std::atomic<int> phase{0};
  run_spmd(4, [&](Comm& c) {
    phase.fetch_add(1);
    c.barrier();
    // After the barrier every rank's increment is visible.
    EXPECT_EQ(phase.load(), 4);
  });
}

TEST(Comm, ExceptionPropagates) {
  EXPECT_THROW(run_spmd(2,
                        [](Comm& c) {
                          if (c.rank() == 1) throw Error("rank 1 failed");
                        }),
               Error);
}

TEST(Comm, SingleRankWorld) {
  run_spmd(1, [](Comm& c) {
    EXPECT_EQ(c.size(), 1);
    EXPECT_DOUBLE_EQ(c.allreduce_sum(5.0), 5.0);
    c.barrier();
  });
}

}  // namespace
}  // namespace qhip::dist
