// grover_search — Grover's algorithm on the state-vector simulator:
// amplitude amplification of a marked basis state, with the textbook
// optimal iteration count floor(pi/4 * sqrt(N)). Exercises wide
// multi-controlled gates (the oracle and diffusion operator are n-qubit
// phase gates built directly as matrix gates) and the dynamic-width apply
// path.
//
//   $ ./grover_search [qubits=10] [marked=347]
#include <cstdio>
#include <cstdlib>
#include <numbers>

#include "src/base/bits.h"
#include "src/core/gates.h"
#include "src/simulator/simulator_cpu.h"

using namespace qhip;

namespace {

// Oracle: phase-flips |marked>. Built as an explicit diagonal matrix gate
// over all n qubits (fine for n <= 12 on the CPU path).
Gate oracle(unsigned n, index_t marked, unsigned time) {
  CMatrix m = CMatrix::identity(pow2(n));
  m.at(marked, marked) = -1.0;
  Gate g;
  g.name = "oracle";
  g.time = time;
  for (qubit_t q = 0; q < n; ++q) g.qubits.push_back(q);
  g.matrix = std::move(m);
  return g;
}

// Diffusion: 2|s><s| - I about the uniform state — equivalently, a phase
// flip of |0...0> conjugated by H^n.
Gate zero_phase_flip(unsigned n, unsigned time) {
  CMatrix m = CMatrix::identity(pow2(n));
  m.at(0, 0) = -1.0;
  Gate g;
  g.name = "flip0";
  g.time = time;
  for (qubit_t q = 0; q < n; ++q) g.qubits.push_back(q);
  g.matrix = std::move(m);
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned n = argc > 1 ? std::atoi(argv[1]) : 10;
  const index_t dim = pow2(n);
  const index_t marked = argc > 2 ? static_cast<index_t>(std::atoll(argv[2]))
                                  : (347 % dim);
  if (n > 12 || marked >= dim) {
    std::fprintf(stderr, "need qubits <= 12 and marked < 2^qubits\n");
    return 1;
  }

  const unsigned iters = static_cast<unsigned>(
      std::floor(std::numbers::pi / 4 * std::sqrt(static_cast<double>(dim))));
  std::printf("Grover: %u qubits (N = %llu), marked |%llu>, %u iterations\n",
              n, static_cast<unsigned long long>(dim),
              static_cast<unsigned long long>(marked), iters);

  SimulatorCPU<double> sim;
  StateVector<double> s(n);
  for (qubit_t q = 0; q < n; ++q) sim.apply_gate(gates::h(0, q), s);
  std::printf("after H^n: P(marked) = %.6f (uniform 1/N = %.6f)\n",
              std::norm(s[marked]), 1.0 / static_cast<double>(dim));

  for (unsigned it = 1; it <= iters; ++it) {
    sim.apply_gate(oracle(n, marked, it), s);
    for (qubit_t q = 0; q < n; ++q) sim.apply_gate(gates::h(it, q), s);
    sim.apply_gate(zero_phase_flip(n, it), s);
    for (qubit_t q = 0; q < n; ++q) sim.apply_gate(gates::h(it, q), s);
    if (it == 1 || it == iters / 2 || it == iters) {
      std::printf("iteration %3u: P(marked) = %.6f\n", it, std::norm(s[marked]));
    }
  }

  const double p_final = std::norm(s[marked]);
  // Sampling confirms: essentially every shot returns the marked element.
  const auto shots = statespace::sample(s, 100, 7);
  unsigned hits = 0;
  for (index_t v : shots) hits += v == marked ? 1 : 0;
  std::printf("final P(marked) = %.6f; %u/100 samples hit the marked state\n",
              p_final, hits);

  // Theory: P = sin^2((2k+1) theta), theta = asin(1/sqrt(N)).
  const double theta = std::asin(1.0 / std::sqrt(static_cast<double>(dim)));
  const double want = std::pow(std::sin((2.0 * iters + 1) * theta), 2);
  std::printf("theory predicts P = %.6f (|delta| = %.2e)\n", want,
              std::abs(want - p_final));
  return (p_final > 0.9 && std::abs(want - p_final) < 1e-6 && hits > 85) ? 0 : 1;
}
