// quickstart — the smallest end-to-end tour of the library:
// build a circuit, simulate it on the CPU backend and on the virtual-GPU
// HIP backend, verify they agree, and draw measurement samples.
//
//   $ ./quickstart
#include <cstdio>

#include "src/core/gates.h"
#include "src/hipsim/simulator_hip.h"
#include "src/rqc/rqc.h"
#include "src/simulator/simulator_cpu.h"

using namespace qhip;

int main() {
  // 1. Build a 10-qubit GHZ circuit: H on qubit 0, then a CNOT ladder.
  const unsigned n = 10;
  Circuit c;
  c.num_qubits = n;
  c.gates.push_back(gates::h(0, 0));
  for (unsigned q = 1; q < n; ++q) {
    c.gates.push_back(gates::cnot(q, q - 1, q));
  }
  c.validate();
  std::printf("circuit: %s\n", rqc::describe(c).c_str());

  // 2. Simulate on the CPU backend.
  SimulatorCPU<float> cpu;
  StateVector<float> host_state(n);
  cpu.run(c, host_state);
  std::printf("CPU backend:  <0...0| = %+.6f, <1...1| = %+.6f\n",
              host_state[0].real(), host_state[host_state.size() - 1].real());

  // 3. Simulate on the qsim HIP backend running on the virtual MI250X GCD.
  vgpu::Device dev{vgpu::mi250x_gcd()};
  hipsim::SimulatorHIP<float> gpu(dev);
  hipsim::DeviceStateVector<float> dev_state(dev, n);
  gpu.state_space().set_zero_state(dev_state);
  gpu.run(c, dev_state);
  const StateVector<float> downloaded = dev_state.to_host();
  std::printf("HIP backend:  <0...0| = %+.6f, <1...1| = %+.6f\n",
              downloaded[0].real(), downloaded[downloaded.size() - 1].real());

  const double diff = statespace::max_abs_diff(host_state, downloaded);
  std::printf("max |cpu - hip| = %.2e %s\n", diff,
              diff < 1e-5 ? "(backends agree)" : "(MISMATCH!)");

  // 4. Sample the GHZ state: only |00...0> and |11...1> ever appear.
  const auto samples = statespace::sample(host_state, 10, /*seed=*/42);
  std::printf("10 samples:");
  for (index_t s : samples) {
    std::printf(" %s", s == 0 ? "|0...0>" : s == host_state.size() - 1
                                                ? "|1...1>"
                                                : "|? ? ?>");
  }
  std::printf("\n");
  return diff < 1e-5 ? 0 : 1;
}
