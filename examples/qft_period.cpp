// qft_period — Shor-style period finding with the Quantum Fourier
// Transform, built from this library's gate set (h, cp, sw) and run on the
// CPU backend.
//
// We prepare a register in a periodic superposition sum_k |x0 + k*r> and
// apply the QFT; measuring then concentrates on multiples of 2^n / r. The
// example locates the spectral peaks and recovers the period with a
// continued-fraction-free divisor check — verifying the whole gate stack
// (controlled-phase ladders) against textbook behaviour.
//
//   $ ./qft_period [n=12] [period=8]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/base/bits.h"
#include "src/core/gates.h"
#include "src/simulator/simulator_cpu.h"

using namespace qhip;

namespace {

// Standard QFT on qubits [0, n): Hadamard + controlled-phase ladder, then
// qubit reversal via swaps.
Circuit qft(unsigned n) {
  Circuit c;
  c.num_qubits = n;
  unsigned time = 0;
  for (unsigned j = n; j-- > 0;) {
    c.gates.push_back(gates::h(time++, j));
    for (unsigned k = j; k-- > 0;) {
      const double angle = std::numbers::pi / static_cast<double>(1u << (j - k));
      c.gates.push_back(gates::cp(time++, k, j, angle));
    }
  }
  for (unsigned q = 0; q < n / 2; ++q) {
    c.gates.push_back(gates::sw(time++, q, n - 1 - q));
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned n = argc > 1 ? std::atoi(argv[1]) : 12;
  const unsigned period = argc > 2 ? std::atoi(argv[2]) : 8;
  const index_t dim = pow2(n);
  if (period == 0 || period >= dim) {
    std::fprintf(stderr, "period must be in [1, 2^n)\n");
    return 1;
  }

  // Periodic input state: equal superposition over {3, 3+r, 3+2r, ...}.
  StateVector<double> state(n);
  state[0] = 0;
  std::size_t terms = 0;
  for (index_t x = 3; x < dim; x += period) ++terms;
  const double amp = 1.0 / std::sqrt(static_cast<double>(terms));
  for (index_t x = 3; x < dim; x += period) state[x] = amp;
  std::printf("input: %zu-term periodic state, period %u, offset 3\n", terms,
              period);

  // Apply the QFT.
  SimulatorCPU<double> sim;
  const Circuit c = qft(n);
  std::printf("QFT circuit: %u qubits, %zu gates\n", n, c.size());
  sim.run(c, state);

  // Sample the transformed register; peaks sit at multiples of 2^n / r.
  const auto samples = statespace::sample(state, 4096, 7);
  std::map<index_t, unsigned> hist;
  for (index_t s : samples) ++hist[s];

  // Top measurement outcomes.
  std::vector<std::pair<unsigned, index_t>> top;
  for (const auto& [v, count] : hist) top.push_back({count, v});
  std::sort(top.rbegin(), top.rend());

  std::printf("top outcomes (value, counts, value * r / 2^n):\n");
  const double scale = static_cast<double>(period) / static_cast<double>(dim);
  unsigned shown = 0, on_peak = 0;
  for (const auto& [count, v] : top) {
    if (shown++ >= 8) break;
    const double frac = static_cast<double>(v) * scale;
    const double nearest = std::round(frac);
    const bool peak = std::abs(frac - nearest) < 0.05;
    on_peak += peak ? count : 0;
    std::printf("  %6llu  %5u  %7.3f %s\n", static_cast<unsigned long long>(v),
                count, frac, peak ? "<- k * 2^n / r" : "");
  }

  // With an exact divisor period, all mass sits exactly on the peaks.
  unsigned peak_mass = 0;
  for (const auto& [v, count] : hist) {
    const double frac = static_cast<double>(v) * scale;
    if (std::abs(frac - std::round(frac)) < 0.05) peak_mass += count;
  }
  const double peak_fraction = static_cast<double>(peak_mass) / 4096.0;
  std::printf("fraction of samples on spectral peaks: %.3f\n", peak_fraction);
  return peak_fraction > 0.9 ? 0 : 1;
}
