// loschmidt_echo — a standard qsim demonstration: run a random circuit
// forward and then its inverse; the probability of returning to |0...0>
// (the echo) is exactly 1 for an ideal simulator and decays with noise.
// Echo decay is how real devices estimate their effective error rates, and
// for this reproduction it is a sharp end-to-end correctness probe: any
// backend defect breaks the perfect ideal echo.
//
// Runs the ideal echo on both the CPU backend and the virtual-GPU HIP
// backend, then noisy echoes at increasing depolarizing rates via the
// trajectory machinery.
//
//   $ ./loschmidt_echo [qubits=12] [depth=8] [trajectories=40]
#include <cstdio>
#include <cstdlib>

#include "src/hipsim/simulator_hip.h"
#include "src/noise/trajectory.h"
#include "src/rqc/rqc.h"
#include "src/simulator/simulator_cpu.h"

using namespace qhip;

int main(int argc, char** argv) {
  const unsigned n = argc > 1 ? std::atoi(argv[1]) : 12;
  const unsigned depth = argc > 2 ? std::atoi(argv[2]) : 8;
  const unsigned trajectories = argc > 3 ? std::atoi(argv[3]) : 40;

  rqc::RqcOptions opt;
  opt.rows = 2;
  opt.cols = n / 2;
  opt.depth = depth;
  opt.seed = 17;
  const Circuit forward = rqc::generate_rqc(opt);
  const Circuit echo = concatenate(forward, inverse_circuit(forward));
  std::printf("Loschmidt echo: %s, echo circuit %zu gates\n",
              rqc::describe(forward).c_str(), echo.size());

  // Ideal echo on the CPU backend.
  SimulatorCPU<double> cpu;
  StateVector<double> s(n);
  cpu.run(echo, s);
  const double p_cpu = std::norm(s[0]);
  std::printf("ideal echo P(|0...0>), CPU backend: %.12f\n", p_cpu);

  // Ideal echo on the virtual MI250X HIP backend.
  vgpu::Device dev{vgpu::mi250x_gcd()};
  hipsim::SimulatorHIP<float> gpu(dev);
  hipsim::DeviceStateVector<float> ds(dev, n);
  gpu.state_space().set_zero_state(ds);
  gpu.run(echo, ds);
  const StateVector<float> h = ds.to_host();
  const double p_gpu = std::norm(cplx64(h[0].real(), h[0].imag()));
  std::printf("ideal echo P(|0...0>), HIP backend: %.6f\n", p_gpu);

  // Noisy echoes: decay with the error rate.
  std::printf("\n%-12s %-14s\n", "error rate", "echo P(0)");
  double prev = 1.1;
  bool monotone = true;
  for (double p : {0.0, 0.003, 0.01, 0.03}) {
    const noise::NoiseModel m{noise::depolarizing(p)};
    double psum = 0;
    for (unsigned t = 0; t < trajectories; ++t) {
      const StateVector<double> traj =
          noise::run_trajectory<double>(echo, m, 31, t);
      psum += std::norm(traj[0]);
    }
    const double echo_p = psum / trajectories;
    std::printf("%-12.3f %-14.4f\n", p, echo_p);
    monotone &= echo_p <= prev + 1e-9;
    prev = echo_p;
  }
  std::printf("\necho decays monotonically with noise: %s\n",
              monotone ? "yes" : "NO");

  const bool ok = p_cpu > 1.0 - 1e-9 && p_gpu > 1.0 - 1e-3 && monotone;
  return ok ? 0 : 1;
}
