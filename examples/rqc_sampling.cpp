// rqc_sampling — the paper's headline workload, end to end:
// generate a Sycamore-style Random Quantum Circuit, transpile it with the
// gate fuser, run it on the qsim HIP backend (virtual MI250X GCD), draw
// bitstring samples, and score them with linear XEB fidelity. Also dumps a
// rocprof-style Perfetto trace of the run (Figures 1 and 6).
//
//   $ ./rqc_sampling [qubits=16] [depth=14] [samples=2000]
#include <cstdio>
#include <cstdlib>

#include "src/base/timer.h"
#include "src/fusion/fuser.h"
#include "src/hipsim/simulator_hip.h"
#include "src/prof/trace.h"
#include "src/rqc/rqc.h"
#include "src/rqc/xeb.h"

using namespace qhip;

int main(int argc, char** argv) {
  const unsigned qubits = argc > 1 ? std::atoi(argv[1]) : 16;
  const unsigned depth = argc > 2 ? std::atoi(argv[2]) : 14;
  const std::size_t samples = argc > 3 ? std::atoi(argv[3]) : 2000;

  // Pick a near-square grid for the requested qubit count.
  unsigned rows = 1;
  for (unsigned r = 1; r * r <= qubits; ++r) {
    if (qubits % r == 0) rows = r;
  }
  rqc::RqcOptions opt;
  opt.rows = rows;
  opt.cols = qubits / rows;
  opt.depth = depth;
  opt.seed = 11;
  const Circuit circuit = rqc::generate_rqc(opt);
  std::printf("RQC: %s (grid %ux%u)\n", rqc::describe(circuit).c_str(), opt.rows,
              opt.cols);

  // Gate fusion at the paper's optimal setting.
  Timer t_fuse;
  const FusionResult fused = fuse_circuit(circuit, {4});
  std::printf("fusion (max 4 qubits): %zu -> %zu gates, mean width %.2f, "
              "%.2f ms\n",
              fused.stats.input_gates, fused.stats.output_gates,
              fused.stats.mean_width(), t_fuse.seconds() * 1e3);

  // Simulate on the virtual MI250X GCD with tracing on.
  Tracer tracer;
  vgpu::Device dev(vgpu::mi250x_gcd(), &tracer);
  hipsim::SimulatorHIP<float> sim(dev);
  hipsim::DeviceStateVector<float> state(dev, qubits);
  sim.state_space().set_zero_state(state);

  Timer t_sim;
  sim.run(fused.circuit, state);
  std::printf("simulation: %.2f s on %s (emulated)\n", t_sim.seconds(),
              dev.props().name.c_str());

  // Sample and score.
  const auto bits = sim.state_space().sample(state, samples, 2026);
  const StateVector<float> host = state.to_host();
  const double xeb = rqc::linear_xeb(host, bits);
  std::printf("linear XEB over %zu samples: %.4f (ideal simulator ~ 1.0)\n",
              samples, xeb);

  // Kernel-level profile, the paper's Figure 6 observation.
  std::printf("\nkernel summary (rocprof-equivalent):\n");
  for (const auto& row : tracer.summary()) {
    std::printf("  %-28s count=%-6llu total=%8.1f ms\n", row.name.c_str(),
                static_cast<unsigned long long>(row.count),
                static_cast<double>(row.total_us) / 1e3);
  }
  tracer.write_perfetto_json("rqc_sampling_trace.json");
  std::printf("\ntrace written to rqc_sampling_trace.json "
              "(open in https://ui.perfetto.dev)\n");
  return xeb > 0.5 ? 0 : 1;
}
