// noise_trajectories — quantum-trajectory simulation of noisy circuits,
// the qsim feature the paper's §2.1 mentions ("a quantum trajectory
// simulator optimized for modeling noisy circuits"), built on the
// src/noise Kraus-channel machinery.
//
// Each trajectory runs the ideal circuit with a noise channel applied to
// every touched qubit (Kraus operators selected with their Born
// probabilities, state renormalized). Averaging over trajectories
// estimates the noisy output; we report the state fidelity
// |<psi_ideal|psi_traj>|^2 decay across channels and error rates.
//
//   $ ./noise_trajectories [qubits=10] [depth=8] [trajectories=60]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/noise/trajectory.h"
#include "src/rqc/rqc.h"
#include "src/simulator/simulator_cpu.h"

using namespace qhip;

int main(int argc, char** argv) {
  const unsigned n = argc > 1 ? std::atoi(argv[1]) : 10;
  const unsigned depth = argc > 2 ? std::atoi(argv[2]) : 8;
  const unsigned trajectories = argc > 3 ? std::atoi(argv[3]) : 60;

  rqc::RqcOptions opt;
  opt.rows = 2;
  opt.cols = n / 2;
  opt.depth = depth;
  opt.seed = 5;
  const Circuit circuit = rqc::generate_rqc(opt);
  std::printf("noisy trajectories over %s\n", rqc::describe(circuit).c_str());

  SimulatorCPU<double> sim;
  StateVector<double> ideal(circuit.num_qubits);
  sim.run(circuit, ideal);

  const auto mean_fidelity = [&](const noise::NoiseModel& model) {
    double fid_sum = 0;
    for (unsigned t = 0; t < trajectories; ++t) {
      const StateVector<double> traj =
          noise::run_trajectory<double>(circuit, model, 1000, t);
      fid_sum += std::norm(statespace::inner_product(ideal, traj));
    }
    return fid_sum / trajectories;
  };

  std::printf("\n%-34s %-16s\n", "channel", "mean fidelity");
  bool monotone = true;
  double prev = 1.1;
  for (double p : {0.0, 0.002, 0.01, 0.03}) {
    const noise::NoiseModel m{noise::depolarizing(p)};
    const double fid = mean_fidelity(m);
    std::printf("%-34s %-16.4f\n", m.channel.name.c_str(), fid);
    monotone &= fid <= prev + 1e-9;
    prev = fid;
  }
  for (double g : {0.005, 0.02}) {
    const noise::NoiseModel m{noise::amplitude_damping(g)};
    std::printf("%-34s %-16.4f\n", m.channel.name.c_str(), mean_fidelity(m));
  }
  const noise::NoiseModel dephase{noise::phase_damping(0.01)};
  std::printf("%-34s %-16.4f\n", dephase.channel.name.c_str(),
              mean_fidelity(dephase));

  std::printf("\nfidelity decays monotonically with depolarizing rate: %s\n",
              monotone ? "yes" : "NO");
  return monotone ? 0 : 1;
}
