// vqe_ising — Variational Quantum Eigensolver on the transverse-field
// Ising chain, one of the quantum-application classes the paper's
// introduction motivates (VQE, Peruzzo et al. 2014).
//
//   H = -J sum_i Z_i Z_{i+1} - h sum_i X_i
//
// A hardware-efficient ansatz (per-qubit RY rotations + CZ entangler
// layers) is optimized with coordinate descent; energies are evaluated as
// exact expectation values on the state-vector simulator. The result is
// compared against the exact ground-state energy from dense
// diagonalization via power iteration on (shift - H).
//
//   $ ./vqe_ising [qubits=8] [layers=3]
#include <cstdio>
#include <cstdlib>
#include <map>
#include <numbers>
#include <vector>

#include "src/base/bits.h"
#include "src/core/gates.h"
#include "src/obs/observable.h"
#include "src/simulator/simulator_cpu.h"

using namespace qhip;

namespace {

constexpr double kJ = 1.0;   // ZZ coupling
constexpr double kH = 1.1;   // transverse field

// <psi| H |psi> via the Pauli-observable module (src/obs), the same
// streaming expectation path qsim exposes through ExpectationValue.
double ising_energy(const StateVector<double>& s, unsigned n) {
  static std::map<unsigned, obs::Observable> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, obs::transverse_field_ising(n, kJ, kH)).first;
  }
  return obs::expectation(it->second, s).real();
}

// Ansatz: layers of RY(theta) on every qubit + CZ ladder.
Circuit ansatz(unsigned n, unsigned layers, const std::vector<double>& theta) {
  Circuit c;
  c.num_qubits = n;
  unsigned time = 0;
  std::size_t p = 0;
  for (unsigned l = 0; l < layers; ++l) {
    for (unsigned q = 0; q < n; ++q) {
      c.gates.push_back(gates::ry(time, q, theta[p++]));
    }
    ++time;
    for (unsigned q = 0; q + 1 < n; q += 2) {
      c.gates.push_back(gates::cz(time, q, q + 1));
    }
    ++time;
    for (unsigned q = 1; q + 1 < n; q += 2) {
      c.gates.push_back(gates::cz(time, q, q + 1));
    }
    ++time;
  }
  for (unsigned q = 0; q < n; ++q) {
    c.gates.push_back(gates::ry(time, q, theta[p++]));
  }
  return c;
}

double evaluate(unsigned n, unsigned layers, const std::vector<double>& theta,
                SimulatorCPU<double>& sim) {
  StateVector<double> s(n);
  sim.run(ansatz(n, layers, theta), s);
  return ising_energy(s, n);
}

// Exact ground energy by inverse power iteration on (shift*I - H) applied
// as a dense operator (n <= 12).
double exact_ground_energy(unsigned n) {
  const index_t dim = pow2(n);
  std::vector<double> v(dim, 1.0 / std::sqrt(static_cast<double>(dim)));
  std::vector<double> w(dim);
  const double shift = kJ * n + kH * n;  // > ||H||
  double eig = 0;
  for (int it = 0; it < 600; ++it) {
    // w = (shift*I - H) v ; H applied term by term.
    for (index_t x = 0; x < dim; ++x) {
      double diag = 0;
      for (unsigned i = 0; i + 1 < n; ++i) {
        const int zi = (x >> i) & 1 ? -1 : 1;
        const int zj = (x >> (i + 1)) & 1 ? -1 : 1;
        diag += -kJ * zi * zj;
      }
      w[x] = (shift - diag) * v[x];
    }
    for (unsigned i = 0; i < n; ++i) {
      const index_t bit = pow2(i);
      for (index_t x = 0; x < dim; ++x) {
        if (x & bit) continue;
        w[x] += kH * v[x | bit];
        w[x | bit] += kH * v[x];
      }
    }
    double norm = 0;
    for (double t : w) norm += t * t;
    norm = std::sqrt(norm);
    for (index_t x = 0; x < dim; ++x) v[x] = w[x] / norm;
    eig = norm;  // Rayleigh quotient of the shifted operator
  }
  return shift - eig;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned n = argc > 1 ? std::atoi(argv[1]) : 8;
  const unsigned layers = argc > 2 ? std::atoi(argv[2]) : 3;
  const std::size_t num_params = static_cast<std::size_t>(layers + 1) * n;

  std::printf("VQE: transverse-field Ising, %u qubits, J=%.1f h=%.1f, "
              "%u ansatz layers, %zu parameters\n",
              n, kJ, kH, layers, num_params);

  SimulatorCPU<double> sim;
  std::vector<double> theta(num_params, 0.4);
  double energy = evaluate(n, layers, theta, sim);
  std::printf("initial energy: %+.6f\n", energy);

  // Coordinate descent with parameter-shift-style line search.
  double step = 0.6;
  for (int sweep = 0; sweep < 12; ++sweep) {
    for (std::size_t p = 0; p < num_params; ++p) {
      for (double delta : {step, -step}) {
        theta[p] += delta;
        const double e = evaluate(n, layers, theta, sim);
        if (e < energy - 1e-12) {
          energy = e;
        } else {
          theta[p] -= delta;
        }
      }
    }
    step *= 0.7;
    std::printf("sweep %2d: energy %+.6f\n", sweep + 1, energy);
  }

  const double exact = exact_ground_energy(n);
  std::printf("exact ground state energy: %+.6f\n", exact);
  std::printf("VQE error: %.4f (%.2f%% of |E0|)\n", energy - exact,
              100.0 * (energy - exact) / std::abs(exact));
  return (energy - exact) / std::abs(exact) < 0.05 ? 0 : 1;
}
