// qhip_prof — rocprof-style offline analysis of qhip trace JSON.
//
// The paper profiles the HIP backend with rocprof and reads the results as
// a top-kernel table (Figure 6: ApplyGateL_Kernel dominating ApplyGateH_
// Kernel) plus Perfetto timelines. This tool reproduces that workflow
// offline over the trace JSON our own Tracer writes (`qsim_base_hip -t
// trace.json`, engine batch mode, tests):
//
//   qhip_prof trace.json                top-kernel + memcpy table
//   qhip_prof --requests trace.json     + per-request critical-path breakdown
//   qhip_prof --top N trace.json        limit tables to N rows
//
// The top table matches Tracer::summary(): per name, count / total us /
// mean us / share of the covered wall time. With --requests, every request
// span tree (admit/queue/fuse/execute/sample under one "request" row) is
// unfolded, with the kernels and memcpys its flow links resolve to.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/base/error.h"
#include "src/prof/trace_reader.h"

namespace {

using qhip::prof::ParsedEvent;
using qhip::prof::ParsedTrace;

struct Row {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t bytes = 0;
};

// Aggregates X events of category `cat` by name, descending total time.
std::vector<Row> aggregate(const ParsedTrace& t, const std::string& cat) {
  std::map<std::string, Row> by_name;
  for (const ParsedEvent& e : t.events) {
    if (e.cat != cat) continue;
    Row& r = by_name[e.name];
    r.name = e.name;
    ++r.count;
    r.total_us += e.dur_us;
    r.bytes += e.bytes;
  }
  std::vector<Row> rows;
  rows.reserve(by_name.size());
  for (auto& [name, r] : by_name) rows.push_back(std::move(r));
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.total_us != b.total_us ? a.total_us > b.total_us
                                    : a.name < b.name;
  });
  return rows;
}

void print_table(const char* title, const std::vector<Row>& rows,
                 std::size_t top) {
  if (rows.empty()) return;
  std::uint64_t grand = 0;
  for (const Row& r : rows) grand += r.total_us;
  std::printf("%s\n", title);
  std::printf("  %-32s %8s %12s %10s %7s\n", "name", "count", "total_us",
              "mean_us", "%");
  std::size_t shown = 0;
  for (const Row& r : rows) {
    if (shown++ >= top) break;
    const double mean =
        r.count > 0 ? static_cast<double>(r.total_us) / r.count : 0;
    const double share =
        grand > 0 ? 100.0 * static_cast<double>(r.total_us) / grand : 0;
    std::printf("  %-32s %8llu %12llu %10.1f %6.1f%%\n", r.name.c_str(),
                static_cast<unsigned long long>(r.count),
                static_cast<unsigned long long>(r.total_us), mean, share);
  }
  if (rows.size() > top) {
    std::printf("  ... %zu more rows (raise --top)\n", rows.size() - top);
  }
  std::printf("\n");
}

// Request spans grouped by correlation id, each with its flow-linked device
// events.
struct RequestTree {
  std::vector<const ParsedEvent*> spans;    // kSpan X events, by start time
  std::vector<const ParsedEvent*> devices;  // flow-linked kernels/memcpys
};

void print_requests(const ParsedTrace& t, std::size_t top) {
  std::map<std::uint64_t, RequestTree> reqs;
  for (const ParsedEvent& e : t.events) {
    if (e.corr == 0) continue;
    if (e.cat == "request") {
      reqs[e.corr].spans.push_back(&e);
    } else if (e.cat == "kernel" || e.cat == "memcpy") {
      reqs[e.corr].devices.push_back(&e);
    }
  }
  // A request is flow-linked when any s/t/f vertex carries its id.
  std::set<std::uint64_t> flow_ids;
  for (const ParsedEvent& f : t.flows) flow_ids.insert(f.corr);

  std::printf("requests (%zu)\n", reqs.size());
  std::size_t shown = 0;
  for (auto& [corr, tree] : reqs) {
    if (shown++ >= top) {
      std::printf("  ... %zu more requests (raise --top)\n",
                  reqs.size() - top);
      break;
    }
    auto by_start = [](const ParsedEvent* a, const ParsedEvent* b) {
      return a->ts_us != b->ts_us ? a->ts_us < b->ts_us : a->dur_us > b->dur_us;
    };
    std::sort(tree.spans.begin(), tree.spans.end(), by_start);
    std::sort(tree.devices.begin(), tree.devices.end(), by_start);

    // The enclosing "request" span is the longest one.
    const ParsedEvent* anchor = nullptr;
    for (const ParsedEvent* s : tree.spans) {
      if (anchor == nullptr || s->dur_us > anchor->dur_us) anchor = s;
    }
    std::printf("  request %llu: %llu us%s%s%s\n",
                static_cast<unsigned long long>(corr),
                static_cast<unsigned long long>(anchor ? anchor->dur_us : 0),
                anchor && !anchor->detail.empty() ? " [" : "",
                anchor ? anchor->detail.c_str() : "",
                anchor && !anchor->detail.empty() ? "]" : "");
    for (const ParsedEvent* s : tree.spans) {
      if (s == anchor) continue;
      std::printf("    %-12s %10llu us  +%llu us%s%s%s\n", s->name.c_str(),
                  static_cast<unsigned long long>(s->dur_us),
                  static_cast<unsigned long long>(
                      anchor ? s->ts_us - anchor->ts_us : 0),
                  s->detail.empty() ? "" : "  [",
                  s->detail.c_str(), s->detail.empty() ? "" : "]");
    }
    std::uint64_t dev_us = 0;
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> dev;
    for (const ParsedEvent* d : tree.devices) {
      dev_us += d->dur_us;
      auto& [cnt, us] = dev[d->name];
      ++cnt;
      us += d->dur_us;
    }
    std::printf("    device: %zu events, %llu us total%s\n",
                tree.devices.size(),
                static_cast<unsigned long long>(dev_us),
                flow_ids.count(corr) ? ", flow-linked" : "");
    for (const auto& [name, cu] : dev) {
      std::printf("      %-30s %6llu x %10llu us\n", name.c_str(),
                  static_cast<unsigned long long>(cu.first),
                  static_cast<unsigned long long>(cu.second));
    }
  }
  std::printf("\n");
}

int usage() {
  std::fprintf(stderr,
               "usage: qhip_prof [--requests] [--top N] <trace.json>\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool requests = false;
  std::size_t top = 20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--requests") {
      requests = true;
    } else if (arg == "--top") {
      if (++i >= argc) return usage();
      top = static_cast<std::size_t>(std::strtoul(argv[i], nullptr, 10));
      if (top == 0) return usage();
    } else if (path.empty() && !arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  try {
    const ParsedTrace t = qhip::prof::read_trace_file(path);
    std::printf("%s: %zu events, %zu flow vertices, %zu counters\n\n",
                path.c_str(), t.events.size(), t.flows.size(),
                t.counters.size());
    print_table("top kernels", aggregate(t, "kernel"), top);
    print_table("memcpys", aggregate(t, "memcpy"), top);
    print_table("host", aggregate(t, "host"), top);
    if (requests) print_requests(t, top);
    if (!t.counters.empty()) {
      std::printf("counters\n");
      for (const auto& [name, v] : t.counters) {
        std::printf("  %-44s %.6g\n", name.c_str(), v);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qhip_prof: %s\n", e.what());
    return 1;
  }
}
