// qhip_prof — rocprof-style offline analysis of qhip trace JSON.
//
// The paper profiles the HIP backend with rocprof and reads the results as
// a top-kernel table (Figure 6: ApplyGateL_Kernel dominating ApplyGateH_
// Kernel) plus Perfetto timelines. This tool reproduces that workflow
// offline over the trace JSON our own Tracer writes (`qsim_base_hip -t
// trace.json`, engine batch mode, tests):
//
//   qhip_prof trace.json                top-kernel + memcpy table
//   qhip_prof --requests trace.json     + per-request critical-path breakdown
//   qhip_prof --slowest N trace.json    + the N slowest requests, worst first
//   qhip_prof --top N trace.json        limit tables to N rows
//
// The top table matches Tracer::summary(): per name, count / total us /
// mean us / share of the covered wall time. With --requests, every request
// span tree (admit/queue/fuse/execute/sample under one "request" row) is
// unfolded, with the kernels and memcpys its flow links resolve to;
// --slowest prints the same trees for the N longest enclosing spans.
//
// Flight-recorder snapshots (snapshot-*.trace.json, written on SLO breach
// or GET /debug/snapshot — docs/OBSERVABILITY.md) parse with the same
// reader; their completed-request record ring prints as a table before the
// kernel aggregates.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/base/error.h"
#include "src/prof/trace_reader.h"

namespace {

using qhip::prof::ParsedEvent;
using qhip::prof::ParsedTrace;

struct Row {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t bytes = 0;
};

// Aggregates X events of category `cat` by name, descending total time.
std::vector<Row> aggregate(const ParsedTrace& t, const std::string& cat) {
  std::map<std::string, Row> by_name;
  for (const ParsedEvent& e : t.events) {
    if (e.cat != cat) continue;
    Row& r = by_name[e.name];
    r.name = e.name;
    ++r.count;
    r.total_us += e.dur_us;
    r.bytes += e.bytes;
  }
  std::vector<Row> rows;
  rows.reserve(by_name.size());
  for (auto& [name, r] : by_name) rows.push_back(std::move(r));
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.total_us != b.total_us ? a.total_us > b.total_us
                                    : a.name < b.name;
  });
  return rows;
}

void print_table(const char* title, const std::vector<Row>& rows,
                 std::size_t top) {
  if (rows.empty()) return;
  std::uint64_t grand = 0;
  for (const Row& r : rows) grand += r.total_us;
  std::printf("%s\n", title);
  std::printf("  %-32s %8s %12s %10s %7s\n", "name", "count", "total_us",
              "mean_us", "%");
  std::size_t shown = 0;
  for (const Row& r : rows) {
    if (shown++ >= top) break;
    const double mean =
        r.count > 0 ? static_cast<double>(r.total_us) / r.count : 0;
    const double share =
        grand > 0 ? 100.0 * static_cast<double>(r.total_us) / grand : 0;
    std::printf("  %-32s %8llu %12llu %10.1f %6.1f%%\n", r.name.c_str(),
                static_cast<unsigned long long>(r.count),
                static_cast<unsigned long long>(r.total_us), mean, share);
  }
  if (rows.size() > top) {
    std::printf("  ... %zu more rows (raise --top)\n", rows.size() - top);
  }
  std::printf("\n");
}

// Request spans grouped by correlation id, each with its flow-linked device
// events. `anchor` is the enclosing "request" span — the longest one.
struct RequestTree {
  std::vector<const ParsedEvent*> spans;    // kSpan X events, by start time
  std::vector<const ParsedEvent*> devices;  // flow-linked kernels/memcpys
  const ParsedEvent* anchor = nullptr;
};

std::map<std::uint64_t, RequestTree> build_request_trees(
    const ParsedTrace& t) {
  std::map<std::uint64_t, RequestTree> reqs;
  for (const ParsedEvent& e : t.events) {
    if (e.corr == 0) continue;
    if (e.cat == "request") {
      reqs[e.corr].spans.push_back(&e);
    } else if (e.cat == "kernel" || e.cat == "memcpy") {
      reqs[e.corr].devices.push_back(&e);
    }
  }
  auto by_start = [](const ParsedEvent* a, const ParsedEvent* b) {
    return a->ts_us != b->ts_us ? a->ts_us < b->ts_us : a->dur_us > b->dur_us;
  };
  for (auto& [corr, tree] : reqs) {
    std::sort(tree.spans.begin(), tree.spans.end(), by_start);
    std::sort(tree.devices.begin(), tree.devices.end(), by_start);
    for (const ParsedEvent* s : tree.spans) {
      if (tree.anchor == nullptr || s->dur_us > tree.anchor->dur_us) {
        tree.anchor = s;
      }
    }
  }
  return reqs;
}

// One request's span tree with per-stage offsets and its device-event
// rollup. Shared by --requests (all requests, id order) and --slowest
// (top N by enclosing span).
void print_one_request(std::uint64_t corr, const RequestTree& tree,
                       const std::set<std::uint64_t>& flow_ids) {
  const ParsedEvent* anchor = tree.anchor;
  std::printf("  request %llu: %llu us%s%s%s\n",
              static_cast<unsigned long long>(corr),
              static_cast<unsigned long long>(anchor ? anchor->dur_us : 0),
              anchor && !anchor->detail.empty() ? " [" : "",
              anchor ? anchor->detail.c_str() : "",
              anchor && !anchor->detail.empty() ? "]" : "");
  for (const ParsedEvent* s : tree.spans) {
    if (s == anchor) continue;
    std::printf("    %-12s %10llu us  +%llu us%s%s%s\n", s->name.c_str(),
                static_cast<unsigned long long>(s->dur_us),
                static_cast<unsigned long long>(
                    anchor && s->ts_us >= anchor->ts_us
                        ? s->ts_us - anchor->ts_us
                        : 0),
                s->detail.empty() ? "" : "  [",
                s->detail.c_str(), s->detail.empty() ? "" : "]");
  }
  std::uint64_t dev_us = 0;
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> dev;
  for (const ParsedEvent* d : tree.devices) {
    dev_us += d->dur_us;
    auto& [cnt, us] = dev[d->name];
    ++cnt;
    us += d->dur_us;
  }
  std::printf("    device: %zu events, %llu us total%s\n",
              tree.devices.size(),
              static_cast<unsigned long long>(dev_us),
              flow_ids.count(corr) ? ", flow-linked" : "");
  for (const auto& [name, cu] : dev) {
    std::printf("      %-30s %6llu x %10llu us\n", name.c_str(),
                static_cast<unsigned long long>(cu.first),
                static_cast<unsigned long long>(cu.second));
  }
}

std::set<std::uint64_t> flow_id_set(const ParsedTrace& t) {
  // A request is flow-linked when any s/t/f vertex carries its id.
  std::set<std::uint64_t> flow_ids;
  for (const ParsedEvent& f : t.flows) flow_ids.insert(f.corr);
  return flow_ids;
}

void print_requests(const ParsedTrace& t, std::size_t top) {
  const std::map<std::uint64_t, RequestTree> reqs = build_request_trees(t);
  const std::set<std::uint64_t> flow_ids = flow_id_set(t);

  std::printf("requests (%zu)\n", reqs.size());
  std::size_t shown = 0;
  for (const auto& [corr, tree] : reqs) {
    if (shown++ >= top) {
      std::printf("  ... %zu more requests (raise --top)\n",
                  reqs.size() - top);
      break;
    }
    print_one_request(corr, tree, flow_ids);
  }
  std::printf("\n");
}

void print_slowest(const ParsedTrace& t, std::size_t n) {
  const std::map<std::uint64_t, RequestTree> reqs = build_request_trees(t);
  const std::set<std::uint64_t> flow_ids = flow_id_set(t);

  std::vector<const std::pair<const std::uint64_t, RequestTree>*> order;
  order.reserve(reqs.size());
  for (const auto& kv : reqs) order.push_back(&kv);
  std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
    const std::uint64_t da = a->second.anchor ? a->second.anchor->dur_us : 0;
    const std::uint64_t db = b->second.anchor ? b->second.anchor->dur_us : 0;
    return da != db ? da > db : a->first < b->first;
  });

  std::printf("slowest %zu of %zu requests\n", std::min(n, order.size()),
              order.size());
  std::size_t shown = 0;
  for (const auto* kv : order) {
    if (shown++ >= n) break;
    print_one_request(kv->first, kv->second, flow_ids);
  }
  std::printf("\n");
}

// The record ring a snapshot carries next to its trace events. The first
// line is a stable marker ("flight recorder snapshot") that scripts — the
// CI snapshot smoke among them — grep for.
void print_flight_records(const ParsedTrace& t) {
  std::printf("flight recorder snapshot: reason=%s records=%zu "
              "dropped_events=%llu\n",
              t.snapshot_reason.c_str(), t.flight_records.size(),
              static_cast<unsigned long long>(t.snapshot_dropped_events));
  std::printf("  %-6s %-11s %-10s %-16s %3s %10s %8s %8s %8s %8s %10s\n",
              "corr", "kind", "backend", "outcome", "att", "total_ms",
              "queue", "fuse", "exec", "sample", "bytes");
  for (const auto& r : t.flight_records) {
    std::printf(
        "  %-6llu %-11s %-10s %-16s %3llu %10.3f %8.3f %8.3f %8.3f %8.3f "
        "%10llu\n",
        static_cast<unsigned long long>(r.corr), r.kind.c_str(),
        r.backend.c_str(), r.outcome.c_str(),
        static_cast<unsigned long long>(r.attempts), r.total_ms, r.queue_ms,
        r.fuse_ms, r.execute_ms, r.sample_ms,
        static_cast<unsigned long long>(r.bytes));
    if (!r.planner.empty()) {
      std::printf("         planner=%s\n", r.planner.c_str());
    }
  }
  std::printf("\n");
}

int usage() {
  std::fprintf(stderr,
               "usage: qhip_prof [--requests] [--slowest N] [--top N] "
               "<trace.json>\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool requests = false;
  std::size_t top = 20;
  std::size_t slowest = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--requests") {
      requests = true;
    } else if (arg == "--top") {
      if (++i >= argc) return usage();
      top = static_cast<std::size_t>(std::strtoul(argv[i], nullptr, 10));
      if (top == 0) return usage();
    } else if (arg == "--slowest") {
      if (++i >= argc) return usage();
      slowest = static_cast<std::size_t>(std::strtoul(argv[i], nullptr, 10));
      if (slowest == 0) return usage();
    } else if (path.empty() && !arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  try {
    const ParsedTrace t = qhip::prof::read_trace_file(path);
    std::printf("%s: %zu events, %zu flow vertices, %zu counters\n\n",
                path.c_str(), t.events.size(), t.flows.size(),
                t.counters.size());
    if (!t.snapshot_reason.empty() || !t.flight_records.empty()) {
      print_flight_records(t);
    }
    print_table("top kernels", aggregate(t, "kernel"), top);
    print_table("memcpys", aggregate(t, "memcpy"), top);
    print_table("host", aggregate(t, "host"), top);
    if (requests) print_requests(t, top);
    if (slowest > 0) print_slowest(t, slowest);
    if (!t.counters.empty()) {
      std::printf("counters\n");
      for (const auto& [name, v] : t.counters) {
        std::printf("  %-44s %.6g\n", name.c_str(), v);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qhip_prof: %s\n", e.what());
    return 1;
  }
}
