// hipify_tool — command-line CUDA -> HIP translator (hipify-perl
// equivalent), the tool the paper used to produce the qsim HIP backend.
//
// Usage:
//   hipify_tool <input.cu> [-o <output>] [--no-launch-rewrite] [--no-audit]
//               [--report]
//
// With no -o the translation goes to stdout. --report prints the rule-hit
// and warning summary to stderr. Exit status is 0 on success, 1 on usage or
// I/O errors (warnings do not affect the exit status, as with hipify-perl).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/base/error.h"
#include "src/hipify/hipify.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: hipify_tool <input.cu> [-o <output>] "
               "[--no-launch-rewrite] [--no-audit] [--report]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input, output;
  qhip::hipify::HipifyOptions opt;
  bool report = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (++i >= argc) return usage();
      output = argv[i];
    } else if (arg == "--no-launch-rewrite") {
      opt.rewrite_launches = false;
    } else if (arg == "--no-audit") {
      opt.warp_size_audit = false;
    } else if (arg == "--report") {
      report = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage();
    }
  }
  if (input.empty()) return usage();

  try {
    std::ifstream in(input, std::ios::binary);
    if (!in.good()) {
      std::fprintf(stderr, "hipify_tool: cannot open '%s'\n", input.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const qhip::hipify::HipifyResult r =
        qhip::hipify::hipify_source(ss.str(), opt);

    if (output.empty()) {
      std::cout << r.output;
    } else {
      std::ofstream out(output, std::ios::binary);
      if (!out.good()) {
        std::fprintf(stderr, "hipify_tool: cannot write '%s'\n", output.c_str());
        return 1;
      }
      out << r.output;
    }
    if (report) std::cerr << r.format_report(input);
    return 0;
  } catch (const qhip::Error& e) {
    std::fprintf(stderr, "hipify_tool: %s\n", e.what());
    return 1;
  }
}
