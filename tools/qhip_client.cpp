// qhip_client: load driver and CI soak probe for qhip_serve
// (docs/SERVING.md).
//
// Modes:
//   --ping            connect + liveness probe (readiness loops in CI)
//   --metrics         print the server's Prometheus metrics text
//   soak (default)    N requests over C connections, cycling through the
//                     request kinds; optionally SIGTERM a server pid after
//                     the k-th response to exercise the graceful drain
//
// Soak exit code is the drain contract: 0 iff every fully-sent request got
// exactly one well-formed response (ok, or a structured error such as the
// drain's "rejected"). A mid-soak SIGTERM must not change that.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/base/strings.h"
#include "src/core/gates.h"
#include "src/engine/engine.h"
#include "src/noise/channels.h"
#include "src/obs/observable.h"
#include "src/serve/client.h"
#include "src/serve/wire.h"

namespace {

using namespace qhip;

int usage() {
  std::fprintf(
      stderr,
      "usage: qhip_client -p <port> [-H <host>] [--ping] [--metrics]\n"
      "       [-c <connections>] [-n <requests>] [--qubits <n>] [--depth <d>]\n"
      "       [--kinds circuit,expectation,trajectory] [--backend <spec>]\n"
      "       [--seed <s>] [--kill-pid <pid>] [--kill-after <k>]\n"
      "       [--client-corr <prefix>]\n");
  return 2;
}

Circuit make_circuit(unsigned qubits, unsigned depth) {
  Circuit c;
  c.num_qubits = qubits;
  unsigned t = 0;
  for (qubit_t q = 0; q < qubits; ++q) c.gates.push_back(gates::h(t, q));
  for (unsigned d = 0; d < depth; ++d) {
    ++t;
    for (qubit_t q = 0; q < qubits; ++q) {
      c.gates.push_back(gates::rz(t, q, 0.1 * static_cast<double>(d + 1)));
    }
    ++t;
    for (qubit_t q = 0; q + 1 < qubits; q += 2) {
      c.gates.push_back(gates::cnot(t, q, q + 1));
    }
  }
  return c;
}

struct Totals {
  std::atomic<std::size_t> sent{0}, answered{0}, ok{0}, structured_errors{0};
  std::atomic<std::size_t> protocol_errors{0}, unsent{0};
};

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  unsigned short port = 0;
  bool do_ping = false, do_metrics = false;
  unsigned connections = 4;
  std::size_t total = 100;
  unsigned qubits = 10, depth = 4;
  std::string kinds_arg = "circuit,expectation,trajectory";
  std::string backend = "cpu";
  std::uint64_t seed_base = 1;
  long kill_pid = 0;
  std::size_t kill_after = 0;
  std::string client_corr;  // "" = do not send the wire field

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "qhip_client: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "-p") port = static_cast<unsigned short>(std::atoi(next()));
    else if (a == "-H") host = next();
    else if (a == "--ping") do_ping = true;
    else if (a == "--metrics") do_metrics = true;
    else if (a == "-c") connections = static_cast<unsigned>(std::atoi(next()));
    else if (a == "-n") total = static_cast<std::size_t>(std::atol(next()));
    else if (a == "--qubits") qubits = static_cast<unsigned>(std::atoi(next()));
    else if (a == "--depth") depth = static_cast<unsigned>(std::atoi(next()));
    else if (a == "--kinds") kinds_arg = next();
    else if (a == "--backend") backend = next();
    else if (a == "--seed") seed_base = static_cast<std::uint64_t>(std::atoll(next()));
    else if (a == "--kill-pid") kill_pid = std::atol(next());
    else if (a == "--kill-after") kill_after = static_cast<std::size_t>(std::atol(next()));
    else if (a == "--client-corr") client_corr = next();
    else return usage();
  }
  if (port == 0) return usage();

  try {
    if (do_ping) {
      serve::Client cl(host, port);
      if (!cl.ping()) {
        std::fprintf(stderr, "qhip_client: ping failed\n");
        return 1;
      }
      std::printf("pong\n");
      return 0;
    }
    if (do_metrics) {
      serve::Client cl(host, port);
      std::fputs(cl.metrics().c_str(), stdout);
      return 0;
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "qhip_client: %s\n", e.what());
    return 1;
  }

  std::vector<engine::RequestKind> kinds;
  for (const auto& tok : split(kinds_arg, ",")) {
    if (tok == "circuit") kinds.push_back(engine::RequestKind::kCircuit);
    else if (tok == "expectation") kinds.push_back(engine::RequestKind::kExpectation);
    else if (tok == "trajectory") kinds.push_back(engine::RequestKind::kTrajectory);
    else return usage();
  }
  if (kinds.empty()) return usage();

  const Circuit circuit = make_circuit(qubits, depth);
  auto make_request = [&](std::size_t i) {
    engine::SimRequest req;
    req.circuit = circuit;
    req.backend = backend;
    req.seed = seed_base + i;  // distinct seeds: exercises misses, not memoization
    switch (kinds[i % kinds.size()]) {
      case engine::RequestKind::kCircuit:
        req.kind = engine::RequestKind::kCircuit;
        req.num_samples = 16;
        req.amplitude_indices = {0, 1};
        break;
      case engine::RequestKind::kExpectation:
        req.kind = engine::RequestKind::kExpectation;
        req.observable.strings.push_back(obs::parse_pauli_string("Z0 Z1"));
        req.observable.strings.push_back(obs::parse_pauli_string("0.5 * X0"));
        break;
      case engine::RequestKind::kTrajectory:
        req.kind = engine::RequestKind::kTrajectory;
        req.backend = "cpu";  // noise runs on host state vectors only
        req.precision = Precision::kDouble;
        req.noise = noise::NoiseModel{noise::depolarizing(0.01)};
        req.num_trajectories = 4;
        break;
    }
    return req;
  };

  Totals totals;
  std::atomic<std::size_t> next_req{0};
  std::atomic<bool> stop_sending{false};
  std::atomic<bool> killed{false};

  auto soak_one = [&](unsigned /*thread_idx*/) {
    try {
      serve::Client cl(host, port);
      while (!stop_sending.load()) {
        const std::size_t i = next_req.fetch_add(1);
        if (i >= total) break;
        // --client-corr tags each request with "<prefix>-<i>", which the
        // server stamps into its "serve" span so client- and server-side
        // traces join on it.
        const std::string line = serve::encode_request(
            make_request(i), "r" + std::to_string(i),
            client_corr.empty() ? std::string()
                                : client_corr + "-" + std::to_string(i));
        try {
          cl.send_line(line);
        } catch (const Error&) {
          ++totals.unsent;
          break;
        }
        ++totals.sent;
        std::string resp;
        bool got = false;
        try {
          got = cl.recv_line(&resp);
        } catch (const Error&) {
          got = false;
        }
        if (!got) break;  // EOF: `dropped` (sent - answered) catches it
        try {
          const engine::SimResult res = serve::decode_result(resp);
          ++totals.answered;
          if (res.ok) ++totals.ok;
          else ++totals.structured_errors;
        } catch (const Error&) {
          ++totals.protocol_errors;
          continue;
        }
        const std::size_t done = totals.answered.load();
        if (kill_pid > 0 && kill_after > 0 && done >= kill_after &&
            !killed.exchange(true)) {
          // Deterministic mid-soak drain: stop feeding first, then signal.
          stop_sending.store(true);
          ::kill(static_cast<pid_t>(kill_pid), SIGTERM);
        }
      }
      cl.finish_writes();
      // Drain any responses still owed to this connection (requests the
      // server admitted before the drain/kill).
      std::string resp;
      while (true) {
        bool got = false;
        try {
          got = cl.recv_line(&resp);
        } catch (const Error&) {
          break;
        }
        if (!got) break;
        try {
          const engine::SimResult res = serve::decode_result(resp);
          ++totals.answered;
          if (res.ok) ++totals.ok;
          else ++totals.structured_errors;
        } catch (const Error&) {
          ++totals.protocol_errors;
        }
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "qhip_client: connection failed: %s\n", e.what());
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (unsigned cix = 0; cix < connections; ++cix) {
    threads.emplace_back(soak_one, cix);
  }
  for (auto& th : threads) th.join();

  const std::size_t dropped =
      totals.sent.load() > totals.answered.load()
          ? totals.sent.load() - totals.answered.load()
          : 0;
  std::printf(
      "sent=%zu answered=%zu ok=%zu structured_errors=%zu dropped=%zu "
      "protocol_errors=%zu unsent=%zu\n",
      totals.sent.load(), totals.answered.load(), totals.ok.load(),
      totals.structured_errors.load(), dropped, totals.protocol_errors.load(),
      totals.unsent.load());
  return (dropped == 0 && totals.protocol_errors.load() == 0) ? 0 : 1;
}
