// qasm_tool — converts between the qsim text circuit format and
// OpenQASM 2.0 (both directions, auto-detected from the input's first
// non-comment token).
//
// Usage:
//   qasm_tool <input> [-o <output>]
//
// qsim format in  -> OpenQASM out
// OpenQASM in     -> qsim format out
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/io/circuit_io.h"
#include "src/io/qasm.h"

int main(int argc, char** argv) {
  std::string input, output;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (++i >= argc) {
        std::fprintf(stderr, "usage: qasm_tool <input> [-o <output>]\n");
        return 1;
      }
      output = argv[i];
    } else if (input.empty() && !arg.empty() && arg[0] != '-') {
      input = arg;
    } else {
      std::fprintf(stderr, "usage: qasm_tool <input> [-o <output>]\n");
      return 1;
    }
  }
  if (input.empty()) {
    std::fprintf(stderr, "usage: qasm_tool <input> [-o <output>]\n");
    return 1;
  }

  try {
    std::ifstream in(input);
    qhip::check(in.good(), "cannot open '" + input + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    // Detect: OpenQASM files start (after comments/blank lines) with
    // "OPENQASM"; qsim files start with the qubit count.
    bool is_qasm = false;
    {
      std::istringstream scan(text);
      std::string line;
      while (std::getline(scan, line)) {
        const auto body = qhip::trim(line);
        if (body.empty() || qhip::starts_with(body, "//") || body[0] == '#') {
          continue;
        }
        is_qasm = qhip::starts_with(body, "OPENQASM");
        break;
      }
    }

    std::string converted;
    if (is_qasm) {
      const qhip::Circuit c = qhip::read_qasm(text);
      converted = qhip::write_circuit_string(c);
    } else {
      const qhip::Circuit c = qhip::read_circuit_string(text);
      converted = qhip::write_qasm_string(c);
    }

    if (output.empty()) {
      std::cout << converted;
    } else {
      std::ofstream out(output);
      qhip::check(out.good(), "cannot open '" + output + "' for writing");
      out << converted;
    }
    std::fprintf(stderr, "qasm_tool: converted %s (%s -> %s)\n", input.c_str(),
                 is_qasm ? "OpenQASM" : "qsim", is_qasm ? "qsim" : "OpenQASM");
    return 0;
  } catch (const qhip::Error& e) {
    std::fprintf(stderr, "qasm_tool: %s\n", e.what());
    return 1;
  }
}
