file(REMOVE_RECURSE
  "CMakeFiles/test_hipify.dir/hipify/test_hipify.cpp.o"
  "CMakeFiles/test_hipify.dir/hipify/test_hipify.cpp.o.d"
  "test_hipify"
  "test_hipify.pdb"
  "test_hipify[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hipify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
