# Empty dependencies file for test_hipify.
# This may be replaced when dependencies are built.
