file(REMOVE_RECURSE
  "CMakeFiles/test_simulator_dist.dir/dist/test_simulator_dist.cpp.o"
  "CMakeFiles/test_simulator_dist.dir/dist/test_simulator_dist.cpp.o.d"
  "test_simulator_dist"
  "test_simulator_dist.pdb"
  "test_simulator_dist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulator_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
