# Empty compiler generated dependencies file for test_simulator_dist.
# This may be replaced when dependencies are built.
