# Empty dependencies file for test_vgpu_exec.
# This may be replaced when dependencies are built.
