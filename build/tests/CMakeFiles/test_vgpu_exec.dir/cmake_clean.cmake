file(REMOVE_RECURSE
  "CMakeFiles/test_vgpu_exec.dir/vgpu/test_exec.cpp.o"
  "CMakeFiles/test_vgpu_exec.dir/vgpu/test_exec.cpp.o.d"
  "test_vgpu_exec"
  "test_vgpu_exec.pdb"
  "test_vgpu_exec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vgpu_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
