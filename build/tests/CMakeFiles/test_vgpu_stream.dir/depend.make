# Empty dependencies file for test_vgpu_stream.
# This may be replaced when dependencies are built.
