file(REMOVE_RECURSE
  "CMakeFiles/test_vgpu_stream.dir/vgpu/test_stream.cpp.o"
  "CMakeFiles/test_vgpu_stream.dir/vgpu/test_stream.cpp.o.d"
  "test_vgpu_stream"
  "test_vgpu_stream.pdb"
  "test_vgpu_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vgpu_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
