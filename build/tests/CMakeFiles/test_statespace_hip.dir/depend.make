# Empty dependencies file for test_statespace_hip.
# This may be replaced when dependencies are built.
