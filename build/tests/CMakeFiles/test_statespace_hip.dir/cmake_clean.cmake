file(REMOVE_RECURSE
  "CMakeFiles/test_statespace_hip.dir/hipsim/test_statespace_hip.cpp.o"
  "CMakeFiles/test_statespace_hip.dir/hipsim/test_statespace_hip.cpp.o.d"
  "test_statespace_hip"
  "test_statespace_hip.pdb"
  "test_statespace_hip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_statespace_hip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
