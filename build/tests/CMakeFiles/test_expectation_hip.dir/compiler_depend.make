# Empty compiler generated dependencies file for test_expectation_hip.
# This may be replaced when dependencies are built.
