file(REMOVE_RECURSE
  "CMakeFiles/test_expectation_hip.dir/hipsim/test_expectation_hip.cpp.o"
  "CMakeFiles/test_expectation_hip.dir/hipsim/test_expectation_hip.cpp.o.d"
  "test_expectation_hip"
  "test_expectation_hip.pdb"
  "test_expectation_hip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expectation_hip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
