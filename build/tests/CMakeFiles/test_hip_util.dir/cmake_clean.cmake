file(REMOVE_RECURSE
  "CMakeFiles/test_hip_util.dir/hipsim/test_hip_util.cpp.o"
  "CMakeFiles/test_hip_util.dir/hipsim/test_hip_util.cpp.o.d"
  "test_hip_util"
  "test_hip_util.pdb"
  "test_hip_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hip_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
