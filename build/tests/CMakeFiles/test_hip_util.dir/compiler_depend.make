# Empty compiler generated dependencies file for test_hip_util.
# This may be replaced when dependencies are built.
