file(REMOVE_RECURSE
  "CMakeFiles/test_simulator_cpu.dir/simulator/test_simulator_cpu.cpp.o"
  "CMakeFiles/test_simulator_cpu.dir/simulator/test_simulator_cpu.cpp.o.d"
  "test_simulator_cpu"
  "test_simulator_cpu.pdb"
  "test_simulator_cpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulator_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
