# Empty compiler generated dependencies file for test_simulator_cpu.
# This may be replaced when dependencies are built.
