file(REMOVE_RECURSE
  "CMakeFiles/test_hipify_golden.dir/hipify/test_hipify_golden.cpp.o"
  "CMakeFiles/test_hipify_golden.dir/hipify/test_hipify_golden.cpp.o.d"
  "test_hipify_golden"
  "test_hipify_golden.pdb"
  "test_hipify_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hipify_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
