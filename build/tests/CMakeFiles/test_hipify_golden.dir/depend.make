# Empty dependencies file for test_hipify_golden.
# This may be replaced when dependencies are built.
