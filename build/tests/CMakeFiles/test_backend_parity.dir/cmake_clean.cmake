file(REMOVE_RECURSE
  "CMakeFiles/test_backend_parity.dir/integration/test_backend_parity.cpp.o"
  "CMakeFiles/test_backend_parity.dir/integration/test_backend_parity.cpp.o.d"
  "test_backend_parity"
  "test_backend_parity.pdb"
  "test_backend_parity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
