# Empty dependencies file for test_simulator_avx.
# This may be replaced when dependencies are built.
