file(REMOVE_RECURSE
  "CMakeFiles/test_simulator_avx.dir/simulator/test_simulator_avx.cpp.o"
  "CMakeFiles/test_simulator_avx.dir/simulator/test_simulator_avx.cpp.o.d"
  "test_simulator_avx"
  "test_simulator_avx.pdb"
  "test_simulator_avx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulator_avx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
