# Empty dependencies file for test_noise_channels.
# This may be replaced when dependencies are built.
