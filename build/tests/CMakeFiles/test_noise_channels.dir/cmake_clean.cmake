file(REMOVE_RECURSE
  "CMakeFiles/test_noise_channels.dir/noise/test_channels.cpp.o"
  "CMakeFiles/test_noise_channels.dir/noise/test_channels.cpp.o.d"
  "test_noise_channels"
  "test_noise_channels.pdb"
  "test_noise_channels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
