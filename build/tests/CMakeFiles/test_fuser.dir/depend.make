# Empty dependencies file for test_fuser.
# This may be replaced when dependencies are built.
