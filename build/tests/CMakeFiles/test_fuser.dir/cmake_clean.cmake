file(REMOVE_RECURSE
  "CMakeFiles/test_fuser.dir/fusion/test_fuser.cpp.o"
  "CMakeFiles/test_fuser.dir/fusion/test_fuser.cpp.o.d"
  "test_fuser"
  "test_fuser.pdb"
  "test_fuser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
