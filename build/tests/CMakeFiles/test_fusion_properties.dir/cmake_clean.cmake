file(REMOVE_RECURSE
  "CMakeFiles/test_fusion_properties.dir/integration/test_fusion_properties.cpp.o"
  "CMakeFiles/test_fusion_properties.dir/integration/test_fusion_properties.cpp.o.d"
  "test_fusion_properties"
  "test_fusion_properties.pdb"
  "test_fusion_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fusion_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
