# Empty dependencies file for test_fusion_properties.
# This may be replaced when dependencies are built.
