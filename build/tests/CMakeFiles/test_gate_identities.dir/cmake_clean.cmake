file(REMOVE_RECURSE
  "CMakeFiles/test_gate_identities.dir/integration/test_gate_identities.cpp.o"
  "CMakeFiles/test_gate_identities.dir/integration/test_gate_identities.cpp.o.d"
  "test_gate_identities"
  "test_gate_identities.pdb"
  "test_gate_identities[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gate_identities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
