# Empty dependencies file for test_gate_identities.
# This may be replaced when dependencies are built.
