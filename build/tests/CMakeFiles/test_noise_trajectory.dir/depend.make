# Empty dependencies file for test_noise_trajectory.
# This may be replaced when dependencies are built.
