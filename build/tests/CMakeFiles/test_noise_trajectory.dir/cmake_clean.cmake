file(REMOVE_RECURSE
  "CMakeFiles/test_noise_trajectory.dir/noise/test_trajectory.cpp.o"
  "CMakeFiles/test_noise_trajectory.dir/noise/test_trajectory.cpp.o.d"
  "test_noise_trajectory"
  "test_noise_trajectory.pdb"
  "test_noise_trajectory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
