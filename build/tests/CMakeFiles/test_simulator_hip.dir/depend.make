# Empty dependencies file for test_simulator_hip.
# This may be replaced when dependencies are built.
