file(REMOVE_RECURSE
  "CMakeFiles/test_simulator_hip.dir/hipsim/test_simulator_hip.cpp.o"
  "CMakeFiles/test_simulator_hip.dir/hipsim/test_simulator_hip.cpp.o.d"
  "test_simulator_hip"
  "test_simulator_hip.pdb"
  "test_simulator_hip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulator_hip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
