# Empty compiler generated dependencies file for test_vgpu_device.
# This may be replaced when dependencies are built.
