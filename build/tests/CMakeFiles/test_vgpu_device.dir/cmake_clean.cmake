file(REMOVE_RECURSE
  "CMakeFiles/test_vgpu_device.dir/vgpu/test_device.cpp.o"
  "CMakeFiles/test_vgpu_device.dir/vgpu/test_device.cpp.o.d"
  "test_vgpu_device"
  "test_vgpu_device.pdb"
  "test_vgpu_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vgpu_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
