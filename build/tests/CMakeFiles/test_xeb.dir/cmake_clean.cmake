file(REMOVE_RECURSE
  "CMakeFiles/test_xeb.dir/rqc/test_xeb.cpp.o"
  "CMakeFiles/test_xeb.dir/rqc/test_xeb.cpp.o.d"
  "test_xeb"
  "test_xeb.pdb"
  "test_xeb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xeb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
