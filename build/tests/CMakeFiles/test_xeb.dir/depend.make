# Empty dependencies file for test_xeb.
# This may be replaced when dependencies are built.
