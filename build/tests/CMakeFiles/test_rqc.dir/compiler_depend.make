# Empty compiler generated dependencies file for test_rqc.
# This may be replaced when dependencies are built.
