file(REMOVE_RECURSE
  "CMakeFiles/test_rqc.dir/rqc/test_rqc.cpp.o"
  "CMakeFiles/test_rqc.dir/rqc/test_rqc.cpp.o.d"
  "test_rqc"
  "test_rqc.pdb"
  "test_rqc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rqc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
