# Empty dependencies file for test_circuit_io.
# This may be replaced when dependencies are built.
