file(REMOVE_RECURSE
  "CMakeFiles/test_circuit_io.dir/io/test_circuit_io.cpp.o"
  "CMakeFiles/test_circuit_io.dir/io/test_circuit_io.cpp.o.d"
  "test_circuit_io"
  "test_circuit_io.pdb"
  "test_circuit_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circuit_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
