# Empty dependencies file for test_multi_gcd.
# This may be replaced when dependencies are built.
