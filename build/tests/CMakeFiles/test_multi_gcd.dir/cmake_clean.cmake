file(REMOVE_RECURSE
  "CMakeFiles/test_multi_gcd.dir/hipsim/test_multi_gcd.cpp.o"
  "CMakeFiles/test_multi_gcd.dir/hipsim/test_multi_gcd.cpp.o.d"
  "test_multi_gcd"
  "test_multi_gcd.pdb"
  "test_multi_gcd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_gcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
