
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_stream_modes.cpp" "tests/CMakeFiles/test_stream_modes.dir/integration/test_stream_modes.cpp.o" "gcc" "tests/CMakeFiles/test_stream_modes.dir/integration/test_stream_modes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/qhip_base.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/qhip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/qhip_io.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/qhip_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/qhip_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/qhip_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/rqc/CMakeFiles/qhip_rqc.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/qhip_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/hipify/CMakeFiles/qhip_hipify.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/qhip_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/qhip_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/qhip_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/transpile/CMakeFiles/qhip_transpile.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
