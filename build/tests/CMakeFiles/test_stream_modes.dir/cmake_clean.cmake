file(REMOVE_RECURSE
  "CMakeFiles/test_stream_modes.dir/integration/test_stream_modes.cpp.o"
  "CMakeFiles/test_stream_modes.dir/integration/test_stream_modes.cpp.o.d"
  "test_stream_modes"
  "test_stream_modes.pdb"
  "test_stream_modes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
