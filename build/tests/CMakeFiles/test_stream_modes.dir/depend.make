# Empty dependencies file for test_stream_modes.
# This may be replaced when dependencies are built.
