# Empty dependencies file for qsim_qtrajectory_hip.
# This may be replaced when dependencies are built.
