file(REMOVE_RECURSE
  "CMakeFiles/qsim_qtrajectory_hip.dir/qsim_qtrajectory_hip.cpp.o"
  "CMakeFiles/qsim_qtrajectory_hip.dir/qsim_qtrajectory_hip.cpp.o.d"
  "qsim_qtrajectory_hip"
  "qsim_qtrajectory_hip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsim_qtrajectory_hip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
