file(REMOVE_RECURSE
  "CMakeFiles/qsim_amplitudes_hip.dir/qsim_amplitudes_hip.cpp.o"
  "CMakeFiles/qsim_amplitudes_hip.dir/qsim_amplitudes_hip.cpp.o.d"
  "qsim_amplitudes_hip"
  "qsim_amplitudes_hip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsim_amplitudes_hip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
