# Empty dependencies file for qsim_amplitudes_hip.
# This may be replaced when dependencies are built.
