file(REMOVE_RECURSE
  "CMakeFiles/qsim_base_hip.dir/qsim_base_hip.cpp.o"
  "CMakeFiles/qsim_base_hip.dir/qsim_base_hip.cpp.o.d"
  "qsim_base_hip"
  "qsim_base_hip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsim_base_hip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
