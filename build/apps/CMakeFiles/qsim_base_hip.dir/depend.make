# Empty dependencies file for qsim_base_hip.
# This may be replaced when dependencies are built.
