# Empty dependencies file for qsim_von_neumann_hip.
# This may be replaced when dependencies are built.
