# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for qsim_von_neumann_hip.
