file(REMOVE_RECURSE
  "CMakeFiles/qsim_von_neumann_hip.dir/qsim_von_neumann_hip.cpp.o"
  "CMakeFiles/qsim_von_neumann_hip.dir/qsim_von_neumann_hip.cpp.o.d"
  "qsim_von_neumann_hip"
  "qsim_von_neumann_hip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsim_von_neumann_hip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
