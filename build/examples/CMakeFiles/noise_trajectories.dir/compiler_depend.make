# Empty compiler generated dependencies file for noise_trajectories.
# This may be replaced when dependencies are built.
