file(REMOVE_RECURSE
  "CMakeFiles/noise_trajectories.dir/noise_trajectories.cpp.o"
  "CMakeFiles/noise_trajectories.dir/noise_trajectories.cpp.o.d"
  "noise_trajectories"
  "noise_trajectories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_trajectories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
