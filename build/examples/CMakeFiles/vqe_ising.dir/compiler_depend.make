# Empty compiler generated dependencies file for vqe_ising.
# This may be replaced when dependencies are built.
