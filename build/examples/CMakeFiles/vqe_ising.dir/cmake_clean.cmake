file(REMOVE_RECURSE
  "CMakeFiles/vqe_ising.dir/vqe_ising.cpp.o"
  "CMakeFiles/vqe_ising.dir/vqe_ising.cpp.o.d"
  "vqe_ising"
  "vqe_ising.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqe_ising.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
