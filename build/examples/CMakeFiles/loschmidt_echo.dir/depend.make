# Empty dependencies file for loschmidt_echo.
# This may be replaced when dependencies are built.
