file(REMOVE_RECURSE
  "CMakeFiles/loschmidt_echo.dir/loschmidt_echo.cpp.o"
  "CMakeFiles/loschmidt_echo.dir/loschmidt_echo.cpp.o.d"
  "loschmidt_echo"
  "loschmidt_echo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loschmidt_echo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
