# Empty dependencies file for qft_period.
# This may be replaced when dependencies are built.
