file(REMOVE_RECURSE
  "CMakeFiles/qft_period.dir/qft_period.cpp.o"
  "CMakeFiles/qft_period.dir/qft_period.cpp.o.d"
  "qft_period"
  "qft_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qft_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
