file(REMOVE_RECURSE
  "CMakeFiles/rqc_sampling.dir/rqc_sampling.cpp.o"
  "CMakeFiles/rqc_sampling.dir/rqc_sampling.cpp.o.d"
  "rqc_sampling"
  "rqc_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rqc_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
