# Empty compiler generated dependencies file for rqc_sampling.
# This may be replaced when dependencies are built.
