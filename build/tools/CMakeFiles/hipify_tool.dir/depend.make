# Empty dependencies file for hipify_tool.
# This may be replaced when dependencies are built.
