file(REMOVE_RECURSE
  "CMakeFiles/hipify_tool.dir/hipify_tool.cpp.o"
  "CMakeFiles/hipify_tool.dir/hipify_tool.cpp.o.d"
  "hipify_tool"
  "hipify_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipify_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
