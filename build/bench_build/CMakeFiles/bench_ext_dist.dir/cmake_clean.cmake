file(REMOVE_RECURSE
  "../bench/bench_ext_dist"
  "../bench/bench_ext_dist.pdb"
  "CMakeFiles/bench_ext_dist.dir/bench_ext_dist.cpp.o"
  "CMakeFiles/bench_ext_dist.dir/bench_ext_dist.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
