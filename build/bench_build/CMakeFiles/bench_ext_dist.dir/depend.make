# Empty dependencies file for bench_ext_dist.
# This may be replaced when dependencies are built.
