file(REMOVE_RECURSE
  "../bench/bench_micro_gates"
  "../bench/bench_micro_gates.pdb"
  "CMakeFiles/bench_micro_gates.dir/bench_micro_gates.cpp.o"
  "CMakeFiles/bench_micro_gates.dir/bench_micro_gates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
