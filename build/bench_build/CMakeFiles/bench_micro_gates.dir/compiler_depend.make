# Empty compiler generated dependencies file for bench_micro_gates.
# This may be replaced when dependencies are built.
