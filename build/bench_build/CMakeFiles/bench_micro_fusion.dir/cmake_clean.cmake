file(REMOVE_RECURSE
  "../bench/bench_micro_fusion"
  "../bench/bench_micro_fusion.pdb"
  "CMakeFiles/bench_micro_fusion.dir/bench_micro_fusion.cpp.o"
  "CMakeFiles/bench_micro_fusion.dir/bench_micro_fusion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
