file(REMOVE_RECURSE
  "../bench/bench_trace_fig1_6"
  "../bench/bench_trace_fig1_6.pdb"
  "CMakeFiles/bench_trace_fig1_6.dir/bench_trace_fig1_6.cpp.o"
  "CMakeFiles/bench_trace_fig1_6.dir/bench_trace_fig1_6.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_fig1_6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
