# Empty dependencies file for bench_trace_fig1_6.
# This may be replaced when dependencies are built.
