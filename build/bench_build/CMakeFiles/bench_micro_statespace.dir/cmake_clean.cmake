file(REMOVE_RECURSE
  "../bench/bench_micro_statespace"
  "../bench/bench_micro_statespace.pdb"
  "CMakeFiles/bench_micro_statespace.dir/bench_micro_statespace.cpp.o"
  "CMakeFiles/bench_micro_statespace.dir/bench_micro_statespace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_statespace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
