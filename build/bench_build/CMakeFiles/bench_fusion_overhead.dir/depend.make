# Empty dependencies file for bench_fusion_overhead.
# This may be replaced when dependencies are built.
