file(REMOVE_RECURSE
  "../bench/bench_fusion_overhead"
  "../bench/bench_fusion_overhead.pdb"
  "CMakeFiles/bench_fusion_overhead.dir/bench_fusion_overhead.cpp.o"
  "CMakeFiles/bench_fusion_overhead.dir/bench_fusion_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fusion_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
