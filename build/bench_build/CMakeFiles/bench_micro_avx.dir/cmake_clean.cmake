file(REMOVE_RECURSE
  "../bench/bench_micro_avx"
  "../bench/bench_micro_avx.pdb"
  "CMakeFiles/bench_micro_avx.dir/bench_micro_avx.cpp.o"
  "CMakeFiles/bench_micro_avx.dir/bench_micro_avx.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_avx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
