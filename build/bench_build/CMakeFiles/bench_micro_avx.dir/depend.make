# Empty dependencies file for bench_micro_avx.
# This may be replaced when dependencies are built.
