file(REMOVE_RECURSE
  "../bench/bench_micro_vgpu"
  "../bench/bench_micro_vgpu.pdb"
  "CMakeFiles/bench_micro_vgpu.dir/bench_micro_vgpu.cpp.o"
  "CMakeFiles/bench_micro_vgpu.dir/bench_micro_vgpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
