file(REMOVE_RECURSE
  "../bench/bench_ext_multigcd"
  "../bench/bench_ext_multigcd.pdb"
  "CMakeFiles/bench_ext_multigcd.dir/bench_ext_multigcd.cpp.o"
  "CMakeFiles/bench_ext_multigcd.dir/bench_ext_multigcd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multigcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
