# Empty dependencies file for bench_ext_multigcd.
# This may be replaced when dependencies are built.
