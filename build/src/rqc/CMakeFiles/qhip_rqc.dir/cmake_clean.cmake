file(REMOVE_RECURSE
  "CMakeFiles/qhip_rqc.dir/rqc.cpp.o"
  "CMakeFiles/qhip_rqc.dir/rqc.cpp.o.d"
  "CMakeFiles/qhip_rqc.dir/xeb.cpp.o"
  "CMakeFiles/qhip_rqc.dir/xeb.cpp.o.d"
  "libqhip_rqc.a"
  "libqhip_rqc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qhip_rqc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
