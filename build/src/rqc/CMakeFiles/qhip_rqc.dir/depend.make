# Empty dependencies file for qhip_rqc.
# This may be replaced when dependencies are built.
