file(REMOVE_RECURSE
  "libqhip_rqc.a"
)
