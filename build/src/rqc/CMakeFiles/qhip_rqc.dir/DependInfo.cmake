
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rqc/rqc.cpp" "src/rqc/CMakeFiles/qhip_rqc.dir/rqc.cpp.o" "gcc" "src/rqc/CMakeFiles/qhip_rqc.dir/rqc.cpp.o.d"
  "/root/repo/src/rqc/xeb.cpp" "src/rqc/CMakeFiles/qhip_rqc.dir/xeb.cpp.o" "gcc" "src/rqc/CMakeFiles/qhip_rqc.dir/xeb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/qhip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/qhip_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
