file(REMOVE_RECURSE
  "libqhip_perfmodel.a"
)
