# Empty compiler generated dependencies file for qhip_perfmodel.
# This may be replaced when dependencies are built.
