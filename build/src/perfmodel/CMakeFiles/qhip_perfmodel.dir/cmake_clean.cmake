file(REMOVE_RECURSE
  "CMakeFiles/qhip_perfmodel.dir/model.cpp.o"
  "CMakeFiles/qhip_perfmodel.dir/model.cpp.o.d"
  "CMakeFiles/qhip_perfmodel.dir/workload.cpp.o"
  "CMakeFiles/qhip_perfmodel.dir/workload.cpp.o.d"
  "libqhip_perfmodel.a"
  "libqhip_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qhip_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
