file(REMOVE_RECURSE
  "CMakeFiles/qhip_io.dir/circuit_io.cpp.o"
  "CMakeFiles/qhip_io.dir/circuit_io.cpp.o.d"
  "CMakeFiles/qhip_io.dir/qasm.cpp.o"
  "CMakeFiles/qhip_io.dir/qasm.cpp.o.d"
  "libqhip_io.a"
  "libqhip_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qhip_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
