# Empty dependencies file for qhip_io.
# This may be replaced when dependencies are built.
