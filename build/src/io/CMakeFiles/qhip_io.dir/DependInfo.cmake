
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/circuit_io.cpp" "src/io/CMakeFiles/qhip_io.dir/circuit_io.cpp.o" "gcc" "src/io/CMakeFiles/qhip_io.dir/circuit_io.cpp.o.d"
  "/root/repo/src/io/qasm.cpp" "src/io/CMakeFiles/qhip_io.dir/qasm.cpp.o" "gcc" "src/io/CMakeFiles/qhip_io.dir/qasm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/qhip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/qhip_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
