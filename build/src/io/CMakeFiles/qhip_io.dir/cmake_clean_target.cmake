file(REMOVE_RECURSE
  "libqhip_io.a"
)
