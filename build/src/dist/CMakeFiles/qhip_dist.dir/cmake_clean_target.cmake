file(REMOVE_RECURSE
  "libqhip_dist.a"
)
