file(REMOVE_RECURSE
  "CMakeFiles/qhip_dist.dir/comm.cpp.o"
  "CMakeFiles/qhip_dist.dir/comm.cpp.o.d"
  "libqhip_dist.a"
  "libqhip_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qhip_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
