# Empty dependencies file for qhip_dist.
# This may be replaced when dependencies are built.
