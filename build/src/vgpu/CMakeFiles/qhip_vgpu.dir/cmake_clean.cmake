file(REMOVE_RECURSE
  "CMakeFiles/qhip_vgpu.dir/device.cpp.o"
  "CMakeFiles/qhip_vgpu.dir/device.cpp.o.d"
  "CMakeFiles/qhip_vgpu.dir/device_props.cpp.o"
  "CMakeFiles/qhip_vgpu.dir/device_props.cpp.o.d"
  "CMakeFiles/qhip_vgpu.dir/fiber_exec.cpp.o"
  "CMakeFiles/qhip_vgpu.dir/fiber_exec.cpp.o.d"
  "CMakeFiles/qhip_vgpu.dir/stream_queue.cpp.o"
  "CMakeFiles/qhip_vgpu.dir/stream_queue.cpp.o.d"
  "libqhip_vgpu.a"
  "libqhip_vgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qhip_vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
