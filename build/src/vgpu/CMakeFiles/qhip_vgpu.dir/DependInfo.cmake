
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vgpu/device.cpp" "src/vgpu/CMakeFiles/qhip_vgpu.dir/device.cpp.o" "gcc" "src/vgpu/CMakeFiles/qhip_vgpu.dir/device.cpp.o.d"
  "/root/repo/src/vgpu/device_props.cpp" "src/vgpu/CMakeFiles/qhip_vgpu.dir/device_props.cpp.o" "gcc" "src/vgpu/CMakeFiles/qhip_vgpu.dir/device_props.cpp.o.d"
  "/root/repo/src/vgpu/fiber_exec.cpp" "src/vgpu/CMakeFiles/qhip_vgpu.dir/fiber_exec.cpp.o" "gcc" "src/vgpu/CMakeFiles/qhip_vgpu.dir/fiber_exec.cpp.o.d"
  "/root/repo/src/vgpu/stream_queue.cpp" "src/vgpu/CMakeFiles/qhip_vgpu.dir/stream_queue.cpp.o" "gcc" "src/vgpu/CMakeFiles/qhip_vgpu.dir/stream_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/qhip_base.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/qhip_prof.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
