# Empty compiler generated dependencies file for qhip_vgpu.
# This may be replaced when dependencies are built.
