file(REMOVE_RECURSE
  "libqhip_vgpu.a"
)
