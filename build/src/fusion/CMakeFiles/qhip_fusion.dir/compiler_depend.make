# Empty compiler generated dependencies file for qhip_fusion.
# This may be replaced when dependencies are built.
