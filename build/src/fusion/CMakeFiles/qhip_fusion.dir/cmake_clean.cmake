file(REMOVE_RECURSE
  "CMakeFiles/qhip_fusion.dir/fuser.cpp.o"
  "CMakeFiles/qhip_fusion.dir/fuser.cpp.o.d"
  "libqhip_fusion.a"
  "libqhip_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qhip_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
