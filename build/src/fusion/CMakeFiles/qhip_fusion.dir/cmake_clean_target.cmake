file(REMOVE_RECURSE
  "libqhip_fusion.a"
)
