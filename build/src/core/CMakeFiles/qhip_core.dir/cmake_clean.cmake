file(REMOVE_RECURSE
  "CMakeFiles/qhip_core.dir/circuit.cpp.o"
  "CMakeFiles/qhip_core.dir/circuit.cpp.o.d"
  "CMakeFiles/qhip_core.dir/gate.cpp.o"
  "CMakeFiles/qhip_core.dir/gate.cpp.o.d"
  "CMakeFiles/qhip_core.dir/gates.cpp.o"
  "CMakeFiles/qhip_core.dir/gates.cpp.o.d"
  "CMakeFiles/qhip_core.dir/matrix.cpp.o"
  "CMakeFiles/qhip_core.dir/matrix.cpp.o.d"
  "libqhip_core.a"
  "libqhip_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qhip_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
