file(REMOVE_RECURSE
  "libqhip_core.a"
)
