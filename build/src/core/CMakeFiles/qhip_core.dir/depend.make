# Empty dependencies file for qhip_core.
# This may be replaced when dependencies are built.
