file(REMOVE_RECURSE
  "CMakeFiles/qhip_obs.dir/observable.cpp.o"
  "CMakeFiles/qhip_obs.dir/observable.cpp.o.d"
  "libqhip_obs.a"
  "libqhip_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qhip_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
