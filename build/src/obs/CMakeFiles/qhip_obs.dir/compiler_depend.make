# Empty compiler generated dependencies file for qhip_obs.
# This may be replaced when dependencies are built.
