file(REMOVE_RECURSE
  "libqhip_obs.a"
)
