# Empty dependencies file for qhip_prof.
# This may be replaced when dependencies are built.
