file(REMOVE_RECURSE
  "libqhip_prof.a"
)
