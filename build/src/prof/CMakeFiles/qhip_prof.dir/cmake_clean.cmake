file(REMOVE_RECURSE
  "CMakeFiles/qhip_prof.dir/trace.cpp.o"
  "CMakeFiles/qhip_prof.dir/trace.cpp.o.d"
  "libqhip_prof.a"
  "libqhip_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qhip_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
