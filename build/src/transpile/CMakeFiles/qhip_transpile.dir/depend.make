# Empty dependencies file for qhip_transpile.
# This may be replaced when dependencies are built.
