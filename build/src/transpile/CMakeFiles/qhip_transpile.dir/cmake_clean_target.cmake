file(REMOVE_RECURSE
  "libqhip_transpile.a"
)
