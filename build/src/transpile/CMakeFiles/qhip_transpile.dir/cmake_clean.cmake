file(REMOVE_RECURSE
  "CMakeFiles/qhip_transpile.dir/optimizer.cpp.o"
  "CMakeFiles/qhip_transpile.dir/optimizer.cpp.o.d"
  "libqhip_transpile.a"
  "libqhip_transpile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qhip_transpile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
