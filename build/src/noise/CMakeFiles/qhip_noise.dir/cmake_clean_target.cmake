file(REMOVE_RECURSE
  "libqhip_noise.a"
)
