file(REMOVE_RECURSE
  "CMakeFiles/qhip_noise.dir/channels.cpp.o"
  "CMakeFiles/qhip_noise.dir/channels.cpp.o.d"
  "libqhip_noise.a"
  "libqhip_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qhip_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
