# Empty dependencies file for qhip_noise.
# This may be replaced when dependencies are built.
