# Empty compiler generated dependencies file for qhip_hipify.
# This may be replaced when dependencies are built.
