file(REMOVE_RECURSE
  "CMakeFiles/qhip_hipify.dir/hipify.cpp.o"
  "CMakeFiles/qhip_hipify.dir/hipify.cpp.o.d"
  "libqhip_hipify.a"
  "libqhip_hipify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qhip_hipify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
