file(REMOVE_RECURSE
  "libqhip_hipify.a"
)
