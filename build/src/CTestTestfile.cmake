# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("prof")
subdirs("io")
subdirs("core")
subdirs("statespace")
subdirs("obs")
subdirs("noise")
subdirs("dist")
subdirs("fusion")
subdirs("transpile")
subdirs("simulator")
subdirs("vgpu")
subdirs("hipsim")
subdirs("hipify")
subdirs("rqc")
subdirs("perfmodel")
