# Empty compiler generated dependencies file for qhip_base.
# This may be replaced when dependencies are built.
