file(REMOVE_RECURSE
  "CMakeFiles/qhip_base.dir/strings.cpp.o"
  "CMakeFiles/qhip_base.dir/strings.cpp.o.d"
  "CMakeFiles/qhip_base.dir/threadpool.cpp.o"
  "CMakeFiles/qhip_base.dir/threadpool.cpp.o.d"
  "libqhip_base.a"
  "libqhip_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qhip_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
