file(REMOVE_RECURSE
  "libqhip_base.a"
)
