#include "src/prof/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/base/error.h"
#include "src/base/timer.h"

namespace qhip {

namespace {

const char* kind_category(TraceKind k) {
  switch (k) {
    case TraceKind::kKernel: return "kernel";
    case TraceKind::kMemcpy: return "memcpy";
    case TraceKind::kHost: return "host";
    case TraceKind::kSpan: return "request";
  }
  return "unknown";
}

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

// One flow-chain vertex: "ph":"s"/"t"/"f" stamped inside the slice it binds
// to (same pid/tid, ts within the slice).
void append_flow_event(std::string& out, const char* ph, std::uint64_t id,
                       int tid, std::uint64_t ts, bool enclosing_binding) {
  out += "{\"name\":\"request\",\"cat\":\"flow\",\"ph\":\"";
  out += ph;
  out += "\",\"id\":";
  out += std::to_string(id);
  out += ",\"pid\":1,\"tid\":";
  out += std::to_string(tid);
  out += ",\"ts\":";
  out += std::to_string(ts);
  if (enclosing_binding) out += ",\"bp\":\"e\"";
  out += "}";
}

}  // namespace

void Tracer::record(std::string name, TraceKind kind, std::uint64_t ts_us,
                    std::uint64_t dur_us, int lane, std::uint64_t bytes,
                    std::uint64_t corr, std::string detail) {
  std::lock_guard lk(mu_);
  events_.push_back({std::move(name), kind, ts_us, dur_us, lane, bytes, corr,
                     std::move(detail)});
}

std::size_t Tracer::size() const {
  std::lock_guard lk(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard lk(mu_);
  return events_;
}

void Tracer::set_counter(const std::string& name, double value) {
  std::lock_guard lk(mu_);
  counters_[name] = value;
}

std::map<std::string, double> Tracer::counters() const {
  std::lock_guard lk(mu_);
  return counters_;
}

std::vector<TraceSummaryRow> Tracer::summary() const {
  std::map<std::string, TraceSummaryRow> agg;
  {
    std::lock_guard lk(mu_);
    for (const auto& e : events_) {
      auto& row = agg[e.name];
      row.name = e.name;
      ++row.count;
      row.total_us += e.dur_us;
      row.total_bytes += e.bytes;
    }
  }
  std::vector<TraceSummaryRow> rows;
  rows.reserve(agg.size());
  for (auto& [_, row] : agg) rows.push_back(std::move(row));
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.total_us > b.total_us; });
  return rows;
}

std::string Tracer::to_perfetto_json() const {
  return perfetto_trace_json(events(), counters(), Timer::now_micros());
}

std::string perfetto_trace_json(const std::vector<TraceEvent>& evs,
                                const std::map<std::string, double>& cnts,
                                std::uint64_t counter_ts_us,
                                const std::string& extra_json) {
  std::string out;
  out.reserve(evs.size() * 160 + cnts.size() * 96 + extra_json.size() + 64);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& e : evs) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"cat\":\"";
    out += kind_category(e.kind);
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(e.lane);
    out += ",\"ts\":";
    out += std::to_string(e.ts_us);
    out += ",\"dur\":";
    out += std::to_string(e.dur_us);
    out += ",\"args\":{\"bytes\":";
    out += std::to_string(e.bytes);
    if (e.corr != 0) {
      out += ",\"corr\":";
      out += std::to_string(e.corr);
    }
    if (!e.detail.empty()) {
      out += ",\"detail\":\"";
      append_escaped(out, e.detail);
      out += "\"";
    }
    out += "}}";
  }

  // Flow chains: for each correlation id with at least one span and one
  // device event, link the request span ("s") through its kernel/memcpy
  // events ("t" steps, final "f"). This is what lets Perfetto highlight a
  // request's kernels from its span and qhip_prof attribute device time.
  struct FlowGroup {
    const TraceEvent* anchor = nullptr;        // the request span
    std::vector<const TraceEvent*> device;     // kernels + memcpys, by ts
  };
  std::map<std::uint64_t, FlowGroup> flows;
  for (const auto& e : evs) {
    if (e.corr == 0) continue;
    FlowGroup& g = flows[e.corr];
    if (e.kind == TraceKind::kSpan) {
      // The enclosing request span is the longest span of the group (ties
      // broken toward the earliest start).
      if (g.anchor == nullptr || e.dur_us > g.anchor->dur_us ||
          (e.dur_us == g.anchor->dur_us && e.ts_us < g.anchor->ts_us)) {
        g.anchor = &e;
      }
    } else if (e.kind == TraceKind::kKernel || e.kind == TraceKind::kMemcpy) {
      g.device.push_back(&e);
    }
  }
  for (auto& [corr, g] : flows) {
    if (g.anchor == nullptr || g.device.empty()) continue;
    std::sort(g.device.begin(), g.device.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                return a->ts_us != b->ts_us ? a->ts_us < b->ts_us
                                            : a->dur_us > b->dur_us;
              });
    out += ",\n";
    append_flow_event(out, "s", corr, g.anchor->lane, g.anchor->ts_us, false);
    for (std::size_t i = 0; i + 1 < g.device.size(); ++i) {
      out += ",\n";
      append_flow_event(out, "t", corr, g.device[i]->lane, g.device[i]->ts_us,
                        false);
    }
    out += ",\n";
    append_flow_event(out, "f", corr, g.device.back()->lane,
                      g.device.back()->ts_us, true);
  }

  for (const auto& [name, value] : cnts) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, name);
    out += "\",\"cat\":\"metric\",\"ph\":\"C\",\"pid\":1,\"ts\":";
    out += std::to_string(counter_ts_us);
    out += ",\"args\":{\"value\":";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
    out += "}}";
  }
  out += "\n]";
  out += extra_json;
  out += "}\n";
  return out;
}

void Tracer::write_perfetto_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  check(f.good(), "Tracer: cannot open '" + path + "' for writing");
  const std::string json = to_perfetto_json();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  check(f.good(), "Tracer: write to '" + path + "' failed");
}

void Tracer::clear() {
  std::lock_guard lk(mu_);
  events_.clear();
  counters_.clear();
}

ScopedTrace::ScopedTrace(Tracer* tracer, std::string name, TraceKind kind, int lane,
                         std::uint64_t bytes, std::uint64_t corr,
                         std::string detail)
    : tracer_(tracer),
      name_(std::move(name)),
      kind_(kind),
      lane_(lane),
      bytes_(bytes),
      corr_(corr),
      detail_(std::move(detail)),
      start_us_(tracer ? Timer::now_micros() : 0) {}

ScopedTrace::~ScopedTrace() {
  if (!tracer_) return;
  const std::uint64_t end = Timer::now_micros();
  tracer_->record(std::move(name_), kind_, start_us_, end - start_us_, lane_,
                  bytes_, corr_, std::move(detail_));
}

}  // namespace qhip
