#include "src/prof/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "src/base/error.h"
#include "src/base/timer.h"

namespace qhip::prof {

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

// The Tracer-compatible front door: retains corr-tagged events in the
// recorder's bounded buffers and forwards everything to the optional
// downstream Tracer, so --trace keeps its full unbounded timeline.
class FlightRecorder::CaptureTracer : public Tracer {
 public:
  explicit CaptureTracer(FlightRecorder* rec) : rec_(rec) {}

  void record(std::string name, TraceKind kind, std::uint64_t ts_us,
              std::uint64_t dur_us, int lane, std::uint64_t bytes,
              std::uint64_t corr, std::string detail) override {
    if (Tracer* t = rec_->downstream_) {
      t->record(name, kind, ts_us, dur_us, lane, bytes, corr, detail);
    }
    if (corr == 0 || rec_->opt_.capacity == 0) return;
    rec_->capture({std::move(name), kind, ts_us, dur_us, lane, bytes, corr,
                   std::move(detail)});
  }

  void set_counter(const std::string& name, double value) override {
    if (Tracer* t = rec_->downstream_) t->set_counter(name, value);
  }

 private:
  FlightRecorder* rec_;
};

FlightRecorder::FlightRecorder(FlightRecorderOptions opt)
    : opt_(opt), sink_(std::make_unique<CaptureTracer>(this)) {
  ring_.reserve(opt_.capacity);
}

FlightRecorder::~FlightRecorder() = default;

Tracer& FlightRecorder::sink() { return *sink_; }

void FlightRecorder::set_downstream(Tracer* t) { downstream_ = t; }

void FlightRecorder::capture(TraceEvent ev) {
  std::lock_guard lk(mu_);
  const std::size_t bound = opt_.capacity * opt_.max_events_per_request;
  // Hot path: consecutive events of one in-flight request (a backend run's
  // device-event burst) skip both map lookups.
  if (ev.corr == cached_corr_ && cached_events_ != nullptr &&
      pending_events_ < bound) {
    if (cached_events_->size() >= opt_.max_events_per_request) {
      ++dropped_;
      return;
    }
    cached_events_->push_back(std::move(ev));
    ++pending_events_;
    return;
  }
  // Completed request still in the ring: append in place. This is the path
  // late events take — the serving layer records its "serve" span after the
  // engine has already published the request record.
  if (const auto it = index_.find(ev.corr); it != index_.end()) {
    auto& entry = ring_[it->second];
    if (entry.events.size() < opt_.max_events_per_request) {
      entry.events.push_back(std::move(ev));
    } else {
      ++dropped_;
    }
    return;
  }
  // In-flight request: park in the pending map, bounded both per request and
  // in total. When the total bound is hit, the smallest pending corr id is
  // evicted — correlation ids are issued monotonically, so that is the
  // longest-waiting (likely abandoned) request.
  const auto it = pending_.find(ev.corr);
  if (it != pending_.end() &&
      it->second.size() >= opt_.max_events_per_request) {
    ++dropped_;
    return;
  }
  if (pending_events_ >= bound) {
    auto oldest = pending_.begin();
    if (oldest->first == ev.corr) {
      ++dropped_;
      return;
    }
    if (oldest->first == cached_corr_) cached_events_ = nullptr;
    pending_events_ -= oldest->second.size();
    dropped_ += oldest->second.size();
    pending_.erase(oldest);
  }
  auto& events = pending_[ev.corr];
  cached_corr_ = ev.corr;
  cached_events_ = &events;  // map node pointers are stable until erase
  events.push_back(std::move(ev));
  ++pending_events_;
}

void FlightRecorder::record_request(RequestRecord rec) {
  std::lock_guard lk(mu_);
  ++total_;
  if (opt_.capacity == 0) return;

  std::size_t slot;
  if (ring_.size() < opt_.capacity) {
    slot = ring_.size();
    ring_.emplace_back();
  } else {
    slot = next_;
    next_ = (next_ + 1) % opt_.capacity;
    index_.erase(ring_[slot].rec.corr);  // evict the overwritten record
    ring_[slot].events.clear();
  }

  Entry& e = ring_[slot];
  e.rec = std::move(rec);
  if (const auto it = pending_.find(e.rec.corr); it != pending_.end()) {
    if (e.rec.corr == cached_corr_) cached_events_ = nullptr;
    pending_events_ -= it->second.size();
    for (auto& ev : it->second) {
      if (e.events.size() < opt_.max_events_per_request) {
        e.events.push_back(std::move(ev));
      } else {
        ++dropped_;
      }
    }
    pending_.erase(it);
  }
  index_[e.rec.corr] = slot;
}

namespace {

// Ring slots in arrival order: when the ring has wrapped, `next` points at
// the slot holding the oldest record.
std::vector<std::size_t> oldest_first(std::size_t size, std::size_t capacity,
                                      std::size_t next) {
  std::vector<std::size_t> slots;
  slots.reserve(size);
  if (size < capacity) {
    for (std::size_t i = 0; i < size; ++i) slots.push_back(i);
  } else {
    for (std::size_t k = 0; k < capacity; ++k) {
      slots.push_back((next + k) % capacity);
    }
  }
  return slots;
}

}  // namespace

std::vector<RequestRecord> FlightRecorder::recent(std::size_t n) const {
  std::lock_guard lk(mu_);
  const auto slots = oldest_first(ring_.size(), opt_.capacity, next_);
  std::vector<RequestRecord> out;
  const std::size_t want = n == 0 ? slots.size() : std::min(n, slots.size());
  out.reserve(want);
  for (auto it = slots.rbegin(); it != slots.rend() && out.size() < want; ++it) {
    out.push_back(ring_[*it].rec);
  }
  return out;
}

std::vector<TraceEvent> FlightRecorder::events() const {
  std::lock_guard lk(mu_);
  std::vector<TraceEvent> out;
  for (std::size_t slot : oldest_first(ring_.size(), opt_.capacity, next_)) {
    const auto& evs = ring_[slot].events;
    out.insert(out.end(), evs.begin(), evs.end());
  }
  return out;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard lk(mu_);
  return ring_.size();
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard lk(mu_);
  return total_;
}

std::uint64_t FlightRecorder::dropped_events() const {
  std::lock_guard lk(mu_);
  return dropped_;
}

std::string FlightRecorder::snapshot_json(const std::string& reason) const {
  std::vector<TraceEvent> evs = events();
  const std::vector<RequestRecord> recs = recent();
  std::uint64_t dropped;
  {
    std::lock_guard lk(mu_);
    dropped = dropped_;
  }

  std::string extra = ",\"flightRecorder\":{\"reason\":\"";
  append_json_escaped(extra, reason);
  extra += "\",\"dropped_events\":";
  extra += std::to_string(dropped);
  extra += ",\"records\":[";
  bool first = true;
  for (const auto& r : recs) {  // newest first, matching text_dump()
    if (!first) extra += ",";
    first = false;
    extra += "{\"corr\":";
    extra += std::to_string(r.corr);
    extra += ",\"kind\":\"";
    append_json_escaped(extra, r.kind);
    extra += "\",\"backend\":\"";
    append_json_escaped(extra, r.backend);
    extra += "\",\"planner\":\"";
    append_json_escaped(extra, r.planner);
    extra += "\",\"outcome\":\"";
    append_json_escaped(extra, r.outcome);
    extra += "\",\"ok\":";
    extra += r.ok ? "true" : "false";
    extra += ",\"cache_hit\":";
    extra += r.cache_hit ? "true" : "false";
    extra += ",\"attempts\":";
    extra += std::to_string(r.attempts);
    extra += ",\"bytes\":";
    extra += std::to_string(r.bytes);
    extra += ",\"submit_us\":";
    extra += std::to_string(r.submit_us);
    extra += ",\"queue_ms\":";
    append_double(extra, r.queue_ms);
    extra += ",\"fuse_ms\":";
    append_double(extra, r.fuse_ms);
    extra += ",\"execute_ms\":";
    append_double(extra, r.execute_ms);
    extra += ",\"sample_ms\":";
    append_double(extra, r.sample_ms);
    extra += ",\"total_ms\":";
    append_double(extra, r.total_ms);
    extra += "}";
  }
  extra += "]}";
  return perfetto_trace_json(evs, {}, Timer::now_micros(), extra);
}

std::string FlightRecorder::text_dump() const {
  const std::vector<RequestRecord> recs = recent();
  std::string out = "flight recorder: " + std::to_string(recs.size()) +
                    " retained";
  {
    std::lock_guard lk(mu_);
    out += " of " + std::to_string(total_) + " total";
    if (dropped_ > 0) {
      out += " (" + std::to_string(dropped_) + " events dropped)";
    }
  }
  out += "\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "%8s %-11s %-10s %-16s %3s %10s %9s %9s %9s %9s %10s\n",
                "corr", "kind", "backend", "outcome", "att", "total_ms",
                "queue_ms", "fuse_ms", "exec_ms", "sample_ms", "bytes");
  out += line;
  for (const auto& r : recs) {
    std::snprintf(line, sizeof(line),
                  "%8llu %-11s %-10s %-16s %3u %10.3f %9.3f %9.3f %9.3f %9.3f "
                  "%10llu",
                  static_cast<unsigned long long>(r.corr), r.kind.c_str(),
                  r.backend.c_str(), r.outcome.c_str(), r.attempts, r.total_ms,
                  r.queue_ms, r.fuse_ms, r.execute_ms, r.sample_ms,
                  static_cast<unsigned long long>(r.bytes));
    out += line;
    if (!r.planner.empty()) {
      out += "  planner=";
      out += r.planner;
    }
    out += "\n";
  }
  return out;
}

void FlightRecorder::write_snapshot(const std::string& path,
                                    const std::string& reason) const {
  std::ofstream f(path, std::ios::binary);
  check(f.good(), "FlightRecorder: cannot open '" + path + "' for writing");
  const std::string json = snapshot_json(reason);
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  check(f.good(), "FlightRecorder: write to '" + path + "' failed");
}

}  // namespace qhip::prof
