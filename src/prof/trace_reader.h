// Reader for the Chrome trace-event JSON that Tracer::to_perfetto_json()
// (and, shape-wise, rocprof) emits. This is the parsing half of the
// qhip_prof workflow: load a trace written by `qsim_base_hip -t`, rebuild
// the event list, counters, and request flow links, and aggregate them into
// the rocprof-style tables of Figure 6.
//
// The parser accepts the general trace-event format — an object with a
// "traceEvents" array or a bare array — and ignores fields and phases it
// does not model.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qhip::prof {

// One "ph":"X" complete event or "ph":"s"/"t"/"f" flow vertex.
struct ParsedEvent {
  std::string name;
  std::string cat;    // "kernel" | "memcpy" | "host" | "request" | "flow" ...
  std::string ph;     // "X", "s", "t", "f"
  int tid = 0;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint64_t bytes = 0;
  std::uint64_t corr = 0;  // args.corr for X events, flow id for s/t/f
  std::string detail;      // args.detail
};

// One completed-request record from a flight-recorder snapshot's
// "flightRecorder" member (src/prof/flight_recorder.h).
struct FlightRecord {
  std::uint64_t corr = 0;
  std::string kind;
  std::string backend;
  std::string planner;
  std::string outcome;
  bool ok = false;
  bool cache_hit = false;
  std::uint64_t attempts = 0;
  std::uint64_t bytes = 0;
  std::uint64_t submit_us = 0;
  double queue_ms = 0;
  double fuse_ms = 0;
  double execute_ms = 0;
  double sample_ms = 0;
  double total_ms = 0;
};

struct ParsedTrace {
  std::vector<ParsedEvent> events;  // "ph":"X" in file order
  std::vector<ParsedEvent> flows;   // "ph":"s"/"t"/"f" in file order
  std::map<std::string, double> counters;  // "ph":"C" name -> last value
  // Present only when the file is a flight-recorder snapshot
  // (FlightRecorder::snapshot_json). Records are newest-first.
  std::string snapshot_reason;
  std::uint64_t snapshot_dropped_events = 0;
  std::vector<FlightRecord> flight_records;
};

// Parses trace JSON text. Throws qhip::Error on malformed JSON or a missing
// traceEvents array.
ParsedTrace parse_trace_json(const std::string& json);

// Reads and parses `path`. Throws qhip::Error on I/O or parse failure.
ParsedTrace read_trace_file(const std::string& path);

}  // namespace qhip::prof
