// In-process tracer reproducing the paper's rocprof + Perfetto workflow.
//
// The paper (Figures 1 and 6) profiles the HIP backend with rocprof, which
// writes a JSON trace visualized in the Perfetto UI. This module records the
// same event classes — kernel executions (ApplyGateH_Kernel,
// ApplyGateL_Kernel, state-space kernels) and asynchronous memory copies —
// and serializes them in the Chrome trace-event format that Perfetto loads
// directly (https://ui.perfetto.dev).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace qhip {

enum class TraceKind { kKernel, kMemcpy, kHost };

struct TraceEvent {
  std::string name;      // e.g. "ApplyGateH_Kernel", "hipMemcpyAsync"
  TraceKind kind;
  std::uint64_t ts_us;   // start, microseconds
  std::uint64_t dur_us;  // duration, microseconds
  int lane;              // virtual "GPU queue" / thread id for the trace row
  std::uint64_t bytes;   // memcpy payload or kernel memory traffic (optional)
};

// Aggregate per event name: how Figure 6's "ApplyGateL_Kernel takes more time
// than ApplyGateH_Kernel" observation is quantified.
struct TraceSummaryRow {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t total_bytes = 0;
};

// Thread-safe event collector. One Tracer per run; pass nullptr to disable
// tracing (recording is skipped entirely in that case).
class Tracer {
 public:
  // Records a completed event.
  void record(std::string name, TraceKind kind, std::uint64_t ts_us,
              std::uint64_t dur_us, int lane = 0, std::uint64_t bytes = 0);

  // Number of recorded events.
  std::size_t size() const;

  std::vector<TraceEvent> events() const;

  // Per-name aggregation, sorted by descending total time.
  std::vector<TraceSummaryRow> summary() const;

  // Scalar counters (Chrome "ph":"C" events): last-write-wins per name.
  // The engine exports its serving metrics (cache hit rate, p50/p95 latency,
  // pooled bytes) through these so they land in the same trace JSON as the
  // kernel timeline.
  void set_counter(const std::string& name, double value);
  std::map<std::string, double> counters() const;

  // Serializes to the Chrome trace-event JSON array format understood by
  // Perfetto and chrome://tracing. Counter values are appended as "ph":"C"
  // events stamped at serialization time.
  std::string to_perfetto_json() const;

  // Writes to_perfetto_json() to `path`; throws qhip::Error on I/O failure.
  void write_perfetto_json(const std::string& path) const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<std::string, double> counters_;
};

// RAII helper that records a host-side span on destruction.
class ScopedTrace {
 public:
  ScopedTrace(Tracer* tracer, std::string name, TraceKind kind = TraceKind::kHost,
              int lane = 0, std::uint64_t bytes = 0);
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  Tracer* tracer_;
  std::string name_;
  TraceKind kind_;
  int lane_;
  std::uint64_t bytes_;
  std::uint64_t start_us_;
};

}  // namespace qhip
