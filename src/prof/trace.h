// In-process tracer reproducing the paper's rocprof + Perfetto workflow.
//
// The paper (Figures 1 and 6) profiles the HIP backend with rocprof, which
// writes a JSON trace visualized in the Perfetto UI. This module records the
// same event classes — kernel executions (ApplyGateH_Kernel,
// ApplyGateL_Kernel, state-space kernels) and asynchronous memory copies —
// and serializes them in the Chrome trace-event format that Perfetto loads
// directly (https://ui.perfetto.dev).
//
// Request-lifecycle spans (DESIGN.md §11): the serving layer additionally
// records kSpan events — admit/queue/fuse/execute/sample phases plus one
// enclosing "request" span per served request — tagged with a stable
// per-request correlation id. Kernel and memcpy events produced by that
// request's backend run carry the same id (threaded through Backend::run
// into vgpu::Device::launch), and to_perfetto_json() derives Chrome flow
// events ("ph":"s"/"t"/"f") linking each request span to its device events,
// so clicking a slow request in Perfetto highlights exactly the kernels it
// launched.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace qhip {

enum class TraceKind { kKernel, kMemcpy, kHost, kSpan };

struct TraceEvent {
  std::string name;      // e.g. "ApplyGateH_Kernel", "hipMemcpyAsync"
  TraceKind kind;
  std::uint64_t ts_us;   // start, microseconds
  std::uint64_t dur_us;  // duration, microseconds
  int lane;              // virtual "GPU queue" / thread id for the trace row
  std::uint64_t bytes;   // memcpy payload or kernel memory traffic (optional)
  std::uint64_t corr = 0;    // request correlation id; 0 = not request-bound
  std::string detail;        // free-form annotation ("cache-hit", "attempt 2")
};

// Aggregate per event name: how Figure 6's "ApplyGateL_Kernel takes more time
// than ApplyGateH_Kernel" observation is quantified.
struct TraceSummaryRow {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t total_bytes = 0;
};

// Trace row (Chrome "tid") hosting the spans of request `corr`. Device lanes
// are small stream ids, so request rows start at 100; spreading over a few
// rows keeps concurrently-served requests from overlapping on one track.
constexpr int span_lane(std::uint64_t corr) {
  return 100 + static_cast<int>(corr % 24);
}

// Serializes `events` + `counters` into the Chrome trace-event JSON object
// {"traceEvents":[...]}: one "ph":"X" object per event, per-correlation-id
// flow chains ("ph":"s"/"t"/"f" anchored on the longest span), and one
// "ph":"C" object per counter stamped at `counter_ts_us`. `extra_json`,
// when non-empty, is spliced verbatim into the top-level object after the
// traceEvents array and must therefore start with ',' (e.g.
// ",\"flightRecorder\":{...}"). Shared by Tracer::to_perfetto_json and the
// flight recorder's snapshot writer so both emit the exact same format.
std::string perfetto_trace_json(const std::vector<TraceEvent>& events,
                                const std::map<std::string, double>& counters,
                                std::uint64_t counter_ts_us,
                                const std::string& extra_json = {});

// Thread-safe event collector. One Tracer per run; pass nullptr to disable
// tracing (recording is skipped entirely in that case).
//
// record() and set_counter() are virtual: the flight recorder
// (src/prof/flight_recorder.h) installs a bounded capture sink where a full
// Tracer would be used, forwarding to an optional downstream Tracer.
class Tracer {
 public:
  virtual ~Tracer() = default;

  // Records a completed event. `corr` tags the event with a request
  // correlation id (0 = none); `detail` is a free-form annotation surfaced
  // in the trace args and by qhip_prof.
  virtual void record(std::string name, TraceKind kind, std::uint64_t ts_us,
                      std::uint64_t dur_us, int lane = 0,
                      std::uint64_t bytes = 0, std::uint64_t corr = 0,
                      std::string detail = {});

  // Number of recorded events.
  std::size_t size() const;

  std::vector<TraceEvent> events() const;

  // Per-name aggregation, sorted by descending total time.
  std::vector<TraceSummaryRow> summary() const;

  // Scalar counters (Chrome "ph":"C" events): last-write-wins per name.
  // The engine exports its serving metrics (cache hit rate, latency
  // histogram buckets, pooled bytes) through these so they land in the same
  // trace JSON as the kernel timeline.
  virtual void set_counter(const std::string& name, double value);
  std::map<std::string, double> counters() const;

  // Serializes to the Chrome trace-event JSON array format understood by
  // Perfetto and chrome://tracing. Counter values are appended as "ph":"C"
  // events stamped at serialization time. For every correlation id with at
  // least one span and one device (kernel/memcpy) event, a flow chain is
  // emitted: "ph":"s" anchored on the request span, "ph":"t" steps through
  // the request's device events, and a terminating "ph":"f".
  std::string to_perfetto_json() const;

  // Writes to_perfetto_json() to `path`; throws qhip::Error on I/O failure.
  void write_perfetto_json(const std::string& path) const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<std::string, double> counters_;
};

// RAII helper that records a host-side span on destruction.
class ScopedTrace {
 public:
  ScopedTrace(Tracer* tracer, std::string name, TraceKind kind = TraceKind::kHost,
              int lane = 0, std::uint64_t bytes = 0, std::uint64_t corr = 0,
              std::string detail = {});
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  Tracer* tracer_;
  std::string name_;
  TraceKind kind_;
  int lane_;
  std::uint64_t bytes_;
  std::uint64_t corr_;
  std::string detail_;
  std::uint64_t start_us_;
};

}  // namespace qhip
