// Bounded latency reservoir: the engine's point-percentile store.
//
// The engine keeps the last `capacity` request latencies in a ring and
// answers percentile queries over exactly that window. This was inlined in
// engine.cpp (PR 3); it is extracted here so the wrap-around behaviour can be
// regression-tested against a dense oracle (tests/prof/test_reservoir.cpp)
// and reused by anything else that wants "recent percentiles" without the
// bucketing error of a prof::Histogram.
//
// Not internally synchronized: callers serialize access (the engine updates
// it under its metrics mutex).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qhip::prof {

// Percentile of an ascending-sorted sample set with linear interpolation
// between adjacent order statistics (the "exclusive" scheme most tools use):
// p = 0 is the minimum, p = 1 the maximum, p = 0.5 the median.
inline double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

class LatencyReservoir {
 public:
  // capacity 0 disables the reservoir (record() is a no-op).
  explicit LatencyReservoir(std::size_t capacity) : capacity_(capacity) {
    samples_.reserve(capacity_);
  }

  void record(double v) {
    if (capacity_ == 0) return;
    ++total_;
    if (samples_.size() < capacity_) {
      samples_.push_back(v);
      return;
    }
    samples_[next_] = v;  // overwrite the oldest sample
    next_ = (next_ + 1) % capacity_;
  }

  std::size_t capacity() const { return capacity_; }
  // Samples currently held (<= capacity).
  std::size_t size() const { return samples_.size(); }
  // Samples ever recorded (including overwritten ones).
  std::uint64_t total_recorded() const { return total_; }

  // Ascending copy of the currently-held window.
  std::vector<double> sorted() const {
    std::vector<double> s = samples_;
    std::sort(s.begin(), s.end());
    return s;
  }

  // Percentile over the current window; 0 when empty.
  double percentile(double p) const { return percentile_sorted(sorted(), p); }

  double mean() const {
    if (samples_.empty()) return 0;
    double sum = 0;
    for (double v : samples_) sum += v;
    return sum / static_cast<double>(samples_.size());
  }

 private:
  std::size_t capacity_;
  std::vector<double> samples_;
  std::size_t next_ = 0;  // overwrite cursor once full
  std::uint64_t total_ = 0;
};

}  // namespace qhip::prof
