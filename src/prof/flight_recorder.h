// Always-on flight recorder: bounded post-hoc observability.
//
// A full qhip::Tracer keeps every event for the life of the process — fine
// for a bench run, unusable for a serving instance that handles millions of
// requests. The flight recorder keeps a fixed-capacity ring of
// completed-request records (id, kind, backend, planner choice, per-stage
// durations, outcome, attempts, bytes) and, per retained request, a bounded
// buffer of its span and device trace events. From that it can reconstruct
// a full Perfetto-compatible snapshot of the last ~K requests *after* an
// incident — the rocprof-style "what was the GPU doing" timeline of the
// paper's Figures 1 and 6, but rewound on demand instead of armed up front.
//
// Wiring: the recorder exposes a Tracer-compatible capture sink (sink()).
// The engine hands sink() to everything that would otherwise get the
// user-provided Tracer (spans, backends, devices). Events tagged with a
// request correlation id are retained in bounded per-request buffers;
// untagged events and all events are optionally forwarded to a downstream
// Tracer, so enabling full tracing (--trace) behaves exactly as before.
//
// Event retention is two-phase because events for a request arrive both
// before and after the request completes (the serving layer records its
// "serve" span after the engine publishes the result): events for unknown
// correlation ids accumulate in a bounded pending map; record_request()
// moves them into the ring entry; late events for a corr id already in the
// ring are appended to its entry (up to the per-request cap).
//
// Thread-safe; every public method and the capture sink take one mutex.
// Overhead with default capacities is a few hundred nanoseconds per event,
// verified by bench_engine_throughput --mode flightrec (budget: <= 2%).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/prof/trace.h"

namespace qhip::prof {

struct FlightRecorderOptions {
  // Completed-request records retained (ring; oldest overwritten). 0 disables
  // the recorder entirely: capture and record_request become no-ops.
  std::size_t capacity = 256;
  // Trace events retained per request (span + device events). Events beyond
  // the cap are counted in dropped_events() but not stored.
  std::size_t max_events_per_request = 256;
};

// One completed request, as remembered by the flight recorder.
struct RequestRecord {
  std::uint64_t corr = 0;       // request correlation id (SimResult::request_id)
  std::string kind;             // "circuit" / "expectation" / "trajectory"
  std::string backend;          // resolved backend spec, e.g. "hip" / "dist:2"
  std::string planner;          // planner choice detail ("" when not planned)
  std::string outcome;          // "ok", "cache-hit", or the error-code string
  bool ok = false;
  bool cache_hit = false;
  std::uint32_t attempts = 0;
  std::uint64_t bytes = 0;      // result payload bytes
  std::uint64_t submit_us = 0;  // approximate submit time (trace clock)
  double queue_ms = 0;
  double fuse_ms = 0;
  double execute_ms = 0;
  double sample_ms = 0;
  double total_ms = 0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions opt);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Tracer-compatible capture sink. Install wherever a Tracer* is accepted
  // (EngineOptions::tracer, ServerOptions::tracer, backend creation). Events
  // with corr != 0 are retained; everything is forwarded downstream.
  Tracer& sink();

  // Optional full Tracer receiving every event the sink sees (the --trace
  // path). Set before any traffic; not synchronized against capture.
  void set_downstream(Tracer* t);
  Tracer* downstream() const { return downstream_; }

  // Publishes a completed request: claims any pending events for rec.corr
  // into the ring entry, evicting the oldest record when full. Late events
  // arriving after this call are appended to the entry while it lives.
  void record_request(RequestRecord rec);

  // Newest-first copies of the most recent `n` records (all when n == 0).
  std::vector<RequestRecord> recent(std::size_t n = 0) const;

  // All retained trace events, oldest record first (snapshot order).
  std::vector<TraceEvent> events() const;

  // Retained record count (<= capacity).
  std::size_t size() const;
  // Requests ever recorded, including evicted ones.
  std::uint64_t total_recorded() const;
  // Events dropped by the per-request / pending bounds.
  std::uint64_t dropped_events() const;

  // Perfetto-compatible snapshot: the retained events serialized through the
  // same perfetto_trace_json used by Tracer (flow chains included), plus a
  // top-level "flightRecorder" object carrying `reason` and the request
  // records — what qhip_prof reads back out of a snapshot file.
  std::string snapshot_json(const std::string& reason) const;

  // Human-readable table of retained records, newest first (the
  // `{"op":"debug"}` / GET /debug/requests payload).
  std::string text_dump() const;

  // Writes snapshot_json(reason) to `path`; throws qhip::Error on I/O error.
  void write_snapshot(const std::string& path, const std::string& reason) const;

 private:
  class CaptureTracer;
  struct Entry {
    RequestRecord rec;
    std::vector<TraceEvent> events;
  };

  void capture(TraceEvent ev);  // called by CaptureTracer under no lock

  FlightRecorderOptions opt_;
  Tracer* downstream_ = nullptr;
  std::unique_ptr<CaptureTracer> sink_;

  mutable std::mutex mu_;
  std::vector<Entry> ring_;             // capacity slots, next_ is the cursor
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
  std::map<std::uint64_t, std::size_t> index_;  // corr -> ring slot
  // Events whose request has not completed yet, bounded by
  // capacity * max_events_per_request across all corr ids.
  std::map<std::uint64_t, std::vector<TraceEvent>> pending_;
  std::size_t pending_events_ = 0;
  std::uint64_t dropped_ = 0;
  // One-slot lookup cache for the hot path: a backend run emits its device
  // events in a burst under one corr id, so consecutive captures hit the
  // same pending_ entry. Invalidated whenever that entry is erased.
  std::uint64_t cached_corr_ = 0;
  std::vector<TraceEvent>* cached_events_ = nullptr;
};

}  // namespace qhip::prof
