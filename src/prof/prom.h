// Helpers for the Prometheus text exposition format (version 0.0.4).
//
// Label values may contain any UTF-8, but the exposition format requires
// backslash, double-quote and line-feed to be escaped as \\, \" and \n
// inside the quoted value (https://prometheus.io/docs/instrumenting/
// exposition_formats/). EngineMetrics::to_prom_text interpolates runtime
// strings — backend specs, calibration keys — into label positions, so
// every such value must pass through prom_escape_label or a hostile spec
// ("hip\"} 1\n") would splice arbitrary samples into the scrape.
#pragma once

#include <string>
#include <string_view>

namespace qhip::prof {

inline std::string prom_escape_label(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

// Inverse of prom_escape_label over a single label value (used by tests to
// round-trip hostile strings; unknown escapes pass through unchanged).
inline std::string prom_unescape_label(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] != '\\' || i + 1 >= v.size()) {
      out.push_back(v[i]);
      continue;
    }
    const char e = v[++i];
    if (e == 'n') {
      out.push_back('\n');
    } else {
      out.push_back(e);  // \\ and \" unescape to the character itself
    }
  }
  return out;
}

}  // namespace qhip::prof
