#include "src/prof/histogram.h"

#include <algorithm>

#include "src/base/error.h"

namespace qhip::prof {

Histogram::Histogram(double first_upper, double growth, std::size_t num_buckets) {
  check(first_upper > 0 && growth > 1.0 && num_buckets >= 1,
        "Histogram: need first_upper > 0, growth > 1, num_buckets >= 1");
  bounds_.reserve(num_buckets);
  double b = first_upper;
  for (std::size_t i = 0; i < num_buckets; ++i) {
    bounds_.push_back(b);
    b *= growth;
  }
  counts_.assign(num_buckets + 1, 0);
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
}

double Histogram::quantile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double lo_cum = static_cast<double>(cum);
    cum += counts_[i];
    if (static_cast<double>(cum) < target) continue;
    if (i == bounds_.size()) return bounds_.back();  // overflow bucket
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double frac =
        (target - lo_cum) / static_cast<double>(counts_[i]);
    return lo + std::clamp(frac, 0.0, 1.0) * (bounds_[i] - lo);
  }
  return bounds_.back();
}

void Histogram::merge(const Histogram& o) {
  check(bounds_ == o.bounds_,
        "Histogram::merge: bucket bounds differ (merge requires the same "
        "first_upper/growth/num_buckets shape)");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
  count_ += o.count_;
  sum_ += o.sum_;
}

void Histogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0;
}

}  // namespace qhip::prof
