// Fixed-bucket log-scale histogram for the serving-layer metrics.
//
// Two point percentiles (p50/p95 over a reservoir) cannot answer "how many
// requests were slower than X" or survive aggregation across engines; a
// histogram with fixed exponential bucket bounds can, which is why both
// Prometheus and rocprof-style profilers use them. Buckets are defined by a
// first upper bound and a growth factor: bucket i covers
// (bound(i-1), bound(i)] with bound(i) = first * growth^i, plus one
// overflow bucket for everything beyond the last bound. Values <= 0 land in
// the first bucket (latencies and counts are never negative).
//
// Not internally synchronized: the engine updates its histograms under its
// metrics lock and hands out copies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qhip::prof {

class Histogram {
 public:
  // `num_buckets` finite buckets with bounds first_upper * growth^i, plus an
  // implicit overflow (+Inf) bucket.
  Histogram(double first_upper, double growth, std::size_t num_buckets);

  void record(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0; }

  // Finite buckets; index num_buckets() is the overflow bucket.
  std::size_t num_buckets() const { return bounds_.size(); }
  // Upper bound of finite bucket i (i < num_buckets()).
  double upper_bound(std::size_t i) const { return bounds_[i]; }
  // Observation count of bucket i (i <= num_buckets(); last = overflow).
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }

  // Quantile estimate (p in [0, 1]): linear interpolation inside the bucket
  // holding the p-th observation. The overflow bucket reports the last
  // finite bound (the histogram cannot see beyond it).
  double quantile(double p) const;

  // Adds `o`'s observations into this histogram. Both must have identical
  // bucket bounds (same first_upper/growth/num_buckets); throws qhip::Error
  // otherwise. This is what makes a ring of per-epoch histograms mergeable
  // into one rolling-window view (the SLO watchdog's windowed percentiles).
  void merge(const Histogram& o);

  void clear();

 private:
  std::vector<double> bounds_;        // ascending finite upper bounds
  std::vector<std::uint64_t> counts_; // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

// The engine's standard shapes (documented in docs/OBSERVABILITY.md):
// latencies in milliseconds from 10 µs to ~84 s, fused-gate counts from 1 to
// 32768, and result payload bytes from 64 B to ~64 GiB.
inline Histogram latency_ms_histogram() { return Histogram(0.01, 2.0, 24); }
inline Histogram count_histogram() { return Histogram(1.0, 2.0, 16); }
inline Histogram bytes_histogram() { return Histogram(64.0, 4.0, 16); }

}  // namespace qhip::prof
