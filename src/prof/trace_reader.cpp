#include "src/prof/trace_reader.h"

#include <cctype>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <variant>

#include "src/base/error.h"

namespace qhip::prof {

namespace {

// Minimal recursive-descent JSON parser: just enough of RFC 8259 for trace
// files (objects, arrays, strings with escapes, numbers, literals).
struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  bool is_object() const { return std::holds_alternative<std::shared_ptr<JsonObject>>(v); }
  bool is_array() const { return std::holds_alternative<std::shared_ptr<JsonArray>>(v); }
  const JsonObject& object() const { return *std::get<std::shared_ptr<JsonObject>>(v); }
  const JsonArray& array() const { return *std::get<std::shared_ptr<JsonArray>>(v); }

  const JsonValue* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    const auto it = object().find(key);
    return it == object().end() ? nullptr : &it->second;
  }
  std::string str_or(const std::string& key, std::string dflt) const {
    const JsonValue* f = find(key);
    if (f == nullptr || !std::holds_alternative<std::string>(f->v)) return dflt;
    return std::get<std::string>(f->v);
  }
  double num_or(const std::string& key, double dflt) const {
    const JsonValue* f = find(key);
    if (f == nullptr || !std::holds_alternative<double>(f->v)) return dflt;
    return std::get<double>(f->v);
  }
  bool bool_or(const std::string& key, bool dflt) const {
    const JsonValue* f = find(key);
    if (f == nullptr || !std::holds_alternative<bool>(f->v)) return dflt;
    return std::get<bool>(f->v);
  }
};

// Hostile-input clamps: a double->integer cast is UB when the value is NaN
// or outside the target range, and nothing stops a hand-edited (or
// truncated-and-patched) trace from carrying "ts":-1 or "dur":1e300. Clamp
// instead of crashing; a profile built from garbage fields is still more
// useful than an aborted run.
std::uint64_t clamp_u64(double v) {
  if (std::isnan(v) || v <= 0) return 0;
  constexpr double kMax = 18446744073709549568.0;  // largest double < 2^64
  if (v >= kMax) return UINT64_MAX;
  return static_cast<std::uint64_t>(v);
}

int clamp_int(double v) {
  if (std::isnan(v)) return 0;
  if (v <= static_cast<double>(INT_MIN)) return INT_MIN;
  if (v >= static_cast<double>(INT_MAX)) return INT_MAX;
  return static_cast<int>(v);
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    check(pos_ == s_.size(), "trace JSON: trailing garbage after document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  char peek() {
    skip_ws();
    check(pos_ < s_.size(), "trace JSON: unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    check(peek() == c, std::string("trace JSON: expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue{string()};
      case 't': literal("true"); return JsonValue{true};
      case 'f': literal("false"); return JsonValue{false};
      case 'n': literal("null"); return JsonValue{nullptr};
      default: return JsonValue{number()};
    }
  }

  void literal(const char* lit) {
    skip_ws();
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      check(pos_ < s_.size() && s_[pos_] == *p,
            std::string("trace JSON: bad literal (expected ") + lit + ")");
    }
  }

  double number() {
    skip_ws();
    const char* begin = s_.data() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    check(end != begin, "trace JSON: malformed number");
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      check(pos_ < s_.size(), "trace JSON: unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      check(pos_ < s_.size(), "trace JSON: unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          check(pos_ + 4 <= s_.size(), "trace JSON: truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else throw Error("trace JSON: bad \\u escape");
          }
          // Trace names are ASCII in practice; encode BMP code points UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
        } break;
        default: throw Error("trace JSON: unknown escape");
      }
    }
  }

  JsonValue array() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(arr)};
    }
    while (true) {
      arr->push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue{std::move(arr)};
      check(c == ',', "trace JSON: expected ',' or ']' in array");
    }
  }

  JsonValue object() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(obj)};
    }
    while (true) {
      skip_ws();
      std::string key = string();
      expect(':');
      (*obj)[std::move(key)] = value();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue{std::move(obj)};
      check(c == ',', "trace JSON: expected ',' or '}' in object");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::uint64_t u64_arg(const JsonValue& args, const std::string& key) {
  return clamp_u64(args.num_or(key, 0));
}

// Parses the "flightRecorder" member a snapshot carries next to its
// traceEvents (FlightRecorder::snapshot_json). Missing or mistyped fields
// fall back to zero values — the record table degrades, the parse survives.
void parse_flight_recorder(const JsonValue& fr, ParsedTrace* out) {
  if (!fr.is_object()) return;
  out->snapshot_reason = fr.str_or("reason", "");
  if (out->snapshot_reason.empty()) out->snapshot_reason = "unknown";
  out->snapshot_dropped_events = clamp_u64(fr.num_or("dropped_events", 0));
  const JsonValue* recs = fr.find("records");
  if (recs == nullptr || !recs->is_array()) return;
  for (const JsonValue& r : recs->array()) {
    if (!r.is_object()) continue;
    FlightRecord rec;
    rec.corr = clamp_u64(r.num_or("corr", 0));
    rec.kind = r.str_or("kind", "");
    rec.backend = r.str_or("backend", "");
    rec.planner = r.str_or("planner", "");
    rec.outcome = r.str_or("outcome", "");
    rec.ok = r.bool_or("ok", false);
    rec.cache_hit = r.bool_or("cache_hit", false);
    rec.attempts = clamp_u64(r.num_or("attempts", 0));
    rec.bytes = clamp_u64(r.num_or("bytes", 0));
    rec.submit_us = clamp_u64(r.num_or("submit_us", 0));
    rec.queue_ms = r.num_or("queue_ms", 0);
    rec.fuse_ms = r.num_or("fuse_ms", 0);
    rec.execute_ms = r.num_or("execute_ms", 0);
    rec.sample_ms = r.num_or("sample_ms", 0);
    rec.total_ms = r.num_or("total_ms", 0);
    out->flight_records.push_back(std::move(rec));
  }
}

}  // namespace

ParsedTrace parse_trace_json(const std::string& json) {
  const JsonValue root = JsonParser(json).parse();
  const JsonValue* events = nullptr;
  if (root.is_array()) {
    events = &root;
  } else if (root.is_object()) {
    events = root.find("traceEvents");
  }
  check(events != nullptr && events->is_array(),
        "trace JSON: no traceEvents array");

  ParsedTrace out;
  for (const JsonValue& ev : events->array()) {
    if (!ev.is_object()) continue;
    const std::string ph = ev.str_or("ph", "");
    ParsedEvent pe;
    pe.name = ev.str_or("name", "");
    pe.cat = ev.str_or("cat", "");
    pe.ph = ph;
    pe.tid = clamp_int(ev.num_or("tid", 0));
    pe.ts_us = clamp_u64(ev.num_or("ts", 0));
    if (ph == "X") {
      pe.dur_us = clamp_u64(ev.num_or("dur", 0));
      if (const JsonValue* args = ev.find("args"); args != nullptr) {
        pe.bytes = u64_arg(*args, "bytes");
        pe.corr = u64_arg(*args, "corr");
        pe.detail = args->str_or("detail", "");
      }
      out.events.push_back(std::move(pe));
    } else if (ph == "s" || ph == "t" || ph == "f") {
      pe.corr = clamp_u64(ev.num_or("id", 0));
      out.flows.push_back(std::move(pe));
    } else if (ph == "C") {
      if (const JsonValue* args = ev.find("args"); args != nullptr) {
        out.counters[pe.name] = args->num_or("value", 0);
      }
    }
  }
  if (root.is_object()) {
    if (const JsonValue* fr = root.find("flightRecorder"); fr != nullptr) {
      parse_flight_recorder(*fr, &out);
    }
  }
  return out;
}

ParsedTrace read_trace_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  check(f.good(), "trace reader: cannot open '" + path + "'");
  std::string all((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  check(!f.bad(), "trace reader: read from '" + path + "' failed");
  return parse_trace_json(all);
}

}  // namespace qhip::prof
