// Per-thread kernel execution context — the emulator's device intrinsics.
//
// A kernel is any callable `void(KernelCtx&)`. The context exposes the HIP
// built-ins the qsim kernels use: thread/block indices, dynamic shared
// memory, __syncthreads, and wavefront collectives (__shfl_down, __shfl,
// __ballot). Collectives honour the *device* wavefront width (32 on the
// virtual A100, 64 on the virtual MI250X GCD), which is exactly the
// portability hazard the paper's §3 fixes in qsim's warp-level reductions.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace qhip::vgpu {

class BlockExec;  // defined in fiber_exec.h

class KernelCtx {
 public:
  KernelCtx(BlockExec* exec, unsigned thread_idx, unsigned block_idx,
            unsigned block_dim, unsigned grid_dim, unsigned warp_size,
            std::byte* shared, std::size_t shared_bytes)
      : exec_(exec),
        thread_idx_(thread_idx),
        block_idx_(block_idx),
        block_dim_(block_dim),
        grid_dim_(grid_dim),
        warp_size_(warp_size),
        shared_(shared),
        shared_bytes_(shared_bytes) {}

  // threadIdx.x / blockIdx.x / blockDim.x / gridDim.x equivalents.
  unsigned thread_idx() const { return thread_idx_; }
  unsigned block_idx() const { return block_idx_; }
  unsigned block_dim() const { return block_dim_; }
  unsigned grid_dim() const { return grid_dim_; }

  // Global linear thread id (blockIdx.x * blockDim.x + threadIdx.x).
  std::uint64_t global_idx() const {
    return std::uint64_t{block_idx_} * block_dim_ + thread_idx_;
  }

  unsigned warp_size() const { return warp_size_; }
  unsigned lane() const { return thread_idx_ % warp_size_; }
  unsigned warp_id() const { return thread_idx_ / warp_size_; }

  // Dynamic shared memory (the extern __shared__ buffer).
  std::byte* shared() const { return shared_; }
  std::size_t shared_bytes() const { return shared_bytes_; }

  template <typename T>
  T* shared_as(std::size_t byte_offset = 0) const {
    return reinterpret_cast<T*>(shared_ + byte_offset);
  }

  // __syncthreads(): blocks until every live thread of the block arrives.
  // Only legal in launches made with LaunchConfig::needs_sync = true.
  void syncthreads();

  // Number of live lanes in this thread's warp: the final warp of a block
  // whose block_dim is not a multiple of the wavefront width is ragged, and
  // lanes at or beyond this count do not exist.
  unsigned live_lanes() const {
    const unsigned warp_base = thread_idx_ / warp_size_ * warp_size_;
    return std::min(warp_size_, block_dim_ - warp_base);
  }

  // __shfl_down(var, delta, width): returns the value of `var` held by the
  // lane `delta` positions higher within the width-sized segment; own value
  // when the source lane falls outside the segment (CUDA/HIP semantics) or
  // beyond the live lanes of a ragged final warp (reading a non-existent
  // thread is undefined on hardware; the emulator pins it to the defined
  // own-value case instead of rendezvousing with a dead lane).
  // width = 0 means the device wavefront width.
  template <typename T>
  T shfl_down(T var, unsigned delta, unsigned width = 0) {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
    const unsigned w = width == 0 ? warp_size_ : width;
    const unsigned src = lane() + delta;
    // Source outside the segment or past the live lanes keeps the caller's
    // value.
    const bool in_segment = (lane() / w) == (src / w) && src < live_lanes();
    return exchange(var, in_segment ? src : lane());
  }

  // __shfl(var, src_lane, width): broadcast from src_lane of the segment.
  template <typename T>
  T shfl(T var, unsigned src_lane, unsigned width = 0) {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
    const unsigned w = width == 0 ? warp_size_ : width;
    const unsigned seg = lane() / w;
    const unsigned src = seg * w + (src_lane % w);
    return exchange(var, src < live_lanes() ? src : lane());
  }

  // __ballot(pred): bit i of the result is lane i's predicate.
  std::uint64_t ballot(bool pred);

 private:
  // Warp-synchronous exchange: all live lanes of this warp publish `var`,
  // then each reads slot `src_lane`. Implemented in fiber_exec.cpp.
  std::uint64_t exchange_raw(std::uint64_t bits, unsigned src_lane);

  template <typename T>
  T exchange(T var, unsigned src_lane) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &var, sizeof(T));
    bits = exchange_raw(bits, src_lane);
    T out;
    std::memcpy(&out, &bits, sizeof(T));
    return out;
  }

  BlockExec* exec_;
  unsigned thread_idx_;
  unsigned block_idx_;
  unsigned block_dim_;
  unsigned grid_dim_;
  unsigned warp_size_;
  std::byte* shared_;
  std::size_t shared_bytes_;
};

}  // namespace qhip::vgpu
