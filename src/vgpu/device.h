// Virtual GPU device: the HIP host-API surface of the emulator.
//
// Mirrors the subset of the HIP runtime qsim's GPU backend uses —
// hipMalloc/hipFree, hipMemcpy/hipMemcpyAsync, streams,
// hipDeviceSynchronize, and kernel launch — over the SIMT block executor.
// Streams execute eagerly (a stream is in-order by definition, and a single
// in-order queue executed immediately is observationally equivalent for a
// correct program); the tracer still records memcpys and kernels on their
// stream's lane so traces look like the paper's rocprof timelines.
//
// Memory discipline is enforced: copies must lie inside live device
// allocations, device capacity is respected, and leaks are reported.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/threadpool.h"
#include "src/prof/trace.h"
#include "src/vgpu/device_props.h"
#include "src/vgpu/fiber_exec.h"

namespace qhip::vgpu {

struct Stream {
  int id = 0;  // 0 is the default stream
};

// hipEvent_t equivalent: a timestamp marker recorded on a stream.
struct Event {
  int id = -1;  // -1 = never recorded
};

struct LaunchConfig {
  unsigned grid_dim = 1;      // blocks
  unsigned block_dim = 1;     // threads per block ("workgroup size" in HIP)
  std::size_t shared_bytes = 0;  // dynamic shared memory per block
  bool needs_sync = false;    // kernel uses __syncthreads / collectives
  Stream stream{};
};

struct DeviceStats {
  std::uint64_t kernel_launches = 0;
  std::uint64_t h2d_copies = 0;
  std::uint64_t d2h_copies = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::size_t bytes_in_use = 0;
  std::size_t peak_bytes = 0;
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
};

class Device {
 public:
  explicit Device(DeviceProps props, Tracer* tracer = nullptr,
                  ThreadPool* pool = &ThreadPool::shared());
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceProps& props() const { return props_; }
  const DeviceStats& stats() const { return stats_; }
  Tracer* tracer() { return tracer_; }

  // hipMalloc: throws qhip::Error when device capacity would be exceeded.
  void* malloc(std::size_t bytes);
  // Typed convenience.
  template <typename T>
  T* malloc_n(std::size_t n) {
    return static_cast<T*>(malloc(n * sizeof(T)));
  }
  // hipFree: `p` must be a live allocation from malloc (nullptr is a no-op).
  void free(void* p);

  // hipMemcpy (synchronous).
  void memcpy_h2d(void* dst, const void* src, std::size_t bytes);
  void memcpy_d2h(void* dst, const void* src, std::size_t bytes);
  void memcpy_d2d(void* dst, const void* src, std::size_t bytes);

  // hipMemcpyAsync on a stream. Eager execution; recorded on the stream lane.
  void memcpy_h2d_async(void* dst, const void* src, std::size_t bytes, Stream s);
  void memcpy_d2h_async(void* dst, const void* src, std::size_t bytes, Stream s);

  Stream create_stream();
  // hipStreamSynchronize / hipDeviceSynchronize (no-ops under eager
  // execution, kept for API fidelity and trace completeness).
  void stream_synchronize(Stream s);
  void synchronize();

  // hipEventCreate / hipEventRecord / hipEventElapsedTime. Events capture
  // the device timeline position at record time (the wall clock, under
  // eager execution); elapsed_ms(a, b) is the b - a difference.
  Event create_event();
  void record_event(Event& e, Stream s = {});
  // Throws unless both events have been recorded.
  double elapsed_ms(const Event& start, const Event& stop) const;

  // Kernel launch: runs cfg.grid_dim blocks of cfg.block_dim threads,
  // distributing blocks over the host pool. `name` labels trace rows
  // (e.g. "ApplyGateH_Kernel").
  void launch(const char* name, const LaunchConfig& cfg, const KernelFn& kernel);

  // Number of live allocations (leak checking in tests).
  std::size_t live_allocations() const { return allocations_.size(); }

 private:
  void validate_device_range(const void* p, std::size_t bytes,
                             const char* what) const;

  DeviceProps props_;
  Tracer* tracer_;
  ThreadPool* pool_;
  DeviceStats stats_;
  std::map<const std::byte*, std::size_t> allocations_;  // base -> size
  std::vector<std::unique_ptr<BlockExec>> execs_;        // one per host worker
  int next_stream_ = 1;
  std::vector<std::uint64_t> event_us_;                  // id -> timestamp
};

}  // namespace qhip::vgpu
