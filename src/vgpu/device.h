// Virtual GPU device: the HIP host-API surface of the emulator.
//
// Mirrors the subset of the HIP runtime qsim's GPU backend uses —
// hipMalloc/hipFree, hipMemcpy/hipMemcpyAsync, streams, events,
// hipDeviceSynchronize, and kernel launch — over the SIMT block executor.
//
// Stream execution model (see DESIGN.md §8):
//  * Explicitly created streams are genuine asynchronous in-order queues,
//    each drained by a dedicated host submitter thread. Kernel launches and
//    async memcpys return immediately; stream_synchronize/synchronize are
//    true blocking joins; record_event captures the device-timeline position
//    when the *stream* reaches the marker; stream_wait_event orders one
//    stream after another's event. Kernels from different streams serialize
//    on a single compute engine (the block executor), while memcpys run on
//    their stream's thread — so copies overlap kernels in wall-clock time,
//    reproducing the copy/compute overlap in the paper's Figures 1 and 6.
//  * Stream 0 is the legacy default stream: each op on it first joins every
//    other stream, then runs inline on the host (HIP null-stream semantics).
//  * QHIP_STREAM_MODE=eager restores the historical fully-eager execution
//    (every op inline, events complete at record time) as a fallback;
//    results are bit-identical between modes.
//
// Memory discipline is enforced: copies must lie inside live device
// allocations, device capacity is respected (charged at the allocator's
// 256-byte granularity), and leaks are reported. free() implicitly joins all
// streams first, like hipFree, so no pending op can touch freed memory.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/threadpool.h"
#include "src/prof/trace.h"
#include "src/vgpu/device_props.h"
#include "src/vgpu/fault.h"
#include "src/vgpu/fiber_exec.h"
#include "src/vgpu/stream_queue.h"

namespace qhip::vgpu {

enum class StreamMode {
  kAsync,  // created streams are real asynchronous queues (default)
  kEager,  // every op executes inline on the host (legacy fallback)
};

struct DeviceStats {
  std::uint64_t kernel_launches = 0;
  std::uint64_t h2d_copies = 0;
  std::uint64_t d2h_copies = 0;
  std::uint64_t d2d_copies = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t d2d_bytes = 0;
  std::size_t bytes_in_use = 0;  // charged (256-byte rounded) bytes
  std::size_t peak_bytes = 0;
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t faults_injected = 0;  // FaultPlan injections (all kinds)
};

class Device {
 public:
  explicit Device(DeviceProps props, Tracer* tracer = nullptr,
                  ThreadPool* pool = &ThreadPool::shared(),
                  StreamMode mode = default_stream_mode());
  // Joins all streams, then reclaims leaked allocations.
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // Process-wide default: QHIP_STREAM_MODE=eager|async, else async.
  static StreamMode default_stream_mode();
  StreamMode stream_mode() const { return mode_; }

  // Request correlation (DESIGN.md §11): ops submitted while a correlation
  // id is set carry it into their trace events, linking kernels and memcpys
  // back to the serving-layer request that caused them. The id is captured
  // at submit time on the host thread, so ops executing later on stream
  // submitter threads keep the id of the request that enqueued them. 0
  // clears the correlation (events revert to unbound).
  void set_correlation(std::uint64_t corr) {
    corr_.store(corr, std::memory_order_relaxed);
  }
  std::uint64_t correlation() const {
    return corr_.load(std::memory_order_relaxed);
  }

  const DeviceProps& props() const { return props_; }
  // Snapshot of the counters (copied under the stats lock; counters are
  // updated at API-call time on the host thread, so they are deterministic).
  DeviceStats stats() const;
  Tracer* tracer() { return tracer_; }

  // Fault injection (see src/vgpu/fault.h). The constructor installs the
  // QHIP_FAULT_SPEC plan when the variable is set; set_fault_plan overrides
  // it (nullptr removes injection). The plan is consulted on the host thread
  // for mallocs and on stream submitter threads for stream ops; every
  // injected fault is recorded as a "fault/..." trace event and counted in
  // stats().faults_injected.
  void set_fault_plan(std::shared_ptr<FaultPlan> plan);
  std::shared_ptr<FaultPlan> fault_plan() const;

  // hipMalloc: throws qhip::CodedError(kOutOfMemory) when device capacity
  // would be exceeded (or a FaultPlan injects an OOM).
  // Capacity is charged at the 256-byte allocation granularity.
  void* malloc(std::size_t bytes);
  // Typed convenience.
  template <typename T>
  T* malloc_n(std::size_t n) {
    return static_cast<T*>(malloc(n * sizeof(T)));
  }
  // hipFree: `p` must be a live allocation from malloc (nullptr is a no-op).
  // Implicitly joins all streams first (deferred stream errors stay stored
  // for the next synchronize, since free must not throw them).
  void free(void* p);

  // hipMemcpy (synchronous): joins all streams, then copies inline.
  void memcpy_h2d(void* dst, const void* src, std::size_t bytes);
  void memcpy_d2h(void* dst, const void* src, std::size_t bytes);
  void memcpy_d2d(void* dst, const void* src, std::size_t bytes);

  // hipMemcpyAsync on a stream. The H2D source is snapshotted at call time
  // (pageable-memory semantics); the D2H destination must stay valid until
  // the stream is synchronized.
  void memcpy_h2d_async(void* dst, const void* src, std::size_t bytes, Stream s);
  void memcpy_d2h_async(void* dst, const void* src, std::size_t bytes, Stream s);

  Stream create_stream();
  // hipStreamSynchronize: blocks until every op enqueued on `s` completed.
  // Rethrows a deferred execution error from that stream, if any.
  void stream_synchronize(Stream s);
  // hipDeviceSynchronize: joins every stream.
  void synchronize();

  // hipEventCreate / hipEventRecord / hipEventElapsedTime. An event
  // completes when its stream reaches the marker; recording again is
  // well-defined (the last completed record wins). elapsed_ms throws unless
  // both events have fully completed — synchronize first.
  Event create_event();
  void record_event(Event& e, Stream s = {});
  double elapsed_ms(const Event& start, const Event& stop) const;
  // hipEventQuery: true when every issued record of `e` has completed.
  bool event_query(const Event& e) const;
  // hipStreamWaitEvent: all ops enqueued on `s` after this call wait until
  // the records of `e` issued so far complete. Unrecorded event: no-op.
  void stream_wait_event(Stream s, const Event& e);

  // Kernel launch: runs cfg.grid_dim blocks of cfg.block_dim threads,
  // distributing blocks over the host pool. `name` labels trace rows
  // (e.g. "ApplyGateH_Kernel"). Launch-config errors throw here; runtime
  // kernel errors on an async stream surface at the next synchronize.
  void launch(const char* name, const LaunchConfig& cfg, const KernelFn& kernel);

  // Number of live allocations (leak checking in tests).
  std::size_t live_allocations() const { return allocations_.size(); }

 private:
  void validate_device_range(const void* p, std::size_t bytes,
                             const char* what) const;
  void validate_launch(const char* name, const LaunchConfig& cfg) const;
  static std::size_t charged_size(std::size_t bytes) {
    return (bytes + 255) / 256 * 256;
  }

  // True when ops on `s` go through an async queue (async mode, non-null
  // stream); false means legacy inline execution after a device join.
  bool is_async(Stream s) const {
    return mode_ == StreamMode::kAsync && s.id != 0;
  }
  StreamQueue& queue(int id);
  void submit(Stream s, StreamOp op);
  // Executes one op; runs on a stream's submitter thread (async) or the
  // host thread (legacy/eager).
  void execute_op(StreamOp& op);
  // Applies the fault plan to one stream op: injects latency jitter, then
  // throws CodedError(kBackendFault) when the op is scheduled to fail.
  void inject_stream_faults(const StreamOp& op);
  // Records an injected fault: trace event on `lane` + stats counter.
  void record_fault(const char* name, int lane);
  void run_kernel(const StreamOp& op);
  std::shared_ptr<EventState> event_state(const Event& e, const char* what) const;
  // Joins all queues without rethrowing deferred errors (dtor/free path).
  void drain_all() noexcept;

  DeviceProps props_;
  Tracer* tracer_;
  ThreadPool* pool_;
  StreamMode mode_;
  std::atomic<std::uint64_t> corr_{0};  // current request correlation id

  mutable std::mutex stats_mu_;
  DeviceStats stats_;

  // Fault plan: read by submitter threads at op time, so swaps go through
  // faults_mu_ (the plan object itself is internally synchronized).
  mutable std::mutex faults_mu_;
  std::shared_ptr<FaultPlan> faults_;

  // Host-control-thread state (like HIP, one thread drives the device API).
  std::map<const std::byte*, std::size_t> allocations_;  // base -> requested
  int next_stream_ = 1;
  std::vector<std::shared_ptr<EventState>> events_;

  // The single compute engine: serializes kernel execution across streams
  // and guards the per-worker block executors and the thread pool.
  std::mutex engine_mu_;
  std::vector<std::unique_ptr<BlockExec>> execs_;  // one per host worker

  std::mutex streams_mu_;
  std::map<int, std::unique_ptr<StreamQueue>> queues_;
};

}  // namespace qhip::vgpu
