// Asynchronous stream work queues for the virtual GPU.
//
// A HIP stream is an in-order queue of device operations (kernel launches,
// async memcpys, event records, cross-stream waits). Real GPUs drain these
// queues on hardware engines concurrently with the host; the paper's rocprof
// timelines (Figures 1 and 6) show exactly that — hipMemcpyAsync spans
// overlapping ApplyGate kernels on separate queues. This module provides the
// host-side equivalent: each explicitly created stream owns a dedicated
// submitter thread that pops ops in FIFO order and executes them through the
// device, so copies genuinely overlap kernel execution in wall-clock time
// and in the emitted traces.
//
// Two op sources never touch a queue: the legacy default stream (id 0),
// whose ops synchronize the device and run inline on the host (HIP null
// stream semantics), and eager mode (QHIP_STREAM_MODE=eager), where every
// stream executes inline — kept as a fallback so tests can assert
// bit-identical results between modes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/vgpu/fiber_exec.h"  // KernelFn

namespace qhip::vgpu {

struct Stream {
  int id = 0;  // 0 is the default (legacy, synchronizing) stream
};

// hipEvent_t equivalent: a marker recorded on a stream; completes when the
// stream's queue reaches it.
struct Event {
  int id = -1;  // -1 = never created
};

struct LaunchConfig {
  unsigned grid_dim = 1;      // blocks
  unsigned block_dim = 1;     // threads per block ("workgroup size" in HIP)
  std::size_t shared_bytes = 0;  // dynamic shared memory per block
  bool needs_sync = false;    // kernel uses __syncthreads / collectives
  Stream stream{};
};

// Shared completion state behind an Event. record_event issues a ticket at
// enqueue time; the stream completes it (stamping the device-timeline
// position) when the queue reaches the marker. Recording the same event
// again issues a fresh ticket: the last completed record wins, and the event
// is "ready" only when every issued ticket has completed.
struct EventState {
  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t issued = 0;     // tickets issued by record_event
  std::uint64_t completed = 0;  // highest ticket completed by a stream
  std::uint64_t ts_us = 0;      // timestamp of the latest completed record
};

// One unit of stream work. Exactly one of the payload groups is used,
// selected by `kind`.
struct StreamOp {
  enum class Kind {
    kKernel,
    kMemcpyH2D,
    kMemcpyD2H,
    kMemcpyD2D,
    kRecordEvent,
    kWaitEvent,
  };

  Kind kind;

  // Request correlation id stamped at enqueue time from the device's current
  // correlation (see Device::set_correlation); tags the op's trace event so
  // flow events can link it back to the serving-layer request span.
  std::uint64_t corr = 0;

  // kKernel
  std::string name;
  LaunchConfig cfg{};
  KernelFn kernel;

  // kMemcpy*. H2D ops own a snapshot of the host source taken at enqueue
  // time (`staged`), so callers may free their buffer immediately — the
  // guarantee hipMemcpyAsync gives for pageable host memory.
  void* dst = nullptr;
  const void* src = nullptr;
  std::size_t bytes = 0;
  std::vector<std::byte> staged;

  // kRecordEvent (ticket = the ticket to complete) and kWaitEvent (ticket =
  // the ticket snapshot to wait for; 0 = event unrecorded at enqueue, no-op).
  std::shared_ptr<EventState> event;
  std::uint64_t ticket = 0;
};

// An in-order work queue drained by a dedicated submitter thread. The
// executor callback (supplied by the Device) performs the actual op.
class StreamQueue {
 public:
  StreamQueue(int id, std::function<void(StreamOp&)> execute);
  // Drains every pending op, then stops the submitter thread.
  ~StreamQueue();

  StreamQueue(const StreamQueue&) = delete;
  StreamQueue& operator=(const StreamQueue&) = delete;

  int id() const { return id_; }

  void enqueue(StreamOp op);

  // Blocks until the queue is empty and no op is executing
  // (hipStreamSynchronize). With `rethrow`, a deferred execution error is
  // raised here (and cleared); without, it stays stored for a later join —
  // used by destructors and hipFree-style implicit syncs that must not
  // throw.
  void wait_idle(bool rethrow = true);

  // True when the queue is empty and idle (hipStreamQuery == hipSuccess).
  bool idle() const;

 private:
  void run();

  const int id_;
  const std::function<void(StreamOp&)> execute_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<StreamOp> q_;
  bool active_ = false;  // an op is executing right now
  bool stop_ = false;
  std::exception_ptr error_;  // first execution error, rethrown at a join

  std::thread thread_;  // last: starts after all state above is ready
};

}  // namespace qhip::vgpu
