#include "src/vgpu/device.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/base/timer.h"

namespace qhip::vgpu {

Device::Device(DeviceProps props, Tracer* tracer, ThreadPool* pool,
               StreamMode mode)
    : props_(std::move(props)), tracer_(tracer), pool_(pool), mode_(mode) {
  check(props_.warp_size == 32 || props_.warp_size == 64,
        "Device: warp size must be 32 or 64");
  execs_.resize(pool_->num_threads());
  faults_ = FaultPlan::from_env();
}

Device::~Device() {
  // Join every stream before touching memory: pending ops may still read or
  // write device allocations. Queue destruction drains, then stops.
  drain_all();
  {
    std::lock_guard lk(streams_mu_);
    queues_.clear();
  }
  // Free leaked allocations; leaks are a bug but must not leak host memory.
  for (auto& [base, size] : allocations_) {
    std::free(const_cast<std::byte*>(base));
  }
}

StreamMode Device::default_stream_mode() {
  const char* env = std::getenv("QHIP_STREAM_MODE");
  if (env != nullptr && std::string(env) == "eager") return StreamMode::kEager;
  return StreamMode::kAsync;
}

DeviceStats Device::stats() const {
  std::lock_guard lk(stats_mu_);
  return stats_;
}

void Device::set_fault_plan(std::shared_ptr<FaultPlan> plan) {
  std::lock_guard lk(faults_mu_);
  faults_ = std::move(plan);
}

std::shared_ptr<FaultPlan> Device::fault_plan() const {
  std::lock_guard lk(faults_mu_);
  return faults_;
}

void Device::record_fault(const char* name, int lane) {
  if (tracer_ != nullptr) {
    tracer_->record(name, TraceKind::kHost, Timer::now_micros(), 0, lane);
  }
  std::lock_guard lk(stats_mu_);
  ++stats_.faults_injected;
}

void* Device::malloc(std::size_t bytes) {
  check(bytes > 0, "vgpu::malloc: zero-byte allocation");
  if (auto plan = fault_plan(); plan && plan->should_fail_malloc(bytes)) {
    record_fault("fault/malloc_oom", 0);
    throw CodedError(ErrorCode::kOutOfMemory,
                     strfmt("vgpu::malloc: injected out-of-memory fault "
                            "(%zu B requested)",
                            bytes));
  }
  const std::size_t charged = charged_size(bytes);
  {
    std::lock_guard lk(stats_mu_);
    if (stats_.bytes_in_use + charged > props_.global_mem_bytes) {
      throw CodedError(
          ErrorCode::kOutOfMemory,
          strfmt("vgpu::malloc: out of device memory (%zu B requested, %zu of "
                 "%zu B in use)",
                 bytes, stats_.bytes_in_use, props_.global_mem_bytes));
    }
    stats_.bytes_in_use += charged;
    stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.bytes_in_use);
    ++stats_.allocs;
  }
  void* p = std::aligned_alloc(256, charged);
  check(p != nullptr, "vgpu::malloc: host allocation failed");
  allocations_.emplace(static_cast<const std::byte*>(p), bytes);
  return p;
}

void Device::free(void* p) {
  if (p == nullptr) return;
  const auto it = allocations_.find(static_cast<const std::byte*>(p));
  check(it != allocations_.end(),
        "vgpu::free: pointer is not a live device allocation");
  // hipFree semantics: no pending stream op may still touch this memory.
  // Deferred stream errors stay stored (free must not throw them).
  drain_all();
  {
    std::lock_guard lk(stats_mu_);
    stats_.bytes_in_use -= charged_size(it->second);
    ++stats_.frees;
  }
  allocations_.erase(it);
  std::free(p);
}

void Device::validate_device_range(const void* p, std::size_t bytes,
                                   const char* what) const {
  const auto* b = static_cast<const std::byte*>(p);
  // Find the allocation at or before b.
  auto it = allocations_.upper_bound(b);
  check(it != allocations_.begin(),
        std::string(what) + ": pointer is not in device memory");
  --it;
  check(b >= it->first && b + bytes <= it->first + it->second,
        std::string(what) + ": range escapes its device allocation");
}

// ---------------------------------------------------------------------------
// Stream machinery
// ---------------------------------------------------------------------------

StreamQueue& Device::queue(int id) {
  std::lock_guard lk(streams_mu_);
  auto& q = queues_[id];
  if (!q) {
    q = std::make_unique<StreamQueue>(id,
                                      [this](StreamOp& op) { execute_op(op); });
  }
  return *q;
}

void Device::submit(Stream s, StreamOp op) {
  // Stamp the current request correlation at enqueue time: the op may
  // execute later on a submitter thread, after the host moved on.
  op.corr = correlation();
  if (is_async(s)) {
    queue(s.id).enqueue(std::move(op));
    return;
  }
  // Legacy null stream (async mode, id 0): join every other stream, then run
  // inline. Eager mode: run inline immediately.
  if (mode_ == StreamMode::kAsync) synchronize();
  execute_op(op);
}

void Device::inject_stream_faults(const StreamOp& op) {
  auto plan = fault_plan();
  if (!plan) return;
  const int lane = op.cfg.stream.id;
  const double delay_ms = plan->latency_ms();
  if (delay_ms > 0) {
    ScopedTrace span(tracer_, "fault/latency", TraceKind::kHost, lane);
    {
      std::lock_guard lk(stats_mu_);
      ++stats_.faults_injected;
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
  }
  switch (op.kind) {
    case StreamOp::Kind::kMemcpyH2D:
    case StreamOp::Kind::kMemcpyD2H:
    case StreamOp::Kind::kMemcpyD2D:
      if (plan->should_fail_memcpy()) {
        record_fault("fault/memcpy", lane);
        throw CodedError(ErrorCode::kBackendFault,
                         strfmt("vgpu: injected memcpy fault (%s, stream %d)",
                                op.name.c_str(), lane));
      }
      break;
    case StreamOp::Kind::kKernel:
      if (plan->should_fail_kernel()) {
        record_fault("fault/kernel", lane);
        throw CodedError(ErrorCode::kBackendFault,
                         strfmt("vgpu: injected kernel fault (%s, stream %d)",
                                op.name.c_str(), lane));
      }
      break;
    case StreamOp::Kind::kRecordEvent:
    case StreamOp::Kind::kWaitEvent:
      break;  // synchronization markers never fault
  }
}

void Device::execute_op(StreamOp& op) {
  inject_stream_faults(op);
  switch (op.kind) {
    case StreamOp::Kind::kKernel:
      run_kernel(op);
      break;
    case StreamOp::Kind::kMemcpyH2D: {
      ScopedTrace span(tracer_, op.name, TraceKind::kMemcpy, op.cfg.stream.id,
                       op.bytes, op.corr);
      std::memcpy(op.dst, op.staged.empty() ? op.src : op.staged.data(),
                  op.bytes);
    } break;
    case StreamOp::Kind::kMemcpyD2H: {
      ScopedTrace span(tracer_, op.name, TraceKind::kMemcpy, op.cfg.stream.id,
                       op.bytes, op.corr);
      std::memcpy(op.dst, op.src, op.bytes);
    } break;
    case StreamOp::Kind::kMemcpyD2D: {
      ScopedTrace span(tracer_, op.name, TraceKind::kMemcpy, op.cfg.stream.id,
                       op.bytes, op.corr);
      std::memmove(op.dst, op.src, op.bytes);
    } break;
    case StreamOp::Kind::kRecordEvent: {
      std::lock_guard lk(op.event->mu);
      op.event->ts_us = Timer::now_micros();
      op.event->completed = std::max(op.event->completed, op.ticket);
      op.event->cv.notify_all();
    } break;
    case StreamOp::Kind::kWaitEvent: {
      if (op.ticket != 0) {
        std::unique_lock lk(op.event->mu);
        op.event->cv.wait(lk, [&] { return op.event->completed >= op.ticket; });
      }
    } break;
  }
}

void Device::run_kernel(const StreamOp& op) {
  // One compute engine: kernels from all streams serialize here (and the
  // per-worker block executors plus the shared pool are used exclusively),
  // while memcpys proceed on their own stream threads — the copy/compute
  // overlap a real GPU gets from its DMA engines.
  std::lock_guard eng(engine_mu_);
  ScopedTrace span(tracer_, op.name, TraceKind::kKernel, op.cfg.stream.id, 0,
                   op.corr);
  const LaunchConfig& cfg = op.cfg;
  const KernelFn& kernel = op.kernel;
  pool_->parallel_ranges(cfg.grid_dim, [&](unsigned rank, index_t b, index_t e) {
    auto& exec = execs_[rank];
    if (!exec) {
      exec = std::make_unique<BlockExec>(props_.max_threads_per_block,
                                         props_.shared_mem_per_block,
                                         props_.warp_size);
    }
    for (index_t blk = b; blk < e; ++blk) {
      exec->run_block(kernel, static_cast<unsigned>(blk), cfg.block_dim,
                      cfg.grid_dim, cfg.shared_bytes, cfg.needs_sync);
    }
  });
}

void Device::drain_all() noexcept {
  std::vector<StreamQueue*> qs;
  {
    std::lock_guard lk(streams_mu_);
    qs.reserve(queues_.size());
    for (auto& [id, q] : queues_) qs.push_back(q.get());
  }
  for (auto* q : qs) q->wait_idle(/*rethrow=*/false);
}

void Device::synchronize() {
  // Two passes: join everything first (a stream may be blocked in
  // stream_wait_event on another stream's record), then surface the first
  // deferred execution error.
  drain_all();
  std::vector<StreamQueue*> qs;
  {
    std::lock_guard lk(streams_mu_);
    for (auto& [id, q] : queues_) qs.push_back(q.get());
  }
  for (auto* q : qs) q->wait_idle(/*rethrow=*/true);
}

void Device::stream_synchronize(Stream s) {
  if (!is_async(s)) {
    // Null-stream sync joins the device; eager streams are always idle but
    // still surface deferred errors (there are none in eager mode).
    if (mode_ == StreamMode::kAsync) synchronize();
    return;
  }
  std::lock_guard lk(streams_mu_);
  const auto it = queues_.find(s.id);
  if (it == queues_.end()) return;  // nothing ever enqueued
  it->second->wait_idle(/*rethrow=*/true);
}

Stream Device::create_stream() { return Stream{next_stream_++}; }

// ---------------------------------------------------------------------------
// Memory copies
// ---------------------------------------------------------------------------

void Device::memcpy_h2d(void* dst, const void* src, std::size_t bytes) {
  validate_device_range(dst, bytes, "memcpy_h2d dst");
  {
    std::lock_guard lk(stats_mu_);
    ++stats_.h2d_copies;
    stats_.h2d_bytes += bytes;
  }
  // Synchronous hipMemcpy: joins the device, then copies inline.
  if (mode_ == StreamMode::kAsync) synchronize();
  StreamOp op;
  op.kind = StreamOp::Kind::kMemcpyH2D;
  op.corr = correlation();
  op.name = "hipMemcpy(HtoD)";
  op.dst = dst;
  op.src = src;
  op.bytes = bytes;
  execute_op(op);
}

void Device::memcpy_d2h(void* dst, const void* src, std::size_t bytes) {
  validate_device_range(src, bytes, "memcpy_d2h src");
  {
    std::lock_guard lk(stats_mu_);
    ++stats_.d2h_copies;
    stats_.d2h_bytes += bytes;
  }
  if (mode_ == StreamMode::kAsync) synchronize();
  StreamOp op;
  op.kind = StreamOp::Kind::kMemcpyD2H;
  op.corr = correlation();
  op.name = "hipMemcpy(DtoH)";
  op.dst = dst;
  op.src = src;
  op.bytes = bytes;
  execute_op(op);
}

void Device::memcpy_d2d(void* dst, const void* src, std::size_t bytes) {
  validate_device_range(dst, bytes, "memcpy_d2d dst");
  validate_device_range(src, bytes, "memcpy_d2d src");
  {
    std::lock_guard lk(stats_mu_);
    ++stats_.d2d_copies;
    stats_.d2d_bytes += bytes;
  }
  if (mode_ == StreamMode::kAsync) synchronize();
  StreamOp op;
  op.kind = StreamOp::Kind::kMemcpyD2D;
  op.corr = correlation();
  op.name = "hipMemcpyDtoD";
  op.dst = dst;
  op.src = src;
  op.bytes = bytes;
  execute_op(op);
}

void Device::memcpy_h2d_async(void* dst, const void* src, std::size_t bytes,
                              Stream s) {
  validate_device_range(dst, bytes, "memcpy_h2d dst");
  {
    std::lock_guard lk(stats_mu_);
    ++stats_.h2d_copies;
    stats_.h2d_bytes += bytes;
  }
  StreamOp op;
  op.kind = StreamOp::Kind::kMemcpyH2D;
  op.name = "hipMemcpyAsync(HtoD)";
  op.cfg.stream = s;
  op.dst = dst;
  op.bytes = bytes;
  if (is_async(s)) {
    // Snapshot the pageable host source so the caller may reuse it
    // immediately — the copy itself happens when the stream gets there.
    op.staged.assign(static_cast<const std::byte*>(src),
                     static_cast<const std::byte*>(src) + bytes);
  } else {
    op.src = src;
  }
  submit(s, std::move(op));
}

void Device::memcpy_d2h_async(void* dst, const void* src, std::size_t bytes,
                              Stream s) {
  validate_device_range(src, bytes, "memcpy_d2h src");
  {
    std::lock_guard lk(stats_mu_);
    ++stats_.d2h_copies;
    stats_.d2h_bytes += bytes;
  }
  StreamOp op;
  op.kind = StreamOp::Kind::kMemcpyD2H;
  op.name = "hipMemcpyAsync(DtoH)";
  op.cfg.stream = s;
  op.dst = dst;
  op.src = src;
  op.bytes = bytes;
  submit(s, std::move(op));
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

Event Device::create_event() {
  events_.push_back(std::make_shared<EventState>());
  return Event{static_cast<int>(events_.size()) - 1};
}

std::shared_ptr<EventState> Device::event_state(const Event& e,
                                                const char* what) const {
  check(e.id >= 0 && static_cast<std::size_t>(e.id) < events_.size(),
        std::string(what) + ": not an event from create_event");
  return events_[static_cast<std::size_t>(e.id)];
}

void Device::record_event(Event& e, Stream s) {
  auto st = event_state(e, "record_event");
  StreamOp op;
  op.kind = StreamOp::Kind::kRecordEvent;
  op.event = st;
  {
    std::lock_guard lk(st->mu);
    op.ticket = ++st->issued;
  }
  submit(s, std::move(op));
}

double Device::elapsed_ms(const Event& start, const Event& stop) const {
  const auto a = event_state(start, "elapsed_ms");
  const auto b = event_state(stop, "elapsed_ms");
  std::uint64_t ta = 0, tb = 0;
  for (const auto& [st, out] : {std::pair{a, &ta}, std::pair{b, &tb}}) {
    std::lock_guard lk(st->mu);
    check(st->issued > 0, "elapsed_ms: event was never recorded");
    check(st->completed == st->issued,
          "elapsed_ms: event not complete yet — synchronize the stream first");
    *out = st->ts_us;
  }
  return (static_cast<double>(tb) - static_cast<double>(ta)) / 1e3;
}

bool Device::event_query(const Event& e) const {
  const auto st = event_state(e, "event_query");
  std::lock_guard lk(st->mu);
  return st->completed == st->issued;
}

void Device::stream_wait_event(Stream s, const Event& e) {
  auto st = event_state(e, "stream_wait_event");
  std::uint64_t snapshot;
  {
    std::lock_guard lk(st->mu);
    snapshot = st->issued;
  }
  if (snapshot == 0) return;  // HIP: waiting on an unrecorded event is a no-op
  if (is_async(s)) {
    StreamOp op;
    op.kind = StreamOp::Kind::kWaitEvent;
    op.event = std::move(st);
    op.ticket = snapshot;
    queue(s.id).enqueue(std::move(op));
    return;
  }
  // Legacy/eager: all future work on `s` runs inline after this returns, so
  // blocking the host until the records complete gives the same ordering.
  std::unique_lock lk(st->mu);
  st->cv.wait(lk, [&] { return st->completed >= snapshot; });
}

// ---------------------------------------------------------------------------
// Kernel launch
// ---------------------------------------------------------------------------

void Device::validate_launch(const char* name, const LaunchConfig& cfg) const {
  check(cfg.grid_dim >= 1, "vgpu::launch: empty grid");
  check(cfg.block_dim >= 1 && cfg.block_dim <= props_.max_threads_per_block,
        strfmt("vgpu::launch(%s): block_dim %u exceeds device limit %u", name,
               cfg.block_dim, props_.max_threads_per_block));
  check(cfg.shared_bytes <= props_.shared_mem_per_block,
        strfmt("vgpu::launch(%s): %zu B shared memory exceeds the %zu B "
               "workgroup limit",
               name, cfg.shared_bytes, props_.shared_mem_per_block));
}

void Device::launch(const char* name, const LaunchConfig& cfg,
                    const KernelFn& kernel) {
  validate_launch(name, cfg);
  {
    std::lock_guard lk(stats_mu_);
    ++stats_.kernel_launches;
  }
  StreamOp op;
  op.kind = StreamOp::Kind::kKernel;
  op.name = name;
  op.cfg = cfg;
  op.kernel = kernel;
  submit(cfg.stream, std::move(op));
}

}  // namespace qhip::vgpu
