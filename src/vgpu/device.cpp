#include "src/vgpu/device.h"

#include <cstdlib>
#include <cstring>

#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/base/timer.h"

namespace qhip::vgpu {

Device::Device(DeviceProps props, Tracer* tracer, ThreadPool* pool)
    : props_(std::move(props)), tracer_(tracer), pool_(pool) {
  check(props_.warp_size == 32 || props_.warp_size == 64,
        "Device: warp size must be 32 or 64");
  execs_.resize(pool_->num_threads());
}

Device::~Device() {
  // Free leaked allocations; leaks are a bug but must not leak host memory.
  for (auto& [base, size] : allocations_) {
    std::free(const_cast<std::byte*>(base));
  }
}

void* Device::malloc(std::size_t bytes) {
  check(bytes > 0, "vgpu::malloc: zero-byte allocation");
  check(stats_.bytes_in_use + bytes <= props_.global_mem_bytes,
        strfmt("vgpu::malloc: out of device memory (%zu B requested, %zu of "
               "%zu B in use)",
               bytes, stats_.bytes_in_use, props_.global_mem_bytes));
  void* p = std::aligned_alloc(256, (bytes + 255) / 256 * 256);
  check(p != nullptr, "vgpu::malloc: host allocation failed");
  allocations_.emplace(static_cast<const std::byte*>(p), bytes);
  stats_.bytes_in_use += bytes;
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.bytes_in_use);
  ++stats_.allocs;
  return p;
}

void Device::free(void* p) {
  if (p == nullptr) return;
  const auto it = allocations_.find(static_cast<const std::byte*>(p));
  check(it != allocations_.end(),
        "vgpu::free: pointer is not a live device allocation");
  stats_.bytes_in_use -= it->second;
  allocations_.erase(it);
  std::free(p);
  ++stats_.frees;
}

void Device::validate_device_range(const void* p, std::size_t bytes,
                                   const char* what) const {
  const auto* b = static_cast<const std::byte*>(p);
  // Find the allocation at or before b.
  auto it = allocations_.upper_bound(b);
  check(it != allocations_.begin(),
        std::string(what) + ": pointer is not in device memory");
  --it;
  check(b >= it->first && b + bytes <= it->first + it->second,
        std::string(what) + ": range escapes its device allocation");
}

void Device::memcpy_h2d(void* dst, const void* src, std::size_t bytes) {
  memcpy_h2d_async(dst, src, bytes, Stream{0});
}

void Device::memcpy_d2h(void* dst, const void* src, std::size_t bytes) {
  memcpy_d2h_async(dst, src, bytes, Stream{0});
}

void Device::memcpy_d2d(void* dst, const void* src, std::size_t bytes) {
  validate_device_range(dst, bytes, "memcpy_d2d dst");
  validate_device_range(src, bytes, "memcpy_d2d src");
  ScopedTrace span(tracer_, "hipMemcpyDtoD", TraceKind::kMemcpy, 0, bytes);
  std::memmove(dst, src, bytes);
}

void Device::memcpy_h2d_async(void* dst, const void* src, std::size_t bytes,
                              Stream s) {
  validate_device_range(dst, bytes, "memcpy_h2d dst");
  ScopedTrace span(tracer_, "hipMemcpyAsync(HtoD)", TraceKind::kMemcpy, s.id, bytes);
  std::memcpy(dst, src, bytes);
  ++stats_.h2d_copies;
  stats_.h2d_bytes += bytes;
}

void Device::memcpy_d2h_async(void* dst, const void* src, std::size_t bytes,
                              Stream s) {
  validate_device_range(src, bytes, "memcpy_d2h src");
  ScopedTrace span(tracer_, "hipMemcpyAsync(DtoH)", TraceKind::kMemcpy, s.id, bytes);
  std::memcpy(dst, src, bytes);
  ++stats_.d2h_copies;
  stats_.d2h_bytes += bytes;
}

Stream Device::create_stream() { return Stream{next_stream_++}; }

Event Device::create_event() {
  event_us_.push_back(0);
  return Event{static_cast<int>(event_us_.size()) - 1};
}

void Device::record_event(Event& e, Stream) {
  check(e.id >= 0 && static_cast<std::size_t>(e.id) < event_us_.size(),
        "record_event: not an event from create_event");
  event_us_[static_cast<std::size_t>(e.id)] = Timer::now_micros();
}

double Device::elapsed_ms(const Event& start, const Event& stop) const {
  check(start.id >= 0 && static_cast<std::size_t>(start.id) < event_us_.size() &&
            stop.id >= 0 && static_cast<std::size_t>(stop.id) < event_us_.size(),
        "elapsed_ms: invalid event");
  const std::uint64_t a = event_us_[static_cast<std::size_t>(start.id)];
  const std::uint64_t b = event_us_[static_cast<std::size_t>(stop.id)];
  check(a != 0 && b != 0, "elapsed_ms: event was never recorded");
  return (static_cast<double>(b) - static_cast<double>(a)) / 1e3;
}

void Device::stream_synchronize(Stream) {}

void Device::synchronize() {}

void Device::launch(const char* name, const LaunchConfig& cfg,
                    const KernelFn& kernel) {
  check(cfg.grid_dim >= 1, "vgpu::launch: empty grid");
  check(cfg.block_dim >= 1 && cfg.block_dim <= props_.max_threads_per_block,
        strfmt("vgpu::launch(%s): block_dim %u exceeds device limit %u", name,
               cfg.block_dim, props_.max_threads_per_block));
  check(cfg.shared_bytes <= props_.shared_mem_per_block,
        strfmt("vgpu::launch(%s): %zu B shared memory exceeds the %zu B "
               "workgroup limit",
               name, cfg.shared_bytes, props_.shared_mem_per_block));

  ScopedTrace span(tracer_, name, TraceKind::kKernel, cfg.stream.id);
  ++stats_.kernel_launches;

  pool_->parallel_ranges(cfg.grid_dim, [&](unsigned rank, index_t b, index_t e) {
    auto& exec = execs_[rank];
    if (!exec) {
      exec = std::make_unique<BlockExec>(props_.max_threads_per_block,
                                         props_.shared_mem_per_block,
                                         props_.warp_size);
    }
    for (index_t blk = b; blk < e; ++blk) {
      exec->run_block(kernel, static_cast<unsigned>(blk), cfg.block_dim,
                      cfg.grid_dim, cfg.shared_bytes, cfg.needs_sync);
    }
  });
}

}  // namespace qhip::vgpu
