// Fault injection for the virtual GPU.
//
// The paper's port story is a robustness story: hipify gets a CUDA backend
// 95% of the way onto AMD hardware, and the remaining 5% — allocation
// failures, stream/runtime errors, timing skew — is what decides whether
// the backend survives production traffic. The emulator only fails
// deterministically on capacity arithmetic, so none of those paths can be
// exercised. A FaultPlan makes the virtual device misbehave on demand:
//
//   * hipMalloc can fail on the Nth allocation, every Nth allocation, or
//     for any request above a byte threshold (hipErrorOutOfMemory);
//   * stream ops (kernel launches, hipMemcpyAsync and their synchronous
//     forms) can return injected runtime errors — deferred to the next
//     synchronize on async streams, exactly like real deferred HIP errors;
//   * latency jitter can be added to stream ops, stretching the device
//     timeline without changing any result.
//
// Plans are built programmatically (FaultPlan::parse) or from the
// QHIP_FAULT_SPEC environment variable, which every Device reads at
// construction. Spec grammar (round-trips through to_spec()):
//
//   spec  := rule (';' rule)*
//   rule  := op ':' param (',' param)*
//   op    := 'malloc' | 'memcpy' | 'kernel' | 'latency'
//   param := 'nth=N'    fire exactly on the Nth occurrence (1-based), once
//          | 'every=N'  fire on occurrences N, 2N, 3N, ...
//          | 'over=B'   malloc only: fire when the request exceeds B bytes
//          | 'count=C'  cap the total injections of this rule (0 = no cap)
//          | 'ms=F'     latency only: delay injected per matching op
//
//   QHIP_FAULT_SPEC="malloc:nth=3;memcpy:every=10;latency:ms=2,every=4"
//
// Occurrence counters are device-wide and thread-safe (stream submitter
// threads consult the plan at op-execution time). Every injected fault is
// recorded in the Perfetto trace as a zero-duration "fault/..." event on
// the op's stream lane, so injected failures are visible in the same
// timeline as the kernels they break.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qhip::vgpu {

enum class FaultOp { kMalloc, kMemcpy, kKernel, kLatency };

const char* to_string(FaultOp op);

struct FaultRule {
  FaultOp op = FaultOp::kMalloc;
  std::uint64_t nth = 0;    // fire exactly on this occurrence (0 = unused)
  std::uint64_t every = 0;  // fire on every Nth occurrence (0 = unused)
  std::size_t over = 0;     // malloc: fire when bytes > over (0 = unused)
  std::uint64_t count = 0;  // cap on injections (0 = unlimited)
  double ms = 0;            // latency: injected delay per matching op
};

struct FaultStats {
  std::uint64_t malloc_oom = 0;
  std::uint64_t memcpy_faults = 0;
  std::uint64_t kernel_faults = 0;
  std::uint64_t latency_injections = 0;

  std::uint64_t total() const {
    return malloc_oom + memcpy_faults + kernel_faults + latency_injections;
  }
};

// A thread-safe fault schedule shared by one device (or, for multi-GCD
// backends, across all GCDs — occurrence counters are then global, which
// matches "the Nth allocation of the job" semantics).
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultRule> rules);

  // Parses the grammar above; throws qhip::Error with the offending token
  // on malformed specs. An empty spec yields an empty (never-firing) plan.
  static FaultPlan parse(const std::string& spec);

  // Plan from QHIP_FAULT_SPEC, or nullptr when the variable is unset/empty.
  static std::shared_ptr<FaultPlan> from_env();

  // Canonical spec string: parse(to_spec()) == *this (round-trip).
  std::string to_spec() const;

  bool empty() const { return rules_.empty(); }
  const std::vector<FaultRule>& rules() const { return rules_; }

  // Decision hooks, called by the device at op time. Each consumes one
  // occurrence of its kind and reports whether a fault fires for it.
  bool should_fail_malloc(std::size_t bytes);
  bool should_fail_memcpy();
  bool should_fail_kernel();
  // Milliseconds of injected delay for the next stream op (0 = none).
  double latency_ms();

  FaultStats stats() const;

 private:
  bool fire(FaultOp op, std::uint64_t occurrence, std::size_t bytes);

  std::vector<FaultRule> rules_;

  mutable std::mutex mu_;
  std::uint64_t seen_malloc_ = 0, seen_memcpy_ = 0, seen_kernel_ = 0,
                seen_latency_ = 0;
  std::vector<std::uint64_t> fired_;  // injections per rule
  FaultStats stats_;
};

}  // namespace qhip::vgpu
