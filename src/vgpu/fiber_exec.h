// Cooperative SIMT block executor.
//
// Executes one GPU thread block at a time. Three modes, chosen per launch:
//
//  * direct — threads run sequentially to completion on the calling host
//    thread. Zero scheduling overhead; any use of __syncthreads or wavefront
//    collectives is an error. Matches kernels like ApplyGateH_Kernel, which
//    need no intra-block communication.
//
//  * fiber — every block thread is a ucontext fiber; the scheduler
//    round-robins them and implements __syncthreads as a block-wide
//    rendezvous and warp collectives as publish/read exchanges with
//    warp-scoped rendezvous. Matches ApplyGateL_Kernel (shared-memory
//    staging) and the reduction kernels (warp shuffles). This is the default
//    for needs_sync launches.
//
//  * threaded — every block thread is a real host thread and the rendezvous
//    are mutex/condvar barriers. ThreadSanitizer builds use this instead of
//    fibers: libtsan's fiber API is broken in GCC 12 (SEGV inside
//    __tsan_create_fiber), and TSan cannot follow ucontext switches without
//    it. Real threads are primitives TSan models natively, so kernel
//    shared-memory use gets genuine race checking. Opt in elsewhere with
//    QHIP_BLOCK_EXEC=threads.
//
// A BlockExec instance is reused across blocks and launches; fiber stacks
// are allocated once. Instances are not thread-safe — the device keeps one
// per host worker.
#pragma once

#include <ucontext.h>

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/vgpu/kernel_ctx.h"

namespace qhip::vgpu {

using KernelFn = std::function<void(KernelCtx&)>;

class BlockExec {
 public:
  // `max_threads` bounds block_dim; `max_shared` bounds dynamic shared size.
  BlockExec(unsigned max_threads, std::size_t max_shared, unsigned warp_size);
  ~BlockExec();

  BlockExec(const BlockExec&) = delete;
  BlockExec& operator=(const BlockExec&) = delete;

  // Runs block `block_idx` of a grid with `grid_dim` blocks.
  void run_block(const KernelFn& kernel, unsigned block_idx, unsigned block_dim,
                 unsigned grid_dim, std::size_t shared_bytes, bool needs_sync);

  // --- called by KernelCtx from inside a running block thread ---
  void syncthreads(unsigned tid);
  std::uint64_t exchange(unsigned tid, std::uint64_t bits, unsigned src_lane);
  std::uint64_t ballot(unsigned tid, bool pred);

  unsigned warp_size() const { return warp_size_; }

 private:
  enum class St : std::uint8_t { kNotStarted, kRunnable, kAtBarrier, kAtWarpSync, kDone };

  struct Fiber {
    ucontext_t ctx;
    std::unique_ptr<std::byte[]> stack;
    St st = St::kNotStarted;
    std::uint64_t slot = 0;  // collective publish slot
  };

  static void trampoline();
  void fiber_main(unsigned tid);
  void yield_to_scheduler(unsigned tid);
  void warp_rendezvous(unsigned tid);
  void run_block_direct(const KernelFn& kernel, unsigned block_idx,
                        unsigned block_dim, unsigned grid_dim,
                        std::size_t shared_bytes);
  void run_block_fibers(const KernelFn& kernel, unsigned block_idx,
                        unsigned block_dim, unsigned grid_dim,
                        std::size_t shared_bytes);
  void run_block_threads(const KernelFn& kernel, unsigned block_idx,
                         unsigned block_dim, unsigned grid_dim,
                         std::size_t shared_bytes);
  void lane_thread_main(unsigned tid);
  void syncthreads_threaded(unsigned tid);
  void warp_rendezvous_threaded(unsigned tid);
  // Releases barriers/warp syncs whose membership is complete; returns true
  // if any fiber became runnable. (Fiber mode.)
  bool release_waiters();
  // Threaded-mode counterparts; both require tmu_ held.
  bool release_locked();
  void release_or_deadlock_locked();
  std::pair<unsigned, unsigned> warp_range(unsigned tid) const;

  unsigned max_threads_;
  unsigned warp_size_;
  std::size_t stack_bytes_;
  std::vector<Fiber> fibers_;
  std::vector<std::byte> shared_;

  // Per-run state.
  const KernelFn* kernel_ = nullptr;
  unsigned block_idx_ = 0;
  unsigned block_dim_ = 0;
  unsigned grid_dim_ = 0;
  std::size_t shared_bytes_ = 0;
  bool sync_enabled_ = false;  // collectives legal (fiber or threaded run)
  bool threaded_ = false;      // current sync run uses real threads
  ucontext_t sched_ctx_;
  std::exception_ptr error_;

  // Threaded-mode rendezvous state (all guarded by tmu_). Generation
  // counters implement the barriers: a waiter captures the counter, then
  // sleeps until it moves.
  std::mutex tmu_;
  std::condition_variable tcv_;
  bool abort_ = false;  // a lane failed or deadlocked; everyone unwinds
  std::uint64_t block_gen_ = 0;
  std::vector<std::uint64_t> warp_gen_;
};

}  // namespace qhip::vgpu
