#include "src/vgpu/stream_queue.h"

#include <utility>

namespace qhip::vgpu {

StreamQueue::StreamQueue(int id, std::function<void(StreamOp&)> execute)
    : id_(id), execute_(std::move(execute)), thread_([this] { run(); }) {}

StreamQueue::~StreamQueue() {
  // Drain first: pending ops carry side effects (memcpys, event records)
  // that other streams may be waiting on.
  wait_idle(/*rethrow=*/false);
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  thread_.join();
}

void StreamQueue::enqueue(StreamOp op) {
  {
    std::lock_guard lk(mu_);
    q_.push_back(std::move(op));
  }
  cv_work_.notify_one();
}

void StreamQueue::wait_idle(bool rethrow) {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [&] { return q_.empty() && !active_; });
  if (rethrow && error_) {
    auto ep = error_;
    error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(ep);
  }
}

bool StreamQueue::idle() const {
  std::lock_guard lk(mu_);
  return q_.empty() && !active_;
}

void StreamQueue::run() {
  for (;;) {
    StreamOp op;
    {
      std::unique_lock lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || !q_.empty(); });
      if (q_.empty()) {
        if (stop_) return;
        continue;
      }
      op = std::move(q_.front());
      q_.pop_front();
      active_ = true;
    }
    try {
      execute_(op);
    } catch (...) {
      std::lock_guard lk(mu_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard lk(mu_);
      active_ = false;
      if (q_.empty()) cv_idle_.notify_all();
    }
  }
}

}  // namespace qhip::vgpu
