// Virtual GPU device descriptions.
//
// The virtual runtime executes the GPU programming model (blocks, threads,
// wavefronts, shared memory) on the host; DeviceProps carries the
// architectural parameters that change program *behaviour* (warp width,
// shared-memory capacity, limits) plus the throughput numbers from the
// paper's Table 1 that the performance model uses to predict wall-clock
// times on the real parts.
#pragma once

#include <cstddef>
#include <string>

namespace qhip::vgpu {

struct DeviceProps {
  std::string name;

  // Execution model parameters (affect kernel behaviour in the emulator).
  unsigned warp_size = 64;                  // AMD wavefront 64, Nvidia warp 32
  std::size_t shared_mem_per_block = 64 << 10;
  unsigned max_threads_per_block = 1024;
  std::size_t global_mem_bytes = 0;         // device memory capacity

  // Throughput characteristics (Table 1; consumed by src/perfmodel).
  double mem_bw_gibps = 0;      // theoretical peak HBM bandwidth, GiB/s
  double peak_sp_tflops = 0;    // single-precision peak, TFLOP/s
  double kernel_launch_us = 0;  // per-launch fixed overhead, microseconds
};

// AMD Instinct MI250X, one Graphics Compute Die — the paper's GPU
// (Table 1: 128 GB HBM2e, 1638.4 GiB/s, 23.95 SP TFLOP/s, wavefront 64,
// 64 KiB LDS per workgroup).
DeviceProps mi250x_gcd();

// Nvidia A100-40GB — the comparison GPU (Table 1: 40 GB, 1448 GiB/s,
// 19.5 SP TFLOP/s vector; the paper lists 10.5 which is the FP64 TC figure,
// we keep the paper's table value; warp 32, up to 164 KiB shared/SM but
// 48 KiB default per block).
DeviceProps a100();

// A deliberately tiny device for unit tests (small shared memory and
// global memory so capacity errors are testable).
DeviceProps test_device(unsigned warp_size = 64);

// Largest state-vector qubit count whose 2^n amplitudes of `amp_bytes` each
// fit in the device's global memory, leaving `reserve_bytes` headroom for
// staging buffers (gate matrices, sampling scratch). 0 if nothing fits.
unsigned max_state_qubits(const DeviceProps& props, std::size_t amp_bytes,
                          std::size_t reserve_bytes = 1 << 20);

}  // namespace qhip::vgpu
