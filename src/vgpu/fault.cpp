#include "src/vgpu/fault.h"

#include <cstdlib>

#include "src/base/error.h"
#include "src/base/strings.h"

namespace qhip::vgpu {

namespace {

// Splits `s` on `sep`, dropping empty pieces (trailing ';' is harmless).
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    const std::string piece =
        s.substr(start, end == std::string::npos ? std::string::npos : end - start);
    if (!piece.empty()) out.push_back(piece);
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out;
}

FaultOp parse_op(const std::string& tok) {
  if (tok == "malloc") return FaultOp::kMalloc;
  if (tok == "memcpy") return FaultOp::kMemcpy;
  if (tok == "kernel") return FaultOp::kKernel;
  if (tok == "latency") return FaultOp::kLatency;
  throw Error("fault spec: unknown op '" + tok +
              "' (expected malloc|memcpy|kernel|latency)");
}

void validate(const FaultRule& r) {
  const bool has_trigger = r.nth != 0 || r.every != 0 || r.over != 0;
  if (r.op == FaultOp::kLatency) {
    check(r.ms > 0, "fault spec: latency rule requires ms=<positive>");
    check(r.over == 0, "fault spec: over= only applies to malloc");
  } else {
    check(r.ms == 0, "fault spec: ms= only applies to latency");
    check(has_trigger,
          strfmt("fault spec: %s rule needs a trigger (nth=, every= or over=)",
                 to_string(r.op)));
  }
  if (r.over != 0) {
    check(r.op == FaultOp::kMalloc, "fault spec: over= only applies to malloc");
  }
  check(!(r.nth != 0 && r.every != 0),
        "fault spec: nth= and every= are mutually exclusive in one rule");
}

}  // namespace

const char* to_string(FaultOp op) {
  switch (op) {
    case FaultOp::kMalloc: return "malloc";
    case FaultOp::kMemcpy: return "memcpy";
    case FaultOp::kKernel: return "kernel";
    case FaultOp::kLatency: return "latency";
  }
  return "?";
}

FaultPlan::FaultPlan(std::vector<FaultRule> rules) : rules_(std::move(rules)) {
  for (const FaultRule& r : rules_) validate(r);
  fired_.assign(rules_.size(), 0);
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  std::vector<FaultRule> rules;
  for (const std::string& rule_str : split(spec, ';')) {
    const std::size_t colon = rule_str.find(':');
    FaultRule r;
    r.op = parse_op(rule_str.substr(0, colon));
    if (colon != std::string::npos) {
      for (const std::string& param : split(rule_str.substr(colon + 1), ',')) {
        const std::size_t eq = param.find('=');
        check(eq != std::string::npos,
              "fault spec: parameter '" + param + "' is not key=value");
        const std::string key = param.substr(0, eq);
        const std::string value = param.substr(eq + 1);
        if (key == "nth") {
          r.nth = parse_uint(value, "fault spec nth");
          check(r.nth > 0, "fault spec: nth= must be >= 1");
        } else if (key == "every") {
          r.every = parse_uint(value, "fault spec every");
          check(r.every > 0, "fault spec: every= must be >= 1");
        } else if (key == "over") {
          r.over = static_cast<std::size_t>(parse_uint(value, "fault spec over"));
          check(r.over > 0, "fault spec: over= must be >= 1");
        } else if (key == "count") {
          r.count = parse_uint(value, "fault spec count");
        } else if (key == "ms") {
          r.ms = parse_double(value, "fault spec ms");
        } else {
          throw Error("fault spec: unknown parameter '" + key +
                      "' (expected nth|every|over|count|ms)");
        }
      }
    }
    rules.push_back(r);
  }
  return FaultPlan(std::move(rules));
}

std::shared_ptr<FaultPlan> FaultPlan::from_env() {
  const char* env = std::getenv("QHIP_FAULT_SPEC");
  if (env == nullptr || *env == '\0') return nullptr;
  return std::make_shared<FaultPlan>(parse(env).rules());
}

std::string FaultPlan::to_spec() const {
  std::string out;
  for (const FaultRule& r : rules_) {
    if (!out.empty()) out += ';';
    out += to_string(r.op);
    char prefix = ':';
    const auto add = [&](const char* key, const std::string& value) {
      out += prefix;
      prefix = ',';
      out += key;
      out += '=';
      out += value;
    };
    if (r.nth != 0) add("nth", std::to_string(r.nth));
    if (r.every != 0) add("every", std::to_string(r.every));
    if (r.over != 0) add("over", std::to_string(r.over));
    if (r.count != 0) add("count", std::to_string(r.count));
    if (r.ms != 0) add("ms", strfmt("%g", r.ms));
  }
  return out;
}

bool FaultPlan::fire(FaultOp op, std::uint64_t occurrence, std::size_t bytes) {
  bool fired = false;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    if (r.op != op) continue;
    if (r.count != 0 && fired_[i] >= r.count) continue;
    bool match = false;
    if (r.nth != 0) {
      match = occurrence == r.nth;
    } else if (r.every != 0) {
      match = occurrence % r.every == 0;
    }
    if (r.over != 0 && bytes > r.over) match = true;
    if (match) {
      ++fired_[i];
      fired = true;
    }
  }
  return fired;
}

bool FaultPlan::should_fail_malloc(std::size_t bytes) {
  std::lock_guard lk(mu_);
  if (fire(FaultOp::kMalloc, ++seen_malloc_, bytes)) {
    ++stats_.malloc_oom;
    return true;
  }
  return false;
}

bool FaultPlan::should_fail_memcpy() {
  std::lock_guard lk(mu_);
  if (fire(FaultOp::kMemcpy, ++seen_memcpy_, 0)) {
    ++stats_.memcpy_faults;
    return true;
  }
  return false;
}

bool FaultPlan::should_fail_kernel() {
  std::lock_guard lk(mu_);
  if (fire(FaultOp::kKernel, ++seen_kernel_, 0)) {
    ++stats_.kernel_faults;
    return true;
  }
  return false;
}

double FaultPlan::latency_ms() {
  std::lock_guard lk(mu_);
  const std::uint64_t occurrence = ++seen_latency_;
  double total = 0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    if (r.op != FaultOp::kLatency) continue;
    if (r.count != 0 && fired_[i] >= r.count) continue;
    if (r.nth != 0 && occurrence != r.nth) continue;
    if (r.every != 0 && occurrence % r.every != 0) continue;
    ++fired_[i];
    total += r.ms;
  }
  if (total > 0) ++stats_.latency_injections;
  return total;
}

FaultStats FaultPlan::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

}  // namespace qhip::vgpu
