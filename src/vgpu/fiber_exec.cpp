#include "src/vgpu/fiber_exec.h"

#include <algorithm>
#include <cstring>

#include "src/base/error.h"
#include "src/base/strings.h"

namespace qhip::vgpu {

namespace {

// makecontext() passes only int arguments portably; the scheduler instead
// parks the target (exec, tid) here immediately before swapping to a fresh
// fiber. All swaps happen on one host thread, so thread_local is exact.
thread_local BlockExec* g_exec = nullptr;
thread_local unsigned g_tid = 0;

constexpr std::size_t kStackBytes = 128 << 10;

}  // namespace

BlockExec::BlockExec(unsigned max_threads, std::size_t max_shared, unsigned warp_size)
    : max_threads_(max_threads),
      warp_size_(warp_size),
      stack_bytes_(kStackBytes),
      fibers_(max_threads),
      shared_(max_shared) {
  check(warp_size == 32 || warp_size == 64,
        "BlockExec: warp size must be 32 or 64");
}

BlockExec::~BlockExec() = default;

void BlockExec::run_block(const KernelFn& kernel, unsigned block_idx,
                          unsigned block_dim, unsigned grid_dim,
                          std::size_t shared_bytes, bool needs_sync) {
  check(block_dim >= 1 && block_dim <= max_threads_,
        strfmt("BlockExec: block_dim %u out of range [1, %u]", block_dim,
               max_threads_));
  check(shared_bytes <= shared_.size(),
        strfmt("BlockExec: %zu B dynamic shared memory exceeds the %zu B limit",
               shared_bytes, shared_.size()));
  if (needs_sync) {
    run_block_fibers(kernel, block_idx, block_dim, grid_dim, shared_bytes);
  } else {
    run_block_direct(kernel, block_idx, block_dim, grid_dim, shared_bytes);
  }
}

void BlockExec::run_block_direct(const KernelFn& kernel, unsigned block_idx,
                                 unsigned block_dim, unsigned grid_dim,
                                 std::size_t shared_bytes) {
  in_fiber_mode_ = false;
  for (unsigned tid = 0; tid < block_dim; ++tid) {
    KernelCtx ctx(this, tid, block_idx, block_dim, grid_dim, warp_size_,
                  shared_.data(), shared_bytes);
    kernel(ctx);
  }
}

void BlockExec::run_block_fibers(const KernelFn& kernel, unsigned block_idx,
                                 unsigned block_dim, unsigned grid_dim,
                                 std::size_t shared_bytes) {
  in_fiber_mode_ = true;
  kernel_ = &kernel;
  block_idx_ = block_idx;
  block_dim_ = block_dim;
  grid_dim_ = grid_dim;
  shared_bytes_ = shared_bytes;
  error_ = nullptr;

  for (unsigned t = 0; t < block_dim; ++t) {
    Fiber& f = fibers_[t];
    f.st = St::kNotStarted;
    if (!f.stack) f.stack = std::make_unique<std::byte[]>(stack_bytes_);
  }

  unsigned done = 0;
  unsigned cursor = 0;
  while (done < block_dim && !error_) {
    // Find the next startable or runnable fiber.
    unsigned chosen = block_dim;
    for (unsigned k = 0; k < block_dim; ++k) {
      const unsigned t = (cursor + k) % block_dim;
      if (fibers_[t].st == St::kNotStarted || fibers_[t].st == St::kRunnable) {
        chosen = t;
        break;
      }
    }
    if (chosen == block_dim) {
      if (release_waiters()) continue;
      // Nothing runnable, nothing releasable: the kernel deadlocked.
      unsigned waiting = 0, finished = 0;
      for (unsigned t = 0; t < block_dim; ++t) {
        if (fibers_[t].st == St::kDone) ++finished;
        else ++waiting;
      }
      kernel_ = nullptr;
      throw Error(strfmt(
          "vgpu: __syncthreads deadlock in block %u: %u thread(s) waiting at a "
          "barrier that %u already-exited thread(s) can never reach",
          block_idx, waiting, finished));
    }
    cursor = chosen + 1;

    Fiber& f = fibers_[chosen];
    if (f.st == St::kNotStarted) {
      getcontext(&f.ctx);
      f.ctx.uc_stack.ss_sp = f.stack.get();
      f.ctx.uc_stack.ss_size = stack_bytes_;
      f.ctx.uc_link = &sched_ctx_;
      makecontext(&f.ctx, &BlockExec::trampoline, 0);
    }
    f.st = St::kRunnable;
    g_exec = this;
    g_tid = chosen;
    swapcontext(&sched_ctx_, &f.ctx);
    if (fibers_[chosen].st == St::kRunnable) {
      // Came back via uc_link without an explicit yield: the fiber finished.
      fibers_[chosen].st = St::kDone;
    }
    done = 0;
    for (unsigned t = 0; t < block_dim; ++t) {
      if (fibers_[t].st == St::kDone) ++done;
    }
    release_waiters();
  }

  kernel_ = nullptr;
  if (error_) {
    auto ep = error_;
    error_ = nullptr;
    std::rethrow_exception(ep);
  }
}

void BlockExec::trampoline() {
  BlockExec* self = g_exec;
  const unsigned tid = g_tid;
  self->fiber_main(tid);
  // Falling off the end returns through uc_link to the scheduler, which
  // marks the fiber done.
}

void BlockExec::fiber_main(unsigned tid) {
  try {
    KernelCtx ctx(this, tid, block_idx_, block_dim_, grid_dim_, warp_size_,
                  shared_.data(), shared_bytes_);
    (*kernel_)(ctx);
  } catch (...) {
    // Propagate to the scheduler; sibling fibers are abandoned (their stacks
    // are reused, never unwound — device kernels must not own resources).
    if (!error_) error_ = std::current_exception();
  }
}

void BlockExec::yield_to_scheduler(unsigned tid) {
  swapcontext(&fibers_[tid].ctx, &sched_ctx_);
}

std::pair<unsigned, unsigned> BlockExec::warp_range(unsigned tid) const {
  const unsigned lo = tid / warp_size_ * warp_size_;
  return {lo, std::min(lo + warp_size_, block_dim_)};
}

bool BlockExec::release_waiters() {
  bool released = false;

  // Block barrier: every live fiber waits at it.
  unsigned live = 0, at_barrier = 0;
  for (unsigned t = 0; t < block_dim_; ++t) {
    if (fibers_[t].st != St::kDone) ++live;
    if (fibers_[t].st == St::kAtBarrier) ++at_barrier;
  }
  if (live > 0 && at_barrier == live) {
    for (unsigned t = 0; t < block_dim_; ++t) {
      if (fibers_[t].st == St::kAtBarrier) fibers_[t].st = St::kRunnable;
    }
    released = true;
  }

  // Warp rendezvous: every live lane of the warp waits at it.
  for (unsigned lo = 0; lo < block_dim_; lo += warp_size_) {
    const unsigned hi = std::min(lo + warp_size_, block_dim_);
    unsigned wlive = 0, wwait = 0;
    for (unsigned t = lo; t < hi; ++t) {
      if (fibers_[t].st != St::kDone) ++wlive;
      if (fibers_[t].st == St::kAtWarpSync) ++wwait;
    }
    if (wlive > 0 && wwait == wlive) {
      for (unsigned t = lo; t < hi; ++t) {
        if (fibers_[t].st == St::kAtWarpSync) fibers_[t].st = St::kRunnable;
      }
      released = true;
    }
  }
  return released;
}

void BlockExec::syncthreads(unsigned tid) {
  check(in_fiber_mode_,
        "vgpu: __syncthreads used in a launch without needs_sync "
        "(set LaunchConfig::needs_sync = true)");
  fibers_[tid].st = St::kAtBarrier;
  yield_to_scheduler(tid);
}

void BlockExec::warp_rendezvous(unsigned tid) {
  check(in_fiber_mode_,
        "vgpu: wavefront collective used in a launch without needs_sync "
        "(set LaunchConfig::needs_sync = true)");
  fibers_[tid].st = St::kAtWarpSync;
  yield_to_scheduler(tid);
}

std::uint64_t BlockExec::exchange(unsigned tid, std::uint64_t bits,
                                  unsigned src_lane) {
  fibers_[tid].slot = bits;
  warp_rendezvous(tid);  // publish complete across the warp
  const auto [lo, hi] = warp_range(tid);
  const unsigned src_tid = lo + src_lane;
  std::uint64_t out = bits;  // own value if the source lane is dead/missing
  if (src_tid < hi && fibers_[src_tid].st != St::kDone) {
    out = fibers_[src_tid].slot;
  }
  warp_rendezvous(tid);  // everyone has read; slots may be reused
  return out;
}

std::uint64_t BlockExec::ballot(unsigned tid, bool pred) {
  fibers_[tid].slot = pred ? 1 : 0;
  warp_rendezvous(tid);
  const auto [lo, hi] = warp_range(tid);
  std::uint64_t mask = 0;
  for (unsigned t = lo; t < hi; ++t) {
    if (fibers_[t].st != St::kDone && fibers_[t].slot) {
      mask |= std::uint64_t{1} << (t - lo);
    }
  }
  warp_rendezvous(tid);
  return mask;
}

}  // namespace qhip::vgpu

// Out-of-line KernelCtx members that need the BlockExec definition.
namespace qhip::vgpu {

void KernelCtx::syncthreads() { exec_->syncthreads(thread_idx_); }

std::uint64_t KernelCtx::ballot(bool pred) {
  return exec_->ballot(thread_idx_, pred);
}

std::uint64_t KernelCtx::exchange_raw(std::uint64_t bits, unsigned src_lane) {
  return exec_->exchange(thread_idx_, bits, src_lane);
}

}  // namespace qhip::vgpu
