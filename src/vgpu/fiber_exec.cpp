#include "src/vgpu/fiber_exec.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/base/error.h"
#include "src/base/strings.h"

// ThreadSanitizer cannot follow swapcontext(): the shadow stack
// desynchronizes and fiber code crashes or reports phantom races. The TSan
// runtime nominally ships a fiber API for this, but GCC 12's libtsan (the v3
// runtime) SEGVs inside __tsan_create_fiber itself, so it is unusable here.
// TSan builds instead run needs_sync blocks on real host threads (see
// run_block_threads below), which TSan models natively.
#if defined(__SANITIZE_THREAD__)
#define QHIP_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define QHIP_TSAN_BUILD 1
#endif
#endif

namespace qhip::vgpu {

namespace {

// makecontext() passes only int arguments portably; the scheduler instead
// parks the target (exec, tid) here immediately before swapping to a fresh
// fiber. All swaps happen on one host thread, so thread_local is exact.
thread_local BlockExec* g_exec = nullptr;
thread_local unsigned g_tid = 0;

constexpr std::size_t kStackBytes = 128 << 10;

// Thrown inside a lane thread to unwind it deliberately after a sibling lane
// failed or a deadlock was declared; never escapes this translation unit.
struct AbortLane {};

bool threaded_sync_mode() {
#ifdef QHIP_TSAN_BUILD
  return true;
#else
  const char* e = std::getenv("QHIP_BLOCK_EXEC");
  return e != nullptr && std::strcmp(e, "threads") == 0;
#endif
}

}  // namespace

BlockExec::BlockExec(unsigned max_threads, std::size_t max_shared, unsigned warp_size)
    : max_threads_(max_threads),
      warp_size_(warp_size),
      stack_bytes_(kStackBytes),
      fibers_(max_threads),
      shared_(max_shared) {
  check(warp_size == 32 || warp_size == 64,
        "BlockExec: warp size must be 32 or 64");
}

BlockExec::~BlockExec() = default;

void BlockExec::run_block(const KernelFn& kernel, unsigned block_idx,
                          unsigned block_dim, unsigned grid_dim,
                          std::size_t shared_bytes, bool needs_sync) {
  check(block_dim >= 1 && block_dim <= max_threads_,
        strfmt("BlockExec: block_dim %u out of range [1, %u]", block_dim,
               max_threads_));
  check(shared_bytes <= shared_.size(),
        strfmt("BlockExec: %zu B dynamic shared memory exceeds the %zu B limit",
               shared_bytes, shared_.size()));
  if (needs_sync) {
    static const bool use_threads = threaded_sync_mode();
    if (use_threads) {
      run_block_threads(kernel, block_idx, block_dim, grid_dim, shared_bytes);
    } else {
      run_block_fibers(kernel, block_idx, block_dim, grid_dim, shared_bytes);
    }
  } else {
    run_block_direct(kernel, block_idx, block_dim, grid_dim, shared_bytes);
  }
}

void BlockExec::run_block_direct(const KernelFn& kernel, unsigned block_idx,
                                 unsigned block_dim, unsigned grid_dim,
                                 std::size_t shared_bytes) {
  sync_enabled_ = false;
  for (unsigned tid = 0; tid < block_dim; ++tid) {
    KernelCtx ctx(this, tid, block_idx, block_dim, grid_dim, warp_size_,
                  shared_.data(), shared_bytes);
    kernel(ctx);
  }
}

void BlockExec::run_block_fibers(const KernelFn& kernel, unsigned block_idx,
                                 unsigned block_dim, unsigned grid_dim,
                                 std::size_t shared_bytes) {
  sync_enabled_ = true;
  threaded_ = false;
  kernel_ = &kernel;
  block_idx_ = block_idx;
  block_dim_ = block_dim;
  grid_dim_ = grid_dim;
  shared_bytes_ = shared_bytes;
  error_ = nullptr;

  for (unsigned t = 0; t < block_dim; ++t) {
    Fiber& f = fibers_[t];
    f.st = St::kNotStarted;
    if (!f.stack) f.stack = std::make_unique<std::byte[]>(stack_bytes_);
  }

  unsigned done = 0;
  unsigned cursor = 0;
  while (done < block_dim && !error_) {
    // Find the next startable or runnable fiber.
    unsigned chosen = block_dim;
    for (unsigned k = 0; k < block_dim; ++k) {
      const unsigned t = (cursor + k) % block_dim;
      if (fibers_[t].st == St::kNotStarted || fibers_[t].st == St::kRunnable) {
        chosen = t;
        break;
      }
    }
    if (chosen == block_dim) {
      if (release_waiters()) continue;
      // Nothing runnable, nothing releasable: the kernel deadlocked.
      unsigned waiting = 0, finished = 0;
      for (unsigned t = 0; t < block_dim; ++t) {
        if (fibers_[t].st == St::kDone) ++finished;
        else ++waiting;
      }
      kernel_ = nullptr;
      throw Error(strfmt(
          "vgpu: __syncthreads deadlock in block %u: %u thread(s) waiting at a "
          "barrier that %u already-exited thread(s) can never reach",
          block_idx, waiting, finished));
    }
    cursor = chosen + 1;

    Fiber& f = fibers_[chosen];
    if (f.st == St::kNotStarted) {
      getcontext(&f.ctx);
      f.ctx.uc_stack.ss_sp = f.stack.get();
      f.ctx.uc_stack.ss_size = stack_bytes_;
      f.ctx.uc_link = &sched_ctx_;
      makecontext(&f.ctx, &BlockExec::trampoline, 0);
    }
    f.st = St::kRunnable;
    g_exec = this;
    g_tid = chosen;
    swapcontext(&sched_ctx_, &f.ctx);
    if (fibers_[chosen].st == St::kRunnable) {
      // Came back via uc_link without an explicit yield: the fiber finished.
      fibers_[chosen].st = St::kDone;
    }
    done = 0;
    for (unsigned t = 0; t < block_dim; ++t) {
      if (fibers_[t].st == St::kDone) ++done;
    }
    release_waiters();
  }

  kernel_ = nullptr;
  if (error_) {
    auto ep = error_;
    error_ = nullptr;
    std::rethrow_exception(ep);
  }
}

void BlockExec::trampoline() {
  BlockExec* self = g_exec;
  const unsigned tid = g_tid;
  self->fiber_main(tid);
  // Falling off the end returns through uc_link to the scheduler, which
  // marks the fiber done.
}

void BlockExec::fiber_main(unsigned tid) {
  try {
    KernelCtx ctx(this, tid, block_idx_, block_dim_, grid_dim_, warp_size_,
                  shared_.data(), shared_bytes_);
    (*kernel_)(ctx);
  } catch (...) {
    // Propagate to the scheduler; sibling fibers are abandoned (their stacks
    // are reused, never unwound — device kernels must not own resources).
    if (!error_) error_ = std::current_exception();
  }
}

void BlockExec::yield_to_scheduler(unsigned tid) {
  swapcontext(&fibers_[tid].ctx, &sched_ctx_);
}

// --- threaded sync mode (TSan builds, or QHIP_BLOCK_EXEC=threads) ---

void BlockExec::run_block_threads(const KernelFn& kernel, unsigned block_idx,
                                  unsigned block_dim, unsigned grid_dim,
                                  std::size_t shared_bytes) {
  sync_enabled_ = true;
  threaded_ = true;
  kernel_ = &kernel;
  block_idx_ = block_idx;
  block_dim_ = block_dim;
  grid_dim_ = grid_dim;
  shared_bytes_ = shared_bytes;
  error_ = nullptr;
  abort_ = false;
  block_gen_ = 0;
  warp_gen_.assign((block_dim + warp_size_ - 1) / warp_size_, 0);
  for (unsigned t = 0; t < block_dim; ++t) {
    fibers_[t].st = St::kRunnable;
    fibers_[t].slot = 0;
  }

  std::vector<std::thread> lanes;
  lanes.reserve(block_dim);
  for (unsigned t = 0; t < block_dim; ++t) {
    lanes.emplace_back([this, t] { lane_thread_main(t); });
  }
  for (auto& th : lanes) th.join();

  threaded_ = false;
  kernel_ = nullptr;
  if (error_) {
    auto ep = error_;
    error_ = nullptr;
    std::rethrow_exception(ep);
  }
}

void BlockExec::lane_thread_main(unsigned tid) {
  try {
    KernelCtx ctx(this, tid, block_idx_, block_dim_, grid_dim_, warp_size_,
                  shared_.data(), shared_bytes_);
    (*kernel_)(ctx);
  } catch (const AbortLane&) {
    // Deliberate unwind after a sibling failure or deadlock; the run already
    // holds the error to rethrow.
  } catch (...) {
    std::lock_guard lk(tmu_);
    if (!error_) error_ = std::current_exception();
    abort_ = true;
  }
  std::lock_guard lk(tmu_);
  fibers_[tid].st = St::kDone;
  // This exit may complete a barrier's membership (live counts shrink), or
  // strand the remaining waiters in a deadlock.
  release_or_deadlock_locked();
  tcv_.notify_all();
}

void BlockExec::syncthreads_threaded(unsigned tid) {
  std::unique_lock lk(tmu_);
  fibers_[tid].st = St::kAtBarrier;
  const std::uint64_t gen = block_gen_;
  release_or_deadlock_locked();
  tcv_.wait(lk, [&] { return abort_ || block_gen_ != gen; });
  if (abort_) throw AbortLane{};
}

void BlockExec::warp_rendezvous_threaded(unsigned tid) {
  std::unique_lock lk(tmu_);
  fibers_[tid].st = St::kAtWarpSync;
  const unsigned w = tid / warp_size_;
  const std::uint64_t gen = warp_gen_[w];
  release_or_deadlock_locked();
  tcv_.wait(lk, [&] { return abort_ || warp_gen_[w] != gen; });
  if (abort_) throw AbortLane{};
}

bool BlockExec::release_locked() {
  bool released = false;

  // Block barrier: every live lane waits at it.
  unsigned live = 0, at_barrier = 0;
  for (unsigned t = 0; t < block_dim_; ++t) {
    if (fibers_[t].st != St::kDone) ++live;
    if (fibers_[t].st == St::kAtBarrier) ++at_barrier;
  }
  if (live > 0 && at_barrier == live) {
    for (unsigned t = 0; t < block_dim_; ++t) {
      if (fibers_[t].st == St::kAtBarrier) fibers_[t].st = St::kRunnable;
    }
    ++block_gen_;
    released = true;
  }

  // Warp rendezvous: every live lane of the warp waits at it.
  for (unsigned lo = 0, w = 0; lo < block_dim_; lo += warp_size_, ++w) {
    const unsigned hi = std::min(lo + warp_size_, block_dim_);
    unsigned wlive = 0, wwait = 0;
    for (unsigned t = lo; t < hi; ++t) {
      if (fibers_[t].st != St::kDone) ++wlive;
      if (fibers_[t].st == St::kAtWarpSync) ++wwait;
    }
    if (wlive > 0 && wwait == wlive) {
      for (unsigned t = lo; t < hi; ++t) {
        if (fibers_[t].st == St::kAtWarpSync) fibers_[t].st = St::kRunnable;
      }
      ++warp_gen_[w];
      released = true;
    }
  }

  if (released) tcv_.notify_all();
  return released;
}

void BlockExec::release_or_deadlock_locked() {
  if (release_locked()) return;
  unsigned live = 0, waiting = 0, finished = 0;
  for (unsigned t = 0; t < block_dim_; ++t) {
    switch (fibers_[t].st) {
      case St::kDone:
        ++finished;
        break;
      case St::kAtBarrier:
      case St::kAtWarpSync:
        ++live;
        ++waiting;
        break;
      default:
        ++live;
        break;
    }
  }
  // If every live lane is parked at a rendezvous nothing released, nothing
  // can ever change: declare the deadlock and unwind everyone.
  if (live == 0 || waiting < live || abort_) return;
  abort_ = true;
  if (!error_) {
    error_ = std::make_exception_ptr(Error(strfmt(
        "vgpu: __syncthreads deadlock in block %u: %u thread(s) waiting at a "
        "barrier that %u already-exited thread(s) can never reach",
        block_idx_, waiting, finished)));
  }
  tcv_.notify_all();
}

// --- collectives (mode-dispatched) ---

std::pair<unsigned, unsigned> BlockExec::warp_range(unsigned tid) const {
  const unsigned lo = tid / warp_size_ * warp_size_;
  return {lo, std::min(lo + warp_size_, block_dim_)};
}

bool BlockExec::release_waiters() {
  bool released = false;

  // Block barrier: every live fiber waits at it.
  unsigned live = 0, at_barrier = 0;
  for (unsigned t = 0; t < block_dim_; ++t) {
    if (fibers_[t].st != St::kDone) ++live;
    if (fibers_[t].st == St::kAtBarrier) ++at_barrier;
  }
  if (live > 0 && at_barrier == live) {
    for (unsigned t = 0; t < block_dim_; ++t) {
      if (fibers_[t].st == St::kAtBarrier) fibers_[t].st = St::kRunnable;
    }
    released = true;
  }

  // Warp rendezvous: every live lane of the warp waits at it.
  for (unsigned lo = 0; lo < block_dim_; lo += warp_size_) {
    const unsigned hi = std::min(lo + warp_size_, block_dim_);
    unsigned wlive = 0, wwait = 0;
    for (unsigned t = lo; t < hi; ++t) {
      if (fibers_[t].st != St::kDone) ++wlive;
      if (fibers_[t].st == St::kAtWarpSync) ++wwait;
    }
    if (wlive > 0 && wwait == wlive) {
      for (unsigned t = lo; t < hi; ++t) {
        if (fibers_[t].st == St::kAtWarpSync) fibers_[t].st = St::kRunnable;
      }
      released = true;
    }
  }
  return released;
}

void BlockExec::syncthreads(unsigned tid) {
  check(sync_enabled_,
        "vgpu: __syncthreads used in a launch without needs_sync "
        "(set LaunchConfig::needs_sync = true)");
  if (threaded_) {
    syncthreads_threaded(tid);
    return;
  }
  fibers_[tid].st = St::kAtBarrier;
  yield_to_scheduler(tid);
}

void BlockExec::warp_rendezvous(unsigned tid) {
  check(sync_enabled_,
        "vgpu: wavefront collective used in a launch without needs_sync "
        "(set LaunchConfig::needs_sync = true)");
  if (threaded_) {
    warp_rendezvous_threaded(tid);
    return;
  }
  fibers_[tid].st = St::kAtWarpSync;
  yield_to_scheduler(tid);
}

std::uint64_t BlockExec::exchange(unsigned tid, std::uint64_t bits,
                                  unsigned src_lane) {
  if (threaded_) {
    {
      std::lock_guard lk(tmu_);
      fibers_[tid].slot = bits;
    }
    warp_rendezvous(tid);  // publish complete across the warp
    std::uint64_t out = bits;  // own value if the source lane is dead/missing
    {
      std::lock_guard lk(tmu_);
      const auto [lo, hi] = warp_range(tid);
      const unsigned src_tid = lo + src_lane;
      if (src_tid < hi && fibers_[src_tid].st != St::kDone) {
        out = fibers_[src_tid].slot;
      }
    }
    warp_rendezvous(tid);  // everyone has read; slots may be reused
    return out;
  }

  fibers_[tid].slot = bits;
  warp_rendezvous(tid);  // publish complete across the warp
  const auto [lo, hi] = warp_range(tid);
  const unsigned src_tid = lo + src_lane;
  std::uint64_t out = bits;  // own value if the source lane is dead/missing
  if (src_tid < hi && fibers_[src_tid].st != St::kDone) {
    out = fibers_[src_tid].slot;
  }
  warp_rendezvous(tid);  // everyone has read; slots may be reused
  return out;
}

std::uint64_t BlockExec::ballot(unsigned tid, bool pred) {
  if (threaded_) {
    {
      std::lock_guard lk(tmu_);
      fibers_[tid].slot = pred ? 1 : 0;
    }
    warp_rendezvous(tid);
    std::uint64_t mask = 0;
    {
      std::lock_guard lk(tmu_);
      const auto [lo, hi] = warp_range(tid);
      for (unsigned t = lo; t < hi; ++t) {
        if (fibers_[t].st != St::kDone && fibers_[t].slot) {
          mask |= std::uint64_t{1} << (t - lo);
        }
      }
    }
    warp_rendezvous(tid);
    return mask;
  }

  fibers_[tid].slot = pred ? 1 : 0;
  warp_rendezvous(tid);
  const auto [lo, hi] = warp_range(tid);
  std::uint64_t mask = 0;
  for (unsigned t = lo; t < hi; ++t) {
    if (fibers_[t].st != St::kDone && fibers_[t].slot) {
      mask |= std::uint64_t{1} << (t - lo);
    }
  }
  warp_rendezvous(tid);
  return mask;
}

}  // namespace qhip::vgpu

// Out-of-line KernelCtx members that need the BlockExec definition.
namespace qhip::vgpu {

void KernelCtx::syncthreads() { exec_->syncthreads(thread_idx_); }

std::uint64_t KernelCtx::ballot(bool pred) {
  return exec_->ballot(thread_idx_, pred);
}

std::uint64_t KernelCtx::exchange_raw(std::uint64_t bits, unsigned src_lane) {
  return exec_->exchange(thread_idx_, bits, src_lane);
}

}  // namespace qhip::vgpu
