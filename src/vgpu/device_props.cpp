#include "src/vgpu/device_props.h"

namespace qhip::vgpu {

DeviceProps mi250x_gcd() {
  DeviceProps p;
  p.name = "AMD Instinct MI250X (1 GCD)";
  p.warp_size = 64;
  p.shared_mem_per_block = 64 << 10;
  p.max_threads_per_block = 1024;
  p.global_mem_bytes = 128ull << 30;
  p.mem_bw_gibps = 1638.4;
  p.peak_sp_tflops = 23.95;
  p.kernel_launch_us = 7.0;  // ROCm launch latency is higher than CUDA's
  return p;
}

DeviceProps a100() {
  DeviceProps p;
  p.name = "NVIDIA A100-40GB";
  p.warp_size = 32;
  p.shared_mem_per_block = 48 << 10;
  p.max_threads_per_block = 1024;
  p.global_mem_bytes = 40ull << 30;
  p.mem_bw_gibps = 1448.0;
  p.peak_sp_tflops = 10.5;  // value as reported in the paper's Table 1
  p.kernel_launch_us = 3.0;
  return p;
}

DeviceProps test_device(unsigned warp_size) {
  DeviceProps p;
  p.name = "virtual test device";
  p.warp_size = warp_size;
  p.shared_mem_per_block = 16 << 10;
  p.max_threads_per_block = 256;
  p.global_mem_bytes = 1ull << 30;
  p.mem_bw_gibps = 100.0;
  p.peak_sp_tflops = 1.0;
  p.kernel_launch_us = 5.0;
  return p;
}

unsigned max_state_qubits(const DeviceProps& props, std::size_t amp_bytes,
                          std::size_t reserve_bytes) {
  if (props.global_mem_bytes <= reserve_bytes || amp_bytes == 0) return 0;
  const std::size_t amps = (props.global_mem_bytes - reserve_bytes) / amp_bytes;
  unsigned n = 0;
  while (n < 63 && (std::size_t{2} << n) <= amps) ++n;
  return n;
}

}  // namespace qhip::vgpu
