#include "src/io/circuit_io.h"

#include <charconv>
#include <fstream>
#include <functional>
#include <map>
#include <ostream>
#include <sstream>

#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/core/gates.h"

namespace qhip {

namespace {

using Tokens = std::vector<std::string_view>;

// Loader rejections carry kMalformedInput so the serving layer can tell a
// bad payload (non-retryable, client's fault) from an engine-side fault.
void check_input(bool cond, const std::string& msg) {
  if (!cond) throw CodedError(ErrorCode::kMalformedInput, msg);
}

// Pops `n` qubit arguments from tok starting at *pos.
std::vector<qubit_t> pop_qubits(const Tokens& tok, std::size_t* pos, std::size_t n,
                                const std::string& ctx) {
  check(tok.size() >= *pos + n, ctx + ": missing qubit argument");
  std::vector<qubit_t> qs;
  qs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    qs.push_back(static_cast<qubit_t>(parse_uint(tok[(*pos)++], ctx)));
  }
  return qs;
}

std::vector<double> pop_params(const Tokens& tok, std::size_t* pos, std::size_t n,
                               const std::string& ctx) {
  check(tok.size() >= *pos + n, ctx + ": missing parameter");
  std::vector<double> ps;
  ps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ps.push_back(parse_double(tok[(*pos)++], ctx));
  }
  return ps;
}

std::vector<cplx64> pop_matrix(const Tokens& tok, std::size_t* pos, std::size_t dim,
                               const std::string& ctx) {
  const std::vector<double> flat = pop_params(tok, pos, 2 * dim * dim, ctx);
  std::vector<cplx64> m(dim * dim);
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = {flat[2 * i], flat[2 * i + 1]};
  return m;
}

// Builds a gate from tokens following the time field. `*pos` starts at the
// mnemonic and must end at the line's last token.
Gate parse_gate(unsigned time, const Tokens& tok, std::size_t* pos,
                const std::string& ctx) {
  check(*pos < tok.size(), ctx + ": missing gate name");
  const std::string name = to_lower(tok[(*pos)++]);

  using GF = std::function<Gate(unsigned, const Tokens&, std::size_t*, const std::string&)>;
  static const std::map<std::string, GF> table = {
      {"id1", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         return gates::id1(t, pop_qubits(tk, p, 1, c)[0]); }},
      {"h", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         return gates::h(t, pop_qubits(tk, p, 1, c)[0]); }},
      {"x", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         return gates::x(t, pop_qubits(tk, p, 1, c)[0]); }},
      {"y", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         return gates::y(t, pop_qubits(tk, p, 1, c)[0]); }},
      {"z", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         return gates::z(t, pop_qubits(tk, p, 1, c)[0]); }},
      {"s", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         return gates::s(t, pop_qubits(tk, p, 1, c)[0]); }},
      {"sdg", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         return gates::sdg(t, pop_qubits(tk, p, 1, c)[0]); }},
      {"t", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         return gates::t(t, pop_qubits(tk, p, 1, c)[0]); }},
      {"tdg", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         return gates::tdg(t, pop_qubits(tk, p, 1, c)[0]); }},
      {"x_1_2", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         return gates::x_1_2(t, pop_qubits(tk, p, 1, c)[0]); }},
      {"y_1_2", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         return gates::y_1_2(t, pop_qubits(tk, p, 1, c)[0]); }},
      {"hz_1_2", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         return gates::hz_1_2(t, pop_qubits(tk, p, 1, c)[0]); }},
      {"rx", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         const auto q = pop_qubits(tk, p, 1, c);
         return gates::rx(t, q[0], pop_params(tk, p, 1, c)[0]); }},
      {"ry", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         const auto q = pop_qubits(tk, p, 1, c);
         return gates::ry(t, q[0], pop_params(tk, p, 1, c)[0]); }},
      {"rz", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         const auto q = pop_qubits(tk, p, 1, c);
         return gates::rz(t, q[0], pop_params(tk, p, 1, c)[0]); }},
      {"rxy", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         const auto q = pop_qubits(tk, p, 1, c);
         const auto a = pop_params(tk, p, 2, c);
         return gates::rxy(t, q[0], a[0], a[1]); }},
      {"p", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         const auto q = pop_qubits(tk, p, 1, c);
         return gates::p(t, q[0], pop_params(tk, p, 1, c)[0]); }},
      {"mg1", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         const auto q = pop_qubits(tk, p, 1, c);
         return gates::mg1(t, q[0], pop_matrix(tk, p, 2, c)); }},
      {"id2", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         const auto q = pop_qubits(tk, p, 2, c);
         return gates::id2(t, q[0], q[1]); }},
      {"cz", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         const auto q = pop_qubits(tk, p, 2, c);
         return gates::cz(t, q[0], q[1]); }},
      {"cnot", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         const auto q = pop_qubits(tk, p, 2, c);
         return gates::cnot(t, q[0], q[1]); }},
      {"cx", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         const auto q = pop_qubits(tk, p, 2, c);
         return gates::cnot(t, q[0], q[1]); }},
      {"sw", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         const auto q = pop_qubits(tk, p, 2, c);
         return gates::sw(t, q[0], q[1]); }},
      {"is", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         const auto q = pop_qubits(tk, p, 2, c);
         return gates::is(t, q[0], q[1]); }},
      {"fs", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         const auto q = pop_qubits(tk, p, 2, c);
         const auto a = pop_params(tk, p, 2, c);
         return gates::fs(t, q[0], q[1], a[0], a[1]); }},
      {"cp", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         const auto q = pop_qubits(tk, p, 2, c);
         return gates::cp(t, q[0], q[1], pop_params(tk, p, 1, c)[0]); }},
      {"mg2", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         const auto q = pop_qubits(tk, p, 2, c);
         return gates::mg2(t, q[0], q[1], pop_matrix(tk, p, 4, c)); }},
      {"ccz", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         const auto q = pop_qubits(tk, p, 3, c);
         return gates::ccz(t, q[0], q[1], q[2]); }},
      {"ccx", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         const auto q = pop_qubits(tk, p, 3, c);
         return gates::ccx(t, q[0], q[1], q[2]); }},
      {"m", [](unsigned t, const Tokens& tk, std::size_t* p, const std::string& c) {
         const std::size_t rest = tk.size() - *p;
         check(rest >= 1, c + ": measurement needs at least one qubit");
         return gates::measure(t, pop_qubits(tk, p, rest, c)); }},
  };

  const auto it = table.find(name);
  check(it != table.end(), ctx + ": unknown gate '" + name + "'");
  return it->second(time, tok, pos, ctx + " (" + name + ")");
}

void write_gate(const Gate& g, std::ostream& out) {
  out << g.time;
  if (!g.controls.empty()) {
    out << " c";
    for (qubit_t q : g.controls) out << ' ' << q;
  }
  out << ' ' << g.name;
  for (qubit_t q : g.qubits) out << ' ' << q;
  if (g.name == "mg1" || g.name == "mg2") {
    for (const cplx64& v : g.matrix.data()) {
      out << ' ' << v.real() << ' ' << v.imag();
    }
  } else {
    for (double pv : g.params) out << ' ' << pv;
  }
  out << '\n';
}

}  // namespace

Circuit read_circuit(std::istream& in, const std::string& source_name) {
  Circuit c;
  std::string line;
  std::size_t lineno = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string_view body = trim(line);
    if (body.empty() || body[0] == '#') continue;
    const std::string ctx = source_name + ":" + std::to_string(lineno);
    const Tokens tok = split(body);
    if (!have_header) {
      check(tok.size() == 1, ctx + ": first line must be the qubit count");
      c.num_qubits = static_cast<unsigned>(parse_uint(tok[0], ctx));
      have_header = true;
      continue;
    }
    std::size_t pos = 0;
    const unsigned time = static_cast<unsigned>(parse_uint(tok[pos++], ctx));
    std::vector<qubit_t> controls;
    if (pos < tok.size() && tok[pos] == "c") {
      ++pos;
      // Controls run until the next non-integer token (the mnemonic).
      while (pos < tok.size()) {
        unsigned long long v = 0;
        const auto* s = tok[pos].data();
        const auto [e, ec] = std::from_chars(s, s + tok[pos].size(), v);
        if (ec != std::errc{} || e != s + tok[pos].size()) break;
        controls.push_back(static_cast<qubit_t>(v));
        ++pos;
      }
      check(!controls.empty(), ctx + ": 'c' with no control qubits");
    }
    Gate g = parse_gate(time, tok, &pos, ctx);
    check(pos == tok.size(), ctx + ": trailing tokens after gate definition");
    if (!controls.empty()) g = gates::controlled(std::move(g), std::move(controls));
    c.gates.push_back(std::move(g));
  }
  // getline loops exit on either EOF (fine) or a stream-level read error
  // (badbit): a short read from a truncated or failing file must not be
  // silently accepted as a complete circuit.
  check_input(!in.bad(),
              source_name + ": I/O error mid-read (truncated input?)");
  check_input(have_header, source_name + ": empty circuit file");
  c.validate();
  return c;
}

Circuit read_circuit_file(const std::string& path) {
  std::ifstream f(path);
  check(f.good(), "cannot open circuit file '" + path + "'");
  return read_circuit(f, path);
}

Circuit read_circuit_string(const std::string& text) {
  std::istringstream ss(text);
  return read_circuit(ss, "<string>");
}

void write_circuit(const Circuit& c, std::ostream& out) {
  out << c.num_qubits << '\n';
  for (const auto& g : c.gates) write_gate(g, out);
}

std::string write_circuit_string(const Circuit& c) {
  std::ostringstream ss;
  ss.precision(17);
  write_circuit(c, ss);
  return ss.str();
}

void write_circuit_file(const Circuit& c, const std::string& path) {
  std::ofstream f(path);
  check(f.good(), "cannot open '" + path + "' for writing");
  f.precision(17);
  write_circuit(c, f);
  check(f.good(), "write to '" + path + "' failed");
}

}  // namespace qhip
