// OpenQASM 2.0 interoperability.
//
// Export covers the full qsim gate set: gates with direct qelib1
// equivalents map one-to-one; every other single-qubit gate is emitted as
// a numerically-derived u3 (exact up to global phase); iSWAP and fSim are
// expanded with standard decompositions:
//
//   iswap a,b        = s a; s b; h a; cx a,b; cx b,a; h b
//   fsim(th,phi) a,b = rxx(th) . ryy(th) . cu1(-phi)
//
// where rxx/ryy are the usual H/RX-conjugated CX-RZ-CX blocks. Fused
// matrix gates (width > 2) cannot be represented and are rejected —
// export the unfused circuit.
//
// Import parses the subset the exporter emits (plus measure), enough for
// round-tripping and for ingesting simple external circuits. Round-trip
// equality is up to global phase (u3 fixes a phase convention), which the
// tests check with a phase-normalized unitary distance.
#pragma once

#include <iosfwd>
#include <string>

#include "src/core/circuit.h"

namespace qhip {

// Serializes to OpenQASM 2.0. Throws qhip::Error for gates wider than two
// qubits or controlled gates with more than one control (fold or unfuse
// first).
void write_qasm(const Circuit& c, std::ostream& out);
std::string write_qasm_string(const Circuit& c);

// Parses the supported OpenQASM 2.0 subset: one qreg, optional cregs,
// qelib1 one/two-qubit gates, u1/u2/u3, rx/ry/rz, cx/cz/swap, barrier
// (ignored) and measure. Throws qhip::Error with line context on anything
// else.
Circuit read_qasm(const std::string& text);

}  // namespace qhip
