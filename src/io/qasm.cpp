#include "src/io/qasm.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <ostream>
#include <sstream>

#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/core/gates.h"

namespace qhip {

namespace {

using std::numbers::pi;

struct U3 {
  double theta, phi, lambda, alpha;  // U = e^{i alpha} * u3(theta, phi, lambda)
};

// Extracts u3 angles from an arbitrary 2x2 unitary.
// u3(t,p,l) = [[cos(t/2), -e^{il} sin(t/2)], [e^{ip} sin(t/2), e^{i(p+l)} cos(t/2)]]
U3 to_u3(const CMatrix& m) {
  check(m.dim() == 2, "to_u3: not a single-qubit matrix");
  const cplx64 u00 = m.at(0, 0), u01 = m.at(0, 1);
  const cplx64 u10 = m.at(1, 0);
  const cplx64 u11 = m.at(1, 1);
  U3 r{};
  r.theta = 2.0 * std::atan2(std::abs(u10), std::abs(u00));
  if (std::abs(u10) <= 1e-12) {
    // Diagonal (theta = 0): U = e^{i alpha} diag(1, e^{i lambda}); fix phi = 0.
    r.alpha = std::arg(u00);
    r.phi = 0.0;
    r.lambda = std::abs(u11) > 1e-12 ? std::arg(u11) - r.alpha : 0.0;
  } else if (std::abs(u00) <= 1e-12) {
    // Anti-diagonal (theta = pi): U = e^{i alpha} [[0, -e^{il}], [e^{ip}, 0]];
    // fix lambda = 0.
    r.lambda = 0.0;
    r.alpha = std::arg(-u01);
    r.phi = std::arg(u10) - r.alpha;
  } else {
    r.alpha = std::arg(u00);
    r.phi = std::arg(u10) - r.alpha;
    r.lambda = std::arg(-u01) - r.alpha;
  }
  return r;
}

std::string num(double v) {
  // Compact but lossless-enough formatting for angles.
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

class QasmWriter {
 public:
  explicit QasmWriter(const Circuit& c, std::ostream& out) : c_(c), out_(out) {}

  void write() {
    c_.validate();
    out_ << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
    out_ << "qreg q[" << c_.num_qubits << "];\n";
    if (c_.num_measurements() > 0) {
      out_ << "creg c[" << c_.num_qubits << "];\n";
    }
    for (const auto& g : c_.gates) emit(g);
  }

 private:
  std::string q(qubit_t i) const { return "q[" + std::to_string(i) + "]"; }

  void line(const std::string& s) { out_ << s << ";\n"; }

  void emit_u3(const CMatrix& m, qubit_t t) {
    const U3 u = to_u3(m);
    line("u3(" + num(u.theta) + "," + num(u.phi) + "," + num(u.lambda) + ") " +
         q(t));
  }

  void emit_controlled(const Gate& g) {
    check(g.controls.size() == 1 && g.num_targets() == 1,
          "write_qasm: only single-control single-target controlled gates "
          "(fold multi-control gates first)");
    const qubit_t c = g.controls[0], t = g.qubits[0];
    const U3 u = to_u3(g.matrix);
    if (std::abs(u.alpha) > 1e-12) {
      line("u1(" + num(u.alpha) + ") " + q(c));
    }
    line("cu3(" + num(u.theta) + "," + num(u.phi) + "," + num(u.lambda) + ") " +
         q(c) + "," + q(t));
  }

  void emit_iswap(qubit_t a, qubit_t b) {
    line("s " + q(a));
    line("s " + q(b));
    line("h " + q(a));
    line("cx " + q(a) + "," + q(b));
    line("cx " + q(b) + "," + q(a));
    line("h " + q(b));
  }

  void emit_rxx(double theta, qubit_t a, qubit_t b) {
    line("h " + q(a));
    line("h " + q(b));
    line("cx " + q(a) + "," + q(b));
    line("rz(" + num(theta) + ") " + q(b));
    line("cx " + q(a) + "," + q(b));
    line("h " + q(a));
    line("h " + q(b));
  }

  void emit_ryy(double theta, qubit_t a, qubit_t b) {
    line("rx(" + num(pi / 2) + ") " + q(a));
    line("rx(" + num(pi / 2) + ") " + q(b));
    line("cx " + q(a) + "," + q(b));
    line("rz(" + num(theta) + ") " + q(b));
    line("cx " + q(a) + "," + q(b));
    line("rx(" + num(-pi / 2) + ") " + q(a));
    line("rx(" + num(-pi / 2) + ") " + q(b));
  }

  void emit(const Gate& g) {
    if (g.is_measurement()) {
      for (qubit_t t : g.qubits) {
        line("measure " + q(t) + " -> c[" + std::to_string(t) + "]");
      }
      return;
    }
    if (!g.controls.empty()) {
      emit_controlled(g);
      return;
    }
    const auto& n = g.name;
    if (g.num_targets() == 1) {
      const qubit_t t = g.qubits[0];
      if (n == "id1") line("id " + q(t));
      else if (n == "h" || n == "x" || n == "y" || n == "z" || n == "s" ||
               n == "sdg" || n == "t" || n == "tdg") line(n + " " + q(t));
      else if (n == "rx" || n == "ry" || n == "rz")
        line(n + "(" + num(g.params[0]) + ") " + q(t));
      else if (n == "p")
        line("u1(" + num(g.params[0]) + ") " + q(t));
      else
        emit_u3(g.matrix, t);  // x_1_2, y_1_2, hz_1_2, rxy, mg1, fused-1q
      return;
    }
    if (g.num_targets() == 2) {
      const qubit_t a = g.qubits[0], b = g.qubits[1];
      if (n == "id2") return;  // identity: nothing to emit
      if (n == "cz") { line("cz " + q(a) + "," + q(b)); return; }
      if (n == "cnot") { line("cx " + q(a) + "," + q(b)); return; }
      if (n == "sw") { line("swap " + q(a) + "," + q(b)); return; }
      if (n == "cp") { line("cu1(" + num(g.params[0]) + ") " + q(a) + "," + q(b)); return; }
      if (n == "is") { emit_iswap(a, b); return; }
      if (n == "fs") {
        // fsim(theta, phi) = RXX(theta) . RYY(theta) . cu1(-phi)
        emit_rxx(g.params[0], a, b);
        emit_ryy(g.params[0], a, b);
        if (std::abs(g.params[1]) > 1e-15) {
          line("cu1(" + num(-g.params[1]) + ") " + q(a) + "," + q(b));
        }
        return;
      }
      throw Error("write_qasm: no OpenQASM decomposition for 2-qubit gate '" +
                  n + "' (unfuse the circuit first)");
    }
    if (n == "ccx") {
      line("ccx " + q(g.qubits[0]) + "," + q(g.qubits[1]) + "," + q(g.qubits[2]));
      return;
    }
    if (n == "ccz") {
      line("h " + q(g.qubits[2]));
      line("ccx " + q(g.qubits[0]) + "," + q(g.qubits[1]) + "," + q(g.qubits[2]));
      line("h " + q(g.qubits[2]));
      return;
    }
    throw Error("write_qasm: gate '" + n + "' wider than 2 qubits is not "
                "representable (export the unfused circuit)");
  }

  const Circuit& c_;
  std::ostream& out_;
};

// --- import -------------------------------------------------------------------

// Evaluates the angle expressions qelib-style files use: [-]term[(*|/)num],
// term = number | pi.
double eval_angle(std::string_view s, const std::string& ctx) {
  s = trim(s);
  check(!s.empty(), ctx + ": empty angle");
  double sign = 1;
  if (s.front() == '-') {
    sign = -1;
    s = trim(s.substr(1));
  } else if (s.front() == '+') {
    s = trim(s.substr(1));
  }
  // Split on * or /.
  for (char op : {'*', '/'}) {
    const std::size_t pos = s.find(op);
    if (pos != std::string_view::npos) {
      const double lhs = eval_angle(s.substr(0, pos), ctx);
      const double rhs = eval_angle(s.substr(pos + 1), ctx);
      check(op != '/' || rhs != 0, ctx + ": division by zero");
      return sign * (op == '*' ? lhs * rhs : lhs / rhs);
    }
  }
  if (s == "pi") return sign * pi;
  return sign * parse_double(s, ctx);
}

struct Stmt {
  std::string name;
  std::vector<double> params;
  std::vector<qubit_t> qubits;
};

// Malformed-payload rejections carry kMalformedInput so callers (and the
// serving layer) can classify them without string-matching what().
void check_input(bool cond, const std::string& msg) {
  if (!cond) throw CodedError(ErrorCode::kMalformedInput, msg);
}

class QasmReader {
 public:
  explicit QasmReader(const std::string& text) : text_(text) {}

  Circuit read() {
    std::istringstream is(text_);
    std::string raw;
    std::size_t lineno = 0;
    bool header_seen = false;
    while (std::getline(is, raw, ';')) {
      // If getline hit end-of-text instead of a ';', this chunk is the tail
      // after the last terminated statement. Anything non-blank there is a
      // statement whose ';' got cut off — the signature of a truncated file.
      const bool unterminated = is.eof();
      lineno += static_cast<std::size_t>(std::count(raw.begin(), raw.end(), '\n'));
      std::string stmt = strip_comments(raw);
      const std::string_view body = trim(stmt);
      if (body.empty()) continue;
      const std::string ctx = "<qasm>:" + std::to_string(lineno + 1);
      check_input(!unterminated,
                  ctx + ": unterminated statement '" + std::string(body) +
                      "' (missing ';' — truncated input?)");
      if (starts_with(body, "OPENQASM")) {
        check_input(trim(body.substr(8)) == "2.0",
                    ctx + ": only OPENQASM 2.0 is supported");
        header_seen = true;
        continue;
      }
      if (starts_with(body, "include") || starts_with(body, "barrier") ||
          starts_with(body, "creg")) {
        continue;
      }
      if (starts_with(body, "qreg")) {
        parse_qreg(body, ctx);
        continue;
      }
      if (starts_with(body, "measure")) {
        parse_measure(body, ctx);
        continue;
      }
      apply_stmt(parse_stmt(body, ctx), ctx);
    }
    check(header_seen, "read_qasm: missing OPENQASM 2.0 header");
    check(c_.num_qubits > 0, "read_qasm: missing qreg declaration");
    c_.validate();
    return std::move(c_);
  }

 private:
  static std::string strip_comments(const std::string& s) {
    std::string out;
    std::istringstream is(s);
    std::string ln;
    while (std::getline(is, ln)) {
      const std::size_t pos = ln.find("//");
      out += pos == std::string::npos ? ln : ln.substr(0, pos);
      out += ' ';
    }
    return out;
  }

  void parse_qreg(std::string_view body, const std::string& ctx) {
    check(c_.num_qubits == 0, ctx + ": only one qreg is supported");
    const std::size_t lb = body.find('['), rb = body.find(']');
    check(lb != std::string_view::npos && rb != std::string_view::npos && rb > lb,
          ctx + ": malformed qreg");
    const auto name = trim(body.substr(5, lb - 5));
    check(!name.empty(), ctx + ": qreg needs a name");
    check_input(trim(body.substr(rb + 1)).empty(),
                ctx + ": trailing garbage after qreg declaration");
    reg_ = std::string(name);
    c_.num_qubits = static_cast<unsigned>(
        parse_uint(body.substr(lb + 1, rb - lb - 1), ctx));
  }

  qubit_t parse_qubit(std::string_view tok, const std::string& ctx) const {
    const std::size_t lb = tok.find('['), rb = tok.find(']');
    check(lb != std::string_view::npos && rb != std::string_view::npos && rb > lb,
          ctx + ": expected q[i], got '" + std::string(tok) + "'");
    // The operand token must END at the ']' — "q[0]junk" is not a qubit.
    check_input(trim(tok.substr(rb + 1)).empty(),
                ctx + ": trailing garbage after qubit operand '" +
                    std::string(tok) + "'");
    check(std::string(trim(tok.substr(0, lb))) == reg_,
          ctx + ": unknown register in '" + std::string(tok) + "'");
    return static_cast<qubit_t>(parse_uint(tok.substr(lb + 1, rb - lb - 1), ctx));
  }

  void parse_measure(std::string_view body, const std::string& ctx) {
    const std::size_t arrow = body.find("->");
    check(arrow != std::string_view::npos, ctx + ": measure needs '->'");
    const qubit_t t = parse_qubit(trim(body.substr(7, arrow - 7)), ctx);
    c_.gates.push_back(gates::measure(next_time_++, {t}));
  }

  Stmt parse_stmt(std::string_view body, const std::string& ctx) const {
    Stmt st;
    std::size_t i = 0;
    while (i < body.size() && (ident_char(body[i]))) ++i;
    st.name = to_lower(body.substr(0, i));
    check(!st.name.empty(), ctx + ": expected a gate name");
    std::string_view rest = trim(body.substr(i));
    if (!rest.empty() && rest.front() == '(') {
      const std::size_t close = rest.find(')');
      check(close != std::string_view::npos, ctx + ": unbalanced parameters");
      for (const auto& tok : split(rest.substr(1, close - 1), ",")) {
        st.params.push_back(eval_angle(tok, ctx));
      }
      rest = trim(rest.substr(close + 1));
    }
    for (const auto& tok : split(rest, ",")) {
      st.qubits.push_back(parse_qubit(trim(tok), ctx));
    }
    return st;
  }

  static bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  }

  static CMatrix u3_matrix(double t, double p, double l) {
    const double c = std::cos(t / 2), s = std::sin(t / 2);
    return CMatrix(2, {cplx64{c}, -std::polar(1.0, l) * s,
                       std::polar(1.0, p) * s, std::polar(1.0, p + l) * c});
  }

  void need(const Stmt& st, std::size_t qs, std::size_t ps,
            const std::string& ctx) const {
    check(st.qubits.size() == qs && st.params.size() == ps,
          ctx + ": wrong arity for '" + st.name + "'");
  }

  void apply_stmt(const Stmt& st, const std::string& ctx) {
    const unsigned t = next_time_++;
    const auto& n = st.name;
    if (n == "id") { need(st, 1, 0, ctx); c_.gates.push_back(gates::id1(t, st.qubits[0])); }
    else if (n == "h") { need(st, 1, 0, ctx); c_.gates.push_back(gates::h(t, st.qubits[0])); }
    else if (n == "x") { need(st, 1, 0, ctx); c_.gates.push_back(gates::x(t, st.qubits[0])); }
    else if (n == "y") { need(st, 1, 0, ctx); c_.gates.push_back(gates::y(t, st.qubits[0])); }
    else if (n == "z") { need(st, 1, 0, ctx); c_.gates.push_back(gates::z(t, st.qubits[0])); }
    else if (n == "s") { need(st, 1, 0, ctx); c_.gates.push_back(gates::s(t, st.qubits[0])); }
    else if (n == "sdg") { need(st, 1, 0, ctx); c_.gates.push_back(gates::sdg(t, st.qubits[0])); }
    else if (n == "t") { need(st, 1, 0, ctx); c_.gates.push_back(gates::t(t, st.qubits[0])); }
    else if (n == "tdg") { need(st, 1, 0, ctx); c_.gates.push_back(gates::tdg(t, st.qubits[0])); }
    else if (n == "rx") { need(st, 1, 1, ctx); c_.gates.push_back(gates::rx(t, st.qubits[0], st.params[0])); }
    else if (n == "ry") { need(st, 1, 1, ctx); c_.gates.push_back(gates::ry(t, st.qubits[0], st.params[0])); }
    else if (n == "rz") { need(st, 1, 1, ctx); c_.gates.push_back(gates::rz(t, st.qubits[0], st.params[0])); }
    else if (n == "u1") { need(st, 1, 1, ctx); c_.gates.push_back(gates::p(t, st.qubits[0], st.params[0])); }
    else if (n == "u2") {
      need(st, 1, 2, ctx);
      c_.gates.push_back(gates::mg1(t, st.qubits[0],
          u3_matrix(pi / 2, st.params[0], st.params[1]).data()));
    }
    else if (n == "u3" || n == "u") {
      need(st, 1, 3, ctx);
      c_.gates.push_back(gates::mg1(t, st.qubits[0],
          u3_matrix(st.params[0], st.params[1], st.params[2]).data()));
    }
    else if (n == "cx") { need(st, 2, 0, ctx); c_.gates.push_back(gates::cnot(t, st.qubits[0], st.qubits[1])); }
    else if (n == "cz") { need(st, 2, 0, ctx); c_.gates.push_back(gates::cz(t, st.qubits[0], st.qubits[1])); }
    else if (n == "swap") { need(st, 2, 0, ctx); c_.gates.push_back(gates::sw(t, st.qubits[0], st.qubits[1])); }
    else if (n == "cu1") { need(st, 2, 1, ctx); c_.gates.push_back(gates::cp(t, st.qubits[0], st.qubits[1], st.params[0])); }
    else if (n == "cu3") {
      need(st, 2, 3, ctx);
      Gate g;
      g.name = "mg1";
      g.time = t;
      g.qubits = {st.qubits[1]};
      g.matrix = u3_matrix(st.params[0], st.params[1], st.params[2]);
      c_.gates.push_back(gates::controlled(std::move(g), {st.qubits[0]}));
    }
    else if (n == "ccx") { need(st, 3, 0, ctx); c_.gates.push_back(gates::ccx(t, st.qubits[0], st.qubits[1], st.qubits[2])); }
    else {
      throw Error(ctx + ": unsupported gate '" + n + "'");
    }
  }

  const std::string& text_;
  Circuit c_;
  std::string reg_;
  unsigned next_time_ = 0;
};

}  // namespace

void write_qasm(const Circuit& c, std::ostream& out) {
  QasmWriter(c, out).write();
}

std::string write_qasm_string(const Circuit& c) {
  std::ostringstream os;
  write_qasm(c, os);
  return os.str();
}

Circuit read_qasm(const std::string& text) { return QasmReader(text).read(); }

}  // namespace qhip
