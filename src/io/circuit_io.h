// Reader/writer for the qsim text circuit format.
//
// The format (used by the files in qsim's circuits/ directory, including the
// circuit_q30 RQC input the paper benchmarks with) is:
//
//   <num_qubits>
//   <time> <gate> <qubit> [<qubit>] [<param>...]
//   ...
//
// e.g.
//   30
//   0 h 0
//   0 h 1
//   1 cz 0 1
//   2 fs 3 4 0.25 0.5
//   3 m 0 1 2
//
// Lines starting with '#' and blank lines are ignored. Gate mnemonics are the
// ones in src/core/gates.h; 'cx' is accepted as an alias for 'cnot'. A gate
// may be suffixed with 'c <q>...' controls via the extended form:
//   <time> c <ctrl>... <gate> <args>...
// mirroring qsim's controlled-gate syntax.
#pragma once

#include <iosfwd>
#include <string>

#include "src/core/circuit.h"

namespace qhip {

// Parses a circuit; throws qhip::Error with a line-numbered message on any
// malformed input. The returned circuit has been validate()d.
Circuit read_circuit(std::istream& in, const std::string& source_name = "<stream>");
Circuit read_circuit_file(const std::string& path);
Circuit read_circuit_string(const std::string& text);

// Serializes in the same format (round-trips through read_circuit).
// Matrix gates (mg1/mg2) are written with their matrix entries inline.
void write_circuit(const Circuit& c, std::ostream& out);
std::string write_circuit_string(const Circuit& c);
void write_circuit_file(const Circuit& c, const std::string& path);

}  // namespace qhip
