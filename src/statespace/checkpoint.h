// State-vector checkpointing: binary save/load with a self-describing
// header. Long RQC simulations at 30+ qubits run for hours on real
// hardware; checkpointing the state between circuit segments is the
// standard operational mitigation, and round-tripping through disk is also
// a useful test oracle for the storage layer.
//
// Format (little-endian):
//   magic   "QHIPSV01"            8 bytes
//   u32     num_qubits
//   u32     amp_bytes (8 = single precision, 16 = double)
//   u64     amplitude count (2^num_qubits, redundancy check)
//   payload amplitudes, interleaved re/im
#pragma once

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>

#include "src/base/bits.h"
#include "src/base/error.h"
#include "src/statespace/statevector.h"

namespace qhip::statespace {

inline constexpr char kCheckpointMagic[8] = {'Q', 'H', 'I', 'P',
                                             'S', 'V', '0', '1'};

template <typename FP>
void save_state(const StateVector<FP>& s, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  check(f.good(), "save_state: cannot open '" + path + "' for writing");
  f.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  const std::uint32_t nq = s.num_qubits();
  const std::uint32_t ab = sizeof(cplx<FP>);
  const std::uint64_t count = s.size();
  f.write(reinterpret_cast<const char*>(&nq), sizeof(nq));
  f.write(reinterpret_cast<const char*>(&ab), sizeof(ab));
  f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  f.write(reinterpret_cast<const char*>(s.data()),
          static_cast<std::streamsize>(count * sizeof(cplx<FP>)));
  check(f.good(), "save_state: write to '" + path + "' failed");
}

template <typename FP>
StateVector<FP> load_state(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  check(f.good(), "load_state: cannot open '" + path + "'");
  char magic[8];
  f.read(magic, sizeof(magic));
  check(f.good() && std::memcmp(magic, kCheckpointMagic, sizeof(magic)) == 0,
        "load_state: '" + path + "' is not a QHIPSV01 checkpoint");
  std::uint32_t nq = 0, ab = 0;
  std::uint64_t count = 0;
  f.read(reinterpret_cast<char*>(&nq), sizeof(nq));
  f.read(reinterpret_cast<char*>(&ab), sizeof(ab));
  f.read(reinterpret_cast<char*>(&count), sizeof(count));
  check(f.good(), "load_state: truncated header in '" + path + "'");
  check(ab == sizeof(cplx<FP>),
        "load_state: precision mismatch (checkpoint has " +
            std::to_string(ab) + "-byte amplitudes, requested " +
            std::to_string(sizeof(cplx<FP>)) + ")");
  check(nq >= 1 && nq <= 34 && count == pow2(nq),
        "load_state: corrupt header in '" + path + "'");
  StateVector<FP> s(nq);
  f.read(reinterpret_cast<char*>(s.data()),
         static_cast<std::streamsize>(count * sizeof(cplx<FP>)));
  check(f.good(), "load_state: truncated payload in '" + path + "'");
  // The header fully determines the file size; anything after the payload
  // means the length fields are lying (truncated-then-concatenated files,
  // corrupt headers) — reject rather than load a silently wrong state.
  f.peek();
  check(f.eof(), "load_state: trailing bytes after payload in '" + path + "'");
  return s;
}

}  // namespace qhip::statespace
