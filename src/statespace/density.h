// Reduced density matrices and entanglement measures.
//
// The substrate behind qsim's qsim_von_neumann driver: trace out all but a
// small subsystem, then compute von Neumann entropy / purity from the
// reduced density matrix's spectrum. rho_A is at most 2^8 x 2^8 here
// (subsystems up to 8 qubits), built in one streaming pass over the
// amplitudes: rho_A[r][c] = sum over environment e of a(r,e) conj(a(c,e)).
#pragma once

#include <cmath>
#include <vector>

#include "src/base/bits.h"
#include "src/base/error.h"
#include "src/core/matrix.h"
#include "src/statespace/statevector.h"

namespace qhip::statespace {

// Density matrix of subsystem `qubits` (matrix bit j <-> qubits[j]).
template <typename FP>
CMatrix reduced_density_matrix(const StateVector<FP>& s,
                               const std::vector<qubit_t>& qubits) {
  check(!qubits.empty() && qubits.size() <= 8,
        "reduced_density_matrix: subsystem must have 1..8 qubits");
  std::vector<qubit_t> sorted = qubits;
  std::sort(sorted.begin(), sorted.end());
  check(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
        "reduced_density_matrix: repeated qubit");
  for (qubit_t q : qubits) {
    check(q < s.num_qubits(), "reduced_density_matrix: qubit out of range");
  }

  const std::size_t dim = std::size_t{1} << qubits.size();
  const std::vector<index_t> member = scatter_masks(qubits);
  CMatrix rho(dim);
  const index_t env = s.size() >> qubits.size();
  for (index_t e = 0; e < env; ++e) {
    const index_t base = expand_bits(e, sorted);
    for (std::size_t r = 0; r < dim; ++r) {
      const cplx<FP>& ar = s[base | member[r]];
      const cplx64 arc(ar.real(), ar.imag());
      for (std::size_t c = 0; c < dim; ++c) {
        const cplx<FP>& ac = s[base | member[c]];
        rho.at(r, c) += arc * std::conj(cplx64(ac.real(), ac.imag()));
      }
    }
  }
  return rho;
}

// Von Neumann entropy S = -sum_i p_i ln p_i of a density matrix, in nats.
// Pass base2 = true for bits.
inline double von_neumann_entropy(const CMatrix& rho, bool base2 = false) {
  const auto eig = hermitian_eigenvalues(rho);
  double s = 0;
  for (double p : eig) {
    check(p > -1e-8, "von_neumann_entropy: negative eigenvalue (not a "
                     "density matrix?)");
    if (p > 1e-14) s -= p * std::log(p);
  }
  return base2 ? s / std::numbers::ln2 : s;
}

// Entanglement entropy of subsystem `qubits` against the rest, in nats.
template <typename FP>
double entanglement_entropy(const StateVector<FP>& s,
                            const std::vector<qubit_t>& qubits,
                            bool base2 = false) {
  return von_neumann_entropy(reduced_density_matrix(s, qubits), base2);
}

// Purity tr(rho^2) of the reduced state: 1 for product states, 1/2^k for a
// maximally mixed k-qubit subsystem.
inline double purity(const CMatrix& rho) {
  double p = 0;
  for (std::size_t r = 0; r < rho.dim(); ++r) {
    for (std::size_t c = 0; c < rho.dim(); ++c) {
      p += std::norm(rho.at(r, c));  // tr(rho rho^dagger); rho Hermitian
    }
  }
  return p;
}

}  // namespace qhip::statespace
