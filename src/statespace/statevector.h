// State-vector storage and the host-side state-space operations.
//
// This mirrors qsim's StateSpace layer: everything that touches the state
// other than applying gates — initialization, norms, inner products,
// amplitude access, Born-rule sampling, and measurement collapse. Gate
// application lives in the simulator backends (src/simulator, src/hipsim).
//
// The vector is stored as an interleaved array of std::complex<FP>; for an
// n-qubit system it holds 2^n amplitudes, amplitude index bit b = qubit b.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/base/aligned.h"
#include "src/base/bits.h"
#include "src/base/error.h"
#include "src/base/rng.h"
#include "src/base/threadpool.h"
#include "src/base/types.h"

namespace qhip {

template <typename FP>
class StateVector {
 public:
  StateVector() = default;

  // Allocates 2^num_qubits amplitudes initialized to |0...0>.
  explicit StateVector(unsigned num_qubits)
      : num_qubits_(checked_qubits(num_qubits)), amps_(pow2(num_qubits)) {
    amps_[0] = cplx<FP>{1};
  }

  unsigned num_qubits() const { return num_qubits_; }
  index_t size() const { return amps_.size(); }

  cplx<FP>* data() { return amps_.data(); }
  const cplx<FP>* data() const { return amps_.data(); }

  cplx<FP>& operator[](index_t i) { return amps_[i]; }
  const cplx<FP>& operator[](index_t i) const { return amps_[i]; }

  // |0...0>.
  void set_zero_state() {
    std::fill(amps_.begin(), amps_.end(), cplx<FP>{});
    amps_[0] = cplx<FP>{1};
  }

  // Uniform superposition 1/sqrt(2^n) * sum_i |i> (qsim's SetStateUniform).
  void set_uniform_state() {
    const FP a = FP(1) / std::sqrt(static_cast<FP>(size()));
    std::fill(amps_.begin(), amps_.end(), cplx<FP>{a});
  }

  // Computational-basis state |i>.
  void set_basis_state(index_t i) {
    check(i < size(), "set_basis_state: index out of range");
    std::fill(amps_.begin(), amps_.end(), cplx<FP>{});
    amps_[i] = cplx<FP>{1};
  }

 private:
  static unsigned checked_qubits(unsigned n) {
    check(n >= 1 && n <= 34, "StateVector: qubits out of range [1, 34]");
    return n;
  }

  unsigned num_qubits_ = 0;
  std::vector<cplx<FP>, AlignedAllocator<cplx<FP>>> amps_;
};

namespace statespace {

// sum_i |a_i|^2, accumulated in double regardless of FP.
template <typename FP>
double norm2(const StateVector<FP>& s, ThreadPool& pool = ThreadPool::shared()) {
  const unsigned nt = pool.num_threads();
  std::vector<double> partial(nt, 0.0);
  pool.parallel_ranges(s.size(), [&](unsigned rank, index_t b, index_t e) {
    double acc = 0;
    for (index_t i = b; i < e; ++i) acc += std::norm(s[i]);
    partial[rank] += acc;
  });
  double total = 0;
  for (double v : partial) total += v;
  return total;
}

// <a|b>, accumulated in double.
template <typename FP>
cplx64 inner_product(const StateVector<FP>& a, const StateVector<FP>& b,
                     ThreadPool& pool = ThreadPool::shared()) {
  check(a.size() == b.size(), "inner_product: size mismatch");
  const unsigned nt = pool.num_threads();
  std::vector<cplx64> partial(nt);
  pool.parallel_ranges(a.size(), [&](unsigned rank, index_t lo, index_t hi) {
    cplx64 acc{};
    for (index_t i = lo; i < hi; ++i) {
      acc += std::conj(cplx64(a[i].real(), a[i].imag())) *
             cplx64(b[i].real(), b[i].imag());
    }
    partial[rank] += acc;
  });
  cplx64 total{};
  for (const auto& v : partial) total += v;
  return total;
}

// Scales so that norm2 == 1. Returns the pre-normalization norm.
template <typename FP>
double normalize(StateVector<FP>& s, ThreadPool& pool = ThreadPool::shared()) {
  const double n2 = norm2(s, pool);
  check(n2 > 0, "normalize: zero state");
  const FP inv = static_cast<FP>(1.0 / std::sqrt(n2));
  pool.parallel_for(s.size(), [&](index_t i) { s[i] *= inv; });
  return std::sqrt(n2);
}

// Max |a_i - b_i| between two states.
template <typename FP>
double max_abs_diff(const StateVector<FP>& a, const StateVector<FP>& b) {
  check(a.size() == b.size(), "max_abs_diff: size mismatch");
  double worst = 0;
  for (index_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(cplx64(a[i].real() - b[i].real(),
                                            a[i].imag() - b[i].imag())));
  }
  return worst;
}

// Probability that measuring `qubits` yields `outcome` (bit j of outcome is
// the result for qubits[j]).
template <typename FP>
double probability(const StateVector<FP>& s, const std::vector<qubit_t>& qubits,
                   index_t outcome, ThreadPool& pool = ThreadPool::shared()) {
  const index_t want = scatter_bits(outcome, qubits);
  index_t mask = 0;
  for (qubit_t q : qubits) mask |= pow2(q);
  const unsigned nt = pool.num_threads();
  std::vector<double> partial(nt, 0.0);
  pool.parallel_ranges(s.size(), [&](unsigned rank, index_t b, index_t e) {
    double acc = 0;
    for (index_t i = b; i < e; ++i) {
      if ((i & mask) == want) acc += std::norm(s[i]);
    }
    partial[rank] += acc;
  });
  double total = 0;
  for (double v : partial) total += v;
  return total;
}

// Draws `num_samples` basis states per the Born rule. Uses sorted uniforms
// and a single cumulative pass over the amplitudes, so cost is
// O(2^n + m log m) — the same approach as qsim's Sample().
template <typename FP>
std::vector<index_t> sample(const StateVector<FP>& s, std::size_t num_samples,
                            std::uint64_t seed) {
  std::vector<double> rs(num_samples);
  Philox rng(seed, /*stream=*/0x5a17);
  for (auto& r : rs) r = rng.uniform();
  std::sort(rs.begin(), rs.end());

  std::vector<index_t> out(num_samples);
  double csum = 0;
  std::size_t k = 0;
  for (index_t i = 0; i < s.size() && k < num_samples; ++i) {
    csum += std::norm(s[i]);
    while (k < num_samples && rs[k] < csum) out[k++] = i;
  }
  // Numerical tail: assign any leftovers (csum ended below 1 by rounding)
  // to the last nonzero amplitude.
  for (; k < num_samples; ++k) out[k] = s.size() - 1;

  // Restore the caller-visible order to match the unsorted draw order: the
  // samples are i.i.d., so a deterministic shuffle keyed on the seed keeps
  // reproducibility without correlating consecutive samples.
  Philox shuf(seed, /*stream=*/0x5a18);
  for (std::size_t i = out.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(shuf.uniform() * i);
    std::swap(out[i - 1], out[j]);
  }
  return out;
}

// Measures `qubits`, collapses the state, renormalizes, and returns the
// outcome (bit j = result for qubits[j]).
template <typename FP>
index_t measure(StateVector<FP>& s, const std::vector<qubit_t>& qubits,
                std::uint64_t seed, ThreadPool& pool = ThreadPool::shared()) {
  check(!qubits.empty() && qubits.size() <= 30, "measure: bad qubit list");

  // Outcome distribution over the measured subset.
  const std::size_t no = std::size_t{1} << qubits.size();
  std::vector<double> probs(no, 0.0);
  index_t mask = 0;
  for (qubit_t q : qubits) mask |= pow2(q);
  for (index_t i = 0; i < s.size(); ++i) {
    probs[gather_bits(i, qubits)] += std::norm(s[i]);
  }

  Philox rng(seed, /*stream=*/0x3ea5);
  const double r = rng.uniform();
  double csum = 0;
  index_t outcome = no - 1;
  for (std::size_t o = 0; o < no; ++o) {
    csum += probs[o];
    if (r < csum) {
      outcome = o;
      break;
    }
  }

  const index_t want = scatter_bits(outcome, qubits);
  pool.parallel_for(s.size(), [&](index_t i) {
    if ((i & mask) != want) s[i] = cplx<FP>{};
  });
  normalize(s, pool);
  return outcome;
}

}  // namespace statespace
}  // namespace qhip
