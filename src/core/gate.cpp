#include "src/core/gate.h"

#include <algorithm>
#include <numeric>

#include "src/base/bits.h"
#include "src/base/error.h"

namespace qhip {

Gate normalized(const Gate& g) {
  if (g.is_measurement()) {
    Gate out = g;
    std::sort(out.qubits.begin(), out.qubits.end());
    return out;
  }
  const unsigned q = g.num_targets();
  std::vector<unsigned> order(q);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&g](unsigned a, unsigned b) { return g.qubits[a] < g.qubits[b]; });

  const bool already = std::is_sorted(g.qubits.begin(), g.qubits.end());
  Gate out = g;
  if (already) return out;

  // perm[j] = new bit position of old bit j.
  std::vector<unsigned> perm(q);
  for (unsigned newpos = 0; newpos < q; ++newpos) perm[order[newpos]] = newpos;

  std::vector<qubit_t> sorted_qubits(q);
  for (unsigned j = 0; j < q; ++j) sorted_qubits[perm[j]] = g.qubits[j];

  out.qubits = std::move(sorted_qubits);
  out.matrix = g.matrix.permute_bits(perm);
  return out;
}

Gate expand_controls(const Gate& g) {
  check(!g.is_measurement(), "expand_controls: measurement gates have no matrix");
  if (g.controls.empty()) return g;

  const unsigned nt = g.num_targets();
  const unsigned nc = static_cast<unsigned>(g.controls.size());
  const std::size_t dim = std::size_t{1} << (nt + nc);

  // Layout of the expanded gate: bits [0, nt) are the original targets,
  // bits [nt, nt+nc) are the controls. The subspace with all control bits
  // set gets g.matrix; everything else is identity.
  CMatrix m = CMatrix::identity(dim);
  const std::size_t cmask = ((std::size_t{1} << nc) - 1) << nt;
  const std::size_t tdim = std::size_t{1} << nt;
  for (std::size_t r = 0; r < tdim; ++r) {
    for (std::size_t c = 0; c < tdim; ++c) {
      m.at(cmask | r, cmask | c) = g.matrix.at(r, c);
    }
  }
  Gate out;
  out.kind = GateKind::kUnitary;
  out.name = "c:" + g.name;
  out.time = g.time;
  out.qubits = g.qubits;
  out.qubits.insert(out.qubits.end(), g.controls.begin(), g.controls.end());
  out.params = g.params;
  out.matrix = std::move(m);
  return normalized(out);
}

}  // namespace qhip
