// Dense small complex matrices for gate algebra.
//
// Gate matrices are at most 2^6 x 2^6 (the fuser caps fused gates at six
// qubits), so a simple row-major std::vector<cplx64> is the right data
// structure: no sparsity, no blocking, everything fits in L1. All gate
// matrices are stored in double precision and converted to the simulation
// precision at apply time, so both the single- and double-precision builds
// share one set of gate definitions.
//
// Index convention: for a matrix acting on qubits (q_0, q_1, ..., q_{k-1}),
// bit j of a row/column index corresponds to qubit q_j; q_0 is the least
// significant bit. This matches the state-vector convention where amplitude
// index bit b is the value of qubit b.
#pragma once

#include <cstddef>
#include <vector>

#include "src/base/types.h"

namespace qhip {

// Square complex matrix of dimension dim() = 2^num_qubits().
class CMatrix {
 public:
  CMatrix() = default;

  // Zero matrix of dimension `dim` (must be a power of two).
  explicit CMatrix(std::size_t dim);

  // From row-major data; data.size() must be dim*dim.
  CMatrix(std::size_t dim, std::vector<cplx64> data);

  static CMatrix identity(std::size_t dim);

  std::size_t dim() const { return dim_; }
  unsigned num_qubits() const;

  cplx64& at(std::size_t r, std::size_t c) { return data_[r * dim_ + c]; }
  const cplx64& at(std::size_t r, std::size_t c) const { return data_[r * dim_ + c]; }

  const std::vector<cplx64>& data() const { return data_; }
  std::vector<cplx64>& data() { return data_; }

  // Matrix product this * rhs (dimensions must match).
  CMatrix operator*(const CMatrix& rhs) const;

  // Conjugate transpose.
  CMatrix adjoint() const;

  // Tensor product: (*this) ⊗ rhs. With the bit convention above, `rhs`
  // owns the low-order index bits of the result.
  CMatrix kron(const CMatrix& rhs) const;

  // Frobenius norm of (this - rhs).
  double distance(const CMatrix& rhs) const;

  // || this * this^dagger - I ||_max; a unitary gives ~0.
  double unitarity_error() const;
  bool is_unitary(double tol = 1e-10) const;

  // Reorders index bits: bit j of the new index corresponds to bit perm[j]
  // of the old index. Used to normalize gates to ascending qubit order.
  CMatrix permute_bits(const std::vector<unsigned>& perm) const;

  // In-place left-compose a k-qubit gate acting on a subset of this matrix's
  // qubits: this <- expand(gate, positions) * this, where positions[j] is the
  // index bit (qubit slot) of *this* matrix that gate bit j acts on.
  // This is the core of gate fusion: the fused matrix accumulates constituent
  // gates without ever materializing the expanded (sparse) matrix.
  void compose_on_qubits(const CMatrix& gate, const std::vector<unsigned>& positions);

  bool operator==(const CMatrix& rhs) const = default;

 private:
  std::size_t dim_ = 0;
  std::vector<cplx64> data_;
};

// Eigenvalues of a Hermitian matrix (ascending), by cyclic complex Jacobi
// rotations. Intended for the small matrices this library manipulates
// (reduced density matrices, gate generators); dim <= 256.
std::vector<double> hermitian_eigenvalues(const CMatrix& m, double tol = 1e-12);

}  // namespace qhip
