// Gate IR: one quantum gate instance inside a circuit.
//
// Mirrors qsim's gate representation: a time slot (circuits are organized in
// moments; gates in the same moment act on disjoint qubits), the target
// qubits, optional classical controls, the real parameters the gate was
// built from, and the unitary matrix. Measurement is represented as a
// special kind with no matrix, as in qsim's gates_qsim.h.
#pragma once

#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/core/matrix.h"

namespace qhip {

enum class GateKind {
  kUnitary,      // any matrix gate (named or fused)
  kMeasurement,  // computational-basis measurement of `qubits`
};

struct Gate {
  GateKind kind = GateKind::kUnitary;
  std::string name;             // lower-case mnemonic from the circuit format
  unsigned time = 0;            // moment index
  std::vector<qubit_t> qubits;  // targets; matrix bit j <-> qubits[j]
  std::vector<qubit_t> controls;  // all-ones controls (controlled gate)
  std::vector<double> params;   // angles etc., as parsed
  CMatrix matrix;               // dim 2^qubits.size(); empty for measurement

  unsigned num_targets() const { return static_cast<unsigned>(qubits.size()); }

  bool is_measurement() const { return kind == GateKind::kMeasurement; }

  // Every qubit the gate touches (targets + controls).
  std::vector<qubit_t> all_qubits() const {
    std::vector<qubit_t> q = qubits;
    q.insert(q.end(), controls.begin(), controls.end());
    return q;
  }
};

// Returns an equivalent gate whose target qubits are sorted ascending, with
// the matrix bits permuted to match. Simulator backends and the fuser assume
// this normal form.
Gate normalized(const Gate& g);

// Folds the controls into the matrix: returns an uncontrolled gate over
// (controls + targets) whose matrix applies `g.matrix` on the subspace where
// every control is |1> and the identity elsewhere. Used by backends that have
// no native controlled-apply path.
Gate expand_controls(const Gate& g);

}  // namespace qhip
