#include "src/core/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

#include "src/base/bits.h"
#include "src/base/error.h"

namespace qhip {

CMatrix::CMatrix(std::size_t dim) : dim_(dim), data_(dim * dim) {
  check(is_pow2(dim), "CMatrix: dimension must be a power of two");
}

CMatrix::CMatrix(std::size_t dim, std::vector<cplx64> data)
    : dim_(dim), data_(std::move(data)) {
  check(is_pow2(dim), "CMatrix: dimension must be a power of two");
  check(data_.size() == dim * dim, "CMatrix: data size does not match dimension");
}

CMatrix CMatrix::identity(std::size_t dim) {
  CMatrix m(dim);
  for (std::size_t i = 0; i < dim; ++i) m.at(i, i) = 1.0;
  return m;
}

unsigned CMatrix::num_qubits() const { return log2_exact(dim_); }

CMatrix CMatrix::operator*(const CMatrix& rhs) const {
  check(dim_ == rhs.dim_, "CMatrix::operator*: dimension mismatch");
  CMatrix out(dim_);
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t k = 0; k < dim_; ++k) {
      const cplx64 a = at(r, k);
      if (a == cplx64{}) continue;
      for (std::size_t c = 0; c < dim_; ++c) {
        out.at(r, c) += a * rhs.at(k, c);
      }
    }
  }
  return out;
}

CMatrix CMatrix::adjoint() const {
  CMatrix out(dim_);
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      out.at(c, r) = std::conj(at(r, c));
    }
  }
  return out;
}

CMatrix CMatrix::kron(const CMatrix& rhs) const {
  CMatrix out(dim_ * rhs.dim_);
  for (std::size_t r1 = 0; r1 < dim_; ++r1) {
    for (std::size_t c1 = 0; c1 < dim_; ++c1) {
      const cplx64 a = at(r1, c1);
      if (a == cplx64{}) continue;
      for (std::size_t r2 = 0; r2 < rhs.dim_; ++r2) {
        for (std::size_t c2 = 0; c2 < rhs.dim_; ++c2) {
          out.at(r1 * rhs.dim_ + r2, c1 * rhs.dim_ + c2) = a * rhs.at(r2, c2);
        }
      }
    }
  }
  return out;
}

double CMatrix::distance(const CMatrix& rhs) const {
  check(dim_ == rhs.dim_, "CMatrix::distance: dimension mismatch");
  double s = 0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    s += std::norm(data_[i] - rhs.data_[i]);
  }
  return std::sqrt(s);
}

double CMatrix::unitarity_error() const {
  const CMatrix p = *this * adjoint();
  double worst = 0;
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      const cplx64 want = r == c ? cplx64{1.0} : cplx64{};
      worst = std::max(worst, std::abs(p.at(r, c) - want));
    }
  }
  return worst;
}

bool CMatrix::is_unitary(double tol) const { return unitarity_error() <= tol; }

CMatrix CMatrix::permute_bits(const std::vector<unsigned>& perm) const {
  check(perm.size() == num_qubits(), "CMatrix::permute_bits: wrong permutation size");
  auto remap = [&perm](std::size_t idx) {
    std::size_t out = 0;
    for (std::size_t j = 0; j < perm.size(); ++j) {
      if (idx & (std::size_t{1} << j)) out |= std::size_t{1} << perm[j];
    }
    return out;
  };
  CMatrix out(dim_);
  for (std::size_t r = 0; r < dim_; ++r) {
    const std::size_t pr = remap(r);
    for (std::size_t c = 0; c < dim_; ++c) {
      out.at(pr, remap(c)) = at(r, c);
    }
  }
  return out;
}

void CMatrix::compose_on_qubits(const CMatrix& gate,
                                const std::vector<unsigned>& positions) {
  const std::size_t gd = gate.dim();
  check(positions.size() == gate.num_qubits(),
        "CMatrix::compose_on_qubits: positions/gate size mismatch");
  for (unsigned p : positions) {
    check(p < num_qubits(), "CMatrix::compose_on_qubits: position out of range");
  }

  // Masks scattering the gate-local index bits onto this matrix's index bits.
  std::vector<index_t> member(gd);
  for (std::size_t k = 0; k < gd; ++k) {
    index_t m = 0;
    for (std::size_t j = 0; j < positions.size(); ++j) {
      if (k & (std::size_t{1} << j)) m |= index_t{1} << positions[j];
    }
    member[k] = m;
  }
  std::vector<qubit_t> sorted(positions.begin(), positions.end());
  std::sort(sorted.begin(), sorted.end());

  // Apply `gate` to every column of *this*, treating each column as a state
  // vector over num_qubits() qubits.
  const std::size_t outer = dim_ >> positions.size();
  std::vector<cplx64> tmp(gd);
  for (std::size_t c = 0; c < dim_; ++c) {
    for (std::size_t o = 0; o < outer; ++o) {
      const index_t base = expand_bits(o, sorted);
      for (std::size_t k = 0; k < gd; ++k) tmp[k] = at(base | member[k], c);
      for (std::size_t rk = 0; rk < gd; ++rk) {
        cplx64 acc{};
        for (std::size_t ck = 0; ck < gd; ++ck) {
          acc += gate.at(rk, ck) * tmp[ck];
        }
        at(base | member[rk], c) = acc;
      }
    }
  }
}

std::vector<double> hermitian_eigenvalues(const CMatrix& m, double tol) {
  const std::size_t n = m.dim();
  check(n >= 1 && n <= 256, "hermitian_eigenvalues: dimension out of range");
  // Hermiticity check (cheap; catches misuse early).
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r; c < n; ++c) {
      check(std::abs(m.at(r, c) - std::conj(m.at(c, r))) < 1e-8,
            "hermitian_eigenvalues: matrix is not Hermitian");
    }
  }

  CMatrix a = m;
  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += std::norm(a.at(p, q));
    }
    if (off < tol * tol) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const cplx64 w = a.at(p, q);
        const double aw = std::abs(w);
        if (aw < 1e-300) continue;
        const double app = a.at(p, p).real();
        const double aqq = a.at(q, q).real();
        // Phase to make the off-diagonal real, then a real Jacobi rotation.
        const cplx64 phase = w / aw;  // e^{i phi}
        double theta;
        if (std::abs(app - aqq) < 1e-300) {
          theta = std::numbers::pi / 4;
        } else {
          theta = 0.5 * std::atan2(2 * aw, app - aqq);
        }
        const double c = std::cos(theta), s = std::sin(theta);
        // Column rotation: J_pp = c, J_pq = -s, J_qp = s*conj(phase)... with
        // the phase folded into column q: J = [[c, -s*phase],[s*conj(phase), c]].
        const cplx64 jpq = -s * phase;
        const cplx64 jqp = s * std::conj(phase);
        // A <- J^dagger A J ; update columns then rows.
        for (std::size_t r = 0; r < n; ++r) {
          const cplx64 arp = a.at(r, p), arq = a.at(r, q);
          a.at(r, p) = arp * c + arq * jqp;
          a.at(r, q) = arp * jpq + arq * c;
        }
        for (std::size_t cc = 0; cc < n; ++cc) {
          const cplx64 apc = a.at(p, cc), aqc = a.at(q, cc);
          a.at(p, cc) = c * apc + std::conj(jqp) * aqc;
          a.at(q, cc) = std::conj(jpq) * apc + c * aqc;
        }
      }
    }
  }
  std::vector<double> eig(n);
  for (std::size_t i = 0; i < n; ++i) eig[i] = a.at(i, i).real();
  std::sort(eig.begin(), eig.end());
  return eig;
}

}  // namespace qhip
