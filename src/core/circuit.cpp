#include "src/core/circuit.h"

#include <algorithm>
#include <bit>
#include <set>

#include "src/base/bits.h"
#include "src/base/error.h"
#include "src/base/strings.h"

namespace qhip {

unsigned Circuit::depth() const {
  unsigned d = 0;
  for (const auto& g : gates) d = std::max(d, g.time + 1);
  return d;
}

std::map<std::string, std::size_t> Circuit::histogram() const {
  std::map<std::string, std::size_t> h;
  for (const auto& g : gates) ++h[g.name];
  return h;
}

std::size_t Circuit::num_measurements() const {
  std::size_t n = 0;
  for (const auto& g : gates) n += g.is_measurement() ? 1 : 0;
  return n;
}

void Circuit::validate() const {
  check(num_qubits >= 1 && num_qubits <= 40,
        "Circuit: num_qubits must be in [1, 40]");
  unsigned prev_time = 0;
  std::set<qubit_t> moment_qubits;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    const std::string where = strfmt("gate %zu ('%s', t=%u)", i, g.name.c_str(), g.time);
    check(g.time >= prev_time, where + ": time goes backwards");
    if (g.time != prev_time) {
      moment_qubits.clear();
      prev_time = g.time;
    }
    check(!g.qubits.empty(), where + ": no target qubits");
    std::set<qubit_t> seen;
    for (qubit_t q : g.all_qubits()) {
      check(q < num_qubits, where + strfmt(": qubit %u out of range", q));
      check(seen.insert(q).second, where + strfmt(": qubit %u repeated", q));
      check(moment_qubits.insert(q).second,
            where + strfmt(": qubit %u already used in moment %u", q, g.time));
    }
    if (g.kind == GateKind::kUnitary) {
      check(g.matrix.dim() == pow2(g.num_targets()),
            where + ": matrix dimension does not match qubit count");
    } else {
      check(g.matrix.dim() == 0, where + ": measurement gates carry no matrix");
    }
  }
}

namespace {

// FNV-1a over arbitrary scalar payloads.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fold(std::uint64_t& h, const void* p, std::size_t bytes) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= b[i];
    h *= kFnvPrime;
  }
}

template <typename T>
void fold_scalar(std::uint64_t& h, T v) {
  fold(h, &v, sizeof(v));
}

}  // namespace

std::uint64_t hash_circuit(const Circuit& c) {
  std::uint64_t h = kFnvOffset;
  fold_scalar(h, c.num_qubits);
  fold_scalar(h, c.gates.size());
  for (const Gate& g : c.gates) {
    fold_scalar(h, static_cast<int>(g.kind));
    fold(h, g.name.data(), g.name.size());
    fold_scalar(h, g.time);
    fold_scalar(h, g.qubits.size());
    for (qubit_t q : g.qubits) fold_scalar(h, q);
    fold_scalar(h, g.controls.size());
    for (qubit_t q : g.controls) fold_scalar(h, q);
    for (double p : g.params) fold_scalar(h, std::bit_cast<std::uint64_t>(p));
    fold_scalar(h, g.matrix.dim());
    for (std::size_t r = 0; r < g.matrix.dim(); ++r) {
      for (std::size_t col = 0; col < g.matrix.dim(); ++col) {
        const cplx64& a = g.matrix.at(r, col);
        fold_scalar(h, std::bit_cast<std::uint64_t>(a.real()));
        fold_scalar(h, std::bit_cast<std::uint64_t>(a.imag()));
      }
    }
  }
  return h;
}

Circuit inverse_circuit(const Circuit& c) {
  Circuit out;
  out.num_qubits = c.num_qubits;
  out.gates.reserve(c.size());
  unsigned time = 0;
  for (auto it = c.gates.rbegin(); it != c.gates.rend(); ++it) {
    check(!it->is_measurement(), "inverse_circuit: measurement is not invertible");
    Gate g = *it;
    g.matrix = g.matrix.adjoint();
    g.name = g.name + "_dg";
    g.time = time++;
    out.gates.push_back(std::move(g));
  }
  return out;
}

Circuit concatenate(const Circuit& a, const Circuit& b) {
  check(a.num_qubits == b.num_qubits, "concatenate: qubit count mismatch");
  Circuit out = a;
  const unsigned offset = a.depth();
  for (Gate g : b.gates) {
    g.time += offset;
    out.gates.push_back(std::move(g));
  }
  return out;
}

Circuit normalize_circuit(const Circuit& c) {
  Circuit out;
  out.num_qubits = c.num_qubits;
  out.gates.reserve(c.gates.size());
  for (const Gate& g : c.gates) {
    if (g.is_measurement()) {
      out.gates.push_back(g);
      continue;
    }
    out.gates.push_back(normalized(g.controls.empty() ? g : expand_controls(g)));
  }
  return out;
}

CMatrix circuit_unitary(const Circuit& c) {
  check(c.num_qubits <= 12, "circuit_unitary: too many qubits for dense form");
  CMatrix u = CMatrix::identity(pow2(c.num_qubits));
  for (const auto& g : c.gates) {
    check(!g.is_measurement(), "circuit_unitary: circuit contains measurement");
    const Gate e = g.controls.empty() ? g : expand_controls(g);
    std::vector<unsigned> positions(e.qubits.begin(), e.qubits.end());
    u.compose_on_qubits(e.matrix, positions);
  }
  return u;
}

}  // namespace qhip
