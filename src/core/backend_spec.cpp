#include "src/core/backend_spec.h"

#include "src/base/bits.h"
#include "src/base/error.h"
#include "src/base/strings.h"

namespace qhip {

namespace {

// Parses the ":N" tail of "hip:N" / "dist:N". Returns nullopt (and fills
// `why`) instead of throwing so try_parse stays allocation-cheap on the
// reject path.
std::optional<unsigned> parse_rank_tail(const std::string& tail,
                                        const char* what, std::string* why) {
  if (tail.empty() || tail.size() > 3) {
    if (why) *why = strfmt("%s count '%s' must be 1-3 digits", what, tail.c_str());
    return std::nullopt;
  }
  for (char c : tail) {
    if (c < '0' || c > '9') {
      if (why) *why = strfmt("%s count '%s' is not a number", what, tail.c_str());
      return std::nullopt;
    }
  }
  const unsigned n = static_cast<unsigned>(parse_uint(tail, what));
  if (!is_pow2(n) || n < 2 || n > 64) {
    if (why) {
      *why = strfmt("%s count %u must be a power of two in [2, 64]", what, n);
    }
    return std::nullopt;
  }
  return n;
}

std::optional<BackendSpec> parse_impl(const std::string& spec, std::string* why) {
  if (spec == "cpu") return BackendSpec{BackendSpec::Kind::kCpu, 1};
  if (spec == "hip") return BackendSpec{BackendSpec::Kind::kHip, 1};
  if (spec == "a100") return BackendSpec{BackendSpec::Kind::kA100, 1};
  if (spec == "auto") return BackendSpec{BackendSpec::Kind::kAuto, 1};
  if (spec.rfind("hip:", 0) == 0) {
    const auto n = parse_rank_tail(spec.substr(4), "GCD", why);
    if (!n) return std::nullopt;
    return BackendSpec{BackendSpec::Kind::kMultiGcd, *n};
  }
  if (spec.rfind("dist:", 0) == 0) {
    const auto n = parse_rank_tail(spec.substr(5), "rank", why);
    if (!n) return std::nullopt;
    return BackendSpec{BackendSpec::Kind::kDist, *n};
  }
  if (why) {
    *why = strfmt("unknown backend '%s' (expected %s)", spec.c_str(),
                  backend_spec_grammar());
  }
  return std::nullopt;
}

}  // namespace

const char* backend_spec_grammar() { return "cpu|hip|a100|hip:N|dist:N|auto"; }

BackendSpec BackendSpec::parse(const std::string& spec) {
  std::string why;
  const auto parsed = parse_impl(spec, &why);
  check(parsed.has_value(), "backend spec '" + spec + "': " + why);
  return *parsed;
}

std::optional<BackendSpec> BackendSpec::try_parse(const std::string& spec) {
  return parse_impl(spec, nullptr);
}

std::string BackendSpec::to_string() const {
  switch (kind) {
    case Kind::kCpu: return "cpu";
    case Kind::kHip: return "hip";
    case Kind::kA100: return "a100";
    case Kind::kMultiGcd: return strfmt("hip:%u", ranks);
    case Kind::kDist: return strfmt("dist:%u", ranks);
    case Kind::kAuto: return "auto";
  }
  return "?";
}

}  // namespace qhip
