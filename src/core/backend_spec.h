// Typed runtime backend specification.
//
// Backend identity used to travel through the codebase as a raw string
// ("cpu", "hip:4", ...) that was re-parsed ad hoc in create_backend, the
// engine's fallback path, and every CLI. BackendSpec is the one parser and
// printer for that grammar; everything else consumes the typed form:
//
//   "cpu"     multithreaded host backend
//   "hip"     virtual MI250X GCD (wavefront 64)
//   "a100"    virtual A100 (warp 32)
//   "hip:N"   state distributed over N virtual GCDs (N a power of two 2..64)
//   "dist:N"  N thread-ranks on the in-process communicator (pow2 2..64)
//   "auto"    placement delegated to the engine's cost-model planner
//             (DESIGN.md §13); not directly creatable via create_backend
//
// This header lives in qhip_core (below both perfmodel and engine) so the
// roofline bridge (src/perfmodel/model.h) and the runtime backends can share
// it without a dependency cycle.
#pragma once

#include <optional>
#include <string>

namespace qhip {

struct BackendSpec {
  enum class Kind { kCpu, kHip, kA100, kMultiGcd, kDist, kAuto };

  Kind kind = Kind::kCpu;
  // Device count: GCDs for kMultiGcd, thread-ranks for kDist, 1 otherwise.
  unsigned ranks = 1;

  // Parses a spec string. Throws qhip::Error naming the offending token on
  // anything outside the grammar above (unknown word, non-numeric count,
  // count not a power of two in [2, 64]).
  static BackendSpec parse(const std::string& spec);

  // Non-throwing variant: nullopt on any parse or validation failure.
  static std::optional<BackendSpec> try_parse(const std::string& spec);

  // Canonical spec string ("cpu", "hip:4", ...). parse(to_string()) == *this.
  std::string to_string() const;

  // False only for kAuto: "auto" is a valid request spec but names a policy,
  // not a device — the engine's planner must resolve it to a runnable spec
  // before create_backend sees it.
  bool runnable() const { return kind != Kind::kAuto; }

  friend bool operator==(const BackendSpec&, const BackendSpec&) = default;
};

// The grammar summary for usage lines and error messages.
const char* backend_spec_grammar();  // "cpu|hip|a100|hip:N|dist:N|auto"

}  // namespace qhip
