// Circuit IR: an ordered list of gates over a fixed qubit count.
//
// Gates carry a `time` (moment) index; the invariant, checked by validate(),
// is that times are non-decreasing in program order and gates sharing a
// moment act on disjoint qubits — the same contract qsim's circuit reader
// enforces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/gate.h"

namespace qhip {

struct Circuit {
  unsigned num_qubits = 0;
  std::vector<Gate> gates;

  std::size_t size() const { return gates.size(); }

  // Highest moment index + 1 (0 for an empty circuit).
  unsigned depth() const;

  // Gate count per mnemonic, for reports.
  std::map<std::string, std::size_t> histogram() const;

  // Number of measurement gates.
  std::size_t num_measurements() const;

  // Throws qhip::Error if any gate references a qubit >= num_qubits, repeats
  // a qubit, has times out of order, or overlaps another gate in its moment.
  void validate() const;
};

// Structural 64-bit hash of a circuit: folds in the qubit count and, per
// gate, the kind, mnemonic, moment, targets, controls, parameters, and the
// exact bit patterns of the matrix entries. Two circuits hash equal iff they
// are structurally identical (up to 64-bit collisions); used as the
// fused-circuit cache key in src/engine.
std::uint64_t hash_circuit(const Circuit& c);

// Total unitary of a (measurement-free) circuit as a dense 2^n x 2^n matrix.
// Exponential in n — intended for tests with n <= 10.
CMatrix circuit_unitary(const Circuit& c);

// The inverse circuit: gates reversed, each matrix replaced by its adjoint
// (controls preserved). Running c then inverse_circuit(c) is the identity —
// the Loschmidt echo construction. Throws on measurement gates.
Circuit inverse_circuit(const Circuit& c);

// `a` followed by `b` (times renumbered so moments stay monotone).
Circuit concatenate(const Circuit& a, const Circuit& b);

// The gate-for-gate normal form of `c`: controls folded into plain unitaries
// and every unitary normalized (sorted targets, matrix bits permuted to
// match); measurement gates pass through untouched. Unlike fusion — which
// composes even same-qubit neighbours at max_fused_qubits = 1 — this keeps
// the gate boundaries intact, so per-gate instrumentation points (the
// trajectory runner's noise-channel applications) land exactly where they
// would on the raw circuit. Pure and deterministic: preparing once and
// sharing the result across trajectory sub-runs is bit-identical to
// normalizing per gate per run.
Circuit normalize_circuit(const Circuit& c);

}  // namespace qhip
