#include "src/core/gates.h"

#include <cmath>
#include <numbers>

#include "src/base/error.h"

namespace qhip {
namespace gates {

namespace {

using std::numbers::sqrt2;

constexpr cplx64 kI{0.0, 1.0};

Gate make1(unsigned time, qubit_t q, std::string name, std::vector<cplx64> m,
           std::vector<double> params = {}) {
  Gate g;
  g.name = std::move(name);
  g.time = time;
  g.qubits = {q};
  g.params = std::move(params);
  g.matrix = CMatrix(2, std::move(m));
  return g;
}

Gate make2(unsigned time, qubit_t q0, qubit_t q1, std::string name,
           std::vector<cplx64> m, std::vector<double> params = {}) {
  check(q0 != q1, "two-qubit gate '" + name + "' needs distinct qubits");
  Gate g;
  g.name = std::move(name);
  g.time = time;
  g.qubits = {q0, q1};
  g.params = std::move(params);
  g.matrix = CMatrix(4, std::move(m));
  return g;
}

}  // namespace

Gate id1(unsigned time, qubit_t q) {
  return make1(time, q, "id1", {1, 0, 0, 1});
}

Gate h(unsigned time, qubit_t q) {
  const double s = 1.0 / sqrt2;
  return make1(time, q, "h", {s, s, s, -s});
}

Gate x(unsigned time, qubit_t q) { return make1(time, q, "x", {0, 1, 1, 0}); }

Gate y(unsigned time, qubit_t q) { return make1(time, q, "y", {0, -kI, kI, 0}); }

Gate z(unsigned time, qubit_t q) { return make1(time, q, "z", {1, 0, 0, -1}); }

Gate s(unsigned time, qubit_t q) { return make1(time, q, "s", {1, 0, 0, kI}); }

Gate sdg(unsigned time, qubit_t q) { return make1(time, q, "sdg", {1, 0, 0, -kI}); }

Gate t(unsigned time, qubit_t q) {
  return make1(time, q, "t", {1, 0, 0, std::polar(1.0, std::numbers::pi / 4)});
}

Gate tdg(unsigned time, qubit_t q) {
  return make1(time, q, "tdg", {1, 0, 0, std::polar(1.0, -std::numbers::pi / 4)});
}

Gate x_1_2(unsigned time, qubit_t q) {
  const cplx64 a{0.5, 0.5}, b{0.5, -0.5};
  return make1(time, q, "x_1_2", {a, b, b, a});
}

Gate y_1_2(unsigned time, qubit_t q) {
  const cplx64 a{0.5, 0.5};
  return make1(time, q, "y_1_2", {a, -a, a, a});
}

Gate hz_1_2(unsigned time, qubit_t q) {
  // sqrt(W), W = (X + Y)/sqrt(2); the third single-qubit gate of the
  // Sycamore random-circuit gate set.
  const cplx64 a{0.5, 0.5};
  return make1(time, q, "hz_1_2", {a, -kI / sqrt2, 1.0 / sqrt2, a});
}

Gate rx(unsigned time, qubit_t q, double theta) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return make1(time, q, "rx", {c, -kI * s, -kI * s, c}, {theta});
}

Gate ry(unsigned time, qubit_t q, double theta) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return make1(time, q, "ry", {c, -s, s, c}, {theta});
}

Gate rz(unsigned time, qubit_t q, double theta) {
  return make1(time, q, "rz",
               {std::polar(1.0, -theta / 2), 0, 0, std::polar(1.0, theta / 2)},
               {theta});
}

Gate rxy(unsigned time, qubit_t q, double phi, double theta) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return make1(time, q, "rxy",
               {c, -kI * std::polar(1.0, -phi) * s, -kI * std::polar(1.0, phi) * s, c},
               {phi, theta});
}

Gate p(unsigned time, qubit_t q, double phi) {
  return make1(time, q, "p", {1, 0, 0, std::polar(1.0, phi)}, {phi});
}

Gate mg1(unsigned time, qubit_t q, const std::vector<cplx64>& u) {
  check(u.size() == 4, "mg1: need 4 matrix entries");
  return make1(time, q, "mg1", u);
}

Gate id2(unsigned time, qubit_t q0, qubit_t q1) {
  return make2(time, q0, q1, "id2",
               {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1});
}

Gate cz(unsigned time, qubit_t q0, qubit_t q1) {
  return make2(time, q0, q1, "cz",
               {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, -1});
}

Gate cnot(unsigned time, qubit_t control, qubit_t target) {
  // qubits = {control, target}: index bit 0 = control, bit 1 = target.
  // |c=1, t> -> |c=1, t^1>: columns 1 <-> 3 swap.
  return make2(time, control, target, "cnot",
               {1, 0, 0, 0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0});
}

Gate sw(unsigned time, qubit_t q0, qubit_t q1) {
  return make2(time, q0, q1, "sw",
               {1, 0, 0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0, 0, 1});
}

Gate is(unsigned time, qubit_t q0, qubit_t q1) {
  return make2(time, q0, q1, "is",
               {1, 0, 0, 0, 0, 0, kI, 0, 0, kI, 0, 0, 0, 0, 0, 1});
}

Gate fs(unsigned time, qubit_t q0, qubit_t q1, double theta, double phi) {
  const double c = std::cos(theta), s = std::sin(theta);
  return make2(time, q0, q1, "fs",
               {1, 0, 0, 0,
                0, c, -kI * s, 0,
                0, -kI * s, c, 0,
                0, 0, 0, std::polar(1.0, -phi)},
               {theta, phi});
}

Gate cp(unsigned time, qubit_t q0, qubit_t q1, double phi) {
  return make2(time, q0, q1, "cp",
               {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0,
                std::polar(1.0, phi)},
               {phi});
}

Gate mg2(unsigned time, qubit_t q0, qubit_t q1, const std::vector<cplx64>& u) {
  check(u.size() == 16, "mg2: need 16 matrix entries");
  return make2(time, q0, q1, "mg2", u);
}

Gate ccz(unsigned time, qubit_t q0, qubit_t q1, qubit_t q2) {
  check(q0 != q1 && q1 != q2 && q0 != q2, "ccz needs distinct qubits");
  CMatrix m = CMatrix::identity(8);
  m.at(7, 7) = -1.0;
  Gate g;
  g.name = "ccz";
  g.time = time;
  g.qubits = {q0, q1, q2};
  g.matrix = std::move(m);
  return g;
}

Gate ccx(unsigned time, qubit_t c0, qubit_t c1, qubit_t target) {
  check(c0 != c1 && c1 != target && c0 != target, "ccx needs distinct qubits");
  // qubits = {c0, c1, target}: bit 2 is the target; flip it when bits 0,1 set.
  CMatrix m = CMatrix::identity(8);
  m.at(3, 3) = m.at(7, 7) = 0.0;
  m.at(7, 3) = m.at(3, 7) = 1.0;
  Gate g;
  g.name = "ccx";
  g.time = time;
  g.qubits = {c0, c1, target};
  g.matrix = std::move(m);
  return g;
}

Gate measure(unsigned time, std::vector<qubit_t> qubits) {
  check(!qubits.empty(), "measure: need at least one qubit");
  Gate g;
  g.kind = GateKind::kMeasurement;
  g.name = "m";
  g.time = time;
  g.qubits = std::move(qubits);
  return g;
}

Gate controlled(Gate g, std::vector<qubit_t> controls) {
  check(!g.is_measurement(), "controlled: cannot control a measurement");
  for (qubit_t c : controls) {
    for (qubit_t q : g.qubits) {
      check(c != q, "controlled: control qubit overlaps target");
    }
  }
  g.controls.insert(g.controls.end(), controls.begin(), controls.end());
  return g;
}

const std::vector<std::string>& known_names() {
  static const std::vector<std::string> names = {
      "id1", "h",  "x",  "y",  "z",   "s",  "sdg", "t",   "tdg", "x_1_2",
      "y_1_2", "hz_1_2", "rx", "ry", "rz", "rxy", "p", "mg1",
      "id2", "cz", "cnot", "cx", "sw", "is", "fs", "cp", "mg2",
      "ccz", "ccx", "m"};
  return names;
}

}  // namespace gates
}  // namespace qhip
