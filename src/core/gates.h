// The qsim gate set (gates_qsim.h equivalent).
//
// These are the gates accepted by the qsim text circuit format and produced
// by the RQC generator: the Clifford+T set, square-root gates used by the
// Sycamore supremacy circuits (x_1_2, y_1_2, hz_1_2), rotation gates, and
// the two-qubit entanglers (cz, cnot, swap, iswap, fsim, cphase).
//
// Matrix convention: bit j of a matrix index corresponds to qubits[j];
// qubits[0] is the least significant bit (see matrix.h).
#pragma once

#include <string>
#include <vector>

#include "src/core/gate.h"

namespace qhip {
namespace gates {

// --- one-qubit gates -------------------------------------------------------
Gate id1(unsigned time, qubit_t q);
Gate h(unsigned time, qubit_t q);
Gate x(unsigned time, qubit_t q);
Gate y(unsigned time, qubit_t q);
Gate z(unsigned time, qubit_t q);
Gate s(unsigned time, qubit_t q);
Gate sdg(unsigned time, qubit_t q);
Gate t(unsigned time, qubit_t q);
Gate tdg(unsigned time, qubit_t q);
Gate x_1_2(unsigned time, qubit_t q);   // sqrt(X)
Gate y_1_2(unsigned time, qubit_t q);   // sqrt(Y)
Gate hz_1_2(unsigned time, qubit_t q);  // sqrt(W), W = (X + Y)/sqrt(2)
Gate rx(unsigned time, qubit_t q, double theta);
Gate ry(unsigned time, qubit_t q, double theta);
Gate rz(unsigned time, qubit_t q, double theta);
// Rotation about cos(phi) X + sin(phi) Y by angle theta (qsim's rxy).
Gate rxy(unsigned time, qubit_t q, double phi, double theta);
Gate p(unsigned time, qubit_t q, double phi);  // phase gate diag(1, e^{i phi})
// Generic 1-qubit unitary from row-major entries (qsim's mg1 "matrix gate").
Gate mg1(unsigned time, qubit_t q, const std::vector<cplx64>& u);

// --- two-qubit gates --------------------------------------------------------
Gate id2(unsigned time, qubit_t q0, qubit_t q1);
Gate cz(unsigned time, qubit_t q0, qubit_t q1);
Gate cnot(unsigned time, qubit_t control, qubit_t target);
Gate sw(unsigned time, qubit_t q0, qubit_t q1);  // SWAP
Gate is(unsigned time, qubit_t q0, qubit_t q1);  // iSWAP
Gate fs(unsigned time, qubit_t q0, qubit_t q1, double theta, double phi);  // fSim
Gate cp(unsigned time, qubit_t q0, qubit_t q1, double phi);  // controlled phase
Gate mg2(unsigned time, qubit_t q0, qubit_t q1, const std::vector<cplx64>& u);

// --- three-qubit gates ------------------------------------------------------
Gate ccz(unsigned time, qubit_t q0, qubit_t q1, qubit_t q2);
Gate ccx(unsigned time, qubit_t c0, qubit_t c1, qubit_t target);  // Toffoli

// --- measurement -------------------------------------------------------------
Gate measure(unsigned time, std::vector<qubit_t> qubits);

// Wraps `g` with additional all-ones controls (qsim's MakeControlledGate).
Gate controlled(Gate g, std::vector<qubit_t> controls);

// All mnemonics understood by the circuit parser, for diagnostics.
const std::vector<std::string>& known_names();

}  // namespace gates
}  // namespace qhip
