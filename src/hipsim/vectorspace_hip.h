// RAII device vector (vectorspace_cuda.h -> vectorspace_hip.h, conversion
// inventory item 7): allocation, host<->device copies, and synchronization
// for the state vector living in (virtual) GPU memory.
#pragma once

#include <cstddef>

#include "src/base/bits.h"
#include "src/base/error.h"
#include "src/statespace/statevector.h"
#include "src/vgpu/device.h"

namespace qhip::hipsim {

// A 2^n-amplitude state vector in device memory.
template <typename FP>
class DeviceStateVector {
 public:
  DeviceStateVector(vgpu::Device& dev, unsigned num_qubits)
      : dev_(&dev), num_qubits_(num_qubits), size_(pow2(num_qubits)) {
    check(num_qubits >= 1 && num_qubits <= 34,
          "DeviceStateVector: qubits out of range");
    amps_ = dev_->malloc_n<cplx<FP>>(size_);
  }

  ~DeviceStateVector() {
    if (amps_) dev_->free(amps_);
  }

  DeviceStateVector(const DeviceStateVector&) = delete;
  DeviceStateVector& operator=(const DeviceStateVector&) = delete;

  DeviceStateVector(DeviceStateVector&& o) noexcept
      : dev_(o.dev_), num_qubits_(o.num_qubits_), size_(o.size_), amps_(o.amps_) {
    o.amps_ = nullptr;
  }

  unsigned num_qubits() const { return num_qubits_; }
  index_t size() const { return size_; }
  cplx<FP>* device_data() { return amps_; }
  const cplx<FP>* device_data() const { return amps_; }
  vgpu::Device& device() { return *dev_; }

  // hipMemcpy HtoD of a full host state.
  void upload(const StateVector<FP>& host) {
    check(host.size() == size_, "DeviceStateVector::upload: size mismatch");
    dev_->memcpy_h2d(amps_, host.data(), size_ * sizeof(cplx<FP>));
  }

  // hipMemcpy DtoH into a full host state.
  void download(StateVector<FP>& host) const {
    check(host.size() == size_, "DeviceStateVector::download: size mismatch");
    dev_->memcpy_d2h(host.data(), amps_, size_ * sizeof(cplx<FP>));
  }

  StateVector<FP> to_host() const {
    StateVector<FP> s(num_qubits_);
    download(s);
    return s;
  }

 private:
  vgpu::Device* dev_;
  unsigned num_qubits_;
  index_t size_;
  cplx<FP>* amps_ = nullptr;
};

}  // namespace qhip::hipsim
