// Multi-GCD (multi-GPU) HIP backend — the paper's stated future work:
// "the multi-GPU porting for the HIP backend is an important goal for
// future work, offering the prospect of simulating ... even larger qubit
// counts" (§7). Each MI250X package already exposes two GCDs as separate
// devices, so this is the natural next step for the port.
//
// Design: the cache-blocking distribution of Doi & Horii (cited by the
// paper's related work) adapted to 2^d virtual GCDs.
//
//  * The state vector is split by the top d physical index bits: GCD k
//    holds the 2^(n-d) amplitudes whose top bits equal k ("global" slots);
//    the low n-d bits are "local" slots addressable inside one GCD.
//  * A logical->physical qubit layout is maintained. Gates whose targets
//    are all local run independently on every GCD with the single-device
//    ApplyGateH/L kernels — no communication.
//  * A gate touching a global slot first swaps that slot with a free local
//    slot: for each GCD pair differing in the global bit, the halves with
//    opposite local-bit values are exchanged (pack kernel -> peer copy ->
//    unpack kernel; the emulator stages peer copies through the host and
//    records them as hipMemcpyPeer traffic). The layout permutation is
//    updated instead of ever moving data back.
//  * Sampling draws per-GCD probability masses, splits the sorted uniforms
//    across GCDs, resolves locally, and maps physical indices back through
//    the layout.
#pragma once

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "src/base/bits.h"
#include "src/base/deadline.h"
#include "src/base/error.h"
#include "src/core/circuit.h"
#include "src/hipsim/simulator_hip.h"
#include "src/hipsim/state_space_hip_kernels.h"
#include "src/hipsim/vectorspace_hip.h"

namespace qhip::hipsim {

struct MultiGcdStats {
  std::uint64_t slot_swaps = 0;       // global<->local qubit swaps
  std::uint64_t peer_bytes = 0;       // inter-GCD traffic
  std::uint64_t local_gate_launches = 0;
};

// Packs the elements of `amps` whose local bit `bit_pos` equals `bit_value`
// into the contiguous buffer `out` (size/2 elements), ordered by the
// remaining bits.
template <typename FP>
struct PackHalfKernel {
  const cplx<FP>* amps = nullptr;
  cplx<FP>* out = nullptr;
  index_t half = 0;  // size / 2
  unsigned bit_pos = 0;
  unsigned bit_value = 0;

  void operator()(vgpu::KernelCtx& ctx) const {
    const index_t stride = static_cast<index_t>(ctx.grid_dim()) * ctx.block_dim();
    const index_t bit = index_t{1} << bit_pos;
    for (index_t t = ctx.global_idx(); t < half; t += stride) {
      const index_t lo = t & (bit - 1);
      const index_t src = ((t >> bit_pos) << (bit_pos + 1)) | lo |
                          (bit_value ? bit : 0);
      out[t] = amps[src];
    }
  }
};

template <typename FP>
struct UnpackHalfKernel {
  cplx<FP>* amps = nullptr;
  const cplx<FP>* in = nullptr;
  index_t half = 0;
  unsigned bit_pos = 0;
  unsigned bit_value = 0;

  void operator()(vgpu::KernelCtx& ctx) const {
    const index_t stride = static_cast<index_t>(ctx.grid_dim()) * ctx.block_dim();
    const index_t bit = index_t{1} << bit_pos;
    for (index_t t = ctx.global_idx(); t < half; t += stride) {
      const index_t lo = t & (bit - 1);
      const index_t dst = ((t >> bit_pos) << (bit_pos + 1)) | lo |
                          (bit_value ? bit : 0);
      amps[dst] = in[t];
    }
  }
};

template <typename FP>
class MultiGcdSimulator {
 public:
  // `num_gcds` must be a power of two >= 2; each GCD gets its own virtual
  // device with `props` (MI250X GCD by default). A non-null `faults` plan is
  // shared by all GCDs, so occurrence counters ("the Nth allocation") are
  // global across the job rather than per device.
  MultiGcdSimulator(unsigned num_qubits, unsigned num_gcds,
                    vgpu::DeviceProps props = vgpu::mi250x_gcd(),
                    Tracer* tracer = nullptr,
                    std::shared_ptr<vgpu::FaultPlan> faults = nullptr)
      : n_(num_qubits),
        d_(log2_exact(num_gcds)),
        local_(num_qubits - d_),
        tracer_(tracer) {
    check(is_pow2(num_gcds) && num_gcds >= 2,
          "MultiGcdSimulator: num_gcds must be a power of two >= 2");
    check(num_qubits > d_ + 1, "MultiGcdSimulator: too few qubits to split");
    layout_.resize(n_);
    std::iota(layout_.begin(), layout_.end(), 0u);  // phys slot -> logical q
    for (unsigned k = 0; k < num_gcds; ++k) {
      devices_.push_back(std::make_unique<vgpu::Device>(props, tracer));
      if (faults) devices_.back()->set_fault_plan(faults);
      sims_.push_back(std::make_unique<SimulatorHIP<FP>>(*devices_.back()));
      states_.push_back(
          std::make_unique<DeviceStateVector<FP>>(*devices_.back(), local_));
      // Per-GCD exchange machinery: a stream for the pack -> peer copy ->
      // unpack pipeline, a persistent staging buffer (half the local state),
      // and events ordering the exchange against the gate kernels.
      xstreams_.push_back(devices_.back()->create_stream());
      ev_gates_.push_back(devices_.back()->create_event());
      ev_exchanged_.push_back(devices_.back()->create_event());
      xbufs_.push_back(devices_.back()->template malloc_n<cplx<FP>>(
          states_.back()->size() >> 1));
    }
    set_zero_state();
  }

  ~MultiGcdSimulator() {
    // free() joins each device's streams, so no exchange op can be pending.
    for (unsigned k = 0; k < num_gcds(); ++k) devices_[k]->free(xbufs_[k]);
  }

  unsigned num_qubits() const { return n_; }
  unsigned num_gcds() const { return 1u << d_; }
  // hipDeviceSynchronize on every GCD: joins all pending gate and exchange
  // work (needed before reading wall-clock timers).
  void synchronize() {
    for (auto& d : devices_) d->synchronize();
  }
  const MultiGcdStats& stats() const { return stats_; }
  vgpu::Device& device(unsigned k) { return *devices_[k]; }

  void set_zero_state() {
    for (unsigned k = 0; k < num_gcds(); ++k) {
      sims_[k]->state_space().fill(*states_[k], cplx<FP>{});
    }
    sims_[0]->state_space().set_ampl(*states_[0], 0, cplx<FP>{1});
    std::iota(layout_.begin(), layout_.end(), 0u);
  }

  // Applies one (unitary) gate; controlled gates are folded first.
  void apply_gate(const Gate& gate) {
    Gate g = normalized(gate.controls.empty() ? gate : expand_controls(gate));
    check(!g.is_measurement(), "MultiGcdSimulator: measurement via measure()");
    check(g.num_targets() <= local_,
          "MultiGcdSimulator: gate wider than the local qubit count");

    // Localize every target: swap global slots with free local slots.
    for (qubit_t q : g.qubits) localize(q, g.qubits);

    // Remap logical targets to physical slots (all local now).
    Gate phys = g;
    for (auto& q : phys.qubits) q = slot_of(q);
    phys = normalized(phys);

    for (unsigned k = 0; k < num_gcds(); ++k) {
      sims_[k]->apply_gate(phys, *states_[k]);
      ++stats_.local_gate_launches;
    }
  }

  // `deadline` is checked between gates (cooperative cancellation; a gate's
  // local launches and slot exchanges are never interrupted mid-flight).
  void run(const Circuit& c, std::uint64_t seed = 0,
           std::vector<index_t>* measurements = nullptr,
           const Deadline& deadline = {}) {
    check(c.num_qubits == n_, "MultiGcdSimulator::run: qubit mismatch");
    std::uint64_t meas_idx = 0;
    for (const auto& g : c.gates) {
      deadline.check("MultiGcdSimulator::run");
      if (g.is_measurement()) {
        const index_t outcome =
            measure(g.qubits, seed ^ (0x9E3779B97F4A7C15 * ++meas_idx));
        if (measurements) measurements->push_back(outcome);
      } else {
        apply_gate(g);
      }
    }
  }

  double norm2() {
    double total = 0;
    for (unsigned k = 0; k < num_gcds(); ++k) {
      total += sims_[k]->state_space().norm2(*states_[k]);
    }
    return total;
  }

  // Gathers the full state in *logical* qubit order.
  StateVector<FP> to_host() const {
    StateVector<FP> out(n_);
    out[0] = cplx<FP>{};
    StateVector<FP> part(local_);
    for (unsigned k = 0; k < num_gcds(); ++k) {
      states_[k]->download(part);
      const index_t base = static_cast<index_t>(k) << local_;
      for (index_t i = 0; i < part.size(); ++i) {
        out[physical_to_logical(base | i)] = part[i];
      }
    }
    return out;
  }

  // Maps ascending unit positions — fractions of the total squared mass —
  // to logical sample indices; the sampling core behind sample(). Public as
  // a testable seam: positions at or beyond 1.0 fall past every cumulative
  // boundary and exercise the rounding tail below, which uniform draws in
  // [0, 1) almost never reach through sample() itself.
  std::vector<index_t> resolve_sorted_positions(std::vector<double> rs,
                                                std::uint64_t seed) {
    // Per-GCD mass. The split loop accumulates csum in the same order, so
    // the final boundary is bit-identical to `total`.
    std::vector<double> mass(num_gcds());
    double total = 0;
    for (unsigned k = 0; k < num_gcds(); ++k) {
      mass[k] = sims_[k]->state_space().norm2(*states_[k]);
      total += mass[k];
    }
    for (auto& r : rs) r *= total;

    std::vector<index_t> out;
    out.reserve(rs.size());
    double csum = 0;
    std::size_t k0 = 0;
    for (unsigned k = 0; k < num_gcds(); ++k) {
      std::size_t k1 = k0;
      while (k1 < rs.size() && rs[k1] < csum + mass[k]) ++k1;
      if (k1 > k0) {
        // Draw (k1 - k0) samples from GCD k's local distribution.
        const auto local = sims_[k]->state_space().sample(
            *states_[k], k1 - k0, seed ^ (0x9E37ull * (k + 1)));
        const index_t base = static_cast<index_t>(k) << local_;
        for (index_t li : local) {
          out.push_back(physical_to_logical(base | li));
        }
      }
      csum += mass[k];
      k0 = k1;
    }
    if (out.size() < rs.size()) {
      // Tail from rounding: positions past every boundary. This used to
      // draw from the *last* GCD unconditionally — zero-mass after a
      // measurement collapse pins its distribution to |0...0>, yielding
      // impossible outcomes — and reused seed ^ 0x777 for every draw, so
      // all tail samples were copies of one value. Draw from the
      // maximum-mass GCD and advance the seed per draw instead.
      unsigned kmax = 0;
      for (unsigned k = 1; k < num_gcds(); ++k) {
        if (mass[k] > mass[kmax]) kmax = k;
      }
      const index_t base = static_cast<index_t>(kmax) << local_;
      std::uint64_t tail_seed = seed ^ 0x777;
      while (out.size() < rs.size()) {
        const auto extra =
            sims_[kmax]->state_space().sample(*states_[kmax], 1, tail_seed++);
        out.push_back(physical_to_logical(base | extra[0]));
      }
    }
    return out;
  }

  // Born sampling across GCDs; returned indices are logical.
  std::vector<index_t> sample(std::size_t num_samples, std::uint64_t seed) {
    if (num_samples == 0) return {};
    // Sorted uniforms in [0, 1), resolved against the per-GCD masses.
    std::vector<double> rs(num_samples);
    Philox rng(seed, /*stream=*/0x6a17);
    for (auto& r : rs) r = rng.uniform();
    std::sort(rs.begin(), rs.end());
    std::vector<index_t> out = resolve_sorted_positions(std::move(rs), seed);
    // Deterministic de-sort.
    Philox shuf(seed, /*stream=*/0x6a18);
    for (std::size_t i = out.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(shuf.uniform() * i);
      std::swap(out[i - 1], out[j]);
    }
    return out;
  }

  // Measures logical `qubits` (collapse + renormalize); returns outcome.
  index_t measure(const std::vector<qubit_t>& qubits, std::uint64_t seed) {
    check(!qubits.empty(), "measure: empty qubit list");
    const std::vector<index_t> one = sample(1, seed);
    const index_t outcome = gather_bits(one[0], qubits);

    // Collapse: physical constraint per GCD.
    index_t lmask = 0, lval = 0;  // over local slots
    for (std::size_t j = 0; j < qubits.size(); ++j) {
      const unsigned slot = slot_of(qubits[j]);
      const index_t bitval = (outcome >> j) & 1;
      if (slot < local_) {
        lmask |= index_t{1} << slot;
        lval |= bitval << slot;
      }
    }
    for (unsigned k = 0; k < num_gcds(); ++k) {
      bool device_allowed = true;
      for (std::size_t j = 0; j < qubits.size(); ++j) {
        const unsigned slot = slot_of(qubits[j]);
        if (slot >= local_) {
          const index_t devbit = (k >> (slot - local_)) & 1;
          device_allowed &= devbit == ((outcome >> j) & 1);
        }
      }
      if (!device_allowed) {
        sims_[k]->state_space().fill(*states_[k], cplx<FP>{});
      } else if (lmask != 0) {
        CollapseKernel<FP> ck{states_[k]->device_data(), states_[k]->size(),
                              lmask, lval};
        const index_t blocks =
            (states_[k]->size() + kReduceBlockDim - 1) / kReduceBlockDim;
        devices_[k]->launch(
            "Collapse_Kernel",
            {static_cast<unsigned>(std::min<index_t>(blocks, 4096)),
             kReduceBlockDim, 0, false, {}},
            ck);
      }
    }
    // Renormalize globally.
    const double n2 = norm2();
    check(n2 > 0, "measure: zero state after collapse");
    const FP inv = static_cast<FP>(1.0 / std::sqrt(n2));
    for (unsigned k = 0; k < num_gcds(); ++k) {
      ScaleKernel<FP> sk{states_[k]->device_data(), states_[k]->size(), inv};
      const index_t blocks =
          (states_[k]->size() + kReduceBlockDim - 1) / kReduceBlockDim;
      devices_[k]->launch(
          "Scale_Kernel",
          {static_cast<unsigned>(std::min<index_t>(blocks, 4096)),
           kReduceBlockDim, 0, false, {}},
          sk);
    }
    return outcome;
  }

 private:
  unsigned slot_of(qubit_t logical) const {
    for (unsigned s = 0; s < n_; ++s) {
      if (layout_[s] == logical) return s;
    }
    throw Error("MultiGcdSimulator: logical qubit not in layout");
  }

  index_t physical_to_logical(index_t phys) const {
    index_t logical = 0;
    for (unsigned s = 0; s < n_; ++s) {
      if (phys & (index_t{1} << s)) logical |= index_t{1} << layout_[s];
    }
    return logical;
  }

  // Ensures logical qubit q sits in a local slot, swapping with a free
  // local slot if needed. `targets` are the gate's logical qubits (their
  // slots must not be displaced).
  void localize(qubit_t q, const std::vector<qubit_t>& targets) {
    const unsigned gslot = slot_of(q);
    if (gslot < local_) return;

    // Find the highest local slot holding a non-target logical qubit.
    unsigned lslot = local_;
    for (unsigned s = local_; s-- > 0;) {
      const qubit_t holder = layout_[s];
      if (std::find(targets.begin(), targets.end(), holder) == targets.end()) {
        lslot = s;
        break;
      }
    }
    check(lslot < local_, "MultiGcdSimulator: no free local slot");
    swap_slots(gslot, lslot);
  }

  // Exchanges a global slot with a local slot across all GCD pairs. Three
  // asynchronous phases on the per-GCD exchange streams: (1) behind the
  // pending gate kernels, pack and stage down to the host on every GCD
  // concurrently; (2) join the exchange streams — the host-staged peer
  // barrier; (3) upload the crossed halves and unpack, handing ordering back
  // to the compute streams via stream_wait_event. Devices of a pair (and
  // all pairs) overlap their pack/copy work.
  void swap_slots(unsigned gslot, unsigned lslot) {
    const unsigned gbit = gslot - local_;  // bit within the GCD index
    const index_t half = states_[0]->size() >> 1;
    const std::size_t bytes = half * sizeof(cplx<FP>);

    struct PairStage {
      unsigned a, b;  // low / high side of the pair
      std::vector<cplx<FP>> host_a, host_b;
    };
    std::vector<PairStage> pairs;
    for (unsigned k = 0; k < num_gcds(); ++k) {
      if ((k >> gbit) & 1) continue;  // k is the low side of the pair
      pairs.push_back({k, k | (1u << gbit), std::vector<cplx<FP>>(half),
                       std::vector<cplx<FP>>(half)});
    }

    // Phase 1: pack A's half with local bit = 1 and B's half with local
    // bit = 0, then stage both down to the host, all asynchronously.
    for (auto& p : pairs) {
      pack_to_host(p.a, lslot, 1, p.host_a.data(), bytes);
      pack_to_host(p.b, lslot, 0, p.host_b.data(), bytes);
    }
    // Phase 2: the staged halves must be on the host before crossing over.
    for (auto& p : pairs) {
      devices_[p.a]->stream_synchronize(xstreams_[p.a]);
      devices_[p.b]->stream_synchronize(xstreams_[p.b]);
    }
    // Phase 3: crossed upload + unpack (recorded as hipMemcpyPeer traffic).
    for (auto& p : pairs) {
      unpack_from_host(p.a, lslot, 1, p.host_b.data(), bytes);
      unpack_from_host(p.b, lslot, 0, p.host_a.data(), bytes);
      stats_.peer_bytes += 2 * bytes;
    }
    std::swap(layout_[gslot], layout_[lslot]);
    ++stats_.slot_swaps;
  }

  // Pack half of GCD k's state into its exchange buffer and stage it to
  // `host`, on the exchange stream, ordered after pending gate kernels.
  void pack_to_host(unsigned k, unsigned bit_pos, unsigned bit_value,
                    cplx<FP>* host, std::size_t bytes) {
    devices_[k]->record_event(ev_gates_[k], sims_[k]->compute_stream());
    devices_[k]->stream_wait_event(xstreams_[k], ev_gates_[k]);
    launch_pack(k, xbufs_[k], bit_pos, bit_value);
    devices_[k]->memcpy_d2h_async(host, xbufs_[k], bytes, xstreams_[k]);
  }

  // Upload the peer's half into GCD k's exchange buffer and scatter it into
  // the state; subsequent gate kernels wait for the unpack.
  void unpack_from_host(unsigned k, unsigned bit_pos, unsigned bit_value,
                        const cplx<FP>* host, std::size_t bytes) {
    devices_[k]->memcpy_h2d_async(xbufs_[k], host, bytes, xstreams_[k]);
    launch_unpack(k, xbufs_[k], bit_pos, bit_value);
    devices_[k]->record_event(ev_exchanged_[k], xstreams_[k]);
    devices_[k]->stream_wait_event(sims_[k]->compute_stream(),
                                   ev_exchanged_[k]);
  }

  void launch_pack(unsigned k, cplx<FP>* buf, unsigned bit_pos,
                   unsigned bit_value) {
    const index_t half = states_[k]->size() >> 1;
    PackHalfKernel<FP> pk{states_[k]->device_data(), buf, half, bit_pos,
                          bit_value};
    devices_[k]->launch("PackHalf_Kernel", grid_for(half, xstreams_[k]), pk);
  }

  void launch_unpack(unsigned k, const cplx<FP>* buf, unsigned bit_pos,
                     unsigned bit_value) {
    const index_t half = states_[k]->size() >> 1;
    UnpackHalfKernel<FP> uk{states_[k]->device_data(), buf, half, bit_pos,
                            bit_value};
    devices_[k]->launch("UnpackHalf_Kernel", grid_for(half, xstreams_[k]), uk);
  }

  static vgpu::LaunchConfig grid_for(index_t size, vgpu::Stream s = {}) {
    const index_t blocks = (size + kReduceBlockDim - 1) / kReduceBlockDim;
    return {static_cast<unsigned>(std::min<index_t>(std::max<index_t>(blocks, 1), 4096)),
            kReduceBlockDim, 0, false, s};
  }

  unsigned n_;
  unsigned d_;
  unsigned local_;
  Tracer* tracer_;
  std::vector<std::unique_ptr<vgpu::Device>> devices_;
  std::vector<std::unique_ptr<SimulatorHIP<FP>>> sims_;
  std::vector<std::unique_ptr<DeviceStateVector<FP>>> states_;
  std::vector<vgpu::Stream> xstreams_;   // per-GCD exchange stream
  std::vector<vgpu::Event> ev_gates_;    // gate kernels drained, per GCD
  std::vector<vgpu::Event> ev_exchanged_;  // exchange landed, per GCD
  std::vector<cplx<FP>*> xbufs_;         // persistent pack/unpack staging
  std::vector<qubit_t> layout_;  // physical slot -> logical qubit
  MultiGcdStats stats_;
};

}  // namespace qhip::hipsim
