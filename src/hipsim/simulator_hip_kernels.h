// Gate-application kernels (simulator_cuda_kernels.h ->
// simulator_hip_kernels.h, conversion inventory item 3).
//
// qsim's GPU backend splits qubit indices at log2(32) = 5:
//
//  * ApplyGateH_Kernel — every target qubit >= 5. The 32 amplitudes of a
//    warp-aligned tile then belong to 32 *different* gate groups with
//    identical relative indexing, so each thread independently gathers its
//    group (strides >= 32 apart), multiplies by the gate matrix and scatters
//    back. No intra-block communication: launched in direct mode.
//
//  * ApplyGateL_Kernel — at least one target qubit < 5. Gate groups now mix
//    amplitudes *within* a 32-amplitude tile, so a workgroup stages the
//    32 * 2^|H| amplitudes it needs (H = high targets) into shared memory —
//    real and imaginary parts in separate arrays, as the paper describes —
//    synchronizes, computes, synchronizes, and writes back. Launched in
//    fiber mode (uses __syncthreads).
//
// Controlled gates reuse the same kernels with a (mask, value) constraint on
// the group base index, mirroring qsim's ApplyControlledGate kernels.
//
// Kernel parameters are captured by value into the kernel functor, just as
// real HIP kernel arguments are passed by value through the launch packet.
#pragma once

#include <array>

#include "src/base/bits.h"
#include "src/vgpu/kernel_ctx.h"
#include "src/base/types.h"

namespace qhip::hipsim {

// Low/high split point: log2 of the 32-amplitude tile (paper §2.3).
inline constexpr unsigned kLowBits = 5;
inline constexpr unsigned kTile = 1u << kLowBits;  // 32

// Workgroup sizes used by the paper's port (§4): 64 threads for the H
// kernel, 32 for the L kernel (fixed by the shared-memory array sizes; on
// AMD this under-fills the 64-wide wavefront, one of the observed
// inefficiencies).
inline constexpr unsigned kHBlockDim = 64;
inline constexpr unsigned kLBlockDim = kTile;

// Static kernel-argument block shared by both kernels.
template <typename FP>
struct GateArgs {
  const cplx<FP>* matrix = nullptr;  // device pointer, row-major 2^q x 2^q
  cplx<FP>* amps = nullptr;          // device state vector
  unsigned num_qubits = 0;
  unsigned q = 0;                      // gate width
  std::array<qubit_t, 6> targets{};    // ascending
  // Controlled-gate constraint: group base must satisfy
  // (base & ctrl_mask) == ctrl_value. Zero mask = uncontrolled.
  index_t ctrl_mask = 0;
  index_t ctrl_value = 0;
};

// --- ApplyGateH_Kernel -------------------------------------------------------
//
// One thread per gate group. Group id g (over the grid) is expanded by
// inserting zeros at the target *and control* positions; control bits are
// then forced to their required values.
template <typename FP>
struct ApplyGateHKernel {
  GateArgs<FP> a;
  index_t num_groups = 0;
  std::array<qubit_t, 12> expand_positions{};  // targets + controls, ascending
  unsigned num_expand = 0;

  void operator()(vgpu::KernelCtx& ctx) const {
    const index_t g = ctx.global_idx();
    if (g >= num_groups) return;

    index_t base = g;
    for (unsigned i = 0; i < num_expand; ++i) {
      const index_t lo = base & low_mask(expand_positions[i]);
      base = ((base >> expand_positions[i]) << (expand_positions[i] + 1)) | lo;
    }
    base |= a.ctrl_value;

    const unsigned d = 1u << a.q;
    std::array<cplx<FP>, 64> tmp;
    std::array<index_t, 64> idx;
    for (unsigned k = 0; k < d; ++k) {
      index_t m = 0;
      for (unsigned j = 0; j < a.q; ++j) {
        if (k & (1u << j)) m |= pow2(a.targets[j]);
      }
      idx[k] = base | m;
      tmp[k] = a.amps[idx[k]];
    }
    for (unsigned r = 0; r < d; ++r) {
      cplx<FP> acc{};
      const cplx<FP>* row = a.matrix + static_cast<std::size_t>(r) * d;
      for (unsigned c = 0; c < d; ++c) acc += row[c] * tmp[c];
      a.amps[idx[r]] = acc;
    }
  }
};

// --- ApplyGateL_Kernel -------------------------------------------------------
//
// One workgroup per supergroup of T = 32 * 2^|H| amplitudes. Local index
// layout: bits [0, 5) are the tile offset, bits [5, 5+|H|) enumerate the
// high-target combinations. Shared memory holds the staged amplitudes as
// separate real/imaginary FP arrays of length T.
template <typename FP>
struct ApplyGateLKernel {
  GateArgs<FP> a;
  index_t num_supergroups = 0;
  std::array<qubit_t, 6> high_targets{};  // ascending targets >= kLowBits
  unsigned num_high = 0;
  // Positions to expand the supergroup id over: the 5 tile bits, the high
  // targets, and any control bits; ascending.
  std::array<qubit_t, 18> expand_positions{};
  unsigned num_expand = 0;
  // Local (shared-memory) bit position of each gate target.
  std::array<unsigned, 6> local_targets{};

  void operator()(vgpu::KernelCtx& ctx) const {
    const index_t sg = ctx.block_idx();
    if (sg >= num_supergroups) return;

    index_t gbase = sg;
    for (unsigned i = 0; i < num_expand; ++i) {
      const index_t lo = gbase & low_mask(expand_positions[i]);
      gbase = ((gbase >> expand_positions[i]) << (expand_positions[i] + 1)) | lo;
    }
    gbase |= a.ctrl_value;

    const unsigned t_total = kTile << num_high;  // staged amplitudes
    FP* sre = ctx.shared_as<FP>(0);
    FP* sim = ctx.shared_as<FP>(sizeof(FP) * t_total);

    // Global address of local element j.
    auto global_of = [&](unsigned j) {
      const unsigned jl = j & (kTile - 1);
      const unsigned jh = j >> kLowBits;
      index_t m = 0;
      for (unsigned k = 0; k < num_high; ++k) {
        if (jh & (1u << k)) m |= pow2(high_targets[k]);
      }
      return gbase | jl | m;
    };

    // Stage.
    for (unsigned j = ctx.thread_idx(); j < t_total; j += ctx.block_dim()) {
      const cplx<FP> v = a.amps[global_of(j)];
      sre[j] = v.real();
      sim[j] = v.imag();
    }
    ctx.syncthreads();

    // Compute: each thread owns the local elements j = tid, tid+32, ...
    const unsigned d = 1u << a.q;
    std::array<cplx<FP>, 64> out;
    unsigned count = 0;
    for (unsigned j = ctx.thread_idx(); j < t_total; j += ctx.block_dim()) {
      // Row of the matrix this element corresponds to.
      unsigned r = 0;
      unsigned lbase = j;
      for (unsigned k = 0; k < a.q; ++k) {
        if (j & (1u << local_targets[k])) r |= 1u << k;
        lbase &= ~(1u << local_targets[k]);
      }
      cplx<FP> acc{};
      const cplx<FP>* row = a.matrix + static_cast<std::size_t>(r) * d;
      for (unsigned c = 0; c < d; ++c) {
        unsigned src = lbase;
        for (unsigned k = 0; k < a.q; ++k) {
          if (c & (1u << k)) src |= 1u << local_targets[k];
        }
        acc += row[c] * cplx<FP>(sre[src], sim[src]);
      }
      out[count++] = acc;
    }
    ctx.syncthreads();

    // Write back.
    count = 0;
    for (unsigned j = ctx.thread_idx(); j < t_total; j += ctx.block_dim()) {
      a.amps[global_of(j)] = out[count++];
    }
  }
};

}  // namespace qhip::hipsim
