// The qsim HIP backend simulator (simulator_cuda.h -> simulator_hip.h,
// conversion inventory item 2): ApplyGate / ApplyControlledGate dispatching
// to the H or L kernel, plus whole-circuit execution.
//
// Per-gate flow, matching the paper's trace (Figures 1 and 6): the gate
// matrix is staged to the device with hipMemcpyAsync on a dedicated copy
// stream, then ApplyGateH_Kernel or ApplyGateL_Kernel is launched on the
// compute stream. Matrix staging is double-buffered and ordered with events
// (hipStreamWaitEvent), so the upload for gate g+1 overlaps the kernel for
// gate g — the copy/compute overlap visible in the paper's rocprof
// timelines. A gate is "low" when any target qubit index is below
// log2(32) = 5 (paper §2.3).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/base/deadline.h"
#include "src/base/error.h"
#include "src/core/circuit.h"
#include "src/hipsim/simulator_hip_kernels.h"
#include "src/hipsim/state_space_hip.h"
#include "src/hipsim/vectorspace_hip.h"
#include "src/simulator/apply.h"  // detail::matrix_as

namespace qhip::hipsim {

template <typename FP>
class SimulatorHIP {
 public:
  using fp_type = FP;

  explicit SimulatorHIP(vgpu::Device& dev)
      : dev_(&dev),
        space_(dev),
        stream_(dev.create_stream()),
        copy_stream_(dev.create_stream()) {
    // Double-buffered device staging for gate matrices (<= 64x64): while the
    // kernel for gate g reads one buffer, the upload for gate g+1 fills the
    // other on the copy stream.
    for (unsigned b = 0; b < 2; ++b) {
      d_matrix_[b] = dev_->malloc_n<cplx<FP>>(64 * 64);
      ev_upload_[b] = dev_->create_event();
      ev_kernel_[b] = dev_->create_event();
    }
  }

  ~SimulatorHIP() {
    // free() joins all streams first, so no pending kernel or upload can
    // still reference the staging buffers.
    dev_->free(d_matrix_[0]);
    dev_->free(d_matrix_[1]);
  }

  SimulatorHIP(const SimulatorHIP&) = delete;
  SimulatorHIP& operator=(const SimulatorHIP&) = delete;

  static constexpr const char* backend_name() { return "hip"; }

  vgpu::Device& device() { return *dev_; }
  StateSpaceHIP<FP>& state_space() { return space_; }
  // The stream gate kernels run on; external work that must order against
  // pending gates (e.g. multi-GCD slot exchanges) synchronizes with it via
  // events.
  vgpu::Stream compute_stream() const { return stream_; }

  // Applies one gate. Controlled gates with all-high targets use the native
  // control-mask path; controlled gates with low targets are folded into
  // their matrix first (within the 6-qubit kernel limit).
  void apply_gate(const Gate& gate, DeviceStateVector<FP>& s) {
    check(!gate.is_measurement(), "apply_gate: measurement gate");
    Gate g = normalized(gate);
    const bool low =
        !g.qubits.empty() && g.qubits.front() < kLowBits;
    if (!g.controls.empty() && low) {
      // L kernel has no native control path: fold controls into the matrix.
      g = expand_controls(g);
    }
    check(g.num_targets() <= 6, "apply_gate: gates wider than 6 qubits are "
                                "not supported by the GPU kernels");
    upload_matrix(g.matrix);
    unsigned num_high = 0;
    for (qubit_t t : g.qubits) num_high += t >= kLowBits ? 1 : 0;
    // The L kernel stages full 32-amplitude tiles; states too small for one
    // supergroup fall back to the generic per-group path (qsim requires
    // larger states outright; the emulator keeps small n usable for tests).
    if (g.qubits.front() < kLowBits &&
        s.num_qubits() >= kLowBits + num_high) {
      launch_low(g, s);
    } else {
      launch_high(g, s);
    }
    // The staging buffer of this slot is free for reuse once this kernel
    // completes; the upload two gates from now waits on it.
    dev_->record_event(ev_kernel_[slot_], stream_);
    slot_ ^= 1;
  }

  // Runs a circuit; measurement gate k uses Philox stream (seed, k).
  // `deadline` adds cooperative cancellation between gates: with an active
  // deadline the compute stream is joined every kDeadlineSyncGates gates
  // (bounding how much work is enqueued-but-unseen) and the budget checked;
  // expiry aborts with CodedError(kDeadlineExceeded). Gate kernels
  // themselves are not preemptible, exactly like real HIP kernels.
  void run(const Circuit& c, DeviceStateVector<FP>& s, std::uint64_t seed = 0,
           std::vector<index_t>* measurements = nullptr,
           const Deadline& deadline = {}) {
    check(s.num_qubits() == c.num_qubits, "SimulatorHIP::run: qubit mismatch");
    std::uint64_t meas_idx = 0;
    unsigned since_checkpoint = 0;
    for (const auto& g : c.gates) {
      if (deadline.active() && ++since_checkpoint >= kDeadlineSyncGates) {
        since_checkpoint = 0;
        dev_->synchronize();
      }
      deadline.check("SimulatorHIP::run");
      if (g.is_measurement()) {
        const index_t outcome =
            space_.measure(s, g.qubits, seed ^ (0x9E3779B97F4A7C15 * ++meas_idx));
        if (measurements) measurements->push_back(outcome);
      } else {
        apply_gate(g, s);
      }
    }
  }

 private:
  // With an active deadline, join the device every this many gates so the
  // wall clock reflects executed (not merely enqueued) work.
  static constexpr unsigned kDeadlineSyncGates = 16;

  void upload_matrix(const CMatrix& m) {
    const std::vector<cplx<FP>> host = detail::matrix_as<FP>(m);
    // Don't overwrite the buffer until the kernel that last read it is done
    // (no-op for the first two gates: the event was never recorded).
    dev_->stream_wait_event(copy_stream_, ev_kernel_[slot_]);
    dev_->memcpy_h2d_async(d_matrix_[slot_], host.data(),
                           host.size() * sizeof(cplx<FP>), copy_stream_);
    dev_->record_event(ev_upload_[slot_], copy_stream_);
    // The kernel launched next on the compute stream sees the upload.
    dev_->stream_wait_event(stream_, ev_upload_[slot_]);
  }

  void launch_high(const Gate& g, DeviceStateVector<FP>& s) {
    ApplyGateHKernel<FP> k;
    fill_args(k.a, g, s);

    // Outer enumeration removes target and control bits.
    std::vector<qubit_t> expand(g.qubits.begin(), g.qubits.end());
    expand.insert(expand.end(), g.controls.begin(), g.controls.end());
    std::sort(expand.begin(), expand.end());
    k.num_expand = static_cast<unsigned>(expand.size());
    std::copy(expand.begin(), expand.end(), k.expand_positions.begin());
    k.num_groups = s.size() >> expand.size();

    const unsigned grid = static_cast<unsigned>(
        (k.num_groups + kHBlockDim - 1) / kHBlockDim);
    dev_->launch("ApplyGateH_Kernel",
                 {std::max(grid, 1u), kHBlockDim, 0, false, stream_}, k);
  }

  void launch_low(const Gate& g, DeviceStateVector<FP>& s) {
    check(g.controls.empty(), "launch_low: controls must be pre-folded");
    ApplyGateLKernel<FP> k;
    fill_args(k.a, g, s);

    for (qubit_t t : g.qubits) {
      if (t >= kLowBits) k.high_targets[k.num_high++] = t;
    }
    // Local shared-memory bit of each target: low targets keep their
    // position inside the 32-amplitude tile; high target j maps to bit 5+j.
    unsigned hj = 0;
    for (unsigned j = 0; j < g.num_targets(); ++j) {
      k.local_targets[j] =
          g.qubits[j] < kLowBits ? g.qubits[j] : kLowBits + hj++;
    }
    // Supergroup enumeration removes the 5 tile bits and the high targets.
    std::vector<qubit_t> expand;
    for (unsigned b = 0; b < kLowBits; ++b) expand.push_back(b);
    for (unsigned j = 0; j < k.num_high; ++j) expand.push_back(k.high_targets[j]);
    std::sort(expand.begin(), expand.end());
    k.num_expand = static_cast<unsigned>(expand.size());
    std::copy(expand.begin(), expand.end(), k.expand_positions.begin());
    k.num_supergroups = s.size() >> expand.size();

    const unsigned t_total = kTile << k.num_high;
    const std::size_t shared = 2 * sizeof(FP) * t_total;  // re + im arrays
    dev_->launch("ApplyGateL_Kernel",
                 {static_cast<unsigned>(k.num_supergroups), kLBlockDim, shared,
                  true, stream_},
                 k);
  }

  void fill_args(GateArgs<FP>& a, const Gate& g, DeviceStateVector<FP>& s) {
    a.matrix = d_matrix_[slot_];
    a.amps = s.device_data();
    a.num_qubits = s.num_qubits();
    a.q = g.num_targets();
    std::copy(g.qubits.begin(), g.qubits.end(), a.targets.begin());
    a.ctrl_mask = 0;
    a.ctrl_value = 0;
    for (qubit_t c : g.controls) {
      a.ctrl_mask |= pow2(c);
      a.ctrl_value |= pow2(c);
    }
  }

  vgpu::Device* dev_;
  StateSpaceHIP<FP> space_;
  vgpu::Stream stream_;       // compute stream: gate kernels, in order
  vgpu::Stream copy_stream_;  // matrix uploads, overlapping the kernels
  cplx<FP>* d_matrix_[2] = {nullptr, nullptr};
  vgpu::Event ev_upload_[2];  // upload of slot b landed
  vgpu::Event ev_kernel_[2];  // kernel reading slot b finished
  unsigned slot_ = 0;         // staging buffer for the current gate
};

}  // namespace qhip::hipsim
