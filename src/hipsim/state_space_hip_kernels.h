// State-space kernels (state_space_cuda_kernels.h ->
// state_space_hip_kernels.h, conversion inventory item 5): reductions over
// arrays of complex numbers, element setting, scaling, collapse, and
// sampling support.
//
// The reduction kernels use the width-aware wavefront reduction from
// hip_util.h — the exact place the 32-vs-64 warp-size port fix applies.
// Block size is a multiple of 64 so every wavefront lane is live on both
// virtual devices (a requirement of warp-synchronous code, as on real
// hardware).
#pragma once

#include "src/base/bits.h"
#include "src/base/types.h"
#include "src/hipsim/hip_util.h"
#include "src/vgpu/kernel_ctx.h"

namespace qhip::hipsim {

inline constexpr unsigned kReduceBlockDim = 256;

// Grid-stride |amps[i]|^2 partial sums; one double per block in `partial`.
template <typename FP>
struct Norm2Kernel {
  const cplx<FP>* amps = nullptr;
  index_t size = 0;
  double* partial = nullptr;

  void operator()(vgpu::KernelCtx& ctx) const {
    double acc = 0;
    const index_t stride = static_cast<index_t>(ctx.grid_dim()) * ctx.block_dim();
    for (index_t i = ctx.global_idx(); i < size; i += stride) {
      const cplx<FP> v = amps[i];
      acc += static_cast<double>(v.real()) * v.real() +
             static_cast<double>(v.imag()) * v.imag();
    }
    double* scratch = ctx.shared_as<double>(0);
    const double total = block_reduce_sum(ctx, acc, scratch);
    if (ctx.thread_idx() == 0) partial[ctx.block_idx()] = total;
  }
};

// Grid-stride conj(a[i]) * b[i] partial sums (separate re/im accumulators).
template <typename FP>
struct InnerProductKernel {
  const cplx<FP>* a = nullptr;
  const cplx<FP>* b = nullptr;
  index_t size = 0;
  double* partial_re = nullptr;
  double* partial_im = nullptr;

  void operator()(vgpu::KernelCtx& ctx) const {
    double re = 0, im = 0;
    const index_t stride = static_cast<index_t>(ctx.grid_dim()) * ctx.block_dim();
    for (index_t i = ctx.global_idx(); i < size; i += stride) {
      const cplx<FP> x = a[i], y = b[i];
      re += static_cast<double>(x.real()) * y.real() +
            static_cast<double>(x.imag()) * y.imag();
      im += static_cast<double>(x.real()) * y.imag() -
            static_cast<double>(x.imag()) * y.real();
    }
    double* scratch = ctx.shared_as<double>(0);
    const double tre = block_reduce_sum(ctx, re, scratch);
    ctx.syncthreads();  // scratch reuse between the two reductions
    const double tim = block_reduce_sum(ctx, im, scratch);
    if (ctx.thread_idx() == 0) {
      partial_re[ctx.block_idx()] = tre;
      partial_im[ctx.block_idx()] = tim;
    }
  }
};

// amps[i] = value for all i; then SetAmpl-style single writes fix up |0>.
template <typename FP>
struct FillKernel {
  cplx<FP>* amps = nullptr;
  index_t size = 0;
  cplx<FP> value{};

  void operator()(vgpu::KernelCtx& ctx) const {
    const index_t stride = static_cast<index_t>(ctx.grid_dim()) * ctx.block_dim();
    for (index_t i = ctx.global_idx(); i < size; i += stride) amps[i] = value;
  }
};

// amps[index] = value (one-thread kernel, as qsim's SetAmpl does).
template <typename FP>
struct SetAmplKernel {
  cplx<FP>* amps = nullptr;
  index_t index = 0;
  cplx<FP> value{};

  void operator()(vgpu::KernelCtx& ctx) const {
    if (ctx.global_idx() == 0) amps[index] = value;
  }
};

// amps[i] *= s.
template <typename FP>
struct ScaleKernel {
  cplx<FP>* amps = nullptr;
  index_t size = 0;
  FP s = 1;

  void operator()(vgpu::KernelCtx& ctx) const {
    const index_t stride = static_cast<index_t>(ctx.grid_dim()) * ctx.block_dim();
    for (index_t i = ctx.global_idx(); i < size; i += stride) amps[i] *= s;
  }
};

// dst[i] += src[i] (used by the trajectory example's state accumulation).
template <typename FP>
struct AxpyKernel {
  cplx<FP>* dst = nullptr;
  const cplx<FP>* src = nullptr;
  index_t size = 0;
  cplx<FP> alpha{1};

  void operator()(vgpu::KernelCtx& ctx) const {
    const index_t stride = static_cast<index_t>(ctx.grid_dim()) * ctx.block_dim();
    for (index_t i = ctx.global_idx(); i < size; i += stride) {
      dst[i] += alpha * src[i];
    }
  }
};

// Zeroes every amplitude whose index does not satisfy (i & mask) == value
// (measurement collapse).
template <typename FP>
struct CollapseKernel {
  cplx<FP>* amps = nullptr;
  index_t size = 0;
  index_t mask = 0;
  index_t value = 0;

  void operator()(vgpu::KernelCtx& ctx) const {
    const index_t stride = static_cast<index_t>(ctx.grid_dim()) * ctx.block_dim();
    for (index_t i = ctx.global_idx(); i < size; i += stride) {
      if ((i & mask) != value) amps[i] = cplx<FP>{};
    }
  }
};

// Gathers amplitudes at arbitrary indices into a compact output buffer
// (qsim_amplitudes: only the requested bitstrings' amplitudes leave the
// device).
template <typename FP>
struct GatherAmplitudesKernel {
  const cplx<FP>* amps = nullptr;
  const index_t* indices = nullptr;
  index_t count = 0;
  cplx<FP>* out = nullptr;

  void operator()(vgpu::KernelCtx& ctx) const {
    const index_t stride = static_cast<index_t>(ctx.grid_dim()) * ctx.block_dim();
    for (index_t i = ctx.global_idx(); i < count; i += stride) {
      out[i] = amps[indices[i]];
    }
  }
};

// Pauli-string expectation partial sums:
//   sum_y conj(a[y ^ flip]) * (-1)^popcount(y & phase_mask) * a[y]
// (the i^{#Y} factor and coefficient are applied on the host).
template <typename FP>
struct ExpectationKernel {
  const cplx<FP>* amps = nullptr;
  index_t size = 0;
  index_t flip_mask = 0;
  index_t phase_mask = 0;
  double* partial_re = nullptr;
  double* partial_im = nullptr;

  void operator()(vgpu::KernelCtx& ctx) const {
    double re = 0, im = 0;
    const index_t stride = static_cast<index_t>(ctx.grid_dim()) * ctx.block_dim();
    for (index_t y = ctx.global_idx(); y < size; y += stride) {
      const int sign = __builtin_popcountll(y & phase_mask) & 1 ? -1 : 1;
      const cplx<FP> ay = amps[y];
      const cplx<FP> af = amps[y ^ flip_mask];
      // conj(af) * ay * sign, accumulated in double.
      const double ar = af.real(), ai = af.imag();
      const double br = ay.real(), bi = ay.imag();
      re += sign * (ar * br + ai * bi);
      im += sign * (ar * bi - ai * br);
    }
    double* scratch = ctx.shared_as<double>(0);
    const double tre = block_reduce_sum(ctx, re, scratch);
    ctx.syncthreads();
    const double tim = block_reduce_sum(ctx, im, scratch);
    if (ctx.thread_idx() == 0) {
      partial_re[ctx.block_idx()] = tre;
      partial_im[ctx.block_idx()] = tim;
    }
  }
};

// Per-chunk probability sums for sampling: chunk c covers
// [c * chunk_size, min((c+1) * chunk_size, size)). One block per chunk.
template <typename FP>
struct ChunkSumKernel {
  const cplx<FP>* amps = nullptr;
  index_t size = 0;
  index_t chunk_size = 0;
  double* chunk_sums = nullptr;

  void operator()(vgpu::KernelCtx& ctx) const {
    const index_t lo = static_cast<index_t>(ctx.block_idx()) * chunk_size;
    const index_t hi = lo + chunk_size < size ? lo + chunk_size : size;
    double acc = 0;
    for (index_t i = lo + ctx.thread_idx(); i < hi; i += ctx.block_dim()) {
      const cplx<FP> v = amps[i];
      acc += static_cast<double>(v.real()) * v.real() +
             static_cast<double>(v.imag()) * v.imag();
    }
    double* scratch = ctx.shared_as<double>(0);
    const double total = block_reduce_sum(ctx, acc, scratch);
    if (ctx.thread_idx() == 0) chunk_sums[ctx.block_idx()] = total;
  }
};

// Resolves sorted uniforms to amplitude indices within chunks. Work item w
// describes one chunk with a contiguous run of pending samples:
//   rs[sample_begin[w] .. sample_end[w]) all fall into chunk chunk_idx[w],
//   whose cumulative probability start is csum0[w].
// Thread 0 of block w scans the chunk sequentially, emitting indices; this
// matches the inherently sequential inverse-CDF walk (qsim does the same
// per-thread scan in its sampling kernel).
template <typename FP>
struct SampleResolveKernel {
  const cplx<FP>* amps = nullptr;
  index_t size = 0;
  index_t chunk_size = 0;
  const index_t* chunk_idx = nullptr;
  const double* csum0 = nullptr;
  const std::uint32_t* sample_begin = nullptr;
  const std::uint32_t* sample_end = nullptr;
  const double* rs = nullptr;  // sorted uniforms
  index_t* out = nullptr;      // resolved amplitude indices

  void operator()(vgpu::KernelCtx& ctx) const {
    if (ctx.thread_idx() != 0) return;
    const unsigned w = ctx.block_idx();
    const index_t lo = chunk_idx[w] * chunk_size;
    const index_t hi = lo + chunk_size < size ? lo + chunk_size : size;
    double csum = csum0[w];
    std::uint32_t k = sample_begin[w];
    const std::uint32_t kend = sample_end[w];
    for (index_t i = lo; i < hi && k < kend; ++i) {
      const cplx<FP> v = amps[i];
      csum += static_cast<double>(v.real()) * v.real() +
              static_cast<double>(v.imag()) * v.imag();
      while (k < kend && rs[k] < csum) out[k++] = i;
    }
    // Rounding tail: park any unresolved samples on the chunk's last index.
    while (k < kend) out[k++] = hi - 1;
  }
};

}  // namespace qhip::hipsim
