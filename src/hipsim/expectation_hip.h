// Device-side Pauli-observable expectation values for the HIP backend —
// the GPU analogue of qsim's ExpectationValue, evaluated entirely on the
// (virtual) device with the width-aware wavefront reductions; only the
// per-block partial sums cross the bus.
#pragma once

#include "src/hipsim/state_space_hip.h"
#include "src/obs/observable.h"

namespace qhip::hipsim {

// <psi| P |psi> for one Pauli string (coefficient included).
template <typename FP>
cplx64 expectation(const obs::PauliString& p, const DeviceStateVector<FP>& s,
                   vgpu::Device& dev) {
  p.validate(s.num_qubits());

  const unsigned block = kReduceBlockDim;
  const index_t blocks_needed = (s.size() + block - 1) / block;
  const unsigned grid =
      static_cast<unsigned>(std::min<index_t>(blocks_needed, 4096));
  double* d_re = dev.malloc_n<double>(grid);
  double* d_im = dev.malloc_n<double>(grid);

  ExpectationKernel<FP> k{s.device_data(), s.size(), p.flip_mask(),
                          p.phase_mask(), d_re, d_im};
  const vgpu::LaunchConfig cfg{std::max(grid, 1u), block,
                               (block / 32) * sizeof(double), true, {}};
  dev.launch("Expectation_Kernel", cfg, k);

  std::vector<double> re(grid), im(grid);
  dev.memcpy_d2h(re.data(), d_re, grid * sizeof(double));
  dev.memcpy_d2h(im.data(), d_im, grid * sizeof(double));
  dev.free(d_re);
  dev.free(d_im);

  cplx64 total{};
  for (unsigned i = 0; i < grid; ++i) total += cplx64(re[i], im[i]);

  static constexpr cplx64 kIPow[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  return p.coefficient * kIPow[p.num_y() % 4] * total;
}

// <psi| O |psi> summed over strings.
template <typename FP>
cplx64 expectation(const obs::Observable& o, const DeviceStateVector<FP>& s,
                   vgpu::Device& dev) {
  cplx64 total{};
  for (const auto& p : o.strings) total += expectation(p, s, dev);
  return total;
}

}  // namespace qhip::hipsim
