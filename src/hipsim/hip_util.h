// Utility device functions for the HIP backend (cuda_util.h -> hip_util.h in
// the paper's conversion inventory, item 6).
//
// The warp-level reductions here are where the paper's one real porting bug
// lived: CUDA warp-collective loops are traditionally written with a
// hardcoded width of 32, which silently drops half of every wavefront on
// AMD GPUs (wavefront width 64). `warp_reduce_sum` derives the width from
// the device; `warp_reduce_sum_fixed32` preserves the pre-port CUDA code
// verbatim so the regression test can demonstrate the failure the paper
// describes in §3 ("we make a minor change in the code by ensuring the
// warp-level collective functions support a warp size 64").
#pragma once

#include "src/vgpu/kernel_ctx.h"

namespace qhip::hipsim {

// Correct, width-aware wavefront reduction: after the call, lane 0 of each
// wavefront holds the sum over all lanes of that wavefront.
template <typename T>
T warp_reduce_sum(vgpu::KernelCtx& ctx, T val) {
  for (unsigned offset = ctx.warp_size() / 2; offset > 0; offset >>= 1) {
    const T other = ctx.shfl_down(val, offset);
    // Guard the accumulation for ragged final warps (block_dim not a
    // multiple of the wavefront width): a source lane at or past the live
    // count holds no data. Without the guard the shuffle's own-value
    // fallback doubles those lanes and corrupts lane 0's total.
    if (ctx.lane() + offset < ctx.live_lanes()) val += other;
  }
  return val;
}

// The original CUDA code path: starts at offset 16, i.e. assumes a 32-wide
// warp. Correct on the virtual A100 (warp 32); on the virtual MI250X
// (wavefront 64) lane 0 only accumulates lanes 0..31 — the bug the port
// fixed. Kept for tests; never used by the backend.
template <typename T>
T warp_reduce_sum_fixed32(vgpu::KernelCtx& ctx, T val) {
  for (unsigned offset = 16; offset > 0; offset >>= 1) {
    val += ctx.shfl_down(val, offset);
  }
  return val;
}

// Block-level sum reduction. `scratch` must hold at least
// block_dim / warp_size elements of T in shared memory. Returns the block
// total in thread 0 (other threads' return value is unspecified, as in the
// CUDA original).
template <typename T>
T block_reduce_sum(vgpu::KernelCtx& ctx, T val, T* scratch) {
  val = warp_reduce_sum(ctx, val);
  const unsigned warps = (ctx.block_dim() + ctx.warp_size() - 1) / ctx.warp_size();
  if (warps == 1) return val;
  if (ctx.lane() == 0) scratch[ctx.warp_id()] = val;
  ctx.syncthreads();
  T total{};
  if (ctx.thread_idx() == 0) {
    for (unsigned w = 0; w < warps; ++w) total += scratch[w];
  }
  ctx.syncthreads();
  return total;
}

}  // namespace qhip::hipsim
