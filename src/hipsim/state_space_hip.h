// Device state-space operations (state_space_cuda.h -> state_space_hip.h,
// conversion inventory item 4): initialization, norms, inner products,
// Born-rule sampling, and measurement collapse for a state vector in
// (virtual) device memory. Host code here only launches kernels and copies
// small partial-result buffers — the state itself never leaves the device.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/base/error.h"
#include "src/base/rng.h"
#include "src/hipsim/state_space_hip_kernels.h"
#include "src/hipsim/vectorspace_hip.h"

namespace qhip::hipsim {

template <typename FP>
class StateSpaceHIP {
 public:
  explicit StateSpaceHIP(vgpu::Device& dev) : dev_(&dev) {}

  // |0...0>.
  void set_zero_state(DeviceStateVector<FP>& s) {
    fill(s, cplx<FP>{});
    set_ampl(s, 0, cplx<FP>{1});
  }

  // Uniform superposition.
  void set_uniform_state(DeviceStateVector<FP>& s) {
    const FP a = FP(1) / static_cast<FP>(std::sqrt(static_cast<double>(s.size())));
    fill(s, cplx<FP>{a});
  }

  void set_basis_state(DeviceStateVector<FP>& s, index_t i) {
    check(i < s.size(), "set_basis_state: index out of range");
    fill(s, cplx<FP>{});
    set_ampl(s, i, cplx<FP>{1});
  }

  void fill(DeviceStateVector<FP>& s, cplx<FP> value) {
    FillKernel<FP> k{s.device_data(), s.size(), value};
    dev_->launch("Fill_Kernel", grid_for(s.size()), k);
  }

  void set_ampl(DeviceStateVector<FP>& s, index_t index, cplx<FP> value) {
    SetAmplKernel<FP> k{s.device_data(), index, value};
    dev_->launch("SetAmpl_Kernel", {1, 1, 0, false}, k);
  }

  // Amplitudes of specific basis states; only `indices.size()` complex
  // values cross the bus (the qsim_amplitudes access pattern).
  std::vector<cplx<FP>> get_amplitudes(const DeviceStateVector<FP>& s,
                                       const std::vector<index_t>& indices) {
    if (indices.empty()) return {};
    for (index_t i : indices) {
      check(i < s.size(), "get_amplitudes: index out of range");
    }
    index_t* d_idx = dev_->malloc_n<index_t>(indices.size());
    cplx<FP>* d_out = dev_->malloc_n<cplx<FP>>(indices.size());
    dev_->memcpy_h2d(d_idx, indices.data(), indices.size() * sizeof(index_t));
    GatherAmplitudesKernel<FP> k{s.device_data(), d_idx,
                                 static_cast<index_t>(indices.size()), d_out};
    dev_->launch("GatherAmplitudes_Kernel", grid_for(indices.size()), k);
    std::vector<cplx<FP>> out(indices.size());
    dev_->memcpy_d2h(out.data(), d_out, out.size() * sizeof(cplx<FP>));
    dev_->free(d_idx);
    dev_->free(d_out);
    return out;
  }

  double norm2(const DeviceStateVector<FP>& s) {
    const vgpu::LaunchConfig cfg = reduce_grid_for(s.size());
    std::vector<double> partial(cfg.grid_dim);
    double* d_partial = dev_->malloc_n<double>(cfg.grid_dim);
    Norm2Kernel<FP> k{s.device_data(), s.size(), d_partial};
    dev_->launch("Norm2_Kernel", cfg, k);
    dev_->memcpy_d2h(partial.data(), d_partial, cfg.grid_dim * sizeof(double));
    dev_->free(d_partial);
    double total = 0;
    for (double v : partial) total += v;
    return total;
  }

  cplx64 inner_product(const DeviceStateVector<FP>& a,
                       const DeviceStateVector<FP>& b) {
    check(a.size() == b.size(), "inner_product: size mismatch");
    const vgpu::LaunchConfig cfg = reduce_grid_for(a.size());
    double* d_re = dev_->malloc_n<double>(cfg.grid_dim);
    double* d_im = dev_->malloc_n<double>(cfg.grid_dim);
    InnerProductKernel<FP> k{a.device_data(), b.device_data(), a.size(), d_re, d_im};
    dev_->launch("InnerProduct_Kernel", cfg, k);
    std::vector<double> re(cfg.grid_dim), im(cfg.grid_dim);
    dev_->memcpy_d2h(re.data(), d_re, cfg.grid_dim * sizeof(double));
    dev_->memcpy_d2h(im.data(), d_im, cfg.grid_dim * sizeof(double));
    dev_->free(d_re);
    dev_->free(d_im);
    cplx64 total{};
    for (unsigned i = 0; i < cfg.grid_dim; ++i) total += cplx64(re[i], im[i]);
    return total;
  }

  // Scales so that norm2(s) == 1; returns the pre-normalization norm.
  double normalize(DeviceStateVector<FP>& s) {
    const double n2 = norm2(s);
    check(n2 > 0, "normalize: zero state");
    ScaleKernel<FP> k{s.device_data(), s.size(),
                      static_cast<FP>(1.0 / std::sqrt(n2))};
    dev_->launch("Scale_Kernel", grid_for(s.size()), k);
    return std::sqrt(n2);
  }

  // Draws `num_samples` basis-state indices per the Born rule. Two passes on
  // the device — per-chunk probability sums, then a per-chunk inverse-CDF
  // resolve — with only O(chunks + samples) host traffic.
  std::vector<index_t> sample(const DeviceStateVector<FP>& s,
                              std::size_t num_samples, std::uint64_t seed) {
    if (num_samples == 0) return {};

    // Pass 1: chunk sums.
    const index_t chunk_size = std::max<index_t>(s.size() / 4096, 1024);
    const unsigned num_chunks =
        static_cast<unsigned>((s.size() + chunk_size - 1) / chunk_size);
    double* d_sums = dev_->malloc_n<double>(num_chunks);
    {
      ChunkSumKernel<FP> k{s.device_data(), s.size(), chunk_size, d_sums};
      const vgpu::LaunchConfig cfg{num_chunks, kReduceBlockDim,
                                   shared_for_reduce(), true, {}};
      dev_->launch("ChunkSum_Kernel", cfg, k);
    }
    std::vector<double> sums(num_chunks);
    dev_->memcpy_d2h(sums.data(), d_sums, num_chunks * sizeof(double));
    dev_->free(d_sums);

    std::vector<double> csum(num_chunks + 1, 0.0);
    for (unsigned c = 0; c < num_chunks; ++c) csum[c + 1] = csum[c] + sums[c];
    const double total = csum[num_chunks];

    // Sorted uniforms scaled into the actual total to absorb rounding.
    std::vector<double> rs(num_samples);
    Philox rng(seed, /*stream=*/0x5a17);
    for (auto& r : rs) r = rng.uniform() * total;
    std::sort(rs.begin(), rs.end());

    // Assign each chunk its contiguous run of samples.
    std::vector<index_t> chunk_idx;
    std::vector<double> csum0;
    std::vector<std::uint32_t> sbegin, send;
    std::size_t k = 0;
    for (unsigned c = 0; c < num_chunks && k < num_samples; ++c) {
      if (rs[k] >= csum[c + 1]) continue;
      const std::uint32_t b = static_cast<std::uint32_t>(k);
      while (k < num_samples && rs[k] < csum[c + 1]) ++k;
      chunk_idx.push_back(c);
      csum0.push_back(csum[c]);
      sbegin.push_back(b);
      send.push_back(static_cast<std::uint32_t>(k));
    }
    // Anything left (uniforms at/beyond the last boundary) goes to the tail
    // of the last chunk.
    if (k < num_samples) {
      chunk_idx.push_back(num_chunks - 1);
      csum0.push_back(csum[num_chunks - 1]);
      sbegin.push_back(static_cast<std::uint32_t>(k));
      send.push_back(static_cast<std::uint32_t>(num_samples));
    }

    // Pass 2: resolve on device.
    const unsigned w = static_cast<unsigned>(chunk_idx.size());
    index_t* d_chunk = dev_->malloc_n<index_t>(w);
    double* d_csum0 = dev_->malloc_n<double>(w);
    std::uint32_t* d_sb = dev_->malloc_n<std::uint32_t>(w);
    std::uint32_t* d_se = dev_->malloc_n<std::uint32_t>(w);
    double* d_rs = dev_->malloc_n<double>(num_samples);
    index_t* d_out = dev_->malloc_n<index_t>(num_samples);
    dev_->memcpy_h2d(d_chunk, chunk_idx.data(), w * sizeof(index_t));
    dev_->memcpy_h2d(d_csum0, csum0.data(), w * sizeof(double));
    dev_->memcpy_h2d(d_sb, sbegin.data(), w * sizeof(std::uint32_t));
    dev_->memcpy_h2d(d_se, send.data(), w * sizeof(std::uint32_t));
    dev_->memcpy_h2d(d_rs, rs.data(), num_samples * sizeof(double));
    SampleResolveKernel<FP> rk{s.device_data(), s.size(), chunk_size,
                               d_chunk, d_csum0, d_sb, d_se, d_rs, d_out};
    dev_->launch("SampleResolve_Kernel", {w, 1, 0, false, {}}, rk);
    std::vector<index_t> out(num_samples);
    dev_->memcpy_d2h(out.data(), d_out, num_samples * sizeof(index_t));
    for (void* p : {static_cast<void*>(d_chunk), static_cast<void*>(d_csum0),
                    static_cast<void*>(d_sb), static_cast<void*>(d_se),
                    static_cast<void*>(d_rs), static_cast<void*>(d_out)}) {
      dev_->free(p);
    }

    // De-sort deterministically (samples are i.i.d.).
    Philox shuf(seed, /*stream=*/0x5a18);
    for (std::size_t i = out.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(shuf.uniform() * i);
      std::swap(out[i - 1], out[j]);
    }
    return out;
  }

  // Measures `qubits`: draws one Born sample, takes its bits at the measured
  // positions as the outcome, collapses and renormalizes.
  index_t measure(DeviceStateVector<FP>& s, const std::vector<qubit_t>& qubits,
                  std::uint64_t seed) {
    check(!qubits.empty(), "measure: empty qubit list");
    const std::vector<index_t> one = sample(s, 1, seed);
    const index_t outcome = gather_bits(one[0], qubits);
    index_t mask = 0;
    for (qubit_t q : qubits) mask |= pow2(q);
    CollapseKernel<FP> k{s.device_data(), s.size(), mask,
                         scatter_bits(outcome, qubits)};
    dev_->launch("Collapse_Kernel", grid_for(s.size()), k);
    normalize(s);
    return outcome;
  }

 private:
  vgpu::LaunchConfig grid_for(index_t size) const {
    const index_t blocks = (size + kReduceBlockDim - 1) / kReduceBlockDim;
    const unsigned grid =
        static_cast<unsigned>(std::min<index_t>(blocks, 4096));
    return {std::max(grid, 1u), kReduceBlockDim, 0, false, {}};
  }

  std::size_t shared_for_reduce() const {
    return (kReduceBlockDim / 32) * sizeof(double);
  }

  vgpu::LaunchConfig reduce_grid_for(index_t size) const {
    vgpu::LaunchConfig cfg = grid_for(size);
    cfg.needs_sync = true;  // block_reduce_sum uses __syncthreads
    cfg.shared_bytes = shared_for_reduce();
    return cfg;
  }

  vgpu::Device* dev_;
};

}  // namespace qhip::hipsim
