// AVX2+FMA vectorized CPU backend (qsim's simulator_avx analogue).
//
// The paper notes the CUDA backend "can be traced back to its AVX512
// implementation for CPU vector instructions" (§2.3): the CPU SIMD kernels
// are the ancestors of the GPU warp kernels. This backend is that ancestor
// for this reproduction: gate application with 256-bit complex SIMD.
//
// Layout: interleaved std::complex<float> (re, im pairs). A __m256 holds 4
// complex floats; complex multiplication uses the moveldup/movehdup +
// fmaddsub idiom. When every gate target is >= 2 (float) or >= 1 (double),
// the two low index bits (one for double) are untouched by the gate, so
// every gathered group member is a contiguous 4- (2-) complex run — the
// vector unit of the kernel. Lower targets fall back to the scalar path,
// the same high/low structural split the GPU backend makes at log2(32).
//
// This header is only compiled when __AVX2__ and __FMA__ are available;
// consumers are built with -mavx2 -mfma (see bench/ and tests/).
#pragma once

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "src/base/threadpool.h"
#include "src/core/circuit.h"
#include "src/simulator/apply.h"
#include "src/statespace/statevector.h"

namespace qhip {

namespace avx_detail {

// 4 complex floats per __m256: (a.re + i a.im) * (b.re + i b.im) lane-wise.
inline __m256 cmul_ps(__m256 a, __m256 b) {
  const __m256 br = _mm256_moveldup_ps(b);   // [b.re, b.re, ...]
  const __m256 bi = _mm256_movehdup_ps(b);   // [b.im, b.im, ...]
  const __m256 aswap = _mm256_permute_ps(a, 0xB1);  // [a.im, a.re, ...]
  return _mm256_fmaddsub_ps(a, br, _mm256_mul_ps(aswap, bi));
}

// 2 complex doubles per __m256d.
inline __m256d cmul_pd(__m256d a, __m256d b) {
  const __m256d br = _mm256_movedup_pd(b);
  const __m256d bi = _mm256_permute_pd(b, 0xF);  // [im, im, im, im]
  const __m256d aswap = _mm256_permute_pd(a, 0x5);
  return _mm256_fmaddsub_pd(a, br, _mm256_mul_pd(aswap, bi));
}

// Broadcast one complex constant across the register.
inline __m256 broadcast_c(const cplx<float>& v) {
  return _mm256_castpd_ps(
      _mm256_set1_pd(*reinterpret_cast<const double*>(&v)));
}

inline __m256d broadcast_c(const cplx<double>& v) {
  return _mm256_broadcast_pd(reinterpret_cast<const __m128d*>(&v));
}

template <typename FP>
struct Simd;

template <>
struct Simd<float> {
  using reg = __m256;
  static constexpr unsigned kLaneBits = 2;  // 4 complex per register
  static reg load(const cplx<float>* p) {
    return _mm256_loadu_ps(reinterpret_cast<const float*>(p));
  }
  static void store(cplx<float>* p, reg v) {
    _mm256_storeu_ps(reinterpret_cast<float*>(p), v);
  }
  static reg zero() { return _mm256_setzero_ps(); }
  static reg cmul(reg a, reg b) { return cmul_ps(a, b); }
  static reg add(reg a, reg b) { return _mm256_add_ps(a, b); }
};

template <>
struct Simd<double> {
  using reg = __m256d;
  static constexpr unsigned kLaneBits = 1;  // 2 complex per register
  static reg load(const cplx<double>* p) {
    return _mm256_loadu_pd(reinterpret_cast<const double*>(p));
  }
  static void store(cplx<double>* p, reg v) {
    _mm256_storeu_pd(reinterpret_cast<double*>(p), v);
  }
  static reg zero() { return _mm256_setzero_pd(); }
  static reg cmul(reg a, reg b) { return cmul_pd(a, b); }
  static reg add(reg a, reg b) { return _mm256_add_pd(a, b); }
};

}  // namespace avx_detail

// Vectorized apply for a normalized gate whose lowest target is >= the
// register lane width. Falls back to apply_gate_inplace otherwise.
template <typename FP>
void apply_gate_avx(const Gate& g, StateVector<FP>& state, ThreadPool& pool) {
  using S = avx_detail::Simd<FP>;
  using reg = typename S::reg;

  check(g.kind == GateKind::kUnitary && g.controls.empty(),
        "apply_gate_avx: normalized unitary gates only");
  const unsigned q = g.num_targets();
  check(std::is_sorted(g.qubits.begin(), g.qubits.end()),
        "apply_gate_avx: gate must be normalized");

  if (q > 6 || g.qubits.front() < S::kLaneBits ||
      state.num_qubits() < q + S::kLaneBits) {
    apply_gate_inplace(g, state, pool);  // scalar path for low targets
    return;
  }

  const std::vector<cplx<FP>> m = detail::matrix_as<FP>(g.matrix);
  const std::vector<index_t> member = scatter_masks(g.qubits);
  const std::vector<qubit_t> sorted = g.qubits;
  const unsigned d = 1u << q;

  // Broadcast the matrix entries once. (reg is boxed in a struct: vector
  // attributes on bare __m256 template arguments trip -Wignored-attributes.)
  struct RegBox {
    reg v;
  };
  std::vector<RegBox> mb(static_cast<std::size_t>(d) * d);
  for (unsigned r = 0; r < d; ++r) {
    for (unsigned c = 0; c < d; ++c) {
      mb[static_cast<std::size_t>(r) * d + c].v =
          avx_detail::broadcast_c(m[static_cast<std::size_t>(r) * d + c]);
    }
  }

  cplx<FP>* amps = state.data();
  const index_t outer = state.size() >> q;          // gate groups
  const index_t vec_outer = outer >> S::kLaneBits;  // register chunks

  pool.parallel_ranges(vec_outer, [&](unsigned, index_t b, index_t e) {
    std::array<RegBox, 64> tmp;
    for (index_t vo = b; vo < e; ++vo) {
      // The low kLaneBits of the outer index are the vector lanes: since
      // every target >= kLaneBits, expand_bits passes them through and
      // base..base+lanes-1 are contiguous amplitudes of distinct groups.
      const index_t base = expand_bits(vo << S::kLaneBits, sorted);
      for (unsigned k = 0; k < d; ++k) {
        tmp[k].v = S::load(amps + (base | member[k]));
      }
      for (unsigned r = 0; r < d; ++r) {
        reg acc = S::zero();
        const RegBox* row = mb.data() + static_cast<std::size_t>(r) * d;
        for (unsigned c = 0; c < d; ++c) {
          acc = S::add(acc, S::cmul(tmp[c].v, row[c].v));
        }
        S::store(amps + (base | member[r]), acc);
      }
    }
  });
}

// Drop-in CPU backend using the vectorized path.
template <typename FP>
class SimulatorAVX {
 public:
  using fp_type = FP;

  explicit SimulatorAVX(ThreadPool& pool = ThreadPool::shared()) : pool_(&pool) {}

  static constexpr const char* backend_name() { return "cpu-avx2"; }

  void apply_gate(const Gate& g, StateVector<FP>& state) {
    const Gate n = normalized(g.controls.empty() ? g : expand_controls(g));
    apply_gate_avx(n, state, *pool_);
  }

  void run(const Circuit& c, StateVector<FP>& state, std::uint64_t seed = 0,
           std::vector<index_t>* measurements = nullptr) {
    check(state.num_qubits() == c.num_qubits, "SimulatorAVX::run: qubit mismatch");
    std::uint64_t meas_idx = 0;
    for (const auto& g : c.gates) {
      if (g.is_measurement()) {
        const index_t outcome = statespace::measure(
            state, g.qubits, seed ^ (0x9E3779B97F4A7C15 * ++meas_idx), *pool_);
        if (measurements) measurements->push_back(outcome);
      } else {
        apply_gate(g, state);
      }
    }
  }

 private:
  ThreadPool* pool_;
};

}  // namespace qhip

#endif  // __AVX2__ && __FMA__
