// Shared gate-application core for host backends.
//
// Applying a q-qubit unitary to an n-qubit state partitions the 2^n
// amplitudes into 2^{n-q} independent groups of 2^q (Figure 4 of the
// paper): group `o` lives at indices expand_bits(o) | scatter_mask(k).
// Each group update is a dense 2^q x 2^q matrix-vector product — the
// "small matrix-vector multiplication with low arithmetic intensity" the
// paper identifies as the computational building block.
#pragma once

#include <array>
#include <vector>

#include "src/base/bits.h"
#include "src/base/error.h"
#include "src/base/threadpool.h"
#include "src/statespace/statevector.h"
#include "src/core/gate.h"

namespace qhip {
namespace detail {

// Converts the double-precision gate matrix to the simulation precision.
template <typename FP>
std::vector<cplx<FP>> matrix_as(const CMatrix& m) {
  std::vector<cplx<FP>> out(m.data().size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = cplx<FP>(static_cast<FP>(m.data()[i].real()),
                      static_cast<FP>(m.data()[i].imag()));
  }
  return out;
}

// Applies a q-qubit unitary given in `m` (row-major, dim 2^q) to the state,
// for one outer-group range [begin, end). `sorted` are the ascending target
// qubits; `member` the scatter masks. Compile-time Q unrolls the hot loop
// for the common small widths.
template <typename FP, unsigned Q>
void apply_groups_fixed(const cplx<FP>* m, const std::array<qubit_t, Q>& sorted,
                        const std::array<index_t, (std::size_t{1} << Q)>& member,
                        cplx<FP>* amps, index_t begin, index_t end) {
  constexpr std::size_t D = std::size_t{1} << Q;
  std::array<cplx<FP>, D> tmp;
  for (index_t o = begin; o < end; ++o) {
    const index_t base = expand_bits(o, sorted);
    for (std::size_t k = 0; k < D; ++k) tmp[k] = amps[base | member[k]];
    for (std::size_t r = 0; r < D; ++r) {
      cplx<FP> acc{};
      const cplx<FP>* row = m + r * D;
      for (std::size_t c = 0; c < D; ++c) acc += row[c] * tmp[c];
      amps[base | member[r]] = acc;
    }
  }
}

template <typename FP>
void apply_groups_dyn(const cplx<FP>* m, const std::vector<qubit_t>& sorted,
                      const std::vector<index_t>& member, cplx<FP>* amps,
                      index_t begin, index_t end) {
  const std::size_t d = member.size();
  std::vector<cplx<FP>> tmp(d);
  for (index_t o = begin; o < end; ++o) {
    const index_t base = expand_bits(o, sorted);
    for (std::size_t k = 0; k < d; ++k) tmp[k] = amps[base | member[k]];
    for (std::size_t r = 0; r < d; ++r) {
      cplx<FP> acc{};
      const cplx<FP>* row = m + r * d;
      for (std::size_t c = 0; c < d; ++c) acc += row[c] * tmp[c];
      amps[base | member[r]] = acc;
    }
  }
}

}  // namespace detail

// Applies a (normalized, uncontrolled) unitary gate with its j-th target
// routed to bit position `slots[j]` of the state index. The slots may be in
// any relative order: the matrix stays in the gate's own target basis and
// only the amplitude addressing is permuted, so the floating-point
// accumulation order — and therefore the result, bit for bit — is identical
// for every routing. The distributed simulator relies on this to apply
// logically-normalized gates onto its permuted physical slot layout and
// still match the single-node backends exactly.
template <typename FP>
void apply_gate_routed_inplace(const Gate& g,
                               const std::vector<qubit_t>& slots,
                               StateVector<FP>& state, ThreadPool& pool) {
  check(g.kind == GateKind::kUnitary, "apply_gate_inplace: not a unitary gate");
  check(g.controls.empty(), "apply_gate_inplace: fold controls first");
  const unsigned q = g.num_targets();
  check(q <= state.num_qubits(), "apply_gate_inplace: gate wider than state");
  check(slots.size() == q, "apply_gate_inplace: one slot per target");

  std::vector<qubit_t> sorted = slots;
  std::sort(sorted.begin(), sorted.end());
  check(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
        "apply_gate_inplace: duplicate target slots");
  for (qubit_t t : sorted) {
    check(t < state.num_qubits(), "apply_gate_inplace: target out of range");
  }

  const std::vector<cplx<FP>> m = detail::matrix_as<FP>(g.matrix);
  const std::vector<index_t> member = scatter_masks(slots);
  const index_t outer = state.size() >> q;
  cplx<FP>* amps = state.data();

  auto dispatch = [&](auto qc) {
    constexpr unsigned Q = decltype(qc)::value;
    std::array<qubit_t, Q> sq{};
    std::copy_n(sorted.begin(), Q, sq.begin());
    std::array<index_t, (std::size_t{1} << Q)> mm{};
    std::copy_n(member.begin(), mm.size(), mm.begin());
    pool.parallel_ranges(outer, [&](unsigned, index_t b, index_t e) {
      detail::apply_groups_fixed<FP, Q>(m.data(), sq, mm, amps, b, e);
    });
  };

  switch (q) {
    case 1: dispatch(std::integral_constant<unsigned, 1>{}); break;
    case 2: dispatch(std::integral_constant<unsigned, 2>{}); break;
    case 3: dispatch(std::integral_constant<unsigned, 3>{}); break;
    case 4: dispatch(std::integral_constant<unsigned, 4>{}); break;
    case 5: dispatch(std::integral_constant<unsigned, 5>{}); break;
    case 6: dispatch(std::integral_constant<unsigned, 6>{}); break;
    default:
      pool.parallel_ranges(outer, [&](unsigned, index_t b, index_t e) {
        detail::apply_groups_dyn<FP>(m.data(), sorted, member, amps, b, e);
      });
  }
}

// Applies a (normalized, uncontrolled) unitary gate to `state`, splitting the
// outer groups across `pool`.
template <typename FP>
void apply_gate_inplace(const Gate& g, StateVector<FP>& state, ThreadPool& pool) {
  check(std::is_sorted(g.qubits.begin(), g.qubits.end()),
        "apply_gate_inplace: gate must be normalized (sorted qubits)");
  apply_gate_routed_inplace(g, g.qubits, state, pool);
}

}  // namespace qhip
