// High-level runner: fusion + simulation + sampling in one call.
//
// This is the equivalent of qsim's Runner / qsim_base driver: it transpiles
// the circuit with the gate fuser, executes it on the chosen backend, and
// optionally draws Born-rule samples — reporting the same timing split the
// paper quotes (fusion is claimed to be < 2% of total execution time).
#pragma once

#include <cstdint>
#include <vector>

#include "src/base/timer.h"
#include "src/fusion/fuser.h"
#include "src/statespace/statevector.h"

namespace qhip {

struct RunOptions {
  FusionOptions fusion;           // gate-fusion knobs (shared struct; the
                                  // engine's SimRequest and the CLIs use the
                                  // same type, DESIGN.md §13)
  std::uint64_t seed = 1;         // measurement + sampling seed
  std::size_t num_samples = 0;    // basis-state samples to draw at the end

  // Deprecated aliases for one release: the pre-FusionOptions field names.
  // They are references into `fusion`, so reads and writes stay coherent;
  // the hand-written copy/move ops below rebind them to the destination.
  unsigned& max_fused_qubits = fusion.max_fused_qubits;
  unsigned& window_moments = fusion.window_moments;

  RunOptions() = default;
  RunOptions(const RunOptions& o)
      : fusion(o.fusion), seed(o.seed), num_samples(o.num_samples) {}
  RunOptions& operator=(const RunOptions& o) {
    fusion = o.fusion;
    seed = o.seed;
    num_samples = o.num_samples;
    return *this;
  }
};

struct RunResult {
  FusionStats fusion;
  double fuse_seconds = 0;
  double sim_seconds = 0;
  double sample_seconds = 0;
  double total_seconds = 0;
  std::vector<index_t> measurements;  // outcomes of in-circuit 'm' gates
  std::vector<index_t> samples;       // final-state samples
};

namespace detail {

// The post-transpile half of a run: execute + sample + fill timings. Shared
// by the legacy template path below and the Backend implementations in
// src/engine/backend.cpp, so both produce bit-identical results for the same
// simulator kind, fused circuit, and seed.
template <typename Simulator, typename FP>
void run_fused(const Circuit& fused, Simulator& sim, StateVector<FP>& state,
               const RunOptions& opt, RunResult& r) {
  Timer t1;
  sim.run(fused, state, opt.seed, &r.measurements);
  r.sim_seconds = t1.seconds();

  if (opt.num_samples > 0) {
    Timer t2;
    r.samples = statespace::sample(state, opt.num_samples, opt.seed);
    r.sample_seconds = t2.seconds();
  }
}

}  // namespace detail

// Runs `circuit` on `sim` starting from `state` as-is (callers usually call
// state.set_zero_state() first).
//
// Legacy compat shim: this template re-transpiles and uses the caller's
// simulator and state on every call. New code should go through the runtime
// Backend API (src/engine/backend.h) — or SimulationEngine for serving —
// which add fused-circuit caching and state-buffer pooling on top of the
// same detail::run_fused core.
template <typename Simulator, typename FP>
RunResult run_circuit(const Circuit& circuit, Simulator& sim, StateVector<FP>& state,
                      const RunOptions& opt = {}) {
  RunResult r;
  Timer total;

  Timer t0;
  FusionResult fused = fuse_circuit(circuit, opt.fusion);
  r.fusion = fused.stats;
  r.fuse_seconds = t0.seconds();

  detail::run_fused(fused.circuit, sim, state, opt, r);
  r.total_seconds = total.seconds();
  return r;
}

}  // namespace qhip
