// Slow, independent reference simulator used as the test oracle.
//
// Deliberately written differently from the optimized backends: it computes
// each output amplitude by gathering its matrix row from the input copy,
// with no in-place update, no bit-expansion loop and no threading. Backends
// must agree with it to precision-dependent tolerance.
#pragma once

#include <vector>

#include "src/base/bits.h"
#include "src/base/error.h"
#include "src/core/circuit.h"
#include "src/statespace/statevector.h"

namespace qhip {

template <typename FP>
void reference_apply_gate(const Gate& gate, StateVector<FP>& state) {
  const Gate g = normalized(gate.controls.empty() ? gate : expand_controls(gate));
  check(g.kind == GateKind::kUnitary, "reference_apply_gate: not unitary");

  const unsigned q = g.num_targets();
  const std::size_t d = std::size_t{1} << q;
  std::vector<cplx<FP>> in(state.data(), state.data() + state.size());

  for (index_t i = 0; i < state.size(); ++i) {
    // Row of the expanded matrix this output index uses.
    const index_t r = gather_bits(i, g.qubits);
    // Base index with the target bits cleared.
    index_t base = i;
    for (qubit_t t : g.qubits) base &= ~pow2(t);
    cplx<FP> acc{};
    for (std::size_t c = 0; c < d; ++c) {
      const index_t src = base | scatter_bits(c, g.qubits);
      const cplx64 mv = g.matrix.at(r, c);
      acc += cplx<FP>(static_cast<FP>(mv.real()), static_cast<FP>(mv.imag())) * in[src];
    }
    state[i] = acc;
  }
}

// Runs a measurement-free circuit on the reference path.
template <typename FP>
void reference_run(const Circuit& c, StateVector<FP>& state) {
  check(state.num_qubits() == c.num_qubits, "reference_run: qubit count mismatch");
  for (const auto& g : c.gates) {
    check(!g.is_measurement(), "reference_run: measurements unsupported here");
    reference_apply_gate(g, state);
  }
}

}  // namespace qhip
