// Multithreaded CPU backend (qsim's AVX/OpenMP simulator equivalent).
//
// The paper's CPU baseline runs qsim with 128 OpenMP threads on a 64-core
// EPYC "Trento"; here the thread count is a runtime parameter of the shared
// ThreadPool. Gate application is the blocked in-place update from
// src/simulator/apply.h; measurement gates collapse via the state-space
// layer with a per-gate Philox stream so results are independent of the
// thread count.
#pragma once

#include <cstdint>

#include "src/base/deadline.h"
#include "src/base/threadpool.h"
#include "src/core/circuit.h"
#include "src/prof/trace.h"
#include "src/simulator/apply.h"
#include "src/statespace/statevector.h"

namespace qhip {

template <typename FP>
class SimulatorCPU {
 public:
  using fp_type = FP;

  explicit SimulatorCPU(ThreadPool& pool = ThreadPool::shared(),
                        Tracer* tracer = nullptr)
      : pool_(&pool), tracer_(tracer) {}

  static constexpr const char* backend_name() { return "cpu"; }

  // Request correlation (DESIGN.md §11): gate events recorded while a
  // correlation id is set carry it, linking them to the request span. The
  // CPU backend has no device to stamp ops on, so the simulator holds the id
  // itself. 0 clears it.
  void set_correlation(std::uint64_t corr) { corr_ = corr; }
  std::uint64_t correlation() const { return corr_; }

  // Applies one unitary gate (controls folded in here if present).
  void apply_gate(const Gate& g, StateVector<FP>& state) {
    const Gate n = normalized(g.controls.empty() ? g : expand_controls(g));
    ScopedTrace span(tracer_, "ApplyGate_CPU", TraceKind::kKernel, 0,
                     state.size() * sizeof(cplx<FP>) * 2, corr_);
    apply_gate_inplace(n, state, *pool_);
  }

  // Runs the whole circuit; measurement gate k uses Philox stream
  // (seed, k) and returns its outcome in `measurements` if non-null.
  // `deadline` is checked between gate applications (the cooperative
  // cancellation points — a single gate is never interrupted), aborting
  // with CodedError(kDeadlineExceeded) once it lapses.
  void run(const Circuit& c, StateVector<FP>& state, std::uint64_t seed = 0,
           std::vector<index_t>* measurements = nullptr,
           const Deadline& deadline = {}) {
    check(state.num_qubits() == c.num_qubits, "SimulatorCPU::run: qubit mismatch");
    std::uint64_t meas_idx = 0;
    for (const auto& g : c.gates) {
      deadline.check("SimulatorCPU::run");
      if (g.is_measurement()) {
        const index_t outcome =
            statespace::measure(state, g.qubits, seed ^ (0x9E3779B97F4A7C15 * ++meas_idx),
                                *pool_);
        if (measurements) measurements->push_back(outcome);
      } else {
        apply_gate(g, state);
      }
    }
  }

  ThreadPool& pool() { return *pool_; }

 private:
  ThreadPool* pool_;
  Tracer* tracer_;
  std::uint64_t corr_ = 0;  // current request correlation id
};

}  // namespace qhip
