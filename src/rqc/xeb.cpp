#include "src/rqc/xeb.h"

#include "src/base/bits.h"
#include "src/base/error.h"

namespace qhip::rqc {

double linear_xeb_from_probs(const std::vector<double>& sampled_probs,
                             unsigned num_qubits) {
  check(!sampled_probs.empty(), "linear_xeb_from_probs: no samples");
  double mean = 0;
  for (double p : sampled_probs) mean += p;
  mean /= static_cast<double>(sampled_probs.size());
  return static_cast<double>(pow2(num_qubits)) * mean - 1.0;
}

}  // namespace qhip::rqc
