// Linear cross-entropy benchmarking (XEB) fidelity.
//
// The RQC sampling benchmark is scored with the linear XEB estimator
// (Arute et al. 2019):  F = 2^n * <p(x_i)> - 1,  averaged over the sampled
// bitstrings x_i, where p is the exact output distribution. An ideal
// simulator sampling its own exact distribution scores F ~ 1 (the
// Porter-Thomas heavy-output effect); uniform random bitstrings score ~ 0.
// This gives the test suite an end-to-end correctness check of the whole
// pipeline: wrong kernels or a broken sampler destroy the fidelity.
#pragma once

#include <cstdint>
#include <vector>

#include "src/statespace/statevector.h"

namespace qhip::rqc {

// F from exact amplitudes and sampled indices.
template <typename FP>
double linear_xeb(const StateVector<FP>& state, const std::vector<index_t>& samples) {
  check(!samples.empty(), "linear_xeb: no samples");
  const double dim = static_cast<double>(state.size());
  double mean_p = 0;
  for (index_t s : samples) {
    check(s < state.size(), "linear_xeb: sample out of range");
    mean_p += std::norm(cplx64(state[s].real(), state[s].imag()));
  }
  mean_p /= static_cast<double>(samples.size());
  return dim * mean_p - 1.0;
}

// F for externally supplied probabilities (e.g. from a different backend).
double linear_xeb_from_probs(const std::vector<double>& sampled_probs,
                             unsigned num_qubits);

}  // namespace qhip::rqc
