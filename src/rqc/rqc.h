// Random Quantum Circuit (RQC) generator — the paper's benchmark workload.
//
// Generates Sycamore-style random circuits over a 2-D qubit grid, following
// the construction of the quantum-supremacy experiment (Arute et al. 2019)
// that qsim's bundled circuits/circuit_q30 implements:
//
//  * each cycle applies a single-qubit layer — every qubit gets one of
//    {sqrt(X), sqrt(Y), sqrt(W)} chosen at random, never repeating the
//    gate the qubit received in the previous cycle — followed by a
//    two-qubit layer on one of four coupler patterns (A, B, C, D) taken
//    from the repeating sequence ABCDCDAB;
//  * the two-qubit entangler is fSim(pi/2, pi/6) by default (Sycamore), or
//    CZ for the older circuit family.
//
// Randomness is Philox counter-based: circuit (seed, cycle, qubit) fully
// determines each gate, so generated circuits are bit-identical across
// platforms and thread counts.
#pragma once

#include <cstdint>
#include <string>

#include "src/core/circuit.h"

namespace qhip::rqc {

enum class Entangler { kFsim, kCz, kIswap };

struct RqcOptions {
  unsigned rows = 5;
  unsigned cols = 6;  // rows * cols qubits; 5 x 6 = the paper's 30 qubits
  unsigned depth = 14;  // cycles (each = 1q layer + 2q layer)
  std::uint64_t seed = 11;
  Entangler entangler = Entangler::kFsim;
  bool final_measurement = false;  // append an 'm' gate over all qubits
  bool final_1q_layer = true;      // trailing single-qubit layer, as Sycamore
};

// Coupler patterns: the grid's edges partitioned by orientation and parity.
// Pattern for cycle k is kPatternSequence[k % 8].
inline constexpr char kPatternSequence[8] = {'A', 'B', 'C', 'D', 'C', 'D', 'A', 'B'};

// Generates the circuit; result is validate()d. Qubit (r, c) has index
// r * cols + c.
Circuit generate_rqc(const RqcOptions& opt);

// The paper's exact benchmark instance: 30 qubits (5 x 6), depth 14,
// fSim entangler — the stand-in for qsim's circuits/circuit_q30 file.
Circuit circuit_q30(std::uint64_t seed = 11);

// Human-readable workload summary (qubits, depth, gate histogram).
std::string describe(const Circuit& c);

}  // namespace qhip::rqc
