#include "src/rqc/rqc.h"

#include <numbers>
#include <sstream>
#include <vector>

#include "src/base/error.h"
#include "src/base/rng.h"
#include "src/core/gates.h"

namespace qhip::rqc {

namespace {

// The three Sycamore single-qubit gates.
enum class OneQ : unsigned { kSqrtX = 0, kSqrtY = 1, kSqrtW = 2 };

Gate make_1q(OneQ g, unsigned time, qubit_t q) {
  switch (g) {
    case OneQ::kSqrtX: return gates::x_1_2(time, q);
    case OneQ::kSqrtY: return gates::y_1_2(time, q);
    case OneQ::kSqrtW: return gates::hz_1_2(time, q);
  }
  throw Error("make_1q: bad gate id");
}

Gate make_2q(Entangler e, unsigned time, qubit_t a, qubit_t b) {
  switch (e) {
    case Entangler::kFsim:
      return gates::fs(time, a, b, std::numbers::pi / 2, std::numbers::pi / 6);
    case Entangler::kCz: return gates::cz(time, a, b);
    case Entangler::kIswap: return gates::is(time, a, b);
  }
  throw Error("make_2q: bad entangler");
}

// Edges of pattern p over an rows x cols grid.
std::vector<std::pair<qubit_t, qubit_t>> pattern_edges(char p, unsigned rows,
                                                       unsigned cols) {
  std::vector<std::pair<qubit_t, qubit_t>> edges;
  const auto idx = [cols](unsigned r, unsigned c) {
    return static_cast<qubit_t>(r * cols + c);
  };
  if (p == 'A' || p == 'B') {
    // Horizontal couplers; parity of (r + c) selects the pattern.
    const unsigned want = p == 'A' ? 0 : 1;
    for (unsigned r = 0; r < rows; ++r) {
      for (unsigned c = 0; c + 1 < cols; ++c) {
        if ((r + c) % 2 == want) edges.emplace_back(idx(r, c), idx(r, c + 1));
      }
    }
  } else {
    // Vertical couplers.
    const unsigned want = p == 'C' ? 0 : 1;
    for (unsigned r = 0; r + 1 < rows; ++r) {
      for (unsigned c = 0; c < cols; ++c) {
        if ((r + c) % 2 == want) edges.emplace_back(idx(r, c), idx(r + 1, c));
      }
    }
  }
  return edges;
}

}  // namespace

Circuit generate_rqc(const RqcOptions& opt) {
  const unsigned n = opt.rows * opt.cols;
  check(n >= 2 && n <= 40, "generate_rqc: qubit count out of range [2, 40]");
  check(opt.depth >= 1, "generate_rqc: depth must be positive");

  Circuit c;
  c.num_qubits = n;

  // prev[q] = single-qubit gate q received last cycle (none initially).
  std::vector<int> prev(n, -1);
  unsigned time = 0;

  const auto one_qubit_layer = [&](unsigned cycle) {
    for (qubit_t q = 0; q < n; ++q) {
      // Philox stream per (seed, cycle): random draw per qubit, re-rolled
      // against the previous cycle's gate.
      Philox rng(opt.seed, (static_cast<std::uint64_t>(cycle) << 20) | q);
      int g = static_cast<int>(rng.uniform() * 3.0);
      if (g > 2) g = 2;
      if (g == prev[q]) g = (g + 1 + static_cast<int>(rng.uniform() * 2.0)) % 3;
      prev[q] = g;
      c.gates.push_back(make_1q(static_cast<OneQ>(g), time, q));
    }
    ++time;
  };

  for (unsigned cycle = 0; cycle < opt.depth; ++cycle) {
    one_qubit_layer(cycle);
    const char pattern = kPatternSequence[cycle % 8];
    const auto edges = pattern_edges(pattern, opt.rows, opt.cols);
    if (!edges.empty()) {
      for (const auto& [a, b] : edges) {
        c.gates.push_back(make_2q(opt.entangler, time, a, b));
      }
      ++time;
    }
  }
  if (opt.final_1q_layer) one_qubit_layer(opt.depth);
  if (opt.final_measurement) {
    std::vector<qubit_t> all(n);
    for (qubit_t q = 0; q < n; ++q) all[q] = q;
    c.gates.push_back(gates::measure(time, std::move(all)));
  }
  c.validate();
  return c;
}

Circuit circuit_q30(std::uint64_t seed) {
  RqcOptions opt;
  opt.rows = 5;
  opt.cols = 6;
  opt.depth = 14;
  opt.seed = seed;
  return generate_rqc(opt);
}

std::string describe(const Circuit& c) {
  std::ostringstream os;
  os << c.num_qubits << " qubits, depth " << c.depth() << ", " << c.size()
     << " gates:";
  for (const auto& [name, count] : c.histogram()) {
    os << ' ' << name << '=' << count;
  }
  return os.str();
}

}  // namespace qhip::rqc
