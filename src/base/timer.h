// Wall-clock timing helpers used by benchmarks and the tracer.
#pragma once

#include <chrono>
#include <cstdint>

namespace qhip {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  std::uint64_t micros() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(clock::now() - start_)
            .count());
  }

  // Monotonic microsecond timestamp shared by all trace events in a process.
  static std::uint64_t now_micros() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            clock::now().time_since_epoch())
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace qhip
