// Cache-line / vector-register aligned storage for state vectors.
//
// State vectors are the only multi-gigabyte allocation in the simulator;
// they are allocated once and reused. 64-byte alignment matches both the
// x86 cache line and the widest AVX-512 register qsim's CPU backend targets.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

namespace qhip {

inline constexpr std::size_t kAlign = 64;

// Minimal aligned allocator for std::vector-style containers.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = std::aligned_alloc(kAlign, round_up(n * sizeof(T)));
    if (!p) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }

 private:
  static std::size_t round_up(std::size_t bytes) {
    return (bytes + kAlign - 1) / kAlign * kAlign;
  }
};

}  // namespace qhip
