// Fundamental scalar and complex types used across the qsim-HIP reproduction.
//
// The simulator stores state vectors as arrays of std::complex<fp> with
// fp in {float, double}; most templates are parameterized on the floating
// point type and use the aliases below for indices and sizes.
#pragma once

#include <complex>
#include <cstdint>
#include <type_traits>

namespace qhip {

using index_t = std::uint64_t;  // amplitude index into a 2^n state vector
using qubit_t = unsigned;       // qubit label, 0 = least significant

template <typename FP>
using cplx = std::complex<FP>;

using cplx32 = cplx<float>;
using cplx64 = cplx<double>;

// Floating point precision selector, mirroring qsim's separate single- and
// double-precision builds (the paper's Figure 8 compares the two).
enum class Precision { kSingle, kDouble };

constexpr const char* to_string(Precision p) {
  return p == Precision::kSingle ? "single" : "double";
}

template <typename FP>
constexpr Precision precision_of() {
  static_assert(std::is_floating_point_v<FP>);
  return sizeof(FP) == 4 ? Precision::kSingle : Precision::kDouble;
}

// Bytes per complex amplitude for a given precision.
constexpr std::size_t amp_bytes(Precision p) {
  return p == Precision::kSingle ? 8 : 16;
}

// Tolerances used by tests and internal sanity checks.
template <typename FP>
constexpr FP unitary_tol() {
  return std::is_same_v<FP, float> ? FP(1e-5) : FP(1e-12);
}

template <typename FP>
constexpr FP state_tol() {
  return std::is_same_v<FP, float> ? FP(1e-5) : FP(1e-11);
}

}  // namespace qhip
