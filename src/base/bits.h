// Bit-manipulation helpers for state-vector index arithmetic.
//
// Applying a q-qubit gate to qubits {t_0 < t_1 < ... < t_{q-1}} of an n-qubit
// state partitions the 2^n amplitudes into 2^{n-q} groups of 2^q amplitudes.
// Enumerating a group means taking a (n-q)-bit "outer" counter and expanding
// it by inserting zero bits at the target positions; the 2^q group members
// are then obtained by OR-ing in every subset of the target-bit masks.
// These helpers implement that expansion, which is the innermost loop of
// every apply-gate routine in the simulator (CPU and virtual-GPU backends).
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "src/base/types.h"

namespace qhip {

// 2^e as a 64-bit value.
constexpr index_t pow2(unsigned e) {
  assert(e < 64);
  return index_t{1} << e;
}

// Mask with the low e bits set.
constexpr index_t low_mask(unsigned e) {
  return e >= 64 ? ~index_t{0} : (index_t{1} << e) - 1;
}

constexpr bool is_pow2(index_t v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr unsigned log2_exact(index_t v) {
  assert(is_pow2(v));
  return static_cast<unsigned>(std::countr_zero(v));
}

// Expands `outer` by inserting a zero bit at each position in `sorted_bits`
// (ascending). After the call, the bits of `outer` occupy the positions not
// listed in `sorted_bits`.
//
// Example: sorted_bits = {1, 3}, outer = b_3 b_2 b_1 b_0
//          result      = b_3 0 b_2 b_1 0 b_0.
template <std::size_t Q>
constexpr index_t expand_bits(index_t outer, const std::array<qubit_t, Q>& sorted_bits) {
  index_t r = outer;
  for (std::size_t i = 0; i < Q; ++i) {
    const index_t lo = r & low_mask(sorted_bits[i]);
    r = ((r >> sorted_bits[i]) << (sorted_bits[i] + 1)) | lo;
  }
  return r;
}

inline index_t expand_bits(index_t outer, const std::vector<qubit_t>& sorted_bits) {
  index_t r = outer;
  for (qubit_t b : sorted_bits) {
    const index_t lo = r & low_mask(b);
    r = ((r >> b) << (b + 1)) | lo;
  }
  return r;
}

// Precomputed masks such that group member k (0 <= k < 2^q) of the group with
// base index `base` is at `base | member_mask[k]`.
//
// member_mask[k] scatters the q bits of k to the target qubit positions.
inline std::vector<index_t> scatter_masks(const std::vector<qubit_t>& targets) {
  const std::size_t q = targets.size();
  std::vector<index_t> masks(std::size_t{1} << q);
  for (index_t k = 0; k < masks.size(); ++k) {
    index_t m = 0;
    for (std::size_t j = 0; j < q; ++j) {
      if (k & (index_t{1} << j)) m |= pow2(targets[j]);
    }
    masks[k] = m;
  }
  return masks;
}

// Scatters the bits of `value` onto the positions given in `positions`
// (positions[j] receives bit j of value).
inline index_t scatter_bits(index_t value, const std::vector<qubit_t>& positions) {
  index_t m = 0;
  for (std::size_t j = 0; j < positions.size(); ++j) {
    if (value & (index_t{1} << j)) m |= pow2(positions[j]);
  }
  return m;
}

// Gathers the bits at `positions` of `value` into a dense low-order integer
// (bit j of the result = bit positions[j] of value). Inverse of scatter_bits.
inline index_t gather_bits(index_t value, const std::vector<qubit_t>& positions) {
  index_t r = 0;
  for (std::size_t j = 0; j < positions.size(); ++j) {
    if (value & pow2(positions[j])) r |= index_t{1} << j;
  }
  return r;
}

// Reverses the low `n` bits of `v` (used by the QFT example).
inline index_t reverse_bits(index_t v, unsigned n) {
  index_t r = 0;
  for (unsigned i = 0; i < n; ++i) {
    r = (r << 1) | ((v >> i) & 1);
  }
  return r;
}

}  // namespace qhip
