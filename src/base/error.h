// Error handling for the qsim-HIP reproduction.
//
// Library code throws qhip::Error for unrecoverable misuse (bad circuit
// files, out-of-range qubits, precondition violations discoverable only at
// run time). Hot loops use assert() for internal invariants instead.
//
// Device and serving failures additionally carry a machine-readable
// ErrorCode (CodedError) so callers can distinguish "out of device memory"
// from "the backend faulted mid-run" from "the deadline lapsed" without
// string-matching what() — the serving layer's retry/fallback policy keys
// off the code (see src/engine/engine.h and DESIGN.md §10).
#pragma once

#include <stdexcept>
#include <string>

namespace qhip {

class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

// Throws qhip::Error with `msg` when `cond` is false.
inline void check(bool cond, const std::string& msg) {
  if (!cond) throw Error(msg);
}

// Machine-readable failure classes, mirroring the HIP runtime's coarse
// taxonomy (hipErrorOutOfMemory vs. everything-else) plus the serving
// layer's deadline semantics.
enum class ErrorCode {
  kGeneric,           // unclassified Error
  kOutOfMemory,       // hipMalloc-style allocation failure (real or injected)
  kBackendFault,      // device runtime error: failed stream op, kernel fault
  kDeadlineExceeded,  // cooperative deadline checkpoint fired mid-run
  kMalformedInput,    // loader rejected a truncated / garbage payload
};

inline const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOutOfMemory: return "out-of-memory";
    case ErrorCode::kBackendFault: return "backend-fault";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kMalformedInput: return "malformed-input";
    case ErrorCode::kGeneric: break;
  }
  return "error";
}

// An Error with an attached ErrorCode. The virtual GPU throws these for
// allocation failures and (injected) stream faults; the engine maps them to
// structured SimResult codes and decides retry/fallback eligibility.
class CodedError : public Error {
 public:
  CodedError(ErrorCode code, std::string what)
      : Error(std::move(what)), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

}  // namespace qhip
