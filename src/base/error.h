// Error handling for the qsim-HIP reproduction.
//
// Library code throws qhip::Error for unrecoverable misuse (bad circuit
// files, out-of-range qubits, precondition violations discoverable only at
// run time). Hot loops use assert() for internal invariants instead.
#pragma once

#include <stdexcept>
#include <string>

namespace qhip {

class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

// Throws qhip::Error with `msg` when `cond` is false.
inline void check(bool cond, const std::string& msg) {
  if (!cond) throw Error(msg);
}

}  // namespace qhip
