// A minimal work-sharing thread pool with a parallel_for primitive.
//
// This stands in for qsim's OpenMP usage on the CPU backend: the paper runs
// the CPU baseline with 128 OpenMP threads over a static iteration split,
// which is exactly what parallel_for below does. Keeping the pool in-library
// (instead of depending on the OpenMP runtime) makes the thread count a
// run-time parameter the benchmarks and tests can sweep.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/base/types.h"

namespace qhip {

class ThreadPool {
 public:
  // Creates `num_threads` workers. 0 means hardware_concurrency (min 1).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()) + 1; }

  // Runs fn(thread_rank, begin, end) on every worker plus the calling thread,
  // with [0, total) statically split into num_threads() contiguous chunks.
  // Blocks until all chunks complete. Exceptions from fn are rethrown on the
  // caller (first one wins). Safe to call from multiple threads: concurrent
  // submissions serialize on an internal mutex (the pool runs one task at a
  // time), which is how several virtual-GPU stream submitter threads share
  // one pool.
  void parallel_ranges(index_t total,
                       const std::function<void(unsigned, index_t, index_t)>& fn);

  // Convenience: fn(i) for every i in [0, total), statically chunked.
  void parallel_for(index_t total, const std::function<void(index_t)>& fn) {
    parallel_ranges(total, [&fn](unsigned, index_t b, index_t e) {
      for (index_t i = b; i < e; ++i) fn(i);
    });
  }

  // Global pool sized to the machine, shared by backends that are not handed
  // an explicit pool.
  static ThreadPool& shared();

 private:
  struct Task;
  void worker_loop(unsigned rank);

  std::vector<std::thread> workers_;
  std::mutex submit_mu_;  // serializes whole parallel_ranges invocations
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  // Current task, guarded by mu_.
  const std::function<void(unsigned, index_t, index_t)>* fn_ = nullptr;
  index_t total_ = 0;
  std::uint64_t epoch_ = 0;
  unsigned pending_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace qhip
