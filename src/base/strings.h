// Small string utilities for the circuit parser and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qhip {

// Splits on any run of characters from `delims`; empty tokens are dropped.
std::vector<std::string_view> split(std::string_view s, std::string_view delims = " \t");

// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

// Lower-cases ASCII.
std::string to_lower(std::string_view s);

// Parses an unsigned integer / double; throws qhip::Error with `context` on
// malformed input (used by the circuit parser for precise diagnostics).
unsigned long long parse_uint(std::string_view s, const std::string& context);
double parse_double(std::string_view s, const std::string& context);

// printf-style formatting into std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace qhip
