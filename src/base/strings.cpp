#include "src/base/strings.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

#include "src/base/error.h"

namespace qhip {

std::vector<std::string_view> split(std::string_view s, std::string_view delims) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && delims.find(s[i]) != std::string_view::npos) ++i;
    std::size_t j = i;
    while (j < s.size() && delims.find(s[j]) == std::string_view::npos) ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

unsigned long long parse_uint(std::string_view s, const std::string& context) {
  unsigned long long v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  check(ec == std::errc{} && p == s.data() + s.size(),
        context + ": expected unsigned integer, got '" + std::string(s) + "'");
  return v;
}

double parse_double(std::string_view s, const std::string& context) {
  double v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  check(ec == std::errc{} && p == s.data() + s.size(),
        context + ": expected real number, got '" + std::string(s) + "'");
  return v;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

}  // namespace qhip
