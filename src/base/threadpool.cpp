#include "src/base/threadpool.h"

#include <algorithm>

namespace qhip {

namespace {

// Chunk [0, total) into `parts` contiguous ranges; returns [begin, end) of
// chunk `rank`.
std::pair<index_t, index_t> chunk(index_t total, unsigned parts, unsigned rank) {
  const index_t base = total / parts;
  const index_t rem = total % parts;
  const index_t begin = rank * base + std::min<index_t>(rank, rem);
  const index_t size = base + (rank < rem ? 1 : 0);
  return {begin, begin + size};
}

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads - 1);
  for (unsigned r = 1; r < num_threads; ++r) {
    workers_.emplace_back([this, r] { worker_loop(r); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(unsigned rank) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned, index_t, index_t)>* fn;
    index_t total;
    {
      std::unique_lock lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      fn = fn_;
      total = total_;
    }
    const auto [b, e] = chunk(total, num_threads(), rank);
    std::exception_ptr err;
    if (b < e) {
      try {
        (*fn)(rank, b, e);
      } catch (...) {
        err = std::current_exception();
      }
    }
    {
      std::lock_guard lk(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_ranges(
    index_t total, const std::function<void(unsigned, index_t, index_t)>& fn) {
  if (total == 0) return;
  if (workers_.empty()) {
    fn(0, 0, total);
    return;
  }
  // One task in flight at a time; concurrent callers queue up here.
  std::lock_guard submit(submit_mu_);
  {
    std::lock_guard lk(mu_);
    fn_ = &fn;
    total_ = total;
    pending_ = static_cast<unsigned>(workers_.size());
    first_error_ = nullptr;
    ++epoch_;
  }
  cv_work_.notify_all();

  // The caller participates as rank 0.
  const auto [b, e] = chunk(total, num_threads(), 0);
  std::exception_ptr err;
  if (b < e) {
    try {
      fn(0, b, e);
    } catch (...) {
      err = std::current_exception();
    }
  }
  std::unique_lock lk(mu_);
  cv_done_.wait(lk, [&] { return pending_ == 0; });
  fn_ = nullptr;
  if (err && !first_error_) first_error_ = err;
  if (first_error_) {
    auto ep = first_error_;
    first_error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(ep);
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace qhip
