// Cooperative deadlines for long-running simulations.
//
// Kernels on the virtual GPU (like real GPU kernels) are not preemptible,
// so a request that has started running can only be cancelled at points
// where the backend voluntarily checks — between fused-gate applications.
// A Deadline is a cheap wall-clock budget passed down through
// BackendRunSpec; simulators call check() between gates and abort with
// CodedError(kDeadlineExceeded) once the budget lapses. A
// default-constructed Deadline is inactive and never fires.
#pragma once

#include <chrono>
#include <limits>

#include "src/base/error.h"
#include "src/base/strings.h"

namespace qhip {

class Deadline {
 public:
  Deadline() = default;  // inactive: expired() is always false

  // A deadline `seconds` from now. Non-positive budgets are already expired
  // (the caller burned the whole timeout in the queue).
  static Deadline after(double seconds) {
    Deadline d;
    d.active_ = true;
    d.at_ = clock::now() + std::chrono::duration_cast<clock::duration>(
                               std::chrono::duration<double>(seconds));
    return d;
  }

  bool active() const { return active_; }

  bool expired() const { return active_ && clock::now() >= at_; }

  // Seconds left before expiry; +inf when inactive, <= 0 once expired.
  double remaining_seconds() const {
    if (!active_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(at_ - clock::now()).count();
  }

  // The cooperative checkpoint: throws CodedError(kDeadlineExceeded) once
  // the budget has lapsed. `where` names the checkpoint for the message.
  void check(const char* where) const {
    if (expired()) {
      throw CodedError(ErrorCode::kDeadlineExceeded,
                       strfmt("deadline exceeded in %s (budget lapsed %.1f ms "
                              "ago)",
                              where, -remaining_seconds() * 1e3));
    }
  }

 private:
  using clock = std::chrono::steady_clock;
  bool active_ = false;
  clock::time_point at_{};
};

}  // namespace qhip
