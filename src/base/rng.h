// Deterministic random number generation.
//
// Two engines:
//  * Philox4x32-10 — a counter-based PRNG (Salmon et al., SC'11). Counter
//    mode makes it trivially parallel and reproducible across thread counts:
//    stream i, counter j always yields the same value regardless of how work
//    is scheduled. Used by the RQC generator and by Born-rule sampling so
//    results are bit-stable between the CPU and virtual-GPU backends.
//  * xoshiro256** — a fast sequential engine for tests that just need noise.
//
// Both satisfy UniformRandomBitGenerator so they compose with <random>.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace qhip {

// Philox4x32-10 counter-based generator.
//
// State is (key, counter); `operator()` returns successive 32-bit lanes of
// the 128-bit blocks produced by bumping the counter. Seeding with
// (seed, stream) gives 2^64 independent streams per seed.
class Philox {
 public:
  using result_type = std::uint32_t;

  explicit Philox(std::uint64_t seed = 0, std::uint64_t stream = 0)
      : key_{static_cast<std::uint32_t>(seed), static_cast<std::uint32_t>(seed >> 32)} {
    ctr_ = {0, 0, static_cast<std::uint32_t>(stream),
            static_cast<std::uint32_t>(stream >> 32)};
    refill();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    if (lane_ == 4) {
      bump();
      refill();
    }
    return block_[lane_++];
  }

  // Jumps directly to 128-bit block `index` of this stream. Enables
  // random access: sample k can be drawn without generating samples 0..k-1.
  void seek(std::uint64_t index) {
    ctr_[0] = static_cast<std::uint32_t>(index);
    ctr_[1] = static_cast<std::uint32_t>(index >> 32);
    refill();
  }

  // Uniform double in [0, 1) consuming two 32-bit lanes.
  double uniform() {
    const std::uint64_t hi = (*this)();
    const std::uint64_t lo = (*this)();
    const std::uint64_t v = (hi << 21) ^ lo;  // 53 significant bits
    return static_cast<double>(v & ((std::uint64_t{1} << 53) - 1)) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint32_t kM0 = 0xD2511F53;
  static constexpr std::uint32_t kM1 = 0xCD9E8D57;
  static constexpr std::uint32_t kW0 = 0x9E3779B9;
  static constexpr std::uint32_t kW1 = 0xBB67AE85;

  static void round(std::array<std::uint32_t, 4>& c, std::array<std::uint32_t, 2>& k) {
    const std::uint64_t p0 = static_cast<std::uint64_t>(kM0) * c[0];
    const std::uint64_t p1 = static_cast<std::uint64_t>(kM1) * c[2];
    c = {static_cast<std::uint32_t>(p1 >> 32) ^ c[1] ^ k[0],
         static_cast<std::uint32_t>(p1),
         static_cast<std::uint32_t>(p0 >> 32) ^ c[3] ^ k[1],
         static_cast<std::uint32_t>(p0)};
    k[0] += kW0;
    k[1] += kW1;
  }

  void refill() {
    std::array<std::uint32_t, 4> c = ctr_;
    std::array<std::uint32_t, 2> k = key_;
    for (int i = 0; i < 10; ++i) round(c, k);
    block_ = c;
    lane_ = 0;
  }

  void bump() {
    if (++ctr_[0] == 0 && ++ctr_[1] == 0 && ++ctr_[2] == 0) ++ctr_[3];
  }

  std::array<std::uint32_t, 2> key_;
  std::array<std::uint32_t, 4> ctr_{};
  std::array<std::uint32_t, 4> block_{};
  int lane_ = 0;
};

// xoshiro256** by Blackman & Vigna (public domain reference implementation
// restructured as a C++ engine).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 1) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9E3779B97F4A7C15;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EB;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_;
};

}  // namespace qhip
